#!/usr/bin/env bash
# Build the tree with UndefinedBehaviorSanitizer alone (no ASan) and run
# the full test suite. The ASan pass (check_asan.sh) bundles UBSan but
# only over the exec-plan hot-path targets; this pass sweeps everything —
# including the integer-heavy serving runtime (job-id epoch arithmetic,
# shot splits, backoff shifts) and the fault injector's RNG salting —
# with trap-on-error semantics so silent wraparound or bad shifts fail
# the run instead of folding into a plausible number.
#
# Usage: scripts/check_ubsan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-ubsan}"

ubsan_flags="-fsanitize=undefined -fno-sanitize-recover=undefined -fno-omit-frame-pointer -g -O1"
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${ubsan_flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"

cmake --build "${build_dir}" -j "$(nproc)"

export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "OK: full test suite is UBSan-clean"
