#!/usr/bin/env bash
# Build the tree with ARBITERQ_TELEMETRY=OFF and run the full test
# suite against it. Guards the promise that every AQ_* macro call site
# compiles to a no-op — the instrumented hot paths must build and the
# tests must pass with the toggle off, not just with the default ON.
#
# Usage: scripts/check_telemetry_off.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-telemetry-off}"

cmake -B "${build_dir}" -S "${repo_root}" -DARBITERQ_TELEMETRY=OFF
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "OK: ARBITERQ_TELEMETRY=OFF build passes the full suite"
