#!/usr/bin/env bash
# Build the tree with ThreadSanitizer and run the tests that exercise
# the parallel execution engine: the ThreadPool/parallel_for unit tests,
# the parallel-vs-serial equivalence suite, the statevector kernels
# (including the SIMD dispatch state and the sample-batched register),
# the distributed trainers, the fleet serving runtime (sharded
# queues, mailbox lanes, workers, retry re-routing, per-lane tenant
# arbiters and quota accounting), the open-loop traffic generator, and
# the telemetry time-series layer (Collector thread sampling
# concurrently with per-series writers, watchdog polls). Guards data-race
# freedom — the determinism
# contracts in arbiterq/exec/parallel.hpp and arbiterq/serve/runtime.hpp
# are only meaningful if the disjoint-write claims actually hold under
# TSan.
#
# Usage: scripts/check_tsan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

tsan_flags="-fsanitize=thread -fno-omit-frame-pointer -g -O1"
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${tsan_flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

targets=(test_exec test_parallel_equivalence test_statevector test_kernels
  test_batched test_trainers test_serve test_shard test_arbiter
  test_trafficgen test_timeseries test_watchdog)
cmake --build "${build_dir}" -j "$(nproc)" --target "${targets[@]}"

# Force the parallel code paths even on single-core CI hosts.
export ARBITERQ_THREADS=4
for t in "${targets[@]}"; do
  ctest --test-dir "${build_dir}" --output-on-failure -R "^${t}\$"
done

echo "OK: parallel engine and serving runtime are TSan-clean (${targets[*]})"
