#!/usr/bin/env bash
# Build the tree with AddressSanitizer + UBSan and run the tests that
# exercise the compiled-execution-plan hot path: the ExecPlan/Workspace
# suite, the adjoint engine, the simulator and statevector kernels, the
# SIMD apply/bracket kernels and the sample-batched register, the
# parallel equivalence suite, and the time-series store (ring eviction
# keeps handing out live window references). Guards the plan's
# zero-allocation
# steady-state claim — workspace reuse across bind/apply/adjoint walks
# must not hide use-after-free, out-of-bounds table indexing, or
# mismatched lifetimes when plans are rebuilt by recalibrate().
#
# Usage: scripts/check_asan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

asan_flags="-fsanitize=address,undefined -fno-omit-frame-pointer -g -O1"
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${asan_flags}" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

targets=(test_exec_plan test_adjoint test_simulator test_statevector
  test_kernels test_batched test_parallel_equivalence test_arbiter
  test_trafficgen test_timeseries test_watchdog)
cmake --build "${build_dir}" -j "$(nproc)" --target "${targets[@]}"

# Promote UBSan findings to hard failures; keep ASan strict about leaks.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
for t in "${targets[@]}"; do
  ctest --test-dir "${build_dir}" --output-on-failure -R "^${t}\$"
done

echo "OK: exec-plan hot path is ASan/UBSan-clean (${targets[*]})"
