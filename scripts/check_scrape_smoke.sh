#!/usr/bin/env bash
# End-to-end scrape smoke: run `arbiterq_cli --serve --listen` for real,
# then hit the live endpoint with curl and assert that the windowed
# time-series surface actually carries data — /timeseries returns at
# least one series with a non-empty windows array (and honors ?name=
# filtering), and /dashboard renders the self-contained sparkline HTML.
# Guards the full wiring: ServingRuntime event series -> Collector ->
# TimeSeriesStore -> ScrapeServer, which no unit test crosses in one go.
#
# Note: the CLI's stdout is block-buffered when redirected, so waiting
# for its log lines deadlocks against short linger windows. Poll the
# port instead.
#
# Usage: scripts/check_scrape_smoke.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target arbiterq_cli

workdir="$(mktemp -d)"
cli_pid=""
cleanup() {
  [[ -n "${cli_pid}" ]] && kill "${cli_pid}" 2> /dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

port=""
for candidate in 19381 19382 19383; do
  "${build_dir}/examples/arbiterq_cli" \
    --epochs 1 --serve --jobs 60 --shards 2 \
    --listen "${candidate}" --linger-ms 60000 \
    > "${workdir}/cli.log" 2>&1 &
  cli_pid=$!
  for _ in $(seq 1 100); do
    if curl -sf --max-time 1 "http://127.0.0.1:${candidate}/healthz" \
        > /dev/null 2>&1; then
      port="${candidate}"
      break
    fi
    if ! kill -0 "${cli_pid}" 2> /dev/null; then
      break  # CLI exited (port taken or crash); try the next port
    fi
    sleep 0.2
  done
  [[ -n "${port}" ]] && break
  kill "${cli_pid}" 2> /dev/null || true
  wait "${cli_pid}" 2> /dev/null || true
  cli_pid=""
done

if [[ -z "${port}" ]]; then
  echo "FAIL: scrape endpoint never came up" >&2
  cat "${workdir}/cli.log" >&2
  exit 1
fi

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

ts_json="$(curl -sf --max-time 5 "http://127.0.0.1:${port}/timeseries")"
grep -q '"series": \[{' <<< "${ts_json}" \
  || fail "/timeseries returned no series: ${ts_json:0:200}"
grep -q '"windows": \[{' <<< "${ts_json}" \
  || fail "/timeseries series have no windows: ${ts_json:0:200}"
grep -q 'serve.ts.admitted' <<< "${ts_json}" \
  || fail "/timeseries missing the admission series"

filtered="$(curl -sf --max-time 5 \
  "http://127.0.0.1:${port}/timeseries?name=serve.ts.admitted")"
grep -q 'serve.ts.admitted' <<< "${filtered}" \
  || fail "?name= filter dropped the requested series"
if grep -q 'serve.job.latency_us' <<< "${filtered}"; then
  fail "?name= filter failed to exclude other series"
fi

dashboard="$(curl -sf --max-time 5 "http://127.0.0.1:${port}/dashboard")"
grep -q '<!DOCTYPE html>' <<< "${dashboard}" \
  || fail "/dashboard is not an HTML document"
grep -q '<svg' <<< "${dashboard}" \
  || fail "/dashboard has no sparklines"
grep -q 'serve.ts.admitted' <<< "${dashboard}" \
  || fail "/dashboard does not show the admission series"

kill "${cli_pid}" 2> /dev/null || true
wait "${cli_pid}" 2> /dev/null || true
cli_pid=""

echo "OK: /timeseries and /dashboard serve live windowed series on :${port}"
