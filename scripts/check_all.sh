#!/usr/bin/env bash
# The one-command CI entry: tier-1 build + full ctest in the default
# configuration, then the hardening passes — ThreadSanitizer over the
# parallel engine and serving runtime, AddressSanitizer over the
# exec-plan hot path, UBSan over the full suite, and the
# ARBITERQ_TELEMETRY=OFF build. Each pass uses its own build directory,
# so a warm default build is never poisoned by sanitizer or option
# flags.
#
# Usage: scripts/check_all.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

echo "==> tier 1: default build + full test suite"
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "==> tier 2: ThreadSanitizer"
"${repo_root}/scripts/check_tsan.sh"

echo "==> tier 2: AddressSanitizer"
"${repo_root}/scripts/check_asan.sh"

echo "==> tier 2: UndefinedBehaviorSanitizer (full suite)"
"${repo_root}/scripts/check_ubsan.sh"

echo "==> tier 2: ARBITERQ_TELEMETRY=OFF"
"${repo_root}/scripts/check_telemetry_off.sh"

echo "==> tier 2: live scrape smoke (/timeseries + /dashboard)"
"${repo_root}/scripts/check_scrape_smoke.sh" "${build_dir}"

echo "OK: all checks passed"
