
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5.cpp" "bench/CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/qnn/CMakeFiles/aq_qnn.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/aq_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aq_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/aq_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
