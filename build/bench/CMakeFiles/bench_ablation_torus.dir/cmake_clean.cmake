file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_torus.dir/bench_ablation_torus.cpp.o"
  "CMakeFiles/bench_ablation_torus.dir/bench_ablation_torus.cpp.o.d"
  "bench_ablation_torus"
  "bench_ablation_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
