# Empty dependencies file for bench_ablation_torus.
# This may be replaced when dependencies are built.
