file(REMOVE_RECURSE
  "CMakeFiles/bench_backbones.dir/bench_backbones.cpp.o"
  "CMakeFiles/bench_backbones.dir/bench_backbones.cpp.o.d"
  "bench_backbones"
  "bench_backbones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backbones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
