# Empty compiler generated dependencies file for bench_backbones.
# This may be replaced when dependencies are built.
