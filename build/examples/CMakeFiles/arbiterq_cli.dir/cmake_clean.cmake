file(REMOVE_RECURSE
  "CMakeFiles/arbiterq_cli.dir/arbiterq_cli.cpp.o"
  "CMakeFiles/arbiterq_cli.dir/arbiterq_cli.cpp.o.d"
  "arbiterq_cli"
  "arbiterq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiterq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
