# Empty dependencies file for arbiterq_cli.
# This may be replaced when dependencies are built.
