file(REMOVE_RECURSE
  "CMakeFiles/behavioral_vectors.dir/behavioral_vectors.cpp.o"
  "CMakeFiles/behavioral_vectors.dir/behavioral_vectors.cpp.o.d"
  "behavioral_vectors"
  "behavioral_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavioral_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
