# Empty compiler generated dependencies file for behavioral_vectors.
# This may be replaced when dependencies are built.
