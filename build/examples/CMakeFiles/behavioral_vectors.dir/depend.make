# Empty dependencies file for behavioral_vectors.
# This may be replaced when dependencies are built.
