# Empty dependencies file for error_mitigation.
# This may be replaced when dependencies are built.
