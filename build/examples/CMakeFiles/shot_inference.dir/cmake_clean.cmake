file(REMOVE_RECURSE
  "CMakeFiles/shot_inference.dir/shot_inference.cpp.o"
  "CMakeFiles/shot_inference.dir/shot_inference.cpp.o.d"
  "shot_inference"
  "shot_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shot_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
