# Empty dependencies file for shot_inference.
# This may be replaced when dependencies are built.
