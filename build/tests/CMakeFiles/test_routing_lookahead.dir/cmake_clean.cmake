file(REMOVE_RECURSE
  "CMakeFiles/test_routing_lookahead.dir/test_routing_lookahead.cpp.o"
  "CMakeFiles/test_routing_lookahead.dir/test_routing_lookahead.cpp.o.d"
  "test_routing_lookahead"
  "test_routing_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
