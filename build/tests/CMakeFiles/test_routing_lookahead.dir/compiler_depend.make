# Empty compiler generated dependencies file for test_routing_lookahead.
# This may be replaced when dependencies are built.
