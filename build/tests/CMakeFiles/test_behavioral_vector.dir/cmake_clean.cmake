file(REMOVE_RECURSE
  "CMakeFiles/test_behavioral_vector.dir/test_behavioral_vector.cpp.o"
  "CMakeFiles/test_behavioral_vector.dir/test_behavioral_vector.cpp.o.d"
  "test_behavioral_vector"
  "test_behavioral_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behavioral_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
