# Empty dependencies file for test_behavioral_vector.
# This may be replaced when dependencies are built.
