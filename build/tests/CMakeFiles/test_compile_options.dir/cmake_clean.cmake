file(REMOVE_RECURSE
  "CMakeFiles/test_compile_options.dir/test_compile_options.cpp.o"
  "CMakeFiles/test_compile_options.dir/test_compile_options.cpp.o.d"
  "test_compile_options"
  "test_compile_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
