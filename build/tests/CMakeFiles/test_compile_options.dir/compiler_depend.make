# Empty compiler generated dependencies file for test_compile_options.
# This may be replaced when dependencies are built.
