# Empty dependencies file for test_unitary.
# This may be replaced when dependencies are built.
