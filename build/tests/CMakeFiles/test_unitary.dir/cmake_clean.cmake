file(REMOVE_RECURSE
  "CMakeFiles/test_unitary.dir/test_unitary.cpp.o"
  "CMakeFiles/test_unitary.dir/test_unitary.cpp.o.d"
  "test_unitary"
  "test_unitary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unitary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
