# Empty dependencies file for test_scheduler_ensemble.
# This may be replaced when dependencies are built.
