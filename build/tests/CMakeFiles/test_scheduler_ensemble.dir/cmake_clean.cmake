file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_ensemble.dir/test_scheduler_ensemble.cpp.o"
  "CMakeFiles/test_scheduler_ensemble.dir/test_scheduler_ensemble.cpp.o.d"
  "test_scheduler_ensemble"
  "test_scheduler_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
