file(REMOVE_RECURSE
  "CMakeFiles/test_executor_mitigation.dir/test_executor_mitigation.cpp.o"
  "CMakeFiles/test_executor_mitigation.dir/test_executor_mitigation.cpp.o.d"
  "test_executor_mitigation"
  "test_executor_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
