# Empty compiler generated dependencies file for test_executor_mitigation.
# This may be replaced when dependencies are built.
