# Empty dependencies file for test_adjoint.
# This may be replaced when dependencies are built.
