file(REMOVE_RECURSE
  "CMakeFiles/test_property_training.dir/test_property_training.cpp.o"
  "CMakeFiles/test_property_training.dir/test_property_training.cpp.o.d"
  "test_property_training"
  "test_property_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
