# Empty dependencies file for test_property_training.
# This may be replaced when dependencies are built.
