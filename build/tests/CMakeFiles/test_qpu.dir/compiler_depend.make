# Empty compiler generated dependencies file for test_qpu.
# This may be replaced when dependencies are built.
