file(REMOVE_RECURSE
  "CMakeFiles/test_qpu.dir/test_qpu.cpp.o"
  "CMakeFiles/test_qpu.dir/test_qpu.cpp.o.d"
  "test_qpu"
  "test_qpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
