file(REMOVE_RECURSE
  "libaq_qnn.a"
)
