# Empty dependencies file for aq_qnn.
# This may be replaced when dependencies are built.
