file(REMOVE_RECURSE
  "CMakeFiles/aq_qnn.dir/analysis.cpp.o"
  "CMakeFiles/aq_qnn.dir/analysis.cpp.o.d"
  "CMakeFiles/aq_qnn.dir/encoding.cpp.o"
  "CMakeFiles/aq_qnn.dir/encoding.cpp.o.d"
  "CMakeFiles/aq_qnn.dir/executor.cpp.o"
  "CMakeFiles/aq_qnn.dir/executor.cpp.o.d"
  "CMakeFiles/aq_qnn.dir/gradient.cpp.o"
  "CMakeFiles/aq_qnn.dir/gradient.cpp.o.d"
  "CMakeFiles/aq_qnn.dir/loss.cpp.o"
  "CMakeFiles/aq_qnn.dir/loss.cpp.o.d"
  "CMakeFiles/aq_qnn.dir/model.cpp.o"
  "CMakeFiles/aq_qnn.dir/model.cpp.o.d"
  "libaq_qnn.a"
  "libaq_qnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_qnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
