
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qnn/analysis.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/analysis.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/analysis.cpp.o.d"
  "/root/repo/src/qnn/encoding.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/encoding.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/encoding.cpp.o.d"
  "/root/repo/src/qnn/executor.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/executor.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/executor.cpp.o.d"
  "/root/repo/src/qnn/gradient.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/gradient.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/gradient.cpp.o.d"
  "/root/repo/src/qnn/loss.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/loss.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/loss.cpp.o.d"
  "/root/repo/src/qnn/model.cpp" "src/qnn/CMakeFiles/aq_qnn.dir/model.cpp.o" "gcc" "src/qnn/CMakeFiles/aq_qnn.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transpile/CMakeFiles/aq_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aq_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
