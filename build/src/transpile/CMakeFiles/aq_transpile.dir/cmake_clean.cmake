file(REMOVE_RECURSE
  "CMakeFiles/aq_transpile.dir/decompose.cpp.o"
  "CMakeFiles/aq_transpile.dir/decompose.cpp.o.d"
  "CMakeFiles/aq_transpile.dir/layout.cpp.o"
  "CMakeFiles/aq_transpile.dir/layout.cpp.o.d"
  "CMakeFiles/aq_transpile.dir/optimize.cpp.o"
  "CMakeFiles/aq_transpile.dir/optimize.cpp.o.d"
  "CMakeFiles/aq_transpile.dir/routing.cpp.o"
  "CMakeFiles/aq_transpile.dir/routing.cpp.o.d"
  "CMakeFiles/aq_transpile.dir/state_prep.cpp.o"
  "CMakeFiles/aq_transpile.dir/state_prep.cpp.o.d"
  "CMakeFiles/aq_transpile.dir/transpiler.cpp.o"
  "CMakeFiles/aq_transpile.dir/transpiler.cpp.o.d"
  "libaq_transpile.a"
  "libaq_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
