file(REMOVE_RECURSE
  "libaq_transpile.a"
)
