# Empty compiler generated dependencies file for aq_transpile.
# This may be replaced when dependencies are built.
