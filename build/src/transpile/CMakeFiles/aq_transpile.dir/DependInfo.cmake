
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpile/decompose.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/decompose.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/decompose.cpp.o.d"
  "/root/repo/src/transpile/layout.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/layout.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/layout.cpp.o.d"
  "/root/repo/src/transpile/optimize.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/optimize.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/optimize.cpp.o.d"
  "/root/repo/src/transpile/routing.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/routing.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/routing.cpp.o.d"
  "/root/repo/src/transpile/state_prep.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/state_prep.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/state_prep.cpp.o.d"
  "/root/repo/src/transpile/transpiler.cpp" "src/transpile/CMakeFiles/aq_transpile.dir/transpiler.cpp.o" "gcc" "src/transpile/CMakeFiles/aq_transpile.dir/transpiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/aq_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
