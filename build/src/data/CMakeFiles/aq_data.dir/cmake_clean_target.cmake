file(REMOVE_RECURSE
  "libaq_data.a"
)
