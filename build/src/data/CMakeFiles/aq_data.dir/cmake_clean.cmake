file(REMOVE_RECURSE
  "CMakeFiles/aq_data.dir/dataset.cpp.o"
  "CMakeFiles/aq_data.dir/dataset.cpp.o.d"
  "CMakeFiles/aq_data.dir/pipeline.cpp.o"
  "CMakeFiles/aq_data.dir/pipeline.cpp.o.d"
  "CMakeFiles/aq_data.dir/synthetic.cpp.o"
  "CMakeFiles/aq_data.dir/synthetic.cpp.o.d"
  "libaq_data.a"
  "libaq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
