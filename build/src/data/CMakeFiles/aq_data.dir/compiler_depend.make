# Empty compiler generated dependencies file for aq_data.
# This may be replaced when dependencies are built.
