
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/presets.cpp" "src/device/CMakeFiles/aq_device.dir/presets.cpp.o" "gcc" "src/device/CMakeFiles/aq_device.dir/presets.cpp.o.d"
  "/root/repo/src/device/qpu.cpp" "src/device/CMakeFiles/aq_device.dir/qpu.cpp.o" "gcc" "src/device/CMakeFiles/aq_device.dir/qpu.cpp.o.d"
  "/root/repo/src/device/topology.cpp" "src/device/CMakeFiles/aq_device.dir/topology.cpp.o" "gcc" "src/device/CMakeFiles/aq_device.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
