file(REMOVE_RECURSE
  "libaq_device.a"
)
