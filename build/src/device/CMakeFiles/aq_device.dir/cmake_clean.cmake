file(REMOVE_RECURSE
  "CMakeFiles/aq_device.dir/presets.cpp.o"
  "CMakeFiles/aq_device.dir/presets.cpp.o.d"
  "CMakeFiles/aq_device.dir/qpu.cpp.o"
  "CMakeFiles/aq_device.dir/qpu.cpp.o.d"
  "CMakeFiles/aq_device.dir/topology.cpp.o"
  "CMakeFiles/aq_device.dir/topology.cpp.o.d"
  "libaq_device.a"
  "libaq_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
