# Empty compiler generated dependencies file for aq_device.
# This may be replaced when dependencies are built.
