file(REMOVE_RECURSE
  "CMakeFiles/aq_core.dir/behavioral_vector.cpp.o"
  "CMakeFiles/aq_core.dir/behavioral_vector.cpp.o.d"
  "CMakeFiles/aq_core.dir/convergence.cpp.o"
  "CMakeFiles/aq_core.dir/convergence.cpp.o.d"
  "CMakeFiles/aq_core.dir/scheduler.cpp.o"
  "CMakeFiles/aq_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/aq_core.dir/similarity.cpp.o"
  "CMakeFiles/aq_core.dir/similarity.cpp.o.d"
  "CMakeFiles/aq_core.dir/torus.cpp.o"
  "CMakeFiles/aq_core.dir/torus.cpp.o.d"
  "CMakeFiles/aq_core.dir/trainers.cpp.o"
  "CMakeFiles/aq_core.dir/trainers.cpp.o.d"
  "libaq_core.a"
  "libaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
