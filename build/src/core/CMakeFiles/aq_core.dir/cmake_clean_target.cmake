file(REMOVE_RECURSE
  "libaq_core.a"
)
