# Empty dependencies file for aq_core.
# This may be replaced when dependencies are built.
