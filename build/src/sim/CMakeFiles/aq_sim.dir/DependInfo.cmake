
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adjoint.cpp" "src/sim/CMakeFiles/aq_sim.dir/adjoint.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/adjoint.cpp.o.d"
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/aq_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/noise_model.cpp" "src/sim/CMakeFiles/aq_sim.dir/noise_model.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/noise_model.cpp.o.d"
  "/root/repo/src/sim/observables.cpp" "src/sim/CMakeFiles/aq_sim.dir/observables.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/observables.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/aq_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/aq_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/aq_sim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/aq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
