file(REMOVE_RECURSE
  "libaq_sim.a"
)
