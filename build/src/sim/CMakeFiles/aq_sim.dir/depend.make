# Empty dependencies file for aq_sim.
# This may be replaced when dependencies are built.
