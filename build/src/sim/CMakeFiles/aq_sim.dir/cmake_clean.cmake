file(REMOVE_RECURSE
  "CMakeFiles/aq_sim.dir/adjoint.cpp.o"
  "CMakeFiles/aq_sim.dir/adjoint.cpp.o.d"
  "CMakeFiles/aq_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/aq_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/aq_sim.dir/noise_model.cpp.o"
  "CMakeFiles/aq_sim.dir/noise_model.cpp.o.d"
  "CMakeFiles/aq_sim.dir/observables.cpp.o"
  "CMakeFiles/aq_sim.dir/observables.cpp.o.d"
  "CMakeFiles/aq_sim.dir/simulator.cpp.o"
  "CMakeFiles/aq_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/aq_sim.dir/statevector.cpp.o"
  "CMakeFiles/aq_sim.dir/statevector.cpp.o.d"
  "libaq_sim.a"
  "libaq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
