
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/aq_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/aq_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/aq_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/aq_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/pauli.cpp" "src/circuit/CMakeFiles/aq_circuit.dir/pauli.cpp.o" "gcc" "src/circuit/CMakeFiles/aq_circuit.dir/pauli.cpp.o.d"
  "/root/repo/src/circuit/serialize.cpp" "src/circuit/CMakeFiles/aq_circuit.dir/serialize.cpp.o" "gcc" "src/circuit/CMakeFiles/aq_circuit.dir/serialize.cpp.o.d"
  "/root/repo/src/circuit/unitary.cpp" "src/circuit/CMakeFiles/aq_circuit.dir/unitary.cpp.o" "gcc" "src/circuit/CMakeFiles/aq_circuit.dir/unitary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/aq_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
