file(REMOVE_RECURSE
  "CMakeFiles/aq_circuit.dir/circuit.cpp.o"
  "CMakeFiles/aq_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/aq_circuit.dir/gate.cpp.o"
  "CMakeFiles/aq_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/aq_circuit.dir/pauli.cpp.o"
  "CMakeFiles/aq_circuit.dir/pauli.cpp.o.d"
  "CMakeFiles/aq_circuit.dir/serialize.cpp.o"
  "CMakeFiles/aq_circuit.dir/serialize.cpp.o.d"
  "CMakeFiles/aq_circuit.dir/unitary.cpp.o"
  "CMakeFiles/aq_circuit.dir/unitary.cpp.o.d"
  "libaq_circuit.a"
  "libaq_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
