# Empty dependencies file for aq_circuit.
# This may be replaced when dependencies are built.
