file(REMOVE_RECURSE
  "libaq_circuit.a"
)
