file(REMOVE_RECURSE
  "CMakeFiles/aq_math.dir/dft.cpp.o"
  "CMakeFiles/aq_math.dir/dft.cpp.o.d"
  "CMakeFiles/aq_math.dir/eigen.cpp.o"
  "CMakeFiles/aq_math.dir/eigen.cpp.o.d"
  "CMakeFiles/aq_math.dir/matrix.cpp.o"
  "CMakeFiles/aq_math.dir/matrix.cpp.o.d"
  "CMakeFiles/aq_math.dir/mds.cpp.o"
  "CMakeFiles/aq_math.dir/mds.cpp.o.d"
  "CMakeFiles/aq_math.dir/pca.cpp.o"
  "CMakeFiles/aq_math.dir/pca.cpp.o.d"
  "CMakeFiles/aq_math.dir/rng.cpp.o"
  "CMakeFiles/aq_math.dir/rng.cpp.o.d"
  "CMakeFiles/aq_math.dir/stats.cpp.o"
  "CMakeFiles/aq_math.dir/stats.cpp.o.d"
  "libaq_math.a"
  "libaq_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
