# Empty compiler generated dependencies file for aq_math.
# This may be replaced when dependencies are built.
