
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/dft.cpp" "src/math/CMakeFiles/aq_math.dir/dft.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/dft.cpp.o.d"
  "/root/repo/src/math/eigen.cpp" "src/math/CMakeFiles/aq_math.dir/eigen.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/eigen.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/aq_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/mds.cpp" "src/math/CMakeFiles/aq_math.dir/mds.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/mds.cpp.o.d"
  "/root/repo/src/math/pca.cpp" "src/math/CMakeFiles/aq_math.dir/pca.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/pca.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/aq_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/aq_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/aq_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
