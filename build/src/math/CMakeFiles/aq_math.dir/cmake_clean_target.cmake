file(REMOVE_RECURSE
  "libaq_math.a"
)
