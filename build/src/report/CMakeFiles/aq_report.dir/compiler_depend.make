# Empty compiler generated dependencies file for aq_report.
# This may be replaced when dependencies are built.
