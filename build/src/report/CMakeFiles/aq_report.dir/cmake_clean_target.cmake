file(REMOVE_RECURSE
  "libaq_report.a"
)
