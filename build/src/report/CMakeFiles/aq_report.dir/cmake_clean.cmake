file(REMOVE_RECURSE
  "CMakeFiles/aq_report.dir/csv.cpp.o"
  "CMakeFiles/aq_report.dir/csv.cpp.o.d"
  "libaq_report.a"
  "libaq_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
