// Sharded serving-plane tests: SPSC mailbox lanes, doorbell wakeups, the
// JobQueue reservation/retry API that shards lean on, scoped torus
// repartition, and the end-to-end sharded ServingRuntime guarantees —
// cross-shard reroute after a dropout, synchronous backpressure, and
// bit-identical admitted results across shard counts.

#include "arbiterq/serve/shard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/serve/fault_injector.hpp"
#include "arbiterq/serve/mailbox.hpp"
#include "arbiterq/serve/runtime.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {
namespace {

// ----------------------------------------------------------------- Mailbox

TEST(Mailbox, FifoAndFullEmptySemantics) {
  Mailbox<int> box(3);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.capacity(), 3U);
  EXPECT_TRUE(box.try_push(1));
  EXPECT_TRUE(box.try_push(2));
  EXPECT_TRUE(box.try_push(3));
  EXPECT_EQ(box.size(), 3U);
  int overflow = 4;
  EXPECT_FALSE(box.try_push(overflow));  // full lane is backpressure
  EXPECT_EQ(overflow, 4);                // value stays with the caller
  int out = 0;
  ASSERT_TRUE(box.try_pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(box.try_pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(box.try_push(overflow));  // slot vacated
  ASSERT_TRUE(box.try_pop(&out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(box.try_pop(&out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(box.try_pop(&out));
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, MovesPayloadsThroughTheRing) {
  Mailbox<std::unique_ptr<int>> box(2);
  EXPECT_TRUE(box.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(box.try_pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(Mailbox, SpscStressPreservesOrder) {
  constexpr int kItems = 20000;
  Mailbox<int> box(16);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!box.try_push(int(i))) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int out = -1;
    if (box.try_pop(&out)) {
      ASSERT_EQ(out, expected);  // strict FIFO across threads
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(box.empty());
}

TEST(Doorbell, RingWakesAParkedConsumer) {
  Doorbell bell;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    // A generous backstop: the test passes fast only if ring() works.
    bell.wait(std::chrono::seconds(5));
    woke.store(true);
  });
  // Ring until the consumer has actually parked and been released.
  while (!woke.load()) {
    bell.ring();
    std::this_thread::yield();
  }
  consumer.join();
}

// ------------------------------------------------- JobQueue sharding API

TEST(JobQueueShardApi, PushReservedBypassesCapacityAndClose) {
  JobQueue q(1, 1);
  ShotBatch admitted;
  ASSERT_TRUE(q.try_push(admitted));
  // Reservation-path batches were bounded elsewhere: always accepted.
  ShotBatch reserved;
  q.push_reserved(reserved);
  q.close();
  ShotBatch late;
  q.push_reserved(late);  // mailed before close, delivered after: lands
  EXPECT_EQ(q.depth(), 3U);
  ShotBatch out;
  bool was_admitted = false;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(0, &out, &was_admitted));
    EXPECT_TRUE(was_admitted);  // all three occupy admission units
    q.task_done();
  }
  EXPECT_FALSE(q.pop(0, &out));
}

TEST(JobQueueShardApi, PopReportsRetryVersusAdmitted) {
  JobQueue q(1, 4);
  ShotBatch a;
  a.job = 1;
  ASSERT_TRUE(q.try_push(a));
  ShotBatch r;
  r.job = 2;
  r.priority = JobPriority::kHigh;
  q.push_retry(r);
  ShotBatch out;
  bool was_admitted = true;
  ASSERT_TRUE(q.pop(0, &out, &was_admitted));
  EXPECT_EQ(out.job, 2U);       // retry rides the high-priority lane
  EXPECT_FALSE(was_admitted);   // ...and does not hold an admission unit
  q.task_done();
  ASSERT_TRUE(q.pop(0, &out, &was_admitted));
  EXPECT_EQ(out.job, 1U);
  EXPECT_TRUE(was_admitted);
  q.task_done();
}

TEST(JobQueueShardApi, PopAnyScansPrioritiesAcrossOwnedLanes) {
  JobQueue q(4, 16);
  ShotBatch normal;
  normal.job = 1;
  normal.qpu = 0;
  ASSERT_TRUE(q.try_push(normal));
  ShotBatch high;
  high.job = 2;
  high.qpu = 2;
  high.priority = JobPriority::kHigh;
  ASSERT_TRUE(q.try_push(high));
  ShotBatch out;
  const std::vector<std::size_t> lanes = {0, 2};
  ASSERT_TRUE(q.pop_any(lanes, &out));
  EXPECT_EQ(out.job, 2U);  // high priority wins across lanes
  q.task_done();
  ASSERT_TRUE(q.pop_any(lanes, &out));
  EXPECT_EQ(out.job, 1U);
  q.task_done();
  EXPECT_THROW(q.pop_any({}, &out), std::invalid_argument);
}

TEST(JobQueueShardApi, LaneBaseRebasesGlobalQpusToLocalLanes) {
  // A shard owning QPUs [4, 6) keeps its two lanes local as 0 and 1.
  JobQueue q(2, 8, "serve.queue.depth.test_rebase", /*lane_base=*/4);
  ShotBatch b;
  b.job = 7;
  b.qpu = 5;
  ASSERT_TRUE(q.try_push(b));
  EXPECT_EQ(q.lane_depth(1), 1U);
  ShotBatch out;
  ASSERT_TRUE(q.pop(1, &out));
  EXPECT_EQ(out.job, 7U);
  EXPECT_EQ(out.qpu, 5);
  q.task_done();
  ShotBatch oob;
  oob.qpu = 6;  // beyond the owned block
  EXPECT_THROW(q.try_push(oob), std::out_of_range);
}

TEST(JobQueueShardApi, LockContentionCountersAccumulate) {
  JobQueue q(1, 1024);
  EXPECT_EQ(q.lock_contentions(), 0U);
  // Hammer the mutex from several threads; at least one acquisition
  // should hit the contended path and be timed.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ShotBatch b;
        q.push_retry(b);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(q.depth(), 2000U);
  if (q.lock_contentions() > 0) {
    EXPECT_GT(q.lock_wait_ns(), 0U);
  }
}

TEST(JobQueueShardApi, CloseRacesPushRetryWithoutLosingBatches) {
  // push_retry is the always-accepted path: batches pushed concurrently
  // with close() must all land (and be poppable) regardless of the
  // interleaving. Run under TSan to check the synchronization, too.
  constexpr int kPerPusher = 200;
  JobQueue q(2, 8);
  std::vector<std::thread> pushers;
  for (int t = 0; t < 2; ++t) {
    pushers.emplace_back([&, t] {
      for (int i = 0; i < kPerPusher; ++i) {
        ShotBatch b;
        b.job = static_cast<std::uint64_t>(t * kPerPusher + i);
        b.qpu = t;
        q.push_retry(b);
      }
    });
  }
  std::thread closer([&] { q.close(); });
  for (std::thread& t : pushers) t.join();
  closer.join();
  std::size_t popped = 0;
  ShotBatch out;
  while (q.pop_any({0, 1}, &out)) {
    ++popped;
    q.task_done();
  }
  EXPECT_EQ(popped, 2U * kPerPusher);
}

// --------------------------------------------------- scoped repartition

core::TorusPartition make_partition(std::size_t n) {
  std::vector<core::BehavioralVector> behavioral(n);
  std::vector<std::vector<double>> models(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    behavioral[i].contextual = {x, 2.0 * x};
    behavioral[i].topological = {1.0 / (x + 1.0)};
    models[i] = {0.1 * x, -0.2 * x, 0.05 * x};
  }
  return core::build_torus_partition(behavioral, models, 2);
}

TEST(RepartitionTorus, RemovesVictimAndLeavesSiblingsByteIdentical) {
  const core::TorusPartition prev = make_partition(6);
  const int victim = prev.tori[0].front();
  const core::TorusPartition next = core::repartition_torus(prev, victim);
  ASSERT_EQ(next.tori.size(), prev.tori.size());
  // Victim's torus: same members in the same (phase) order, minus it.
  std::vector<int> expect;
  for (int q : prev.tori[0]) {
    if (q != victim) expect.push_back(q);
  }
  EXPECT_EQ(next.tori[0], expect);
  // Sibling torus untouched — the dropout was contained.
  EXPECT_EQ(next.tori[1], prev.tori[1]);
  EXPECT_EQ(next.cycle_period, prev.cycle_period);
  EXPECT_EQ(next.phase, prev.phase);
}

TEST(RepartitionTorus, DropsAnEmptiedTorusAndRejectsUnknownQpus) {
  core::TorusPartition prev = make_partition(6);
  // Shrink torus 0 to a single member, then kill it.
  const int last = prev.tori[0].back();
  prev.tori[0] = {last};
  const core::TorusPartition next = core::repartition_torus(prev, last);
  ASSERT_EQ(next.tori.size(), 1U);
  EXPECT_EQ(next.tori[0], prev.tori[1]);
  EXPECT_THROW(core::repartition_torus(prev, 999), std::out_of_range);
}

// ------------------------------------------------- sharded ServingRuntime

class ShardedServeFixture : public ::testing::Test {
 protected:
  ShardedServeFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    core::TrainConfig cfg;
    trainer_ = std::make_unique<core::DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    math::Rng rng(42);
    std::vector<double> base(
        static_cast<std::size_t>(model_.num_weights()));
    for (double& w : base) w = rng.normal(0.0, 0.3);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w = base;
      math::Rng qrng = rng.split(q);
      for (double& x : w) x += qrng.normal(0.0, 0.05);
      weights_.push_back(std::move(w));
    }
  }

  std::vector<JobSpec> make_jobs(std::size_t n) const {
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      JobSpec spec;
      spec.features = split_.test_features[i % split_.test_features.size()];
      spec.label = split_.test_labels[i % split_.test_labels.size()];
      jobs.push_back(std::move(spec));
    }
    return jobs;
  }

  ServeConfig base_config(int shards) const {
    ServeConfig cfg;
    cfg.shots_per_job = 60;
    cfg.trajectories = 4;
    cfg.queue_capacity = 4096;  // ample: admission never rejects here
    cfg.backoff_base_us = 0.0;  // no real sleeps in tests
    cfg.num_shards = shards;
    return cfg;
  }

  std::vector<JobResult> run(const ServeConfig& cfg,
                             const std::vector<JobSpec>& jobs,
                             const FaultInjector* faults = nullptr,
                             ServingReport* report = nullptr) const {
    ServingRuntime runtime(trainer_->executors(), weights_,
                           trainer_->behavioral_vectors(), cfg, faults);
    for (const JobSpec& spec : jobs) runtime.submit(spec);
    runtime.drain();
    if (report != nullptr) *report = runtime.report();
    return runtime.results();
  }

  static void expect_bit_identical(const std::vector<JobResult>& a,
                                   const std::vector<JobResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].status, b[i].status) << "job " << i;
      EXPECT_EQ(a[i].probability, b[i].probability) << "job " << i;
      EXPECT_EQ(a[i].loss, b[i].loss) << "job " << i;
      EXPECT_EQ(a[i].retries, b[i].retries) << "job " << i;
      EXPECT_EQ(a[i].virtual_latency_us, b[i].virtual_latency_us)
          << "job " << i;
      EXPECT_EQ(a[i].torus, b[i].torus) << "job " << i;
      EXPECT_EQ(a[i].epoch, b[i].epoch) << "job " << i;
    }
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<core::DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(ShardedServeFixture, ShardLayoutCoversTheFleetContiguously) {
  // 4 shards over 6 QPUs: deliberately non-divisible, so this also pins
  // shard_of() being the exact inverse of the constructed block layout
  // (a floor-formula shard_of disagrees at the uneven boundaries).
  ServeConfig cfg = base_config(4);
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  EXPECT_EQ(runtime.num_shards(), 4U);
  const std::vector<ShardStats> shards = runtime.shard_stats();
  ASSERT_EQ(shards.size(), 4U);
  std::size_t covered = 0;
  std::size_t prev_shard = 0;
  for (int q = 0; q < 6; ++q) {
    const std::size_t s = runtime.shard_of(q);
    EXPECT_GE(s, prev_shard);  // contiguous, monotone blocks
    prev_shard = s;
    // shard_of(q) must name the shard whose block actually contains q —
    // this is the mapping reserve/admit/reroute all route by.
    ASSERT_LT(s, shards.size());
    EXPECT_GE(static_cast<std::size_t>(q), shards[s].first_qpu)
        << "qpu " << q;
    EXPECT_LT(static_cast<std::size_t>(q),
              shards[s].first_qpu + shards[s].num_qpus)
        << "qpu " << q;
    ++covered;
  }
  EXPECT_EQ(covered, 6U);
  EXPECT_EQ(runtime.shard_of(0), 0U);
  EXPECT_EQ(runtime.shard_of(5), 3U);
  runtime.drain();
  const ServingReport rep = runtime.report();
  ASSERT_EQ(rep.shards.size(), 4U);
  std::size_t qpus = 0;
  for (const ShardStats& s : rep.shards) qpus += s.num_qpus;
  EXPECT_EQ(qpus, 6U);
}

TEST_F(ShardedServeFixture, BitIdenticalResultsAcrossShardCounts) {
  const auto jobs = make_jobs(24);
  const FaultInjector faults(6, FaultInjector::parse("transient:0.08,seed:5"));
  const auto one = run(base_config(1), jobs, &faults);
  const auto two = run(base_config(2), jobs, &faults);
  const auto three = run(base_config(3), jobs, &faults);
  // 4 does not divide the 6-QPU fleet: boundary QPUs sit at uneven
  // block edges, so this leg crashes (mis-shard -> out-of-range lane)
  // if shard_of ever drifts from the constructed layout.
  const auto four = run(base_config(4), jobs, &faults);
  ASSERT_EQ(one.size(), 24U);
  expect_bit_identical(one, two);
  expect_bit_identical(one, three);
  expect_bit_identical(one, four);
  // The fault plan injected retries, so the equality above covered the
  // reroute path, not just clean execution.
  int retries = 0;
  for (const JobResult& r : one) retries += r.retries;
  EXPECT_GT(retries, 0);
}

TEST_F(ShardedServeFixture, WorkerStripingMatchesPerQpuWorkers) {
  const auto jobs = make_jobs(16);
  ServeConfig wide = base_config(2);
  ServeConfig narrow = base_config(2);
  narrow.workers_per_shard = 1;  // one worker drains all 3 lanes
  expect_bit_identical(run(wide, jobs), run(narrow, jobs));
}

TEST_F(ShardedServeFixture, CrossShardRerouteAfterDropout) {
  // One QPU per shard: every reroute crosses a shard boundary.
  const auto jobs = make_jobs(30);
  const FaultInjector faults(6, FaultInjector::parse("kill:1@8,lag:8"));
  ServeConfig cfg = base_config(6);
  ServingReport rep;
  const auto results = run(cfg, jobs, &faults, &rep);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk) << "job " << r.id;
  }
  EXPECT_EQ(rep.dropouts_detected, 1U);
  EXPECT_GE(rep.repartitions, 1U);
  ASSERT_EQ(rep.shards.size(), 6U);
  std::uint64_t cross_out = 0;
  std::uint64_t cross_in = 0;
  for (const ShardStats& s : rep.shards) {
    cross_out += s.cross_shard_out;
    cross_in += s.cross_shard_in;
  }
  // The dead QPU's batches travelled over inter-shard lanes...
  EXPECT_GT(cross_out, 0U);
  EXPECT_EQ(cross_out, cross_in);
  // ...and the victim shard sent them (shard 1 owns only QPU 1).
  EXPECT_GT(rep.shards[1].cross_shard_out, 0U);
  // Re-running the same scenario is bit-identical despite the reroutes.
  ServingReport rep2;
  expect_bit_identical(results, run(cfg, jobs, &faults, &rep2));
}

TEST_F(ShardedServeFixture, TeardownWithoutDrainJoinsCleanly) {
  // Destructor path: no drain(). Workers may be mid-execution or even
  // mid-cross-shard-reroute (one QPU per shard + a dropout forces
  // inter-shard lanes); teardown must abandon the pending work and
  // join every thread instead of hanging on a full lane.
  const FaultInjector faults(6, FaultInjector::parse("kill:1@8,lag:8"));
  ServeConfig cfg = base_config(6);
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg, &faults);
  for (const JobSpec& spec : make_jobs(30)) runtime.submit(spec);
  // Falls out of scope undrained; the test passes by not deadlocking.
}

TEST_F(ShardedServeFixture, BackpressureRejectsSynchronouslyPerShard) {
  ServeConfig cfg = base_config(2);
  cfg.queue_capacity = 8;  // 4 admission units per shard: one job's
                           // 3-batch split fits, a second on the same
                           // shard cannot
  cfg.autostart = false;   // nothing drains: rejects must be synchronous
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  const auto jobs = make_jobs(12);
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  for (const JobSpec& spec : jobs) {
    if (runtime.submit(spec).has_value()) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0U);
  EXPECT_GT(admitted, 0U);
  runtime.start();
  runtime.drain();
  const ServingReport rep = runtime.report();
  EXPECT_EQ(rep.admitted, admitted);
  EXPECT_EQ(rep.rejected, rejected);
  EXPECT_EQ(rep.completed + rep.expired + rep.failed, admitted);
  std::uint64_t reserve_rejects = 0;
  for (const ShardStats& s : rep.shards) {
    reserve_rejects += s.reserve_rejects;
  }
  EXPECT_GT(reserve_rejects, 0U);
}

TEST_F(ShardedServeFixture, SyntheticExecutionIsDeterministicAndSharded) {
  const auto jobs = make_jobs(20);
  ServeConfig cfg = base_config(3);
  cfg.synthetic_execution = true;
  const FaultInjector faults(6, FaultInjector::parse("transient:0.05,seed:11"));
  const auto a = run(cfg, jobs, &faults);
  ServeConfig cfg1 = cfg;
  cfg1.num_shards = 1;
  const auto b = run(cfg1, jobs, &faults);
  expect_bit_identical(a, b);
  for (const JobResult& r : a) {
    EXPECT_EQ(r.status, JobStatus::kOk);
    EXPECT_GE(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
  }
}

TEST_F(ShardedServeFixture, PerShardDepthGaugesAreRegistered) {
  const auto jobs = make_jobs(8);
  ServeConfig cfg = base_config(2);
  run(cfg, jobs);
  if (telemetry::telemetry_runtime_enabled()) {
    auto& reg = telemetry::MetricsRegistry::global();
    // Registered by each shard's queue on its first depth update; value
    // is 0 after drain, existence is the contract.
    EXPECT_EQ(reg.gauge("serve.queue.depth.shard0").value(), 0.0);
    EXPECT_EQ(reg.gauge("serve.queue.depth.shard1").value(), 0.0);
  }
}

}  // namespace
}  // namespace arbiterq::serve
