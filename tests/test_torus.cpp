#include "arbiterq/core/torus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::core {
namespace {

BehavioralVector bv1(double v) {
  BehavioralVector b;
  b.contextual = {v, v / 2};
  b.topological = {0.0, v / 3};
  return b;
}

struct Fixture {
  std::vector<BehavioralVector> behavioral;
  std::vector<std::vector<double>> models;
};

Fixture make_fleet(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  Fixture f;
  for (std::size_t i = 0; i < n; ++i) {
    f.behavioral.push_back(bv1(rng.uniform(0.0, 0.05)));
    f.models.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                        rng.uniform(-1.0, 1.0)});
  }
  return f;
}

TEST(TorusDefaults, MatchTableIvCounts) {
  EXPECT_EQ(default_torus_count(1), 1);
  EXPECT_EQ(default_torus_count(3), 1);
  EXPECT_EQ(default_torus_count(6), 2);
  EXPECT_EQ(default_torus_count(8), 2);
  EXPECT_EQ(default_torus_count(10), 3);
}

class TorusPartitionSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TorusPartitionSizes, CoversAllQpusDisjointly) {
  const std::size_t n = GetParam();
  const Fixture f = make_fleet(n, 100 + n);
  const TorusPartition p = build_torus_partition(f.behavioral, f.models);
  std::set<int> seen;
  for (const auto& torus : p.tori) {
    EXPECT_FALSE(torus.empty());
    for (int q : torus) {
      EXPECT_TRUE(seen.insert(q).second) << "duplicate qpu " << q;
      EXPECT_GE(q, 0);
      EXPECT_LT(q, static_cast<int>(n));
    }
  }
  EXPECT_EQ(seen.size(), n);
  EXPECT_EQ(p.tori.size(),
            static_cast<std::size_t>(default_torus_count(n)));
}

TEST_P(TorusPartitionSizes, ChunksNearEqual) {
  const std::size_t n = GetParam();
  const Fixture f = make_fleet(n, 200 + n);
  const TorusPartition p = build_torus_partition(f.behavioral, f.models);
  std::size_t lo = n;
  std::size_t hi = 0;
  for (const auto& t : p.tori) {
    lo = std::min(lo, t.size());
    hi = std::max(hi, t.size());
  }
  EXPECT_LE(hi - lo, 1U);
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, TorusPartitionSizes,
                         ::testing::Values<std::size_t>(3, 6, 8, 10, 13));

TEST(TorusPartition, PhasesInUnitInterval) {
  const Fixture f = make_fleet(10, 7);
  const TorusPartition p = build_torus_partition(f.behavioral, f.models);
  for (double ph : p.phase) {
    EXPECT_GE(ph, 0.0);
    EXPECT_LT(ph, 1.0 + 1e-12);
  }
  EXPECT_GT(p.cycle_period, 0.0);
  EXPECT_GE(p.dominant_frequency, 1U);
}

TEST(TorusPartition, TorusOfFindsMember) {
  const Fixture f = make_fleet(6, 9);
  const TorusPartition p = build_torus_partition(f.behavioral, f.models);
  for (int q = 0; q < 6; ++q) {
    const std::size_t t = p.torus_of(q);
    const auto& members = p.tori[t];
    EXPECT_NE(std::find(members.begin(), members.end(), q), members.end());
  }
  EXPECT_THROW(p.torus_of(99), std::out_of_range);
}

TEST(TorusPartition, ExplicitTorusCountHonored) {
  const Fixture f = make_fleet(9, 11);
  const TorusPartition p =
      build_torus_partition(f.behavioral, f.models, 4);
  EXPECT_EQ(p.tori.size(), 4U);
  EXPECT_THROW(build_torus_partition(f.behavioral, f.models, 10),
               std::invalid_argument);
}

TEST(TorusPartition, InputValidation) {
  Fixture f = make_fleet(4, 13);
  f.models.pop_back();
  EXPECT_THROW(build_torus_partition(f.behavioral, f.models),
               std::invalid_argument);
  EXPECT_THROW(build_torus_partition({}, {}), std::invalid_argument);
}

TEST(TorusPartition, DegenerateTwoNodeFleet) {
  const Fixture f = make_fleet(2, 17);
  const TorusPartition p = build_torus_partition(f.behavioral, f.models);
  EXPECT_EQ(p.tori.size(), 1U);
  EXPECT_EQ(p.tori[0].size(), 2U);
}

TEST(TorusPartition, IdenticalDevicesDoNotCrash) {
  std::vector<BehavioralVector> same(5, bv1(0.02));
  std::vector<std::vector<double>> models(5, {0.3, -0.1});
  const TorusPartition p = build_torus_partition(same, models);
  std::size_t total = 0;
  for (const auto& t : p.tori) total += t.size();
  EXPECT_EQ(total, 5U);
}

TEST(TorusPartition, SameTorusMembersSpreadInBehavioralSpace) {
  // Construct a fleet whose behavioral axis has two clusters; the
  // wrap-by-period partition should mix members from both clusters into
  // the same torus more often than a naive contiguous split would.
  std::vector<BehavioralVector> behavioral;
  std::vector<std::vector<double>> models;
  math::Rng rng(23);
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < 4; ++k) {
      behavioral.push_back(bv1(0.01 * c + 0.001 * k));
      models.push_back({0.5 * c + rng.uniform(-0.05, 0.05)});
    }
  }
  const TorusPartition p = build_torus_partition(behavioral, models, 2);
  // Sanity: both tori exist, all QPUs covered.
  EXPECT_EQ(p.tori.size(), 2U);
  std::size_t total = 0;
  for (const auto& t : p.tori) total += t.size();
  EXPECT_EQ(total, 8U);
}

}  // namespace
}  // namespace arbiterq::core
