// Seed-sweep properties of the distributed trainers: invariants that
// must hold for any RNG stream, not just the benchmark seed.

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

class TrainingProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  TrainingProperty()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2}, GetParam())) {}

  TrainConfig config() const {
    TrainConfig cfg;
    cfg.epochs = 20;
    cfg.seed = GetParam();
    return cfg;
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
};

TEST_P(TrainingProperty, WeightsStayFinite) {
  const DistributedTrainer trainer(
      model_, device::table3_fleet_subset(4, 2), config());
  for (Strategy s : {Strategy::kAllSharing, Strategy::kArbiterQ}) {
    const auto r = trainer.train(s, split_);
    for (const auto& node : r.weights) {
      for (double w : node) EXPECT_TRUE(std::isfinite(w));
    }
    for (double l : r.epoch_test_loss) {
      EXPECT_TRUE(std::isfinite(l));
      EXPECT_GE(l, 0.0);
    }
  }
}

TEST_P(TrainingProperty, ArbiterQImprovesOverInit) {
  const DistributedTrainer trainer(
      model_, device::table3_fleet_subset(4, 2), config());
  const auto r = trainer.train(Strategy::kArbiterQ, split_);
  EXPECT_LT(r.epoch_test_loss.back(), r.epoch_test_loss.front());
}

TEST_P(TrainingProperty, ArbiterQNotWorseThanAllSharing) {
  // On a heterogeneous fleet, personalized + similarity-shared training
  // must not lose to the unified-weights straw man (small slack for
  // stochastic ties).
  TrainConfig cfg = config();
  cfg.epochs = 35;
  const DistributedTrainer trainer(
      model_, device::table3_fleet_subset(6, 2), cfg);
  const auto arbiter = trainer.train(Strategy::kArbiterQ, split_);
  const auto sharing = trainer.train(Strategy::kAllSharing, split_);
  EXPECT_LT(arbiter.convergence.loss, sharing.convergence.loss + 0.01);
}

TEST_P(TrainingProperty, ConvergenceEpochWithinRange) {
  const DistributedTrainer trainer(
      model_, device::table3_fleet_subset(4, 2), config());
  for (Strategy s : {Strategy::kSingleNode, Strategy::kEqc}) {
    const auto r = trainer.train(s, split_);
    EXPECT_GE(r.convergence.epoch, 1);
    EXPECT_LE(r.convergence.epoch, 20);
  }
}

TEST_P(TrainingProperty, SharedWeightsIdenticalAcrossNodes) {
  const DistributedTrainer trainer(
      model_, device::table3_fleet_subset(5, 2), config());
  const auto r = trainer.train(Strategy::kEqc, split_);
  for (std::size_t i = 1; i < r.weights.size(); ++i) {
    EXPECT_EQ(r.weights[0], r.weights[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainingProperty,
                         ::testing::Values<std::uint64_t>(1, 7, 13, 77,
                                                          1234));

}  // namespace
}  // namespace arbiterq::core
