#include "arbiterq/qnn/model.hpp"

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"

namespace arbiterq::qnn {
namespace {

TEST(QnnModel, Validation) {
  EXPECT_THROW(QnnModel(Backbone::kCRz, 1, 2), std::invalid_argument);
  EXPECT_THROW(QnnModel(Backbone::kCRz, 2, 0), std::invalid_argument);
}

TEST(QnnModel, BackboneNames) {
  EXPECT_EQ(backbone_name(Backbone::kCRz), "Model-CRz");
  EXPECT_EQ(backbone_name(Backbone::kCRx), "Model-CRx");
}

struct Table2Row {
  const char* dataset;
  int qubits;
  int layers;
  int weights;
};

class Table2WeightCounts : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2WeightCounts, MatchesPaper) {
  const Table2Row row = GetParam();
  for (Backbone b : {Backbone::kCRz, Backbone::kCRx}) {
    const QnnModel m(b, row.qubits, row.layers);
    EXPECT_EQ(m.num_weights(), row.weights) << row.dataset;
    EXPECT_EQ(m.num_params(), row.weights + row.qubits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2WeightCounts,
    ::testing::Values(Table2Row{"iris", 2, 2, 8},
                      Table2Row{"wine", 4, 2, 16},
                      Table2Row{"mnist", 6, 2, 24},
                      Table2Row{"hmdb51", 10, 10, 200}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      return info.param.dataset;
    });

TEST(QnnModel, CircuitStructure) {
  const QnnModel m(Backbone::kCRz, 3, 2);
  const auto& c = m.circuit();
  EXPECT_EQ(c.num_qubits(), 3);
  // encoding (3 RY) + 2 layers * (3 RY + 3 CRZ) = 15 gates.
  EXPECT_EQ(c.size(), 15U);
  EXPECT_EQ(c.gate(0).kind, circuit::GateKind::kRY);
  EXPECT_EQ(c.gate(6).kind, circuit::GateKind::kCRZ);
  const QnnModel mx(Backbone::kCRx, 3, 2);
  EXPECT_EQ(mx.circuit().gate(6).kind, circuit::GateKind::kCRX);
}

TEST(QnnModel, EncodingGatesReferenceFeatureParams) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const auto& c = m.circuit();
  EXPECT_EQ(c.gate(0).params[0].index, 0);
  EXPECT_EQ(c.gate(1).params[0].index, 1);
  // First learning weight starts at index num_qubits.
  EXPECT_EQ(c.gate(2).params[0].index, 2);
  EXPECT_EQ(m.weight_param_index(0), 2);
}

TEST(QnnModel, ShiftRulesAlternateByLayerHalves) {
  const QnnModel m(Backbone::kCRz, 3, 2);
  // weights 0..2: RY (two-term); 3..5: CRZ (four-term); repeats.
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(m.shift_rule(w), ShiftRule::kTwoTerm) << w;
  }
  for (int w = 3; w < 6; ++w) {
    EXPECT_EQ(m.shift_rule(w), ShiftRule::kFourTerm) << w;
  }
  EXPECT_EQ(m.shift_rule(6), ShiftRule::kTwoTerm);
  EXPECT_EQ(m.shift_rule(9), ShiftRule::kFourTerm);
  EXPECT_THROW(m.shift_rule(-1), std::out_of_range);
  EXPECT_THROW(m.shift_rule(12), std::out_of_range);
}

TEST(QnnModel, PackParams) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const auto packed = m.pack_params({0.1, 0.2}, {1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(packed.size(), 6U);
  EXPECT_DOUBLE_EQ(packed[0], 0.1);
  EXPECT_DOUBLE_EQ(packed[2], 1.0);
  EXPECT_DOUBLE_EQ(packed[5], 4.0);
  EXPECT_THROW(m.pack_params({0.1}, {1.0, 2.0, 3.0, 4.0}),
               std::invalid_argument);
  EXPECT_THROW(m.pack_params({0.1, 0.2}, {1.0}), std::invalid_argument);
}

TEST(QnnModel, CircuitIsUnitaryUnderBinding) {
  const QnnModel m(Backbone::kCRx, 2, 2);
  std::vector<double> params(static_cast<std::size_t>(m.num_params()), 0.37);
  const auto u = circuit::circuit_unitary(m.circuit(), params);
  // Columns orthonormal.
  const std::size_t dim = 4;
  for (std::size_t a = 0; a < dim; ++a) {
    for (std::size_t b = 0; b < dim; ++b) {
      circuit::Complex acc{0.0, 0.0};
      for (std::size_t r = 0; r < dim; ++r) {
        acc += std::conj(u[r * dim + a]) * u[r * dim + b];
      }
      EXPECT_NEAR(std::abs(acc - (a == b ? 1.0 : 0.0)), 0.0, 1e-10);
    }
  }
}

}  // namespace
}  // namespace arbiterq::qnn
