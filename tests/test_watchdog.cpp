// AnomalyWatchdog: the three windowed detectors (rate z-score, queue
// saturation slope, drift velocity), closed-window/judge-once semantics,
// forwarding into FleetHealthMonitor, and the JSONL event log.

#include "arbiterq/monitor/watchdog.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/monitor/health.hpp"
#include "arbiterq/telemetry/timeseries.hpp"

namespace arbiterq::monitor {
namespace {

constexpr double kWindowUs = 1000.0;

telemetry::TimeSeriesConfig test_config() {
  telemetry::TimeSeriesConfig cfg;
  cfg.window_us = kWindowUs;
  cfg.max_windows = 256;
  return cfg;
}

// Put `events` unit events into window `w` of an event series (the rate
// detector judges event series exactly like counter series).
void fill_rate_window(telemetry::TimeSeriesStore& ts, const std::string& name,
                      int w, int events) {
  for (int i = 0; i < events; ++i) {
    ts.observe(name, w * kWindowUs + 1.0, 1.0);
  }
}

void set_gauge_window(telemetry::TimeSeriesStore& ts, const std::string& name,
                      int w, double value) {
  telemetry::MetricsSnapshot snap;
  snap.gauges.push_back({name, value});
  ts.sample(snap, (w + 0.5) * kWindowUs);
}

TEST(Watchdog, SteadyRateNeverFlags) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  for (int w = 0; w < 20; ++w) {
    fill_rate_window(ts, "serve.admitted", w, 50);
    EXPECT_TRUE(dog.poll(ts).empty());
  }
  EXPECT_EQ(dog.anomaly_count(), 0U);
}

TEST(Watchdog, RateSpikeFlagsAfterWarmup) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  int w = 0;
  for (; w < 8; ++w) {
    fill_rate_window(ts, "serve.admitted", w, 50);
    dog.poll(ts);
  }
  ASSERT_EQ(dog.anomaly_count(), 0U);
  // 10x the steady rate in one window, then a filler window so the spike
  // window is closed when polled.
  fill_rate_window(ts, "serve.admitted", w, 500);
  fill_rate_window(ts, "serve.admitted", w + 1, 50);
  const auto events = dog.poll(ts);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, AnomalyKind::kRateSpike);
  EXPECT_EQ(events[0].series, "serve.admitted");
  EXPECT_EQ(events[0].window, w);
  EXPECT_GT(events[0].score, 4.0);
}

TEST(Watchdog, RateCollapseFlags) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  int w = 0;
  for (; w < 8; ++w) {
    fill_rate_window(ts, "serve.admitted", w, 200);
    dog.poll(ts);
  }
  fill_rate_window(ts, "serve.admitted", w, 1);  // throughput falls off
  fill_rate_window(ts, "serve.admitted", w + 1, 200);
  const auto events = dog.poll(ts);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, AnomalyKind::kRateCollapse);
  EXPECT_EQ(events[0].window, w);
}

TEST(Watchdog, NewestWindowIsNeverJudgedAndEachWindowJudgedOnce) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  for (int w = 0; w < 8; ++w) fill_rate_window(ts, "s", w, 50);
  fill_rate_window(ts, "s", 8, 5000);  // spike sits in the newest window
  EXPECT_TRUE(dog.poll(ts).empty());
  EXPECT_TRUE(dog.poll(ts).empty());  // still filling; nothing re-judged
  fill_rate_window(ts, "s", 9, 50);   // closes the spike window
  EXPECT_FALSE(dog.poll(ts).empty());
  EXPECT_TRUE(dog.poll(ts).empty());  // judged exactly once
  EXPECT_EQ(dog.anomaly_count(), 1U);
}

TEST(Watchdog, QueueSaturationRampFlagsWithinTwoWindows) {
  // Same shape as the bench_perf --serving-scale probe: steady depth,
  // then the depth doubles every window starting at `ramp_start`.
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  const int ramp_start = 6;
  double depth = 100.0;
  int flagged_at = -1;
  for (int w = 0; w < 12; ++w) {
    if (w >= ramp_start) depth *= 2.0;
    set_gauge_window(ts, "serve.queue.depth", w, depth);
    for (const AnomalyEvent& e : dog.poll(ts)) {
      if (e.kind == AnomalyKind::kQueueSaturation && flagged_at < 0) {
        flagged_at = static_cast<int>(e.window);
      }
    }
  }
  ASSERT_GE(flagged_at, ramp_start);
  EXPECT_LT(flagged_at - ramp_start, 2);
}

TEST(Watchdog, SteadyQueueDepthNeverFlags) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  for (int w = 0; w < 16; ++w) {
    set_gauge_window(ts, "serve.queue.depth", w, 500.0 + (w % 2) * 10.0);
    EXPECT_TRUE(dog.poll(ts).empty());
  }
}

TEST(Watchdog, GaugeWithoutQueueDepthNameUsesNoSlopeDetector) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  double v = 1.0;
  for (int w = 0; w < 10; ++w) {
    set_gauge_window(ts, "serve.some.level", w, v);
    v *= 4.0;
    EXPECT_TRUE(dog.poll(ts).empty());
  }
}

TEST(Watchdog, DriftVelocityFlagsAcceleratingDrift) {
  telemetry::TimeSeriesStore ts(test_config());
  AnomalyWatchdog dog;
  for (int w = 0; w < 6; ++w) {
    set_gauge_window(ts, "monitor.qpu3.drift", w, 0.01);
    EXPECT_TRUE(dog.poll(ts).empty());
  }
  set_gauge_window(ts, "monitor.qpu3.drift", 6, 0.02);  // +1e-2 >> 1e-4
  set_gauge_window(ts, "monitor.qpu3.drift", 7, 0.02);
  const auto events = dog.poll(ts);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, AnomalyKind::kDriftVelocity);
  EXPECT_EQ(events[0].series, "monitor.qpu3.drift");
  EXPECT_NEAR(events[0].score, 0.01, 1e-9);
}

TEST(Watchdog, ForwardsIntoFleetHealthMonitor) {
  telemetry::TimeSeriesStore ts(test_config());
  FleetHealthMonitor mon(2);
  AnomalyWatchdog dog(WatchdogConfig{}, &mon);
  const int ramp_start = 4;
  double depth = 100.0;
  for (int w = 0; w < 10; ++w) {
    if (w >= ramp_start) depth *= 2.0;
    set_gauge_window(ts, "serve.queue.depth", w, depth);
    dog.poll(ts);
  }
  ASSERT_GE(dog.anomaly_count(), 1U);
  const FleetHealthReport rep = mon.report();
  EXPECT_EQ(rep.anomalies, dog.anomaly_count());
  EXPECT_NE(rep.worst_anomaly.find("serve.queue.depth"), std::string::npos);
  EXPECT_NE(rep.worst_anomaly.find("queue_saturation"), std::string::npos);
  EXPECT_GT(rep.worst_anomaly_score, 0.0);
}

TEST(Watchdog, EventLogAndJsonl) {
  telemetry::TimeSeriesStore ts(test_config());
  WatchdogConfig cfg;
  cfg.max_events = 2;
  AnomalyWatchdog dog(cfg);
  double depth = 10.0;
  for (int w = 0; w < 12; ++w) {
    depth *= 2.0;  // saturating from the start: one event per judged window
    set_gauge_window(ts, "serve.queue.depth", w, depth);
    dog.poll(ts);
  }
  EXPECT_EQ(dog.events().size(), 2U);  // retention cap, oldest dropped
  EXPECT_GT(dog.events()[0].window, 1);
  const std::string jsonl = dog.to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"anomaly\""), std::string::npos);
  EXPECT_NE(jsonl.find("queue_saturation"), std::string::npos);
  EXPECT_FALSE(dog.events()[0].to_string().empty());
}

}  // namespace
}  // namespace arbiterq::monitor
