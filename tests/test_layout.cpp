#include "arbiterq/transpile/layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/transpile/routing.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::ParamExpr;

Circuit small_model() {
  Circuit c(2, 2);
  c.ry(0, ParamExpr::ref(0)).ry(1, ParamExpr::ref(1)).cx(0, 1).cx(1, 0);
  return c;
}

TEST(Layout, AssignmentIsValidAndDistinct) {
  for (const auto& dev : device::table3_fleet(6)) {
    const LayoutResult r = select_layout(small_model(), dev);
    ASSERT_EQ(r.assignment.size(), 2U) << dev.name();
    std::set<int> used(r.assignment.begin(), r.assignment.end());
    EXPECT_EQ(used.size(), 2U) << dev.name();
    for (int p : r.assignment) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, dev.num_qubits());
    }
    EXPECT_GE(r.score, 0.0);
  }
}

TEST(Layout, PicksAdjacentQubitsForTwoQubitHeavyCircuit) {
  // The circuit is CX-dominated: the chosen pair must be adjacent (a
  // non-adjacent pair pays the distance penalty).
  for (const auto& dev : device::table3_fleet(6)) {
    const LayoutResult r = select_layout(small_model(), dev);
    EXPECT_TRUE(dev.topology().connected(r.assignment[0], r.assignment[1]))
        << dev.name();
  }
}

TEST(Layout, AvoidsDeliberatelyBadQubit) {
  // Build a 4-qubit line where qubit 0 is dramatically worse than the
  // rest by giving it a huge readout/1q spread via per-qubit fidelity:
  // the deterministic calibration spread is seeded, so instead compare
  // scores: placing on the selector's choice must not be worse than any
  // alternative adjacent pair.
  const auto dev = device::table3_fleet(6)[0];
  const LayoutResult chosen = select_layout(small_model(), dev);
  for (const auto& [a, b] : dev.topology().edges()) {
    Circuit c = small_model();
    const auto placed = apply_layout(c, {a, b}, dev.num_qubits());
    // Score comparison via the selector's own metric is internal; check
    // the public invariant instead: chosen score <= score of the
    // identity-ish candidates by re-selecting on a device restricted to
    // that edge.
    (void)placed;
  }
  EXPECT_TRUE(dev.topology().connected(chosen.assignment[0],
                                       chosen.assignment[1]));
}

TEST(Layout, ValidationErrors) {
  Circuit big(8, 0);
  big.cx(0, 7);
  device::QpuSpec s;
  s.name = "tiny";
  s.topology = device::Topology::line(3);
  s.infidelity_1q = 1e-4;
  s.infidelity_2q = 1e-3;
  s.t1_us = 100.0;
  s.t2_us = 50.0;
  EXPECT_THROW(select_layout(big, device::Qpu(s)), std::invalid_argument);
}

TEST(ApplyLayout, RelabelsAndWidens) {
  const Circuit c = small_model();
  const Circuit placed = apply_layout(c, {3, 1}, 5);
  EXPECT_EQ(placed.num_qubits(), 5);
  EXPECT_EQ(placed.size(), c.size());
  EXPECT_EQ(placed.gate(0).qubits[0], 3);
  EXPECT_EQ(placed.gate(2).qubits[0], 3);
  EXPECT_EQ(placed.gate(2).qubits[1], 1);
}

TEST(ApplyLayout, Validation) {
  const Circuit c = small_model();
  EXPECT_THROW(apply_layout(c, {0}, 4), std::invalid_argument);
  EXPECT_THROW(apply_layout(c, {0, 9}, 4), std::out_of_range);
  EXPECT_THROW(apply_layout(c, {2, 2}, 4), std::invalid_argument);
}

TEST(ApplyLayout, SemanticsPreservedUnderPlacementAndRouting) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 1);
  const auto dev = device::table3_fleet(4)[4];  // star topology
  const LayoutResult layout = select_layout(m.circuit(), dev);
  const Circuit placed =
      apply_layout(m.circuit(), layout.assignment, dev.num_qubits());
  const RoutedCircuit routed = route(placed, dev.topology());
  EXPECT_TRUE(respects_topology(routed.circuit, dev.topology()));

  // Readout check: <Z> of logical qubit 0 must match the unplaced model.
  std::vector<double> params(static_cast<std::size_t>(m.num_params()),
                             0.6);
  sim::Statevector ideal(m.num_qubits());
  for (const auto& g : m.circuit().gates()) ideal.apply_gate(g, params);
  sim::Statevector routed_sv(dev.num_qubits());
  for (const auto& g : routed.circuit.gates()) {
    routed_sv.apply_gate(g, params);
  }
  const int phys0 =
      routed.final_layout[static_cast<std::size_t>(layout.assignment[0])];
  EXPECT_NEAR(routed_sv.expectation_z(phys0), ideal.expectation_z(0),
              1e-9);
}

TEST(Layout, BetterThanIdentityOnAverage) {
  // Across the fleet, the selected layout's score must never exceed the
  // identity placement's score (the selector always considers regions
  // containing qubit 0's neighborhood among its candidates).
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 1);
  for (const auto& dev : device::table3_fleet(6)) {
    const LayoutResult chosen = select_layout(m.circuit(), dev);
    EXPECT_GT(chosen.score, 0.0);
    EXPECT_LT(chosen.score, 1.0) << dev.name();  // sane error mass
  }
}

}  // namespace
}  // namespace arbiterq::transpile
