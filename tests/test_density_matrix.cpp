#include "arbiterq/sim/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

TEST(DensityMatrix, InitialState) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-15);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-15);
  EXPECT_TRUE(rho.is_hermitian());
  EXPECT_NEAR(rho.probability_of_one(0), 0.0, 1e-15);
}

TEST(DensityMatrix, InvalidSizesThrow) {
  EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
  EXPECT_THROW(DensityMatrix(14), std::invalid_argument);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  Circuit c(3, 2);
  c.h(0)
      .ry(1, ParamExpr::ref(0))
      .cx(0, 1)
      .crz(1, 2, ParamExpr::ref(1))
      .sx(2)
      .cz(0, 2);
  const std::vector<double> params = {0.7, -1.3};

  DensityMatrix rho(3);
  Statevector sv(3);
  for (const auto& g : c.gates()) {
    rho.apply_gate(g, params);
    sv.apply_gate(g, params);
  }
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(rho.expectation_z(q), sv.expectation_z(q), 1e-10);
  }
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix rho(1);
  rho.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  // Full depolarizing: rho -> I/2 in the limit of repeated application.
  for (int i = 0; i < 200; ++i) rho.depolarize_1q(0, 0.5);
  EXPECT_NEAR(rho.probability_of_one(0), 0.5, 1e-6);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-6);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-9);
}

TEST(DensityMatrix, DepolarizingClosedFormOnZ) {
  // After depolarize(p), <Z> scales by (1 - 4p/3) for the single-qubit
  // channel (X,Y each flip Z's sign; Z preserves it).
  DensityMatrix rho(1);  // |0>, <Z> = 1
  const double p = 0.3;
  rho.depolarize_1q(0, p);
  EXPECT_NEAR(rho.expectation_z(0), 1.0 - 4.0 * p / 3.0, 1e-12);
}

TEST(DensityMatrix, TwoQubitDepolarizingPreservesTrace) {
  DensityMatrix rho(2);
  rho.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  rho.apply_mat4(circuit::gate_matrix_2q(GateKind::kCX, {}), 0, 1);
  rho.depolarize_2q(0, 1, 0.2);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
  EXPECT_TRUE(rho.is_hermitian());
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.apply_mat2(circuit::gate_matrix_1q(GateKind::kX, {}), 0);  // |1>
  rho.amplitude_damp(0, 0.25);
  EXPECT_NEAR(rho.probability_of_one(0), 0.75, 1e-12);
  rho.amplitude_damp(0, 1.0);
  EXPECT_NEAR(rho.probability_of_one(0), 0.0, 1e-12);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherenceKeepsPopulations) {
  DensityMatrix rho(1);
  rho.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  const double p1_before = rho.probability_of_one(0);
  for (int i = 0; i < 100; ++i) rho.phase_damp(0, 0.5);
  EXPECT_NEAR(rho.probability_of_one(0), p1_before, 1e-9);
  // Fully dephased |+><+| becomes I/2.
  EXPECT_NEAR(rho.purity(), 0.5, 1e-6);
}

TEST(DensityMatrix, ChannelsNoopAtZeroStrength) {
  DensityMatrix rho(1);
  rho.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  const double z = rho.expectation_z(0);
  rho.depolarize_1q(0, 0.0);
  rho.amplitude_damp(0, 0.0);
  rho.phase_damp(0, 0.0);
  EXPECT_DOUBLE_EQ(rho.expectation_z(0), z);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(ReferenceExpectation, NoiselessMatchesStatevector) {
  Circuit c(2, 1);
  c.ry(0, ParamExpr::ref(0)).cx(0, 1).ry(1, ParamExpr::constant(0.4));
  const std::vector<double> params = {1.1};
  NoiseModel none;
  Statevector sv(2);
  for (const auto& g : c.gates()) sv.apply_gate(g, params);
  EXPECT_NEAR(reference_expectation_z(c, params, none, 0),
              sv.expectation_z(0), 1e-10);
}

TEST(ReferenceExpectation, ReadoutContractsZ) {
  Circuit c(1);
  c.x(0);  // <Z> = -1
  NoiseModel m(1);
  m.set_readout_error(0, 0.1, 0.2);
  // <Z>' = (1 - 0.1 - 0.2)(-1) + (0.2 - 0.1) = -0.6.
  EXPECT_NEAR(reference_expectation_z(c, {}, m, 0), -0.6, 1e-12);
}

TEST(ReferenceExpectation, DepolarizingReducesMagnitude) {
  Circuit c(1);
  c.x(0);
  NoiseModel m(1);
  m.set_depolarizing_1q(0, 0.1);
  const double z = reference_expectation_z(c, {}, m, 0);
  EXPECT_GT(z, -1.0);
  EXPECT_LT(z, -0.5);
}

}  // namespace
}  // namespace arbiterq::sim
