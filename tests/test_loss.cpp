#include "arbiterq/qnn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace arbiterq::qnn {
namespace {

TEST(Loss, MseValues) {
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kMse, 0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kMse, 1.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kMse, 0.3, 1), 0.49);
}

TEST(Loss, CrossEntropyValues) {
  EXPECT_NEAR(loss_value(LossKind::kCrossEntropy, 0.5, 1), std::log(2.0),
              1e-12);
  EXPECT_NEAR(loss_value(LossKind::kCrossEntropy, 0.9, 1), -std::log(0.9),
              1e-12);
  // Clamped: no infinity at the boundary.
  EXPECT_LT(loss_value(LossKind::kCrossEntropy, 0.0, 1), 30.0);
}

TEST(Loss, InvalidLabelThrows) {
  EXPECT_THROW(loss_value(LossKind::kMse, 0.5, 2), std::invalid_argument);
  EXPECT_THROW(loss_derivative(LossKind::kMse, 0.5, -1),
               std::invalid_argument);
}

class LossDerivative
    : public ::testing::TestWithParam<std::tuple<LossKind, double, int>> {};

TEST_P(LossDerivative, MatchesNumericDerivative) {
  const auto [kind, p, label] = GetParam();
  const double h = 1e-7;
  const double numeric = (loss_value(kind, p + h, label) -
                          loss_value(kind, p - h, label)) /
                         (2.0 * h);
  EXPECT_NEAR(loss_derivative(kind, p, label), numeric, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossDerivative,
    ::testing::Combine(::testing::Values(LossKind::kMse,
                                         LossKind::kCrossEntropy),
                       ::testing::Values(0.1, 0.35, 0.5, 0.77, 0.9),
                       ::testing::Values(0, 1)));

TEST(Loss, BatchLoss) {
  EXPECT_NEAR(batch_loss(LossKind::kMse, {0.0, 1.0}, {0, 0}), 0.5, 1e-12);
  EXPECT_THROW(batch_loss(LossKind::kMse, {0.5}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(batch_loss(LossKind::kMse, {}, {}), std::invalid_argument);
}

TEST(Loss, BatchAccuracy) {
  EXPECT_DOUBLE_EQ(batch_accuracy({0.9, 0.1, 0.6, 0.4}, {1, 0, 1, 1}), 0.75);
  EXPECT_DOUBLE_EQ(batch_accuracy({0.5}, {1}), 1.0);  // 0.5 rounds to 1
  EXPECT_THROW(batch_accuracy({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::qnn
