#include "arbiterq/core/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

class SchedulerFixture : public ::testing::Test {
 protected:
  SchedulerFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    TrainConfig cfg;
    cfg.epochs = 15;
    trainer_ = std::make_unique<DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    result_ = trainer_->train(Strategy::kArbiterQ, split_);
    partition_ = build_torus_partition(trainer_->behavioral_vectors(),
                                       result_.weights);
    tasks_ = make_tasks(split_.test_features, split_.test_labels);
    config_.shots_per_task = 64;
    config_.warmup_shots = 8;
    config_.trajectories = 4;
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<DistributedTrainer> trainer_;
  TrainResult result_;
  TorusPartition partition_;
  std::vector<InferenceTask> tasks_;
  ScheduleConfig config_;
};

TEST_F(SchedulerFixture, MakeTasksValidation) {
  EXPECT_EQ(tasks_.size(), split_.test_features.size());
  EXPECT_THROW(make_tasks({{0.0}}, {0, 1}), std::invalid_argument);
}

TEST_F(SchedulerFixture, ReportWellFormed) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  const InferenceReport r = sched.run(tasks_);
  EXPECT_EQ(r.per_task_loss.size(), tasks_.size());
  EXPECT_EQ(r.qpu_shots.size(), 6U);
  EXPECT_EQ(r.qpu_busy_us.size(), 6U);
  EXPECT_GE(r.mean_loss, 0.0);
  EXPECT_GE(r.loss_stddev, 0.0);
  EXPECT_GE(r.workload_imbalance, 1.0);
  for (double l : r.per_task_loss) EXPECT_GE(l, 0.0);
}

TEST_F(SchedulerFixture, AllShotsAccounted) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  const InferenceReport r = sched.run(tasks_);
  const double total = std::accumulate(r.qpu_shots.begin(),
                                       r.qpu_shots.end(), 0.0);
  const double expected =
      static_cast<double>(tasks_.size()) *
      (config_.shots_per_task + config_.warmup_shots);
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST_F(SchedulerFixture, DeterministicUnderSeed) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  const InferenceReport a = sched.run(tasks_);
  const InferenceReport b = sched.run(tasks_);
  EXPECT_EQ(a.per_task_loss, b.per_task_loss);
}

TEST_F(SchedulerFixture, EveryQpuParticipates) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  const InferenceReport r = sched.run(tasks_);
  for (double s : r.qpu_shots) EXPECT_GT(s, 0.0);
}

TEST_F(SchedulerFixture, TorusScoresOnePerTorus) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  EXPECT_EQ(sched.torus_scores().size(), partition_.tori.size());
}

TEST_F(SchedulerFixture, BatchBaselineWellFormed) {
  const InferenceReport r = batch_based_inference(
      trainer_->executors(), result_.weights, tasks_, config_);
  EXPECT_EQ(r.per_task_loss.size(), tasks_.size());
  const double total =
      std::accumulate(r.qpu_shots.begin(), r.qpu_shots.end(), 0.0);
  EXPECT_NEAR(total,
              static_cast<double>(tasks_.size()) * config_.shots_per_task,
              1e-9);
}

TEST_F(SchedulerFixture, BatchAssignsEachTaskToOneQpu) {
  const InferenceReport r = batch_based_inference(
      trainer_->executors(), result_.weights, tasks_, config_);
  // Each task contributes exactly shots_per_task to exactly one device,
  // so every device's count is a multiple of shots_per_task.
  for (double s : r.qpu_shots) {
    const double ratio = s / config_.shots_per_task;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  }
}

TEST_F(SchedulerFixture, ShotOrientedBeatsBatchOnLossSpread) {
  // Fig. 2b: shot-based inference has a smaller loss spread than
  // batch-based; §V-C: and a lower mean loss.
  ScheduleConfig cfg = config_;
  cfg.shots_per_task = 256;
  cfg.trajectories = 16;
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, cfg);
  const InferenceReport shot = sched.run(tasks_);
  const InferenceReport batch = batch_based_inference(
      trainer_->executors(), result_.weights, tasks_, cfg);
  // Same weights on both sides: this isolates the *scheduling* effect.
  // Shot-splitting averages device noise, so the spread must shrink and
  // the mean must not get worse. (Table IV's 24.71% mean-loss gap also
  // includes the model gap — EQC's central weights vs personalized ones —
  // which bench_table4 measures.)
  EXPECT_LT(shot.mean_loss, batch.mean_loss + 0.01);
  EXPECT_LT(shot.loss_stddev, batch.loss_stddev);
}

TEST_F(SchedulerFixture, InputValidation) {
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition_, config_);
  EXPECT_THROW(sched.run({}), std::invalid_argument);
  EXPECT_THROW(batch_based_inference(trainer_->executors(), result_.weights,
                                     {}, config_),
               std::invalid_argument);
  std::vector<std::vector<double>> bad_weights(2);
  EXPECT_THROW(ShotOrientedScheduler(trainer_->executors(), bad_weights,
                                     partition_, config_),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::core
