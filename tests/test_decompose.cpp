#include "arbiterq/transpile/decompose.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "arbiterq/circuit/unitary.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;
using device::BasisSet;

struct DecomposeCase {
  GateKind kind;
  double angle;
};

std::string case_name(const ::testing::TestParamInfo<
                      std::tuple<DecomposeCase, BasisSet>>& info) {
  const auto& [dc, basis] = info.param;
  std::string n = circuit::gate_name(dc.kind) + "_" +
                  (basis == BasisSet::kIbm ? "ibm" : "origin") + "_" +
                  std::to_string(info.index);
  return n;
}

class DecomposeEquivalence
    : public ::testing::TestWithParam<std::tuple<DecomposeCase, BasisSet>> {
};

TEST_P(DecomposeEquivalence, UnitaryPreservedUpToPhase) {
  const auto& [dc, basis] = GetParam();
  Circuit c(2, 1);
  Gate g;
  g.kind = dc.kind;
  g.qubits = {0, circuit::gate_arity(dc.kind) == 2 ? 1 : 0};
  if (circuit::gate_param_count(dc.kind) >= 1) {
    g.params[0] = ParamExpr::ref(0);
  }
  if (dc.kind == GateKind::kU3) {
    g.params[1] = ParamExpr::constant(0.8);
    g.params[2] = ParamExpr::constant(-0.5);
  }
  c.add(g);

  const Circuit native = decompose_to_basis(c, basis);
  for (const Gate& ng : native.gates()) {
    EXPECT_TRUE(is_native(ng.kind, basis))
        << "non-native " << circuit::gate_name(ng.kind);
  }
  const std::vector<double> params = {dc.angle};
  const auto original = circuit_unitary(c, params);
  const auto rewritten = circuit_unitary(native, params);
  EXPECT_LT(circuit::unitary_distance_up_to_phase(original, rewritten),
            1e-9)
      << circuit::gate_name(dc.kind) << " angle " << dc.angle;
}

constexpr double kPi = std::numbers::pi;

INSTANTIATE_TEST_SUITE_P(
    AllGates, DecomposeEquivalence,
    ::testing::Combine(
        ::testing::Values(
            DecomposeCase{GateKind::kI, 0.0}, DecomposeCase{GateKind::kX, 0.0},
            DecomposeCase{GateKind::kY, 0.0}, DecomposeCase{GateKind::kZ, 0.0},
            DecomposeCase{GateKind::kH, 0.0}, DecomposeCase{GateKind::kS, 0.0},
            DecomposeCase{GateKind::kSdg, 0.0},
            DecomposeCase{GateKind::kSX, 0.0},
            DecomposeCase{GateKind::kRX, 0.7},
            DecomposeCase{GateKind::kRX, -kPi / 3},
            DecomposeCase{GateKind::kRY, 1.3},
            DecomposeCase{GateKind::kRY, kPi},
            DecomposeCase{GateKind::kRZ, 0.4},
            DecomposeCase{GateKind::kRZ, -2.6},
            DecomposeCase{GateKind::kU3, 0.9},
            DecomposeCase{GateKind::kCX, 0.0},
            DecomposeCase{GateKind::kCZ, 0.0},
            DecomposeCase{GateKind::kCRX, 1.1},
            DecomposeCase{GateKind::kCRX, -0.3},
            DecomposeCase{GateKind::kCRY, 0.8},
            DecomposeCase{GateKind::kCRZ, 2.2},
            DecomposeCase{GateKind::kCRZ, -kPi / 2},
            DecomposeCase{GateKind::kSwap, 0.0}),
        ::testing::Values(BasisSet::kIbm, BasisSet::kOrigin)),
    case_name);

TEST(Decompose, ParameterReferencesSurviveRebinding) {
  // Decompose once, bind twice: the rewritten circuit must track the
  // original for any parameter value.
  Circuit c(2, 2);
  c.ry(0, ParamExpr::ref(0)).crz(0, 1, ParamExpr::ref(1));
  const Circuit native = decompose_to_basis(c, BasisSet::kIbm);
  for (const std::vector<double> params :
       {std::vector<double>{0.3, -1.0}, std::vector<double>{2.0, 0.7}}) {
    EXPECT_LT(circuit::unitary_distance_up_to_phase(
                  circuit_unitary(c, params),
                  circuit_unitary(native, params)),
              1e-9);
  }
}

TEST(Decompose, LogicalIdsAttributeBasisGates) {
  Circuit c(2, 1);
  c.h(0).crz(0, 1, ParamExpr::ref(0));
  const Circuit native = decompose_to_basis(c, BasisSet::kIbm);
  bool saw0 = false;
  bool saw1 = false;
  for (const Gate& g : native.gates()) {
    ASSERT_GE(g.logical_id, 0);
    ASSERT_LE(g.logical_id, 1);
    saw0 |= g.logical_id == 0;
    saw1 |= g.logical_id == 1;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST(Decompose, RoutingSwapFlagPropagates) {
  Circuit c(2, 0);
  Gate sw;
  sw.kind = GateKind::kSwap;
  sw.qubits = {0, 1};
  sw.is_routing_swap = true;
  sw.logical_id = 5;
  c.add(sw);
  for (BasisSet basis : {BasisSet::kIbm, BasisSet::kOrigin}) {
    const Circuit native = decompose_to_basis(c, basis);
    EXPECT_GE(native.size(), 3U);
    for (const Gate& g : native.gates()) {
      EXPECT_TRUE(g.is_routing_swap);
      EXPECT_EQ(g.logical_id, 5);
    }
  }
}

TEST(Decompose, WholeModelCircuitEquivalence) {
  Circuit c(3, 4);
  c.ry(0, ParamExpr::ref(0))
      .ry(1, ParamExpr::ref(1))
      .crz(0, 1, ParamExpr::ref(2))
      .crx(1, 2, ParamExpr::ref(3))
      .h(2)
      .cx(2, 0);
  const std::vector<double> params = {0.3, -0.9, 1.7, 0.5};
  for (BasisSet basis : {BasisSet::kIbm, BasisSet::kOrigin}) {
    const Circuit native = decompose_to_basis(c, basis);
    EXPECT_LT(circuit::unitary_distance_up_to_phase(
                  circuit_unitary(c, params),
                  circuit_unitary(native, params)),
              1e-8);
  }
}

TEST(Decompose, NativeGateCounts) {
  EXPECT_EQ(native_gate_count(GateKind::kRZ, BasisSet::kIbm), 1);
  EXPECT_EQ(native_gate_count(GateKind::kCX, BasisSet::kIbm), 1);
  EXPECT_EQ(native_gate_count(GateKind::kRY, BasisSet::kOrigin), 1);
  EXPECT_EQ(native_gate_count(GateKind::kCZ, BasisSet::kOrigin), 1);
  EXPECT_GT(native_gate_count(GateKind::kCRZ, BasisSet::kIbm), 3);
  EXPECT_GT(native_gate_count(GateKind::kSwap, BasisSet::kOrigin), 3);
  EXPECT_EQ(native_gate_count(GateKind::kI, BasisSet::kIbm), 0);
}

TEST(Decompose, IsNative) {
  EXPECT_TRUE(is_native(GateKind::kSX, BasisSet::kIbm));
  EXPECT_FALSE(is_native(GateKind::kSX, BasisSet::kOrigin));
  EXPECT_TRUE(is_native(GateKind::kU3, BasisSet::kOrigin));
  EXPECT_FALSE(is_native(GateKind::kU3, BasisSet::kIbm));
  EXPECT_FALSE(is_native(GateKind::kCRZ, BasisSet::kIbm));
}

}  // namespace
}  // namespace arbiterq::transpile
