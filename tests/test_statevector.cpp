#include "arbiterq/sim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_EQ(sv.dim(), 8U);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - 1.0), 0.0, 1e-15);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-15);
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-15);
}

TEST(Statevector, InvalidSizesThrow) {
  EXPECT_THROW(Statevector(0), std::invalid_argument);
  EXPECT_THROW(Statevector(-1), std::invalid_argument);
  EXPECT_THROW(Statevector(30), std::invalid_argument);
}

TEST(Statevector, XFlipsTarget) {
  Statevector sv(2);
  sv.apply_mat2(circuit::gate_matrix_1q(GateKind::kX, {}), 1);
  EXPECT_NEAR(sv.probability_of_one(1), 1.0, 1e-15);
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-15);
  EXPECT_NEAR(sv.expectation_z(1), -1.0, 1e-15);
  EXPECT_NEAR(sv.expectation_z(0), 1.0, 1e-15);
}

TEST(Statevector, BellStateProbabilities) {
  Statevector sv(2);
  sv.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  sv.apply_mat4(circuit::gate_matrix_2q(GateKind::kCX, {}), 0, 1);
  const auto p = sv.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[3], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_NEAR(p[2], 0.0, 1e-12);
}

TEST(Statevector, RyRotatesProbabilitySmoothly) {
  for (double theta : {0.0, 0.4, 1.1, std::numbers::pi}) {
    Statevector sv(1);
    sv.apply_mat2(circuit::matrix_ry(theta), 0);
    EXPECT_NEAR(sv.probability_of_one(0), std::sin(theta / 2) *
                                              std::sin(theta / 2),
                1e-12);
  }
}

TEST(Statevector, ApplyGateBindsParams) {
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0));
  Statevector sv(1);
  const std::vector<double> params = {std::numbers::pi};
  sv.apply_gate(c.gate(0), params);
  EXPECT_NEAR(sv.probability_of_one(0), 1.0, 1e-12);
}

TEST(Statevector, PauliApplication) {
  Statevector sv(1);
  sv.apply_pauli(1, 0);  // X
  EXPECT_NEAR(sv.probability_of_one(0), 1.0, 1e-15);
  sv.apply_pauli(3, 0);  // Z on |1> adds phase only
  EXPECT_NEAR(sv.probability_of_one(0), 1.0, 1e-15);
  sv.apply_pauli(2, 0);  // Y on |1> -> -i|0>
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-15);
  EXPECT_THROW(sv.apply_pauli(0, 0), std::invalid_argument);
  EXPECT_THROW(sv.apply_pauli(4, 0), std::invalid_argument);
}

TEST(Statevector, ResetRestoresGround) {
  Statevector sv(2);
  sv.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  sv.reset();
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - 1.0), 0.0, 1e-15);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-15);
}

TEST(Statevector, NormPreservedByLongRandomCircuit) {
  math::Rng rng(77);
  Statevector sv(4);
  for (int i = 0; i < 200; ++i) {
    const int q = static_cast<int>(rng.uniform_int(4));
    sv.apply_mat2(circuit::matrix_u3(rng.uniform(0, 3.0), rng.uniform(0, 3.0),
                                     rng.uniform(0, 3.0)),
                  q);
    int q2 = static_cast<int>(rng.uniform_int(4));
    if (q2 == q) q2 = (q + 1) % 4;
    sv.apply_mat4(circuit::gate_matrix_2q(GateKind::kCX, {}), q, q2);
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(Statevector, SamplingMatchesBornRule) {
  Statevector sv(1);
  sv.apply_mat2(circuit::matrix_ry(1.0), 0);  // p1 = sin^2(0.5) ~ 0.2298
  math::Rng rng(5);
  int ones = 0;
  const int shots = 20000;
  for (int s = 0; s < shots; ++s) {
    ones += static_cast<int>(sv.sample(rng) & 1U);
  }
  const double expected = std::sin(0.5) * std::sin(0.5);
  EXPECT_NEAR(static_cast<double>(ones) / shots, expected, 0.01);
}

TEST(Statevector, SampleDeterministicUnderSeed) {
  Statevector sv(2);
  sv.apply_mat2(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  math::Rng a(9);
  math::Rng b(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sv.sample(a), sv.sample(b));
}

}  // namespace
}  // namespace arbiterq::sim
