// TimeSeriesStore + Collector: window folding semantics for every series
// kind, retention and cap bounds, JSON dumps, the Collector loop under a
// fake clock, the dashboard renderers, and the serving runtime's
// virtual-clock event series reproducing bit-identically across runs.

#include "arbiterq/telemetry/timeseries.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/serve/runtime.hpp"
#include "arbiterq/telemetry/dashboard.hpp"
#include "arbiterq/telemetry/http.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::telemetry {
namespace {

MetricsSnapshot snap_counter(const std::string& name, std::uint64_t v) {
  MetricsSnapshot s;
  s.counters.push_back({name, v});
  return s;
}

MetricsSnapshot snap_gauge(const std::string& name, double v) {
  MetricsSnapshot s;
  s.gauges.push_back({name, v});
  return s;
}

TEST(TimeSeriesStore, CounterFoldsToPerWindowDeltas) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  ts.sample(snap_counter("c", 10), 100.0);   // window 0: baseline
  ts.sample(snap_counter("c", 25), 600.0);   // window 0: +15
  ts.sample(snap_counter("c", 40), 1500.0);  // window 1: +15
  const auto series = ts.snapshot("c");
  ASSERT_EQ(series.size(), 1U);
  const SeriesSnapshot& s = series[0];
  EXPECT_EQ(s.kind, SeriesKind::kCounterRate);
  ASSERT_EQ(s.windows.size(), 2U);
  // The first sample has no previous value: its full value folds in as
  // the baseline delta.
  EXPECT_DOUBLE_EQ(s.windows[0].delta, 10.0 + 15.0);
  EXPECT_DOUBLE_EQ(s.windows[1].delta, 15.0);
  // rate() is per second of series time: 15 per 1000us window = 15000/s.
  EXPECT_DOUBLE_EQ(s.rate(1), 15000.0);
}

TEST(TimeSeriesStore, CounterResetRestartsBaseline) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  ts.sample(snap_counter("c", 100), 100.0);
  ts.sample(snap_counter("c", 3), 1200.0);  // registry reset: 3 < 100
  const auto series = ts.snapshot("c");
  ASSERT_EQ(series[0].windows.size(), 2U);
  // The post-reset value folds as-is, never as a negative delta.
  EXPECT_DOUBLE_EQ(series[0].windows[1].delta, 3.0);
}

TEST(TimeSeriesStore, GaugeKeepsLastMinMaxPerWindow) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  ts.sample(snap_gauge("g", 5.0), 100.0);
  ts.sample(snap_gauge("g", -2.0), 400.0);
  ts.sample(snap_gauge("g", 3.0), 900.0);
  const auto series = ts.snapshot("g");
  ASSERT_EQ(series.size(), 1U);
  EXPECT_EQ(series[0].kind, SeriesKind::kGauge);
  ASSERT_EQ(series[0].windows.size(), 1U);
  EXPECT_DOUBLE_EQ(series[0].windows[0].last, 3.0);
  EXPECT_DOUBLE_EQ(series[0].windows[0].min, -2.0);
  EXPECT_DOUBLE_EQ(series[0].windows[0].max, 5.0);
}

TEST(TimeSeriesStore, HistogramMergesBucketDeltasWithQuantiles) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  HistogramSnapshot h;
  h.name = "h";
  h.upper_bounds = {10.0, 100.0, 1000.0};
  h.bucket_counts = {8, 2, 0, 0};
  h.count = 10;
  h.sum = 60.0;
  MetricsSnapshot s1;
  s1.histograms.push_back(h);
  ts.sample(s1, 100.0);
  // Second sample in a later window: 90 more observations, all fast.
  h.bucket_counts = {98, 2, 0, 0};
  h.count = 100;
  h.sum = 500.0;
  MetricsSnapshot s2;
  s2.histograms.push_back(h);
  ts.sample(s2, 1500.0);
  const auto series = ts.snapshot("h");
  ASSERT_EQ(series.size(), 1U);
  EXPECT_EQ(series[0].kind, SeriesKind::kHistogram);
  ASSERT_EQ(series[0].windows.size(), 2U);
  EXPECT_EQ(series[0].windows[0].count, 10U);
  EXPECT_EQ(series[0].windows[1].count, 90U);
  ASSERT_EQ(series[0].windows[1].buckets.size(), 4U);
  EXPECT_EQ(series[0].windows[1].buckets[0], 90U);
  // All 90 delta observations are in the <=10 bucket: p50 interpolates
  // inside it.
  EXPECT_LE(series[0].quantile(1, 0.5), 10.0);
  EXPECT_GT(series[0].quantile(1, 0.5), 0.0);
  // Quantiles on non-histogram windows are NaN.
  TimeSeriesStore other(cfg);
  other.observe("e", 100.0, 1.0);
  EXPECT_TRUE(std::isnan(other.snapshot("e")[0].quantile(0, 0.5)));
}

TEST(TimeSeriesStore, EventPathFoldsCountSumMinMax) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  TimeSeriesStore::Series* s = ts.series("ev", SeriesKind::kEvent);
  ASSERT_NE(s, nullptr);
  ts.observe(s, 100.0, 2.0);
  ts.observe(s, 200.0, -1.0);
  ts.observe(s, 1100.0, 7.0);
  const auto series = ts.snapshot("ev");
  ASSERT_EQ(series[0].windows.size(), 2U);
  EXPECT_EQ(series[0].windows[0].count, 2U);
  EXPECT_DOUBLE_EQ(series[0].windows[0].sum, 1.0);
  EXPECT_DOUBLE_EQ(series[0].windows[0].min, -1.0);
  EXPECT_DOUBLE_EQ(series[0].windows[0].max, 2.0);
  EXPECT_EQ(series[0].windows[1].count, 1U);
  // Event rate: 2 events in a 1000us window = 2000 events/s.
  EXPECT_DOUBLE_EQ(series[0].rate(0), 2000.0);
}

TEST(TimeSeriesStore, RetentionEvictsOldestWindowFirst) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  cfg.max_windows = 3;
  TimeSeriesStore ts(cfg);
  for (int w = 0; w < 6; ++w) {
    ts.observe("ev", 1000.0 * w + 1.0, 1.0);
  }
  const auto series = ts.snapshot("ev");
  ASSERT_EQ(series[0].windows.size(), 3U);
  EXPECT_EQ(series[0].windows.front().index, 3);
  EXPECT_EQ(series[0].windows.back().index, 5);
  // An observation older than everything retained is absorbed without
  // resurrecting an evicted window (and without crashing).
  ts.observe("ev", 1.0, 1.0);
  EXPECT_EQ(ts.snapshot("ev")[0].windows.front().index, 3);
}

TEST(TimeSeriesStore, SeriesCapCountsDrops) {
  TimeSeriesConfig cfg;
  cfg.max_series = 2;
  TimeSeriesStore ts(cfg);
  EXPECT_NE(ts.series("a", SeriesKind::kEvent), nullptr);
  EXPECT_NE(ts.series("b", SeriesKind::kEvent), nullptr);
  EXPECT_EQ(ts.series("c", SeriesKind::kEvent), nullptr);
  // Null handles are observable no-ops, so hot paths need no branch.
  ts.observe(nullptr, 0.0, 1.0);
  ts.observe("d", 0.0, 1.0);
  EXPECT_EQ(ts.series_count(), 2U);
  EXPECT_GE(ts.dropped_series(), 2U);
}

TEST(TimeSeriesStore, KindMismatchThrows) {
  TimeSeriesStore ts;
  ASSERT_NE(ts.series("x", SeriesKind::kEvent), nullptr);
  EXPECT_THROW(ts.series("x", SeriesKind::kGauge), std::invalid_argument);
  EXPECT_THROW(ts.series("h", SeriesKind::kHistogram, {3.0, 2.0}),
               std::invalid_argument);  // bounds not ascending
}

TEST(TimeSeriesStore, SnapshotFilterIsSubstringMatch) {
  TimeSeriesStore ts;
  ts.observe("serve.shard0.rate", 0.0, 1.0);
  ts.observe("serve.shard1.rate", 0.0, 1.0);
  ts.observe("monitor.drift", 0.0, 1.0);
  EXPECT_EQ(ts.snapshot("shard").size(), 2U);
  EXPECT_EQ(ts.snapshot("").size(), 3U);
  const std::string json = ts.to_json("shard0");
  EXPECT_NE(json.find("serve.shard0.rate"), std::string::npos);
  EXPECT_EQ(json.find("monitor.drift"), std::string::npos);
}

TEST(TimeSeriesStore, JsonEmitsPerKindFields) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  ts.sample(snap_counter("c", 5), 100.0);
  ts.observe("e", 100.0, 2.5);
  const std::string json = ts.to_json();
  EXPECT_NE(json.find("\"kind\": \"counter_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"event\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\""), std::string::npos);
  EXPECT_NE(json.find("\"t_us\""), std::string::npos);
}

// ------------------------------------------------------------- Collector

TEST(Collector, FakeClockSamplesIntoWindows) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  MetricsRegistry reg;
  Counter& c = reg.counter("jobs");
  double now = 0.0;
  int pre = 0, post = 0;
  CollectorOptions opts;
  opts.clock = [&now] { return now; };
  opts.pre_sample = [&pre] { ++pre; };
  opts.post_sample = [&post] { ++post; };
  Collector col(ts, reg, opts);
  c.add(10);
  col.collect_once();
  now = 1500.0;
  c.add(5);
  col.collect_once();
  EXPECT_EQ(col.samples(), 2U);
  EXPECT_EQ(pre, 2);
  EXPECT_EQ(post, 2);
  const auto series = ts.snapshot("jobs");
  ASSERT_EQ(series.size(), 1U);
  ASSERT_EQ(series[0].windows.size(), 2U);
  EXPECT_DOUBLE_EQ(series[0].windows[0].delta, 10.0);
  EXPECT_DOUBLE_EQ(series[0].windows[1].delta, 5.0);
}

TEST(Collector, StartStopTakesFinalSample) {
  TimeSeriesStore ts;
  MetricsRegistry reg;
  reg.counter("x").add(1);
  CollectorOptions opts;
  opts.cadence_us = 1e9;  // one initial tick, then sleep forever
  Collector col(ts, reg, opts);
  col.start();
  EXPECT_TRUE(col.running());
  while (col.samples() < 1) std::this_thread::yield();
  col.stop();
  EXPECT_FALSE(col.running());
  // At least the loop's first sample plus stop()'s closing sample.
  EXPECT_GE(col.samples(), 2U);
  EXPECT_EQ(ts.snapshot("x").size(), 1U);
}

// ------------------------------------------------- dashboard + query parsing

TEST(Dashboard, TerminalSparklineScalesMinToMax) {
  const std::string flat = terminal_sparkline({1.0, 1.0, 1.0});
  EXPECT_FALSE(flat.empty());
  const std::string ramp = terminal_sparkline({0.0, 1.0, 2.0, 3.0});
  // Lowest and highest points map to the lightest/heaviest glyphs.
  EXPECT_EQ(ramp.find("▁"), 0U);
  EXPECT_NE(ramp.find("█"), std::string::npos);
  EXPECT_TRUE(terminal_sparkline({}).empty());
}

TEST(Dashboard, SvgAndHtmlRender) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1000.0;
  TimeSeriesStore ts(cfg);
  for (int w = 0; w < 4; ++w) ts.observe("serve.rate", 1000.0 * w, 1.0);
  const std::string svg = svg_sparkline({1.0, 2.0, 3.0});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  const std::string html =
      render_dashboard_html(ts, "fleet", "", "<pre>footer</pre>");
  EXPECT_NE(html.find("serve.rate"), std::string::npos);
  EXPECT_NE(html.find("<pre>footer</pre>"), std::string::npos);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
}

TEST(Dashboard, PlotValuesPicksKindAppropriateSignal) {
  TimeSeriesConfig cfg;
  cfg.window_us = 1'000'000.0;  // 1s windows: rate == count
  TimeSeriesStore ts(cfg);
  ts.observe("ev", 100.0, 1.0);
  ts.observe("ev", 200.0, 1.0);
  ts.sample(snap_gauge("g", 7.0), 100.0);
  const auto ev = plot_values(ts.snapshot("ev")[0]);
  ASSERT_EQ(ev.size(), 1U);
  EXPECT_DOUBLE_EQ(ev[0], 2.0);
  const auto g = plot_values(ts.snapshot("g")[0]);
  ASSERT_EQ(g.size(), 1U);
  EXPECT_DOUBLE_EQ(g[0], 7.0);
}

TEST(QueryParam, ExtractsKeysFromQueryStrings) {
  EXPECT_EQ(query_param("name=serve.shard0&limit=5", "name"),
            "serve.shard0");
  EXPECT_EQ(query_param("name=serve.shard0&limit=5", "limit"), "5");
  EXPECT_EQ(query_param("name=x", "missing"), "");
  EXPECT_EQ(query_param("", "name"), "");
}

// ---------------------------------------- serving runtime virtual series

class ServingSeriesTest : public ::testing::Test {
 protected:
  ServingSeriesTest()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    core::TrainConfig cfg;
    trainer_ = std::make_unique<core::DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    math::Rng rng(42);
    std::vector<double> base(
        static_cast<std::size_t>(model_.num_weights()));
    for (double& w : base) w = rng.normal(0.0, 0.3);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w = base;
      math::Rng qrng = rng.split(q);
      for (double& x : w) x += qrng.normal(0.0, 0.05);
      weights_.push_back(std::move(w));
    }
  }

  std::string run_and_dump(std::size_t n_jobs) const {
    serve::ServeConfig cfg;
    cfg.num_shards = 2;
    cfg.queue_capacity = n_jobs * 8;
    cfg.backoff_base_us = 0.0;
    TimeSeriesConfig tc;
    tc.window_us = 50'000.0;  // virtual us; generous retention below
    tc.max_windows = 4096;
    TimeSeriesStore ts(tc);
    cfg.series = &ts;
    serve::ServingRuntime runtime(trainer_->executors(), weights_,
                                  trainer_->behavioral_vectors(), cfg);
    for (std::size_t i = 0; i < n_jobs; ++i) {
      serve::JobSpec spec;
      spec.features = split_.test_features[i % split_.test_features.size()];
      spec.label = split_.test_labels[i % split_.test_labels.size()];
      spec.tenant = i % 2 == 0 ? "alpha" : "beta";
      runtime.submit(spec);
    }
    runtime.drain();
    return ts.to_json("serve.ts.");
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<core::DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(ServingSeriesTest, VirtualClockSeriesAreBitIdenticalAcrossRuns) {
  const std::string a = run_and_dump(48);
  const std::string b = run_and_dump(48);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Global, per-shard, and per-tenant admission series all recorded.
  EXPECT_NE(a.find("\"serve.ts.admitted\""), std::string::npos);
  EXPECT_NE(a.find("serve.ts.admitted.shard0"), std::string::npos);
  EXPECT_NE(a.find("serve.ts.admitted.tenant.alpha"), std::string::npos);
  EXPECT_NE(a.find("serve.ts.virtual_latency_us"), std::string::npos);
  EXPECT_NE(a.find("serve.ts.completed"), std::string::npos);
}

}  // namespace
}  // namespace arbiterq::telemetry
