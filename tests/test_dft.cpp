#include "arbiterq/math/dft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace arbiterq::math {
namespace {

TEST(Nudft, DcBinIsSum) {
  const std::vector<double> pos = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> val = {1.0, 2.0, 3.0, 4.0};
  const auto f = nudft(pos, val, 2);
  EXPECT_NEAR(f[0].real(), 10.0, 1e-12);
  EXPECT_NEAR(f[0].imag(), 0.0, 1e-12);
}

TEST(Nudft, SizeMismatchThrows) {
  EXPECT_THROW(nudft({0.0, 1.0}, {1.0}, 2), std::invalid_argument);
  EXPECT_THROW(nudft({}, {}, 2), std::invalid_argument);
}

TEST(Nudft, ZeroSpanThrows) {
  EXPECT_THROW(nudft({1.0, 1.0}, {1.0, 2.0}, 2), std::invalid_argument);
}

TEST(Nudft, MatchesAnalyticSingleTone) {
  // values = cos(2*pi*f0*x/span) sampled uniformly: bin f0 dominates.
  const std::size_t n = 32;
  const double span = 8.0;
  const int f0 = 3;
  std::vector<double> pos(n);
  std::vector<double> val(n);
  for (std::size_t j = 0; j < n; ++j) {
    pos[j] = span * static_cast<double>(j) / static_cast<double>(n - 1);
    val[j] = std::cos(2.0 * std::numbers::pi * f0 * pos[j] / span);
  }
  const auto f = nudft(pos, val, n / 2);
  double best = 0.0;
  std::size_t best_k = 0;
  for (std::size_t k = 1; k < f.size(); ++k) {
    if (std::abs(f[k]) > best) {
      best = std::abs(f[k]);
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, static_cast<std::size_t>(f0));
}

TEST(DominantCycle, FindsPeriodOfTone) {
  const std::size_t n = 40;
  const double span = 10.0;
  const int f0 = 4;
  std::vector<double> pos(n);
  std::vector<double> val(n);
  for (std::size_t j = 0; j < n; ++j) {
    pos[j] = span * static_cast<double>(j) / static_cast<double>(n - 1);
    val[j] = std::sin(2.0 * std::numbers::pi * f0 * pos[j] / span);
  }
  const DominantCycle c = dominant_cycle(pos, val);
  EXPECT_EQ(c.frequency_index, static_cast<std::size_t>(f0));
  EXPECT_NEAR(c.period, span / f0, 1e-9);
  EXPECT_GT(c.magnitude, 0.0);
}

TEST(DominantCycle, NonUniformSamplingStillFindsTone) {
  // Irregular positions (the MDS output is irregular): period recovery
  // must survive.
  const std::vector<double> pos = {0.0, 0.3, 1.1, 1.9, 2.6, 3.3,
                                   4.2, 5.0, 5.8, 6.7, 7.5, 8.0};
  const double span = 8.0;
  const int f0 = 2;
  std::vector<double> val;
  val.reserve(pos.size());
  for (double p : pos) {
    val.push_back(std::cos(2.0 * std::numbers::pi * f0 * p / span));
  }
  const DominantCycle c = dominant_cycle(pos, val, 6);
  EXPECT_EQ(c.frequency_index, static_cast<std::size_t>(f0));
}

TEST(DominantCycle, TooFewBinsThrows) {
  EXPECT_THROW(dominant_cycle({0.0}, {1.0}, 1), std::invalid_argument);
}

TEST(DominantCycle, ExcludesDcBin) {
  // A constant signal has all its energy at k=0; the dominant cycle must
  // still pick a k >= 1.
  const std::vector<double> pos = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> val = {5.0, 5.0, 5.0, 5.0};
  const DominantCycle c = dominant_cycle(pos, val);
  EXPECT_GE(c.frequency_index, 1U);
}

}  // namespace
}  // namespace arbiterq::math
