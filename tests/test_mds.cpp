#include "arbiterq/math/mds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::math {
namespace {

TEST(PairwiseDistances, KnownValues) {
  const Matrix d = pairwise_distances({{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}});
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(PairwiseDistances, RaggedThrows) {
  EXPECT_THROW(pairwise_distances({{0.0, 0.0}, {1.0}}),
               std::invalid_argument);
}

TEST(Mds, OneDimensionalPointsEmbedExactly) {
  // Points already on a line: 1-D MDS must preserve all distances.
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {3.0}, {7.0}};
  const Matrix d = pairwise_distances(pts);
  const Matrix e = mds_embed(d, 1);
  EXPECT_LT(mds_stress(d, e), 1e-9);
}

TEST(Mds, TwoDimensionalPointsEmbedExactlyIn2D) {
  Rng rng(5);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
  }
  const Matrix d = pairwise_distances(pts);
  EXPECT_LT(mds_stress(d, mds_embed(d, 2)), 1e-8);
}

TEST(Mds, EmbeddingDimensionBounds) {
  const Matrix d = pairwise_distances({{0.0}, {1.0}, {2.0}});
  EXPECT_THROW(mds_embed(d, 0), std::invalid_argument);
  EXPECT_THROW(mds_embed(d, 4), std::invalid_argument);
  EXPECT_THROW(mds_embed(Matrix(2, 3), 1), std::invalid_argument);
}

TEST(Mds, Embed1dPreservesOrderingOfCollinearPoints) {
  const std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {5.0}, {6.0}};
  const Matrix d = pairwise_distances(pts);
  const auto coords = mds_embed_1d(d);
  ASSERT_EQ(coords.size(), 4U);
  // MDS result is unique up to reflection: orientation can flip, but the
  // order along the axis must match (or be reversed).
  const bool ascending = coords[0] < coords[3];
  for (std::size_t i = 1; i < coords.size(); ++i) {
    if (ascending) {
      EXPECT_LT(coords[i - 1], coords[i]);
    } else {
      EXPECT_GT(coords[i - 1], coords[i]);
    }
  }
  // And pairwise gaps are preserved.
  EXPECT_NEAR(std::abs(coords[1] - coords[0]), 2.0, 1e-9);
  EXPECT_NEAR(std::abs(coords[3] - coords[2]), 1.0, 1e-9);
}

TEST(Mds, HighDimToOneDimKeepsNeighborStructure) {
  // Three tight clusters far apart in 6-D: after 1-D MDS, intra-cluster
  // gaps must stay much smaller than inter-cluster gaps.
  Rng rng(17);
  std::vector<std::vector<double>> pts;
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < 3; ++k) {
      std::vector<double> p(6);
      for (auto& v : p) v = 10.0 * c + rng.uniform(-0.1, 0.1);
      pts.push_back(p);
    }
  }
  const auto coords = mds_embed_1d(pairwise_distances(pts));
  for (int c = 0; c < 3; ++c) {
    const double a = coords[static_cast<std::size_t>(3 * c)];
    for (int k = 1; k < 3; ++k) {
      const double b = coords[static_cast<std::size_t>(3 * c + k)];
      EXPECT_LT(std::abs(a - b), 2.0);
    }
  }
  EXPECT_GT(std::abs(coords[0] - coords[4]), 5.0);
  EXPECT_GT(std::abs(coords[4] - coords[8]), 5.0);
}

TEST(Mds, StressZeroForPerfectEmbedding) {
  const std::vector<std::vector<double>> pts = {{0.0, 0.0}, {1.0, 0.0},
                                                {0.0, 1.0}};
  const Matrix d = pairwise_distances(pts);
  Matrix e(3, 2);
  e(0, 0) = 0.0;
  e(1, 0) = 1.0;
  e(2, 1) = 1.0;
  EXPECT_NEAR(mds_stress(d, e), 0.0, 1e-12);
}

TEST(Mds, StressDetectsBadEmbedding) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
  const Matrix d = pairwise_distances(pts);
  Matrix e(3, 1);  // all points collapsed to 0
  EXPECT_GT(mds_stress(d, e), 0.9);
}

TEST(Mds, IdenticalPointsGiveZeroCoordinates) {
  const std::vector<std::vector<double>> pts = {{1.0, 1.0}, {1.0, 1.0}};
  const auto coords = mds_embed_1d(pairwise_distances(pts));
  EXPECT_NEAR(coords[0], coords[1], 1e-12);
}

}  // namespace
}  // namespace arbiterq::math
