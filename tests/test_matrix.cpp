#include "arbiterq/math/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace arbiterq::math {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0U);
  EXPECT_EQ(m.cols(), 0U);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(Matrix, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a{{1.0, -2.0}, {0.5, 3.0}};
  const Matrix c = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, c), 0.0);
}

TEST(Matrix, AddSubtract) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const Matrix d = s - b;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(d, a), 0.0);
}

TEST(Matrix, ScalarScale) {
  Matrix a{{1.0, -2.0}};
  a *= -2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
}

TEST(Matrix, Apply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.apply({1.0, 1.0});
  ASSERT_EQ(y.size(), 2U);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ApplySizeMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(a.apply({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matrix, IsSymmetric) {
  Matrix s{{1.0, 2.0}, {2.0, 5.0}};
  EXPECT_TRUE(s.is_symmetric());
  Matrix ns{{1.0, 2.0}, {2.1, 5.0}};
  EXPECT_FALSE(ns.is_symmetric());
  EXPECT_TRUE(ns.is_symmetric(0.2));
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  EXPECT_THROW(Matrix::max_abs_diff(Matrix(2, 2), Matrix(3, 3)),
               std::invalid_argument);
}

TEST(Matrix, StreamOutput) {
  Matrix m{{1.0, 2.0}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("1"), std::string::npos);
  EXPECT_NE(os.str().find("2"), std::string::npos);
}

}  // namespace
}  // namespace arbiterq::math
