#include "arbiterq/device/topology.hpp"

#include <gtest/gtest.h>

namespace arbiterq::device {
namespace {

TEST(Topology, ConstructionValidation) {
  EXPECT_THROW(Topology(0, {}), std::invalid_argument);
  EXPECT_THROW(Topology(2, {{0, 2}}), std::out_of_range);
  EXPECT_THROW(Topology(2, {{1, 1}}), std::invalid_argument);
}

TEST(Topology, DeduplicatesEdges) {
  const Topology t(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(t.num_edges(), 2U);
}

TEST(Topology, LineStructure) {
  const Topology t = Topology::line(4);
  EXPECT_EQ(t.num_qubits(), 4);
  EXPECT_EQ(t.num_edges(), 3U);
  EXPECT_TRUE(t.connected(0, 1));
  EXPECT_FALSE(t.connected(0, 2));
  EXPECT_EQ(t.distance(0, 3), 3);
}

TEST(Topology, RingStructure) {
  const Topology t = Topology::ring(6);
  EXPECT_EQ(t.num_edges(), 6U);
  EXPECT_TRUE(t.connected(5, 0));
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(0, 5), 1);
}

TEST(Topology, SmallRingDegradesToLine) {
  EXPECT_EQ(Topology::ring(2).num_edges(), 1U);
}

TEST(Topology, GridStructure) {
  const Topology t = Topology::grid(2, 3);
  EXPECT_EQ(t.num_qubits(), 6);
  EXPECT_EQ(t.num_edges(), 7U);  // 2*2 horizontal + 3 vertical
  EXPECT_TRUE(t.connected(0, 3));
  EXPECT_TRUE(t.connected(0, 1));
  EXPECT_FALSE(t.connected(0, 4));
  EXPECT_EQ(t.distance(0, 5), 3);
  EXPECT_THROW(Topology::grid(0, 3), std::invalid_argument);
}

TEST(Topology, StarStructure) {
  const Topology t = Topology::star(5);
  EXPECT_EQ(t.num_edges(), 4U);
  EXPECT_EQ(t.distance(1, 2), 2);
  EXPECT_EQ(t.distance(0, 4), 1);
}

TEST(Topology, FullyConnected) {
  const Topology t = Topology::fully_connected(4);
  EXPECT_EQ(t.num_edges(), 6U);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) EXPECT_EQ(t.distance(a, b), 1);
    }
  }
}

TEST(Topology, ShortestPathEndpointsAndAdjacency) {
  const Topology t = Topology::line(5);
  const auto p = t.shortest_path(0, 4);
  ASSERT_EQ(p.size(), 5U);
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 4);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_TRUE(t.connected(p[i - 1], p[i]));
  }
}

TEST(Topology, ShortestPathTrivial) {
  const Topology t = Topology::line(3);
  const auto p = t.shortest_path(1, 1);
  ASSERT_EQ(p.size(), 1U);
  EXPECT_EQ(p[0], 1);
}

TEST(Topology, DisconnectedGraphDetected) {
  const Topology t(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(t.is_connected_graph());
  EXPECT_EQ(t.distance(0, 2), -1);
  EXPECT_TRUE(t.shortest_path(0, 3).empty());
  EXPECT_TRUE(Topology::line(4).is_connected_graph());
}

TEST(Topology, NeighborsSorted) {
  const Topology t = Topology::star(4);
  const auto& n0 = t.neighbors(0);
  ASSERT_EQ(n0.size(), 3U);
  EXPECT_EQ(n0[0], 1);
  EXPECT_EQ(n0[2], 3);
  EXPECT_THROW(t.neighbors(9), std::out_of_range);
}

TEST(Topology, InducedSubgraph) {
  const Topology grid = Topology::grid(2, 3);
  // Take qubits {0, 1, 4}: edges (0,1) survives, (1,4) survives.
  const Topology sub = grid.induced({0, 1, 4});
  EXPECT_EQ(sub.num_qubits(), 3);
  EXPECT_TRUE(sub.connected(0, 1));
  EXPECT_TRUE(sub.connected(1, 2));
  EXPECT_FALSE(sub.connected(0, 2));
}

TEST(Topology, InducedValidation) {
  const Topology t = Topology::line(3);
  EXPECT_THROW(t.induced({0, 0}), std::invalid_argument);
  EXPECT_THROW(t.induced({0, 7}), std::out_of_range);
}

TEST(Topology, DistanceBoundsChecked) {
  const Topology t = Topology::line(3);
  EXPECT_THROW(t.distance(-1, 0), std::out_of_range);
  EXPECT_THROW(t.distance(0, 3), std::out_of_range);
}

}  // namespace
}  // namespace arbiterq::device
