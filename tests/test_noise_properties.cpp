// Noise-stack property grid: for a matrix of (1q, 2q, bias, readout)
// noise levels, the cheap engines must track the density-matrix ground
// truth and behave monotonically.

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/sim/density_matrix.hpp"
#include "arbiterq/sim/simulator.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::ParamExpr;

struct NoiseGridCase {
  double p1;
  double p2;
  double bias;
  double readout;
};

Circuit probe_circuit() {
  Circuit c(3, 2);
  c.ry(0, ParamExpr::ref(0))
      .cx(0, 1)
      .crz(1, 2, ParamExpr::ref(1))
      .ry(2, ParamExpr::constant(0.7))
      .cz(0, 2);
  return c;
}

NoiseModel build(const NoiseGridCase& g) {
  NoiseModel m(3);
  for (int q = 0; q < 3; ++q) {
    m.set_depolarizing_1q(q, g.p1);
    m.set_coherent_bias(q, g.bias * (q + 1));
    m.set_readout_error(q, g.readout, g.readout);
  }
  m.set_depolarizing_2q(0, 1, g.p2);
  m.set_depolarizing_2q(1, 2, g.p2);
  m.set_depolarizing_2q(0, 2, g.p2);
  return m;
}

class NoiseGrid : public ::testing::TestWithParam<NoiseGridCase> {};

TEST_P(NoiseGrid, TrajectoriesTrackDensityMatrix) {
  const NoiseModel noise = build(GetParam());
  const Circuit c = probe_circuit();
  const std::vector<double> params = {0.9, -1.2};
  StatevectorSimulator sim(noise);
  math::Rng rng(17);
  ShotOptions opts;
  opts.shots = 40000;
  opts.trajectories = 2000;
  const double sampled =
      sim.sampled_probability_of_one(c, params, 0, opts, rng);
  const double ref_z = reference_expectation_z(c, params, noise, 0);
  EXPECT_NEAR(1.0 - 2.0 * sampled, ref_z, 0.03);
}

TEST_P(NoiseGrid, SurvivalShrinksWithNoise) {
  const NoiseGridCase g = GetParam();
  const Circuit c = probe_circuit();
  const double s = build(g).survival_probability(c);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
  NoiseGridCase worse = g;
  worse.p1 = std::min(1.0, g.p1 * 2.0 + 0.01);
  worse.p2 = std::min(1.0, g.p2 * 2.0 + 0.01);
  EXPECT_LT(build(worse).survival_probability(c), s);
}

TEST_P(NoiseGrid, ExactModeBoundedByIdealMagnitude) {
  // Depolarizing attenuation can only shrink |<Z>| relative to the
  // biased pure state (never amplify it).
  const NoiseModel noise = build(GetParam());
  const Circuit c = probe_circuit();
  const std::vector<double> params = {0.9, -1.2};
  StatevectorSimulator sim(noise);
  const double z_noisy = sim.expectation_z(c, params, 0);
  const double z_biased = sim.run_biased(c, params).expectation_z(0);
  EXPECT_LE(std::abs(z_noisy), std::abs(z_biased) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NoiseGrid,
    ::testing::Values(NoiseGridCase{0.0, 0.0, 0.05, 0.0},
                      NoiseGridCase{0.002, 0.01, 0.0, 0.0},
                      NoiseGridCase{0.005, 0.02, 0.05, 0.01},
                      NoiseGridCase{0.01, 0.04, 0.1, 0.02},
                      NoiseGridCase{0.02, 0.08, 0.2, 0.05}));

TEST(NoiseMonotonicity, ReadoutContractionOrdering) {
  // With symmetric readout error, |<Z>| shrinks monotonically in the
  // flip probability.
  Circuit c(1);
  c.x(0);
  double prev = 1.0;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    NoiseModel m(1);
    m.set_readout_error(0, p, p);
    const double z = std::abs(reference_expectation_z(c, {}, m, 0));
    EXPECT_LE(z, prev + 1e-12) << p;
    prev = z;
  }
}

TEST(NoiseMonotonicity, DepolarizingShrinksPurity) {
  DensityMatrix rho(2);
  rho.apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kH, {}), 0);
  rho.apply_mat4(circuit::gate_matrix_2q(circuit::GateKind::kCX, {}), 0, 1);
  double prev = rho.purity();
  for (int i = 0; i < 5; ++i) {
    rho.depolarize_2q(0, 1, 0.1);
    EXPECT_LT(rho.purity(), prev);
    prev = rho.purity();
  }
  EXPECT_GE(prev, 0.25 - 1e-9);  // bounded below by the mixed state
}

}  // namespace
}  // namespace arbiterq::sim
