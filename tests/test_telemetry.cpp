// aq_telemetry: metric semantics, thread-safety, span nesting, the JSONL
// round trip, and the ARBITERQ_TELEMETRY=OFF no-op path. The classes are
// available in both build modes; only the AQ_* macros compile away when
// the option is OFF, so everything here runs in either configuration
// except the explicitly #if-guarded macro expectations.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/report/jsonl.hpp"
#include "arbiterq/telemetry/export.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/profile.hpp"
#include "arbiterq/telemetry/sink.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace {

using namespace arbiterq;

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Metrics, CounterSemantics) {
  telemetry::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSemantics) {
  telemetry::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, HistogramBucketsAndMoments) {
  telemetry::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (inclusive top)
  h.observe(5.0);   // le=10
  h.observe(1e6);   // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 1e6);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(telemetry::Histogram({}), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, RegistryReturnsStableHandlesAndSnapshots) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("t.a");
  telemetry::Counter& a2 = reg.counter("t.a");
  EXPECT_EQ(&a, &a2);
  a.add(7);
  reg.gauge("t.g").set(3.0);
  reg.histogram("t.h", {1.0, 2.0}).observe(1.5);
  EXPECT_THROW(reg.histogram("t.h", {5.0}), std::invalid_argument);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "t.a");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);

  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // handle survives the reset
  const auto zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counters.size(), 1u);
  EXPECT_EQ(zeroed.counters[0].value, 0u);
  EXPECT_EQ(zeroed.histograms[0].count, 0u);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  telemetry::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      telemetry::Counter& c = reg.counter("t.concurrent");
      telemetry::Histogram& h = reg.histogram("t.concurrent.h", {0.5});
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("t.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto& h = reg.histogram("t.concurrent.h", {0.5});
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_counts()[0], h.bucket_counts()[1]);
}

TEST(Trace, SpanNestingOrderAndLinkage) {
  telemetry::TraceBuffer& buf = telemetry::TraceBuffer::global();
  buf.clear();
  {
    telemetry::ScopedSpan outer("t.outer");
    {
      telemetry::ScopedSpan inner("t.inner");
      EXPECT_EQ(inner.parent_id(), outer.id());
      EXPECT_EQ(inner.depth(), outer.depth() + 1);
    }
    telemetry::ScopedSpan sibling("t.sibling");
    EXPECT_EQ(sibling.parent_id(), outer.id());
  }
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: children close before their parent.
  EXPECT_EQ(events[0].name, "t.inner");
  EXPECT_EQ(events[1].name, "t.sibling");
  EXPECT_EQ(events[2].name, "t.outer");
  EXPECT_EQ(events[0].parent_id, events[2].id);
  EXPECT_EQ(events[1].parent_id, events[2].id);
  EXPECT_EQ(events[2].parent_id, 0u);
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_EQ(events[0].depth, 1u);
  // A child's window sits inside its parent's.
  EXPECT_GE(events[0].start_ns, events[2].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].duration_ns,
            events[2].start_ns + events[2].duration_ns);
  buf.clear();
}

TEST(Trace, CrossThreadSpansAreRootsInTheirOwnLane) {
  // The parent stack is thread-local: work fanned out to pool workers
  // opens spans with no parent (fresh TLS), while the chunk the caller
  // runs itself nests under the caller's open span. The Perfetto export
  // keeps one lane per recording thread either way.
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::TraceBuffer& buf = telemetry::TraceBuffer::global();
  buf.clear();
  std::uint64_t outer_id = 0;
  {
    telemetry::ScopedSpan outer("t.cross.outer");
    outer_id = outer.id();
    exec::ExecPolicy policy;
    policy.num_threads = 4;
    policy.grain = 1;
    exec::parallel_for(policy, 0, 8, [](std::size_t, std::size_t) {
      telemetry::ScopedSpan chunk("t.cross.chunk");
      // A nested span must link to its same-thread chunk parent.
      telemetry::ScopedSpan nested("t.cross.nested");
      EXPECT_EQ(nested.parent_id(), chunk.id());
    });
  }
  const auto events = buf.snapshot();
  std::uint64_t main_thread = 0;
  for (const auto& e : events) {
    if (e.name == "t.cross.outer") main_thread = e.thread_id;
  }
  // parallel_for wraps the fan-out in its own AQ_TRACE_SPAN on the
  // caller thread — present only when the macros are compiled in.
  std::uint64_t region_id = 0;
  for (const auto& e : events) {
    if (e.name == "exec.parallel.region") {
      region_id = e.id;
      EXPECT_EQ(e.parent_id, outer_id);
      EXPECT_EQ(e.thread_id, main_thread);
    }
  }
  const std::uint64_t caller_parent = region_id ? region_id : outer_id;
  const std::uint32_t caller_depth = region_id ? 2u : 1u;
  std::size_t chunks = 0;
  std::set<std::uint64_t> threads;
  for (const auto& e : events) {
    threads.insert(e.thread_id);
    if (e.name != "t.cross.chunk") continue;
    ++chunks;
    if (e.thread_id == main_thread) {
      // Caller-participation chunk: nests under the caller's open spans.
      EXPECT_EQ(e.parent_id, caller_parent);
      EXPECT_EQ(e.depth, caller_depth);
    } else {
      // Pool-worker chunk: fresh TLS, comes out as a root.
      EXPECT_EQ(e.parent_id, 0u);
      EXPECT_EQ(e.depth, 0u);
    }
  }
  EXPECT_GE(chunks, 1u);

  // One thread_name metadata event per distinct recording thread, and
  // every X event's tid stays inside [0, threads).
  const std::string json = telemetry::chrome_trace_json(events);
  std::size_t metadata = 0;
  for (std::size_t pos = json.find("\"ph\":\"M\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"M\"", pos + 1)) {
    ++metadata;
  }
  EXPECT_EQ(metadata, threads.size());
  for (std::size_t t = 0; t < threads.size(); ++t) {
    EXPECT_NE(json.find("\"tid\":" + std::to_string(t)), std::string::npos);
  }
  EXPECT_EQ(json.find("\"tid\":" + std::to_string(threads.size())),
            std::string::npos);
  buf.clear();
}

TEST(Trace, RuntimeSwitchMakesSpansAndMacrosInert) {
  telemetry::TraceBuffer& buf = telemetry::TraceBuffer::global();
  buf.clear();
  telemetry::Counter& c =
      telemetry::MetricsRegistry::global().counter("t.switch.counter");
  const std::uint64_t before = c.value();

  telemetry::set_telemetry_runtime_enabled(false);
  {
    telemetry::ScopedSpan span("t.switch.span");
    EXPECT_EQ(span.id(), 0u);  // inert: no TLS push, nothing recorded
    AQ_COUNTER_ADD("t.switch.counter", 5);
    AQ_TRACE_SPAN("t.switch.macro");
  }
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(c.value(), before);

  telemetry::set_telemetry_runtime_enabled(true);
  {
    telemetry::ScopedSpan span("t.switch.span");
    EXPECT_NE(span.id(), 0u);
  }
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
}

TEST(Trace, RingBufferDropsOldest) {
  telemetry::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    telemetry::TraceEvent e;
    e.id = static_cast<std::uint64_t>(i + 1);
    buf.record(e);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 7u);  // oldest retained
  EXPECT_EQ(events.back().id, 10u);
}

TEST(Jsonl, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te,f";
  const std::string line = report::JsonLine()
                               .field("s", nasty)
                               .field("n", 2.5)
                               .field("i", std::uint64_t{18446744073709551615ull})
                               .field("b", true)
                               .field("arr", std::vector<double>{1.0, -2.5})
                               .finish();
  const auto parsed = report::parse_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("s").string, nasty);
  EXPECT_DOUBLE_EQ(parsed->at("n").number, 2.5);
  EXPECT_TRUE(parsed->at("b").boolean);
  ASSERT_EQ(parsed->at("arr").array.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->at("arr").array[1].number, -2.5);
  EXPECT_FALSE(report::parse_json_line("{not json").has_value());
  EXPECT_FALSE(report::parse_json_line("{\"a\":1} trailing").has_value());
}

TEST(Jsonl, ExporterRoundTrip) {
  const std::string path = temp_path("telemetry_roundtrip.jsonl");
  telemetry::MetricsRegistry reg;
  reg.counter("t.rt.counter").add(5);
  reg.gauge("t.rt.gauge").set(-1.25);
  reg.histogram("t.rt.h", {1.0, 2.0}).observe(1.5);

  {
    telemetry::JsonlExporter ex(path);
    telemetry::EpochQpuRecord er;
    er.strategy = "ArbiterQ";
    er.epoch = 3;
    er.qpu = 1;
    er.online = true;
    er.churned = true;
    er.group = 0;
    er.group_size = 2;
    er.loss = 0.25;
    er.grad_norm = 1.5;
    er.shots_estimate = 640;
    ex.on_epoch(er);

    telemetry::AssignmentRecord ar;
    ar.task = 7;
    ar.torus = 2;
    ar.estimated_score = -0.01;
    ar.warmup_difficulty = 0.4;
    ar.realized_loss = 0.3;
    ar.shot_split = {{0, 100}, {3, 156}};
    ex.on_assignment(ar);

    ex.write_metrics(reg.snapshot());

    telemetry::TraceEvent ev;
    ev.name = "t.rt.span";
    ev.id = 11;
    ev.parent_id = 4;
    ev.depth = 1;
    ev.start_ns = 100;
    ev.duration_ns = 50;
    ev.thread_id = 9;
    ex.write_spans({ev});
    ex.close();
  }

  const auto lines = read_lines(path);
  // meta + epoch + assignment + 3 metrics + 1 span
  ASSERT_EQ(lines.size(), 7u);
  std::map<std::string, int> type_counts;
  for (const auto& line : lines) {
    const auto obj = report::parse_json_line(line);
    ASSERT_TRUE(obj.has_value()) << line;
    ++type_counts[obj->at("type").string];
  }
  EXPECT_EQ(type_counts["meta"], 1);
  EXPECT_EQ(type_counts["epoch"], 1);
  EXPECT_EQ(type_counts["assignment"], 1);
  EXPECT_EQ(type_counts["counter"], 1);
  EXPECT_EQ(type_counts["gauge"], 1);
  EXPECT_EQ(type_counts["histogram"], 1);
  EXPECT_EQ(type_counts["span"], 1);

  const auto epoch = report::parse_json_line(lines[1]);
  EXPECT_EQ(epoch->at("strategy").string, "ArbiterQ");
  EXPECT_EQ(epoch->at("epoch").number, 3.0);
  EXPECT_TRUE(epoch->at("churned").boolean);
  EXPECT_EQ(epoch->at("shots_est").number, 640.0);

  const auto assign = report::parse_json_line(lines[2]);
  EXPECT_EQ(assign->at("torus").number, 2.0);
  ASSERT_EQ(assign->at("split_qpu").array.size(), 2u);
  EXPECT_EQ(assign->at("split_qpu").array[1].number, 3.0);
  EXPECT_EQ(assign->at("split_shots").array[1].number, 156.0);
}

TEST(Jsonl, ExporterReportsOpenFailure) {
  EXPECT_THROW(telemetry::JsonlExporter("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}

TEST(Export, CsvTablesCoverSnapshot) {
  telemetry::MetricsRegistry reg;
  reg.counter("t.csv.c").add(2);
  reg.histogram("t.csv.h", {1.0}).observe(0.5);
  const auto table = telemetry::metrics_csv(reg.snapshot());
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("t.csv.c"), std::string::npos);
  EXPECT_NE(text.find("le=1:1"), std::string::npos);

  telemetry::TraceEvent ev;
  ev.name = "t.csv.span";
  const auto spans = telemetry::spans_csv({ev});
  EXPECT_EQ(spans.num_rows(), 1u);
}

TEST(Integration, TrainerEmitsPerEpochPerQpuRecords) {
  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 7);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.offline_probability = 0.3;  // exercise churn fields
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(3, bc.num_qubits), cfg);

  telemetry::RecordingTelemetry rec;
  const auto result = trainer.train(core::Strategy::kArbiterQ, split, &rec);
  ASSERT_EQ(rec.epochs.size(), 3u * 3u);
  for (const auto& r : rec.epochs) {
    EXPECT_EQ(r.strategy, "ArbiterQ");
    EXPECT_GE(r.epoch, 0);
    EXPECT_LT(r.epoch, 3);
    EXPECT_GE(r.qpu, 0);
    EXPECT_LT(r.qpu, 3);
    EXPECT_GE(r.group, 0);
    EXPECT_GE(r.group_size, 1);
    EXPECT_TRUE(std::isfinite(r.loss));
    EXPECT_TRUE(std::isfinite(r.grad_norm));
    if (!r.online) EXPECT_EQ(r.shots_estimate, 0u);
  }
  // The sink must not perturb training itself.
  const auto plain = trainer.train(core::Strategy::kArbiterQ, split);
  EXPECT_EQ(plain.epoch_test_loss, result.epoch_test_loss);
}

TEST(Integration, SchedulerEmitsAssignmentRecords) {
  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 7);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(3, bc.num_qubits), cfg);
  const auto result = trainer.train(core::Strategy::kArbiterQ, split);
  const auto partition = core::build_torus_partition(
      trainer.behavioral_vectors(), result.weights);

  core::ScheduleConfig sc;
  sc.shots_per_task = 64;
  sc.warmup_shots = 8;
  sc.trajectories = 4;
  const core::ShotOrientedScheduler scheduler(trainer.executors(),
                                              result.weights, partition, sc);
  auto tasks = core::make_tasks(split.test_features, split.test_labels);
  tasks.resize(6);

  telemetry::RecordingTelemetry rec;
  const auto report = scheduler.run(tasks, &rec);
  ASSERT_EQ(rec.assignments.size(), tasks.size());
  for (const auto& a : rec.assignments) {
    EXPECT_LT(a.task, tasks.size());
    EXPECT_GE(a.torus, 0);
    EXPECT_LT(static_cast<std::size_t>(a.torus), partition.tori.size());
    EXPECT_FALSE(a.shot_split.empty());
    int total = 0;
    for (const auto& s : a.shot_split) total += s.shots;
    EXPECT_EQ(total, sc.shots_per_task);
    EXPECT_DOUBLE_EQ(a.realized_loss, report.per_task_loss[a.task]);
  }
}

// The macro site behaviour differs by build flavor; everything above is
// identical in both.
TEST(BuildMode, MacrosMatchCompileTimeToggle) {
  telemetry::TraceBuffer& buf = telemetry::TraceBuffer::global();
  buf.clear();
  const std::uint64_t before =
      telemetry::MetricsRegistry::global().counter("t.mode.counter").value();
  {
    AQ_TRACE_SPAN("t.mode.span");
    AQ_COUNTER_ADD("t.mode.counter", 3);
    AQ_GAUGE_SET("t.mode.gauge", 1.0);
    AQ_HISTOGRAM_OBSERVE("t.mode.h", telemetry::latency_buckets_us(), 2.0);
  }
#if ARBITERQ_TELEMETRY_ENABLED
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.snapshot()[0].name, "t.mode.span");
  EXPECT_EQ(
      telemetry::MetricsRegistry::global().counter("t.mode.counter").value(),
      before + 3);
#else
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(
      telemetry::MetricsRegistry::global().counter("t.mode.counter").value(),
      before);
#endif
  buf.clear();
}

#if !ARBITERQ_TELEMETRY_ENABLED
TEST(BuildMode, InstrumentedHotPathStaysSilent) {
  // A full compile + simulate pass through instrumented code must leave
  // no ambient trace when the toggle is off.
  telemetry::TraceBuffer::global().clear();
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 1);
  const qnn::QnnExecutor ex(model, device::table3_fleet(2)[0]);
  std::vector<double> features(2, 0.5);
  std::vector<double> weights(static_cast<std::size_t>(model.num_weights()),
                              0.3);
  ex.probability(features, weights);
  EXPECT_EQ(telemetry::TraceBuffer::global().size(), 0u);
  EXPECT_TRUE(telemetry::MetricsRegistry::global().snapshot().counters.empty() ||
              true);  // registry may hold test-local names; spans are the signal
}
#endif

}  // namespace
