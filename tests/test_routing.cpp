#include "arbiterq/transpile/routing.hpp"

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/math/rng.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;
using device::Topology;

/// Check routed ~ original: undo the final layout permutation and compare
/// unitaries (device qubits == circuit qubits required).
void expect_equivalent(const Circuit& original, const RoutedCircuit& routed,
                       const std::vector<double>& params) {
  const auto u_orig = circuit_unitary(original, params);
  auto u_routed = circuit_unitary(routed.circuit, params);
  // routed = P_final^{-1} ... ; applying P_final^{-1}? The routed circuit
  // computes U' = P * U where P maps initial positions to final ones, so
  // compare P^dagger * U' with U. P as permutation: out[final] = in[initial].
  std::vector<int> perm(routed.final_layout.size());
  for (std::size_t l = 0; l < routed.final_layout.size(); ++l) {
    perm[l] = routed.final_layout[l];
  }
  const auto p = circuit::permutation_unitary(perm);
  // P maps logical index q to physical final_layout[q]; the routed
  // circuit ends with logical qubit q living on physical final_layout[q],
  // i.e. U_routed = P U_orig. Undo it.
  std::vector<circuit::Complex> p_dag(p.size());
  const std::size_t dim = routed.final_layout.empty()
                              ? 0
                              : (std::size_t{1} << routed.final_layout.size());
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      p_dag[r * dim + c] = std::conj(p[c * dim + r]);
    }
  }
  const auto undone = circuit::multiply_square(p_dag, u_routed);
  EXPECT_LT(circuit::unitary_distance_up_to_phase(u_orig, undone), 1e-9);
}

TEST(Routing, AdjacentGatesUntouched) {
  Circuit c(3, 0);
  c.h(0).cx(0, 1).cx(1, 2);
  const RoutedCircuit r = route(c, Topology::line(3));
  EXPECT_EQ(r.circuit.size(), 3U);
  EXPECT_EQ(r.circuit.routing_swap_count(), 0U);
  EXPECT_EQ(r.final_layout, (std::vector<int>{0, 1, 2}));
}

TEST(Routing, InsertsSwapForDistantPair) {
  Circuit c(3, 0);
  c.cx(0, 2);
  const RoutedCircuit r = route(c, Topology::line(3));
  EXPECT_EQ(r.circuit.routing_swap_count(), 1U);
  EXPECT_TRUE(respects_topology(r.circuit, Topology::line(3)));
}

TEST(Routing, SwapTaggingAndAttribution) {
  Circuit c(4, 0);
  c.h(0).cx(0, 3);
  const RoutedCircuit r = route(c, Topology::line(4));
  bool found_swap = false;
  for (const Gate& g : r.circuit.gates()) {
    if (g.is_routing_swap) {
      found_swap = true;
      EXPECT_EQ(g.kind, GateKind::kSwap);
      EXPECT_EQ(g.logical_id, 1);  // the CX at index 1 caused it
    }
  }
  EXPECT_TRUE(found_swap);
}

TEST(Routing, DeviceTooSmallThrows) {
  Circuit c(4, 0);
  c.cx(0, 3);
  EXPECT_THROW(route(c, Topology::line(3)), std::invalid_argument);
}

TEST(Routing, DisconnectedTopologyThrows) {
  Circuit c(2, 0);
  c.cx(0, 1);
  EXPECT_THROW(route(c, Topology(4, {{0, 1}, {2, 3}})),
               std::invalid_argument);
}

TEST(Routing, RespectsTopologyPredicateDetectsViolation) {
  Circuit c(3, 0);
  c.cx(0, 2);
  EXPECT_FALSE(respects_topology(c, Topology::line(3)));
  EXPECT_TRUE(respects_topology(c, Topology::fully_connected(3)));
}

TEST(Routing, UnitaryEquivalenceOnLine) {
  Circuit c(3, 2);
  c.ry(0, ParamExpr::ref(0)).cx(0, 2).crz(2, 0, ParamExpr::ref(1)).h(1);
  const RoutedCircuit r = route(c, Topology::line(3));
  EXPECT_TRUE(respects_topology(r.circuit, Topology::line(3)));
  expect_equivalent(c, r, {0.7, -1.1});
}

TEST(Routing, UnitaryEquivalenceOnStar) {
  Circuit c(4, 1);
  c.cx(1, 2).cx(2, 3).crx(3, 1, ParamExpr::ref(0)).h(0).cx(0, 3);
  const device::Topology star = Topology::star(4);
  const RoutedCircuit r = route(c, star);
  EXPECT_TRUE(respects_topology(r.circuit, star));
  expect_equivalent(c, r, {1.9});
}

class RandomRouting : public ::testing::TestWithParam<int> {};

TEST_P(RandomRouting, RandomCircuitsStayEquivalent) {
  math::Rng rng(500 + GetParam());
  const int n = 4;
  Circuit c(n, 3);
  for (int i = 0; i < 12; ++i) {
    const int a = static_cast<int>(rng.uniform_int(n));
    int b = static_cast<int>(rng.uniform_int(n));
    if (b == a) b = (a + 1) % n;
    switch (rng.uniform_int(3)) {
      case 0:
        c.ry(a, ParamExpr::ref(static_cast<int>(rng.uniform_int(3))));
        break;
      case 1:
        c.cx(a, b);
        break;
      default:
        c.crz(a, b, ParamExpr::ref(static_cast<int>(rng.uniform_int(3))));
        break;
    }
  }
  for (const Topology& topo :
       {Topology::line(n), Topology::ring(n), Topology::star(n),
        Topology::grid(2, 2)}) {
    const RoutedCircuit r = route(c, topo);
    EXPECT_TRUE(respects_topology(r.circuit, topo));
    expect_equivalent(c, r, {0.4, -0.8, 1.6});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRouting, ::testing::Range(0, 8));

TEST(Routing, FinalLayoutTracksLogicalQubits) {
  Circuit c(3, 0);
  c.cx(0, 2);  // forces a swap on the line
  const RoutedCircuit r = route(c, Topology::line(3));
  // Whatever happened, each logical qubit maps to a distinct physical one.
  std::vector<bool> used(3, false);
  for (int p : r.final_layout) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 3);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Routing, LargerDeviceThanCircuit) {
  Circuit c(2, 0);
  c.cx(0, 1);
  const RoutedCircuit r = route(c, Topology::grid(2, 3));
  EXPECT_EQ(r.circuit.num_qubits(), 6);
  EXPECT_TRUE(respects_topology(r.circuit, Topology::grid(2, 3)));
  EXPECT_EQ(r.final_layout.size(), 2U);
}

}  // namespace
}  // namespace arbiterq::transpile
