// Sample-batched forward equivalence: BatchedStatevector column
// evolution vs the unbatched plan path (bitwise under the default
// strict-reproducibility arm, for batch sizes 1 / 2 / odd / wider than
// kBatchBlock), the plan-based trajectory-batched sampler (same-seed
// determinism, noiseless bitwise agreement with the circuit-walking
// sampler, statistical agreement under noise), executor-level
// batched-on/off equivalence, and trainer plumbing.

#include "arbiterq/sim/batched.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/adjoint.hpp"
#include "arbiterq/sim/exec_plan.hpp"
#include "arbiterq/sim/simulator.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

NoiseModel rich_noise(int nq) {
  NoiseModel m(nq);
  for (int q = 0; q < nq; ++q) {
    m.set_depolarizing_1q(q, 0.004 + 0.002 * q);
    m.set_coherent_bias(q, 0.06 - 0.03 * q);
    m.set_readout_error(q, 0.01 + 0.005 * q, 0.02);
  }
  for (int q = 0; q + 1 < nq; ++q) m.set_depolarizing_2q(q, q + 1, 0.02);
  return m;
}

/// The fusion-stress circuit from test_exec_plan: every gate kind,
/// static prefixes, statics after dynamics, constant rotations, dynamic
/// controlled rotations.
Circuit full_gate_circuit() {
  Circuit c(3, 5);
  c.h(0).s(0).x(1).sdg(1).sx(2).y(2).z(0);
  c.add({GateKind::kI, {1, 0}, {}});
  c.rx(0, ParamExpr::constant(0.37));
  c.rx(0, ParamExpr::ref(0));
  c.h(0);
  c.ry(1, ParamExpr::ref(1, 0.5, 0.11));
  c.rz(2, ParamExpr::ref(2, -1.25, -0.4));
  c.cx(0, 1);
  c.u3(1, ParamExpr::ref(3), ParamExpr::constant(0.3),
       ParamExpr::ref(1, -0.7, 0.2));
  c.u3(2, ParamExpr::constant(0.9), ParamExpr::constant(-0.2),
       ParamExpr::constant(0.5));
  c.cz(1, 2);
  c.crx(0, 1, ParamExpr::ref(4));
  c.cry(1, 2, ParamExpr::constant(0.6));
  c.crz(2, 0, ParamExpr::ref(0, 0.5));
  c.swap(0, 2);
  c.ry(2, ParamExpr::ref(3, 2.0, -0.05));
  c.sdg(2);
  return c;
}

std::vector<double> batch_params(int np, std::size_t batch, math::Rng& rng,
                                 bool repeat_weights = false) {
  std::vector<double> p(static_cast<std::size_t>(np) * batch);
  for (std::size_t b = 0; b < batch; ++b) {
    for (int j = 0; j < np; ++j) {
      const std::size_t i = b * static_cast<std::size_t>(np) +
                            static_cast<std::size_t>(j);
      // repeat_weights makes the trailing params identical across the
      // batch — the training shape (shared weights, per-sample
      // features) that must hit the prev-column bind memo.
      if (repeat_weights && j >= np / 2 && b > 0) {
        p[i] = p[static_cast<std::size_t>(j)];
      } else {
        p[i] = rng.uniform(-1.5, 1.5);
      }
    }
  }
  return p;
}

class BatchedPlan : public ::testing::TestWithParam<bool> {
 protected:
  StatevectorSimulator make_sim() const {
    return GetParam() ? StatevectorSimulator(rich_noise(3))
                      : StatevectorSimulator();
  }
};

TEST_P(BatchedPlan, RunMatchesUnbatchedPerColumnBitwise) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim = make_sim();
  const ExecPlan plan = sim.make_plan(c);
  const auto np = static_cast<std::size_t>(c.num_params());
  Workspace ws;
  BatchedWorkspace bws;
  math::Rng rng(21);
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{40}}) {
    for (const bool repeat : {false, true}) {
      const auto params = batch_params(c.num_params(), batch, rng, repeat);
      BatchedStatevector& st =
          plan.run_batched(params.data(), np, batch, bws);
      ASSERT_EQ(st.batch(), batch);
      std::vector<double> zs(batch);
      plan.expectation_z_batched(params.data(), np, batch, 1, bws,
                                 zs.data());
      for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const double> col(params.data() + b * np, np);
        const Statevector& ref = plan.run(col, ws);
        for (std::size_t i = 0; i < ref.dim(); ++i) {
          EXPECT_EQ(st.row(i)[b], ref.amplitudes()[i])
              << "batch " << batch << " col " << b << " amp " << i;
        }
        EXPECT_EQ(zs[b], plan.expectation_z(col, 1, ws))
            << "batch " << batch << " col " << b;
      }
    }
  }
}

TEST_P(BatchedPlan, ColumnsInvariantAcrossBatchSizes) {
  // The same binding must produce the same bits whether it rides in a
  // batch of 1, shares a block with others, or lands in a 40-wide batch.
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim = make_sim();
  const ExecPlan plan = sim.make_plan(c);
  const auto np = static_cast<std::size_t>(c.num_params());
  BatchedWorkspace bws;
  math::Rng rng(22);
  const auto params = batch_params(c.num_params(), 40, rng);
  std::vector<double> wide(40);
  plan.expectation_z_batched(params.data(), np, 40, 0, bws, wide.data());
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
    for (std::size_t start = 0; start + batch <= 40; start += 13) {
      std::vector<double> zs(batch);
      plan.expectation_z_batched(params.data() + start * np, np, batch, 0,
                                 bws, zs.data());
      for (std::size_t b = 0; b < batch; ++b) {
        EXPECT_EQ(zs[b], wide[start + b]) << "batch " << batch << " col "
                                          << start + b;
      }
    }
  }
}

TEST_P(BatchedPlan, AdjointGradientMatchesUnbatchedBitwise) {
  // The batched adjoint's forward walk runs the whole block as one
  // mini-GEMM sweep; each column's gradient must still carry the exact
  // bits of the per-sample plan adjoint.
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim = make_sim();
  const ExecPlan plan = sim.make_plan(c);
  const auto np = static_cast<std::size_t>(c.num_params());
  Workspace ws;
  BatchedWorkspace bws;
  math::Rng rng(23);
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{3}, std::size_t{40}}) {
    for (const bool repeat : {false, true}) {
      const auto params = batch_params(c.num_params(), batch, rng, repeat);
      std::vector<double> grads(batch * np);
      adjoint_gradient_z_batched(plan, params.data(), np, batch, 1, bws,
                                 grads.data());
      for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const double> col(params.data() + b * np, np);
        const auto ref = adjoint_gradient_z(plan, col, 1, ws);
        for (std::size_t j = 0; j < np; ++j) {
          EXPECT_EQ(grads[b * np + j], ref[j])
              << "batch " << batch << " col " << b << " param " << j;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseOnOff, BatchedPlan, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "noisy" : "ideal";
                         });

TEST(BatchedStatevectorTest, ConfigureResetsAllColumns) {
  BatchedStatevector st;
  st.configure(2, 3);
  st.apply_mat2_all(circuit::gate_matrix_1q(GateKind::kH, {}), 0);
  st.configure(2, 3);
  for (std::size_t i = 0; i < st.dim(); ++i) {
    for (std::size_t b = 0; b < st.batch(); ++b) {
      EXPECT_EQ(st.row(i)[b], (i == 0 ? Complex{1.0, 0.0} : Complex{0.0, 0.0}));
    }
  }
  EXPECT_THROW(st.configure(0, 3), std::invalid_argument);
  EXPECT_THROW(st.configure(2, 0), std::invalid_argument);
  EXPECT_THROW(st.apply_pauli_col(0, 0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trajectory-batched sampler

TEST(BatchedSampler, DeterministicGivenRngState) {
  const Circuit c = full_gate_circuit();
  math::Rng prng(61);
  std::vector<double> params(static_cast<std::size_t>(c.num_params()));
  for (double& v : params) v = prng.uniform(-1.5, 1.5);
  const StatevectorSimulator sim(rich_noise(3));
  const ExecPlan plan = sim.make_plan(c);
  BatchedWorkspace wsa;
  BatchedWorkspace wsb;
  ShotOptions opts;
  opts.shots = 500;
  // More trajectories than one kBatchBlock, and not a multiple of it.
  opts.trajectories = 50;
  math::Rng a(7);
  math::Rng b(7);
  EXPECT_EQ(sim.sample_marginal_ones(plan, params, 1, opts, a, wsa),
            sim.sample_marginal_ones(plan, params, 1, opts, b, wsb));
}

TEST(BatchedSampler, NoiselessMatchesCircuitWalkingSamplerBitwise) {
  // Without noise the batched sampler's pre-drawn schedule collapses to
  // the legacy one-uniform-per-shot stream, and per-column evolution is
  // bit-identical under the default strict arm — so the two samplers
  // must agree on every shot.
  const Circuit c = full_gate_circuit();
  math::Rng prng(31);
  std::vector<double> params(static_cast<std::size_t>(c.num_params()));
  for (double& v : params) v = prng.uniform(-1.5, 1.5);
  const StatevectorSimulator sim;
  const ExecPlan plan = sim.make_plan(c);
  BatchedWorkspace ws;
  ShotOptions opts;
  opts.shots = 400;
  opts.trajectories = 40;  // spills past one kBatchBlock
  math::Rng a(13);
  math::Rng b(13);
  EXPECT_EQ(sim.sample_marginal_ones(plan, params, 2, opts, a, ws),
            sim.sample_marginal_ones(c, params, 2, opts, b));
}

TEST(BatchedSampler, NoisyAgreesStatisticallyWithCircuitWalkingSampler) {
  const Circuit c = full_gate_circuit();
  math::Rng prng(37);
  std::vector<double> params(static_cast<std::size_t>(c.num_params()));
  for (double& v : params) v = prng.uniform(-1.5, 1.5);
  const StatevectorSimulator sim(rich_noise(3));
  const ExecPlan plan = sim.make_plan(c);
  BatchedWorkspace ws;
  ShotOptions opts;
  opts.shots = 20000;
  opts.trajectories = 64;
  math::Rng a(17);
  math::Rng b(17);
  const double p_plan =
      sim.sampled_probability_of_one(plan, params, 1, opts, a, ws);
  const double p_naive =
      sim.sampled_probability_of_one(c, params, 1, opts, b);
  // Two independent 20k-shot estimates of the same marginal: the
  // difference is bounded by a few combined standard errors (~0.007).
  EXPECT_NEAR(p_plan, p_naive, 0.02);
}

TEST(BatchedSampler, InvalidOptionsThrow) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim;
  const ExecPlan plan = sim.make_plan(c);
  BatchedWorkspace ws;
  const std::vector<double> params(
      static_cast<std::size_t>(c.num_params()), 0.1);
  math::Rng rng(1);
  ShotOptions opts;
  opts.shots = 0;
  EXPECT_THROW(sim.sample_marginal_ones(plan, params, 0, opts, rng, ws),
               std::invalid_argument);
}

TEST(BatchedWorkspacePoolTest, RecyclesAndCopiesStartFresh) {
  BatchedWorkspacePool pool;
  BatchedWorkspace* first = nullptr;
  {
    auto lease = pool.acquire();
    first = &*lease;
    lease->params.assign(8, 1.0);
  }
  {
    auto lease = pool.acquire();
    EXPECT_EQ(&*lease, first);
    EXPECT_EQ(lease->params.size(), 8U);
  }
  const BatchedWorkspacePool copy = pool;
  (void)copy;
}

}  // namespace
}  // namespace arbiterq::sim

// ---------------------------------------------------------------------------
// Executor + trainer integration

namespace arbiterq {
namespace {

class BatchedExecutor : public ::testing::Test {
 protected:
  BatchedExecutor()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    weights_.assign(static_cast<std::size_t>(model_.num_weights()), 0.0);
    math::Rng rng(7);
    for (double& w : weights_) w = rng.uniform(-1.0, 1.0);
  }

  qnn::QnnExecutor make(bool batched, bool mitigate = false) const {
    qnn::ExecutorOptions opts;
    opts.use_plan = true;
    opts.batched_forward = batched;
    opts.mitigate_depolarizing = mitigate;
    return qnn::QnnExecutor(model_, device::table3_fleet_subset(1, 2)[0],
                            opts);
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::vector<double> weights_;
};

TEST_F(BatchedExecutor, LossAndGradientMatchUnbatchedBitwise) {
  for (const bool mitigate : {false, true}) {
    const qnn::QnnExecutor unbatched = make(false, mitigate);
    const qnn::QnnExecutor batched = make(true, mitigate);
    EXPECT_EQ(batched.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                                   split_.test_labels, weights_),
              unbatched.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                                     split_.test_labels, weights_));
    EXPECT_EQ(
        batched.loss_gradient(qnn::LossKind::kMse, split_.train_features,
                              split_.train_labels, weights_),
        unbatched.loss_gradient(qnn::LossKind::kMse, split_.train_features,
                                split_.train_labels, weights_));
  }
}

TEST_F(BatchedExecutor, SampledProbabilityDeterministicAndCalibrated) {
  const qnn::QnnExecutor ex = make(true);
  const auto& f = split_.test_features.front();
  math::Rng a(5);
  math::Rng b(5);
  const double pa = ex.sampled_probability(f, weights_, 4000, a, 48);
  const double pb = ex.sampled_probability(f, weights_, 4000, b, 48);
  EXPECT_EQ(pa, pb);
  // The sampled estimate tracks the exact forward within shot noise.
  EXPECT_NEAR(pa, ex.probability(f, weights_), 0.05);
}

TEST_F(BatchedExecutor, TrainerConfigRoutesThroughBatchedForward) {
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.gradient_shot_noise = 0.0;
  core::TrainConfig cfg_off = cfg;
  cfg_off.batched_forward = false;
  const core::DistributedTrainer on(model_, device::table3_fleet_subset(2, 2),
                                    cfg);
  const core::DistributedTrainer off(model_,
                                     device::table3_fleet_subset(2, 2),
                                     cfg_off);
  EXPECT_TRUE(on.executors().front().options().batched_forward);
  EXPECT_FALSE(off.executors().front().options().batched_forward);
  const auto ra = on.train(core::Strategy::kArbiterQ, split_);
  const auto rb = off.train(core::Strategy::kArbiterQ, split_);
  EXPECT_EQ(ra.epoch_test_loss, rb.epoch_test_loss);
  EXPECT_EQ(ra.weights, rb.weights);
}

}  // namespace
}  // namespace arbiterq
