// Tests for ensemble-weighted inference and the throughput/makespan
// metrics added to InferenceReport.

#include <gtest/gtest.h>

#include <numeric>

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

class EnsembleFixture : public ::testing::Test {
 protected:
  EnsembleFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    TrainConfig cfg;
    cfg.epochs = 15;
    trainer_ = std::make_unique<DistributedTrainer>(
        model_, device::table3_fleet_subset(5, 2), cfg);
    result_ = trainer_->train(Strategy::kArbiterQ, split_);
    tasks_ = make_tasks(split_.test_features, split_.test_labels);
    config_.shots_per_task = 96;
    config_.warmup_shots = 8;
    config_.trajectories = 8;
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<DistributedTrainer> trainer_;
  TrainResult result_;
  std::vector<InferenceTask> tasks_;
  ScheduleConfig config_;
};

TEST_F(EnsembleFixture, EveryQpuRunsEveryTask) {
  const auto votes = trainer_->eqc_vote_weights();
  const auto r = ensemble_weighted_inference(
      trainer_->executors(), result_.weights, votes, tasks_, config_);
  for (double s : r.qpu_shots) {
    EXPECT_DOUBLE_EQ(s, static_cast<double>(tasks_.size()) *
                            config_.shots_per_task);
  }
}

TEST_F(EnsembleFixture, Validation) {
  const std::vector<double> bad_votes = {1.0};
  EXPECT_THROW(
      ensemble_weighted_inference(trainer_->executors(), result_.weights,
                                  bad_votes, tasks_, config_),
      std::invalid_argument);
  const std::vector<double> zero_votes(5, 0.0);
  EXPECT_THROW(
      ensemble_weighted_inference(trainer_->executors(), result_.weights,
                                  zero_votes, tasks_, config_),
      std::invalid_argument);
  const std::vector<double> neg_votes = {1.0, 1.0, -1.0, 1.0, 1.0};
  EXPECT_THROW(
      ensemble_weighted_inference(trainer_->executors(), result_.weights,
                                  neg_votes, tasks_, config_),
      std::invalid_argument);
  EXPECT_THROW(
      ensemble_weighted_inference(trainer_->executors(), result_.weights,
                                  trainer_->eqc_vote_weights(), {},
                                  config_),
      std::invalid_argument);
}

TEST_F(EnsembleFixture, EnsembleBeatsSingleDeviceBatch) {
  // Averaging every device's prediction cancels per-device bias at least
  // as well as a single randomly assigned device.
  ScheduleConfig cfg = config_;
  cfg.shots_per_task = 256;
  const auto votes = trainer_->eqc_vote_weights();
  const auto ensemble = ensemble_weighted_inference(
      trainer_->executors(), result_.weights, votes, tasks_, cfg);
  const auto batch = batch_based_inference(trainer_->executors(),
                                           result_.weights, tasks_, cfg);
  EXPECT_LE(ensemble.mean_loss, batch.mean_loss + 0.01);
  EXPECT_LE(ensemble.loss_stddev, batch.loss_stddev + 0.01);
}

TEST_F(EnsembleFixture, EnsemblePaysInMakespan) {
  const auto votes = trainer_->eqc_vote_weights();
  const auto ensemble = ensemble_weighted_inference(
      trainer_->executors(), result_.weights, votes, tasks_, config_);
  const auto batch = batch_based_inference(trainer_->executors(),
                                           result_.weights, tasks_, config_);
  // Each QPU of the ensemble runs the full task set; batch splits it.
  EXPECT_GT(ensemble.makespan_us, batch.makespan_us);
  EXPECT_LT(ensemble.throughput_tasks_per_s,
            batch.throughput_tasks_per_s);
}

TEST_F(EnsembleFixture, ThroughputFieldsConsistent) {
  const auto partition = build_torus_partition(
      trainer_->behavioral_vectors(), result_.weights);
  const ShotOrientedScheduler sched(trainer_->executors(), result_.weights,
                                    partition, config_);
  const auto r = sched.run(tasks_);
  EXPECT_GT(r.makespan_us, 0.0);
  EXPECT_NEAR(r.throughput_tasks_per_s,
              1e6 * static_cast<double>(tasks_.size()) / r.makespan_us,
              1e-9);
  double max_busy = 0.0;
  for (double b : r.qpu_busy_us) max_busy = std::max(max_busy, b);
  EXPECT_DOUBLE_EQ(r.makespan_us, max_busy);
}

}  // namespace
}  // namespace arbiterq::core
