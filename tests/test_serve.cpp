#include "arbiterq/serve/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/monitor/slo.hpp"
#include "arbiterq/serve/fault_injector.hpp"
#include "arbiterq/serve/job_queue.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/prometheus.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::serve {
namespace {

// ---------------------------------------------------------------- JobQueue

TEST(JobQueue, Validation) {
  EXPECT_THROW(JobQueue(0, 4), std::invalid_argument);
  EXPECT_THROW(JobQueue(2, 0), std::invalid_argument);
}

TEST(JobQueue, PriorityOrderWithinLane) {
  JobQueue q(1, 8);
  ShotBatch low;
  low.job = 1;
  low.priority = JobPriority::kLow;
  ShotBatch high;
  high.job = 2;
  high.priority = JobPriority::kHigh;
  ShotBatch normal;
  normal.job = 3;
  normal.priority = JobPriority::kNormal;
  ASSERT_TRUE(q.try_push(low));
  ASSERT_TRUE(q.try_push(normal));
  ASSERT_TRUE(q.try_push(high));
  ShotBatch out;
  ASSERT_TRUE(q.pop(0, &out));
  EXPECT_EQ(out.job, 2U);  // high first
  q.task_done();
  ASSERT_TRUE(q.pop(0, &out));
  EXPECT_EQ(out.job, 3U);
  q.task_done();
  ASSERT_TRUE(q.pop(0, &out));
  EXPECT_EQ(out.job, 1U);
  q.task_done();
}

TEST(JobQueue, CapacityBackpressureAndRetryBypass) {
  JobQueue q(1, 2);
  ASSERT_TRUE(q.try_push({}));
  ASSERT_TRUE(q.try_push({}));
  EXPECT_FALSE(q.try_push({}));  // admission bound hit
  EXPECT_EQ(q.rejected(), 1U);
  q.push_retry({});  // retries ride above the bound
  EXPECT_EQ(q.depth(), 3U);
}

TEST(JobQueue, TryPushAllIsAtomic) {
  JobQueue q(2, 3);
  std::vector<ShotBatch> four(4);
  four[1].qpu = 1;
  EXPECT_FALSE(q.try_push_all(four));  // 4 > capacity: nothing enqueued
  EXPECT_EQ(q.depth(), 0U);
  EXPECT_EQ(q.rejected(), 4U);
  std::vector<ShotBatch> three(3);
  three[2].qpu = 1;
  EXPECT_TRUE(q.try_push_all(three));
  EXPECT_EQ(q.depth(), 3U);
  EXPECT_EQ(q.lane_depth(0), 2U);
  EXPECT_EQ(q.lane_depth(1), 1U);
}

TEST(JobQueue, CloseStopsAdmissionThenDrains) {
  JobQueue q(1, 4);
  ASSERT_TRUE(q.try_push({}));
  q.close();
  EXPECT_FALSE(q.try_push({}));
  ShotBatch out;
  ASSERT_TRUE(q.pop(0, &out));  // pending work still pops after close
  q.task_done();
  EXPECT_FALSE(q.pop(0, &out));  // fully drained
}

TEST(JobQueue, TaskDoneWithoutPopThrows) {
  JobQueue q(1, 4);
  EXPECT_THROW(q.task_done(), std::logic_error);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, ScriptedDropoutTimeline) {
  FaultConfig cfg;
  cfg.dropouts = {{2, 10}};
  cfg.detection_lag_jobs = 4;
  const FaultInjector faults(6, cfg);
  EXPECT_FALSE(faults.dropped(2, 9));
  EXPECT_TRUE(faults.dropped(2, 10));
  EXPECT_TRUE(faults.dropped(2, 999));
  EXPECT_FALSE(faults.dropped(3, 999));
  // Detection lag: router learns at job 14.
  EXPECT_EQ(faults.routing_epoch(13), 0U);
  EXPECT_EQ(faults.routing_epoch(14), 1U);
  const std::vector<int> alive = faults.alive_at_epoch(1);
  EXPECT_EQ(alive.size(), 5U);
  EXPECT_EQ(std::count(alive.begin(), alive.end(), 2), 0);
}

TEST(FaultInjector, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.transient_probability = 0.3;
  cfg.latency_spike_probability = 0.3;
  cfg.seed = 7;
  const FaultInjector a(4, cfg);
  const FaultInjector b(4, cfg);
  for (std::uint64_t job = 0; job < 50; ++job) {
    for (int qpu = 0; qpu < 4; ++qpu) {
      EXPECT_EQ(a.transient_failure(job, qpu, 0),
                b.transient_failure(job, qpu, 0));
      EXPECT_EQ(a.latency_multiplier(job, qpu, 1),
                b.latency_multiplier(job, qpu, 1));
    }
  }
}

TEST(FaultInjector, RejectsKillingWholeFleet) {
  FaultConfig cfg;
  cfg.dropouts = {{0, 1}, {1, 2}};
  EXPECT_THROW(FaultInjector(2, cfg), std::invalid_argument);
}

TEST(FaultInjector, ParseSpec) {
  const FaultConfig cfg = FaultInjector::parse(
      "kill:3@40,transient:0.05,spike:0.1x8,lag:6,seed:11");
  ASSERT_EQ(cfg.dropouts.size(), 1U);
  EXPECT_EQ(cfg.dropouts[0].qpu, 3);
  EXPECT_EQ(cfg.dropouts[0].at_job, 40U);
  EXPECT_DOUBLE_EQ(cfg.transient_probability, 0.05);
  EXPECT_DOUBLE_EQ(cfg.latency_spike_probability, 0.1);
  EXPECT_DOUBLE_EQ(cfg.latency_spike_multiplier, 8.0);
  EXPECT_EQ(cfg.detection_lag_jobs, 6U);
  EXPECT_EQ(cfg.seed, 11U);
  EXPECT_THROW(FaultInjector::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("kill:3"), std::invalid_argument);
}

// ----------------------------------------------------------- ServingRuntime

class ServeFixture : public ::testing::Test {
 protected:
  ServeFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    core::TrainConfig cfg;
    trainer_ = std::make_unique<core::DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    // Per-QPU personalized weights: small deterministic perturbations of
    // a shared draw (training is not what these tests exercise).
    math::Rng rng(42);
    std::vector<double> base(
        static_cast<std::size_t>(model_.num_weights()));
    for (double& w : base) w = rng.normal(0.0, 0.3);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w = base;
      math::Rng qrng = rng.split(q);
      for (double& x : w) x += qrng.normal(0.0, 0.05);
      weights_.push_back(std::move(w));
    }
  }

  std::vector<JobSpec> make_jobs(std::size_t n) const {
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      JobSpec spec;
      spec.features = split_.test_features[i % split_.test_features.size()];
      spec.label = split_.test_labels[i % split_.test_labels.size()];
      jobs.push_back(std::move(spec));
    }
    return jobs;
  }

  std::vector<JobResult> run(const ServeConfig& cfg,
                             const std::vector<JobSpec>& jobs,
                             const FaultInjector* faults = nullptr,
                             monitor::FleetHealthMonitor* monitor = nullptr,
                             ServingReport* report = nullptr,
                             std::size_t* epochs = nullptr) const {
    ServingRuntime runtime(trainer_->executors(), weights_,
                           trainer_->behavioral_vectors(), cfg, faults,
                           monitor);
    for (const JobSpec& spec : jobs) runtime.submit(spec);
    runtime.drain();
    if (report != nullptr) *report = runtime.report();
    if (epochs != nullptr) *epochs = runtime.epochs();
    return runtime.results();
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<core::DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(ServeFixture, ConstructorValidation) {
  ServeConfig cfg;
  std::vector<std::vector<double>> bad_weights(2);
  EXPECT_THROW(ServingRuntime(trainer_->executors(), bad_weights,
                              trainer_->behavioral_vectors(), cfg),
               std::invalid_argument);
  cfg.shots_per_job = 0;
  EXPECT_THROW(ServingRuntime(trainer_->executors(), weights_,
                              trainer_->behavioral_vectors(), cfg),
               std::invalid_argument);
}

TEST_F(ServeFixture, FaultFreeRunCompletesEveryJob) {
  ServeConfig cfg;
  cfg.shots_per_job = 64;
  cfg.trajectories = 4;
  ServingReport rep;
  const std::vector<JobResult> results =
      run(cfg, make_jobs(12), nullptr, nullptr, &rep);
  ASSERT_EQ(results.size(), 12U);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk) << "job " << r.id;
    EXPECT_GE(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
    EXPECT_EQ(r.retries, 0);
    EXPECT_GT(r.batches, 0);
    EXPECT_GT(r.virtual_latency_us, 0.0);
    EXPECT_EQ(r.epoch, 0U);
  }
  EXPECT_EQ(rep.submitted, 12U);
  EXPECT_EQ(rep.completed, 12U);
  EXPECT_EQ(rep.rejected, 0U);
  EXPECT_EQ(rep.retries, 0U);
  EXPECT_GT(rep.throughput_jobs_per_s, 0.0);
}

TEST_F(ServeFixture, DeterministicAcrossRunsAndSchedules) {
  ServeConfig cfg;
  cfg.shots_per_job = 48;
  cfg.trajectories = 4;
  cfg.seed = 123;
  const std::vector<JobSpec> jobs = make_jobs(10);
  const std::vector<JobResult> a = run(cfg, jobs);
  const std::vector<JobResult> b = run(cfg, jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].probability, b[i].probability);  // bit-identical
    EXPECT_EQ(a[i].loss, b[i].loss);
    EXPECT_EQ(a[i].virtual_latency_us, b[i].virtual_latency_us);
    EXPECT_EQ(a[i].torus, b[i].torus);
  }
}

TEST_F(ServeFixture, SeedChangesResults) {
  ServeConfig cfg;
  cfg.shots_per_job = 48;
  cfg.trajectories = 4;
  const std::vector<JobSpec> jobs = make_jobs(8);
  cfg.seed = 1;
  const std::vector<JobResult> a = run(cfg, jobs);
  cfg.seed = 2;
  const std::vector<JobResult> b = run(cfg, jobs);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].probability != b[i].probability) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// The ISSUE acceptance scenario: a seeded FaultInjector kills a QPU
// mid-run; the runtime completes every admitted job, re-routes the
// victim's shot-batches (retry counters > 0), repartitions the
// surviving fleet, and two same-seed runs agree bit-for-bit.
TEST_F(ServeFixture, DropoutMidRunRecoversDeterministically) {
  ServeConfig cfg;
  cfg.shots_per_job = 48;
  cfg.trajectories = 4;
  cfg.seed = 99;
  FaultConfig fcfg;
  fcfg.dropouts = {{1, 8}};
  fcfg.detection_lag_jobs = 8;
  const FaultInjector faults(6, fcfg);
  const std::vector<JobSpec> jobs = make_jobs(30);

  monitor::FleetHealthMonitor monitor(6);
  ServingReport rep;
  std::size_t epochs = 0;
  const std::vector<JobResult> a =
      run(cfg, jobs, &faults, &monitor, &rep, &epochs);

  ASSERT_EQ(a.size(), 30U);
  std::uint64_t total_retries = 0;
  for (const JobResult& r : a) {
    EXPECT_NE(r.status, JobStatus::kPending) << "job " << r.id;
    EXPECT_EQ(r.status, JobStatus::kOk) << "job " << r.id;
    total_retries += static_cast<std::uint64_t>(r.retries);
  }
  // Jobs routed to the dying QPU inside the detection window were
  // rescued by the retry path.
  EXPECT_GT(total_retries, 0U);
  EXPECT_EQ(rep.retries, total_retries);
  EXPECT_EQ(rep.dropouts_detected, 1U);
  EXPECT_GE(rep.repartitions, 1U);
  EXPECT_GE(epochs, 2U);
  // Late jobs were routed under the degraded epoch.
  EXPECT_GE(a.back().epoch, 1U);
  // No shots executed on the victim after its death is possible to
  // check only via the survivors: the victim keeps whatever it ran
  // before job 8, every later batch went elsewhere.
  const monitor::FleetHealthReport health = monitor.report();
  EXPECT_FALSE(health.qpus[1].online);

  // Same seed, second run: per-job results are bit-identical.
  const std::vector<JobResult> b = run(cfg, jobs, &faults);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "job " << i;
    EXPECT_EQ(a[i].probability, b[i].probability) << "job " << i;
    EXPECT_EQ(a[i].loss, b[i].loss) << "job " << i;
    EXPECT_EQ(a[i].retries, b[i].retries) << "job " << i;
    EXPECT_EQ(a[i].virtual_latency_us, b[i].virtual_latency_us)
        << "job " << i;
    EXPECT_EQ(a[i].epoch, b[i].epoch) << "job " << i;
    EXPECT_EQ(a[i].torus, b[i].torus) << "job " << i;
  }
}

TEST_F(ServeFixture, DegradedPartitionExcludesVictim) {
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  FaultConfig fcfg;
  fcfg.dropouts = {{4, 3}};
  fcfg.detection_lag_jobs = 2;
  const FaultInjector faults(6, fcfg);
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg, &faults);
  for (const JobSpec& spec : make_jobs(12)) runtime.submit(spec);
  runtime.drain();
  ASSERT_GE(runtime.epochs(), 2U);
  const core::TorusPartition degraded = runtime.partition(1);
  std::set<int> members;
  for (const auto& torus : degraded.tori) {
    members.insert(torus.begin(), torus.end());
  }
  EXPECT_EQ(members.count(4), 0U);
  EXPECT_EQ(members.size(), 5U);  // global ids, victim excluded
  EXPECT_THROW(runtime.partition(99), std::out_of_range);
}

TEST_F(ServeFixture, TransientFailuresRetryAndComplete) {
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.max_retries = 6;
  cfg.backoff_base_us = 1.0;  // keep the test fast
  cfg.backoff_max_us = 10.0;
  FaultConfig fcfg;
  fcfg.transient_probability = 0.25;
  fcfg.seed = 5;
  const FaultInjector faults(6, fcfg);
  ServingReport rep;
  const std::vector<JobResult> results =
      run(cfg, make_jobs(16), &faults, nullptr, &rep);
  EXPECT_GT(rep.retries, 0U);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk) << "job " << r.id;
  }
}

TEST_F(ServeFixture, DeadlineExpiresSlowJobs) {
  ServeConfig cfg;
  cfg.shots_per_job = 64;
  cfg.trajectories = 2;
  cfg.deadline_us = 1e-3;  // far below one shot's modeled latency
  ServingReport rep;
  const std::vector<JobResult> results =
      run(cfg, make_jobs(6), nullptr, nullptr, &rep);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kExpired) << "job " << r.id;
  }
  EXPECT_EQ(rep.expired, 6U);
  // A generous per-job override rescues a job from the tight default.
  JobSpec spec;
  spec.features = split_.test_features[0];
  spec.label = split_.test_labels[0];
  spec.deadline_us = 1e9;
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  runtime.submit(spec);
  runtime.drain();
  EXPECT_EQ(runtime.results()[0].status, JobStatus::kOk);
}

TEST_F(ServeFixture, BackpressureRejectsWhenSaturated) {
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.queue_capacity = 4;  // a couple of jobs' worth of batches
  cfg.autostart = false;   // nothing drains while we submit
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  const std::vector<JobSpec> jobs = make_jobs(20);
  std::size_t admitted = 0;
  for (const JobSpec& spec : jobs) {
    if (runtime.submit(spec).has_value()) ++admitted;
  }
  EXPECT_GT(admitted, 0U);
  EXPECT_LT(admitted, jobs.size());
  runtime.start();
  runtime.drain();
  const ServingReport rep = runtime.report();
  EXPECT_EQ(rep.admitted, admitted);
  EXPECT_EQ(rep.rejected, jobs.size() - admitted);
  EXPECT_EQ(rep.completed, admitted);
  for (const JobResult& r : runtime.results()) {
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kRejected);
  }
}

TEST_F(ServeFixture, ServingMetricsReachPrometheusExport) {
  telemetry::MetricsRegistry::global().reset_values();
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  run(cfg, make_jobs(5));
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  const std::string text = telemetry::prometheus_text(snap);
  EXPECT_NE(text.find("arbiterq_serve_queue_depth"), std::string::npos);
#if ARBITERQ_TELEMETRY_ENABLED
  // These series come from AQ_* macro sites, compiled away when OFF.
  EXPECT_NE(text.find("arbiterq_serve_job_latency_us_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("arbiterq_serve_job_latency_us_count"),
            std::string::npos);
  EXPECT_NE(text.find("arbiterq_serve_jobs_admitted_total"),
            std::string::npos);
#endif
  // The histogram snapshot yields finite latency quantiles.
  for (const telemetry::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "serve.job.latency_us") {
      EXPECT_EQ(h.count, 5U);
      EXPECT_GT(h.p50(), 0.0);
      EXPECT_GE(h.p99(), h.p50());
    }
  }
}

TEST_F(ServeFixture, TracedJobsEmitStitchedSpanTrees) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::TraceBuffer::global().clear();
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.trace_sample_every = 1;  // every job
  run(cfg, make_jobs(4));
  const std::vector<telemetry::TraceEvent> events =
      telemetry::TraceBuffer::global().snapshot();

  // One root per job, flow-keyed by job id + 1, with a labelled lane.
  std::map<std::uint64_t, const telemetry::TraceEvent*> roots;
  for (const telemetry::TraceEvent& e : events) {
    if (e.name == "serve.job") {
      EXPECT_GT(e.flow_id, 0U);
      EXPECT_EQ(e.parent_id, 0U);
      EXPECT_NE(e.flow_label.find("job-"), std::string::npos);
      roots[e.flow_id] = &e;
    }
  }
  EXPECT_EQ(roots.size(), 4U);

  // Every flow-keyed child span carries its job's flow and hangs off
  // that root (ambient spans like serve.worker.execute keep flow 0).
  std::size_t route = 0, wait = 0, exec = 0;
  for (const telemetry::TraceEvent& e : events) {
    if (e.name == "serve.job" || e.flow_id == 0) continue;
    ASSERT_EQ(roots.count(e.flow_id), 1U) << e.name;
    EXPECT_EQ(e.parent_id, roots[e.flow_id]->id) << e.name;
    if (e.name == "serve.job.route") ++route;
    if (e.name == "serve.batch.wait") ++wait;
    if (e.name == "serve.batch.exec") ++exec;
  }
  EXPECT_EQ(route, 4U);           // one route decision per job
  EXPECT_GE(wait, 4U);            // at least one queue wait per job
  EXPECT_EQ(exec, wait);          // fault-free: every pop executed
  telemetry::TraceBuffer::global().clear();
}

TEST_F(ServeFixture, TraceSamplingSelectsEveryNthJob) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::TraceBuffer::global().clear();
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.trace_sample_every = 2;  // job ids 0, 2, 4, ...
  run(cfg, make_jobs(6));
  std::set<std::uint64_t> flows;
  for (const telemetry::TraceEvent& e :
       telemetry::TraceBuffer::global().snapshot()) {
    if (e.name == "serve.job") flows.insert(e.flow_id);
  }
  // flow_id = job id + 1: even ids 0/2/4 -> flows 1/3/5.
  EXPECT_EQ(flows, (std::set<std::uint64_t>{1, 3, 5}));
  telemetry::TraceBuffer::global().clear();
}

TEST_F(ServeFixture, TracingOffLeavesTheBufferUntouched) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::TraceBuffer::global().clear();
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.trace_sample_every = 0;
  run(cfg, make_jobs(3));
  // Ambient worker spans still record; no *per-job* (flow-keyed) span
  // may appear.
  for (const telemetry::TraceEvent& e :
       telemetry::TraceBuffer::global().snapshot()) {
    EXPECT_EQ(e.flow_id, 0U) << e.name;
    EXPECT_NE(e.name, "serve.job");
  }
}

TEST_F(ServeFixture, SloEngineJudgesJobsByClass) {
  monitor::SloPolicy policy;
  policy.objectives[0] = {1e-6, 0.5};  // unmeetable latency target
  policy.objectives[2] = {0.0, 0.5};   // success-only
  policy.window_jobs = 4;
  monitor::SloEngine slo(policy);
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg, nullptr,
                         nullptr, nullptr, &slo);
  std::vector<JobSpec> jobs = make_jobs(8);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].slo_class = i < 4 ? monitor::SloClass::kLatencyBound
                              : monitor::SloClass::kBestEffort;
  }
  for (const JobSpec& spec : jobs) runtime.submit(spec);
  runtime.drain();
  const monitor::SloReport rep = slo.report();
  // Latency-bound: every job beat 1e-6us is impossible -> all violate,
  // closing one fully-burned window.
  EXPECT_EQ(rep.classes[0].jobs, 4U);
  EXPECT_EQ(rep.classes[0].violations, 4U);
  EXPECT_EQ(rep.classes[0].breaches, 1U);
  // Best-effort jobs completed ok -> compliant.
  EXPECT_EQ(rep.classes[2].jobs, 4U);
  EXPECT_EQ(rep.classes[2].violations, 0U);
}

TEST_F(ServeFixture, VirtualTimeGaugesSampleOnCadence) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::MetricsRegistry::global().reset_values();
  ServeConfig cfg;
  cfg.shots_per_job = 64;
  cfg.trajectories = 2;
  cfg.gauge_cadence_us = 100.0;  // well below one job's modeled time
  run(cfg, make_jobs(6));
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  double samples = 0.0;
  bool saw_depth = false, saw_inflight = false, saw_vt = false;
  for (const telemetry::CounterSnapshot& c : snap.counters) {
    if (c.name == "serve.gauge.samples") samples = c.value;
  }
  for (const telemetry::GaugeSnapshot& g : snap.gauges) {
    if (g.name == "serve.queue.depth.sampled") saw_depth = true;
    if (g.name.rfind("serve.qpu.inflight.q", 0) == 0) saw_inflight = true;
    if (g.name == "serve.virtual_time_us") {
      saw_vt = true;
      EXPECT_GT(g.value, 0.0);
    }
  }
#if ARBITERQ_TELEMETRY_ENABLED
  EXPECT_GT(samples, 0.0);  // AQ_COUNTER_ADD site, compiled away if OFF
#else
  (void)samples;
#endif
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_inflight);
  EXPECT_TRUE(saw_vt);
}

TEST_F(ServeFixture, TenantCountersAreSanitized) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::MetricsRegistry::global().reset_values();
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  std::vector<JobSpec> jobs = make_jobs(3);
  for (JobSpec& spec : jobs) spec.tenant = "evil\ntenant";
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  for (const JobSpec& spec : jobs) runtime.submit(spec);
  runtime.drain();
  double tenant_jobs = -1.0;
  for (const telemetry::CounterSnapshot& c :
       telemetry::MetricsRegistry::global().snapshot().counters) {
    EXPECT_EQ(c.name.find('\n'), std::string::npos) << c.name;
    if (c.name == "serve.tenant.jobs.evil_tenant") tenant_jobs = c.value;
  }
  EXPECT_DOUBLE_EQ(tenant_jobs, 3.0);
}

TEST(JobStatusName, CoversAllStates) {
  EXPECT_EQ(job_status_name(JobStatus::kOk), "ok");
  EXPECT_EQ(job_status_name(JobStatus::kRejected), "rejected");
  EXPECT_EQ(job_status_name(JobStatus::kExpired), "expired");
  EXPECT_EQ(job_status_name(JobStatus::kFailed), "failed");
  EXPECT_EQ(job_status_name(JobStatus::kPending), "pending");
}

}  // namespace
}  // namespace arbiterq::serve
