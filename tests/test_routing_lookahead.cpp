// Tests for the SABRE-style lookahead router (RoutingOptions::kLookahead):
// correctness mirrors the greedy router's contract, plus quality checks.

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/transpile/routing.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::ParamExpr;
using device::Topology;

RoutingOptions lookahead() {
  RoutingOptions o;
  o.strategy = RoutingOptions::Strategy::kLookahead;
  return o;
}

void expect_equivalent(const Circuit& original, const RoutedCircuit& routed,
                       const std::vector<double>& params) {
  const auto u_orig = circuit_unitary(original, params);
  const auto u_routed = circuit_unitary(routed.circuit, params);
  const auto p = circuit::permutation_unitary(routed.final_layout);
  const std::size_t dim = std::size_t{1} << routed.final_layout.size();
  std::vector<circuit::Complex> p_dag(p.size());
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      p_dag[r * dim + c] = std::conj(p[c * dim + r]);
    }
  }
  EXPECT_LT(circuit::unitary_distance_up_to_phase(
                u_orig, circuit::multiply_square(p_dag, u_routed)),
            1e-9);
}

TEST(LookaheadRouting, AdjacentCircuitUntouched) {
  Circuit c(3, 0);
  c.h(0).cx(0, 1).cx(1, 2);
  const RoutedCircuit r = route(c, Topology::line(3), lookahead());
  EXPECT_EQ(r.circuit.routing_swap_count(), 0U);
}

TEST(LookaheadRouting, RespectsTopologyOnHardCircuits) {
  Circuit c(4, 0);
  c.cx(0, 3).cx(1, 2).cx(0, 2).cx(3, 1);
  for (const Topology& topo :
       {Topology::line(4), Topology::star(4), Topology::ring(4)}) {
    const RoutedCircuit r = route(c, topo, lookahead());
    EXPECT_TRUE(respects_topology(r.circuit, topo));
  }
}

class LookaheadEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LookaheadEquivalence, RandomCircuitsStayEquivalent) {
  math::Rng rng(900 + GetParam());
  const int n = 4;
  Circuit c(n, 3);
  for (int i = 0; i < 14; ++i) {
    const int a = static_cast<int>(rng.uniform_int(n));
    int b = static_cast<int>(rng.uniform_int(n));
    if (b == a) b = (a + 1) % n;
    if (rng.bernoulli(0.4)) {
      c.ry(a, ParamExpr::ref(static_cast<int>(rng.uniform_int(3))));
    } else {
      c.crz(a, b, ParamExpr::ref(static_cast<int>(rng.uniform_int(3))));
    }
  }
  for (const Topology& topo :
       {Topology::line(n), Topology::star(n), Topology::grid(2, 2)}) {
    const RoutedCircuit r = route(c, topo, lookahead());
    EXPECT_TRUE(respects_topology(r.circuit, topo));
    expect_equivalent(c, r, {0.5, -1.0, 1.4});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadEquivalence,
                         ::testing::Range(0, 8));

TEST(LookaheadRouting, CompetitiveSwapCountOnRingWorkload) {
  // Ring entangler over a line: the canonical congested pattern. The
  // lookahead router must not be drastically worse than greedy, and on
  // this workload it is typically at least as good.
  Circuit c(6, 0);
  for (int rep = 0; rep < 3; ++rep) {
    for (int q = 0; q < 6; ++q) c.cx(q, (q + 1) % 6);
  }
  const auto greedy = route(c, Topology::line(6));
  const auto smart = route(c, Topology::line(6), lookahead());
  EXPECT_LE(smart.circuit.routing_swap_count(),
            greedy.circuit.routing_swap_count() + 2);
}

TEST(LookaheadRouting, WindowAndDecayConfigurable) {
  Circuit c(4, 0);
  c.cx(0, 3).cx(1, 3).cx(0, 2);
  RoutingOptions tight = lookahead();
  tight.lookahead_window = 1;
  tight.lookahead_decay = 0.1;
  const RoutedCircuit r = route(c, Topology::line(4), tight);
  EXPECT_TRUE(respects_topology(r.circuit, Topology::line(4)));
  expect_equivalent(c, r, {});
}

TEST(LookaheadRouting, SwapTaggingPreserved) {
  Circuit c(4, 0);
  c.cx(0, 3);
  const RoutedCircuit r = route(c, Topology::line(4), lookahead());
  for (const auto& g : r.circuit.gates()) {
    if (g.is_routing_swap) {
      EXPECT_EQ(g.kind, circuit::GateKind::kSwap);
      EXPECT_EQ(g.logical_id, 0);
    }
  }
  EXPECT_GE(r.circuit.routing_swap_count(), 1U);
}

}  // namespace
}  // namespace arbiterq::transpile
