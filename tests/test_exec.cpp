#include "arbiterq/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arbiterq/exec/thread_pool.hpp"
#include "arbiterq/math/rng.hpp"

namespace arbiterq::exec {
namespace {

ExecPolicy threads(int n, std::size_t grain = 1) {
  ExecPolicy p;
  p.num_threads = n;
  p.grain = grain;
  return p;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, SurvivesThrowingTaskAndKeepsWorking) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker must swallow this"); });
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(threads(8), 0, kN, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialPolicyRunsInlineInOneCall) {
  int calls = 0;
  std::thread::id seen;
  parallel_for(threads(1), 3, 40, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    seen = std::this_thread::get_id();
    EXPECT_EQ(lo, 3U);
    EXPECT_EQ(hi, 40U);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, std::this_thread::get_id());
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  int calls = 0;
  parallel_for(threads(8), 5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainLimitsChunkCount) {
  // 10 items with grain 6 -> at most 2 chunks regardless of threads.
  std::atomic<int> chunks{0};
  parallel_for(threads(8, 6), 0, 10, [&](std::size_t, std::size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_LE(chunks.load(), 2);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ParallelFor, PropagatesLowestChunkException) {
  // Every chunk throws its own lo; the deterministic winner is chunk 0.
  try {
    parallel_for(threads(8), 0, 8, [&](std::size_t lo, std::size_t) {
      throw std::runtime_error(std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ParallelFor, UsableAgainAfterAnException) {
  EXPECT_THROW(
      parallel_for(threads(8), 0, 8,
                   [](std::size_t, std::size_t) {
                     throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(threads(8), 0, hits.size(),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
               });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(threads(8), 0, kOuter, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t o = lo; o < hi; ++o) {
      EXPECT_TRUE(ThreadPool::in_parallel_region() || hi - lo == kOuter);
      parallel_for(threads(8), 0, kInner,
                   [&](std::size_t ilo, std::size_t ihi) {
                     for (std::size_t i = ilo; i < ihi; ++i) {
                       hits[o * kInner + i].fetch_add(1);
                     }
                   });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelMap, MatchesSerialMapInOrder) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto doubled =
      parallel_map(threads(8), items,
                   [](int v, std::size_t) { return v * 2; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], items[i] * 2);
  }
}

TEST(ResolveThreads, ExplicitRequestWinsUnchanged) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(16), 16);
}

TEST(ResolveThreads, AutoConsultsEnvThenHardware) {
  ::setenv("ARBITERQ_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5);
  ::setenv("ARBITERQ_THREADS", "0", 1);  // invalid -> hardware fallback
  EXPECT_GE(resolve_threads(0), 1);
  ::unsetenv("ARBITERQ_THREADS");
  EXPECT_GE(resolve_threads(0), 1);
}

TEST(TaskRng, SplitsAreDeterministicAndIndexDistinct) {
  const math::Rng root(123);
  math::Rng a1 = task_rng(root, 7);
  math::Rng a2 = task_rng(root, 7);
  math::Rng b = task_rng(root, 8);
  const double va1 = a1.uniform(0.0, 1.0);
  const double va2 = a2.uniform(0.0, 1.0);
  const double vb = b.uniform(0.0, 1.0);
  EXPECT_EQ(va1, va2);
  EXPECT_NE(va1, vb);
}

TEST(RegionGuard, MarksAndRestoresTheFlag) {
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  {
    RegionGuard guard;
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    {
      RegionGuard nested;
      EXPECT_TRUE(ThreadPool::in_parallel_region());
    }
    EXPECT_TRUE(ThreadPool::in_parallel_region());
  }
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

}  // namespace
}  // namespace arbiterq::exec
