#include "arbiterq/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/sim/density_matrix.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

Circuit small_circuit() {
  Circuit c(2, 2);
  c.ry(0, ParamExpr::ref(0)).cx(0, 1).ry(1, ParamExpr::ref(1)).cz(0, 1);
  return c;
}

NoiseModel mild_noise() {
  NoiseModel m(2);
  m.set_depolarizing_1q(0, 0.01);
  m.set_depolarizing_1q(1, 0.02);
  m.set_depolarizing_2q(0, 1, 0.03);
  m.set_coherent_bias(0, 0.05);
  m.set_coherent_bias(1, -0.04);
  m.set_readout_error(0, 0.01, 0.01);
  m.set_readout_error(1, 0.02, 0.02);
  return m;
}

TEST(Simulator, IdealRunMatchesNoiselessExpectation) {
  StatevectorSimulator sim;  // no noise model
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.9, -0.4};
  const Statevector sv = sim.run_ideal(c, params);
  EXPECT_NEAR(sim.expectation_z(c, params, 0), sv.expectation_z(0), 1e-12);
  EXPECT_NEAR(sim.probability_of_one(c, params, 0),
              0.5 * (1.0 - sv.expectation_z(0)), 1e-12);
}

TEST(Simulator, BiasedRunDiffersFromIdealUnderCoherentNoise) {
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.9, -0.4};
  StatevectorSimulator noisy(mild_noise());
  StatevectorSimulator ideal;
  const double zb = noisy.run_biased(c, params).expectation_z(0);
  const double zi = ideal.run_ideal(c, params).expectation_z(0);
  EXPECT_GT(std::abs(zb - zi), 1e-4);
}

TEST(Simulator, ExactModeAppliesAttenuation) {
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.9, -0.4};
  StatevectorSimulator noisy(mild_noise());
  const double survival = noisy.noise().survival_probability(c);
  EXPECT_LT(survival, 1.0);
  const double z = noisy.expectation_z(c, params, 0);
  const double zb = noisy.run_biased(c, params).expectation_z(0);
  EXPECT_NEAR(z, survival * zb, 1e-12);
}

TEST(Simulator, SampleCountsTotalAndDeterminism) {
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.9, -0.4};
  StatevectorSimulator sim(mild_noise());
  ShotOptions opts;
  opts.shots = 500;
  opts.trajectories = 10;
  math::Rng a(3);
  math::Rng b(3);
  const auto ca = sim.sample_counts(c, params, opts, a);
  const auto cb = sim.sample_counts(c, params, opts, b);
  EXPECT_EQ(ca, cb);
  std::uint64_t total = 0;
  for (auto v : ca) total += v;
  EXPECT_EQ(total, 500U);
}

TEST(Simulator, InvalidShotOptionsThrow) {
  const Circuit c = small_circuit();
  StatevectorSimulator sim;
  math::Rng rng(1);
  const std::vector<double> params = {0.0, 0.0};
  ShotOptions bad;
  bad.shots = 0;
  EXPECT_THROW(sim.sample_counts(c, params, bad, rng),
               std::invalid_argument);
  bad.shots = 10;
  bad.trajectories = 0;
  EXPECT_THROW(sim.sample_counts(c, params, bad, rng),
               std::invalid_argument);
}

TEST(Simulator, NoiselessSamplingConvergesToExact) {
  const Circuit c = small_circuit();
  const std::vector<double> params = {1.2, 0.3};
  StatevectorSimulator sim;
  math::Rng rng(11);
  ShotOptions opts;
  opts.shots = 40000;
  opts.trajectories = 1;
  const double sampled =
      sim.sampled_probability_of_one(c, params, 0, opts, rng);
  EXPECT_NEAR(sampled, sim.probability_of_one(c, params, 0), 0.01);
}

TEST(Simulator, TrajectorySamplingMatchesDensityMatrixReference) {
  // The trajectory engine's expectation over many shots must converge to
  // the exact Kraus-channel result (readout included).
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.8, -0.6};
  const NoiseModel noise = mild_noise();
  StatevectorSimulator sim(noise);
  math::Rng rng(21);
  ShotOptions opts;
  opts.shots = 60000;
  opts.trajectories = 3000;
  const double sampled_p1 =
      sim.sampled_probability_of_one(c, params, 0, opts, rng);
  const double ref_z = reference_expectation_z(c, params, noise, 0);
  EXPECT_NEAR(1.0 - 2.0 * sampled_p1, ref_z, 0.02);
}

TEST(Simulator, ExactModeApproximatesReferenceWithinBound) {
  // The attenuation shortcut is an approximation of the depolarizing
  // channel; for mild noise it must stay within a small absolute error
  // of the density-matrix reference (DESIGN.md documents this bound).
  const Circuit c = small_circuit();
  const std::vector<double> params = {0.8, -0.6};
  const NoiseModel noise = mild_noise();
  StatevectorSimulator sim(noise);
  const double approx_z = sim.expectation_z(c, params, 0);
  double ref_z = reference_expectation_z(c, params, noise, 0);
  // Strip the readout contraction the exact mode does not model at the
  // <Z> level (QnnExecutor applies it separately).
  ref_z = (ref_z - (noise.readout_p10(0) - noise.readout_p01(0))) /
          (1.0 - noise.readout_p01(0) - noise.readout_p10(0));
  EXPECT_NEAR(approx_z, ref_z, 0.05);
}

TEST(Simulator, ReadoutErrorShiftsSampledProbability) {
  Circuit c(1);
  c.x(0);  // always reads 1 without noise
  NoiseModel m(1);
  m.set_readout_error(0, 0.0, 0.2);  // 1 -> 0 flips 20%
  StatevectorSimulator sim(m);
  math::Rng rng(31);
  ShotOptions opts;
  opts.shots = 30000;
  opts.trajectories = 1;
  const std::vector<double> no_params;
  EXPECT_NEAR(sim.sampled_probability_of_one(c, no_params, 0, opts, rng),
              0.8, 0.01);
}

TEST(Simulator, MoreTrajectoriesStillConserveShots) {
  const Circuit c = small_circuit();
  StatevectorSimulator sim(mild_noise());
  for (int traj : {1, 7, 64, 1000}) {
    math::Rng rng(41);
    ShotOptions opts;
    opts.shots = 333;
    opts.trajectories = traj;
    const std::vector<double> params = {0.1, 0.2};
    const auto counts = sim.sample_counts(c, params, opts, rng);
    std::uint64_t total = 0;
    for (auto v : counts) total += v;
    EXPECT_EQ(total, 333U) << "trajectories=" << traj;
  }
}

}  // namespace
}  // namespace arbiterq::sim
