// Tests for the options-based compile pipeline: placement + lookahead
// routing + peephole optimization composed, with layout bookkeeping
// checked against simulation.

#include <gtest/gtest.h>

#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/transpile/decompose.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq::transpile {
namespace {

double readout_z(const CompiledCircuit& cc, int device_qubits,
                 const std::vector<double>& params) {
  sim::Statevector sv(device_qubits);
  for (const auto& g : cc.executable.gates()) sv.apply_gate(g, params);
  return sv.expectation_z(cc.measure_qubit(0));
}

TEST(CompileOptions, DefaultMatchesPlainCompile) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 2);
  const auto dev = device::table3_fleet(3)[0];
  const auto plain = compile(m.circuit(), dev);
  const auto with_defaults = compile(m.circuit(), dev, CompileOptions{});
  EXPECT_EQ(plain.executable.size(), with_defaults.executable.size());
  EXPECT_EQ(plain.final_layout, with_defaults.final_layout);
}

class CompilePipeline : public ::testing::TestWithParam<int> {};

TEST_P(CompilePipeline, AllOptionCombinationsPreserveSemantics) {
  const int idx = GetParam();
  const qnn::QnnModel m(qnn::Backbone::kCRx, 3, 1);
  const auto fleet = device::table3_fleet(3);
  const auto& dev = fleet[static_cast<std::size_t>(idx) % fleet.size()];
  std::vector<double> params(static_cast<std::size_t>(m.num_params()));
  math::Rng rng(1700 + idx);
  for (double& p : params) p = rng.uniform(-1.5, 1.5);

  sim::Statevector ideal(m.num_qubits());
  for (const auto& g : m.circuit().gates()) ideal.apply_gate(g, params);
  const double z_ref = ideal.expectation_z(0);

  for (bool layout : {false, true}) {
    for (bool opt : {false, true}) {
      for (auto routing : {RoutingOptions::Strategy::kGreedyPath,
                           RoutingOptions::Strategy::kLookahead}) {
        CompileOptions options;
        options.select_layout = layout;
        options.optimize = opt;
        options.routing.strategy = routing;
        const auto cc = compile(m.circuit(), dev, options);
        EXPECT_TRUE(respects_topology(cc.executable, dev.topology()))
            << dev.name();
        for (const auto& g : cc.executable.gates()) {
          EXPECT_TRUE(is_native(g.kind, dev.basis()));
        }
        EXPECT_NEAR(readout_z(cc, dev.num_qubits(), params), z_ref, 1e-9)
            << dev.name() << " layout=" << layout << " opt=" << opt;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, CompilePipeline, ::testing::Range(0, 6));

TEST(CompileOptions, OptimizeShrinksExecutable) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 2);
  const auto dev = device::table3_fleet(4)[0];
  CompileOptions opt;
  opt.optimize = true;
  EXPECT_LT(compile(m.circuit(), dev, opt).executable.size(),
            compile(m.circuit(), dev).executable.size());
}

TEST(CompileOptions, LayoutSelectionUsesDistinctPhysicalQubits) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 1);
  for (const auto& dev : device::table3_fleet(6)) {
    CompileOptions options;
    options.select_layout = true;
    const auto cc = compile(m.circuit(), dev, options);
    std::vector<bool> seen(static_cast<std::size_t>(dev.num_qubits()),
                           false);
    for (int p : cc.final_layout) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, dev.num_qubits());
      EXPECT_FALSE(seen[static_cast<std::size_t>(p)]) << dev.name();
      seen[static_cast<std::size_t>(p)] = true;
    }
  }
}

}  // namespace
}  // namespace arbiterq::transpile
