#include "arbiterq/math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace arbiterq::math {
namespace {

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  // Sample stddev of {2, 4} = sqrt(2).
  EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(stddev({5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(max_value({3.0, -1.0, 2.0}), 3.0);
  EXPECT_THROW(min_value({}), std::invalid_argument);
  EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(Stats, MovingAverageWindowOne) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto out = moving_average(xs, 1);
  EXPECT_EQ(out, xs);
}

TEST(Stats, MovingAverageSmoothsAndPreservesConstant) {
  const std::vector<double> flat(10, 2.5);
  const auto out = moving_average(flat, 5);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Stats, MovingAverageCenteredValues) {
  const std::vector<double> xs = {0.0, 3.0, 6.0, 9.0};
  const auto out = moving_average(xs, 3);
  // Edges clamp: out[0] = mean(0,3) = 1.5; out[1] = mean(0,3,6) = 3.
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[3], 7.5);
}

TEST(Stats, MovingAverageZeroWindowThrows) {
  EXPECT_THROW(moving_average({1.0}, 0), std::invalid_argument);
}

TEST(Stats, L2Norm) {
  EXPECT_DOUBLE_EQ(l2_norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm({}), 0.0);
}

TEST(Stats, L2Distance) {
  EXPECT_DOUBLE_EQ(l2_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_THROW(l2_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::math
