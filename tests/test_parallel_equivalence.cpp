// Parallel-vs-serial equivalence: every parallel path in the execution
// engine (statevector kernels, executor losses/gradients, the
// parameter-shift oracle, full distributed training) must reproduce the
// serial schedule *bit-identically* for any thread count — that is the
// determinism contract in arbiterq/exec/parallel.hpp, checked here with
// EXPECT_EQ, not tolerances.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/gradient.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq {
namespace {

exec::ExecPolicy threads(int n, std::size_t grain = 0) {
  exec::ExecPolicy p;
  p.num_threads = n;
  p.grain = grain;
  return p;
}

// The thread counts every equivalence check sweeps (1 is the baseline).
const int kSweep[] = {2, 8};

/// A scrambled-but-deterministic register: layers of RY/H with CRZ/CX
/// entanglers so every amplitude is nonzero and phase-rich.
sim::Statevector scrambled_state(int qubits, const exec::ExecPolicy& policy) {
  sim::Statevector sv(qubits);
  sv.set_exec_policy(policy);
  const circuit::Mat2 h =
      circuit::gate_matrix_1q(circuit::GateKind::kH, {});
  const circuit::Mat4 cx =
      circuit::gate_matrix_2q(circuit::GateKind::kCX, {});
  for (int layer = 0; layer < 3; ++layer) {
    for (int q = 0; q < qubits; ++q) {
      const circuit::Mat2 ry = circuit::gate_matrix_1q(
          circuit::GateKind::kRY, {0.17 + 0.31 * q + 0.7 * layer, 0.0, 0.0});
      sv.apply_mat2(ry, q);
      if (layer == 0) sv.apply_mat2(h, q);
    }
    for (int q = 0; q + 1 < qubits; ++q) {
      const circuit::Mat4 crz = circuit::gate_matrix_2q(
          circuit::GateKind::kCRZ, {0.9 - 0.05 * q + 0.2 * layer, 0.0, 0.0});
      sv.apply_mat4(crz, q + 1, q);
      if (layer == 1) sv.apply_mat4(cx, q + 1, q);
    }
  }
  return sv;
}

TEST(KernelEquivalence, StrideKernelsBitIdenticalAcrossThreadCounts) {
  // grain 1 forces chunking even on this small register, so the parallel
  // dispatch path genuinely runs.
  const sim::Statevector serial = scrambled_state(7, threads(1));
  for (int t : kSweep) {
    const sim::Statevector par = scrambled_state(7, threads(t, 1));
    ASSERT_EQ(par.dim(), serial.dim());
    for (std::size_t i = 0; i < serial.dim(); ++i) {
      EXPECT_EQ(par.amplitudes()[i], serial.amplitudes()[i])
          << "threads=" << t << " amp " << i;
    }
  }
}

TEST(KernelEquivalence, DiagonalCzPathFlipsOnlyTheDoublyExcitedSign) {
  // H|0>H|0> then CZ: amplitudes stay 1/2 everywhere, |11> negated —
  // exercises apply_mat4's diagonal fast path end to end.
  const circuit::Mat2 h =
      circuit::gate_matrix_1q(circuit::GateKind::kH, {});
  const circuit::Mat4 cz =
      circuit::gate_matrix_2q(circuit::GateKind::kCZ, {});
  for (const auto& policy : {threads(1), threads(8, 1)}) {
    sim::Statevector sv(2);
    sv.set_exec_policy(policy);
    sv.apply_mat2(h, 0);
    sv.apply_mat2(h, 1);
    sv.apply_mat4(cz, 1, 0);
    EXPECT_NEAR(sv.amplitudes()[0].real(), 0.5, 1e-15);
    EXPECT_NEAR(sv.amplitudes()[1].real(), 0.5, 1e-15);
    EXPECT_NEAR(sv.amplitudes()[2].real(), 0.5, 1e-15);
    EXPECT_NEAR(sv.amplitudes()[3].real(), -0.5, 1e-15);
  }
}

TEST(KernelEquivalence, ParallelPolicyPreservesNorm) {
  const sim::Statevector sv = scrambled_state(6, threads(8, 1));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

class ExecutorEquivalence : public ::testing::Test {
 protected:
  ExecutorEquivalence()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    weights_.assign(static_cast<std::size_t>(model_.num_weights()), 0.0);
    math::Rng rng(7);
    for (double& w : weights_) w = rng.uniform(-1.0, 1.0);
  }

  qnn::QnnExecutor make(int num_threads, bool use_plan = true) const {
    qnn::ExecutorOptions opts;
    opts.exec = threads(num_threads);
    opts.use_plan = use_plan;
    return qnn::QnnExecutor(model_, device::table3_fleet_subset(1, 2)[0],
                            opts);
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::vector<double> weights_;
};

TEST_F(ExecutorEquivalence, DatasetLossBitIdentical) {
  const qnn::QnnExecutor serial = make(1);
  const double base = serial.dataset_loss(qnn::LossKind::kMse,
                                          split_.test_features,
                                          split_.test_labels, weights_);
  for (int t : kSweep) {
    const qnn::QnnExecutor par = make(t);
    EXPECT_EQ(par.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                               split_.test_labels, weights_),
              base)
        << "threads=" << t;
  }
}

TEST_F(ExecutorEquivalence, AdjointGradientBitIdentical) {
  const qnn::QnnExecutor serial = make(1);
  const auto base = serial.loss_gradient(qnn::LossKind::kMse,
                                         split_.train_features,
                                         split_.train_labels, weights_);
  for (int t : kSweep) {
    const auto grad = make(t).loss_gradient(qnn::LossKind::kMse,
                                            split_.train_features,
                                            split_.train_labels, weights_);
    ASSERT_EQ(grad.size(), base.size());
    for (std::size_t w = 0; w < base.size(); ++w) {
      EXPECT_EQ(grad[w], base[w]) << "threads=" << t << " weight " << w;
    }
  }
}

TEST_F(ExecutorEquivalence, ParameterShiftGradientBitIdentical) {
  const qnn::QnnExecutor serial = make(1);
  const auto base = serial.loss_gradient_shift(qnn::LossKind::kMse,
                                               split_.train_features,
                                               split_.train_labels, weights_);
  for (int t : kSweep) {
    const auto grad = make(t).loss_gradient_shift(
        qnn::LossKind::kMse, split_.train_features, split_.train_labels,
        weights_);
    ASSERT_EQ(grad.size(), base.size());
    for (std::size_t w = 0; w < base.size(); ++w) {
      EXPECT_EQ(grad[w], base[w]) << "threads=" << t << " weight " << w;
    }
  }
}

TEST_F(ExecutorEquivalence, PlanOnOffBitIdenticalAcrossThreadCounts) {
  // The compiled-plan path must reproduce the naive per-call walk
  // exactly, for every thread count — the determinism contract extends
  // across the plans-on/off axis, not just parallel/serial.
  const qnn::QnnExecutor naive = make(1, /*use_plan=*/false);
  const double loss = naive.dataset_loss(qnn::LossKind::kMse,
                                         split_.test_features,
                                         split_.test_labels, weights_);
  const auto grad = naive.loss_gradient(qnn::LossKind::kMse,
                                        split_.train_features,
                                        split_.train_labels, weights_);
  const auto shift = naive.loss_gradient_shift(qnn::LossKind::kMse,
                                               split_.train_features,
                                               split_.train_labels, weights_);
  for (int t : {1, 2, 8}) {
    const qnn::QnnExecutor planned = make(t, /*use_plan=*/true);
    EXPECT_EQ(planned.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                                   split_.test_labels, weights_),
              loss)
        << "threads=" << t;
    EXPECT_EQ(planned.loss_gradient(qnn::LossKind::kMse,
                                    split_.train_features,
                                    split_.train_labels, weights_),
              grad)
        << "threads=" << t;
    EXPECT_EQ(planned.loss_gradient_shift(qnn::LossKind::kMse,
                                          split_.train_features,
                                          split_.train_labels, weights_),
              shift)
        << "threads=" << t;
  }
}

TEST(ShiftOracleEquivalence, AnalyticFunctionBitIdenticalAcrossThreads) {
  // sum of sin(w_i): the two-term rule is exact, and the oracle's value
  // must not depend on how the weights are chunked across the pool.
  const qnn::ScalarFn f = [](const std::vector<double>& w) {
    double s = 0.0;
    for (double v : w) s += std::sin(v);
    return s;
  };
  std::vector<double> w(17);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.1 * static_cast<double>(i) - 0.8;
  }
  const std::vector<qnn::ShiftRule> rules(w.size(),
                                          qnn::ShiftRule::kTwoTerm);
  const auto base = qnn::parameter_shift_gradient(f, w, rules, threads(1));
  for (int t : kSweep) {
    const auto grad =
        qnn::parameter_shift_gradient(f, w, rules, threads(t, 1));
    ASSERT_EQ(grad.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(grad[i], base[i]) << "threads=" << t << " weight " << i;
      EXPECT_NEAR(grad[i], std::cos(w[i]), 1e-12);
    }
  }
}

core::TrainResult train_with(int num_threads, core::Strategy strategy,
                             const data::EncodedSplit& split,
                             double offline_probability = 0.0,
                             double drift_sigma = 0.0,
                             int drift_interval = 0,
                             bool use_exec_plans = true) {
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);
  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 4;
  cfg.offline_probability = offline_probability;
  cfg.drift_sigma = drift_sigma;
  cfg.drift_interval = drift_interval;
  cfg.exec = threads(num_threads);
  cfg.use_exec_plans = use_exec_plans;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(4, 2), cfg);
  return trainer.train(strategy, split);
}

class TrainerEquivalence : public ::testing::Test {
 protected:
  TrainerEquivalence() : split_(data::prepare_case({"iris", 2, 2})) {}
  data::EncodedSplit split_;
};

TEST_F(TrainerEquivalence, AllStrategiesBitIdenticalAcrossThreadCounts) {
  for (const core::Strategy s :
       {core::Strategy::kSingleNode, core::Strategy::kAllSharing,
        core::Strategy::kEqc, core::Strategy::kArbiterQ}) {
    const core::TrainResult base = train_with(1, s, split_);
    for (int t : kSweep) {
      const core::TrainResult r = train_with(t, s, split_);
      EXPECT_EQ(r.epoch_test_loss, base.epoch_test_loss)
          << core::strategy_name(s) << " threads=" << t;
      EXPECT_EQ(r.weights, base.weights)
          << core::strategy_name(s) << " threads=" << t;
      EXPECT_EQ(r.gradient_messages, base.gradient_messages)
          << core::strategy_name(s) << " threads=" << t;
    }
  }
}

TEST_F(TrainerEquivalence, ChurnAndDriftStayBitIdentical) {
  // Device churn and calibration drift both consume per-node RNG streams;
  // the parallel schedule must leave every stream untouched.
  const core::TrainResult base = train_with(
      1, core::Strategy::kArbiterQ, split_, 0.3, 0.05, 2);
  for (int t : kSweep) {
    const core::TrainResult r = train_with(
        t, core::Strategy::kArbiterQ, split_, 0.3, 0.05, 2);
    EXPECT_EQ(r.epoch_test_loss, base.epoch_test_loss) << "threads=" << t;
    EXPECT_EQ(r.weights, base.weights) << "threads=" << t;
  }
}

TEST_F(TrainerEquivalence, PlansOnOffBitIdenticalUnderChurnAndDrift) {
  // Drift recalibrates every executor mid-training, which swaps the
  // noise model and forces a plan rebuild; the plans-on run must still
  // track the plans-off run bit-for-bit, at every thread count.
  const core::TrainResult base = train_with(
      1, core::Strategy::kArbiterQ, split_, 0.3, 0.05, 2,
      /*use_exec_plans=*/false);
  for (int t : {1, 2, 8}) {
    const core::TrainResult r = train_with(
        t, core::Strategy::kArbiterQ, split_, 0.3, 0.05, 2,
        /*use_exec_plans=*/true);
    EXPECT_EQ(r.epoch_test_loss, base.epoch_test_loss) << "threads=" << t;
    EXPECT_EQ(r.weights, base.weights) << "threads=" << t;
  }
}

TEST(SampleManyEquivalence, MatchesRepeatedSingleSampleDraws) {
  const sim::Statevector sv = scrambled_state(5, threads(1));
  math::Rng rng_many(99);
  math::Rng rng_single(99);
  const auto many = sv.sample_many(64, rng_many);
  ASSERT_EQ(many.size(), 64U);
  for (std::size_t i = 0; i < many.size(); ++i) {
    EXPECT_EQ(many[i], sv.sample(rng_single)) << "draw " << i;
  }
}

}  // namespace
}  // namespace arbiterq
