#include "arbiterq/core/convergence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::core {
namespace {

std::vector<double> exponential_curve(std::size_t n, double start,
                                      double floor, double rate) {
  std::vector<double> out(n);
  for (std::size_t e = 0; e < n; ++e) {
    out[e] = floor + (start - floor) * std::exp(-rate *
                                                static_cast<double>(e));
  }
  return out;
}

TEST(Convergence, EmptyThrows) {
  EXPECT_THROW(detect_convergence({}), std::invalid_argument);
}

TEST(Convergence, FastCurveConvergesEarly) {
  const auto fast = exponential_curve(100, 0.5, 0.1, 0.5);
  const auto slow = exponential_curve(100, 0.5, 0.1, 0.05);
  const Convergence cf = detect_convergence(fast);
  const Convergence cs = detect_convergence(slow);
  EXPECT_LT(cf.epoch, cs.epoch);
  EXPECT_NEAR(cf.loss, 0.1, 0.01);
}

TEST(Convergence, ConvergedLossIsTailMean) {
  std::vector<double> curve(50, 0.3);
  for (std::size_t i = 45; i < 50; ++i) curve[i] = 0.2;
  const Convergence c = detect_convergence(curve);
  EXPECT_NEAR(c.loss, 0.2, 1e-12);
}

TEST(Convergence, FlatCurveNeverConverges) {
  const std::vector<double> flat(40, 0.4);
  const Convergence c = detect_convergence(flat);
  EXPECT_EQ(c.epoch, 40);
}

TEST(Convergence, DivergingCurveNeverConverges) {
  std::vector<double> rising(60);
  for (std::size_t e = 0; e < 60; ++e) {
    rising[e] = 0.3 + 0.002 * static_cast<double>(e);
  }
  const Convergence c = detect_convergence(rising);
  EXPECT_EQ(c.epoch, 60);
}

TEST(Convergence, BriefTransientIsForgiven) {
  // A short excursion after the plateau is reached must not move the
  // convergence epoch (sustain_fraction tolerates it).
  const auto smooth = exponential_curve(120, 0.5, 0.1, 0.2);
  auto transient = smooth;
  for (std::size_t e = 80; e < 88; ++e) transient[e] += 0.15;
  const Convergence cs = detect_convergence(smooth);
  const Convergence ct = detect_convergence(transient);
  EXPECT_LT(cs.epoch, 60);
  EXPECT_LE(ct.epoch, cs.epoch + 5);
}

TEST(Convergence, SustainedExcursionDelaysConvergence) {
  // A long stretch outside the band (a curve that has not really
  // settled) must push the epoch past the excursion.
  const auto smooth = exponential_curve(120, 0.5, 0.1, 0.2);
  auto unsettled = smooth;
  for (std::size_t e = 40; e < 90; ++e) unsettled[e] += 0.15;
  const Convergence cu = detect_convergence(unsettled);
  EXPECT_GT(cu.epoch, 80);
}

TEST(Convergence, EpochIsOneBasedAndBounded) {
  const auto curve = exponential_curve(30, 1.0, 0.0, 3.0);
  const Convergence c = detect_convergence(curve);
  EXPECT_GE(c.epoch, 1);
  EXPECT_LE(c.epoch, 30);
}

TEST(Convergence, TighterBandConvergesLater) {
  const auto curve = exponential_curve(200, 0.6, 0.1, 0.05);
  ConvergenceConfig loose;
  loose.range_frac = 0.2;
  ConvergenceConfig tight;
  tight.range_frac = 0.02;
  EXPECT_LT(detect_convergence(curve, loose).epoch,
            detect_convergence(curve, tight).epoch);
}

TEST(Convergence, SingleEpochCurve) {
  const Convergence c = detect_convergence({0.5});
  EXPECT_EQ(c.epoch, 1);
  EXPECT_DOUBLE_EQ(c.loss, 0.5);
}

}  // namespace
}  // namespace arbiterq::core
