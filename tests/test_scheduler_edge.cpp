// Scheduler edge cases: empty fleets, single-QPU tori, zero tasks, and
// shot budgets smaller than the torus size — the degenerate corners a
// serving runtime can steer the scheduler into during fleet degradation.

#include "arbiterq/core/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

class SchedulerEdgeFixture : public ::testing::Test {
 protected:
  SchedulerEdgeFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    TrainConfig cfg;
    trainer_ = std::make_unique<DistributedTrainer>(
        model_, device::table3_fleet_subset(3, 2), cfg);
    // Calibration only — these tests exercise scheduling, not training.
    math::Rng rng(7);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w(
          static_cast<std::size_t>(model_.num_weights()));
      math::Rng qrng = rng.split(q);
      for (double& x : w) x = qrng.normal(0.0, 0.3);
      weights_.push_back(std::move(w));
    }
    partition_ = build_torus_partition(trainer_->behavioral_vectors(),
                                       weights_);
    tasks_ = make_tasks(split_.test_features, split_.test_labels);
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
  TorusPartition partition_;
  std::vector<InferenceTask> tasks_;
};

TEST_F(SchedulerEdgeFixture, EmptyFleetIsRejected) {
  const std::vector<qnn::QnnExecutor> no_executors;
  const std::vector<std::vector<double>> no_weights;
  ScheduleConfig cfg;
  EXPECT_THROW(
      ShotOrientedScheduler(no_executors, no_weights, partition_, cfg),
      std::invalid_argument);
  EXPECT_THROW(batch_based_inference(no_executors, no_weights, tasks_, cfg),
               std::invalid_argument);
  EXPECT_THROW(ensemble_weighted_inference(no_executors, no_weights, {},
                                           tasks_, cfg),
               std::invalid_argument);
  EXPECT_THROW(build_torus_partition({}, {}), std::invalid_argument);
  EXPECT_THROW(repartition_alive(trainer_->behavioral_vectors(), weights_,
                                 {}),
               std::invalid_argument);
}

TEST_F(SchedulerEdgeFixture, ZeroTasksAreRejected) {
  ScheduleConfig cfg;
  const ShotOrientedScheduler sched(trainer_->executors(), weights_,
                                    partition_, cfg);
  EXPECT_THROW(sched.run({}), std::invalid_argument);
  EXPECT_THROW(batch_based_inference(trainer_->executors(), weights_, {},
                                     cfg),
               std::invalid_argument);
  EXPECT_THROW(make_tasks({{0.0}}, {}), std::invalid_argument);
}

TEST_F(SchedulerEdgeFixture, SingleQpuToriStillServeEveryTask) {
  // num_tori == fleet size degenerates every torus to one member: the
  // shot split collapses onto that device and nothing is averaged.
  const TorusPartition singles = build_torus_partition(
      trainer_->behavioral_vectors(), weights_, 3);
  for (const auto& torus : singles.tori) EXPECT_EQ(torus.size(), 1U);
  ScheduleConfig cfg;
  cfg.shots_per_task = 16;
  cfg.warmup_shots = 4;
  cfg.trajectories = 2;
  const ShotOrientedScheduler sched(trainer_->executors(), weights_,
                                    singles, cfg);
  const InferenceReport r = sched.run(tasks_);
  EXPECT_EQ(r.per_task_loss.size(), tasks_.size());
  const double total =
      std::accumulate(r.qpu_shots.begin(), r.qpu_shots.end(), 0.0);
  EXPECT_NEAR(total,
              static_cast<double>(tasks_.size()) *
                  (cfg.shots_per_task + cfg.warmup_shots),
              1e-9);
  for (double l : r.per_task_loss) EXPECT_GE(l, 0.0);
}

TEST_F(SchedulerEdgeFixture, ShotBudgetSmallerThanTorus) {
  // One shot against a 3-member torus: the rate-proportional rounding
  // zeroes out some members, the last member absorbs the remainder, and
  // every shot is still accounted for.
  const TorusPartition one_torus = build_torus_partition(
      trainer_->behavioral_vectors(), weights_, 1);
  ASSERT_EQ(one_torus.tori[0].size(), 3U);
  ScheduleConfig cfg;
  cfg.shots_per_task = 1;
  cfg.warmup_shots = 1;
  cfg.trajectories = 2;
  const ShotOrientedScheduler sched(trainer_->executors(), weights_,
                                    one_torus, cfg);
  const InferenceReport r = sched.run(tasks_);
  EXPECT_EQ(r.per_task_loss.size(), tasks_.size());
  const double total =
      std::accumulate(r.qpu_shots.begin(), r.qpu_shots.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(tasks_.size()) * 2.0, 1e-9);
  for (double l : r.per_task_loss) {
    EXPECT_GE(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
}

TEST_F(SchedulerEdgeFixture, RepartitionSingleSurvivor) {
  // The degenerate end of fleet degradation: one QPU left. The partition
  // collapses to a single one-member torus carrying the global id.
  const TorusPartition p = repartition_alive(
      trainer_->behavioral_vectors(), weights_, {2});
  ASSERT_EQ(p.tori.size(), 1U);
  ASSERT_EQ(p.tori[0].size(), 1U);
  EXPECT_EQ(p.tori[0][0], 2);
}

TEST_F(SchedulerEdgeFixture, RepartitionKeepsGlobalIds) {
  const TorusPartition p = repartition_alive(
      trainer_->behavioral_vectors(), weights_, {0, 2});
  std::set<int> members;
  for (const auto& torus : p.tori) {
    members.insert(torus.begin(), torus.end());
  }
  EXPECT_EQ(members, (std::set<int>{0, 2}));
  // An explicit torus request larger than the survivor count clamps.
  const TorusPartition clamped = repartition_alive(
      trainer_->behavioral_vectors(), weights_, {0, 2}, 5);
  EXPECT_EQ(clamped.tori.size(), 2U);
  EXPECT_THROW(repartition_alive(trainer_->behavioral_vectors(), weights_,
                                 {0, 7}),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::core
