// Tests for temporal calibration drift (paper §II-B: "spatial and
// temporal" noise biases).

#include <gtest/gtest.h>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

TEST(ExecutorDrift, RecalibrateChangesPredictions) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  qnn::QnnExecutor ex(m, device::table3_fleet_subset(1, 2)[0]);
  const std::vector<double> features = {0.8, 1.9};
  const std::vector<double> weights(
      static_cast<std::size_t>(m.num_weights()), 0.3);
  const double before = ex.probability(features, weights);
  math::Rng rng(5);
  ex.recalibrate(0.1, rng);
  const double after = ex.probability(features, weights);
  EXPECT_NE(before, after);
  EXPECT_GE(after, 0.0);
  EXPECT_LE(after, 1.0);
}

TEST(ExecutorDrift, SurvivalAndCompilationUntouched) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  qnn::QnnExecutor ex(m, device::table3_fleet_subset(1, 2)[0]);
  const double survival = ex.survival();
  const std::size_t gates = ex.compiled().executable.size();
  math::Rng rng(7);
  ex.recalibrate(0.2, rng);
  EXPECT_DOUBLE_EQ(ex.survival(), survival);
  EXPECT_EQ(ex.compiled().executable.size(), gates);
}

TEST(ExecutorDrift, ZeroValuedSettersKeepModelDisabled) {
  // A model that only ever received zero-valued calibration stays
  // disabled — so a truly ideal simulator takes the fast noiseless
  // paths and has nothing to drift.
  sim::NoiseModel m(2);
  m.set_depolarizing_1q(0, 0.0);
  m.set_depolarizing_2q(0, 1, 0.0);
  m.set_coherent_bias(1, 0.0);
  m.set_readout_error(0, 0.0, 0.0);
  EXPECT_FALSE(m.enabled());
  m.set_coherent_bias(1, 0.01);
  EXPECT_TRUE(m.enabled());
}

TEST(TrainerDrift, DisabledMatchesBaseline) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  TrainConfig base;
  base.epochs = 6;
  TrainConfig no_drift = base;
  no_drift.drift_sigma = 0.5;  // interval 0 keeps it off
  no_drift.drift_interval = 0;
  const DistributedTrainer a(m, device::table3_fleet_subset(3, 2), base);
  const DistributedTrainer b(m, device::table3_fleet_subset(3, 2),
                             no_drift);
  EXPECT_EQ(a.train(Strategy::kArbiterQ, split).epoch_test_loss,
            b.train(Strategy::kArbiterQ, split).epoch_test_loss);
}

TEST(TrainerDrift, DriftChangesTrajectoriesButNotTrainerState) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  TrainConfig cfg;
  cfg.epochs = 12;
  TrainConfig with_drift = cfg;
  with_drift.drift_sigma = 0.08;
  with_drift.drift_interval = 3;
  const DistributedTrainer trainer(m, device::table3_fleet_subset(3, 2),
                                   with_drift);
  const auto r1 = trainer.train(Strategy::kArbiterQ, split);
  // The drifted run differs from a drift-free config...
  const DistributedTrainer baseline(m, device::table3_fleet_subset(3, 2),
                                    cfg);
  EXPECT_NE(r1.epoch_test_loss,
            baseline.train(Strategy::kArbiterQ, split).epoch_test_loss);
  // ...but the trainer itself is unchanged: re-running reproduces it.
  EXPECT_EQ(trainer.train(Strategy::kArbiterQ, split).epoch_test_loss,
            r1.epoch_test_loss);
}

TEST(TrainerDrift, AllStrategiesSurviveDrift) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.drift_sigma = 0.1;
  cfg.drift_interval = 2;
  const DistributedTrainer trainer(m, device::table3_fleet_subset(4, 2),
                                   cfg);
  for (Strategy s : {Strategy::kSingleNode, Strategy::kAllSharing,
                     Strategy::kEqc, Strategy::kArbiterQ}) {
    const auto r = trainer.train(s, split);
    EXPECT_EQ(r.epoch_test_loss.size(), 10U) << strategy_name(s);
  }
}

}  // namespace
}  // namespace arbiterq::core
