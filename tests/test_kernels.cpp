// Randomized kernel-equivalence suite for the CPU-dispatch layer
// (sim/kernels.hpp): every SIMD arm against the scalar reference, over
// the full gate set (including noise-biased angles and fully random
// matrices), adjoint brackets, 1..8-qubit registers, partial dispatch
// ranges, and the sample-batched row kernels at batch sizes
// 1 / 2 / odd / wider than a cache block. Under strict reproducibility
// (the default) the comparison is bitwise; with strict relaxed the FMA
// arm is held to a tight ULP-scale bound.

#include "arbiterq/sim/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {
namespace {

using circuit::GateKind;
using circuit::Mat2;
using circuit::Mat4;

/// Restores the dispatch flags on scope exit so one test's overrides
/// never leak into another (or into a different test binary ordering).
class FlagGuard {
 public:
  FlagGuard()
      : simd_(kernels::simd_runtime_enabled()),
        strict_(kernels::strict_reproducibility()) {}
  ~FlagGuard() {
    kernels::set_simd_runtime_enabled(simd_);
    kernels::set_strict_reproducibility(strict_);
  }

 private:
  bool simd_;
  bool strict_;
};

AmpVector random_state(int nq, math::Rng& rng) {
  AmpVector v(std::size_t{1} << nq);
  for (Complex& a : v) a = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

std::array<double, 3> random_angles(math::Rng& rng) {
  // A coherent calibration bias folded into the polar angle — the shape
  // noisy plans feed the kernels — is just another random angle here.
  return {rng.uniform(-3.0, 3.0) + rng.uniform(-0.1, 0.1),
          rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
}

std::vector<Mat2> all_mat2(math::Rng& rng) {
  std::vector<Mat2> ms;
  for (GateKind k :
       {GateKind::kI, GateKind::kX, GateKind::kY, GateKind::kZ, GateKind::kH,
        GateKind::kS, GateKind::kSdg, GateKind::kSX, GateKind::kRX,
        GateKind::kRY, GateKind::kRZ, GateKind::kU3}) {
    ms.push_back(circuit::gate_matrix_1q(k, random_angles(rng)));
  }
  Mat2 r;
  for (Complex& c : r) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  ms.push_back(r);  // non-unitary: the kernels must not assume unitarity
  return ms;
}

std::vector<Mat4> all_mat4(math::Rng& rng) {
  std::vector<Mat4> ms;
  for (GateKind k : {GateKind::kCX, GateKind::kCZ, GateKind::kCRX,
                     GateKind::kCRY, GateKind::kCRZ, GateKind::kSwap}) {
    ms.push_back(circuit::gate_matrix_2q(k, random_angles(rng)));
  }
  Mat4 r;
  for (Complex& c : r) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  ms.push_back(r);
  return ms;
}

void expect_bitwise(const AmpVector& got, const AmpVector& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "amp " << i;
  }
}

void expect_ulp_close(const AmpVector& got, const AmpVector& want,
                      double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, tol) << "amp " << i;
  }
}

/// Applies `apply` to a copy of `init` under (a) forced scalar, (b) the
/// active dispatch arm, and checks bitwise equality when `strict`.
template <typename Apply>
void compare_arms(const AmpVector& init, bool strict, double tol,
                  const Apply& apply) {
  AmpVector ref = init;
  kernels::set_simd_runtime_enabled(false);
  apply(ref.data());
  AmpVector got = init;
  kernels::set_simd_runtime_enabled(true);
  apply(got.data());
  if (strict) {
    expect_bitwise(got, ref);
  } else {
    expect_ulp_close(got, ref, tol);
  }
}

TEST(KernelDispatch, KillSwitchForcesScalar) {
  FlagGuard guard;
  kernels::set_simd_runtime_enabled(false);
  EXPECT_EQ(kernels::active_arch(), kernels::KernelArch::kScalar);
  kernels::set_simd_runtime_enabled(true);
  if (kernels::simd_compiled() && kernels::simd_supported()) {
    EXPECT_NE(kernels::active_arch(), kernels::KernelArch::kScalar);
  } else {
    EXPECT_EQ(kernels::active_arch(), kernels::KernelArch::kScalar);
  }
}

TEST(KernelDispatch, StrictModeNeverSelectsFma) {
  FlagGuard guard;
  kernels::set_simd_runtime_enabled(true);
  kernels::set_strict_reproducibility(true);
  EXPECT_NE(kernels::active_arch(), kernels::KernelArch::kAvx2Fma);
  kernels::set_strict_reproducibility(false);
  if (kernels::simd_compiled() && kernels::simd_supported()) {
    EXPECT_EQ(kernels::active_arch(), kernels::KernelArch::kAvx2Fma);
  }
}

TEST(KernelDispatch, ArchNamesAreStable) {
  EXPECT_STREQ(kernels::arch_name(kernels::KernelArch::kScalar), "scalar");
}

class KernelEquivalence : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    kernels::set_simd_runtime_enabled(true);
    kernels::set_strict_reproducibility(GetParam());
  }
  bool strict() const { return GetParam(); }
  /// Tolerance for the FMA arm: a handful of ULPs per arithmetic step
  /// on O(1) amplitudes.
  static constexpr double kTol = 1e-13;

  FlagGuard guard_;
};

TEST_P(KernelEquivalence, Mat2AllQubitsAndKinds) {
  math::Rng rng(101);
  for (int nq = 1; nq <= 8; ++nq) {
    const AmpVector init = random_state(nq, rng);
    const std::size_t groups = init.size() >> 1;
    for (int q = 0; q < nq; ++q) {
      for (const Mat2& m : all_mat2(rng)) {
        compare_arms(init, strict(), kTol, [&](Complex* amps) {
          kernels::apply_mat2_range(amps, m, q, 0, groups);
        });
      }
    }
  }
}

TEST_P(KernelEquivalence, Diag2AllBits) {
  math::Rng rng(102);
  for (int nq = 1; nq <= 8; ++nq) {
    const AmpVector init = random_state(nq, rng);
    for (int q = 0; q < nq; ++q) {
      const Complex d0{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      const Complex d1{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      compare_arms(init, strict(), kTol, [&](Complex* amps) {
        kernels::apply_diag2_range(amps, d0, d1, std::size_t{1} << q, 0,
                                   init.size());
      });
    }
  }
}

TEST_P(KernelEquivalence, Mat4AllQubitPairsAndKinds) {
  math::Rng rng(103);
  for (int nq = 2; nq <= 8; ++nq) {
    const AmpVector init = random_state(nq, rng);
    const std::size_t groups = init.size() >> 2;
    for (int qb = 0; qb < nq; ++qb) {
      for (int qa = 0; qa < nq; ++qa) {
        if (qa == qb) continue;
        for (const Mat4& m : all_mat4(rng)) {
          compare_arms(init, strict(), kTol, [&](Complex* amps) {
            kernels::apply_mat4_range(amps, m, qb, qa, 0, groups);
          });
        }
      }
    }
  }
}

TEST_P(KernelEquivalence, Diag4AllBitPairs) {
  math::Rng rng(104);
  for (int nq = 2; nq <= 8; ++nq) {
    const AmpVector init = random_state(nq, rng);
    for (int qb = 0; qb < nq; ++qb) {
      for (int qa = 0; qa < nq; ++qa) {
        if (qa == qb) continue;
        Complex d[4];
        for (Complex& c : d) {
          c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        }
        compare_arms(init, strict(), kTol, [&](Complex* amps) {
          kernels::apply_diag4_range(amps, d, std::size_t{1} << qb,
                                     std::size_t{1} << qa, 0, init.size());
        });
      }
    }
  }
}

TEST_P(KernelEquivalence, PartialRangesExerciseHeadsAndTails) {
  // parallel_for hands the kernels arbitrary [lo, hi) chunks; the SIMD
  // heads/tails must land on exactly the same amplitudes as scalar.
  math::Rng rng(105);
  const int nq = 7;
  const AmpVector init = random_state(nq, rng);
  for (int rep = 0; rep < 24; ++rep) {
    const int q = static_cast<int>(rng.uniform_int(nq));
    const Mat2 m = circuit::gate_matrix_1q(GateKind::kU3, random_angles(rng));
    const std::size_t groups = init.size() >> 1;
    std::size_t lo = rng.uniform_int(groups);
    std::size_t hi = rng.uniform_int(groups + 1);
    if (lo > hi) std::swap(lo, hi);
    compare_arms(init, strict(), kTol, [&](Complex* amps) {
      kernels::apply_mat2_range(amps, m, q, lo, hi);
    });
    const std::size_t dlo = rng.uniform_int(init.size());
    compare_arms(init, strict(), kTol, [&](Complex* amps) {
      kernels::apply_diag2_range(amps, Complex{0.6, -0.8}, Complex{0.0, 1.0},
                                 std::size_t{1} << q, dlo, init.size());
    });
  }
}

TEST_P(KernelEquivalence, BracketsMatchScalarReference) {
  math::Rng rng(106);
  // The FMA bracket reassociates an n-term reduction into vector lanes;
  // the bound scales with the register, hence the looser tolerance.
  const double tol = 1e-10;
  for (int nq = 1; nq <= 8; ++nq) {
    const AmpVector lam = random_state(nq, rng);
    const AmpVector psi = random_state(nq, rng);
    for (int q = 0; q < nq; ++q) {
      for (const Mat2& m : all_mat2(rng)) {
        kernels::set_simd_runtime_enabled(false);
        const Complex ref =
            kernels::bracket_1q(lam.data(), psi.data(), psi.size(), m, q);
        kernels::set_simd_runtime_enabled(true);
        const Complex got =
            kernels::bracket_1q(lam.data(), psi.data(), psi.size(), m, q);
        if (strict()) {
          EXPECT_EQ(got, ref);
        } else {
          EXPECT_NEAR(std::abs(got - ref), 0.0, tol);
        }
      }
    }
    if (nq < 2) continue;
    for (int qb = 0; qb < nq; ++qb) {
      for (int qa = 0; qa < nq; ++qa) {
        if (qa == qb) continue;
        for (const Mat4& m : all_mat4(rng)) {
          kernels::set_simd_runtime_enabled(false);
          const Complex ref = kernels::bracket_2q(lam.data(), psi.data(),
                                                  psi.size(), m, qb, qa);
          kernels::set_simd_runtime_enabled(true);
          const Complex got = kernels::bracket_2q(lam.data(), psi.data(),
                                                  psi.size(), m, qb, qa);
          if (strict()) {
            EXPECT_EQ(got, ref);
          } else {
            EXPECT_NEAR(std::abs(got - ref), 0.0, tol);
          }
        }
      }
    }
  }
}

TEST_P(KernelEquivalence, BatchedRowKernelsMatchPerColumnScalar) {
  math::Rng rng(107);
  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{5}, std::size_t{40}}) {
    // Four rows of `count` columns — one 2q butterfly group, batched.
    std::vector<AmpVector> rows(4);
    for (auto& r : rows) {
      r.resize(count);
      for (Complex& a : r) {
        a = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      }
    }
    const Mat2 m2 = circuit::gate_matrix_1q(GateKind::kU3, random_angles(rng));
    const Mat4 m4 =
        circuit::gate_matrix_2q(GateKind::kCRX, random_angles(rng));
    std::vector<Mat2> m2s;
    std::vector<Mat4> m4s;
    std::vector<Complex> ds;
    for (std::size_t b = 0; b < count; ++b) {
      m2s.push_back(circuit::gate_matrix_1q(
          b % 3 == 0 ? GateKind::kRZ : GateKind::kU3, random_angles(rng)));
      m4s.push_back(circuit::gate_matrix_2q(GateKind::kCRZ,
                                            random_angles(rng)));
      ds.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    }

    // Scalar per-column reference: one-group unbatched butterflies.
    auto ref_rows = rows;
    kernels::set_simd_runtime_enabled(false);
    for (std::size_t b = 0; b < count; ++b) {
      Complex pair[2] = {ref_rows[0][b], ref_rows[1][b]};
      kernels::apply_mat2_range(pair, m2, 0, 0, 1);
      ref_rows[0][b] = pair[0];
      ref_rows[1][b] = pair[1];
      Complex quad[4] = {ref_rows[0][b], ref_rows[1][b], ref_rows[2][b],
                         ref_rows[3][b]};
      kernels::apply_mat4_range(quad, m4, 1, 0, 0, 1);
      for (int i = 0; i < 4; ++i) ref_rows[static_cast<std::size_t>(i)][b] =
          quad[i];
      Complex pair2[2] = {ref_rows[2][b], ref_rows[3][b]};
      kernels::apply_mat2_range(pair2, m2s[b], 0, 0, 1);
      ref_rows[2][b] = pair2[0];
      ref_rows[3][b] = pair2[1];
      Complex quad2[4] = {ref_rows[0][b], ref_rows[1][b], ref_rows[2][b],
                          ref_rows[3][b]};
      kernels::apply_mat4_range(quad2, m4s[b], 1, 0, 0, 1);
      for (int i = 0; i < 4; ++i) ref_rows[static_cast<std::size_t>(i)][b] =
          quad2[i];
      ref_rows[1][b] *= ds[b];
      ref_rows[0][b] *= ds[0];
    }

    auto got_rows = rows;
    kernels::set_simd_runtime_enabled(true);
    kernels::batched_mat2(got_rows[0].data(), got_rows[1].data(), m2, count);
    kernels::batched_mat4(got_rows[0].data(), got_rows[1].data(),
                          got_rows[2].data(), got_rows[3].data(), m4, count);
    kernels::batched_mat2_each(got_rows[2].data(), got_rows[3].data(),
                               m2s.data(), count);
    kernels::batched_mat4_each(got_rows[0].data(), got_rows[1].data(),
                               got_rows[2].data(), got_rows[3].data(),
                               m4s.data(), count);
    kernels::batched_scale_each(got_rows[1].data(), ds.data(), count);
    kernels::batched_scale(got_rows[0].data(), ds[0], count);

    for (int r = 0; r < 4; ++r) {
      const auto& ref = ref_rows[static_cast<std::size_t>(r)];
      const auto& got = got_rows[static_cast<std::size_t>(r)];
      for (std::size_t b = 0; b < count; ++b) {
        if (strict()) {
          EXPECT_EQ(got[b], ref[b]) << "row " << r << " col " << b;
        } else {
          EXPECT_NEAR(std::abs(got[b] - ref[b]), 0.0, kTol)
              << "row " << r << " col " << b;
        }
      }
    }
  }
}

TEST_P(KernelEquivalence, FullCircuitEvolutionViaStatevector) {
  // End-to-end through Statevector's own dispatch (diag detection,
  // chunking): a deep random evolution stays equivalent across arms.
  math::Rng rng(108);
  for (int nq = 2; nq <= 6; nq += 2) {
    Statevector ref(nq);
    Statevector got(nq);
    std::vector<std::pair<Mat2, int>> ops1;
    std::vector<std::pair<Mat4, std::pair<int, int>>> ops2;
    math::Rng mrng(200 + static_cast<std::uint64_t>(nq));
    for (int i = 0; i < 30; ++i) {
      ops1.emplace_back(all_mat2(mrng)[mrng.uniform_int(13)],
                        static_cast<int>(mrng.uniform_int(nq)));
      int qb = static_cast<int>(mrng.uniform_int(nq));
      int qa = qb;
      while (qa == qb) qa = static_cast<int>(mrng.uniform_int(nq));
      ops2.emplace_back(all_mat4(mrng)[mrng.uniform_int(7)],
                        std::make_pair(qb, qa));
    }
    kernels::set_simd_runtime_enabled(false);
    for (int i = 0; i < 30; ++i) {
      ref.apply_mat2(ops1[static_cast<std::size_t>(i)].first,
                     ops1[static_cast<std::size_t>(i)].second);
      ref.apply_mat4(ops2[static_cast<std::size_t>(i)].first,
                     ops2[static_cast<std::size_t>(i)].second.first,
                     ops2[static_cast<std::size_t>(i)].second.second);
    }
    kernels::set_simd_runtime_enabled(true);
    for (int i = 0; i < 30; ++i) {
      got.apply_mat2(ops1[static_cast<std::size_t>(i)].first,
                     ops1[static_cast<std::size_t>(i)].second);
      got.apply_mat4(ops2[static_cast<std::size_t>(i)].first,
                     ops2[static_cast<std::size_t>(i)].second.first,
                     ops2[static_cast<std::size_t>(i)].second.second);
    }
    for (std::size_t i = 0; i < ref.dim(); ++i) {
      if (strict()) {
        EXPECT_EQ(got.amplitudes()[i], ref.amplitudes()[i]) << "amp " << i;
      } else {
        EXPECT_NEAR(std::abs(got.amplitudes()[i] - ref.amplitudes()[i]), 0.0,
                    1e-10)
            << "amp " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StrictAndFast, KernelEquivalence,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "strict" : "fast";
                         });

}  // namespace
}  // namespace arbiterq::sim
