// Open-loop traffic generator tests: seeded determinism, time-ordered
// merged arrivals, Poisson rate sanity, the diurnal/bursty/adversarial
// shapes, per-tenant stream independence, the mix/shape string parsers,
// and an end-to-end drive of the serving runtime where the generated
// arrival stamps make quota decisions replay bit-identically.

#include "arbiterq/serve/trafficgen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"

namespace arbiterq::serve {
namespace {

TenantProfile simple_tenant(const std::string& name, double rate) {
  TenantProfile t;
  t.name = name;
  t.rate_per_s = rate;
  return t;
}

TrafficConfig steady_config(double rate, double duration_s,
                            std::uint64_t seed = 7) {
  TrafficConfig cfg;
  cfg.tenants = {simple_tenant("t0", rate)};
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  return cfg;
}

TEST(TrafficGenerator, ValidatesConfig) {
  EXPECT_THROW(TrafficGenerator(TrafficConfig{}), std::invalid_argument);
  TrafficConfig bad = steady_config(0.0, 1.0);
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = steady_config(10.0, -1.0);
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = steady_config(10.0, 1.0);
  bad.diurnal_amplitude = 1.5;
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = steady_config(10.0, 1.0);
  bad.burst_duty = 0.0;
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
}

TEST(TrafficGenerator, SameSeedReproducesResetRewinds) {
  TrafficConfig cfg = steady_config(500.0, 1.0);
  cfg.tenants.push_back(simple_tenant("t1", 200.0));
  TrafficGenerator gen(cfg);
  const auto a = gen.generate_all();
  ASSERT_FALSE(a.empty());
  gen.reset();
  const auto b = gen.generate_all();
  TrafficGenerator gen2(cfg);
  const auto c = gen2.generate_all();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].tenant, c[i].tenant);
    EXPECT_EQ(a[i].spec.features, c[i].spec.features);
    EXPECT_EQ(a[i].spec.label, c[i].spec.label);
  }
  cfg.seed = 8;
  const auto d = TrafficGenerator(cfg).generate_all();
  bool differs = d.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival_us != d[i].arrival_us;
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficGenerator, ArrivalsAscendWithinHorizonAndCarrySpecs) {
  TrafficConfig cfg = steady_config(300.0, 2.0);
  cfg.tenants.push_back(simple_tenant("t1", 300.0));
  cfg.tenants[1].slo_class = monitor::SloClass::kLatencyBound;
  cfg.tenants[1].shots = 96;
  cfg.tenants[1].deadline_us = 4'000.0;
  cfg.feature_dim = 3;
  const auto jobs = TrafficGenerator(cfg).generate_all();
  ASSERT_FALSE(jobs.empty());
  double prev = 0.0;
  for (const GeneratedJob& j : jobs) {
    EXPECT_GE(j.arrival_us, prev);
    prev = j.arrival_us;
    EXPECT_LE(j.arrival_us, 2e6);
    EXPECT_EQ(j.spec.arrival_us, j.arrival_us);
    ASSERT_EQ(j.spec.features.size(), 3U);
    for (double f : j.spec.features) {
      EXPECT_GE(f, 0.0);
      EXPECT_LT(f, 3.1416);
    }
    if (j.tenant == 1) {
      EXPECT_EQ(j.spec.tenant, "t1");
      EXPECT_EQ(j.spec.slo_class, monitor::SloClass::kLatencyBound);
      EXPECT_EQ(j.spec.shots, 96);
      EXPECT_EQ(j.spec.deadline_us, 4'000.0);
    }
  }
}

TEST(TrafficGenerator, SteadyRateMatchesPoissonExpectation) {
  const auto jobs = TrafficGenerator(steady_config(1000.0, 2.0)).generate_all();
  // 2000 expected arrivals, sigma ~45: a 5-sigma band is deterministic
  // for the fixed seed and still meaningful.
  EXPECT_GT(jobs.size(), 1775U);
  EXPECT_LT(jobs.size(), 2225U);
}

TEST(TrafficGenerator, DiurnalConcentratesInThePeakHalf) {
  TrafficConfig cfg = steady_config(800.0, 1.0);
  cfg.pattern = TrafficPattern::kDiurnal;
  cfg.diurnal_period_s = 1.0;  // sin > 0 on the first half of the run
  cfg.diurnal_amplitude = 0.9;
  std::size_t first_half = 0, second_half = 0;
  for (const GeneratedJob& j : TrafficGenerator(cfg).generate_all()) {
    (j.arrival_us < 5e5 ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(TrafficGenerator, BurstyConcentratesInTheDutyWindow) {
  TrafficConfig cfg = steady_config(600.0, 1.0);
  cfg.pattern = TrafficPattern::kBursty;
  cfg.burst_cycle_s = 0.2;
  cfg.burst_duty = 0.25;
  cfg.burst_multiplier = 4.0;
  cfg.burst_idle_multiplier = 0.05;
  std::size_t hot = 0, idle = 0;
  for (const GeneratedJob& j : TrafficGenerator(cfg).generate_all()) {
    const double phase = std::fmod(j.arrival_us * 1e-6, 0.2);
    (phase < 0.05 ? hot : idle)++;
  }
  // Hot windows cover 25% of the time at 80x the idle rate.
  EXPECT_GT(hot, 10 * idle);
}

TEST(TrafficGenerator, AdversarialFloodOnlyInsideItsWindow) {
  TrafficConfig cfg = steady_config(400.0, 1.0);
  cfg.pattern = TrafficPattern::kAdversarial;
  cfg.tenants[0].flood_multiplier = 5.0;
  cfg.tenants[0].flood_from_s = 0.4;
  cfg.tenants[0].flood_until_s = 0.6;
  std::size_t inside = 0, outside = 0;
  for (const GeneratedJob& j : TrafficGenerator(cfg).generate_all()) {
    const double t = j.arrival_us * 1e-6;
    (t >= 0.4 && t < 0.6 ? inside : outside)++;
  }
  // Window is 20% of the run at 5x rate: roughly equal mass in and out
  // of it; without the flood the window would hold ~20%.
  EXPECT_GT(inside, outside / 2);
  EXPECT_GT(outside, 0U);
}

TEST(TrafficGenerator, TenantStreamsAreMergeOrderIndependent) {
  TrafficConfig both = steady_config(500.0, 1.0);
  both.tenants.push_back(simple_tenant("t1", 700.0));
  TrafficConfig solo = both;
  solo.tenants.pop_back();
  std::vector<double> with_peer, alone;
  for (const GeneratedJob& j : TrafficGenerator(both).generate_all()) {
    if (j.tenant == 0) with_peer.push_back(j.arrival_us);
  }
  for (const GeneratedJob& j : TrafficGenerator(solo).generate_all()) {
    alone.push_back(j.arrival_us);
  }
  // Dropping tenant 1 must not move a single one of tenant 0's stamps:
  // each tenant draws from its own split stream.
  EXPECT_EQ(with_peer, alone);
}

TEST(TrafficPattern, NamesRoundTripAndParseRejectsUnknown) {
  for (TrafficPattern p :
       {TrafficPattern::kSteady, TrafficPattern::kDiurnal,
        TrafficPattern::kBursty, TrafficPattern::kAdversarial}) {
    EXPECT_EQ(traffic_pattern_from_string(traffic_pattern_name(p)), p);
  }
  EXPECT_THROW(traffic_pattern_from_string("lunar"), std::invalid_argument);
}

TEST(TrafficParsers, TenantProfilesParseFullSpecs) {
  const auto tenants = parse_tenant_profiles(
      "int0,class=latency_bound,rate=20,weight=8,shots=128,deadline_us=5000,"
      "max_in_flight=4,admit_rate=25,admit_burst=8;"
      "flood,class=best,rate=300,flood=5,flood_from=0.2,flood_until=0.8");
  ASSERT_EQ(tenants.size(), 2U);
  EXPECT_EQ(tenants[0].name, "int0");
  EXPECT_EQ(tenants[0].slo_class, monitor::SloClass::kLatencyBound);
  EXPECT_EQ(tenants[0].rate_per_s, 20.0);
  EXPECT_EQ(tenants[0].weight, 8.0);
  EXPECT_EQ(tenants[0].shots, 128);
  EXPECT_EQ(tenants[0].deadline_us, 5000.0);
  EXPECT_EQ(tenants[0].max_in_flight, 4U);
  EXPECT_EQ(tenants[0].admit_rate_per_s, 25.0);
  EXPECT_EQ(tenants[0].admit_burst, 8.0);
  EXPECT_EQ(tenants[1].name, "flood");
  EXPECT_EQ(tenants[1].slo_class, monitor::SloClass::kBestEffort);
  EXPECT_EQ(tenants[1].flood_multiplier, 5.0);
  EXPECT_EQ(tenants[1].flood_from_s, 0.2);
  EXPECT_EQ(tenants[1].flood_until_s, 0.8);
}

TEST(TrafficParsers, RejectMalformedTenantSpecs) {
  EXPECT_THROW(parse_tenant_profiles(""), std::invalid_argument);
  EXPECT_THROW(parse_tenant_profiles("a;a"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_profiles("a,rate=x"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_profiles("a,bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_profiles("a,class=gold"), std::invalid_argument);
  EXPECT_THROW(parse_tenant_profiles("rate=5"), std::invalid_argument);
}

TEST(TrafficParsers, TrafficSpecParsesPatternAndKeys) {
  const TrafficConfig cfg = parse_traffic_spec(
      "diurnal,duration=2,seed=9,dim=6,period=0.5,amplitude=0.7");
  EXPECT_EQ(cfg.pattern, TrafficPattern::kDiurnal);
  EXPECT_EQ(cfg.duration_s, 2.0);
  EXPECT_EQ(cfg.seed, 9U);
  EXPECT_EQ(cfg.feature_dim, 6U);
  EXPECT_EQ(cfg.diurnal_period_s, 0.5);
  EXPECT_EQ(cfg.diurnal_amplitude, 0.7);
  EXPECT_THROW(parse_traffic_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_traffic_spec("steady,warp=9"), std::invalid_argument);
}

TEST(TrafficParsers, AdversarialMixScalesToFleetCapacity) {
  const TrafficConfig cfg = adversarial_mix(3, 2.0, 100.0);
  ASSERT_EQ(cfg.tenants.size(), 7U);
  EXPECT_EQ(cfg.pattern, TrafficPattern::kAdversarial);
  EXPECT_EQ(cfg.tenants[0].name, "flood");
  EXPECT_EQ(cfg.tenants[0].rate_per_s, 60.0);
  EXPECT_EQ(cfg.tenants[0].flood_multiplier, 5.0);
  EXPECT_EQ(cfg.tenants[1].rate_per_s, 50.0);
  EXPECT_EQ(cfg.tenants[3].name, "int0");
  EXPECT_EQ(cfg.tenants[3].rate_per_s, 2.0);
  EXPECT_EQ(cfg.tenants[3].slo_class, monitor::SloClass::kLatencyBound);
  EXPECT_THROW(adversarial_mix(3, 0.0, 100.0), std::invalid_argument);
}

TEST(TrafficGenerator, TenantSpecsProjectQuotaProfiles) {
  TrafficConfig cfg = steady_config(10.0, 1.0);
  cfg.tenants[0].weight = 4.0;
  cfg.tenants[0].max_in_flight = 3;
  cfg.tenants[0].admit_rate_per_s = 2.5;
  cfg.tenants[0].admit_burst = 6.0;
  const auto specs = TrafficGenerator(cfg).tenant_specs();
  ASSERT_EQ(specs.size(), 1U);
  EXPECT_EQ(specs[0].name, "t0");
  EXPECT_EQ(specs[0].weight, 4.0);
  EXPECT_EQ(specs[0].max_in_flight, 3U);
  EXPECT_EQ(specs[0].admit_rate_per_s, 2.5);
  EXPECT_EQ(specs[0].admit_burst, 6.0);
}

// ---------------------------------------------------------- end to end

TEST(TrafficGeneratorRuntime, OpenLoopDriveReplaysBitIdentically) {
  qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);
  core::TrainConfig tcfg;
  core::DistributedTrainer trainer(model, device::table3_fleet_subset(6, 2),
                                   tcfg);
  math::Rng rng(42);
  std::vector<std::vector<double>> weights;
  std::vector<double> base(static_cast<std::size_t>(model.num_weights()));
  for (double& w : base) w = rng.normal(0.0, 0.3);
  for (std::size_t q = 0; q < trainer.fleet_size(); ++q) {
    std::vector<double> w = base;
    math::Rng qrng = rng.split(q);
    for (double& x : w) x += qrng.normal(0.0, 0.05);
    weights.push_back(std::move(w));
  }

  TrafficConfig traffic;
  traffic.tenants = {simple_tenant("fast", 400.0),
                     simple_tenant("greedy", 400.0)};
  traffic.tenants[0].slo_class = monitor::SloClass::kLatencyBound;
  traffic.tenants[1].max_in_flight = 2;  // quota rejects must fire
  traffic.duration_s = 0.05;
  traffic.seed = 13;
  TrafficGenerator gen(traffic);
  const auto arrivals = gen.generate_all();
  ASSERT_FALSE(arrivals.empty());

  auto run = [&](int shards) {
    ServeConfig cfg;
    cfg.shots_per_job = 40;
    cfg.queue_capacity = 4096;
    cfg.backoff_base_us = 0.0;
    cfg.num_shards = shards;
    cfg.synthetic_execution = true;
    cfg.arbiter = ArbiterKind::kWeightedCredit;
    cfg.tenants = gen.tenant_specs();
    ServingRuntime runtime(trainer.executors(), weights,
                           trainer.behavioral_vectors(), cfg);
    for (const GeneratedJob& j : arrivals) runtime.submit(j.spec);
    runtime.drain();
    return runtime.results();
  };

  const auto one = run(1);
  const auto two = run(2);
  const auto rerun = run(2);
  ASSERT_EQ(one.size(), arrivals.size());
  std::size_t quota_rejects = 0;
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].status, two[i].status) << "job " << i;
    EXPECT_EQ(one[i].probability, two[i].probability) << "job " << i;
    EXPECT_EQ(one[i].admit_virtual_us, two[i].admit_virtual_us)
        << "job " << i;
    EXPECT_EQ(two[i].status, rerun[i].status) << "job " << i;
    EXPECT_EQ(two[i].virtual_latency_us, rerun[i].virtual_latency_us)
        << "job " << i;
    if (one[i].status == JobStatus::kRejected) ++quota_rejects;
  }
  EXPECT_GT(quota_rejects, 0U);
}

}  // namespace
}  // namespace arbiterq::serve
