#include "arbiterq/data/pipeline.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace arbiterq::data {
namespace {

TEST(Pipeline, PrepareShapes) {
  const EncodedSplit s = prepare(wine_like(), 4);
  EXPECT_EQ(s.num_qubits, 4);
  EXPECT_EQ(s.train_features.size(), 91U);  // 80% of 114
  EXPECT_EQ(s.test_features.size(), 23U);
  EXPECT_EQ(s.train_labels.size(), s.train_features.size());
  for (const auto& f : s.train_features) EXPECT_EQ(f.size(), 4U);
  for (const auto& f : s.test_features) EXPECT_EQ(f.size(), 4U);
}

TEST(Pipeline, FeaturesAreAngles) {
  const EncodedSplit s = prepare(iris_like(), 2);
  for (const auto& feats : {s.train_features, s.test_features}) {
    for (const auto& f : feats) {
      for (double v : f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, std::numbers::pi + 1e-12);
      }
    }
  }
}

TEST(Pipeline, DeterministicUnderSeed) {
  const EncodedSplit a = prepare(iris_like(), 2, 0.8, 99);
  const EncodedSplit b = prepare(iris_like(), 2, 0.8, 99);
  EXPECT_EQ(a.train_features, b.train_features);
  const EncodedSplit c = prepare(iris_like(), 2, 0.8, 100);
  EXPECT_NE(a.train_features, c.train_features);
}

TEST(Pipeline, Validation) {
  EXPECT_THROW(prepare(iris_like(), 0), std::invalid_argument);
  EXPECT_THROW(prepare(iris_like(), 5), std::invalid_argument);  // 4 feats
}

TEST(Pipeline, Table2CasesMatchPaper) {
  const auto cases = table2_cases();
  ASSERT_EQ(cases.size(), 4U);
  EXPECT_EQ(cases[0].dataset, "iris");
  EXPECT_EQ(cases[0].num_qubits, 2);
  EXPECT_EQ(cases[3].dataset, "hmdb51");
  EXPECT_EQ(cases[3].num_qubits, 10);
  EXPECT_EQ(cases[3].num_layers, 10);
  // Weight counts: 2 * qubits * layers must equal Table II.
  const int expected[] = {8, 16, 24, 200};
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(2 * cases[i].num_qubits * cases[i].num_layers, expected[i]);
  }
}

TEST(Pipeline, PrepareCaseWorksForEveryRow) {
  for (const auto& bc : table2_cases()) {
    const EncodedSplit s = prepare_case(bc);
    EXPECT_EQ(s.num_qubits, bc.num_qubits) << bc.dataset;
    EXPECT_GT(s.train_features.size(), 50U) << bc.dataset;
    EXPECT_GT(s.test_features.size(), 10U) << bc.dataset;
  }
  EXPECT_THROW(prepare_case({"unknown", 2, 2}), std::invalid_argument);
}

TEST(Pipeline, ClassesRemainSeparableAfterCompression) {
  // PCA to 2 dims of the iris-like set keeps the clusters apart: features
  // of class 0 and class 1 should have distinct means on some dimension.
  const EncodedSplit s = prepare(iris_like(), 2);
  double m0 = 0.0;
  double m1 = 0.0;
  double n0 = 0.0;
  double n1 = 0.0;
  for (std::size_t i = 0; i < s.train_features.size(); ++i) {
    if (s.train_labels[i] == 0) {
      m0 += s.train_features[i][0];
      n0 += 1.0;
    } else {
      m1 += s.train_features[i][0];
      n1 += 1.0;
    }
  }
  EXPECT_GT(std::abs(m0 / n0 - m1 / n1), 0.5);
}

}  // namespace
}  // namespace arbiterq::data
