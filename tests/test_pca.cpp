#include "arbiterq/math/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"
#include "arbiterq/math/stats.hpp"

namespace arbiterq::math {
namespace {

std::vector<std::vector<double>> anisotropic_cloud(std::size_t n, Rng& rng) {
  // Dominant variance along (1,1,0)/sqrt(2), small noise elsewhere.
  std::vector<std::vector<double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 3.0);
    pts.push_back({t + rng.normal(0.0, 0.1), t + rng.normal(0.0, 0.1),
                   rng.normal(0.0, 0.1)});
  }
  return pts;
}

TEST(Pca, DimensionsAndErrors) {
  Rng rng(3);
  const auto pts = anisotropic_cloud(50, rng);
  const Pca pca(pts, 2);
  EXPECT_EQ(pca.input_dim(), 3U);
  EXPECT_EQ(pca.output_dim(), 2U);
  EXPECT_THROW(Pca(pts, 0), std::invalid_argument);
  EXPECT_THROW(Pca(pts, 4), std::invalid_argument);
  EXPECT_THROW(Pca({}, 1), std::invalid_argument);
  EXPECT_THROW(pca.transform({1.0}), std::invalid_argument);
}

TEST(Pca, FirstComponentCapturesDominantDirection) {
  Rng rng(9);
  const auto pts = anisotropic_cloud(200, rng);
  const Pca pca(pts, 1);
  // Projections onto PC1 must carry almost all the variance.
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
}

TEST(Pca, TransformIsCentered) {
  Rng rng(13);
  const auto pts = anisotropic_cloud(100, rng);
  const Pca pca(pts, 2);
  const auto projected = pca.transform_all(pts);
  // Projection of the (centered) cloud has ~zero mean.
  std::vector<double> c0;
  std::vector<double> c1;
  for (const auto& p : projected) {
    c0.push_back(p[0]);
    c1.push_back(p[1]);
  }
  EXPECT_NEAR(mean(c0), 0.0, 1e-9);
  EXPECT_NEAR(mean(c1), 0.0, 1e-9);
}

TEST(Pca, PreservesPairwiseStructureWhenFullRank) {
  Rng rng(21);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  const Pca pca(pts, 2);  // full rank: a rigid rotation
  const auto proj = pca.transform_all(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_NEAR(l2_distance(pts[i], pts[j]), l2_distance(proj[i], proj[j]),
                  1e-9);
    }
  }
}

TEST(Pca, ExplainedVarianceMonotoneInComponents) {
  Rng rng(27);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 80; ++i) {
    pts.push_back({rng.normal(0.0, 3.0), rng.normal(0.0, 2.0),
                   rng.normal(0.0, 1.0), rng.normal(0.0, 0.5)});
  }
  double prev = 0.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    const Pca pca(pts, k);
    EXPECT_GE(pca.explained_variance_ratio(), prev - 1e-12);
    prev = pca.explained_variance_ratio();
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(Pca, DeterministicForSameInput) {
  Rng rng(31);
  const auto pts = anisotropic_cloud(30, rng);
  const Pca a(pts, 2);
  const Pca b(pts, 2);
  const auto pa = a.transform(pts[0]);
  const auto pb = b.transform(pts[0]);
  EXPECT_DOUBLE_EQ(pa[0], pb[0]);
  EXPECT_DOUBLE_EQ(pa[1], pb[1]);
}

}  // namespace
}  // namespace arbiterq::math
