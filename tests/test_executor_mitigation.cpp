// Tests for the executor's depolarizing error mitigation option.

#include <gtest/gtest.h>

#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/executor.hpp"

namespace arbiterq::qnn {
namespace {

QnnModel deep_model() { return QnnModel(Backbone::kCRz, 2, 8); }

TEST(Mitigation, SurvivalExposedAndSmallForDeepCircuits) {
  const QnnExecutor ex(deep_model(), device::table3_fleet_subset(1, 2)[0]);
  EXPECT_GT(ex.survival(), 0.0);
  EXPECT_LT(ex.survival(), 0.9);
}

TEST(Mitigation, RecoversExpectationScale) {
  const auto dev = device::table3_fleet_subset(1, 2)[0];
  const QnnModel m = deep_model();
  const QnnExecutor plain(m, dev);
  const QnnExecutor mitigated(m, dev, ExecutorOptions{true});
  const std::vector<double> features = {0.9, 2.1};
  const std::vector<double> weights(
      static_cast<std::size_t>(m.num_weights()), 0.4);
  const double p_plain = plain.probability(features, weights);
  const double p_mit = mitigated.probability(features, weights);
  // Attenuation pulls p toward 1/2; mitigation undoes it (readout
  // contraction aside): |p_mit - 1/2| > |p_plain - 1/2|.
  EXPECT_GT(std::abs(p_mit - 0.5), std::abs(p_plain - 0.5));
}

TEST(Mitigation, MitigatedZMatchesBiasedCircuit) {
  // With mitigation, the recovered <Z> equals the coherent-biased pure
  // state's expectation (before readout contraction).
  const auto dev = device::table3_fleet_subset(1, 2)[0];
  const QnnModel m = deep_model();
  const QnnExecutor mitigated(m, dev, ExecutorOptions{true});
  const std::vector<double> features = {0.9, 2.1};
  const std::vector<double> weights(
      static_cast<std::size_t>(m.num_weights()), 0.4);

  sim::StatevectorSimulator sim(dev.make_noise_model());
  const auto params = m.pack_params(features, weights);
  const double zb =
      sim.run_biased(mitigated.compiled().executable, params)
          .expectation_z(mitigated.readout_qubit());
  const double p01 = sim.noise().readout_p01(mitigated.readout_qubit());
  const double p10 = sim.noise().readout_p10(mitigated.readout_qubit());
  const double p_expect =
      (0.5 * (1.0 - zb)) * (1.0 - p10) + (0.5 * (1.0 + zb)) * p01;
  EXPECT_NEAR(mitigated.probability(features, weights), p_expect, 1e-10);
}

TEST(Mitigation, GradientConsistentWithObjective) {
  // Adjoint gradient under mitigation must match finite differences of
  // the mitigated loss.
  const auto dev = device::table3_fleet_subset(1, 2)[0];
  const QnnModel m(Backbone::kCRz, 2, 2);
  const QnnExecutor ex(m, dev, ExecutorOptions{true});
  const std::vector<std::vector<double>> feats = {{0.7, 1.9}};
  const std::vector<int> labels = {1};
  std::vector<double> w(static_cast<std::size_t>(m.num_weights()), 0.3);

  const auto grad = ex.loss_gradient(LossKind::kMse, feats, labels, w);
  const double h = 1e-6;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double w0 = w[i];
    w[i] = w0 + h;
    const double fp = ex.dataset_loss(LossKind::kMse, feats, labels, w);
    w[i] = w0 - h;
    const double fm = ex.dataset_loss(LossKind::kMse, feats, labels, w);
    w[i] = w0;
    EXPECT_NEAR(grad[i], (fp - fm) / (2.0 * h), 1e-5) << i;
  }
}

TEST(Mitigation, SampledProbabilityClampsToPhysicalRange) {
  const auto dev = device::table3_fleet_subset(1, 2)[0];
  const QnnModel m = deep_model();
  const QnnExecutor mitigated(m, dev, ExecutorOptions{true});
  const std::vector<double> features = {0.9, 2.1};
  const std::vector<double> weights(
      static_cast<std::size_t>(m.num_weights()), 0.4);
  math::Rng rng(5);
  const double p =
      mitigated.sampled_probability(features, weights, 200, rng, 8);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(Mitigation, NoopOnNoiselessDevice) {
  device::QpuSpec s;
  s.name = "ideal";
  s.topology = device::Topology::line(2);
  s.infidelity_1q = 0.0;
  s.infidelity_2q = 0.0;
  s.readout_error = 0.0;
  s.coherent_bias_scale = 0.0;
  s.t1_us = 1e9;
  s.t2_us = 1e9;
  const device::Qpu dev(s);
  const QnnModel m(Backbone::kCRz, 2, 2);
  const QnnExecutor plain(m, dev);
  const QnnExecutor mitigated(m, dev, ExecutorOptions{true});
  const std::vector<double> features = {0.7, 1.1};
  const std::vector<double> weights(
      static_cast<std::size_t>(m.num_weights()), 0.2);
  EXPECT_NEAR(plain.probability(features, weights),
              mitigated.probability(features, weights), 1e-9);
}

}  // namespace
}  // namespace arbiterq::qnn
