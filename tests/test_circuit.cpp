#include "arbiterq/circuit/circuit.hpp"

#include <gtest/gtest.h>

namespace arbiterq::circuit {
namespace {

TEST(Circuit, ConstructionValidation) {
  EXPECT_THROW(Circuit(0), std::invalid_argument);
  EXPECT_THROW(Circuit(2, -1), std::invalid_argument);
  const Circuit c(3, 2);
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.num_params(), 2);
  EXPECT_TRUE(c.empty());
}

TEST(Circuit, BuildersAppendInOrder) {
  Circuit c(2, 1);
  c.h(0).cx(0, 1).ry(1, ParamExpr::ref(0));
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.gate(0).kind, GateKind::kH);
  EXPECT_EQ(c.gate(1).kind, GateKind::kCX);
  EXPECT_EQ(c.gate(2).kind, GateKind::kRY);
}

TEST(Circuit, QubitRangeChecked) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), std::out_of_range);
  EXPECT_THROW(c.x(-1), std::out_of_range);
  EXPECT_THROW(c.cx(0, 2), std::out_of_range);
}

TEST(Circuit, TwoQubitGateOnSameQubitThrows) {
  Circuit c(2);
  EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
  EXPECT_THROW(c.swap(0, 0), std::invalid_argument);
}

TEST(Circuit, ParamRangeChecked) {
  Circuit c(2, 2);
  EXPECT_NO_THROW(c.rz(0, ParamExpr::ref(1)));
  EXPECT_THROW(c.rz(0, ParamExpr::ref(2)), std::out_of_range);
  EXPECT_NO_THROW(c.rz(0, ParamExpr::constant(9.0)));
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(3, 0);
  c.h(0).cx(0, 1).cz(1, 2).x(2).swap(0, 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 3U);
}

TEST(Circuit, RoutingSwapCount) {
  Circuit c(3);
  Gate g;
  g.kind = GateKind::kSwap;
  g.qubits = {0, 1};
  g.is_routing_swap = true;
  c.add(g);
  c.swap(1, 2);  // a user SWAP, not a routing one
  EXPECT_EQ(c.routing_swap_count(), 1U);
}

TEST(Circuit, DepthSingleQubitChain) {
  Circuit c(1);
  c.x(0).x(0).x(0);
  EXPECT_EQ(c.depth(), 3U);
}

TEST(Circuit, DepthParallelGates) {
  Circuit c(2);
  c.x(0).x(1);  // parallel
  EXPECT_EQ(c.depth(), 1U);
  c.cx(0, 1);  // synchronizes
  EXPECT_EQ(c.depth(), 2U);
  c.x(0);
  EXPECT_EQ(c.depth(), 3U);
}

TEST(Circuit, AppendShiftsParamIndices) {
  Circuit a(2, 1);
  a.ry(0, ParamExpr::ref(0));
  Circuit b(2, 3);
  b.ry(1, ParamExpr::ref(0));
  b.append(a, 2);
  ASSERT_EQ(b.size(), 2U);
  EXPECT_EQ(b.gate(1).params[0].index, 2);
}

TEST(Circuit, AppendQubitMismatchThrows) {
  Circuit a(2);
  Circuit b(3);
  EXPECT_THROW(b.append(a), std::invalid_argument);
}

TEST(Circuit, ToStringListsGates) {
  Circuit c(2, 1);
  c.h(0).crz(0, 1, ParamExpr::ref(0));
  const std::string s = c.to_string();
  EXPECT_NE(s.find("h(q0)"), std::string::npos);
  EXPECT_NE(s.find("crz"), std::string::npos);
}

}  // namespace
}  // namespace arbiterq::circuit
