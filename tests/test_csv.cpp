#include "arbiterq/report/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

namespace arbiterq::report {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvTable t({"a", "b"});
  t.add_row({std::string("1"), std::string("2")});
  t.add_row(std::vector<double>{3.5, -4.25});
  EXPECT_EQ(t.num_rows(), 2U);
  EXPECT_EQ(t.to_string(), "a,b\n1,2\n3.5,-4.25\n");
}

TEST(Csv, Validation) {
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}),
               std::invalid_argument);
}

TEST(Csv, QuotingSpecialCharacters) {
  CsvTable t({"label"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has \"quote\"")});
  t.add_row({std::string("line\nbreak")});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has \"\"quote\"\"\""), std::string::npos);
  EXPECT_NE(s.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, WriteAndReadBack) {
  CsvTable t({"x", "y"});
  t.add_row(std::vector<double>{1.0, 2.0});
  const std::string path = "/tmp/arbiterq_csv_test.csv";
  t.write(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y");
  std::getline(is, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathThrows) {
  CsvTable t({"x"});
  EXPECT_THROW(t.write("/nonexistent-dir/file.csv"), std::runtime_error);
}

TEST(Csv, ParseRoundTripsNastyFields) {
  CsvTable t({"name", "value"});
  t.add_row({std::string("plain"), std::string("1")});
  t.add_row({std::string("has,comma"), std::string("a,b,c")});
  t.add_row({std::string("has \"quote\""), std::string("\"\"")});
  t.add_row({std::string("line\nbreak"), std::string("tail\n\nlines")});
  t.add_row({std::string(""), std::string("empty-left")});
  const auto parsed = parse_csv(t.to_string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 6U);  // header + 5 rows
  EXPECT_EQ((*parsed)[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ((*parsed)[2],
            (std::vector<std::string>{"has,comma", "a,b,c"}));
  EXPECT_EQ((*parsed)[3],
            (std::vector<std::string>{"has \"quote\"", "\"\""}));
  EXPECT_EQ((*parsed)[4],
            (std::vector<std::string>{"line\nbreak", "tail\n\nlines"}));
  EXPECT_EQ((*parsed)[5], (std::vector<std::string>{"", "empty-left"}));
}

TEST(Csv, ParseAcceptsCrlfAndMissingFinalNewline) {
  const auto crlf = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(crlf.has_value());
  ASSERT_EQ(crlf->size(), 2U);
  EXPECT_EQ((*crlf)[1], (std::vector<std::string>{"1", "2"}));

  const auto unterminated = parse_csv("a,b\n1,2");
  ASSERT_TRUE(unterminated.has_value());
  EXPECT_EQ((*unterminated)[1], (std::vector<std::string>{"1", "2"}));

  const auto empty = parse_csv("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Csv, ParseRejectsMalformedInput) {
  // Unterminated quoted field.
  EXPECT_FALSE(parse_csv("a\n\"unclosed").has_value());
  // Text after the closing quote.
  EXPECT_FALSE(parse_csv("\"x\"y\n").has_value());
  // Quote opening mid-field.
  EXPECT_FALSE(parse_csv("ab\"c\"\n").has_value());
  // A lone carriage return is neither CRLF nor data.
  EXPECT_FALSE(parse_csv("a\rb\n").has_value());
}

TEST(Csv, WriteParseRoundTripThroughDisk) {
  CsvTable t({"span,name", "total"});
  t.add_row({std::string("core.train\n\"epoch\""), std::string("42")});
  const std::string path = "/tmp/arbiterq_csv_roundtrip_test.csv";
  t.write(path);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  const auto parsed = parse_csv(content);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2U);
  EXPECT_EQ((*parsed)[0][0], "span,name");
  EXPECT_EQ((*parsed)[1][0], "core.train\n\"epoch\"");
  EXPECT_EQ((*parsed)[1][1], "42");
}

TEST(Csv, LossCurvesTable) {
  const auto t = loss_curves_table({{"ArbiterQ", {0.5, 0.3, 0.2}},
                                    {"EQC", {0.6, 0.4}}});
  EXPECT_EQ(t.num_columns(), 3U);
  EXPECT_EQ(t.num_rows(), 3U);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("epoch,ArbiterQ,EQC"), std::string::npos);
  EXPECT_NE(s.find("3,0.2,"), std::string::npos);  // padded short series
  EXPECT_THROW(loss_curves_table({}), std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::report
