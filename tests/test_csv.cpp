#include "arbiterq/report/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace arbiterq::report {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvTable t({"a", "b"});
  t.add_row({std::string("1"), std::string("2")});
  t.add_row(std::vector<double>{3.5, -4.25});
  EXPECT_EQ(t.num_rows(), 2U);
  EXPECT_EQ(t.to_string(), "a,b\n1,2\n3.5,-4.25\n");
}

TEST(Csv, Validation) {
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}),
               std::invalid_argument);
}

TEST(Csv, QuotingSpecialCharacters) {
  CsvTable t({"label"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has \"quote\"")});
  t.add_row({std::string("line\nbreak")});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has \"\"quote\"\"\""), std::string::npos);
  EXPECT_NE(s.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, WriteAndReadBack) {
  CsvTable t({"x", "y"});
  t.add_row(std::vector<double>{1.0, 2.0});
  const std::string path = "/tmp/arbiterq_csv_test.csv";
  t.write(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y");
  std::getline(is, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathThrows) {
  CsvTable t({"x"});
  EXPECT_THROW(t.write("/nonexistent-dir/file.csv"), std::runtime_error);
}

TEST(Csv, LossCurvesTable) {
  const auto t = loss_curves_table({{"ArbiterQ", {0.5, 0.3, 0.2}},
                                    {"EQC", {0.6, 0.4}}});
  EXPECT_EQ(t.num_columns(), 3U);
  EXPECT_EQ(t.num_rows(), 3U);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("epoch,ArbiterQ,EQC"), std::string::npos);
  EXPECT_NE(s.find("3,0.2,"), std::string::npos);  // padded short series
  EXPECT_THROW(loss_curves_table({}), std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::report
