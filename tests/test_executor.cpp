#include "arbiterq/qnn/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/gradient.hpp"

namespace arbiterq::qnn {
namespace {

device::Qpu quiet_device(int n) {
  device::QpuSpec s;
  s.name = "quiet";
  s.topology = device::Topology::line(n);
  s.infidelity_1q = 0.0;
  s.infidelity_2q = 0.0;
  s.readout_error = 0.0;
  s.coherent_bias_scale = 0.0;
  s.t1_us = 1e9;  // effectively no decay
  s.t2_us = 1e9;
  s.noise_seed = 1;
  return device::Qpu(s);
}

std::vector<double> small_weights(const QnnModel& m, double fill) {
  return std::vector<double>(static_cast<std::size_t>(m.num_weights()),
                             fill);
}

TEST(Executor, ProbabilityInUnitInterval) {
  const QnnModel m(Backbone::kCRz, 2, 2);
  for (const auto& dev : device::table3_fleet_subset(4, 2)) {
    const QnnExecutor ex(m, dev);
    const double p = ex.probability({0.3, 2.0}, small_weights(m, 0.5));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Executor, NoiselessDeviceMatchesIdealModel) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const QnnExecutor ex(m, quiet_device(2));
  const std::vector<double> features = {1.0, 0.5};
  const auto w = small_weights(m, 0.3);
  // Reference: run the un-transpiled model circuit directly.
  sim::StatevectorSimulator ideal;
  const auto params = m.pack_params(features, w);
  const double ref = ideal.probability_of_one(m.circuit(), params, 0);
  EXPECT_NEAR(ex.probability(features, w), ref, 1e-9);
}

TEST(Executor, ReadoutQubitTracksLayout) {
  const QnnModel m(Backbone::kCRz, 4, 1);  // ring entangler on a line
  const QnnExecutor ex(m, device::table3_fleet_subset(1, 4).front());
  EXPECT_EQ(ex.readout_qubit(), ex.compiled().measure_qubit(0));
}

TEST(Executor, DatasetLossAveragesPerSampleLosses) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const QnnExecutor ex(m, quiet_device(2));
  const auto w = small_weights(m, 0.2);
  const std::vector<std::vector<double>> feats = {{0.1, 0.2}, {2.0, 1.0}};
  const std::vector<int> labels = {0, 1};
  const double l0 = loss_value(LossKind::kMse,
                               ex.probability(feats[0], w), 0);
  const double l1 = loss_value(LossKind::kMse,
                               ex.probability(feats[1], w), 1);
  EXPECT_NEAR(ex.dataset_loss(LossKind::kMse, feats, labels, w),
              0.5 * (l0 + l1), 1e-12);
  EXPECT_THROW(ex.dataset_loss(LossKind::kMse, feats, {0}, w),
               std::invalid_argument);
}

class ExecutorGradients
    : public ::testing::TestWithParam<std::tuple<Backbone, int>> {};

TEST_P(ExecutorGradients, AdjointMatchesParameterShift) {
  const auto [backbone, device_index] = GetParam();
  const QnnModel m(backbone, 2, 2);
  const auto fleet = device::table3_fleet_subset(4, 2);
  const QnnExecutor ex(m, fleet[static_cast<std::size_t>(device_index)]);
  const std::vector<std::vector<double>> feats = {{0.4, 1.3}, {2.2, 0.6}};
  const std::vector<int> labels = {1, 0};
  std::vector<double> w(static_cast<std::size_t>(m.num_weights()));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.1 * static_cast<double>(i) - 0.3;
  }
  const auto adjoint = ex.loss_gradient(LossKind::kMse, feats, labels, w);
  const auto shift =
      ex.loss_gradient_shift(LossKind::kMse, feats, labels, w);
  ASSERT_EQ(adjoint.size(), shift.size());
  for (std::size_t i = 0; i < adjoint.size(); ++i) {
    EXPECT_NEAR(adjoint[i], shift[i], 1e-8) << "weight " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackbonesAndDevices, ExecutorGradients,
    ::testing::Combine(::testing::Values(Backbone::kCRz, Backbone::kCRx),
                       ::testing::Values(0, 1, 3)));

TEST(Executor, GradientDescentReducesLoss) {
  const QnnModel m(Backbone::kCRx, 2, 2);
  const QnnExecutor ex(m, device::table3_fleet_subset(2, 2)[1]);
  const std::vector<std::vector<double>> feats = {{0.2, 0.3}, {2.5, 2.8},
                                                  {0.4, 0.1}, {2.9, 2.6}};
  const std::vector<int> labels = {0, 1, 0, 1};
  auto w = small_weights(m, 0.1);
  const double before = ex.dataset_loss(LossKind::kMse, feats, labels, w);
  for (int it = 0; it < 25; ++it) {
    const auto g = ex.loss_gradient(LossKind::kMse, feats, labels, w);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= 0.5 * g[i];
  }
  const double after = ex.dataset_loss(LossKind::kMse, feats, labels, w);
  EXPECT_LT(after, before * 0.8);
}

TEST(Executor, SampledProbabilityConvergesToExact) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const QnnExecutor ex(m, device::table3_fleet_subset(1, 2).front());
  const std::vector<double> features = {1.1, 2.0};
  const auto w = small_weights(m, 0.4);
  math::Rng rng(77);
  const double sampled =
      ex.sampled_probability(features, w, 60000, rng, 512);
  // Exact mode approximates the channel; allow a modest tolerance.
  EXPECT_NEAR(sampled, ex.probability(features, w), 0.03);
}

TEST(Executor, ShotRatesDifferAcrossFleet) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const auto fleet = device::table3_fleet_subset(3, 2);
  const QnnExecutor a(m, fleet[0]);
  const QnnExecutor b(m, fleet[2]);
  EXPECT_GT(a.shot_latency_us(), 0.0);
  EXPECT_NE(a.shot_rate(), b.shot_rate());
}

TEST(Executor, ShiftRulesForwarded) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  const QnnExecutor ex(m, quiet_device(2));
  const auto rules = ex.shift_rules();
  ASSERT_EQ(rules.size(), 4U);
  EXPECT_EQ(rules[0], ShiftRule::kTwoTerm);
  EXPECT_EQ(rules[3], ShiftRule::kFourTerm);
}

}  // namespace
}  // namespace arbiterq::qnn
