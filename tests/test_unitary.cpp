#include "arbiterq/circuit/unitary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace arbiterq::circuit {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Mat2Ops, MultiplyAndAdjoint) {
  const Mat2 h = gate_matrix_1q(GateKind::kH, {});
  const Mat2 hh = mat2_multiply(h, h);
  EXPECT_NEAR(std::abs(hh[0] - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(hh[1]), 0.0, 1e-12);
  const Mat2 s = gate_matrix_1q(GateKind::kS, {});
  const Mat2 sdg = gate_matrix_1q(GateKind::kSdg, {});
  const Mat2 adj = mat2_adjoint(s);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(adj[static_cast<std::size_t>(i)] -
                         sdg[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

class OneQubitUnitary
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(OneQubitUnitary, IsUnitary) {
  const auto [kind, theta] = GetParam();
  const Mat2 m = gate_matrix_1q(kind, {theta, 0.7, -0.3});
  EXPECT_TRUE(mat2_is_unitary(m)) << gate_name(kind) << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndAngles, OneQubitUnitary,
    ::testing::Combine(
        ::testing::Values(GateKind::kI, GateKind::kX, GateKind::kY,
                          GateKind::kZ, GateKind::kH, GateKind::kS,
                          GateKind::kSdg, GateKind::kSX, GateKind::kRX,
                          GateKind::kRY, GateKind::kRZ, GateKind::kU3),
        ::testing::Values(0.0, 0.3, kPi / 2, kPi, -1.1, 2 * kPi)));

class TwoQubitUnitary
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(TwoQubitUnitary, IsUnitary) {
  const auto [kind, theta] = GetParam();
  const Mat4 m = gate_matrix_2q(kind, {theta, 0.0, 0.0});
  EXPECT_TRUE(mat4_is_unitary(m)) << gate_name(kind) << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndAngles, TwoQubitUnitary,
    ::testing::Combine(::testing::Values(GateKind::kCX, GateKind::kCZ,
                                         GateKind::kCRX, GateKind::kCRY,
                                         GateKind::kCRZ, GateKind::kSwap),
                       ::testing::Values(0.0, 0.4, kPi / 2, -2.2)));

TEST(GateMatrices, WrongArityThrows) {
  EXPECT_THROW(gate_matrix_1q(GateKind::kCX, {}), std::invalid_argument);
  EXPECT_THROW(gate_matrix_2q(GateKind::kH, {}), std::invalid_argument);
}

TEST(GateMatrices, HadamardValues) {
  const Mat2 h = gate_matrix_1q(GateKind::kH, {});
  const double inv = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(h[0].real(), inv, 1e-12);
  EXPECT_NEAR(h[3].real(), -inv, 1e-12);
}

TEST(GateMatrices, RotationsAtZeroAreIdentity) {
  for (GateKind k : {GateKind::kRX, GateKind::kRY, GateKind::kRZ}) {
    const Mat2 m = gate_matrix_1q(k, {0.0, 0.0, 0.0});
    EXPECT_NEAR(std::abs(m[0] - 1.0), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m[2]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m[3] - 1.0), 0.0, 1e-12);
  }
}

TEST(GateMatrices, RxAtPiIsXUpToPhase) {
  const Mat2 rx = matrix_rx(kPi);
  // RX(pi) = -i X.
  EXPECT_NEAR(std::abs(rx[1] - Complex(0.0, -1.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rx[0]), 0.0, 1e-12);
}

TEST(GateMatrices, U3ReproducesRy) {
  const Mat2 ry = matrix_ry(0.8);
  const Mat2 u = matrix_u3(0.8, 0.0, 0.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(ry[static_cast<std::size_t>(i)] -
                         u[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(GateMatrices, CxActionOnBasis) {
  const Mat4 cx = gate_matrix_2q(GateKind::kCX, {});
  // |c t>: 10 -> 11 means column 2 has a 1 in row 3.
  EXPECT_NEAR(std::abs(cx[3 * 4 + 2] - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cx[2 * 4 + 3] - 1.0), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cx[0 * 4 + 0] - 1.0), 0.0, 1e-12);
}

TEST(CircuitUnitary, BellCircuit) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const auto u = circuit_unitary(c, {});
  // Column 0 = (|00> + |11>)/sqrt(2) with qubit0 = LSB.
  const double inv = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(u[0 * 4 + 0] - inv), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u[3 * 4 + 0] - inv), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u[1 * 4 + 0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u[2 * 4 + 0]), 0.0, 1e-12);
}

TEST(CircuitUnitary, ParameterBinding) {
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0, 2.0));  // angle = 2 * p0
  const std::vector<double> params = {0.4};
  const auto u = circuit_unitary(c, params);
  const Mat2 expect = matrix_ry(0.8);
  EXPECT_NEAR(std::abs(u[0] - expect[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u[1] - expect[1]), 0.0, 1e-12);
}

TEST(CircuitUnitary, InverseComposesToIdentity) {
  Circuit c(2, 0);
  c.h(0).cx(0, 1).rz(1, ParamExpr::constant(0.7)).cx(0, 1).h(0);
  Circuit inv(2, 0);
  inv.h(0).cx(0, 1).rz(1, ParamExpr::constant(-0.7)).cx(0, 1).h(0);
  const auto u = multiply_square(circuit_unitary(inv, {}),
                                 circuit_unitary(c, {}));
  std::vector<Complex> id(16, Complex{0.0, 0.0});
  for (int i = 0; i < 4; ++i) id[static_cast<std::size_t>(i * 4 + i)] = 1.0;
  EXPECT_LT(unitary_distance_up_to_phase(u, id), 1e-10);
}

TEST(PermutationUnitary, SwapsBits) {
  // perm: q0 -> q1, q1 -> q0 over 2 qubits = SWAP matrix.
  const auto u = permutation_unitary({1, 0});
  const Mat4 sw = gate_matrix_2q(GateKind::kSwap, {});
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(u[static_cast<std::size_t>(i)] -
                         sw[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(UnitaryDistance, GlobalPhaseIgnored) {
  Circuit c(1);
  c.z(0);
  const auto a = circuit_unitary(c, {});
  Circuit d(1);
  d.rz(0, ParamExpr::constant(kPi));  // Z up to global phase -i
  const auto b = circuit_unitary(d, {});
  EXPECT_GT(std::abs(a[0] - b[0]), 0.1);  // entries differ...
  EXPECT_LT(unitary_distance_up_to_phase(a, b), 1e-12);  // ...but not
}

TEST(UnitaryDistance, DetectsRealDifference) {
  Circuit c(1);
  c.x(0);
  Circuit d(1);
  d.z(0);
  EXPECT_GT(unitary_distance_up_to_phase(circuit_unitary(c, {}),
                                         circuit_unitary(d, {})),
            0.5);
}

}  // namespace
}  // namespace arbiterq::circuit
