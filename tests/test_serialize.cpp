#include "arbiterq/circuit/serialize.hpp"

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq::circuit {
namespace {

void expect_roundtrip(const Circuit& c) {
  const std::string text = serialize(c);
  const Circuit back = deserialize(text);
  ASSERT_EQ(back.num_qubits(), c.num_qubits());
  ASSERT_EQ(back.num_params(), c.num_params());
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& a = c.gate(i);
    const Gate& b = back.gate(i);
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.qubits, b.qubits) << i;
    EXPECT_EQ(a.is_routing_swap, b.is_routing_swap) << i;
    for (int k = 0; k < a.param_count(); ++k) {
      EXPECT_EQ(a.params[static_cast<std::size_t>(k)].index,
                b.params[static_cast<std::size_t>(k)].index)
          << i;
      EXPECT_DOUBLE_EQ(a.params[static_cast<std::size_t>(k)].coeff,
                       b.params[static_cast<std::size_t>(k)].coeff)
          << i;
      EXPECT_DOUBLE_EQ(a.params[static_cast<std::size_t>(k)].offset,
                       b.params[static_cast<std::size_t>(k)].offset)
          << i;
    }
  }
}

TEST(Serialize, SimpleCircuitRoundTrips) {
  Circuit c(2, 1);
  c.h(0).cx(0, 1).ry(1, ParamExpr::ref(0));
  expect_roundtrip(c);
}

TEST(Serialize, SymbolicParamsRoundTrip) {
  Circuit c(2, 3);
  c.rz(0, ParamExpr::ref(2, 0.5, 1.25))
      .rx(1, ParamExpr::ref(0, -2.0))
      .crz(0, 1, ParamExpr::ref(1, 1.0, -0.75))
      .u3(0, ParamExpr::ref(0), ParamExpr::constant(0.5),
          ParamExpr::ref(2, -0.5, 0.125));
  expect_roundtrip(c);
}

TEST(Serialize, ProvenanceTagsRoundTrip) {
  Circuit c(3, 0);
  Gate sw;
  sw.kind = GateKind::kSwap;
  sw.qubits = {0, 1};
  sw.is_routing_swap = true;
  sw.logical_id = 5;
  c.add(sw);
  Gate x;
  x.kind = GateKind::kX;
  x.qubits = {2, 0};
  x.logical_id = 7;
  c.add(x);
  expect_roundtrip(c);
  const Circuit back = deserialize(serialize(c));
  EXPECT_TRUE(back.gate(0).is_routing_swap);
  EXPECT_EQ(back.gate(0).logical_id, 5);
  EXPECT_EQ(back.gate(1).logical_id, 7);
}

TEST(Serialize, TranspiledModelRoundTripsSemantically) {
  const qnn::QnnModel m(qnn::Backbone::kCRx, 3, 2);
  const auto dev = device::table3_fleet(3)[0];
  const auto compiled = transpile::compile(m.circuit(), dev);
  const Circuit back = deserialize(serialize(compiled.executable));
  std::vector<double> params(static_cast<std::size_t>(m.num_params()));
  math::Rng rng(5);
  for (double& p : params) p = rng.uniform(-2.0, 2.0);
  EXPECT_LT(unitary_distance_up_to_phase(
                circuit_unitary(compiled.executable, params),
                circuit_unitary(back, params)),
            1e-12);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Circuit c = deserialize(
      "aqc 1\n"
      "qubits 2\n"
      "params 1\n"
      "\n"
      "# a comment\n"
      "h q0   # trailing comment\n"
      "crz q0 q1 p0*0.5\n");
  EXPECT_EQ(c.size(), 2U);
  EXPECT_EQ(c.gate(1).params[0].coeff, 0.5);
}

TEST(Serialize, MalformedInputsRejectedWithLineInfo) {
  EXPECT_THROW(deserialize(""), std::invalid_argument);
  EXPECT_THROW(deserialize("qasm 2\n"), std::invalid_argument);
  EXPECT_THROW(deserialize("aqc 1\nqubits 2\n"), std::invalid_argument);
  const std::string header = "aqc 1\nqubits 2\nparams 1\n";
  EXPECT_THROW(deserialize(header + "foo q0\n"), std::invalid_argument);
  EXPECT_THROW(deserialize(header + "cx q0\n"), std::invalid_argument);
  EXPECT_THROW(deserialize(header + "ry q0\n"), std::invalid_argument);
  EXPECT_THROW(deserialize(header + "ry q0 pX\n"), std::invalid_argument);
  EXPECT_THROW(deserialize(header + "ry q0 p0 extra\n"),
               std::invalid_argument);
  EXPECT_THROW(deserialize(header + "ry q9 p0\n"), std::out_of_range);
  EXPECT_THROW(deserialize(header + "ry q0 p7\n"), std::out_of_range);
}

TEST(Serialize, RandomCircuitsRoundTrip) {
  math::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(4, 5);
    for (int i = 0; i < 20; ++i) {
      const int a = static_cast<int>(rng.uniform_int(4));
      int b = static_cast<int>(rng.uniform_int(4));
      if (b == a) b = (a + 1) % 4;
      switch (rng.uniform_int(4)) {
        case 0:
          c.sx(a);
          break;
        case 1:
          c.rz(a, ParamExpr::ref(static_cast<int>(rng.uniform_int(5)),
                                 rng.uniform(-2.0, 2.0),
                                 rng.uniform(-3.0, 3.0)));
          break;
        case 2:
          c.cx(a, b);
          break;
        default:
          c.cry(a, b, ParamExpr::constant(rng.uniform(-3.0, 3.0)));
          break;
      }
    }
    expect_roundtrip(c);
  }
}

}  // namespace
}  // namespace arbiterq::circuit
