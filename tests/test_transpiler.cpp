#include "arbiterq/transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/transpile/decompose.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::ParamExpr;
using device::Qpu;
using device::QpuSpec;
using device::Topology;

Qpu line_device(int n, device::BasisSet basis) {
  QpuSpec s;
  s.name = "line-dev";
  s.topology = Topology::line(n);
  s.basis = basis;
  s.infidelity_1q = 2e-4;
  s.infidelity_2q = 4e-3;
  s.t1_us = 150.0;
  s.t2_us = 50.0;
  s.noise_seed = 7;
  return Qpu(s);
}

Circuit sample_circuit() {
  Circuit c(3, 2);
  c.ry(0, ParamExpr::ref(0))
      .crz(0, 2, ParamExpr::ref(1))  // needs routing on a line
      .h(1)
      .cx(1, 2);
  return c;
}

TEST(Transpiler, ExecutableIsNativeAndRouted) {
  for (device::BasisSet basis :
       {device::BasisSet::kIbm, device::BasisSet::kOrigin}) {
    const Qpu dev = line_device(3, basis);
    const CompiledCircuit cc = compile(sample_circuit(), dev);
    EXPECT_TRUE(respects_topology(cc.executable, dev.topology()));
    for (const Gate& g : cc.executable.gates()) {
      EXPECT_TRUE(is_native(g.kind, basis));
    }
  }
}

TEST(Transpiler, RoutedViewKeepsSourceAlphabetPlusSwaps) {
  const Qpu dev = line_device(3, device::BasisSet::kIbm);
  const CompiledCircuit cc = compile(sample_circuit(), dev);
  EXPECT_GE(cc.routed.routing_swap_count(), 1U);
  bool saw_crz = false;
  for (const Gate& g : cc.routed.gates()) {
    saw_crz |= g.kind == circuit::GateKind::kCRZ;
  }
  EXPECT_TRUE(saw_crz);  // not yet decomposed in the routed view
}

TEST(Transpiler, EndToEndUnitaryEquivalence) {
  const Qpu dev = line_device(3, device::BasisSet::kIbm);
  const Circuit c = sample_circuit();
  const CompiledCircuit cc = compile(c, dev);
  const std::vector<double> params = {0.8, -1.4};

  const auto u_orig = circuit_unitary(c, params);
  const auto u_exec = circuit_unitary(cc.executable, params);
  const auto p = circuit::permutation_unitary(cc.final_layout);
  const std::size_t dim = std::size_t{1} << 3;
  std::vector<circuit::Complex> p_dag(p.size());
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t col = 0; col < dim; ++col) {
      p_dag[r * dim + col] = std::conj(p[col * dim + r]);
    }
  }
  const auto undone = circuit::multiply_square(p_dag, u_exec);
  EXPECT_LT(circuit::unitary_distance_up_to_phase(u_orig, undone), 1e-8);
}

TEST(Transpiler, MeasureQubitFollowsLayout) {
  const Qpu dev = line_device(3, device::BasisSet::kIbm);
  const CompiledCircuit cc = compile(sample_circuit(), dev);
  for (int q = 0; q < 3; ++q) {
    EXPECT_EQ(cc.measure_qubit(q), cc.final_layout[static_cast<
                                        std::size_t>(q)]);
  }
}

TEST(Transpiler, Table3DevicesCompileTheRingModel) {
  Circuit c(4, 8);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, ParamExpr::ref(p++));
  for (int q = 0; q < 4; ++q) {
    c.crz(q, (q + 1) % 4, ParamExpr::ref(p++));
  }
  for (const Qpu& dev : device::table3_fleet(4)) {
    const CompiledCircuit cc = compile(c, dev);
    EXPECT_TRUE(respects_topology(cc.executable, dev.topology()))
        << dev.name();
    EXPECT_GT(cc.executable.size(), c.size()) << dev.name();
  }
}

TEST(Transpiler, WukongTileCompilesU3Cz) {
  const auto tiles = device::wukong_tiles();
  Circuit c(2, 4);
  c.ry(0, ParamExpr::ref(0))
      .ry(1, ParamExpr::ref(1))
      .crz(0, 1, ParamExpr::ref(2))
      .crz(1, 0, ParamExpr::ref(3));
  const CompiledCircuit cc = compile(c, tiles[0]);
  for (const Gate& g : cc.executable.gates()) {
    EXPECT_TRUE(g.kind == circuit::GateKind::kU3 ||
                g.kind == circuit::GateKind::kCZ);
  }
}

}  // namespace
}  // namespace arbiterq::transpile
