#include "arbiterq/qnn/gradient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/simulator.hpp"

namespace arbiterq::qnn {
namespace {

TEST(ParameterShift, TwoTermOnCosine) {
  // f(w) = cos(w) has the spectrum of a single-qubit rotation
  // expectation; the two-term rule is exact.
  const ScalarFn f = [](const std::vector<double>& w) {
    return std::cos(w[0]);
  };
  std::vector<double> w = {0.7};
  const double g = parameter_shift_partial(f, w, 0, ShiftRule::kTwoTerm);
  EXPECT_NEAR(g, -std::sin(0.7), 1e-12);
  EXPECT_DOUBLE_EQ(w[0], 0.7);  // restored
}

TEST(ParameterShift, FourTermOnMixedSpectrum) {
  // f(w) = a cos(w/2 + phi) + b cos(w + psi): exactly the controlled-
  // rotation spectrum; only the four-term rule is exact here.
  const double a = 0.8;
  const double phi = 0.3;
  const double b = -0.5;
  const double psi = -1.1;
  const ScalarFn f = [&](const std::vector<double>& w) {
    return a * std::cos(w[0] / 2 + phi) + b * std::cos(w[0] + psi);
  };
  for (double w0 : {0.0, 0.9, -1.7, 2.4}) {
    std::vector<double> w = {w0};
    const double g = parameter_shift_partial(f, w, 0, ShiftRule::kFourTerm);
    const double expect =
        -a / 2 * std::sin(w0 / 2 + phi) - b * std::sin(w0 + psi);
    EXPECT_NEAR(g, expect, 1e-10) << "w=" << w0;
  }
}

TEST(ParameterShift, TwoTermFailsOnMixedSpectrumButFourTermWins) {
  const ScalarFn f = [](const std::vector<double>& w) {
    return std::cos(w[0] / 2.0);
  };
  std::vector<double> w = {1.3};
  const double exact = -0.5 * std::sin(0.65);
  const double two = parameter_shift_partial(f, w, 0, ShiftRule::kTwoTerm);
  const double four = parameter_shift_partial(f, w, 0, ShiftRule::kFourTerm);
  EXPECT_GT(std::abs(two - exact), 1e-3);
  EXPECT_NEAR(four, exact, 1e-10);
}

TEST(ParameterShift, FullGradientAndValidation) {
  const ScalarFn f = [](const std::vector<double>& w) {
    return std::cos(w[0]) * std::cos(w[1] / 2.0);
  };
  const std::vector<ShiftRule> rules = {ShiftRule::kTwoTerm,
                                        ShiftRule::kFourTerm};
  const auto g = parameter_shift_gradient(f, {0.4, 1.2}, rules);
  ASSERT_EQ(g.size(), 2U);
  EXPECT_NEAR(g[0], -std::sin(0.4) * std::cos(0.6), 1e-10);
  EXPECT_NEAR(g[1], -0.5 * std::cos(0.4) * std::sin(0.6), 1e-10);
  EXPECT_THROW(parameter_shift_gradient(f, {0.4}, rules),
               std::invalid_argument);
}

TEST(ParameterShift, IndexOutOfRangeThrows) {
  const ScalarFn f = [](const std::vector<double>&) { return 0.0; };
  std::vector<double> w = {0.0};
  EXPECT_THROW(parameter_shift_partial(f, w, 1, ShiftRule::kTwoTerm),
               std::out_of_range);
}

TEST(FiniteDifference, MatchesAnalytic) {
  const ScalarFn f = [](const std::vector<double>& w) {
    return w[0] * w[0] + 3.0 * w[1];
  };
  const auto g = finite_difference_gradient(f, {2.0, 5.0});
  EXPECT_NEAR(g[0], 4.0, 1e-4);
  EXPECT_NEAR(g[1], 3.0, 1e-6);
  EXPECT_THROW(finite_difference_gradient(f, {0.0}, -1.0),
               std::invalid_argument);
}

TEST(ParameterShift, ExactOnRealCrzCircuit) {
  // End-to-end: the four-term rule on a genuine CRZ weight matches
  // finite differences of the simulated expectation.
  using circuit::Circuit;
  using circuit::ParamExpr;
  Circuit c(2, 2);
  c.ry(0, ParamExpr::ref(0)).ry(1, ParamExpr::constant(0.9));
  c.crz(0, 1, ParamExpr::ref(1));
  c.ry(1, ParamExpr::constant(-0.4));
  sim::StatevectorSimulator simulator;
  const ScalarFn f = [&](const std::vector<double>& w) {
    return simulator.expectation_z(c, w, 1);
  };
  const std::vector<ShiftRule> rules = {ShiftRule::kTwoTerm,
                                        ShiftRule::kFourTerm};
  const auto shift = parameter_shift_gradient(f, {0.6, 1.5}, rules);
  const auto fd = finite_difference_gradient(f, {0.6, 1.5});
  EXPECT_NEAR(shift[0], fd[0], 1e-5);
  EXPECT_NEAR(shift[1], fd[1], 1e-5);
}

TEST(ShiftEvaluations, CountsCircuitExecutions) {
  EXPECT_EQ(shift_evaluations({ShiftRule::kTwoTerm, ShiftRule::kTwoTerm}),
            4U);
  EXPECT_EQ(shift_evaluations({ShiftRule::kTwoTerm, ShiftRule::kFourTerm}),
            6U);
  EXPECT_EQ(shift_evaluations({}), 0U);
}

}  // namespace
}  // namespace arbiterq::qnn
