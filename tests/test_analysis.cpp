#include "arbiterq/qnn/analysis.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "arbiterq/circuit/unitary.hpp"

namespace arbiterq::qnn {
namespace {

TEST(MeyerWallach, ProductStateHasZeroQ) {
  sim::Statevector sv(3);
  sv.apply_mat2(circuit::matrix_ry(0.7), 0);
  sv.apply_mat2(circuit::matrix_ry(-1.2), 1);
  sv.apply_mat2(circuit::matrix_ry(2.1), 2);
  EXPECT_NEAR(meyer_wallach_q(sv), 0.0, 1e-10);
}

TEST(MeyerWallach, BellStateHasUnitQ) {
  sim::Statevector sv(2);
  sv.apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kH, {}), 0);
  sv.apply_mat4(circuit::gate_matrix_2q(circuit::GateKind::kCX, {}), 0, 1);
  EXPECT_NEAR(meyer_wallach_q(sv), 1.0, 1e-10);
}

TEST(MeyerWallach, GhzStateHasUnitQ) {
  sim::Statevector sv(4);
  sv.apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kH, {}), 0);
  for (int q = 0; q < 3; ++q) {
    sv.apply_mat4(circuit::gate_matrix_2q(circuit::GateKind::kCX, {}), q,
                  q + 1);
  }
  EXPECT_NEAR(meyer_wallach_q(sv), 1.0, 1e-10);
}

TEST(MeyerWallach, PartialEntanglementBetweenExtremes) {
  sim::Statevector sv(2);
  sv.apply_mat2(circuit::matrix_ry(0.6), 0);
  sv.apply_mat4(
      circuit::gate_matrix_2q(circuit::GateKind::kCRX, {0.9, 0, 0}), 0, 1);
  const double q = meyer_wallach_q(sv);
  EXPECT_GT(q, 0.001);
  EXPECT_LT(q, 0.999);
}

TEST(EntanglingCapability, RingBackbonesEntangle) {
  for (Backbone b : {Backbone::kCRz, Backbone::kCRx}) {
    const QnnModel m(b, 4, 2);
    const double q = entangling_capability(m, 60, math::Rng(5));
    EXPECT_GT(q, 0.1) << backbone_name(b);
    EXPECT_LE(q, 1.0) << backbone_name(b);
  }
}

TEST(EntanglingCapability, MoreLayersEntangleAtLeastAsMuch) {
  const QnnModel shallow(Backbone::kCRx, 3, 1);
  const QnnModel deep(Backbone::kCRx, 3, 4);
  const double qs = entangling_capability(shallow, 80, math::Rng(7));
  const double qd = entangling_capability(deep, 80, math::Rng(7));
  EXPECT_GE(qd, qs - 0.05);
}

TEST(EntanglingCapability, Validation) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  EXPECT_THROW(entangling_capability(m, 0, math::Rng(1)),
               std::invalid_argument);
}

TEST(Expressibility, DeterministicUnderSeed) {
  const QnnModel m(Backbone::kCRz, 2, 2);
  const auto a = expressibility(m, 100, 20, math::Rng(3));
  const auto b = expressibility(m, 100, 20, math::Rng(3));
  EXPECT_DOUBLE_EQ(a.kl_divergence, b.kl_divergence);
}

TEST(Expressibility, NonNegativeAndFinite) {
  const QnnModel m(Backbone::kCRx, 3, 2);
  const auto r = expressibility(m, 200, 20, math::Rng(9));
  EXPECT_GE(r.kl_divergence, -1e-9);
  EXPECT_LT(r.kl_divergence, 50.0);
  EXPECT_EQ(r.samples, 200);
  EXPECT_EQ(r.bins, 20);
}

TEST(Expressibility, DeeperCircuitMoreExpressive) {
  // A 1-layer backbone covers less of state space than a 4-layer one:
  // its fidelity histogram sits further from Haar (larger KL).
  const QnnModel shallow(Backbone::kCRx, 2, 1);
  const QnnModel deep(Backbone::kCRx, 2, 4);
  const double kls =
      expressibility(shallow, 600, 20, math::Rng(11)).kl_divergence;
  const double kld =
      expressibility(deep, 600, 20, math::Rng(11)).kl_divergence;
  EXPECT_GT(kls, kld);
}

TEST(Expressibility, Validation) {
  const QnnModel m(Backbone::kCRz, 2, 1);
  EXPECT_THROW(expressibility(m, 1, 20, math::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(expressibility(m, 10, 1, math::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::qnn
