// SloEngine: per-class windowed burn rates, breach detection and
// forwarding to the FleetHealthMonitor, report/JSONL rendering, and the
// histogram-side burn computation a scrape consumer would run.

#include "arbiterq/monitor/slo.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/monitor/health.hpp"
#include "arbiterq/report/jsonl.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace {

using namespace arbiterq;
using monitor::SloClass;
using monitor::SloEngine;
using monitor::SloObjective;
using monitor::SloPolicy;

/// Tight policy for tests: 4-job windows, 100us target, 25% budget.
SloPolicy tight_policy() {
  SloPolicy p;
  p.objectives[0] = {100.0, 0.25};  // latency_bound
  p.objectives[1] = {100.0, 0.25};  // throughput_bound
  p.objectives[2] = {0.0, 0.25};    // best_effort: success-only
  p.window_jobs = 4;
  p.breach_burn_rate = 1.0;
  return p;
}

TEST(SloClassName, CoversAllClasses) {
  EXPECT_EQ(monitor::slo_class_name(SloClass::kLatencyBound),
            "latency_bound");
  EXPECT_EQ(monitor::slo_class_name(SloClass::kThroughputBound),
            "throughput_bound");
  EXPECT_EQ(monitor::slo_class_name(SloClass::kBestEffort), "best_effort");
}

TEST(SloPolicyDefaults, MatchTheDocumentedObjectives) {
  const SloPolicy p = SloPolicy::defaults();
  EXPECT_DOUBLE_EQ(p.objectives[0].latency_target_us, 5000.0);
  EXPECT_DOUBLE_EQ(p.objectives[0].error_budget, 0.01);
  EXPECT_DOUBLE_EQ(p.objectives[1].latency_target_us, 50000.0);
  EXPECT_DOUBLE_EQ(p.objectives[1].error_budget, 0.05);
  EXPECT_DOUBLE_EQ(p.objectives[2].latency_target_us, 0.0);
  EXPECT_DOUBLE_EQ(p.objectives[2].error_budget, 0.10);
  EXPECT_EQ(p.window_jobs, 64U);
}

TEST(SloEngine, RejectsInvalidPolicy) {
  SloPolicy p = SloPolicy::defaults();
  p.window_jobs = 0;
  EXPECT_THROW(SloEngine{p}, std::invalid_argument);
  p = SloPolicy::defaults();
  p.objectives[0].error_budget = 0.0;
  EXPECT_THROW(SloEngine{p}, std::invalid_argument);
  p.objectives[0].error_budget = 1.5;
  EXPECT_THROW(SloEngine{p}, std::invalid_argument);
}

TEST(SloEngine, IdleReportIsFullyCompliant) {
  const SloEngine engine;
  const monitor::SloReport rep = engine.report();
  ASSERT_EQ(rep.classes.size(), monitor::kNumSloClasses);
  for (const monitor::SloClassReport& c : rep.classes) {
    EXPECT_EQ(c.jobs, 0U);
    EXPECT_DOUBLE_EQ(c.compliance, 1.0);
    EXPECT_DOUBLE_EQ(c.overall_burn, 0.0);
    EXPECT_EQ(c.breaches, 0U);
  }
  EXPECT_TRUE(rep.breaches.empty());
}

TEST(SloEngine, LatencyTargetAndFailureBothViolate) {
  SloEngine engine(tight_policy());
  engine.observe_job(SloClass::kLatencyBound, 50.0, true);    // complies
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);   // too slow
  engine.observe_job(SloClass::kLatencyBound, 50.0, false);   // failed
  // best_effort has no latency term: only the failure violates.
  engine.observe_job(SloClass::kBestEffort, 1e9, true);
  engine.observe_job(SloClass::kBestEffort, 1.0, false);
  const monitor::SloReport rep = engine.report();
  EXPECT_EQ(rep.classes[0].jobs, 3U);
  EXPECT_EQ(rep.classes[0].violations, 2U);
  EXPECT_EQ(rep.classes[2].jobs, 2U);
  EXPECT_EQ(rep.classes[2].violations, 1U);
  // overall burn = (violations/jobs)/budget = (2/3)/0.25.
  EXPECT_NEAR(rep.classes[0].overall_burn, (2.0 / 3.0) / 0.25, 1e-12);
}

TEST(SloEngine, WindowRolloverDetectsBreaches) {
  SloEngine engine(tight_policy());
  // Window 1 (4 jobs): 2 violations -> burn (2/4)/0.25 = 2.0 > 1 -> breach.
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  engine.observe_job(SloClass::kLatencyBound, 50.0, true);
  engine.observe_job(SloClass::kLatencyBound, 50.0, true);
  // Window 2: 1 violation -> burn (1/4)/0.25 = 1.0, not > 1 -> clean.
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  for (int i = 0; i < 3; ++i) {
    engine.observe_job(SloClass::kLatencyBound, 50.0, true);
  }
  const monitor::SloReport rep = engine.report();
  EXPECT_EQ(rep.classes[0].breaches, 1U);
  ASSERT_EQ(rep.breaches.size(), 1U);
  EXPECT_EQ(rep.breaches[0].cls, SloClass::kLatencyBound);
  EXPECT_EQ(rep.breaches[0].window_index, 0U);
  EXPECT_EQ(rep.breaches[0].violations, 2U);
  EXPECT_DOUBLE_EQ(rep.breaches[0].burn_rate, 2.0);
}

TEST(SloEngine, PartialWindowShowsInWindowBurn) {
  SloEngine engine(tight_policy());
  engine.observe_job(SloClass::kThroughputBound, 500.0, true);  // violation
  engine.observe_job(SloClass::kThroughputBound, 50.0, true);
  const monitor::SloReport rep = engine.report();
  // 1 violation over 2 observed of a 4-job window: (1/2)/0.25 = 2.0.
  EXPECT_DOUBLE_EQ(rep.classes[1].window_burn, 2.0);
  EXPECT_TRUE(rep.breaches.empty()) << "no window closed yet";
}

TEST(SloEngine, BreachesForwardToFleetHealthMonitor) {
  monitor::FleetHealthMonitor health(4);
  SloEngine engine(tight_policy(), &health);
  // Two breached windows with different burns: 4/4 -> 4.0, 2/4 -> 2.0.
  for (int i = 0; i < 4; ++i) {
    engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  }
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  engine.observe_job(SloClass::kLatencyBound, 50.0, true);
  engine.observe_job(SloClass::kLatencyBound, 50.0, true);
  const monitor::FleetHealthReport rep = health.report();
  EXPECT_EQ(rep.slo_breaches, 2U);
  EXPECT_DOUBLE_EQ(rep.slo_worst_burn, 4.0);
  EXPECT_NE(rep.to_table_string().find("slo breaches 2"),
            std::string::npos);
}

TEST(SloEngine, CountersReachTheMetricsRegistry) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::MetricsRegistry::global().reset_values();
  SloEngine engine(tight_policy());
  engine.observe_job(SloClass::kLatencyBound, 150.0, true);
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  double jobs = -1.0, violations = -1.0;
  for (const telemetry::CounterSnapshot& c : snap.counters) {
    if (c.name == "slo.jobs.latency_bound") jobs = c.value;
    if (c.name == "slo.violations.latency_bound") violations = c.value;
  }
  EXPECT_DOUBLE_EQ(jobs, 1.0);
  EXPECT_DOUBLE_EQ(violations, 1.0);
}

TEST(SloReport, TableAndJsonlCarryEveryClass) {
  SloEngine engine(tight_policy());
  for (int i = 0; i < 4; ++i) {
    engine.observe_job(SloClass::kBestEffort, 1.0, false);
  }
  const monitor::SloReport rep = engine.report();
  const std::string table = rep.to_table_string();
  EXPECT_NE(table.find("latency_bound"), std::string::npos);
  EXPECT_NE(table.find("throughput_bound"), std::string::npos);
  EXPECT_NE(table.find("best_effort"), std::string::npos);

  const std::string jsonl = rep.to_jsonl();
  std::size_t slo_lines = 0, breach_lines = 0;
  std::string line;
  std::istringstream is(jsonl);
  while (std::getline(is, line)) {
    const auto obj = report::parse_json_line(line);
    ASSERT_TRUE(obj.has_value()) << line;
    const std::string type = obj->at("type").string;
    if (type == "slo") ++slo_lines;
    if (type == "slo_breach") ++breach_lines;
  }
  EXPECT_EQ(slo_lines, monitor::kNumSloClasses);
  EXPECT_EQ(breach_lines, 1U);
}

// ------------------------------------------------- burn from histograms

telemetry::HistogramSnapshot snap_of(telemetry::Histogram& h) {
  telemetry::HistogramSnapshot s;
  s.upper_bounds = h.upper_bounds();
  s.bucket_counts = h.bucket_counts();
  s.count = h.count();
  s.sum = h.sum();
  return s;
}

TEST(BurnFromHistogram, EmptyAndDisabledTargetsAreZero) {
  telemetry::Histogram h({10.0, 100.0});
  EXPECT_DOUBLE_EQ(
      SloEngine::burn_rate_from_histogram(snap_of(h), {50.0, 0.1}), 0.0);
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(
      SloEngine::burn_rate_from_histogram(snap_of(h), {0.0, 0.1}), 0.0);
}

TEST(BurnFromHistogram, InterpolatesInsideTheStraddlingBucket) {
  // 100 observations 1..100, decade buckets; target 75us, budget 10%:
  // fraction above = 0.25, burn = 2.5.
  telemetry::Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  const double burn =
      SloEngine::burn_rate_from_histogram(snap_of(h), {75.0, 0.10});
  EXPECT_NEAR(burn, 2.5, 1e-9);
}

TEST(BurnFromHistogram, AllOverflowCountsAgainstFiniteTargets) {
  telemetry::Histogram h({10.0});
  h.observe(1e6);
  h.observe(1e6);
  // Target below the highest finite bound: both observations violate;
  // fraction 1.0 over a 0.5 budget burns at 2x.
  EXPECT_DOUBLE_EQ(
      SloEngine::burn_rate_from_histogram(snap_of(h), {5.0, 0.5}), 2.0);
  // Target above every finite bound: the overflow bucket's position is
  // unknowable, so it is not attributed.
  EXPECT_DOUBLE_EQ(
      SloEngine::burn_rate_from_histogram(snap_of(h), {100.0, 0.5}), 0.0);
}

}  // namespace
