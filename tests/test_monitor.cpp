// aq_monitor: convergence trackers (stalled vs converged flatness),
// behavioral drift against a calibration baseline, similarity-graph
// introspection and edge churn, and the FleetHealthMonitor riding a real
// DistributedTrainer run through the TrainConfig::monitor hook.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/core/similarity.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/monitor/health.hpp"
#include "arbiterq/monitor/introspect.hpp"
#include "arbiterq/report/jsonl.hpp"
#include "arbiterq/telemetry/sink.hpp"

namespace {

using namespace arbiterq;

/// Behavioral vector whose concatenated form is {base, base, 0, 0}.
core::BehavioralVector bv(double base) {
  core::BehavioralVector v;
  v.contextual = {base, base};
  v.topological = {0.0, 0.0};
  return v;
}

telemetry::EpochQpuRecord epoch_record(int epoch, int qpu, double loss,
                                       bool online = true) {
  telemetry::EpochQpuRecord r;
  r.strategy = "ArbiterQ";
  r.epoch = epoch;
  r.qpu = qpu;
  r.online = online;
  r.loss = loss;
  r.grad_norm = 0.1;
  return r;
}

TEST(ConvergenceTracker, FrozenLossStalls) {
  monitor::ConvergenceTracker t;
  for (int e = 0; e < 12; ++e) t.observe(0.5, 0.01);
  EXPECT_TRUE(t.stalled());
  EXPECT_NEAR(t.loss_ema(), 0.5, 1e-12);
  EXPECT_NEAR(t.relative_improvement(), 0.0, 1e-12);
  EXPECT_GE(t.plateau_length(), 5);
}

TEST(ConvergenceTracker, ConvergedCurveIsNotStalled) {
  // Improves by ~90% then goes flat: flat but *converged*, so healthy.
  monitor::ConvergenceTracker t;
  for (int e = 0; e < 60; ++e) {
    t.observe(0.1 + 0.9 * std::pow(0.6, e), 0.1);
  }
  EXPECT_GE(t.plateau_length(), 5);  // the tail is flat...
  EXPECT_GT(t.relative_improvement(), 0.5);
  EXPECT_FALSE(t.stalled());  // ...but it earned the flatness
}

TEST(ConvergenceTracker, TooFewEpochsNeverStall) {
  monitor::ConvergenceTracker t;
  for (int e = 0; e < 7; ++e) t.observe(0.5, 0.01);
  EXPECT_FALSE(t.stalled());  // min_epochs = 8
}

TEST(Introspect, DegreesGroupsAndIsolation) {
  // Nodes 0 and 1 nearly identical, node 2 far away.
  const std::vector<core::BehavioralVector> vecs = {bv(0.10), bv(0.1001),
                                                    bv(0.20)};
  const core::SimilarityGraph graph(vecs, /*kappa=*/2000.0);
  const auto view = monitor::introspect(graph, /*threshold=*/1e-3);
  EXPECT_EQ(view.n, 3u);
  ASSERT_EQ(view.edges.size(), 1u);
  EXPECT_EQ(view.edges[0], (std::pair<int, int>(0, 1)));
  EXPECT_EQ(view.degree, (std::vector<int>{1, 1, 0}));
  EXPECT_EQ(view.group[0], view.group[1]);
  EXPECT_NE(view.group[0], view.group[2]);
  EXPECT_EQ(view.group_size, (std::vector<int>{2, 2, 1}));
  EXPECT_EQ(view.isolated, (std::vector<int>{2}));
}

TEST(Introspect, EdgeChurnDiffsTheEdgeSets) {
  const auto churn = monitor::edge_churn({{0, 1}, {1, 2}}, {{1, 2}, {2, 3}});
  EXPECT_EQ(churn.added, (std::vector<std::pair<int, int>>{{2, 3}}));
  EXPECT_EQ(churn.removed, (std::vector<std::pair<int, int>>{{0, 1}}));
  EXPECT_EQ(churn.kept, 1u);
  EXPECT_EQ(churn.total_changed(), 2u);
}

TEST(FleetHealth, RejectsEmptyFleetAndIgnoresOutOfRangeRecords) {
  EXPECT_THROW(monitor::FleetHealthMonitor(0), std::invalid_argument);
  monitor::FleetHealthMonitor mon(2);
  mon.on_epoch(epoch_record(0, 5, 0.3));   // beyond the fleet
  mon.on_epoch(epoch_record(0, -1, 0.3));  // nonsense index
  const auto rep = mon.report();
  EXPECT_EQ(rep.qpus[0].epochs, 0);
  EXPECT_EQ(rep.qpus[1].epochs, 0);
}

TEST(FleetHealth, FlagsFrozenQpuAsStalledOnly) {
  monitor::FleetHealthMonitor mon(2);
  for (int e = 0; e < 12; ++e) {
    // QPU 0 improves steadily; QPU 1's loss is frozen.
    mon.on_epoch(epoch_record(e, 0, 0.8 * std::pow(0.7, e)));
    mon.on_epoch(epoch_record(e, 1, 0.62));
  }
  const auto rep = mon.report();
  EXPECT_EQ(rep.qpus[0].status, monitor::QpuStatus::kHealthy);
  EXPECT_EQ(rep.qpus[1].status, monitor::QpuStatus::kStalled);
  EXPECT_EQ(rep.healthy, 1u);
  EXPECT_EQ(rep.stalled, 1u);
  EXPECT_EQ(rep.drifting, 0u);
}

TEST(FleetHealth, FlagsDriftedQpuAgainstBaseline) {
  monitor::FleetHealthMonitor mon(3);
  const std::vector<core::BehavioralVector> baseline = {bv(0.10), bv(0.12),
                                                        bv(0.14)};
  mon.set_baseline(baseline);
  // QPU 1's behavior moves; the others recalibrate onto the baseline.
  std::vector<core::BehavioralVector> drifted = baseline;
  drifted[1] = bv(0.12 + 0.01);
  mon.observe_calibration(drifted);

  const auto rep = mon.report();
  EXPECT_EQ(rep.qpus[0].status, monitor::QpuStatus::kHealthy);
  EXPECT_EQ(rep.qpus[1].status, monitor::QpuStatus::kDrifting);
  EXPECT_EQ(rep.qpus[2].status, monitor::QpuStatus::kHealthy);
  EXPECT_DOUBLE_EQ(
      rep.qpus[1].drift,
      core::behavioral_distance(baseline[1], drifted[1]));
  EXPECT_EQ(rep.drifting, 1u);
}

TEST(FleetHealth, FlagsIsolatedQpuAndTracksChurn) {
  monitor::FleetHealthMonitor mon(3);
  const std::vector<core::BehavioralVector> before = {bv(0.10), bv(0.1001),
                                                      bv(0.20)};
  const core::SimilarityGraph g1(before, 2000.0);
  mon.observe_similarity(g1, 1e-3);
  auto rep = mon.report();
  EXPECT_EQ(rep.qpus[2].status, monitor::QpuStatus::kIsolated);
  EXPECT_EQ(rep.isolated, 1u);

  // After recalibration node 2 joins node 1's neighborhood instead.
  const std::vector<core::BehavioralVector> after = {bv(0.10), bv(0.2001),
                                                     bv(0.20)};
  const core::SimilarityGraph g2(after, 2000.0);
  mon.observe_similarity(g2, 1e-3);
  rep = mon.report();
  EXPECT_EQ(rep.churn.added,
            (std::vector<std::pair<int, int>>{{1, 2}}));
  EXPECT_EQ(rep.churn.removed,
            (std::vector<std::pair<int, int>>{{0, 1}}));
  EXPECT_EQ(rep.qpus[0].status, monitor::QpuStatus::kIsolated);
  EXPECT_EQ(rep.qpus[2].status, monitor::QpuStatus::kHealthy);
}

TEST(FleetHealth, StalledOutranksDriftAndIsolation) {
  monitor::FleetHealthMonitor mon(2);
  mon.set_baseline({bv(0.10), bv(0.12)});
  mon.observe_calibration({bv(0.10), bv(0.20)});  // QPU 1 drifts hard
  for (int e = 0; e < 12; ++e) {
    mon.on_epoch(epoch_record(e, 1, 0.5));  // ...and its loss is frozen
  }
  const auto rep = mon.report();
  EXPECT_EQ(rep.qpus[1].status, monitor::QpuStatus::kStalled);
}

TEST(FleetHealth, CountsOnlineChurnFlips) {
  monitor::FleetHealthMonitor mon(1);
  const bool states[] = {true, false, false, true, false};
  for (int e = 0; e < 5; ++e) {
    mon.on_epoch(epoch_record(e, 0, 0.5, states[e]));
  }
  const auto rep = mon.report();
  EXPECT_EQ(rep.qpus[0].churn_flips, 3);
  EXPECT_FALSE(rep.qpus[0].online);
}

TEST(FleetHealth, ObserveMembershipTracksServingTransitions) {
  monitor::FleetHealthMonitor mon(2);
  // First observation sets the state without counting a flip.
  mon.observe_membership(0, true);
  auto rep = mon.report();
  EXPECT_TRUE(rep.qpus[0].online);
  EXPECT_EQ(rep.qpus[0].churn_flips, 0);

  // online -> offline -> online: two flips; repeating a state is free.
  mon.observe_membership(0, false);
  mon.observe_membership(0, false);
  mon.observe_membership(0, true);
  rep = mon.report();
  EXPECT_TRUE(rep.qpus[0].online);
  EXPECT_EQ(rep.qpus[0].churn_flips, 2);

  // A serving-side dropout flips a QPU the trainer never touched, and
  // mixes with on_epoch's own churn accounting.
  mon.observe_membership(1, false);
  mon.on_epoch(epoch_record(0, 1, 0.5, true));
  rep = mon.report();
  EXPECT_TRUE(rep.qpus[1].online);
  EXPECT_EQ(rep.qpus[1].churn_flips, 1);

  // Out-of-range QPUs are ignored, like on_epoch.
  mon.observe_membership(7, false);
  mon.observe_membership(-1, false);
  EXPECT_EQ(mon.report().qpus.size(), 2U);
}

TEST(FleetHealth, SloBreachesRollUpIntoTheSummary) {
  monitor::FleetHealthMonitor mon(2);
  EXPECT_EQ(mon.report().slo_breaches, 0U);
  mon.observe_slo_breach("latency_bound", 2.5);
  mon.observe_slo_breach("best_effort", 1.25);
  const auto rep = mon.report();
  EXPECT_EQ(rep.slo_breaches, 2U);
  EXPECT_DOUBLE_EQ(rep.slo_worst_burn, 2.5);
  EXPECT_NE(rep.to_table_string().find("slo breaches 2 (worst burn 2.50)"),
            std::string::npos);
  std::istringstream is(rep.to_jsonl());
  std::string line;
  bool saw_summary = false;
  while (std::getline(is, line)) {
    const auto obj = report::parse_json_line(line);
    ASSERT_TRUE(obj.has_value()) << line;
    if (obj->at("type").string == "health_summary") {
      saw_summary = true;
      EXPECT_DOUBLE_EQ(obj->at("slo_breaches").number, 2.0);
      EXPECT_DOUBLE_EQ(obj->at("slo_worst_burn").number, 2.5);
    }
  }
  EXPECT_TRUE(saw_summary);
}

TEST(FleetHealth, TableAndJsonlCarryTheReport) {
  monitor::FleetHealthMonitor mon(2);
  for (int e = 0; e < 12; ++e) {
    mon.on_epoch(epoch_record(e, 0, 0.8 * std::pow(0.7, e)));
    mon.on_epoch(epoch_record(e, 1, 0.62));
  }
  const auto rep = mon.report();
  const std::string table = rep.to_table_string();
  EXPECT_NE(table.find("stalled"), std::string::npos);
  EXPECT_NE(table.find("healthy"), std::string::npos);
  EXPECT_NE(table.find("1 healthy, 0 drifting, 1 stalled"),
            std::string::npos);

  std::istringstream is(rep.to_jsonl());
  std::string line;
  int health_lines = 0, summary_lines = 0;
  while (std::getline(is, line)) {
    const auto obj = report::parse_json_line(line);
    ASSERT_TRUE(obj.has_value()) << line;
    const std::string type = obj->at("type").string;
    if (type == "health") {
      ++health_lines;
      if (obj->at("qpu").number == 1.0) {
        EXPECT_EQ(obj->at("status").string, "stalled");
        EXPECT_DOUBLE_EQ(obj->at("loss").number, 0.62);
      }
    } else if (type == "health_summary") {
      ++summary_lines;
      EXPECT_DOUBLE_EQ(obj->at("stalled").number, 1.0);
    }
  }
  EXPECT_EQ(health_lines, 2);
  EXPECT_EQ(summary_lines, 1);
}

TEST(FleetHealth, RidesTrainerThroughConfigHookWithoutPerturbing) {
  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 7);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);
  core::TrainConfig cfg;
  cfg.epochs = 4;

  monitor::FleetHealthMonitor mon(3);
  cfg.monitor = &mon;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(3, bc.num_qubits), cfg);
  mon.set_baseline(trainer.behavioral_vectors());
  mon.observe_similarity(trainer.similarity(), cfg.distance_threshold);
  const auto result = trainer.train(core::Strategy::kArbiterQ, split);

  const auto rep = mon.report();
  ASSERT_EQ(rep.qpus.size(), 3u);
  for (const auto& h : rep.qpus) {
    EXPECT_EQ(h.epochs, 4);
    EXPECT_TRUE(std::isfinite(h.loss));
    EXPECT_GE(h.group, 0);
  }
  // Baseline == current vectors, so nothing can read as drifted.
  EXPECT_EQ(rep.drifting, 0u);

  // The hook is observational: an unmonitored trainer reproduces the
  // exact loss curve.
  core::TrainConfig plain_cfg = cfg;
  plain_cfg.monitor = nullptr;
  const core::DistributedTrainer plain(
      model, device::table3_fleet_subset(3, bc.num_qubits), plain_cfg);
  const auto plain_result = plain.train(core::Strategy::kArbiterQ, split);
  EXPECT_EQ(plain_result.epoch_test_loss, result.epoch_test_loss);

  // And it sees the same records a train()-argument sink would.
  telemetry::RecordingTelemetry rec;
  (void)plain.train(core::Strategy::kArbiterQ, split, &rec);
  EXPECT_EQ(rec.epochs.size(), 4u * 3u);
}

}  // namespace
