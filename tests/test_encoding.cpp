#include "arbiterq/qnn/encoding.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace arbiterq::qnn {
namespace {

TEST(FeatureScaler, MapsTrainingRangeToZeroPi) {
  const FeatureScaler s({{0.0, -2.0}, {10.0, 2.0}, {5.0, 0.0}});
  const auto lo = s.transform({0.0, -2.0});
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(lo[1], 0.0);
  const auto hi = s.transform({10.0, 2.0});
  EXPECT_DOUBLE_EQ(hi[0], std::numbers::pi);
  EXPECT_DOUBLE_EQ(hi[1], std::numbers::pi);
  const auto mid = s.transform({5.0, 0.0});
  EXPECT_NEAR(mid[0], std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(mid[1], std::numbers::pi / 2, 1e-12);
}

TEST(FeatureScaler, ClampsOutOfRange) {
  const FeatureScaler s({{0.0}, {1.0}});
  EXPECT_DOUBLE_EQ(s.transform({-5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.transform({9.0})[0], std::numbers::pi);
}

TEST(FeatureScaler, ConstantDimensionMapsToMidpoint) {
  const FeatureScaler s({{3.0, 0.0}, {3.0, 1.0}});
  EXPECT_NEAR(s.transform({3.0, 0.5})[0], std::numbers::pi / 2, 1e-12);
}

TEST(FeatureScaler, Validation) {
  EXPECT_THROW(FeatureScaler({}), std::invalid_argument);
  EXPECT_THROW(FeatureScaler({{1.0}, {1.0, 2.0}}), std::invalid_argument);
  const FeatureScaler s({{0.0}, {1.0}});
  EXPECT_THROW(s.transform({0.0, 1.0}), std::invalid_argument);
}

TEST(FeatureScaler, TransformAllAndDim) {
  const FeatureScaler s({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_EQ(s.dim(), 2U);
  const auto all = s.transform_all({{1.0, 2.0}, {2.0, 0.0}});
  ASSERT_EQ(all.size(), 2U);
  EXPECT_NEAR(all[0][0], std::numbers::pi / 2, 1e-12);
  EXPECT_DOUBLE_EQ(all[1][1], 0.0);
}

}  // namespace
}  // namespace arbiterq::qnn
