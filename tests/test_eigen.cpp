#include "arbiterq/math/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::math {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = m(j, i) = rng.uniform(-1.0, 1.0);
    }
  }
  return m;
}

TEST(Eigen, DiagonalMatrix) {
  Matrix d{{3.0, 0.0}, {0.0, -1.0}};
  const EigenResult r = eigen_symmetric(d);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], -1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const EigenResult r = eigen_symmetric(m);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Eigen, ValuesSortedDescending) {
  Rng rng(7);
  const Matrix m = random_symmetric(8, rng);
  const EigenResult r = eigen_symmetric(m);
  for (std::size_t k = 1; k < r.values.size(); ++k) {
    EXPECT_GE(r.values[k - 1], r.values[k] - 1e-12);
  }
}

TEST(Eigen, NonSymmetricThrows) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(eigen_symmetric(m), std::invalid_argument);
}

TEST(Eigen, TraceEqualsSumOfEigenvalues) {
  Rng rng(11);
  const Matrix m = random_symmetric(6, rng);
  const EigenResult r = eigen_symmetric(m);
  double trace = 0.0;
  for (std::size_t i = 0; i < 6; ++i) trace += m(i, i);
  double sum = 0.0;
  for (double v : r.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, EigenEquationHolds) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, rng);
  const EigenResult r = eigen_symmetric(m);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = r.vectors(i, k);
    const auto mv = m.apply(v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mv[i], r.values[k] * v[i], 1e-8)
          << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST_P(EigenProperty, EigenvectorsOrthonormal) {
  Rng rng(200 + GetParam());
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, rng);
  const EigenResult r = eigen_symmetric(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += r.vectors(i, a) * r.vectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST_P(EigenProperty, ReconstructsMatrix) {
  Rng rng(300 + GetParam());
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, rng);
  const EigenResult r = eigen_symmetric(m);
  // M = V diag(lambda) V^T.
  Matrix reconstructed(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += r.vectors(i, k) * r.values[k] * r.vectors(j, k);
      }
      reconstructed(i, j) = acc;
    }
  }
  EXPECT_LT(Matrix::max_abs_diff(m, reconstructed), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values<std::size_t>(2, 3, 5, 8, 12, 20));

}  // namespace
}  // namespace arbiterq::math
