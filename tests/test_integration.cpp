// End-to-end integration: the full ArbiterQ pipeline — synthetic data,
// PCA + angle encoding, per-device compilation, behavioral vectors,
// similarity-aware training, torus construction and shot-oriented
// inference — on a small fleet, asserting the cross-module invariants
// hold together.

#include <gtest/gtest.h>

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq {
namespace {

TEST(Integration, FullPipelineIrisOnFiveQpus) {
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  const qnn::QnnModel model(qnn::Backbone::kCRx, 2, 2);

  core::TrainConfig cfg;
  cfg.epochs = 20;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(5, 2), cfg);

  // 1. Behavioral vectors exist for every device and have equal lengths.
  const auto& bvs = trainer.behavioral_vectors();
  ASSERT_EQ(bvs.size(), 5U);
  for (const auto& bv : bvs) {
    EXPECT_EQ(bv.length(), model.circuit().size());
  }

  // 2. Training converges and personalizes.
  const core::TrainResult result =
      trainer.train(core::Strategy::kArbiterQ, split);
  EXPECT_LT(result.epoch_test_loss.back(), result.epoch_test_loss.front());

  // 3. Torus partition covers the fleet.
  const auto partition =
      core::build_torus_partition(bvs, result.weights);
  std::size_t covered = 0;
  for (const auto& t : partition.tori) covered += t.size();
  EXPECT_EQ(covered, 5U);

  // 4. Shot-oriented inference runs and beats random guessing (MSE of a
  //    coin flip on balanced labels = 0.25).
  core::ScheduleConfig sc;
  sc.shots_per_task = 128;
  sc.warmup_shots = 16;
  sc.trajectories = 8;
  const core::ShotOrientedScheduler scheduler(
      trainer.executors(), result.weights, partition, sc);
  const auto tasks =
      core::make_tasks(split.test_features, split.test_labels);
  const auto report = scheduler.run(tasks);
  EXPECT_LT(report.mean_loss, 0.25);

  // 5. Workload is spread across devices.
  int busy_devices = 0;
  for (double b : report.qpu_busy_us) {
    if (b > 0.0) ++busy_devices;
  }
  EXPECT_EQ(busy_devices, 5);
}

TEST(Integration, WukongTilesTrainFigure6Style) {
  // Fig. 6 setting: a 2-qubit U3/CZ model on four tiles cut from the
  // wukong-like chip.
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);
  core::TrainConfig cfg;
  cfg.epochs = 40;
  const core::DistributedTrainer trainer(model, device::wukong_tiles(),
                                         cfg);
  const core::TrainResult arbiter =
      trainer.train(core::Strategy::kArbiterQ, split);
  const core::TrainResult sharing =
      trainer.train(core::Strategy::kAllSharing, split);
  EXPECT_LT(arbiter.epoch_test_loss.back(),
            arbiter.epoch_test_loss.front());
  // Fig. 6 headline: personalized training ends clearly below the
  // unified-weights baseline on the heterogeneous tiles.
  EXPECT_LT(arbiter.convergence.loss, sharing.convergence.loss);
}

TEST(Integration, BackbonesBothSupportFullFlow) {
  const data::EncodedSplit split = data::prepare_case({"wine", 4, 2});
  for (qnn::Backbone b : {qnn::Backbone::kCRz, qnn::Backbone::kCRx}) {
    const qnn::QnnModel model(b, 4, 2);
    core::TrainConfig cfg;
    cfg.epochs = 6;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet_subset(3, 4), cfg);
    const core::TrainResult r =
        trainer.train(core::Strategy::kArbiterQ, split);
    EXPECT_EQ(r.weights.size(), 3U);
    EXPECT_EQ(r.epoch_test_loss.size(), 6U);
  }
}

}  // namespace
}  // namespace arbiterq
