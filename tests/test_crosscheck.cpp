// Cross-engine property suite: for random parameterized circuits, the
// dense unitary oracle, the state-vector engine (raw and gate-fused
// paths), the density-matrix engine and the transpile/optimize pipeline
// must all tell the same story.

#include <gtest/gtest.h>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/density_matrix.hpp"
#include "arbiterq/sim/observables.hpp"
#include "arbiterq/sim/simulator.hpp"
#include "arbiterq/transpile/optimize.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

Circuit random_circuit(int qubits, int gates, int params, math::Rng& rng) {
  Circuit c(qubits, params);
  for (int i = 0; i < gates; ++i) {
    const int a = static_cast<int>(rng.uniform_int(qubits));
    int b = static_cast<int>(rng.uniform_int(qubits));
    if (b == a) b = (a + 1) % qubits;
    switch (rng.uniform_int(7)) {
      case 0:
        c.h(a);
        break;
      case 1:
        c.sx(a);
        break;
      case 2:
        c.rx(a, ParamExpr::ref(static_cast<int>(rng.uniform_int(params))));
        break;
      case 3:
        c.ry(a, ParamExpr::ref(static_cast<int>(rng.uniform_int(params)),
                               rng.uniform(0.5, 1.5)));
        break;
      case 4:
        c.cx(a, b);
        break;
      case 5:
        c.crz(a, b,
              ParamExpr::ref(static_cast<int>(rng.uniform_int(params))));
        break;
      default:
        c.cz(a, b);
        break;
    }
  }
  return c;
}

std::vector<double> random_values(int n, math::Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(n));
  for (double& v : p) v = rng.uniform(-2.0, 2.0);
  return p;
}

class CrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(CrossCheck, StatevectorMatchesUnitaryColumn) {
  math::Rng rng(1000 + GetParam());
  const Circuit c = random_circuit(3, 15, 4, rng);
  const auto params = random_values(4, rng);
  sim::StatevectorSimulator sim;
  const auto sv = sim.run_ideal(c, params);
  const auto u = circuit::circuit_unitary(c, params);
  const std::size_t dim = sv.dim();
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitudes()[i] - u[i * dim + 0]), 0.0, 1e-10);
  }
}

TEST_P(CrossCheck, FusedForwardMatchesRawForward) {
  math::Rng rng(2000 + GetParam());
  const Circuit c = random_circuit(4, 25, 5, rng);
  const auto params = random_values(5, rng);
  sim::StatevectorSimulator sim;  // noiseless: fused path vs raw path
  const auto raw = sim.run_ideal(c, params);
  const auto fused = sim.run_biased(c, params);
  for (std::size_t i = 0; i < raw.dim(); ++i) {
    EXPECT_NEAR(std::abs(raw.amplitudes()[i] - fused.amplitudes()[i]), 0.0,
                1e-10);
  }
}

TEST_P(CrossCheck, DensityMatrixMatchesStatevectorObservables) {
  math::Rng rng(3000 + GetParam());
  const Circuit c = random_circuit(3, 12, 3, rng);
  const auto params = random_values(3, rng);
  sim::Statevector sv(3);
  sim::DensityMatrix rho(3);
  for (const auto& g : c.gates()) {
    sv.apply_gate(g, params);
    rho.apply_gate(g, params);
  }
  for (const char* obs : {"ZII", "IZI", "IIZ", "XXI", "ZYX"}) {
    const auto p = circuit::PauliString::parse(obs);
    EXPECT_NEAR(sim::expectation(sv, p), sim::expectation(rho, p), 1e-9)
        << obs;
  }
}

TEST_P(CrossCheck, CompileOptimizePipelinePreservesSemantics) {
  math::Rng rng(4000 + GetParam());
  const Circuit c = random_circuit(3, 14, 4, rng);
  const auto params = random_values(4, rng);
  const auto fleet = device::table3_fleet(3);
  const auto& dev = fleet[static_cast<std::size_t>(GetParam()) %
                          fleet.size()];
  const auto compiled = transpile::compile(c, dev);
  const auto optimized = transpile::optimize(compiled.executable);

  // Readout comparison: <Z> on the measured qubit is permutation-aware,
  // so simulate both native circuits and compare directly.
  sim::StatevectorSimulator sim;
  const int readout = compiled.measure_qubit(0);
  const double z_exec =
      sim.run_ideal(compiled.executable, params).expectation_z(readout);
  const double z_opt =
      sim.run_ideal(optimized, params).expectation_z(readout);
  const double z_orig = sim.run_ideal(c, params).expectation_z(0);
  EXPECT_NEAR(z_exec, z_orig, 1e-9);
  EXPECT_NEAR(z_opt, z_orig, 1e-9);
}

TEST_P(CrossCheck, TrajectoriesWithoutErrorsMatchExact) {
  math::Rng rng(5000 + GetParam());
  const Circuit c = random_circuit(3, 10, 3, rng);
  const auto params = random_values(3, rng);
  // Noise model with only coherent biases: trajectories are then
  // deterministic and must equal the exact biased run.
  sim::NoiseModel noise(3);
  for (int q = 0; q < 3; ++q) noise.set_coherent_bias(q, 0.1 * (q + 1));
  sim::StatevectorSimulator sim(noise);
  math::Rng shot_rng(9);
  sim::ShotOptions opts;
  opts.shots = 50000;
  opts.trajectories = 1;
  const double sampled =
      sim.sampled_probability_of_one(c, params, 0, opts, shot_rng);
  const double exact = sim.probability_of_one(c, params, 0);
  EXPECT_NEAR(sampled, exact, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck, ::testing::Range(0, 10));

}  // namespace
}  // namespace arbiterq
