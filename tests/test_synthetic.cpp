#include "arbiterq/data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/stats.hpp"

namespace arbiterq::data {
namespace {

struct Shape {
  const char* name;
  Dataset (*make)(std::uint64_t);
  std::size_t samples;
  std::size_t features;
};

class Table2Shapes : public ::testing::TestWithParam<Shape> {};

TEST_P(Table2Shapes, MatchesPaperDimensions) {
  const Shape s = GetParam();
  const Dataset d = s.make(1);
  EXPECT_EQ(d.size(), s.samples);
  EXPECT_EQ(d.num_features(), s.features);
  EXPECT_NO_THROW(d.validate());
}

TEST_P(Table2Shapes, BalancedClasses) {
  const Shape s = GetParam();
  const Dataset d = s.make(1);
  std::size_t ones = 0;
  for (int l : d.labels) ones += static_cast<std::size_t>(l);
  EXPECT_NEAR(static_cast<double>(ones), d.size() / 2.0, 1.0);
}

TEST_P(Table2Shapes, DeterministicPerSeed) {
  const Shape s = GetParam();
  const Dataset a = s.make(3);
  const Dataset b = s.make(3);
  EXPECT_EQ(a.samples, b.samples);
  const Dataset c = s.make(4);
  EXPECT_NE(a.samples, c.samples);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2Shapes,
    ::testing::Values(Shape{"iris", iris_like, 100, 4},
                      Shape{"wine", wine_like, 114, 13},
                      Shape{"mnist", mnist_like, 100, 64},
                      Shape{"hmdb51", hmdb51_like, 100, 108}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return info.param.name;
    });

TEST(Synthetic, SpecValidation) {
  SyntheticSpec bad;
  bad.num_samples = 1;
  EXPECT_THROW(make_synthetic(bad), std::invalid_argument);
  bad = SyntheticSpec{};
  bad.num_features = 0;
  EXPECT_THROW(make_synthetic(bad), std::invalid_argument);
}

TEST(Synthetic, SeparationControlsClassDistance) {
  SyntheticSpec close;
  close.name = "close";
  close.num_samples = 400;
  close.num_features = 4;
  close.separation = 0.2;
  close.noise_dims_fraction = 0.0;
  SyntheticSpec far = close;
  far.name = "close";  // same name so the rng stream matches
  far.separation = 4.0;

  auto centroid_gap = [](const Dataset& d) {
    std::vector<double> c0(d.num_features(), 0.0);
    std::vector<double> c1(d.num_features(), 0.0);
    double n0 = 0.0;
    double n1 = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      auto& c = d.labels[i] == 0 ? c0 : c1;
      (d.labels[i] == 0 ? n0 : n1) += 1.0;
      for (std::size_t k = 0; k < d.num_features(); ++k) {
        c[k] += d.samples[i][k];
      }
    }
    for (auto& v : c0) v /= n0;
    for (auto& v : c1) v /= n1;
    return math::l2_distance(c0, c1);
  };
  EXPECT_GT(centroid_gap(make_synthetic(far)),
            3.0 * centroid_gap(make_synthetic(close)));
}

TEST(Synthetic, NoiseDimensionsCarryNoSignal) {
  SyntheticSpec spec;
  spec.name = "noisy";
  spec.num_samples = 1000;
  spec.num_features = 4;
  spec.separation = 3.0;
  spec.noise_dims_fraction = 0.5;  // last 2 dims are noise
  const Dataset d = make_synthetic(spec);
  // Mean difference per class should be large on dim 0, ~zero on dim 3.
  double m0[2] = {0.0, 0.0};
  double m3[2] = {0.0, 0.0};
  double n[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < d.size(); ++i) {
    const int l = d.labels[i];
    m0[l] += d.samples[i][0];
    m3[l] += d.samples[i][3];
    n[l] += 1.0;
  }
  const double gap0 = std::abs(m0[0] / n[0] - m0[1] / n[1]);
  const double gap3 = std::abs(m3[0] / n[0] - m3[1] / n[1]);
  EXPECT_GT(gap0, 5.0 * gap3);
}

}  // namespace
}  // namespace arbiterq::data
