#include "arbiterq/transpile/state_prep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::transpile {
namespace {

sim::Statevector run(const circuit::Circuit& c) {
  sim::Statevector sv(c.num_qubits());
  for (const auto& g : c.gates()) sv.apply_gate(g, {});
  return sv;
}

void expect_prepares(const std::vector<double>& amplitudes) {
  const circuit::Circuit c = prepare_real_state(amplitudes);
  const sim::Statevector sv = run(c);
  double norm = 0.0;
  for (double a : amplitudes) norm += a * a;
  const double inv = 1.0 / std::sqrt(norm);
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    EXPECT_NEAR(sv.amplitudes()[i].real(), amplitudes[i] * inv, 1e-10)
        << "index " << i;
    EXPECT_NEAR(sv.amplitudes()[i].imag(), 0.0, 1e-10) << "index " << i;
  }
}

TEST(StatePrep, Validation) {
  EXPECT_THROW(prepare_real_state({1.0}), std::invalid_argument);
  EXPECT_THROW(prepare_real_state({1.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(prepare_real_state({0.0, 0.0}), std::invalid_argument);
}

TEST(StatePrep, SingleQubitStates) {
  expect_prepares({1.0, 0.0});
  expect_prepares({0.0, 1.0});
  expect_prepares({1.0, 1.0});
  expect_prepares({0.6, -0.8});
  expect_prepares({-0.28, 0.96});
}

TEST(StatePrep, UniformSuperpositions) {
  expect_prepares({1.0, 1.0, 1.0, 1.0});
  expect_prepares({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
}

TEST(StatePrep, BasisStates) {
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<double> a(8, 0.0);
    a[i] = 1.0;
    expect_prepares(a);
  }
}

TEST(StatePrep, SignedAndSparseStates) {
  expect_prepares({0.5, -0.5, 0.5, -0.5});
  expect_prepares({0.0, 0.6, 0.0, -0.8});
  expect_prepares({0.9, 0.0, 0.0, 0.1, 0.0, 0.0, -0.3, 0.0});
}

class StatePrepRandom : public ::testing::TestWithParam<int> {};

TEST_P(StatePrepRandom, RandomRealStates) {
  math::Rng rng(1300 + GetParam());
  const int n = 2 + GetParam() % 4;  // 2..5 qubits
  std::vector<double> a(std::size_t{1} << n);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  expect_prepares(a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatePrepRandom, ::testing::Range(0, 12));

TEST(StatePrep, GateBudgetIsMultiplexorSized) {
  // The recursive multiplexor at level k emits 2^k RY and 2^(k+1)-2 CX,
  // so an n-qubit preparation uses exactly 3*2^n - 2n - 3 gates.
  for (int n : {2, 3, 4, 5}) {
    std::vector<double> a(std::size_t{1} << n, 1.0);
    const auto c = prepare_real_state(a);
    EXPECT_EQ(c.size(), 3U * (std::size_t{1} << n) -
                            2U * static_cast<std::size_t>(n) - 3U)
        << n << " qubits";
  }
}

TEST(AmplitudeEncode, PadsAndNormalizes) {
  const auto v = amplitude_encode({3.0, 4.0, 0.0});
  ASSERT_EQ(v.size(), 4U);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
  EXPECT_THROW(amplitude_encode({}), std::invalid_argument);
  EXPECT_THROW(amplitude_encode({0.0, 0.0}), std::invalid_argument);
}

TEST(AmplitudeEncode, EndToEndWithStatePrep) {
  const auto v = amplitude_encode({1.0, 2.0, 3.0, 4.0, 5.0});
  ASSERT_EQ(v.size(), 8U);
  expect_prepares(v);
}

}  // namespace
}  // namespace arbiterq::transpile
