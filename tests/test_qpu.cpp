#include "arbiterq/device/qpu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/device/presets.hpp"

namespace arbiterq::device {
namespace {

QpuSpec basic_spec() {
  QpuSpec s;
  s.name = "test-qpu";
  s.id = 1;
  s.topology = Topology::line(4);
  s.infidelity_1q = 3e-4;
  s.infidelity_2q = 5e-3;
  s.t1_us = 150.0;
  s.t2_us = 60.0;
  s.noise_seed = 99;
  return s;
}

TEST(Qpu, SpecValidation) {
  QpuSpec bad = basic_spec();
  bad.infidelity_1q = -0.1;
  EXPECT_THROW(Qpu{bad}, std::invalid_argument);
  bad = basic_spec();
  bad.t1_us = 0.0;
  EXPECT_THROW(Qpu{bad}, std::invalid_argument);
  bad = basic_spec();
  bad.infidelity_2q = 1.0;
  EXPECT_THROW(Qpu{bad}, std::invalid_argument);
}

TEST(Qpu, CalibrationSpreadWithinBounds) {
  const Qpu q(basic_spec());
  for (int i = 0; i < q.num_qubits(); ++i) {
    const double infid = 1.0 - q.fidelity_1q(i);
    EXPECT_GE(infid, 3e-4 * 0.8 - 1e-12);
    EXPECT_LE(infid, 3e-4 * 1.2 + 1e-12);
    EXPECT_GE(q.readout_error(i), 0.0);
    EXPECT_LE(q.readout_error(i), 0.5);
  }
  for (const auto& [a, b] : q.topology().edges()) {
    const double infid = 1.0 - q.fidelity_2q(a, b);
    EXPECT_GE(infid, 5e-3 * 0.8 - 1e-12);
    EXPECT_LE(infid, 5e-3 * 1.2 + 1e-12);
    EXPECT_DOUBLE_EQ(q.fidelity_2q(a, b), q.fidelity_2q(b, a));
  }
}

TEST(Qpu, CalibrationDeterministicPerSeed) {
  const Qpu a(basic_spec());
  const Qpu b(basic_spec());
  EXPECT_DOUBLE_EQ(a.fidelity_1q(2), b.fidelity_1q(2));
  QpuSpec other = basic_spec();
  other.noise_seed = 100;
  const Qpu c(other);
  EXPECT_NE(a.fidelity_1q(2), c.fidelity_1q(2));
}

TEST(Qpu, GateDurations) {
  const Qpu q(basic_spec());
  EXPECT_DOUBLE_EQ(q.gate_duration_ns(circuit::GateKind::kI), 0.0);
  EXPECT_DOUBLE_EQ(q.gate_duration_ns(circuit::GateKind::kSX), 30.0);
  EXPECT_DOUBLE_EQ(q.gate_duration_ns(circuit::GateKind::kCX), 200.0);
  EXPECT_DOUBLE_EQ(q.gate_duration_ns(circuit::GateKind::kSwap), 600.0);
}

TEST(Qpu, GateErrorFormula) {
  const Qpu q(basic_spec());
  circuit::Gate g;
  g.kind = circuit::GateKind::kRY;
  g.qubits = {1, 0};
  // e = 1 - exp(-t/T1) * f with t = 30ns = 0.03us.
  const double expect =
      1.0 - std::exp(-0.03 / 150.0) * q.fidelity_1q(1);
  EXPECT_NEAR(q.gate_error(g), expect, 1e-12);

  circuit::Gate cx;
  cx.kind = circuit::GateKind::kCX;
  cx.qubits = {1, 2};
  const double e2 = 1.0 - std::exp(-0.2 / 60.0) * q.fidelity_2q(1, 2);
  EXPECT_NEAR(q.gate_error(cx), e2, 1e-12);

  circuit::Gate sw;
  sw.kind = circuit::GateKind::kSwap;
  sw.qubits = {1, 2};
  EXPECT_NEAR(q.gate_error(sw), 1.0 - std::pow(1.0 - e2, 3.0), 1e-12);

  circuit::Gate id;
  id.kind = circuit::GateKind::kI;
  id.qubits = {0, 0};
  EXPECT_DOUBLE_EQ(q.gate_error(id), 0.0);
}

TEST(Qpu, ShotLatencyAndRate) {
  const Qpu q(basic_spec());
  const double lat = q.shot_latency_us(10);
  EXPECT_GT(lat, q.spec().delay_us);
  EXPECT_NEAR(q.shot_rate(10), 1e6 / lat, 1e-9);
  EXPECT_GT(q.shot_latency_us(100), q.shot_latency_us(10));
}

TEST(Qpu, NoiseModelPopulatedOnEdges) {
  const Qpu q(basic_spec());
  const sim::NoiseModel m = q.make_noise_model();
  EXPECT_TRUE(m.enabled());
  EXPECT_GT(m.depolarizing_1q(0), 0.0);
  EXPECT_GT(m.depolarizing_2q(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.depolarizing_2q(0, 2), 0.0);  // not an edge
  EXPECT_GT(m.readout_p01(0), 0.0);
}

TEST(Qpu, SubdeviceInheritsCalibration) {
  const Qpu q(basic_spec());
  const Qpu sub = q.subdevice({1, 2}, "tile", 7);
  EXPECT_EQ(sub.num_qubits(), 2);
  EXPECT_EQ(sub.name(), "tile");
  EXPECT_EQ(sub.id(), 7);
  EXPECT_DOUBLE_EQ(sub.fidelity_1q(0), q.fidelity_1q(1));
  EXPECT_DOUBLE_EQ(sub.fidelity_1q(1), q.fidelity_1q(2));
  EXPECT_DOUBLE_EQ(sub.coherent_bias(0), q.coherent_bias(1));
  EXPECT_DOUBLE_EQ(sub.fidelity_2q(0, 1), q.fidelity_2q(1, 2));
  EXPECT_TRUE(sub.topology().connected(0, 1));
}

TEST(Qpu, AverageErrorPositiveAndOrdersDevices) {
  QpuSpec clean = basic_spec();
  clean.infidelity_1q = 1e-4;
  clean.infidelity_2q = 1e-3;
  QpuSpec dirty = basic_spec();
  dirty.infidelity_1q = 9e-4;
  dirty.infidelity_2q = 9e-3;
  EXPECT_LT(Qpu(clean).average_error(), Qpu(dirty).average_error());
}

TEST(Presets, Table3FleetMatchesPaper) {
  const auto fleet = table3_fleet(10);
  ASSERT_EQ(fleet.size(), 10U);
  // Spot-check the printed Table III values.
  EXPECT_DOUBLE_EQ(fleet[0].spec().infidelity_1q, 2.36e-4);
  EXPECT_DOUBLE_EQ(fleet[2].spec().infidelity_2q, 4.81e-3);
  EXPECT_DOUBLE_EQ(fleet[2].spec().t1_us, 349.0);
  EXPECT_DOUBLE_EQ(fleet[9].spec().t2_us, 38.6);
  for (const auto& q : fleet) {
    EXPECT_GE(q.num_qubits(), 10);
    EXPECT_TRUE(q.topology().is_connected_graph());
    EXPECT_EQ(q.basis(), BasisSet::kIbm);
  }
}

TEST(Presets, Table3SubsetAndValidation) {
  EXPECT_EQ(table3_fleet_subset(3, 4).size(), 3U);
  EXPECT_THROW(table3_fleet_subset(0, 4), std::invalid_argument);
  EXPECT_THROW(table3_fleet_subset(11, 4), std::invalid_argument);
  EXPECT_THROW(table3_fleet_subset(3, 1), std::invalid_argument);
}

TEST(Presets, WukongChip) {
  const Qpu w = origin_wukong();
  EXPECT_EQ(w.num_qubits(), 72);
  EXPECT_EQ(w.basis(), BasisSet::kOrigin);
  EXPECT_NEAR(w.spec().infidelity_1q, 0.0028, 1e-10);
  EXPECT_NEAR(w.spec().infidelity_2q, 0.0414, 1e-10);
  EXPECT_TRUE(w.topology().is_connected_graph());
}

TEST(Presets, WukongTilesAreDisjointTwoQubitDevices) {
  const auto tiles = wukong_tiles();
  ASSERT_EQ(tiles.size(), 4U);
  for (const auto& t : tiles) {
    EXPECT_EQ(t.num_qubits(), 2);
    EXPECT_TRUE(t.topology().connected(0, 1));
    EXPECT_EQ(t.basis(), BasisSet::kOrigin);
  }
  // Tiles must differ in calibration (different chip regions).
  EXPECT_NE(tiles[0].fidelity_1q(0), tiles[3].fidelity_1q(0));
}

TEST(Presets, BasisNames) {
  EXPECT_EQ(basis_name(BasisSet::kIbm), "{rz,sx,x,cx}");
  EXPECT_EQ(basis_name(BasisSet::kOrigin), "{u3,cz}");
}

}  // namespace
}  // namespace arbiterq::device
