#include "arbiterq/math/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arbiterq/math/stats.hpp"

namespace arbiterq::math {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng root(7);
  Rng a = root.split("stream-a");
  Rng a2 = Rng(7).split("stream-a");
  Rng b = root.split("stream-b");
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  // Different labels give different streams.
  Rng a3 = Rng(7).split("stream-a");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7U);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  std::vector<double> xs(40000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(19);
  std::vector<double> xs(40000);
  for (double& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NumericSplitMatchesRepeatedCall) {
  Rng root(31);
  EXPECT_EQ(root.split(99).next_u64(), Rng(31).split(99).next_u64());
}

}  // namespace
}  // namespace arbiterq::math
