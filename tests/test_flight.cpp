// FlightRecorder: ring bounds and eviction, JSONL shape (parse_json_line
// round trip), byte-identical dumps across reruns, and the integration
// path — a serving run whose deadline-missed jobs all leave reconstructible
// postmortems.

#include "arbiterq/serve/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/report/jsonl.hpp"
#include "arbiterq/serve/runtime.hpp"

namespace arbiterq::serve {
namespace {

FlightRecord make_record(std::uint64_t job) {
  FlightRecord r;
  r.job = job;
  r.tenant = "t";
  r.slo_class = "best_effort";
  r.status = "expired";
  r.events.push_back({FlightEventKind::kRoute, -1, 0, -1, 0.0, 1.0});
  r.events.push_back({FlightEventKind::kExpire, 0, 0, 3, 42.5, 0.0});
  return r;
}

TEST(FlightRecorder, KindNamesCoverEveryEvent) {
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kRoute), "route");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kReject), "reject");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kExecute), "execute");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kDropoutFault),
            "dropout_fault");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kTransientFault),
            "transient_fault");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kLatencySpike),
            "latency_spike");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kBackoff), "backoff");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kReroute), "reroute");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kExpire), "expire");
  EXPECT_EQ(flight_event_kind_name(FlightEventKind::kRetriesExhausted),
            "retries_exhausted");
}

TEST(FlightRecorder, ZeroCapacityThrows) {
  EXPECT_THROW(FlightRecorder(0), std::invalid_argument);
}

TEST(FlightRecorder, RingEvictsOldestAndCountsDrops) {
  FlightRecorder rec(2);
  rec.record(make_record(10));
  rec.record(make_record(11));
  rec.record(make_record(12));
  EXPECT_EQ(rec.size(), 2U);
  EXPECT_EQ(rec.total_recorded(), 3U);
  EXPECT_EQ(rec.dropped(), 1U);
  const std::vector<FlightRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2U);
  EXPECT_EQ(snap[0].job, 11U);  // oldest (10) evicted
  EXPECT_EQ(snap[1].job, 12U);
}

TEST(FlightRecorder, JsonlIsSortedByJobAndParses) {
  FlightRecorder rec(8);
  // Recorded out of job order (completion order is schedule-dependent).
  rec.record(make_record(7));
  rec.record(make_record(3));
  rec.record(make_record(5));
  const std::string jsonl = rec.to_jsonl();
  std::istringstream is(jsonl);
  std::string line;
  std::vector<std::uint64_t> jobs;
  while (std::getline(is, line)) {
    const auto obj = report::parse_json_line(line);
    ASSERT_TRUE(obj.has_value()) << line;
    EXPECT_EQ(obj->at("type").string, "flight");
    jobs.push_back(static_cast<std::uint64_t>(obj->at("job").number));
    // Parallel event arrays agree in length.
    const std::size_t n = obj->at("ev_kind").array.size();
    EXPECT_EQ(obj->at("ev_slot").array.size(), n);
    EXPECT_EQ(obj->at("ev_attempt").array.size(), n);
    EXPECT_EQ(obj->at("ev_qpu").array.size(), n);
    EXPECT_EQ(obj->at("ev_vus").array.size(), n);
    EXPECT_EQ(obj->at("ev_value").array.size(), n);
    EXPECT_EQ(obj->at("ev_kind").array[0].string, "route");
  }
  EXPECT_EQ(jobs, (std::vector<std::uint64_t>{3, 5, 7}));
}

TEST(FlightRecorder, WriteRoundTripAndBadPath) {
  FlightRecorder rec(4);
  rec.record(make_record(1));
  const std::string path = testing::TempDir() + "arbiterq_flight.jsonl";
  rec.write_jsonl(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, rec.to_jsonl());
  std::remove(path.c_str());
  EXPECT_THROW(rec.write_jsonl("/nonexistent-dir/x/f.jsonl"),
               std::runtime_error);
}

// ------------------------------------------------ runtime integration

class FlightFixture : public ::testing::Test {
 protected:
  FlightFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    core::TrainConfig cfg;
    trainer_ = std::make_unique<core::DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    math::Rng rng(42);
    std::vector<double> base(
        static_cast<std::size_t>(model_.num_weights()));
    for (double& w : base) w = rng.normal(0.0, 0.3);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w = base;
      math::Rng qrng = rng.split(q);
      for (double& x : w) x += qrng.normal(0.0, 0.05);
      weights_.push_back(std::move(w));
    }
  }

  std::vector<JobSpec> make_jobs(std::size_t n) const {
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      JobSpec spec;
      spec.features = split_.test_features[i % split_.test_features.size()];
      spec.label = split_.test_labels[i % split_.test_labels.size()];
      spec.tenant = "fixture";
      jobs.push_back(std::move(spec));
    }
    return jobs;
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<core::DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(FlightFixture, EveryBadJobLeavesAReconstructiblePostmortem) {
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  cfg.deadline_us = 1e-3;  // far below one shot's modeled latency
  cfg.seed = 77;
  FlightRecorder flight(64);
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg, nullptr,
                         nullptr, &flight);
  const std::vector<JobSpec> jobs = make_jobs(8);
  for (const JobSpec& spec : jobs) runtime.submit(spec);
  runtime.drain();

  std::set<std::uint64_t> bad;
  for (const JobResult& r : runtime.results()) {
    EXPECT_EQ(r.status, JobStatus::kExpired) << "job " << r.id;
    bad.insert(r.id);
  }
  // One record per bad job, carrying the route decision and the expiry.
  EXPECT_EQ(flight.total_recorded(), bad.size());
  for (const FlightRecord& rec : flight.snapshot()) {
    EXPECT_EQ(bad.count(rec.job), 1U) << "job " << rec.job;
    EXPECT_EQ(rec.status, "expired");
    EXPECT_EQ(rec.tenant, "fixture");
    ASSERT_FALSE(rec.events.empty());
    EXPECT_EQ(rec.events.front().kind, FlightEventKind::kRoute);
    bool saw_expire = false;
    for (const FlightEvent& e : rec.events) {
      if (e.kind == FlightEventKind::kExpire) saw_expire = true;
    }
    EXPECT_TRUE(saw_expire) << "job " << rec.job;
  }

  // Same seed, fresh runtime: the dump reproduces byte for byte.
  FlightRecorder again(64);
  ServingRuntime rerun(trainer_->executors(), weights_,
                       trainer_->behavioral_vectors(), cfg, nullptr,
                       nullptr, &again);
  for (const JobSpec& spec : jobs) rerun.submit(spec);
  rerun.drain();
  EXPECT_EQ(flight.to_jsonl(), again.to_jsonl());
}

TEST_F(FlightFixture, HealthyJobsLeaveNoRecords) {
  ServeConfig cfg;
  cfg.shots_per_job = 32;
  cfg.trajectories = 2;
  FlightRecorder flight(16);
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg, nullptr,
                         nullptr, &flight);
  for (const JobSpec& spec : make_jobs(4)) runtime.submit(spec);
  runtime.drain();
  for (const JobResult& r : runtime.results()) {
    EXPECT_EQ(r.status, JobStatus::kOk);
  }
  EXPECT_EQ(flight.total_recorded(), 0U);
}

}  // namespace
}  // namespace arbiterq::serve
