// Compiled execution plans: bit-identity against the naive per-call
// path across the full gate set (noise on/off), plan-based adjoint vs
// the circuit-walking adjoint, executor-level plan on/off equivalence,
// plan invalidation on recalibrate, marginal sampling, and the
// zero-allocation steady-state contract (checked with a counting global
// operator new).

#include "arbiterq/sim/exec_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/adjoint.hpp"
#include "arbiterq/sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every default-aligned heap allocation in this
// binary bumps g_allocations. The steady-state test asserts the counter
// does not move across a window of plan evaluations.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

NoiseModel rich_noise(int nq) {
  NoiseModel m(nq);
  for (int q = 0; q < nq; ++q) {
    m.set_depolarizing_1q(q, 0.004 + 0.002 * q);
    m.set_coherent_bias(q, 0.06 - 0.03 * q);
    m.set_readout_error(q, 0.01 + 0.005 * q, 0.02);
  }
  for (int q = 0; q + 1 < nq; ++q) m.set_depolarizing_2q(q, q + 1, 0.02);
  return m;
}

/// Every GateKind, with static prefixes, mid-run static gates after
/// dynamic ones, static rotations (constant ParamExprs), and dynamic
/// controlled rotations — the shapes the fusion rules must all handle.
Circuit full_gate_circuit() {
  Circuit c(3, 5);
  c.h(0).s(0).x(1).sdg(1).sx(2).y(2).z(0);
  c.add({GateKind::kI, {1, 0}, {}});
  c.rx(0, ParamExpr::constant(0.37));       // static rotation in a prefix
  c.rx(0, ParamExpr::ref(0));               // dynamic after the prefix
  c.h(0);                                   // static *after* dynamic
  c.ry(1, ParamExpr::ref(1, 0.5, 0.11));
  c.rz(2, ParamExpr::ref(2, -1.25, -0.4));
  c.cx(0, 1);
  c.u3(1, ParamExpr::ref(3), ParamExpr::constant(0.3),
       ParamExpr::ref(1, -0.7, 0.2));
  c.u3(2, ParamExpr::constant(0.9), ParamExpr::constant(-0.2),
       ParamExpr::constant(0.5));           // fully static U3
  c.cz(1, 2);
  c.crx(0, 1, ParamExpr::ref(4));
  c.cry(1, 2, ParamExpr::constant(0.6));    // static controlled rotation
  c.crz(2, 0, ParamExpr::ref(0, 0.5));
  c.swap(0, 2);
  c.ry(2, ParamExpr::ref(3, 2.0, -0.05));
  c.sdg(2);
  return c;
}

Circuit random_circuit(int nq, int np, math::Rng& rng, int gates) {
  Circuit c(nq, np);
  const GateKind kinds[] = {
      GateKind::kI,  GateKind::kX,   GateKind::kY,   GateKind::kZ,
      GateKind::kH,  GateKind::kS,   GateKind::kSdg, GateKind::kSX,
      GateKind::kRX, GateKind::kRY,  GateKind::kRZ,  GateKind::kU3,
      GateKind::kCX, GateKind::kCZ,  GateKind::kCRX, GateKind::kCRY,
      GateKind::kCRZ, GateKind::kSwap};
  auto random_expr = [&]() {
    if (rng.uniform() < 0.4) return ParamExpr::constant(rng.uniform(-2.0, 2.0));
    return ParamExpr::ref(static_cast<int>(rng.uniform_int(
                              static_cast<std::uint64_t>(np))),
                          rng.uniform(-1.5, 1.5), rng.uniform(-0.5, 0.5));
  };
  for (int i = 0; i < gates; ++i) {
    const GateKind kind =
        kinds[rng.uniform_int(sizeof(kinds) / sizeof(kinds[0]))];
    circuit::Gate g;
    g.kind = kind;
    const int q0 = static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(nq)));
    g.qubits[0] = q0;
    if (circuit::gate_arity(kind) == 2) {
      int q1 = q0;
      while (q1 == q0) {
        q1 = static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(nq)));
      }
      g.qubits[1] = q1;
    }
    for (int s = 0; s < circuit::gate_param_count(kind); ++s) {
      g.params[static_cast<std::size_t>(s)] = random_expr();
    }
    c.add(g);
  }
  return c;
}

std::vector<double> some_params(int np, math::Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(np));
  for (double& v : p) v = rng.uniform(-1.5, 1.5);
  return p;
}

void expect_plan_matches_naive(const StatevectorSimulator& sim,
                               const Circuit& c,
                               const std::vector<double>& params) {
  const Statevector naive = sim.run_biased(c, params);
  const ExecPlan plan = sim.make_plan(c);
  Workspace ws;
  const Statevector& planned = plan.run(params, ws);
  ASSERT_EQ(planned.dim(), naive.dim());
  for (std::size_t i = 0; i < naive.dim(); ++i) {
    EXPECT_EQ(planned.amplitudes()[i], naive.amplitudes()[i]) << "amp " << i;
  }
  for (int q = 0; q < c.num_qubits(); ++q) {
    EXPECT_EQ(plan.expectation_z(params, q, ws),
              sim.expectation_z(c, params, q))
        << "qubit " << q;
  }
}

TEST(ExecPlan, FullGateSetBitIdenticalNoisy) {
  const Circuit c = full_gate_circuit();
  math::Rng rng(11);
  expect_plan_matches_naive(StatevectorSimulator(rich_noise(3)), c,
                            some_params(c.num_params(), rng));
}

TEST(ExecPlan, FullGateSetBitIdenticalNoiseless) {
  const Circuit c = full_gate_circuit();
  math::Rng rng(12);
  expect_plan_matches_naive(StatevectorSimulator(), c,
                            some_params(c.num_params(), rng));
}

TEST(ExecPlan, RandomCircuitsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    math::Rng rng(seed);
    const Circuit c = random_circuit(4, 6, rng, 40);
    const auto params = some_params(c.num_params(), rng);
    expect_plan_matches_naive(StatevectorSimulator(rich_noise(4)), c, params);
    expect_plan_matches_naive(StatevectorSimulator(), c, params);
  }
}

TEST(ExecPlan, RebindTracksNewParameters) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim(rich_noise(3));
  const ExecPlan plan = sim.make_plan(c);
  Workspace ws;
  math::Rng rng(5);
  for (int rep = 0; rep < 4; ++rep) {
    const auto params = some_params(c.num_params(), rng);
    EXPECT_EQ(plan.expectation_z(params, 0, ws),
              sim.expectation_z(c, params, 0))
        << "rep " << rep;
  }
}

TEST(ExecPlan, CachesCircuitConstantsAndFusionStats) {
  const Circuit c = full_gate_circuit();
  const NoiseModel noise = rich_noise(3);
  const ExecPlan plan = StatevectorSimulator(noise).make_plan(c);
  EXPECT_TRUE(plan.noisy());
  EXPECT_EQ(plan.survival(), noise.survival_probability(c));
  EXPECT_EQ(plan.depth(), c.depth());
  EXPECT_EQ(plan.gate_count(), c.size());
  EXPECT_EQ(plan.num_params(), c.num_params());
  // The circuit has both fusable static material and live parameters.
  EXPECT_GT(plan.fused_gate_count(), 0U);
  EXPECT_GT(plan.bound_slot_count(), 0U);
  EXPECT_LT(plan.stream_op_count(), c.size());

  const ExecPlan ideal = StatevectorSimulator().make_plan(c);
  EXPECT_FALSE(ideal.noisy());
  EXPECT_EQ(ideal.survival(), 1.0);
}

TEST(ExecPlan, ParamsTooShortThrows) {
  const Circuit c = full_gate_circuit();
  const ExecPlan plan = StatevectorSimulator().make_plan(c);
  Workspace ws;
  const std::vector<double> short_params(2, 0.0);
  EXPECT_THROW(plan.run(short_params, ws), std::invalid_argument);
  EXPECT_THROW(adjoint_gradient_z(plan, short_params, 0, ws),
               std::invalid_argument);
}

TEST(ExecPlanAdjoint, MatchesNaiveAdjointBitIdentical) {
  const Circuit c = full_gate_circuit();
  const NoiseModel noise = rich_noise(3);
  math::Rng rng(21);
  const auto params = some_params(c.num_params(), rng);
  Workspace ws;
  for (const NoiseModel* np : {static_cast<const NoiseModel*>(nullptr),
                               &noise}) {
    const StatevectorSimulator sim(np != nullptr ? *np : NoiseModel{});
    const ExecPlan plan = sim.make_plan(c);
    for (int qubit = 0; qubit < c.num_qubits(); ++qubit) {
      const auto naive = adjoint_gradient_z(c, params, qubit, np);
      const auto planned = adjoint_gradient_z(plan, params, qubit, ws);
      ASSERT_EQ(planned.size(), naive.size());
      for (std::size_t i = 0; i < naive.size(); ++i) {
        EXPECT_EQ(planned[i], naive[i])
            << (np != nullptr ? "noisy" : "ideal") << " qubit " << qubit
            << " param " << i;
      }
    }
  }
}

TEST(ExecPlanAdjoint, RandomCircuitsMatchNaive) {
  Workspace ws;
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    math::Rng rng(seed);
    const Circuit c = random_circuit(3, 5, rng, 25);
    const auto params = some_params(c.num_params(), rng);
    const NoiseModel noise = rich_noise(3);
    const ExecPlan plan = StatevectorSimulator(noise).make_plan(c);
    const auto naive = adjoint_gradient_z(c, params, 0, &noise);
    const auto planned = adjoint_gradient_z(plan, params, 0, ws);
    ASSERT_EQ(planned.size(), naive.size());
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(planned[i], naive[i]) << "seed " << seed << " param " << i;
    }
  }
}

TEST(SimulatorOverloads, PrecomputedSurvivalMatches) {
  const Circuit c = full_gate_circuit();
  const NoiseModel noise = rich_noise(3);
  const StatevectorSimulator sim(noise);
  math::Rng rng(41);
  const auto params = some_params(c.num_params(), rng);
  const double survival = noise.survival_probability(c);
  EXPECT_EQ(sim.expectation_z(c, params, 0, survival),
            sim.expectation_z(c, params, 0));
  const auto naive = adjoint_gradient_z(c, params, 0, &noise);
  const auto cached = adjoint_gradient_z(c, params, 0, &noise, survival);
  EXPECT_EQ(cached, naive);
}

// ---------------------------------------------------------------------------
// Marginal sampling

TEST(MarginalSampling, MatchesExactProbabilityStatistically) {
  const Circuit c = full_gate_circuit();
  math::Rng rng(51);
  const auto params = some_params(c.num_params(), rng);
  for (const bool noisy : {false, true}) {
    const StatevectorSimulator sim(noisy ? rich_noise(3) : NoiseModel{});
    ShotOptions opts;
    opts.shots = 20000;
    opts.trajectories = noisy ? 64 : 1;
    math::Rng sample_rng(52);
    const double sampled =
        sim.sampled_probability_of_one(c, params, 0, opts, sample_rng);
    // Under noise the exact path folds stochastic errors into the
    // survival attenuation while trajectories sample them, so only the
    // noiseless case is an unbiased estimate of probability_of_one.
    if (!noisy) {
      EXPECT_NEAR(sampled, sim.probability_of_one(c, params, 0), 0.02);
    } else {
      EXPECT_GE(sampled, 0.0);
      EXPECT_LE(sampled, 1.0);
    }
  }
}

TEST(MarginalSampling, DeterministicGivenRngState) {
  const Circuit c = full_gate_circuit();
  math::Rng rng(61);
  const auto params = some_params(c.num_params(), rng);
  const StatevectorSimulator sim(rich_noise(3));
  ShotOptions opts;
  opts.shots = 500;
  opts.trajectories = 8;
  math::Rng a(7);
  math::Rng b(7);
  EXPECT_EQ(sim.sample_marginal_ones(c, params, 1, opts, a),
            sim.sample_marginal_ones(c, params, 1, opts, b));
}

TEST(MarginalSampling, InvalidOptionsThrow) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim;
  const std::vector<double> params(
      static_cast<std::size_t>(c.num_params()), 0.1);
  math::Rng rng(1);
  ShotOptions opts;
  opts.shots = 0;
  EXPECT_THROW(sim.sample_marginal_ones(c, params, 0, opts, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Executor integration

class ExecutorPlan : public ::testing::Test {
 protected:
  ExecutorPlan()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    weights_.assign(static_cast<std::size_t>(model_.num_weights()), 0.0);
    math::Rng rng(7);
    for (double& w : weights_) w = rng.uniform(-1.0, 1.0);
  }

  qnn::QnnExecutor make(bool use_plan, bool mitigate = false) const {
    qnn::ExecutorOptions opts;
    opts.use_plan = use_plan;
    opts.mitigate_depolarizing = mitigate;
    return qnn::QnnExecutor(model_, device::table3_fleet_subset(1, 2)[0],
                            opts);
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::vector<double> weights_;
};

TEST_F(ExecutorPlan, ForwardAndGradientsMatchNaiveExecutor) {
  for (const bool mitigate : {false, true}) {
    const qnn::QnnExecutor naive = make(false, mitigate);
    const qnn::QnnExecutor planned = make(true, mitigate);
    EXPECT_EQ(naive.plan(), nullptr);
    ASSERT_NE(planned.plan(), nullptr);
    EXPECT_EQ(planned.survival(), naive.survival());
    for (const auto& f : split_.test_features) {
      EXPECT_EQ(planned.probability(f, weights_), naive.probability(f, weights_));
    }
    EXPECT_EQ(planned.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                                   split_.test_labels, weights_),
              naive.dataset_loss(qnn::LossKind::kMse, split_.test_features,
                                 split_.test_labels, weights_));
    EXPECT_EQ(planned.loss_gradient(qnn::LossKind::kMse,
                                    split_.train_features,
                                    split_.train_labels, weights_),
              naive.loss_gradient(qnn::LossKind::kMse, split_.train_features,
                                  split_.train_labels, weights_));
    EXPECT_EQ(planned.loss_gradient_shift(qnn::LossKind::kMse,
                                          split_.train_features,
                                          split_.train_labels, weights_),
              naive.loss_gradient_shift(qnn::LossKind::kMse,
                                        split_.train_features,
                                        split_.train_labels, weights_));
  }
}

TEST_F(ExecutorPlan, RecalibrateInvalidatesAndRebuildsPlan) {
  qnn::QnnExecutor naive = make(false);
  qnn::QnnExecutor planned = make(true);
  const sim::ExecPlan* before = planned.plan();
  ASSERT_NE(before, nullptr);
  const auto& f = split_.test_features.front();
  const double p_before = planned.probability(f, weights_);

  math::Rng rng_a(99);
  math::Rng rng_b(99);
  naive.recalibrate(0.2, rng_a);
  planned.recalibrate(0.2, rng_b);

  // A fresh plan compiled against the drifted noise model...
  EXPECT_NE(planned.plan(), before);
  // ...that still tracks the naive path bit-for-bit...
  EXPECT_EQ(planned.probability(f, weights_), naive.probability(f, weights_));
  // ...and actually reflects the drift (a stale plan would not).
  EXPECT_NE(planned.probability(f, weights_), p_before);
}

// ---------------------------------------------------------------------------
// Steady-state allocation contract

TEST(ExecPlanWorkspace, SteadyStateForwardIsAllocationFree) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim(rich_noise(3));
  const ExecPlan plan = sim.make_plan(c);
  Workspace ws;
  std::vector<double> params(static_cast<std::size_t>(c.num_params()), 0.2);
  // Warm-up: workspace registers and bind slots allocate here, once.
  double acc = 0.0;
  for (int i = 0; i < 3; ++i) acc += plan.expectation_z(params, 0, ws);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) {
    params[0] = 0.01 * static_cast<double>(i);
    params[3] = -0.02 * static_cast<double>(i);
    acc += plan.expectation_z(params, 0, ws);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state forward evaluations allocated";
  EXPECT_TRUE(std::isfinite(acc));
}

TEST(ExecPlanWorkspace, SteadyStateAdjointIsAllocationFree) {
  const Circuit c = full_gate_circuit();
  const StatevectorSimulator sim(rich_noise(3));
  const ExecPlan plan = sim.make_plan(c);
  Workspace ws;
  std::vector<double> params(static_cast<std::size_t>(c.num_params()), 0.3);
  std::vector<double> grad(static_cast<std::size_t>(c.num_params()), 0.0);
  for (int i = 0; i < 3; ++i) adjoint_gradient_z(plan, params, 0, ws, grad);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 32; ++i) {
    params[1] = 0.05 * static_cast<double>(i);
    adjoint_gradient_z(plan, params, 0, ws, grad);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state adjoint evaluations allocated";
}

TEST(WorkspacePoolTest, RecyclesWorkspacesAndCopiesStartFresh) {
  WorkspacePool pool;
  Workspace* first = nullptr;
  {
    auto lease = pool.acquire();
    first = &*lease;
    lease->params.assign(8, 1.0);
  }
  {
    // The released workspace comes back, buffers intact.
    auto lease = pool.acquire();
    EXPECT_EQ(&*lease, first);
    EXPECT_EQ(lease->params.size(), 8U);
  }
  const WorkspacePool copy = pool;  // fresh pool; leases stay tied to source
  (void)copy;
}

}  // namespace
}  // namespace arbiterq::sim
