#include "arbiterq/core/trainers.hpp"

#include <gtest/gtest.h>

#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

TrainConfig quick_config() {
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 4;
  return cfg;
}

class TrainerFixture : public ::testing::Test {
 protected:
  TrainerFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})),
        trainer_(model_, device::table3_fleet_subset(4, 2),
                 quick_config()) {}

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  DistributedTrainer trainer_;
};

TEST_F(TrainerFixture, SetupBuildsFleetArtifacts) {
  EXPECT_EQ(trainer_.fleet_size(), 4U);
  EXPECT_EQ(trainer_.behavioral_vectors().size(), 4U);
  EXPECT_EQ(trainer_.similarity().size(), 4U);
  std::size_t grouped = 0;
  for (const auto& g : trainer_.sharing_groups()) grouped += g.size();
  EXPECT_EQ(grouped, 4U);
}

TEST_F(TrainerFixture, EqcVotesNormalizedAndQualityOrdered) {
  const auto votes = trainer_.eqc_vote_weights();
  double total = 0.0;
  for (double v : votes) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Votes must order inversely to the devices' average error.
  const auto& executors = trainer_.executors();
  for (std::size_t i = 0; i < votes.size(); ++i) {
    for (std::size_t j = 0; j < votes.size(); ++j) {
      if (executors[i].qpu().average_error() <
          executors[j].qpu().average_error()) {
        EXPECT_GT(votes[i], votes[j]) << i << " vs " << j;
      }
    }
  }
}

TEST_F(TrainerFixture, EveryStrategyProducesWellFormedResult) {
  for (Strategy s : {Strategy::kSingleNode, Strategy::kAllSharing,
                     Strategy::kEqc, Strategy::kArbiterQ}) {
    const TrainResult r = trainer_.train(s, split_);
    EXPECT_EQ(r.strategy, s);
    EXPECT_EQ(r.epoch_test_loss.size(), 8U);
    EXPECT_EQ(r.weights.size(), 4U);
    for (const auto& w : r.weights) {
      EXPECT_EQ(w.size(), static_cast<std::size_t>(model_.num_weights()));
    }
    EXPECT_GE(r.convergence.epoch, 1);
    EXPECT_LE(r.convergence.epoch, 8);
    for (double l : r.epoch_test_loss) {
      EXPECT_GE(l, 0.0);
      EXPECT_LE(l, 1.0);  // MSE of probabilities
    }
  }
}

TEST_F(TrainerFixture, SharedStrategiesKeepIdenticalWeights) {
  for (Strategy s :
       {Strategy::kSingleNode, Strategy::kAllSharing, Strategy::kEqc}) {
    const TrainResult r = trainer_.train(s, split_);
    for (std::size_t i = 1; i < r.weights.size(); ++i) {
      EXPECT_EQ(r.weights[0], r.weights[i]) << strategy_name(s);
    }
  }
}

TEST_F(TrainerFixture, ArbiterQPersonalizesWeights) {
  const TrainResult r = trainer_.train(Strategy::kArbiterQ, split_);
  bool any_difference = false;
  for (std::size_t i = 1; i < r.weights.size(); ++i) {
    if (r.weights[i] != r.weights[0]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TrainerFixture, TrainingIsDeterministic) {
  const TrainResult a = trainer_.train(Strategy::kArbiterQ, split_);
  const TrainResult b = trainer_.train(Strategy::kArbiterQ, split_);
  EXPECT_EQ(a.epoch_test_loss, b.epoch_test_loss);
  EXPECT_EQ(a.weights, b.weights);
}

TEST_F(TrainerFixture, TrainingReducesLoss) {
  TrainConfig cfg = quick_config();
  cfg.epochs = 25;
  const DistributedTrainer longer(model_,
                                  device::table3_fleet_subset(4, 2), cfg);
  const TrainResult r = longer.train(Strategy::kArbiterQ, split_);
  EXPECT_LT(r.epoch_test_loss.back(), r.epoch_test_loss.front() * 0.8);
}

TEST_F(TrainerFixture, ShotNoiseZeroStillWorks) {
  TrainConfig cfg = quick_config();
  cfg.gradient_shot_noise = 0.0;
  const DistributedTrainer exact(model_, device::table3_fleet_subset(4, 2),
                                 cfg);
  const TrainResult r = exact.train(Strategy::kAllSharing, split_);
  EXPECT_EQ(r.epoch_test_loss.size(), 8U);
}

TEST(Trainer, ArbiterQBeatsAllSharingOnHeterogeneousFleet) {
  // The paper's headline (Table I): with a long enough run, ArbiterQ's
  // converged loss undercuts all-sharing's on a heterogeneous fleet.
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);
  TrainConfig cfg;
  cfg.epochs = 40;
  const DistributedTrainer trainer(model, device::table3_fleet_subset(6, 2),
                                   cfg);
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  const TrainResult arbiter = trainer.train(Strategy::kArbiterQ, split);
  const TrainResult sharing = trainer.train(Strategy::kAllSharing, split);
  EXPECT_LT(arbiter.convergence.loss, sharing.convergence.loss);
}

TEST(Trainer, EmptyFleetThrows) {
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 1);
  EXPECT_THROW(DistributedTrainer(model, {}, TrainConfig{}),
               std::invalid_argument);
}

TEST(Trainer, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kSingleNode), "single-node");
  EXPECT_EQ(strategy_name(Strategy::kAllSharing), "all-sharing");
  EXPECT_EQ(strategy_name(Strategy::kEqc), "EQC");
  EXPECT_EQ(strategy_name(Strategy::kArbiterQ), "ArbiterQ");
}

}  // namespace
}  // namespace arbiterq::core
