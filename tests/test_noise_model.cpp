#include "arbiterq/sim/noise_model.hpp"

#include <gtest/gtest.h>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;

TEST(NoiseModel, DefaultIsDisabled) {
  NoiseModel m;
  EXPECT_FALSE(m.enabled());
  Circuit c(2);
  c.h(0).cx(0, 1);
  EXPECT_DOUBLE_EQ(m.survival_probability(c), 1.0);
}

TEST(NoiseModel, ConstructionAndValidation) {
  EXPECT_THROW(NoiseModel(0), std::invalid_argument);
  NoiseModel m(3);
  EXPECT_EQ(m.num_qubits(), 3);
  EXPECT_FALSE(m.enabled());  // nothing set yet
  EXPECT_THROW(m.set_depolarizing_1q(3, 0.1), std::out_of_range);
  EXPECT_THROW(m.set_depolarizing_1q(0, 1.5), std::invalid_argument);
  EXPECT_THROW(m.set_depolarizing_2q(0, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(m.set_readout_error(0, 2.0, 0.0), std::invalid_argument);
}

TEST(NoiseModel, SettersEnableAndStore) {
  NoiseModel m(2);
  m.set_depolarizing_1q(0, 0.01);
  m.set_depolarizing_2q(0, 1, 0.05);
  m.set_coherent_bias(1, 0.2);
  m.set_readout_error(0, 0.02, 0.03);
  EXPECT_TRUE(m.enabled());
  EXPECT_DOUBLE_EQ(m.depolarizing_1q(0), 0.01);
  EXPECT_DOUBLE_EQ(m.depolarizing_1q(1), 0.0);
  EXPECT_DOUBLE_EQ(m.depolarizing_2q(0, 1), 0.05);
  EXPECT_DOUBLE_EQ(m.depolarizing_2q(1, 0), 0.05);  // symmetric
  EXPECT_DOUBLE_EQ(m.coherent_bias(1), 0.2);
  EXPECT_DOUBLE_EQ(m.readout_p01(0), 0.02);
  EXPECT_DOUBLE_EQ(m.readout_p10(0), 0.03);
}

TEST(NoiseModel, GateError) {
  NoiseModel m(2);
  m.set_depolarizing_1q(0, 0.01);
  m.set_depolarizing_2q(0, 1, 0.05);
  Gate g1;
  g1.kind = GateKind::kRY;
  g1.qubits = {0, 0};
  EXPECT_DOUBLE_EQ(m.gate_error(g1), 0.01);
  Gate g2;
  g2.kind = GateKind::kCX;
  g2.qubits = {0, 1};
  EXPECT_DOUBLE_EQ(m.gate_error(g2), 0.05);
  Gate id;
  id.kind = GateKind::kI;
  id.qubits = {0, 0};
  EXPECT_DOUBLE_EQ(m.gate_error(id), 0.0);
}

TEST(NoiseModel, SurvivalProbabilityIsProduct) {
  NoiseModel m(2);
  m.set_depolarizing_1q(0, 0.1);
  m.set_depolarizing_2q(0, 1, 0.2);
  Circuit c(2);
  c.x(0).cx(0, 1);
  EXPECT_NEAR(m.survival_probability(c), 0.9 * 0.8, 1e-12);
}

TEST(NoiseModel, BiasedParamsShiftPolarAngleOnly) {
  NoiseModel m(2);
  m.set_coherent_bias(0, 0.1);
  m.set_coherent_bias(1, -0.2);

  Circuit c(2, 1);
  c.u3(0, ParamExpr::ref(0), ParamExpr::constant(0.5),
       ParamExpr::constant(0.6));
  const std::vector<double> params = {1.0};
  const auto b = m.biased_params(c.gate(0), params);
  EXPECT_NEAR(b[0], 1.1, 1e-12);  // theta gets the qubit-0 bias
  EXPECT_NEAR(b[1], 0.5, 1e-12);
  EXPECT_NEAR(b[2], 0.6, 1e-12);
}

TEST(NoiseModel, BiasedParamsUseTargetQubitForControlledGates) {
  NoiseModel m(2);
  m.set_coherent_bias(0, 0.1);
  m.set_coherent_bias(1, -0.2);
  Circuit c(2, 1);
  c.crz(0, 1, ParamExpr::ref(0));
  const std::vector<double> params = {1.0};
  const auto b = m.biased_params(c.gate(0), params);
  EXPECT_NEAR(b[0], 0.8, 1e-12);  // target is qubit 1
}

TEST(NoiseModel, UnparameterizedGateUnbiased) {
  NoiseModel m(1);
  m.set_coherent_bias(0, 0.5);
  Circuit c(1);
  c.x(0);
  const auto b = m.biased_params(c.gate(0), {});
  EXPECT_DOUBLE_EQ(b[0], 0.0);
}

}  // namespace
}  // namespace arbiterq::sim
