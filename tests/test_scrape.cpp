// ScrapeServer: request parsing and routing through dispatch(), and the
// real loopback path — an ephemeral-port server answering GET /metrics
// with valid Prometheus text over an actual socket.

#include "arbiterq/telemetry/http.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/prometheus.hpp"
#include "arbiterq/telemetry/timeseries.hpp"

namespace {

using namespace arbiterq;

void add_handlers(telemetry::ScrapeServer& server) {
  server.handle_text("/metrics", telemetry::prometheus_content_type(),
                     [] { return std::string("scrape_ok 1\n"); });
  server.handle_text("/healthz", "application/json",
                     [] { return std::string("{\"ok\":true}\n"); });
}

/// One full HTTP exchange over a real loopback socket.
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t put =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (put <= 0) break;
    sent += static_cast<std::size_t>(put);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(ScrapeDispatch, ServesRegisteredPaths) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  const std::string r =
      server.dispatch("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(r.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(r.find("scrape_ok 1\n"), std::string::npos);
}

TEST(ScrapeDispatch, StripsQueryStrings) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  const std::string r =
      server.dispatch("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(r.find("{\"ok\":true}"), std::string::npos);
}

TEST(ScrapeDispatch, HeadOmitsTheBodyButKeepsLength) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  const std::string r = server.dispatch("HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 12"), std::string::npos);
  EXPECT_EQ(r.find("{\"ok\":true}"), std::string::npos);
}

TEST(ScrapeDispatch, UnknownPathListsRegisteredOnes) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  const std::string r = server.dispatch("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_NE(r.find("/metrics"), std::string::npos);
  EXPECT_NE(r.find("/healthz"), std::string::npos);
}

TEST(ScrapeDispatch, RejectsNonGetMethodsAndGarbage) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  EXPECT_NE(server.dispatch("POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.0 405"),
            std::string::npos);
  EXPECT_NE(server.dispatch("garbage").find("HTTP/1.0 400"),
            std::string::npos);
}

TEST(ScrapeServer, ServesRealSocketsOnAnEphemeralPort) {
  telemetry::ScrapeServer server;
  telemetry::MetricsRegistry registry;
  registry.counter("scrape.test.hits").add(3);
  server.handle_text("/metrics", telemetry::prometheus_content_type(),
                     [&registry] {
                       return telemetry::prometheus_text(
                           registry.snapshot());
                     });
  ASSERT_TRUE(server.start(0));
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);

  const std::string ok =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("# TYPE arbiterq_scrape_test_hits_total counter"),
            std::string::npos);
  EXPECT_NE(ok.find("arbiterq_scrape_test_hits_total 3"),
            std::string::npos);

  const std::string missing =
      http_get(server.port(), "GET /missing HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 2U);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ScrapeServer, StartWhileRunningThrowsAndStopIsIdempotent) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  ASSERT_TRUE(server.start(0));
  EXPECT_THROW(server.start(0), std::logic_error);
  server.stop();
  server.stop();  // no-op
  EXPECT_FALSE(server.running());
}

TEST(ScrapeDispatch, QueryHandlerReceivesTheQueryString) {
  telemetry::ScrapeServer server;
  server.handle_query("/timeseries", [](const std::string& query) {
    telemetry::ScrapeResponse resp;
    resp.content_type = "application/json";
    resp.body = "{\"filter\":\"" + telemetry::query_param(query, "name") +
                "\"}";
    return resp;
  });
  const std::string with_query = server.dispatch(
      "GET /timeseries?name=serve.shard0&limit=3 HTTP/1.1\r\n\r\n");
  EXPECT_NE(with_query.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(with_query.find("{\"filter\":\"serve.shard0\"}"),
            std::string::npos);
  const std::string without =
      server.dispatch("GET /timeseries HTTP/1.1\r\n\r\n");
  EXPECT_NE(without.find("{\"filter\":\"\"}"), std::string::npos);
}

TEST(ScrapeServer, ConcurrentClientsOnMetricsAndTimeseries) {
  // Two clients hammering /metrics and /timeseries at the same time:
  // every exchange must come back complete (the server answers serially
  // on the accept thread; concurrency shows up as queued connects).
  telemetry::ScrapeServer server;
  telemetry::MetricsRegistry registry;
  registry.counter("scrape.concurrent.hits").add(7);
  telemetry::TimeSeriesConfig tc;
  tc.window_us = 1000.0;
  telemetry::TimeSeriesStore ts(tc);
  for (int w = 0; w < 4; ++w) ts.observe("serve.ts.admitted", w * 1000.0, 1.0);
  server.handle_text("/metrics", telemetry::prometheus_content_type(),
                     [&registry] {
                       return telemetry::prometheus_text(registry.snapshot());
                     });
  server.handle_query("/timeseries", [&ts](const std::string& query) {
    telemetry::ScrapeResponse resp;
    resp.content_type = "application/json";
    resp.body = ts.to_json(telemetry::query_param(query, "name"));
    return resp;
  });
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  constexpr int kPerClient = 16;
  std::atomic<int> failures{0};
  auto client = [port, &failures](const std::string& path,
                                  const std::string& expect) {
    for (int i = 0; i < kPerClient; ++i) {
      const std::string r =
          http_get(port, "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n");
      if (r.find("HTTP/1.0 200 OK") == std::string::npos ||
          r.find(expect) == std::string::npos) {
        failures.fetch_add(1);
      }
    }
  };
  std::thread a(client, "/metrics", "arbiterq_scrape_concurrent_hits_total 7");
  std::thread b(client, "/timeseries?name=serve.ts",
                "\"serve.ts.admitted\"");
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 2U * kPerClient);
  server.stop();
}

TEST(ScrapeServer, SlowChunkedRequestWriteStillServed) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  ASSERT_TRUE(server.start(0));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  // Dribble the request a few bytes at a time with pauses: the server
  // must keep reading until the blank line instead of parsing a prefix.
  const std::string request = "GET /healthz HTTP/1.1\r\nHost: slow\r\n\r\n";
  for (std::size_t at = 0; at < request.size(); at += 5) {
    const std::size_t n = std::min<std::size_t>(5, request.size() - at);
    ASSERT_EQ(::send(fd, request.data() + at, n, 0),
              static_cast<ssize_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos);
  server.stop();
}

TEST(ScrapeServer, ClientHangupMidRequestDoesNotWedgeTheServer) {
  telemetry::ScrapeServer server;
  add_handlers(server);
  ASSERT_TRUE(server.start(0));

  // A client that writes half a request line and disappears.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const char partial[] = "GET /heal";
  ASSERT_GT(::send(fd, partial, sizeof partial - 1, 0), 0);
  ::close(fd);

  // The next well-formed client still gets an answer.
  const std::string ok =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("{\"ok\":true}"), std::string::npos);
  server.stop();
}

TEST(ScrapeServer, HandlerValuesAreLiveNotCached) {
  telemetry::ScrapeServer server;
  int calls = 0;
  server.handle_text("/n", "text/plain", [&calls] {
    return std::to_string(++calls) + "\n";
  });
  EXPECT_NE(server.dispatch("GET /n HTTP/1.1\r\n\r\n").find("1\n"),
            std::string::npos);
  EXPECT_NE(server.dispatch("GET /n HTTP/1.1\r\n\r\n").find("2\n"),
            std::string::npos);
}

}  // namespace
