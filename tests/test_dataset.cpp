#include "arbiterq/data/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace arbiterq::data {
namespace {

Dataset tiny() {
  Dataset d;
  d.name = "tiny";
  for (int i = 0; i < 10; ++i) {
    d.samples.push_back({static_cast<double>(i), 0.0});
    d.labels.push_back(i % 2);
  }
  return d;
}

TEST(Dataset, ValidateCatchesProblems) {
  Dataset d = tiny();
  EXPECT_NO_THROW(d.validate());
  d.labels[0] = 5;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = tiny();
  d.samples[3] = {1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = tiny();
  d.labels.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, SizeAccessors) {
  const Dataset d = tiny();
  EXPECT_EQ(d.size(), 10U);
  EXPECT_EQ(d.num_features(), 2U);
  EXPECT_EQ(Dataset{}.num_features(), 0U);
}

TEST(Split, ProportionsRespected) {
  const Split s = train_test_split(tiny(), 0.8, math::Rng(1));
  EXPECT_EQ(s.train.size(), 8U);
  EXPECT_EQ(s.test.size(), 2U);
}

TEST(Split, EverySampleAppearsExactlyOnce) {
  const Dataset d = tiny();
  const Split s = train_test_split(d, 0.7, math::Rng(5));
  std::multiset<double> seen;
  for (const auto& r : s.train.samples) seen.insert(r[0]);
  for (const auto& r : s.test.samples) seen.insert(r[0]);
  EXPECT_EQ(seen.size(), 10U);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<double>(i)), 1U);
  }
}

TEST(Split, DeterministicUnderSeed) {
  const Dataset d = tiny();
  const Split a = train_test_split(d, 0.8, math::Rng(9));
  const Split b = train_test_split(d, 0.8, math::Rng(9));
  EXPECT_EQ(a.train.samples, b.train.samples);
  const Split c = train_test_split(d, 0.8, math::Rng(10));
  EXPECT_NE(a.train.samples, c.train.samples);
}

TEST(Split, Validation) {
  Dataset d = tiny();
  EXPECT_THROW(train_test_split(d, 0.0, math::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(train_test_split(d, 1.0, math::Rng(1)),
               std::invalid_argument);
  Dataset one;
  one.samples = {{1.0}};
  one.labels = {0};
  EXPECT_THROW(train_test_split(one, 0.8, math::Rng(1)),
               std::invalid_argument);
}

TEST(Split, AlwaysLeavesBothSidesNonEmpty) {
  Dataset d = tiny();
  const Split hi = train_test_split(d, 0.99, math::Rng(2));
  EXPECT_GE(hi.test.size(), 1U);
  const Split lo = train_test_split(d, 0.01, math::Rng(2));
  EXPECT_GE(lo.train.size(), 1U);
}

TEST(Minibatch, SizesAndBounds) {
  const auto idx = minibatch_indices(10, 4, 0, math::Rng(3));
  EXPECT_EQ(idx.size(), 4U);
  for (auto i : idx) EXPECT_LT(i, 10U);
}

TEST(Minibatch, BatchLargerThanDatasetClamps) {
  const auto idx = minibatch_indices(3, 10, 0, math::Rng(3));
  EXPECT_EQ(idx.size(), 3U);
}

TEST(Minibatch, DifferentBatchIndexDifferentSamples) {
  const auto a = minibatch_indices(100, 5, 0, math::Rng(7));
  const auto b = minibatch_indices(100, 5, 1, math::Rng(7));
  EXPECT_NE(a, b);
}

TEST(Minibatch, DeterministicUnderSeed) {
  EXPECT_EQ(minibatch_indices(50, 8, 2, math::Rng(11)),
            minibatch_indices(50, 8, 2, math::Rng(11)));
  EXPECT_THROW(minibatch_indices(0, 8, 0, math::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(minibatch_indices(5, 0, 0, math::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::data
