#include "arbiterq/transpile/optimize.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq::transpile {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

void expect_equivalent(const Circuit& a, const Circuit& b,
                       const std::vector<double>& params) {
  EXPECT_LT(circuit::unitary_distance_up_to_phase(
                circuit_unitary(a, params), circuit_unitary(b, params)),
            1e-9);
}

TEST(Optimize, MergesConstantRotations) {
  Circuit c(1);
  c.rz(0, ParamExpr::constant(0.3)).rz(0, ParamExpr::constant(0.4));
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(stats.rotations_merged, 1U);
  EXPECT_NEAR(out.gate(0).params[0].offset, 0.7, 1e-12);
  expect_equivalent(c, out, {});
}

TEST(Optimize, MergesSymbolicWithConstant) {
  Circuit c(1, 1);
  c.rz(0, ParamExpr::constant(std::numbers::pi / 2))
      .rz(0, ParamExpr::ref(0, 0.5))
      .rz(0, ParamExpr::constant(std::numbers::pi / 2));
  const Circuit out = optimize(c);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out.gate(0).params[0].index, 0);
  EXPECT_DOUBLE_EQ(out.gate(0).params[0].coeff, 0.5);
  EXPECT_NEAR(out.gate(0).params[0].offset, std::numbers::pi, 1e-12);
  expect_equivalent(c, out, {1.3});
}

TEST(Optimize, MergesSameParameterRefs) {
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0, 0.5)).ry(0, ParamExpr::ref(0, 0.5));
  const Circuit out = optimize(c);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_DOUBLE_EQ(out.gate(0).params[0].coeff, 1.0);
  expect_equivalent(c, out, {0.9});
}

TEST(Optimize, DoesNotMergeDistinctParameters) {
  Circuit c(1, 2);
  c.rz(0, ParamExpr::ref(0)).rz(0, ParamExpr::ref(1));
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 2U);
}

TEST(Optimize, DoesNotMergeAcrossBlockingGate) {
  Circuit c(2, 0);
  c.rz(0, ParamExpr::constant(0.3))
      .cx(0, 1)
      .rz(0, ParamExpr::constant(0.4));
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 3U);
}

TEST(Optimize, MergesAcrossGateOnOtherQubit) {
  Circuit c(2, 0);
  c.rz(0, ParamExpr::constant(0.3))
      .x(1)
      .rz(0, ParamExpr::constant(0.4));
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 2U);
  expect_equivalent(c, out, {});
}

TEST(Optimize, CancelsSelfInversePairs) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1).x(0).x(0).h(1).h(1);
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  EXPECT_EQ(out.size(), 0U);
  EXPECT_EQ(stats.pairs_cancelled, 3U);
}

TEST(Optimize, CzAndSwapCancelRegardlessOfOrientation) {
  Circuit c(2);
  c.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 0U);
}

TEST(Optimize, CxOrientationMatters) {
  Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 2U);  // not inverses of each other
}

TEST(Optimize, DropsZeroRotations) {
  Circuit c(1, 1);
  c.rz(0, ParamExpr::constant(0.0))
      .rx(0, ParamExpr::constant(2.0 * std::numbers::pi))
      .ry(0, ParamExpr::ref(0));  // symbolic: must stay
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out.gate(0).kind, GateKind::kRY);
  EXPECT_EQ(stats.identities_dropped, 2U);
}

TEST(Optimize, CascadingMergeThenCancel) {
  // RZ(a) RZ(-a) merges to RZ(0) which then drops.
  Circuit c(1, 0);
  c.rz(0, ParamExpr::constant(0.8)).rz(0, ParamExpr::constant(-0.8));
  const Circuit out = optimize(c);
  EXPECT_EQ(out.size(), 0U);
}

class OptimizeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeEquivalence, TranspiledModelsStayEquivalent) {
  // Optimize the compiled executable of a real QNN model on a real
  // device and verify unitary equivalence under random bindings.
  math::Rng rng(800 + GetParam());
  const int qubits = 2 + GetParam() % 3;
  const qnn::QnnModel m(GetParam() % 2 == 0 ? qnn::Backbone::kCRz
                                            : qnn::Backbone::kCRx,
                        qubits, 2);
  const auto fleet = device::table3_fleet(qubits);
  const auto compiled =
      compile(m.circuit(), fleet[static_cast<std::size_t>(GetParam()) %
                                 fleet.size()]);
  OptimizeStats stats;
  const Circuit out = optimize(compiled.executable, &stats);
  EXPECT_LT(out.size(), compiled.executable.size());
  EXPECT_GT(stats.total(), 0U);

  std::vector<double> params(static_cast<std::size_t>(m.num_params()));
  for (double& v : params) v = rng.uniform(-2.0, 2.0);
  expect_equivalent(compiled.executable, out, params);
}

INSTANTIATE_TEST_SUITE_P(Cases, OptimizeEquivalence,
                         ::testing::Range(0, 10));

TEST(Optimize, ReportsShrinkOnRealWorkload) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 2);
  const auto fleet = device::table3_fleet(4);
  const auto compiled = compile(m.circuit(), fleet[0]);
  const Circuit out = optimize(compiled.executable);
  // The RY decomposition alone guarantees a healthy reduction.
  EXPECT_LT(static_cast<double>(out.size()),
            0.8 * static_cast<double>(compiled.executable.size()));
}

}  // namespace
}  // namespace arbiterq::transpile
