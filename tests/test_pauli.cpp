#include "arbiterq/circuit/pauli.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/sim/observables.hpp"

namespace arbiterq::circuit {
namespace {

TEST(PauliString, ConstructionAndParse) {
  EXPECT_THROW(PauliString(0), std::invalid_argument);
  const PauliString id(3);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.to_string(), "III");

  const PauliString p = PauliString::parse("ZxYi");
  EXPECT_EQ(p.num_qubits(), 4);
  EXPECT_EQ(p.op(0), PauliOp::kZ);
  EXPECT_EQ(p.op(1), PauliOp::kX);
  EXPECT_EQ(p.op(2), PauliOp::kY);
  EXPECT_EQ(p.op(3), PauliOp::kI);
  EXPECT_EQ(p.to_string(), "ZXYI");
  EXPECT_EQ(p.weight(), 3);
  EXPECT_THROW(PauliString::parse("ZQ"), std::invalid_argument);
}

TEST(PauliString, SetAndBounds) {
  PauliString p(2);
  p.set(1, PauliOp::kZ);
  EXPECT_EQ(p.to_string(), "IZ");
  EXPECT_THROW(p.set(2, PauliOp::kX), std::out_of_range);
  EXPECT_THROW(p.op(-1), std::out_of_range);
}

TEST(PauliString, Commutation) {
  // X and Z on the same qubit anticommute.
  EXPECT_FALSE(
      PauliString::parse("X").commutes_with(PauliString::parse("Z")));
  // XX and ZZ commute (two anticommuting sites).
  EXPECT_TRUE(
      PauliString::parse("XX").commutes_with(PauliString::parse("ZZ")));
  // XI and ZZ anticommute (one site).
  EXPECT_FALSE(
      PauliString::parse("XI").commutes_with(PauliString::parse("ZZ")));
  // Identity commutes with everything.
  EXPECT_TRUE(
      PauliString::parse("II").commutes_with(PauliString::parse("XY")));
  EXPECT_THROW(
      PauliString::parse("X").commutes_with(PauliString::parse("XX")),
      std::invalid_argument);
}

TEST(Observables, ZExpectationMatchesStatevector) {
  sim::Statevector sv(2);
  sv.apply_mat2(matrix_ry(0.9), 0);
  sv.apply_mat2(matrix_ry(-1.7), 1);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("ZI")),
              sv.expectation_z(0), 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("IZ")),
              sv.expectation_z(1), 1e-12);
}

TEST(Observables, IdentityExpectationIsOne) {
  sim::Statevector sv(3);
  sv.apply_mat2(gate_matrix_1q(GateKind::kH, {}), 1);
  EXPECT_NEAR(sim::expectation(sv, PauliString(3)), 1.0, 1e-12);
}

TEST(Observables, XExpectationOnPlusState) {
  sim::Statevector sv(1);
  sv.apply_mat2(gate_matrix_1q(GateKind::kH, {}), 0);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("X")), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("Z")), 0.0, 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("Y")), 0.0, 1e-12);
}

TEST(Observables, BellStateCorrelations) {
  sim::Statevector sv(2);
  sv.apply_mat2(gate_matrix_1q(GateKind::kH, {}), 0);
  sv.apply_mat4(gate_matrix_2q(GateKind::kCX, {}), 0, 1);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("ZZ")), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("XX")), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("YY")), -1.0, 1e-12);
  EXPECT_NEAR(sim::expectation(sv, PauliString::parse("ZI")), 0.0, 1e-12);
}

TEST(Observables, DensityMatrixAgreesWithStatevector) {
  Circuit c(3, 0);
  c.h(0).cx(0, 1).ry(2, ParamExpr::constant(0.8)).cz(1, 2);
  sim::Statevector sv(3);
  sim::DensityMatrix rho(3);
  for (const auto& g : c.gates()) {
    sv.apply_gate(g, {});
    rho.apply_gate(g, {});
  }
  for (const char* s : {"ZII", "IZI", "ZZI", "XXI", "YYZ", "XYZ"}) {
    EXPECT_NEAR(sim::expectation(sv, PauliString::parse(s)),
                sim::expectation(rho, PauliString::parse(s)), 1e-10)
        << s;
  }
}

TEST(Observables, MixedStateExpectationShrinks) {
  sim::DensityMatrix rho(1);
  rho.apply_mat2(gate_matrix_1q(GateKind::kX, {}), 0);  // <Z> = -1
  rho.depolarize_1q(0, 0.3);
  const double z = sim::expectation(rho, PauliString::parse("Z"));
  EXPECT_NEAR(z, -(1.0 - 4.0 * 0.3 / 3.0), 1e-12);
}

TEST(Observables, PauliSum) {
  sim::Statevector sv(2);
  sv.apply_mat2(gate_matrix_1q(GateKind::kH, {}), 0);
  sv.apply_mat4(gate_matrix_2q(GateKind::kCX, {}), 0, 1);
  const std::vector<sim::PauliTerm> h = {
      {0.5, PauliString::parse("ZZ")},
      {-1.5, PauliString::parse("XX")},
      {2.0, PauliString(2)},
  };
  EXPECT_NEAR(sim::expectation(sv, h), 0.5 - 1.5 + 2.0, 1e-12);
}

TEST(Observables, QubitMismatchThrows) {
  sim::Statevector sv(2);
  EXPECT_THROW(sim::expectation(sv, PauliString::parse("Z")),
               std::invalid_argument);
  sim::DensityMatrix rho(2);
  EXPECT_THROW(sim::expectation(rho, PauliString::parse("ZZZ")),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::circuit
