#include "arbiterq/core/behavioral_vector.hpp"

#include <gtest/gtest.h>

#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/model.hpp"

namespace arbiterq::core {
namespace {

using device::Qpu;
using device::QpuSpec;
using device::Topology;

Qpu make_device(Topology topo, double infid_1q = 2e-4,
                double infid_2q = 4e-3) {
  QpuSpec s;
  s.name = "dev";
  s.topology = std::move(topo);
  s.infidelity_1q = infid_1q;
  s.infidelity_2q = infid_2q;
  s.t1_us = 150.0;
  s.t2_us = 60.0;
  s.noise_seed = 11;
  return Qpu(s);
}

BehavioralVector vectorize_on(const qnn::QnnModel& m, const Qpu& dev) {
  const auto compiled = transpile::compile(m.circuit(), dev);
  return vectorize(compiled, dev, m.circuit().size());
}

TEST(BehavioralVector, LengthsMatchLogicalCircuit) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 2);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::line(3)));
  EXPECT_EQ(bv.length(), m.circuit().size());
  EXPECT_EQ(bv.contextual.size(), bv.topological.size());
  EXPECT_EQ(bv.concatenated().size(), 2 * bv.length());
}

TEST(BehavioralVector, AllElementsAreErrors) {
  const qnn::QnnModel m(qnn::Backbone::kCRx, 4, 2);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::line(4)));
  for (double v : bv.contextual) {
    EXPECT_GT(v, 0.0);  // every logical gate decomposes to >= 1 basis gate
    EXPECT_LT(v, 1.0);
  }
  for (double v : bv.topological) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(BehavioralVector, TopologicalZeroWithoutRouting) {
  // Ring model on a ring topology: no SWAPs, so the topological part is
  // all zeros.
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 1);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::ring(4)));
  for (double v : bv.topological) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BehavioralVector, TopologicalNonZeroExactlyForRoutedGates) {
  // Ring model on a line: the wrap-around CRZ gates force SWAPs; their
  // topological entries must be positive, the encoding RY entries zero.
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 1);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::line(4)));
  double topo_total = 0.0;
  for (double v : bv.topological) topo_total += v;
  EXPECT_GT(topo_total, 0.0);
  // Encoding gates (indices 0..3) are single-qubit: never routed.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(bv.topological[i], 0.0) << i;
  }
}

TEST(BehavioralVector, NoisierDeviceHasLargerContextualEntries) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 2);
  const BehavioralVector clean =
      vectorize_on(m, make_device(Topology::line(3), 1e-4, 1e-3));
  const BehavioralVector dirty =
      vectorize_on(m, make_device(Topology::line(3), 8e-4, 9e-3));
  double sum_clean = 0.0;
  double sum_dirty = 0.0;
  for (std::size_t i = 0; i < clean.length(); ++i) {
    sum_clean += clean.contextual[i];
    sum_dirty += dirty.contextual[i];
  }
  EXPECT_GT(sum_dirty, sum_clean);
}

TEST(BehavioralVector, TwoQubitGatesCostMoreThanOneQubit) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 3, 1);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::fully_connected(3)));
  // Index 0 is an encoding RY; index 3 (first learning RY) similar;
  // index 6 is a CRZ whose error must dominate the RY's.
  EXPECT_GT(bv.contextual[6], bv.contextual[0]);
}

TEST(BehavioralVector, ToStringShowsBothParts) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 1);
  const BehavioralVector bv =
      vectorize_on(m, make_device(Topology::line(2)));
  const std::string s = bv.to_string();
  EXPECT_NE(s.find("ctx"), std::string::npos);
  EXPECT_NE(s.find("topo"), std::string::npos);
}

TEST(BehavioralVector, DifferentTopologiesGiveDifferentVectors) {
  const qnn::QnnModel m(qnn::Backbone::kCRz, 4, 2);
  const auto line = vectorize_on(m, make_device(Topology::line(4)));
  const auto ring = vectorize_on(m, make_device(Topology::ring(4)));
  double diff = 0.0;
  const auto a = line.concatenated();
  const auto b = ring.concatenated();
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace arbiterq::core
