// Prometheus text-exposition rendering (0.0.4): a small format parser
// validates the structural rules (HELP/TYPE headers, sample line shape,
// legal metric names, cumulative le buckets, _count == +Inf bucket), plus
// the HistogramSnapshot quantile helpers against known distributions.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/prometheus.hpp"

namespace {

using namespace arbiterq;

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

/// One parsed sample: base name (labels stripped), optional le label,
/// numeric value.
struct Sample {
  std::string name;
  std::string le;  ///< empty when no {le="..."} label
  double value = 0.0;
};

/// Minimal 0.0.4 parser for the subset we emit. Returns false (with a
/// diagnostic) on any structural violation.
bool parse_exposition(const std::string& text,
                      std::map<std::string, std::string>* types,
                      std::vector<Sample>* samples, std::string* error) {
  std::istringstream is(text);
  std::string line;
  std::map<std::string, bool> helped;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        *error = "HELP without text: " + line;
        return false;
      }
      helped[rest.substr(0, sp)] = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        *error = "TYPE without kind: " + line;
        return false;
      }
      const std::string name = rest.substr(0, sp);
      const std::string kind = rest.substr(sp + 1);
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        *error = "unknown TYPE kind: " + line;
        return false;
      }
      if (!helped.count(name)) {
        *error = "TYPE before HELP: " + line;
        return false;
      }
      (*types)[name] = kind;
      continue;
    }
    if (line[0] == '#') {
      *error = "unknown comment form: " + line;
      return false;
    }
    // Sample: name[{labels}] value
    Sample s;
    std::size_t pos = line.find('{');
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      *error = "sample without value: " + line;
      return false;
    }
    if (pos != std::string::npos && pos < sp) {
      s.name = line.substr(0, pos);
      const std::size_t close = line.find('}', pos);
      if (close == std::string::npos || close > sp) {
        *error = "unterminated label set: " + line;
        return false;
      }
      const std::string labels = line.substr(pos + 1, close - pos - 1);
      if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
        *error = "unexpected label set: " + line;
        return false;
      }
      s.le = labels.substr(4, labels.size() - 5);
    } else {
      s.name = line.substr(0, sp);
    }
    if (!valid_metric_name(s.name)) {
      *error = "illegal metric name: " + s.name;
      return false;
    }
    char* end = nullptr;
    s.value = std::strtod(line.c_str() + sp + 1, &end);
    if (end == line.c_str() + sp + 1) {
      *error = "unparsable value: " + line;
      return false;
    }
    samples->push_back(s);
  }
  return true;
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(telemetry::prometheus_name("sim.apply.gate1q"),
            "arbiterq_sim_apply_gate1q");
  EXPECT_EQ(telemetry::prometheus_name("weird name+x"),
            "arbiterq_weird_name_x");
  EXPECT_TRUE(valid_metric_name(telemetry::prometheus_name("a,b\"c\nd")));
}

TEST(Prometheus, RenderedSnapshotPassesFormatValidation) {
  telemetry::MetricsRegistry reg;
  reg.counter("core.train.epochs").add(12);
  reg.gauge("exec.pool.threads").set(8.0);
  telemetry::Histogram& h =
      reg.histogram("sim.apply.latency_us", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(1e6);  // overflow
  // A name needing sanitization end to end.
  reg.counter("nasty name,with\"stuff").add(1);

  const std::string text = telemetry::prometheus_text(reg.snapshot());
  std::map<std::string, std::string> types;
  std::vector<Sample> samples;
  std::string error;
  ASSERT_TRUE(parse_exposition(text, &types, &samples, &error)) << error;

  EXPECT_EQ(types.at("arbiterq_core_train_epochs_total"), "counter");
  EXPECT_EQ(types.at("arbiterq_exec_pool_threads"), "gauge");
  EXPECT_EQ(types.at("arbiterq_sim_apply_latency_us"), "histogram");
  EXPECT_EQ(types.at("arbiterq_nasty_name_with_stuff_total"), "counter");

  double count_value = -1.0, inf_bucket = -1.0, sum_value = -1.0;
  double prev_bucket = -1.0;
  int buckets = 0;
  for (const Sample& s : samples) {
    if (s.name == "arbiterq_core_train_epochs_total") {
      EXPECT_DOUBLE_EQ(s.value, 12.0);
    } else if (s.name == "arbiterq_exec_pool_threads") {
      EXPECT_DOUBLE_EQ(s.value, 8.0);
    } else if (s.name == "arbiterq_sim_apply_latency_us_bucket") {
      ++buckets;
      EXPECT_GE(s.value, prev_bucket) << "le buckets must be cumulative";
      prev_bucket = s.value;
      if (s.le == "+Inf") inf_bucket = s.value;
    } else if (s.name == "arbiterq_sim_apply_latency_us_count") {
      count_value = s.value;
    } else if (s.name == "arbiterq_sim_apply_latency_us_sum") {
      sum_value = s.value;
    }
  }
  EXPECT_EQ(buckets, 4);  // 3 bounds + +Inf
  EXPECT_DOUBLE_EQ(inf_bucket, 4.0);
  EXPECT_DOUBLE_EQ(count_value, inf_bucket);
  EXPECT_DOUBLE_EQ(sum_value, 0.5 + 5.0 + 50.0 + 1e6);
}

TEST(Prometheus, WriteRoundTripAndBadPath) {
  telemetry::MetricsRegistry reg;
  reg.counter("t.prom.file").add(3);
  const auto snap = reg.snapshot();
  const std::string path = testing::TempDir() + "arbiterq_metrics.prom";
  telemetry::write_prometheus(path, snap);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, telemetry::prometheus_text(snap));
  std::remove(path.c_str());
  EXPECT_THROW(telemetry::write_prometheus("/nonexistent-dir/x/m.prom", snap),
               std::runtime_error);
}

TEST(Quantile, LinearInterpolationOnKnownDistribution) {
  // 1..100, one observation each, decade buckets: every quantile is
  // exactly recoverable under the uniform-within-bucket assumption.
  telemetry::Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = h.upper_bounds();
  snap.bucket_counts = h.bucket_counts();
  snap.count = h.count();
  snap.sum = h.sum();

  EXPECT_DOUBLE_EQ(snap.p50(), 50.0);
  EXPECT_DOUBLE_EQ(snap.p90(), 90.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 99.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  // q clamps into [0, 1].
  EXPECT_DOUBLE_EQ(snap.quantile(2.0), snap.quantile(1.0));
}

TEST(Quantile, FirstBucketInterpolatesFromZero) {
  telemetry::Histogram h({10.0});
  h.observe(3.0);
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = h.upper_bounds();
  snap.bucket_counts = h.bucket_counts();
  snap.count = h.count();
  // rank 0.5 of 1 observation, bucket (0, 10] -> 5.0.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
}

TEST(Quantile, OverflowClampsToHighestFiniteBound) {
  telemetry::Histogram h({1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = h.upper_bounds();
  snap.bucket_counts = h.bucket_counts();
  snap.count = h.count();
  EXPECT_DOUBLE_EQ(snap.p99(), 2.0);
}

TEST(Quantile, EmptyHistogramIsNaN) {
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = {1.0};
  snap.bucket_counts = {0, 0};
  EXPECT_TRUE(std::isnan(snap.quantile(0.5)));
  // A snapshot with no buckets at all is equally NaN, not a crash.
  telemetry::HistogramSnapshot bare;
  bare.count = 3;
  EXPECT_TRUE(std::isnan(bare.quantile(0.5)));
}

TEST(Quantile, SingleBucketInterpolatesAcrossItsWholeRange) {
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = {8.0};
  snap.bucket_counts = {4, 0};
  snap.count = 4;
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 8.0);
}

TEST(Quantile, AllObservationsInOverflowClampEveryQuantile) {
  telemetry::HistogramSnapshot snap;
  snap.upper_bounds = {1.0, 2.0};
  snap.bucket_counts = {0, 0, 5};  // nothing under any finite bound
  snap.count = 5;
  EXPECT_DOUBLE_EQ(snap.quantile(0.01), 2.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 2.0);
}

TEST(Prometheus, FuzzedNamesAlwaysSanitizeToLegalMetricNames) {
  // Deterministic byte soup: quotes, newlines, control characters, and
  // invalid UTF-8 lead bytes — everything a hostile tenant label could
  // smuggle toward the exposition format.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 200; ++round) {
    std::string nasty;
    for (int i = 0; i < 24; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      nasty.push_back(static_cast<char>(state >> 56));
    }
    const std::string name = telemetry::prometheus_name(nasty);
    EXPECT_TRUE(valid_metric_name(name)) << "round " << round;
  }
  // Targeted classics on top of the soup.
  for (const char* evil :
       {"\"", "\n", "\r\n", "a{b=\"c\"}", "\xff\xfe", "#\x00HELP",
        "le=\"+Inf\"", "../../etc"}) {
    EXPECT_TRUE(valid_metric_name(telemetry::prometheus_name(evil)))
        << evil;
  }
}

}  // namespace
