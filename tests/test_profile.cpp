// TraceProfile aggregation (count / total / self / min / max), the
// completion-order tolerance for missing parents, and the Chrome
// trace-event exporter's structural guarantees (one X event per span,
// per-thread lanes assigned by first appearance, metadata events, JSON
// escaping).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arbiterq/telemetry/profile.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace {

using namespace arbiterq;

telemetry::TraceEvent make_event(const char* name, std::uint64_t id,
                                 std::uint64_t parent, std::uint32_t depth,
                                 std::uint64_t start, std::uint64_t dur,
                                 std::uint64_t thread = 1) {
  telemetry::TraceEvent e;
  e.name = name;
  e.id = id;
  e.parent_id = parent;
  e.depth = depth;
  e.start_ns = start;
  e.duration_ns = dur;
  e.thread_id = thread;
  return e;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Profile, AggregatesWithSelfTime) {
  // Completion order: the two children close before the root.
  const std::vector<telemetry::TraceEvent> events = {
      make_event("child", 2, 1, 1, 10, 30),
      make_event("child", 3, 1, 1, 50, 20),
      make_event("root", 1, 0, 0, 0, 100),
  };
  const auto profile = telemetry::TraceProfile::from_events(events);
  EXPECT_EQ(profile.total_events(), 3u);
  ASSERT_EQ(profile.rows().size(), 2u);

  // Sorted by total descending: root (100) before child (50).
  const telemetry::SpanStats& root = profile.rows()[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 1u);
  EXPECT_EQ(root.total_ns, 100u);
  EXPECT_EQ(root.self_ns, 50u);  // 100 - 30 - 20
  EXPECT_EQ(root.min_ns, 100u);
  EXPECT_EQ(root.max_ns, 100u);

  const telemetry::SpanStats& child = profile.rows()[1];
  EXPECT_EQ(child.count, 2u);
  EXPECT_EQ(child.total_ns, 50u);
  EXPECT_EQ(child.self_ns, 50u);  // leaves keep their inclusive time
  EXPECT_EQ(child.min_ns, 20u);
  EXPECT_EQ(child.max_ns, 30u);
  EXPECT_DOUBLE_EQ(child.mean_ns(), 25.0);
}

TEST(Profile, ToleratesMissingParents) {
  // The ring evicted the parent of id=5 (or it never closed): the child
  // still aggregates, nothing crashes, nothing goes negative.
  const std::vector<telemetry::TraceEvent> events = {
      make_event("orphan", 5, 999, 3, 0, 40),
  };
  const auto profile = telemetry::TraceProfile::from_events(events);
  ASSERT_EQ(profile.rows().size(), 1u);
  EXPECT_EQ(profile.rows()[0].self_ns, 40u);
}

TEST(Profile, SelfTimeClampsAtZero) {
  // Clock granularity can make children nominally outlast the parent;
  // the parent's self time clamps at 0 instead of wrapping.
  const std::vector<telemetry::TraceEvent> events = {
      make_event("child", 2, 1, 1, 0, 70),
      make_event("child", 3, 1, 1, 0, 70),
      make_event("root", 1, 0, 0, 0, 100),
  };
  const auto profile = telemetry::TraceProfile::from_events(events);
  for (const auto& row : profile.rows()) {
    if (row.name == "root") EXPECT_EQ(row.self_ns, 0u);
  }
}

TEST(Profile, TableAndCsvCoverRows) {
  const std::vector<telemetry::TraceEvent> events = {
      make_event("sim.apply", 1, 0, 0, 0, 1000),
  };
  const auto profile = telemetry::TraceProfile::from_events(events);
  EXPECT_NE(profile.to_table_string().find("sim.apply"), std::string::npos);
  const auto csv = telemetry::profile_csv(profile);
  EXPECT_EQ(csv.num_rows(), 1u);
  EXPECT_NE(csv.to_string().find("name,count,total_ns,self_ns"),
            std::string::npos);
}

TEST(ChromeTrace, OneCompleteEventPerSpanPlusThreadMetadata) {
  const std::vector<telemetry::TraceEvent> events = {
      make_event("a", 1, 0, 0, 0, 2000, /*thread=*/77),
      make_event("b", 2, 0, 0, 500, 1000, /*thread=*/88),
      make_event("c", 3, 0, 0, 3000, 500, /*thread=*/77),
  };
  const std::string json = telemetry::chrome_trace_json(events);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  // Two distinct recording threads -> two thread_name metadata events.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), 2u);
  // Lanes by first appearance: thread 77 -> tid 0, thread 88 -> tid 1,
  // and the third event rejoins lane 0.
  EXPECT_EQ(count_occurrences(json, "\"tid\":0"), 3u);  // metadata + a + c
  EXPECT_EQ(count_occurrences(json, "\"tid\":1"), 2u);  // metadata + b
  // Microsecond timestamps: 2000 ns -> 2.000 us.
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":2.000"), std::string::npos);
  // Linkage rides along in args.
  EXPECT_NE(json.find("\"args\":{\"id\":1,\"parent\":0,\"depth\":0}"),
            std::string::npos);
}

TEST(ChromeTrace, LaneMappingIsStableAcrossExports) {
  const std::vector<telemetry::TraceEvent> events = {
      make_event("x", 1, 0, 0, 0, 10, 123456789ull),
      make_event("y", 2, 0, 0, 0, 10, 42ull),
  };
  EXPECT_EQ(telemetry::chrome_trace_json(events),
            telemetry::chrome_trace_json(events));
}

TEST(ChromeTrace, EscapesSpanNames) {
  // Quotes are kept (JSON-escaped); the newline is sanitized to '_' by
  // safe_label before escaping ever sees it.
  const std::vector<telemetry::TraceEvent> events = {
      make_event("nasty \"quote\"\nname", 1, 0, 0, 0, 10),
  };
  const std::string json = telemetry::chrome_trace_json(events);
  EXPECT_NE(json.find("nasty \\\"quote\\\"_name"), std::string::npos);
  EXPECT_EQ(json.find("\nname"), std::string::npos)
      << "raw newline leaked into a JSON string";
}

TEST(ChromeTrace, FlowEventsGetNamedLanesAfterThreadLanes) {
  std::vector<telemetry::TraceEvent> events = {
      make_event("plain", 1, 0, 0, 0, 10, /*thread=*/77),
      make_event("serve.job", 2, 0, 0, 0, 50, /*thread=*/77),
      make_event("serve.batch.exec", 3, 2, 1, 5, 20, /*thread=*/88),
      make_event("serve.job", 4, 0, 0, 60, 50, /*thread=*/88),
  };
  events[1].flow_id = 8;
  events[1].flow_label = "job-7 tenant=acme";
  events[2].flow_id = 8;  // same job, recorded on another thread
  events[2].flow_label = "job-7 tenant=acme";
  events[3].flow_id = 9;
  // No label on flow 9: the exporter synthesizes one from the id.
  const std::string json = telemetry::chrome_trace_json(events);

  // Lane 0 = the one recording thread; lanes 1 and 2 = the two flows.
  EXPECT_NE(json.find("\"tid\":1,\"name\":\"thread_name\",\"args\":"
                      "{\"name\":\"job-7 tenant=acme\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"flow-9\"}"), std::string::npos);
  // Both spans of flow 8 share lane 1 despite different threads.
  EXPECT_EQ(count_occurrences(json, "\"tid\":1,\"ts\""), 2u);
  // The flow-less event stays in its thread lane.
  EXPECT_EQ(count_occurrences(json, "\"tid\":0,\"ts\""), 1u);
}

TEST(SafeLabel, FuzzedLabelsNeverLeakControlBytesIntoTheJson) {
  // Deterministic byte soup, heavy on quotes / newlines / broken UTF-8.
  std::uint64_t state = 0xDEADBEEFCAFEF00Dull;
  for (int round = 0; round < 200; ++round) {
    std::string nasty;
    const int len = 1 + static_cast<int>(state % 40);
    for (int i = 0; i < len; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      nasty.push_back(static_cast<char>(state >> 56));
    }
    const std::string label = telemetry::safe_label(nasty);
    for (const unsigned char c : label) {
      EXPECT_GE(c, 0x20) << "control byte survived in round " << round;
    }
    // The sanitized label renders into structurally sound JSON: feed it
    // through the exporter as both span name and flow label.
    telemetry::TraceEvent e = make_event("x", 1, 0, 0, 0, 10);
    e.name = nasty;  // exporter sanitizes internally too
    e.flow_id = 1;
    e.flow_label = nasty;
    const std::string json = telemetry::chrome_trace_json({e});
    EXPECT_EQ(json.find('\r'), std::string::npos);
    for (std::size_t i = 0; i + 1 < json.size(); ++i) {
      EXPECT_FALSE(static_cast<unsigned char>(json[i]) < 0x20 &&
                   json[i] != '\n')
          << "raw control byte in JSON, round " << round;
    }
  }
  // Multibyte truncation never splits a sequence: a char that cannot
  // fit whole is replaced by '_', so the first 32 bytes stay 16 intact
  // two-byte pairs.
  const std::string two_byte = "\xC3\xA9";  // é
  std::string long_label;
  for (int i = 0; i < 100; ++i) long_label += two_byte;
  const std::string cut = telemetry::safe_label(long_label, 33);
  ASSERT_EQ(cut.size(), 33u);
  EXPECT_EQ(cut.back(), '_');
  for (std::size_t i = 0; i < 32; i += 2) {
    EXPECT_EQ(static_cast<unsigned char>(cut[i]), 0xC3u) << i;
    EXPECT_EQ(static_cast<unsigned char>(cut[i + 1]), 0xA9u) << i;
  }
}

TEST(ChromeTrace, WriteRoundTripAndBadPath) {
  const std::string path = testing::TempDir() + "arbiterq_trace.json";
  const std::vector<telemetry::TraceEvent> events = {
      make_event("w", 1, 0, 0, 0, 10),
  };
  telemetry::write_chrome_trace(path, events);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, telemetry::chrome_trace_json(events));
  std::remove(path.c_str());
  EXPECT_THROW(
      telemetry::write_chrome_trace("/nonexistent-dir/x/t.json", events),
      std::runtime_error);
}

TEST(ChromeTrace, RealSpansExportCleanly) {
  telemetry::set_telemetry_runtime_enabled(true);
  telemetry::TraceBuffer& buf = telemetry::TraceBuffer::global();
  buf.clear();
  {
    telemetry::ScopedSpan outer("t.profile.outer");
    telemetry::ScopedSpan inner("t.profile.inner");
  }
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const std::string json = telemetry::chrome_trace_json(events);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 1u);  // one thread
  const auto profile = telemetry::TraceProfile::from_events(events);
  ASSERT_EQ(profile.rows().size(), 2u);
  buf.clear();
}

}  // namespace
