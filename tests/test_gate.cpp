#include "arbiterq/circuit/gate.hpp"

#include <gtest/gtest.h>

namespace arbiterq::circuit {
namespace {

TEST(GateKindInfo, Arity) {
  EXPECT_EQ(gate_arity(GateKind::kX), 1);
  EXPECT_EQ(gate_arity(GateKind::kRY), 1);
  EXPECT_EQ(gate_arity(GateKind::kU3), 1);
  EXPECT_EQ(gate_arity(GateKind::kCX), 2);
  EXPECT_EQ(gate_arity(GateKind::kCRZ), 2);
  EXPECT_EQ(gate_arity(GateKind::kSwap), 2);
}

TEST(GateKindInfo, ParamCounts) {
  EXPECT_EQ(gate_param_count(GateKind::kX), 0);
  EXPECT_EQ(gate_param_count(GateKind::kRX), 1);
  EXPECT_EQ(gate_param_count(GateKind::kU3), 3);
  EXPECT_EQ(gate_param_count(GateKind::kCRX), 1);
  EXPECT_EQ(gate_param_count(GateKind::kSwap), 0);
}

TEST(GateKindInfo, Names) {
  EXPECT_EQ(gate_name(GateKind::kCRZ), "crz");
  EXPECT_EQ(gate_name(GateKind::kSX), "sx");
  EXPECT_EQ(gate_name(GateKind::kSwap), "swap");
  EXPECT_EQ(gate_name(GateKind::kU3), "u3");
}

TEST(ParamExpr, ConstantBinding) {
  const ParamExpr p = ParamExpr::constant(1.25);
  EXPECT_TRUE(p.is_constant());
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(p.value(none), 1.25);
}

TEST(ParamExpr, ReferenceBinding) {
  const ParamExpr p = ParamExpr::ref(2, 0.5, -1.0);
  EXPECT_FALSE(p.is_constant());
  const std::vector<double> params = {0.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(p.value(params), 1.0);  // 0.5 * 4 - 1
}

TEST(Gate, BoundParamsPicksRightSlots) {
  Gate g;
  g.kind = GateKind::kU3;
  g.qubits = {0, 0};
  g.params = {ParamExpr::ref(0), ParamExpr::constant(2.0),
              ParamExpr::ref(1, 2.0)};
  const std::vector<double> params = {0.5, 1.5};
  const auto bound = g.bound_params(params);
  EXPECT_DOUBLE_EQ(bound[0], 0.5);
  EXPECT_DOUBLE_EQ(bound[1], 2.0);
  EXPECT_DOUBLE_EQ(bound[2], 3.0);
}

TEST(Gate, ToStringMentionsEverything) {
  Gate g;
  g.kind = GateKind::kCRZ;
  g.qubits = {1, 3};
  g.params[0] = ParamExpr::ref(4, 0.5);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("crz"), std::string::npos);
  EXPECT_NE(s.find("q1"), std::string::npos);
  EXPECT_NE(s.find("q3"), std::string::npos);
  EXPECT_NE(s.find("p4"), std::string::npos);

  g.is_routing_swap = true;
  EXPECT_NE(g.to_string().find("[route]"), std::string::npos);
}

}  // namespace
}  // namespace arbiterq::circuit
