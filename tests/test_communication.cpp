// Tests for the trainers' gradient-message accounting.

#include <gtest/gtest.h>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

struct CommFixture {
  CommFixture()
      : model(qnn::Backbone::kCRz, 2, 2),
        split(data::prepare_case({"iris", 2, 2})) {}

  qnn::QnnModel model;
  data::EncodedSplit split;
};

TEST(Communication, SingleNodeIsSilent) {
  const CommFixture f;
  TrainConfig cfg;
  cfg.epochs = 5;
  const DistributedTrainer t(f.model, device::table3_fleet_subset(4, 2),
                             cfg);
  EXPECT_EQ(t.train(Strategy::kSingleNode, f.split).gradient_messages, 0U);
}

TEST(Communication, CentralizedStrategiesPayTwoNPerEpoch) {
  const CommFixture f;
  TrainConfig cfg;
  cfg.epochs = 5;
  const DistributedTrainer t(f.model, device::table3_fleet_subset(4, 2),
                             cfg);
  for (Strategy s : {Strategy::kAllSharing, Strategy::kEqc}) {
    EXPECT_EQ(t.train(s, f.split).gradient_messages, 5U * 2U * 4U)
        << strategy_name(s);
  }
}

TEST(Communication, ArbiterQPaysPeerLinksOnly) {
  const CommFixture f;
  TrainConfig cfg;
  cfg.epochs = 5;
  const DistributedTrainer t(f.model, device::table3_fleet_subset(6, 2),
                             cfg);
  std::size_t links = 0;
  for (const auto& g : t.sharing_groups()) {
    links += g.size() * (g.size() - 1);  // directed peer links
  }
  EXPECT_EQ(t.train(Strategy::kArbiterQ, f.split).gradient_messages,
            5U * links);
}

TEST(Communication, IsolatedFleetCommunicatesNothingUnderArbiterQ) {
  const CommFixture f;
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.distance_threshold = 0.0;  // every node is its own group
  const DistributedTrainer t(f.model, device::table3_fleet_subset(4, 2),
                             cfg);
  EXPECT_EQ(t.train(Strategy::kArbiterQ, f.split).gradient_messages, 0U);
}

TEST(Communication, ChurnReducesTraffic) {
  const CommFixture f;
  TrainConfig base;
  base.epochs = 20;
  TrainConfig churny = base;
  churny.offline_probability = 0.5;
  const DistributedTrainer a(f.model, device::table3_fleet_subset(6, 2),
                             base);
  const DistributedTrainer b(f.model, device::table3_fleet_subset(6, 2),
                             churny);
  EXPECT_LT(b.train(Strategy::kEqc, f.split).gradient_messages,
            a.train(Strategy::kEqc, f.split).gradient_messages);
}

}  // namespace
}  // namespace arbiterq::core
