#include "arbiterq/core/similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace arbiterq::core {
namespace {

BehavioralVector bv(std::vector<double> ctx, std::vector<double> topo) {
  BehavioralVector v;
  v.contextual = std::move(ctx);
  v.topological = std::move(topo);
  return v;
}

TEST(BehavioralDistance, Eq1Definition) {
  const auto a = bv({0.0, 0.0}, {0.0, 0.0});
  const auto b = bv({3e-3, 0.0}, {4e-3, 0.0});
  // ||a-b||_2 = 5e-3, length = 4, dist = 1.25e-3.
  EXPECT_NEAR(behavioral_distance(a, b), 1.25e-3, 1e-12);
  EXPECT_DOUBLE_EQ(behavioral_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(behavioral_distance(a, b), behavioral_distance(b, a));
}

TEST(BehavioralDistance, LengthMismatchThrows) {
  EXPECT_THROW(behavioral_distance(bv({0.1}, {0.0}),
                                   bv({0.1, 0.2}, {0.0, 0.0})),
               std::invalid_argument);
}

TEST(Similarity, ExponentialKernel) {
  EXPECT_DOUBLE_EQ(similarity_from_distance(0.0, 2000.0), 1.0);
  EXPECT_NEAR(similarity_from_distance(1e-3, 2000.0), std::exp(-2.0),
              1e-12);
  EXPECT_THROW(similarity_from_distance(-1.0, 2000.0),
               std::invalid_argument);
  EXPECT_THROW(similarity_from_distance(1.0, -2000.0),
               std::invalid_argument);
}

TEST(Similarity, KappaSharpensKernel) {
  const double d = 5e-4;
  EXPECT_GT(similarity_from_distance(d, 100.0),
            similarity_from_distance(d, 10000.0));
}

class SimilarityGraphTest : public ::testing::Test {
 protected:
  SimilarityGraphTest()
      : vectors_({bv({0.00, 0.0}, {0.0, 0.0}),   // node 0
                  bv({0.001, 0.0}, {0.0, 0.0}),  // node 1, close to 0
                  bv({0.05, 0.0}, {0.0, 0.0}),   // node 2, far away
                  bv({0.051, 0.0}, {0.0, 0.0})}),  // node 3, close to 2
        graph_(vectors_, 2000.0) {}

  std::vector<BehavioralVector> vectors_;
  SimilarityGraph graph_;
};

TEST_F(SimilarityGraphTest, MatricesWellFormed) {
  EXPECT_EQ(graph_.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(graph_.distance(i, i), 0.0);
    EXPECT_DOUBLE_EQ(graph_.similarity(i, i), 1.0);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(graph_.distance(i, j), graph_.distance(j, i));
      EXPECT_GE(graph_.similarity(i, j), 0.0);
      EXPECT_LE(graph_.similarity(i, j), 1.0);
    }
  }
}

TEST_F(SimilarityGraphTest, GroupsAreConnectedComponents) {
  const auto groups = graph_.groups(1e-3);
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<int>{2, 3}));
}

TEST_F(SimilarityGraphTest, TinyThresholdIsolatesEverything) {
  const auto groups = graph_.groups(1e-9);
  EXPECT_EQ(groups.size(), 4U);
}

TEST_F(SimilarityGraphTest, HugeThresholdMergesEverything) {
  const auto groups = graph_.groups(1.0);
  ASSERT_EQ(groups.size(), 1U);
  EXPECT_EQ(groups[0].size(), 4U);
}

TEST_F(SimilarityGraphTest, PeersExcludeSelf) {
  const auto peers = graph_.peers(0, 1e-3);
  ASSERT_EQ(peers.size(), 1U);
  EXPECT_EQ(peers[0], 1);
  EXPECT_TRUE(graph_.peers(0, 1e-9).empty());
}

TEST(SimilarityGraph, ChainedComponentsMerge) {
  // a-b close, b-c close, a-c far: all three must land in one group.
  std::vector<BehavioralVector> vs = {bv({0.000}, {0.0}),
                                      bv({0.002}, {0.0}),
                                      bv({0.004}, {0.0})};
  const SimilarityGraph g(vs, 2000.0);
  const auto groups = g.groups(1.1e-3);  // pairwise adjacent only
  ASSERT_EQ(groups.size(), 1U);
  EXPECT_EQ(groups[0].size(), 3U);
}

TEST(SimilarityGraph, EmptyInputThrows) {
  EXPECT_THROW(SimilarityGraph({}, 2000.0), std::invalid_argument);
}

}  // namespace
}  // namespace arbiterq::core
