#include "arbiterq/sim/adjoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/simulator.hpp"

namespace arbiterq::sim {
namespace {

using circuit::Circuit;
using circuit::ParamExpr;

std::vector<double> fd_gradient_z(const StatevectorSimulator& sim,
                                  const Circuit& c,
                                  std::vector<double> params, int qubit,
                                  double h = 1e-6) {
  std::vector<double> grad(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double p0 = params[i];
    params[i] = p0 + h;
    const double fp = sim.expectation_z(c, params, qubit);
    params[i] = p0 - h;
    const double fm = sim.expectation_z(c, params, qubit);
    params[i] = p0;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

TEST(Adjoint, SingleRyClosedForm) {
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0));
  // <Z> = cos(theta) -> d/dtheta = -sin(theta).
  for (double theta : {0.0, 0.4, 1.3, -2.0}) {
    const std::vector<double> params = {theta};
    const auto g = adjoint_gradient_z(c, params, 0);
    ASSERT_EQ(g.size(), 1U);
    EXPECT_NEAR(g[0], -std::sin(theta), 1e-10) << "theta=" << theta;
  }
}

TEST(Adjoint, SharedParameterAccumulates) {
  // Two RY gates driven by the same parameter: gradient doubles.
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0)).ry(0, ParamExpr::ref(0));
  const std::vector<double> params = {0.6};
  const auto g = adjoint_gradient_z(c, params, 0);
  EXPECT_NEAR(g[0], -2.0 * std::sin(1.2), 1e-10);
}

TEST(Adjoint, CoefficientChainRule) {
  // RY(0.5 * p): d<Z>/dp = -0.5 sin(0.5 p).
  Circuit c(1, 1);
  c.ry(0, ParamExpr::ref(0, 0.5));
  const std::vector<double> params = {1.4};
  const auto g = adjoint_gradient_z(c, params, 0);
  EXPECT_NEAR(g[0], -0.5 * std::sin(0.7), 1e-10);
}

TEST(Adjoint, ParamsTooShortThrows) {
  Circuit c(1, 2);
  c.ry(0, ParamExpr::ref(1));
  const std::vector<double> params = {0.1};
  EXPECT_THROW(adjoint_gradient_z(c, params, 0), std::invalid_argument);
}

struct AdjointCase {
  const char* name;
  int qubits;
  bool use_crz;
};

class AdjointVsFiniteDifference
    : public ::testing::TestWithParam<AdjointCase> {};

Circuit random_model(const AdjointCase& ac, int params_count) {
  Circuit c(ac.qubits, params_count);
  int p = 0;
  for (int layer = 0; layer < 2; ++layer) {
    for (int q = 0; q < ac.qubits; ++q) {
      c.ry(q, ParamExpr::ref(p++ % params_count));
    }
    for (int q = 0; q < ac.qubits; ++q) {
      const int t = (q + 1) % ac.qubits;
      if (ac.use_crz) {
        c.crz(q, t, ParamExpr::ref(p++ % params_count));
      } else {
        c.crx(q, t, ParamExpr::ref(p++ % params_count));
      }
    }
  }
  return c;
}

TEST_P(AdjointVsFiniteDifference, NoiselessAgreement) {
  const AdjointCase ac = GetParam();
  const int n_params = 4 * ac.qubits;
  const Circuit c = random_model(ac, n_params);
  math::Rng rng(137);
  std::vector<double> params(static_cast<std::size_t>(n_params));
  for (double& v : params) v = rng.uniform(-1.5, 1.5);

  StatevectorSimulator sim;
  const auto adjoint = adjoint_gradient_z(c, params, 0);
  const auto fd = fd_gradient_z(sim, c, params, 0);
  ASSERT_EQ(adjoint.size(), fd.size());
  for (std::size_t i = 0; i < fd.size(); ++i) {
    EXPECT_NEAR(adjoint[i], fd[i], 1e-6) << ac.name << " param " << i;
  }
}

TEST_P(AdjointVsFiniteDifference, NoisyAgreement) {
  const AdjointCase ac = GetParam();
  const int n_params = 4 * ac.qubits;
  const Circuit c = random_model(ac, n_params);
  math::Rng rng(139);
  std::vector<double> params(static_cast<std::size_t>(n_params));
  for (double& v : params) v = rng.uniform(-1.5, 1.5);

  NoiseModel noise(ac.qubits);
  for (int q = 0; q < ac.qubits; ++q) {
    noise.set_depolarizing_1q(q, 0.01 + 0.002 * q);
    noise.set_coherent_bias(q, 0.05 * (q + 1));
  }
  for (int q = 0; q < ac.qubits; ++q) {
    noise.set_depolarizing_2q(q, (q + 1) % ac.qubits, 0.02);
  }
  StatevectorSimulator sim(noise);
  const auto adjoint = adjoint_gradient_z(c, params, 0, &noise);
  const auto fd = fd_gradient_z(sim, c, params, 0);
  for (std::size_t i = 0; i < fd.size(); ++i) {
    EXPECT_NEAR(adjoint[i], fd[i], 1e-6) << ac.name << " param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AdjointVsFiniteDifference,
    ::testing::Values(AdjointCase{"crz2", 2, true},
                      AdjointCase{"crx2", 2, false},
                      AdjointCase{"crz3", 3, true},
                      AdjointCase{"crx4", 4, false},
                      AdjointCase{"crz5", 5, true}),
    [](const ::testing::TestParamInfo<AdjointCase>& info) {
      return info.param.name;
    });

TEST(Adjoint, U3AllThreeAnglesDifferentiated) {
  Circuit c(2, 3);
  c.u3(0, ParamExpr::ref(0), ParamExpr::ref(1), ParamExpr::ref(2));
  c.cx(0, 1);
  c.u3(1, ParamExpr::ref(1), ParamExpr::ref(2), ParamExpr::ref(0));
  const std::vector<double> params = {0.5, -0.8, 1.1};
  StatevectorSimulator sim;
  const auto adjoint = adjoint_gradient_z(c, params, 1);
  const auto fd = fd_gradient_z(sim, c, params, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(adjoint[i], fd[i], 1e-6) << "u3 angle " << i;
  }
}

}  // namespace
}  // namespace arbiterq::sim
