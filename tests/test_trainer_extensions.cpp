// Tests for the trainer's extension knobs: gradient pruning (after QOC)
// and device churn (the paper's "frequent online/offline" instability).

#include <gtest/gtest.h>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/device/presets.hpp"

namespace arbiterq::core {
namespace {

struct Fixture {
  Fixture()
      : model(qnn::Backbone::kCRz, 2, 2),
        split(data::prepare_case({"iris", 2, 2})) {}

  DistributedTrainer make(TrainConfig cfg, int fleet = 4) const {
    return DistributedTrainer(model, device::table3_fleet_subset(fleet, 2),
                              cfg);
  }

  qnn::QnnModel model;
  data::EncodedSplit split;
};

TEST(TrainerPruning, ZeroRatioMatchesBaseline) {
  const Fixture s;
  TrainConfig base;
  base.epochs = 6;
  TrainConfig pruned = base;
  pruned.gradient_prune_ratio = 0.0;
  const auto a = s.make(base).train(Strategy::kArbiterQ, s.split);
  const auto b = s.make(pruned).train(Strategy::kArbiterQ, s.split);
  EXPECT_EQ(a.epoch_test_loss, b.epoch_test_loss);
}

TEST(TrainerPruning, PrunedRunStillLearns) {
  const Fixture s;
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.gradient_prune_ratio = 0.5;
  const auto r = s.make(cfg).train(Strategy::kArbiterQ, s.split);
  EXPECT_LT(r.epoch_test_loss.back(), r.epoch_test_loss.front() * 0.7);
}

TEST(TrainerPruning, HeavyPruningSlowsConvergence) {
  const Fixture s;
  TrainConfig none;
  none.epochs = 30;
  TrainConfig heavy = none;
  heavy.gradient_prune_ratio = 0.9;  // keep only 10% of components
  const auto full = s.make(none).train(Strategy::kArbiterQ, s.split);
  const auto pruned = s.make(heavy).train(Strategy::kArbiterQ, s.split);
  // Comparing areas under the curve: pruning must not speed things up.
  double auc_full = 0.0;
  double auc_pruned = 0.0;
  for (int e = 0; e < none.epochs; ++e) {
    auc_full += full.epoch_test_loss[static_cast<std::size_t>(e)];
    auc_pruned += pruned.epoch_test_loss[static_cast<std::size_t>(e)];
  }
  EXPECT_GT(auc_pruned, auc_full * 0.95);
}

TEST(TrainerChurn, ZeroProbabilityMatchesBaseline) {
  const Fixture s;
  TrainConfig base;
  base.epochs = 6;
  TrainConfig churny = base;
  churny.offline_probability = 0.0;
  const auto a = s.make(base).train(Strategy::kEqc, s.split);
  const auto b = s.make(churny).train(Strategy::kEqc, s.split);
  EXPECT_EQ(a.epoch_test_loss, b.epoch_test_loss);
}

TEST(TrainerChurn, AllStrategiesSurviveHeavyChurn) {
  const Fixture s;
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.offline_probability = 0.5;
  const auto trainer = s.make(cfg, 5);
  for (Strategy st : {Strategy::kSingleNode, Strategy::kAllSharing,
                      Strategy::kEqc, Strategy::kArbiterQ}) {
    const auto r = trainer.train(st, s.split);
    EXPECT_EQ(r.epoch_test_loss.size(), 12U) << strategy_name(st);
    for (double l : r.epoch_test_loss) {
      EXPECT_GE(l, 0.0);
      EXPECT_LE(l, 1.5);
    }
  }
}

TEST(TrainerChurn, ChurnSlowsSingleNodeMoreThanFleet) {
  // A lone device that is offline half the time loses half its epochs;
  // a fleet almost always has someone online.
  const Fixture s;
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.offline_probability = 0.5;
  const auto trainer = s.make(cfg, 5);
  const auto single = trainer.train(Strategy::kSingleNode, s.split);
  const auto arbiter = trainer.train(Strategy::kArbiterQ, s.split);
  double auc_single = 0.0;
  double auc_arbiter = 0.0;
  for (int e = 0; e < cfg.epochs; ++e) {
    auc_single += single.epoch_test_loss[static_cast<std::size_t>(e)];
    auc_arbiter += arbiter.epoch_test_loss[static_cast<std::size_t>(e)];
  }
  EXPECT_LT(auc_arbiter, auc_single);
}

TEST(TrainerChurn, DeterministicUnderSeed) {
  const Fixture s;
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.offline_probability = 0.3;
  const auto trainer = s.make(cfg);
  const auto a = trainer.train(Strategy::kArbiterQ, s.split);
  const auto b = trainer.train(Strategy::kArbiterQ, s.split);
  EXPECT_EQ(a.epoch_test_loss, b.epoch_test_loss);
}

TEST(TrainerMitigation, MitigationChangesDeepCircuitTraining) {
  // On a deliberately deep model, mitigation must recover signal.
  const qnn::QnnModel deep(qnn::Backbone::kCRz, 2, 8);
  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  TrainConfig plain;
  plain.epochs = 10;
  TrainConfig mitigated = plain;
  mitigated.error_mitigation = true;
  const DistributedTrainer t_plain(deep, device::table3_fleet_subset(3, 2),
                                   plain);
  const DistributedTrainer t_mit(deep, device::table3_fleet_subset(3, 2),
                                 mitigated);
  const auto r_plain = t_plain.train(Strategy::kArbiterQ, split);
  const auto r_mit = t_mit.train(Strategy::kArbiterQ, split);
  // The mitigated run improves markedly more than the attenuated one.
  const double gain_plain =
      r_plain.epoch_test_loss.front() - r_plain.epoch_test_loss.back();
  const double gain_mit =
      r_mit.epoch_test_loss.front() - r_mit.epoch_test_loss.back();
  EXPECT_GT(gain_mit, gain_plain + 0.01);
}

}  // namespace
}  // namespace arbiterq::core
