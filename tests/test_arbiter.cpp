// Multi-tenant QoS tests: the pluggable Arbiter implementations (FIFO,
// round-robin, matrix, weighted-credit), the per-tenant JobQueue lanes
// they drive, and the runtime-level guarantees — modeled-clock quotas
// deciding deterministically, per-tenant accounting in reports and
// gauges, and the admitted set staying bit-identical across shard
// counts for every arbiter.

#include "arbiterq/serve/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/serve/job_queue.hpp"
#include "arbiterq/serve/runtime.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {
namespace {

constexpr std::uint64_t kNone = kNoRequest;

std::unique_ptr<Arbiter> make(ArbiterKind kind,
                              std::vector<double> weights = {}) {
  const std::size_t n = weights.empty() ? 3 : weights.size();
  ArbiterConfig cfg;
  cfg.kind = kind;
  cfg.weights = std::move(weights);
  return Arbiter::create(cfg, n);
}

// ------------------------------------------------------------ unit level

TEST(Arbiter, NamesRoundTripAndParseRejectsUnknown) {
  for (ArbiterKind k :
       {ArbiterKind::kFifo, ArbiterKind::kRoundRobin, ArbiterKind::kMatrix,
        ArbiterKind::kWeightedCredit}) {
    EXPECT_EQ(arbiter_kind_from_string(arbiter_kind_name(k)), k);
  }
  EXPECT_EQ(arbiter_kind_from_string("rr"), ArbiterKind::kRoundRobin);
  EXPECT_EQ(arbiter_kind_from_string("wc"), ArbiterKind::kWeightedCredit);
  EXPECT_THROW(arbiter_kind_from_string("lottery"), std::invalid_argument);
  EXPECT_THROW(Arbiter::create({}, 0), std::invalid_argument);
}

TEST(Arbiter, GrantValidatesTenantCountAndRequesters) {
  auto arb = make(ArbiterKind::kFifo);
  const std::uint64_t none[3] = {kNone, kNone, kNone};
  EXPECT_THROW(arb->grant(none, 3), std::invalid_argument);
  const std::uint64_t some[2] = {0, kNone};
  EXPECT_THROW(arb->grant(some, 2), std::invalid_argument);  // n mismatch
}

TEST(Arbiter, FifoGrantsTheGlobalOldestHead) {
  auto arb = make(ArbiterKind::kFifo);
  const std::uint64_t seq[3] = {7, 2, kNone};
  EXPECT_EQ(arb->grant(seq, 3), 1U);
  const std::uint64_t seq2[3] = {7, kNone, 9};
  EXPECT_EQ(arb->grant(seq2, 3), 0U);
}

TEST(Arbiter, SingleTenantDegeneratesToPassThrough) {
  for (ArbiterKind k :
       {ArbiterKind::kFifo, ArbiterKind::kRoundRobin, ArbiterKind::kMatrix,
        ArbiterKind::kWeightedCredit}) {
    ArbiterConfig cfg;
    cfg.kind = k;
    auto arb = Arbiter::create(cfg, 1);
    const std::uint64_t seq[1] = {5};
    EXPECT_EQ(arb->grant(seq, 1), 0U) << arbiter_kind_name(k);
  }
}

TEST(Arbiter, RoundRobinRotatesAndSkipsIdleTenants) {
  auto arb = make(ArbiterKind::kRoundRobin);
  const std::uint64_t all[3] = {0, 1, 2};
  EXPECT_EQ(arb->grant(all, 3), 0U);
  EXPECT_EQ(arb->grant(all, 3), 1U);
  EXPECT_EQ(arb->grant(all, 3), 2U);
  EXPECT_EQ(arb->grant(all, 3), 0U);
  const std::uint64_t gap[3] = {3, kNone, 4};
  EXPECT_EQ(arb->grant(gap, 3), 2U);  // next after 0, skipping idle 1
  EXPECT_EQ(arb->grant(gap, 3), 0U);  // wraps
}

TEST(Arbiter, MatrixServesTheLeastRecentlyServedRequester) {
  auto arb = make(ArbiterKind::kMatrix);
  const std::uint64_t all[3] = {0, 1, 2};
  // Fresh matrix ranks by index; each winner drops to the back, so a
  // fully-backlogged queue round-robins...
  EXPECT_EQ(arb->grant(all, 3), 0U);
  EXPECT_EQ(arb->grant(all, 3), 1U);
  const std::uint64_t pair[3] = {5, kNone, 6};
  // ...and with 1 idle, tenant 2 (served never) outranks tenant 0
  // (served two grants ago).
  EXPECT_EQ(arb->grant(pair, 3), 2U);
  EXPECT_EQ(arb->grant(pair, 3), 0U);
  EXPECT_EQ(arb->grant(pair, 3), 2U);
}

TEST(Arbiter, WeightedCreditHonorsSharesUnderSaturation) {
  auto arb = make(ArbiterKind::kWeightedCredit, {3.0, 1.0});
  const std::uint64_t all[2] = {0, 1};
  std::size_t grants[2] = {0, 0};
  std::size_t since_light = 0;  // grants since tenant 1 was last served
  for (int i = 0; i < 400; ++i) {
    const std::size_t g = arb->grant(all, 2);
    ++grants[g];
    if (g == 1) {
      since_light = 0;
    } else {
      // Starvation bound: weight 1 of total 4 is served at least every
      // ceil(W/w) = 4 grants, even against a 3x-heavier competitor.
      ASSERT_LT(++since_light, 4U) << "grant " << i;
    }
  }
  EXPECT_EQ(grants[0], 300U);  // exact 3:1 split under saturation
  EXPECT_EQ(grants[1], 100U);
}

TEST(Arbiter, WeightedCreditZeroWeightTenantIsBackgroundOnly) {
  auto arb = make(ArbiterKind::kWeightedCredit, {1.0, 0.0});
  const std::uint64_t both[2] = {0, 1};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(arb->grant(both, 2), 0U);  // never while tenant 0 asks
  }
  const std::uint64_t only_bg[2] = {kNone, 9};
  EXPECT_EQ(arb->grant(only_bg, 2), 1U);  // served once the queue clears
}

// ------------------------------------------------------- JobQueue level

ShotBatch tenant_batch(std::uint64_t job, std::uint32_t tenant,
                       JobPriority priority = JobPriority::kNormal) {
  ShotBatch b;
  b.job = job;
  b.qpu = 0;
  b.tenant = tenant;
  b.priority = priority;
  return b;
}

TEST(JobQueueTenants, RoundRobinArbiterInterleavesTenantSubQueues) {
  ArbiterConfig arb;
  arb.kind = ArbiterKind::kRoundRobin;
  JobQueue q(1, 16, "serve.queue.depth.test_rr", 0, 2, arb);
  ASSERT_TRUE(q.try_push(tenant_batch(0, 0)));
  ASSERT_TRUE(q.try_push(tenant_batch(1, 0)));
  ASSERT_TRUE(q.try_push(tenant_batch(2, 1)));
  ASSERT_TRUE(q.try_push(tenant_batch(3, 1)));
  EXPECT_EQ(q.tenant_depth(0), 2U);
  EXPECT_EQ(q.tenant_depth(1), 2U);
  q.close();  // popping dry blocks otherwise
  ShotBatch out;
  std::vector<std::uint64_t> order;
  while (q.pop(0, &out)) {
    order.push_back(out.job);
    q.task_done();
  }
  // FIFO would drain 0,1,2,3; round-robin alternates the tenants while
  // preserving each tenant's own arrival order.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 2, 1, 3}));
  EXPECT_EQ(q.tenant_depth(0), 0U);
  EXPECT_EQ(q.arbiter_grants(), 4U);
}

TEST(JobQueueTenants, FifoArbiterReproducesLegacyGlobalOrder) {
  ArbiterConfig arb;  // kFifo
  JobQueue q(1, 16, "serve.queue.depth.test_fifo", 0, 3, arb);
  for (std::uint64_t j = 0; j < 6; ++j) {
    ASSERT_TRUE(q.try_push(tenant_batch(j, j % 3)));
  }
  ShotBatch out;
  for (std::uint64_t j = 0; j < 6; ++j) {
    ASSERT_TRUE(q.pop(0, &out));
    EXPECT_EQ(out.job, j);  // exactly the single-tenant pop order
    q.task_done();
  }
}

TEST(JobQueueTenants, PriorityStillOutranksArbitration) {
  ArbiterConfig arb;
  arb.kind = ArbiterKind::kWeightedCredit;
  arb.weights = {100.0, 1.0};
  JobQueue q(1, 16, "serve.queue.depth.test_pri", 0, 2, arb);
  ASSERT_TRUE(q.try_push(tenant_batch(0, 0)));
  ASSERT_TRUE(q.try_push(tenant_batch(1, 1, JobPriority::kHigh)));
  ShotBatch out;
  ASSERT_TRUE(q.pop(0, &out));
  // Priority lanes are scanned first; the arbiter only orders tenants
  // *within* a lane.
  EXPECT_EQ(out.job, 1U);
  q.task_done();
  ASSERT_TRUE(q.pop(0, &out));
  EXPECT_EQ(out.job, 0U);
  q.task_done();
}

// -------------------------------------------------------- runtime level

class TenantServeFixture : public ::testing::Test {
 protected:
  TenantServeFixture()
      : model_(qnn::Backbone::kCRz, 2, 2),
        split_(data::prepare_case({"iris", 2, 2})) {
    core::TrainConfig cfg;
    trainer_ = std::make_unique<core::DistributedTrainer>(
        model_, device::table3_fleet_subset(6, 2), cfg);
    math::Rng rng(42);
    std::vector<double> base(
        static_cast<std::size_t>(model_.num_weights()));
    for (double& w : base) w = rng.normal(0.0, 0.3);
    for (std::size_t q = 0; q < trainer_->fleet_size(); ++q) {
      std::vector<double> w = base;
      math::Rng qrng = rng.split(q);
      for (double& x : w) x += qrng.normal(0.0, 0.05);
      weights_.push_back(std::move(w));
    }
  }

  std::vector<JobSpec> make_jobs(std::size_t n,
                                 const std::vector<std::string>& tenants) {
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      JobSpec spec;
      spec.features = split_.test_features[i % split_.test_features.size()];
      spec.label = split_.test_labels[i % split_.test_labels.size()];
      if (!tenants.empty()) spec.tenant = tenants[i % tenants.size()];
      jobs.push_back(std::move(spec));
    }
    return jobs;
  }

  ServeConfig base_config(int shards) const {
    ServeConfig cfg;
    cfg.shots_per_job = 60;
    cfg.trajectories = 4;
    cfg.queue_capacity = 4096;
    cfg.backoff_base_us = 0.0;
    cfg.num_shards = shards;
    cfg.synthetic_execution = true;
    return cfg;
  }

  std::vector<JobResult> run(const ServeConfig& cfg,
                             const std::vector<JobSpec>& jobs,
                             ServingReport* report = nullptr) const {
    ServingRuntime runtime(trainer_->executors(), weights_,
                           trainer_->behavioral_vectors(), cfg);
    for (const JobSpec& spec : jobs) runtime.submit(spec);
    runtime.drain();
    if (report != nullptr) *report = runtime.report();
    return runtime.results();
  }

  static void expect_bit_identical(const std::vector<JobResult>& a,
                                   const std::vector<JobResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].status, b[i].status) << "job " << i;
      EXPECT_EQ(a[i].probability, b[i].probability) << "job " << i;
      EXPECT_EQ(a[i].virtual_latency_us, b[i].virtual_latency_us)
          << "job " << i;
      EXPECT_EQ(a[i].admit_virtual_us, b[i].admit_virtual_us) << "job " << i;
      EXPECT_EQ(a[i].tenant, b[i].tenant) << "job " << i;
    }
  }

  qnn::QnnModel model_;
  data::EncodedSplit split_;
  std::unique_ptr<core::DistributedTrainer> trainer_;
  std::vector<std::vector<double>> weights_;
};

TEST_F(TenantServeFixture, AdmittedSetBitIdenticalAcrossShardsPerArbiter) {
  std::vector<TenantSpec> tenants(3);
  tenants[0] = {"alpha", 3.0, 0, 0.0, 1.0};
  tenants[1] = {"beta", 1.0, /*max_in_flight=*/2, 0.0, 1.0};
  tenants[2] = {"gamma", 1.0, 0, /*admit_rate_per_s=*/400.0,
                /*admit_burst=*/3.0};
  const auto jobs = make_jobs(36, {"alpha", "beta", "gamma"});
  for (ArbiterKind kind :
       {ArbiterKind::kFifo, ArbiterKind::kRoundRobin, ArbiterKind::kMatrix,
        ArbiterKind::kWeightedCredit}) {
    ServeConfig one = base_config(1);
    one.arbiter = kind;
    one.tenants = tenants;
    ServeConfig two = one;
    two.num_shards = 2;
    ServeConfig three = one;
    three.num_shards = 3;
    const auto a = run(one, jobs);
    expect_bit_identical(a, run(two, jobs));
    expect_bit_identical(a, run(three, jobs));
    // The quota knobs really fired: the equality above covered the
    // reject paths, not just clean admission.
    std::size_t rejected = 0;
    for (const JobResult& r : a) {
      if (r.status == JobStatus::kRejected) ++rejected;
    }
    EXPECT_GT(rejected, 0U) << arbiter_kind_name(kind);
  }
}

TEST_F(TenantServeFixture, StagedReplayWaitInclusiveLatencyBitIdentical) {
  // Regression: start() must land every staged batch in the arbitrated
  // queue before any worker runs. Without the pre-start flush a worker
  // could pop a lane while the dispatcher was still draining the
  // admission mailbox, so set-sensitive arbiters granted over a partial
  // backlog and the wait-inclusive latencies varied run to run.
  std::vector<TenantSpec> tenants(3);
  tenants[0] = {"alpha", 4.0, 0, 0.0, 1.0};
  tenants[1] = {"beta", 1.0, 0, 0.0, 1.0};
  tenants[2] = {"gamma", 8.0, 0, 0.0, 1.0};
  const auto jobs = make_jobs(60, {"alpha", "beta", "gamma"});
  for (ArbiterKind kind :
       {ArbiterKind::kRoundRobin, ArbiterKind::kMatrix,
        ArbiterKind::kWeightedCredit}) {
    const auto staged = [&](int shards) {
      ServeConfig cfg = base_config(shards);
      cfg.arbiter = kind;
      cfg.tenants = tenants;
      cfg.autostart = false;
      cfg.model_queue_wait = true;
      cfg.workers_per_shard = 2;
      ServingRuntime runtime(trainer_->executors(), weights_,
                             trainer_->behavioral_vectors(), cfg);
      for (const JobSpec& spec : jobs) runtime.submit(spec);
      runtime.start();
      runtime.drain();
      return runtime.results();
    };
    const auto a = staged(1);
    expect_bit_identical(a, staged(1));
    const auto b = staged(2);
    expect_bit_identical(a, b);
    expect_bit_identical(a, staged(2));
  }
}

TEST_F(TenantServeFixture, SingleTenantTableMatchesNoTableResults) {
  const auto plain = make_jobs(12, {});
  auto named = plain;
  for (JobSpec& spec : named) spec.tenant = "solo";
  ServeConfig bare = base_config(2);
  ServeConfig tabled = base_config(2);
  tabled.tenants = {{"solo", 1.0, 0, 0.0, 1.0}};
  tabled.arbiter = ArbiterKind::kWeightedCredit;
  const auto a = run(bare, plain);
  const auto b = run(tabled, named);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].probability, b[i].probability);
    EXPECT_EQ(a[i].virtual_latency_us, b[i].virtual_latency_us);
  }
}

TEST_F(TenantServeFixture, QuotaExhaustionMidBurstRecoversOnModeledTime) {
  ServeConfig cfg = base_config(1);
  cfg.tenants = {{"burst", 1.0, /*max_in_flight=*/1, 0.0, 1.0}};
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  auto jobs = make_jobs(3, {"burst"});
  // Back-to-back closed-loop submits: the first occupies the single
  // in-flight slot until its modeled completion; the burst behind it is
  // quota-rejected synchronously.
  EXPECT_TRUE(runtime.submit(jobs[0]).has_value());
  EXPECT_FALSE(runtime.submit(jobs[1]).has_value());
  EXPECT_FALSE(runtime.submit(jobs[2]).has_value());
  // An open-loop arrival far past the modeled completion retires the
  // in-flight window and admits again — recovery is purely modeled
  // time, no wall clock involved.
  JobSpec late = jobs[1];
  late.arrival_us = 1e9;
  EXPECT_TRUE(runtime.submit(late).has_value());
  runtime.drain();
  const ServingReport rep = runtime.report();
  ASSERT_EQ(rep.tenants.size(), 2U);  // "burst" + the "other" catch-all
  EXPECT_EQ(rep.tenants[0].name, "burst");
  EXPECT_EQ(rep.tenants[0].submitted, 4U);
  EXPECT_EQ(rep.tenants[0].quota_rejected, 2U);
  EXPECT_EQ(rep.tenants[0].admitted, 2U);
  EXPECT_EQ(rep.tenants[0].completed, 2U);
}

TEST_F(TenantServeFixture, AdmissionCreditsThrottleAndRefill) {
  ServeConfig cfg = base_config(1);
  cfg.tenants = {{"metered", 1.0, 0, /*admit_rate_per_s=*/1.0,
                  /*admit_burst=*/2.0}};
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  auto jobs = make_jobs(3, {"metered"});
  EXPECT_TRUE(runtime.submit(jobs[0]).has_value());   // token 2 -> 1
  EXPECT_TRUE(runtime.submit(jobs[1]).has_value());   // token 1 -> 0
  EXPECT_FALSE(runtime.submit(jobs[2]).has_value());  // dry: throttled
  JobSpec late = jobs[2];
  late.arrival_us = 5e6;  // 5 modeled seconds: bucket refills to burst
  EXPECT_TRUE(runtime.submit(late).has_value());
  runtime.drain();
  const ServingReport rep = runtime.report();
  EXPECT_EQ(rep.tenants[0].throttled, 1U);
  EXPECT_EQ(rep.tenants[0].admitted, 3U);
}

TEST_F(TenantServeFixture, AllBestEffortMixCompletesAndReportsPerTenant) {
  ServeConfig cfg = base_config(2);
  cfg.arbiter = ArbiterKind::kWeightedCredit;
  cfg.tenants = {{"a", 2.0, 0, 0.0, 1.0},
                 {"b", 1.0, 0, 0.0, 1.0},
                 {"c", 1.0, 0, 0.0, 1.0}};
  ServingReport rep;
  const auto results = run(cfg, make_jobs(24, {"a", "b", "c"}), &rep);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk);
  }
  ASSERT_EQ(rep.tenants.size(), 4U);  // a, b, c, other
  std::size_t total = 0;
  for (const TenantReport& t : rep.tenants) {
    total += t.submitted;
    if (t.name != "other") {
      EXPECT_EQ(t.submitted, 8U) << t.name;
      EXPECT_EQ(t.completed, 8U) << t.name;
      EXPECT_GT(t.p99_virtual_latency_us, 0.0) << t.name;
      EXPECT_GE(t.p99_virtual_latency_us, t.p50_virtual_latency_us);
    }
  }
  EXPECT_EQ(total, 24U);
  EXPECT_EQ(rep.tenants[3].name, "other");
  EXPECT_EQ(rep.tenants[3].submitted, 0U);
}

TEST_F(TenantServeFixture, UnknownTenantResolvesToCatchAllRow) {
  ServeConfig cfg = base_config(1);
  cfg.tenants = {{"known", 1.0, 0, 0.0, 1.0}};
  ServingReport rep;
  run(cfg, make_jobs(6, {"known", "stranger", "nobody"}), &rep);
  ASSERT_EQ(rep.tenants.size(), 2U);
  EXPECT_EQ(rep.tenants[0].submitted, 2U);  // "known"
  EXPECT_EQ(rep.tenants[1].name, "other");
  EXPECT_EQ(rep.tenants[1].submitted, 4U);  // both strangers pooled
}

TEST_F(TenantServeFixture, PerTenantDepthGaugesAndLiveDepthProbe) {
  ServeConfig cfg = base_config(2);
  cfg.tenants = {{"up", 1.0, 0, 0.0, 1.0}, {"down", 1.0, 0, 0.0, 1.0}};
  cfg.autostart = false;  // keep batches resident while we probe
  ServingRuntime runtime(trainer_->executors(), weights_,
                         trainer_->behavioral_vectors(), cfg);
  for (const JobSpec& spec : make_jobs(8, {"up", "down"})) {
    runtime.submit(spec);
  }
  // Admission lanes drain into queues on start(); before that the
  // resident depth is still zero (batches sit in mailboxes).
  runtime.start();
  runtime.drain();
  const std::vector<std::size_t> depths = runtime.tenant_queue_depths();
  ASSERT_EQ(depths.size(), 3U);  // up, down, other
  EXPECT_EQ(depths[0] + depths[1] + depths[2], 0U);  // drained
  if (telemetry::telemetry_runtime_enabled()) {
    auto& reg = telemetry::MetricsRegistry::global();
    EXPECT_EQ(reg.gauge("serve.queue.depth.tenant.up").value(), 0.0);
    EXPECT_EQ(reg.gauge("serve.queue.depth.tenant.down").value(), 0.0);
  }
}

TEST_F(TenantServeFixture, ClassLanesRouteBySloClassDeterministically) {
  ServeConfig cfg = base_config(2);
  cfg.class_lanes = true;
  cfg.tenants = {{"fast", 1.0, 0, 0.0, 1.0}, {"slow", 1.0, 0, 0.0, 1.0}};
  auto jobs = make_jobs(12, {"fast", "slow"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].slo_class = i % 2 == 0 ? monitor::SloClass::kLatencyBound
                                   : monitor::SloClass::kBestEffort;
  }
  const auto a = run(cfg, jobs);
  for (const JobResult& r : a) {
    EXPECT_EQ(r.status, JobStatus::kOk);
  }
  expect_bit_identical(a, run(cfg, jobs));
}

}  // namespace
}  // namespace arbiterq::serve
