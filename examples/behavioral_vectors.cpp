// Behavioral vectorization tour (paper §III-A): compile one QNN model on
// every Table III device, print the contextual/topological vectors, the
// Eq. 1 distance matrix and the similarity groups that similarity-aware
// gradient sharing would use.

#include <cstdio>

#include "arbiterq/core/similarity.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"

int main() {
  using namespace arbiterq;

  const qnn::QnnModel model(qnn::Backbone::kCRz, 4, 2);
  const auto fleet = device::table3_fleet(4);

  std::vector<core::BehavioralVector> vectors;
  for (const device::Qpu& qpu : fleet) {
    const qnn::QnnExecutor ex(model, qpu);
    vectors.push_back(core::vectorize(ex.compiled(), ex.qpu(),
                                      model.circuit().size()));
    const auto& bv = vectors.back();
    double ctx = 0.0;
    double topo = 0.0;
    for (double v : bv.contextual) ctx += v;
    for (double v : bv.topological) topo += v;
    std::printf("%-10s  swaps %2zu  sum(ctx) %.4f  sum(topo) %.4f\n",
                qpu.name().c_str(),
                ex.compiled().routed.routing_swap_count(), ctx, topo);
  }

  const core::SimilarityGraph graph(vectors, 2000.0);
  std::printf("\nEq.1 distance matrix (x1e-4):\n      ");
  for (std::size_t j = 0; j < graph.size(); ++j) {
    std::printf("%5zu ", j + 1);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < graph.size(); ++i) {
    std::printf("  %2zu: ", i + 1);
    for (std::size_t j = 0; j < graph.size(); ++j) {
      std::printf("%5.1f ", graph.distance(i, j) * 1e4);
    }
    std::printf("\n");
  }

  std::printf("\nsimilarity groups at threshold 8e-4:\n");
  for (const auto& g : graph.groups(8e-4)) {
    std::printf("  {");
    for (std::size_t k = 0; k < g.size(); ++k) {
      std::printf("%s%d", k ? ", " : "", g[k] + 1);
    }
    std::printf("}\n");
  }
  return 0;
}
