// Shot-oriented inference on QPU tori (paper §IV): train personalized
// models with ArbiterQ, build the torus partition via MDS + non-uniform
// DFT, then compare shot-oriented scheduling against the batch-based
// baseline on the Iris-like test set.

#include <cstdio>

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"

int main() {
  using namespace arbiterq;

  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);

  core::TrainConfig cfg;
  cfg.epochs = 40;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(8, bc.num_qubits), cfg);

  std::printf("training personalized models (ArbiterQ) ...\n");
  const core::TrainResult arbiter =
      trainer.train(core::Strategy::kArbiterQ, split);
  const core::TrainResult eqc = trainer.train(core::Strategy::kEqc, split);

  const auto partition = core::build_torus_partition(
      trainer.behavioral_vectors(), arbiter.weights);
  std::printf("torus partition: cycle T = %.4g, %zu tori\n",
              partition.cycle_period, partition.tori.size());
  for (std::size_t t = 0; t < partition.tori.size(); ++t) {
    std::printf("  torus %zu: {", t + 1);
    for (std::size_t k = 0; k < partition.tori[t].size(); ++k) {
      std::printf("%s%d", k ? ", " : "", partition.tori[t][k] + 1);
    }
    std::printf("}\n");
  }

  const auto tasks = core::make_tasks(split.test_features,
                                      split.test_labels);
  core::ScheduleConfig sc;
  const core::ShotOrientedScheduler scheduler(trainer.executors(),
                                              arbiter.weights, partition,
                                              sc);
  const auto shot_report = scheduler.run(tasks);
  const auto batch_report = core::batch_based_inference(
      trainer.executors(), eqc.weights, tasks, sc);

  std::printf("shot-oriented (ArbiterQ):  loss %.4f  stddev %.4f  "
              "imbalance %.2f\n",
              shot_report.mean_loss, shot_report.loss_stddev,
              shot_report.workload_imbalance);
  std::printf("batch-based   (EQC):       loss %.4f  stddev %.4f  "
              "imbalance %.2f\n",
              batch_report.mean_loss, batch_report.loss_stddev,
              batch_report.workload_imbalance);
  return 0;
}
