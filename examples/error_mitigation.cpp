// Error mitigation on deep circuits: as the learning-layer count grows,
// the compiled circuit's survival probability collapses and the readout
// signal with it — until depolarizing mitigation (<Z> -> <Z>/S) restores
// the expectation scale. This is why the 10-layer HMDB51 benchmark only
// trains in mitigated mode (see DESIGN.md).

#include <cstdio>

#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/executor.hpp"

int main() {
  using namespace arbiterq;

  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  const device::Qpu dev = device::table3_fleet(2).front();

  std::printf("depth vs signal on %s (P(1) spread over the test set)\n",
              dev.name().c_str());
  std::printf("%-7s %10s | %12s %12s | %12s\n", "layers", "survival",
              "plain spread", "mitigated", "plain loss");

  for (int layers : {1, 2, 4, 8, 16}) {
    const qnn::QnnModel model(qnn::Backbone::kCRz, 2, layers);
    const qnn::QnnExecutor plain(model, dev);
    const qnn::QnnExecutor mitigated(model, dev,
                                     qnn::ExecutorOptions{true});
    std::vector<double> weights(
        static_cast<std::size_t>(model.num_weights()));
    math::Rng rng(layers);
    for (double& w : weights) w = rng.uniform(-1.0, 1.0);

    auto spread = [&](const qnn::QnnExecutor& ex) {
      double lo = 1.0;
      double hi = 0.0;
      for (const auto& f : split.test_features) {
        const double p = ex.probability(f, weights);
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
      return hi - lo;
    };

    std::printf("%-7d %10.4g | %12.4f %12.4f | %12.4f\n", layers,
                plain.survival(), spread(plain), spread(mitigated),
                plain.dataset_loss(qnn::LossKind::kMse,
                                   split.test_features, split.test_labels,
                                   weights));
  }
  std::printf("\nWithout mitigation the spread (the classifier's usable "
              "signal)\ncollapses with depth; mitigation holds it "
              "roughly constant.\n");
  return 0;
}
