// Heterogeneous distributed training: six Table III QPUs train Model-CRx
// on the Wine-like benchmark under all four strategies. Expected shape
// (paper Table I / Fig. 5): ArbiterQ converges fastest and lowest,
// all-sharing worst.

#include <cstdio>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"

int main() {
  using namespace arbiterq;

  const data::BenchmarkCase bc{"wine", 4, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRx, bc.num_qubits,
                            bc.num_layers);

  core::TrainConfig cfg;
  cfg.epochs = 40;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(6, bc.num_qubits), cfg);

  std::printf("fleet similarity groups (threshold %.2e):\n",
              cfg.distance_threshold);
  for (const auto& g : trainer.sharing_groups()) {
    std::printf("  {");
    for (std::size_t k = 0; k < g.size(); ++k) {
      std::printf("%s%d", k ? ", " : "", g[k] + 1);
    }
    std::printf("}\n");
  }

  for (core::Strategy s :
       {core::Strategy::kSingleNode, core::Strategy::kAllSharing,
        core::Strategy::kEqc, core::Strategy::kArbiterQ}) {
    const core::TrainResult r = trainer.train(s, split);
    std::printf("%-12s converged @ epoch %3d, loss %.4f  (last epoch %.4f)\n",
                core::strategy_name(s).c_str(), r.convergence.epoch,
                r.convergence.loss, r.epoch_test_loss.back());
  }
  return 0;
}
