// arbiterq_cli: run a custom distributed-QNN experiment from the command
// line. The knobs cover everything the evaluation binaries use, so any
// table cell (and plenty the paper never tried) can be reproduced ad hoc.
//
//   arbiterq_cli --dataset wine --backbone crx --fleet 8 --epochs 50
//                --strategy arbiterq --lr 0.5 --csv run.csv
//
// Run with --help for the full flag list.

#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/monitor/health.hpp"
#include "arbiterq/monitor/slo.hpp"
#include "arbiterq/monitor/watchdog.hpp"
#include "arbiterq/report/csv.hpp"
#include "arbiterq/sim/kernels.hpp"
#include "arbiterq/serve/flight_recorder.hpp"
#include "arbiterq/serve/runtime.hpp"
#include "arbiterq/serve/trafficgen.hpp"
#include "arbiterq/telemetry/dashboard.hpp"
#include "arbiterq/telemetry/export.hpp"
#include "arbiterq/telemetry/http.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/profile.hpp"
#include "arbiterq/telemetry/prometheus.hpp"
#include "arbiterq/telemetry/timeseries.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace {

using namespace arbiterq;

struct CliOptions {
  std::string dataset = "iris";
  std::string backbone = "crz";
  std::string strategy = "arbiterq";
  int fleet = 6;
  int epochs = 40;
  double lr = 0.8;
  int batch = 4;
  double kappa = 2000.0;
  double threshold = 1.2e-3;
  std::uint64_t seed = 42;
  int threads = 0;
  bool mitigate = false;
  bool infer = false;
  bool serve = false;
  std::string faults;
  int jobs = 0;
  double deadline_us = 0.0;
  int queue_cap = 1024;
  int shards = 1;        ///< serving shards (clamped to the fleet size)
  int shard_workers = 0; ///< workers per shard; 0 = one per QPU
  int listen = -1;       ///< scrape port; -1 = off, 0 = ephemeral
  int trace_sample = 0;  ///< per-job tracing: 0 off, 1 full, N sampled
  int linger_ms = 0;     ///< keep the scrape endpoint up after drain
  bool watch = false;    ///< live terminal dashboard during --serve
  std::string arbiter = "fifo";  ///< dequeue arbiter for --serve
  std::string tenants;   ///< tenant table spec (parse_tenant_profiles)
  std::string traffic;   ///< open-loop traffic spec (parse_traffic_spec)
  std::string tenant;
  std::string flight_out;
  std::string csv;
  std::string telemetry;
  std::string health;
  std::string trace_out;
  std::string prom_out;
};

void usage() {
  std::printf(
      "arbiterq_cli — distributed QNN training on simulated QPUs\n\n"
      "  --dataset   iris | wine | mnist | hmdb51        (default iris)\n"
      "  --backbone  crz | crx                           (default crz)\n"
      "  --strategy  single | all | eqc | arbiterq       (default arbiterq)\n"
      "  --fleet     1..10 Table III simulators          (default 6)\n"
      "  --epochs    training epochs                     (default 40)\n"
      "  --lr        learning rate                       (default 0.8)\n"
      "  --batch     minibatch size per QPU              (default 4)\n"
      "  --kappa     similarity sharpness                (default 2000)\n"
      "  --threshold grouping distance threshold         (default 1.2e-3)\n"
      "  --seed      RNG seed                            (default 42)\n"
      "  --threads   worker threads for fleet/gradient fan-out;\n"
      "              0 = auto: ARBITERQ_THREADS env var, else\n"
      "              hardware_concurrency                (default 0)\n"
      "  --no-simd   force the portable scalar gate kernels (same as\n"
      "              ARBITERQ_SIMD=OFF)\n"
      "  --mitigate  enable depolarizing error mitigation\n"
      "  --infer     run shot-oriented + batch inference afterwards\n"
      "  --serve     run the fleet serving runtime afterwards: test-set\n"
      "              jobs through the async queue + per-QPU workers\n"
      "  --faults SPEC  fault injection for --serve; comma-separated\n"
      "              kill:<qpu>@<job>, drop:<p>[@<horizon>],\n"
      "              transient:<p>, spike:<p>x<mult>, lag:<jobs>,\n"
      "              seed:<n>   e.g. \"kill:3@40,transient:0.05\"\n"
      "  --jobs N    serving jobs to submit (default: test-set size)\n"
      "  --deadline-us X  per-job modeled-time deadline for --serve\n"
      "              (default 0 = none)\n"
      "  --queue-cap N  serving admission bound in shot-batches\n"
      "              (default 1024)\n"
      "  --shards N  partition the serving fleet into N shards, each\n"
      "              with its own bounded queue, workers and mailbox\n"
      "              lanes (clamped to the fleet size; default 1).\n"
      "              Admitted results are bit-identical across N\n"
      "  --shard-workers N  worker threads per shard (each strides its\n"
      "              shard's QPU lanes; default 0 = one per QPU)\n"
      "  --listen PORT  serve a live scrape endpoint on 127.0.0.1:PORT\n"
      "              during --serve: /metrics (Prometheus text),\n"
      "              /healthz (fleet health JSON), /slo (SLO report),\n"
      "              /timeseries (windowed JSON series; filter with\n"
      "              ?name=<substring>), /dashboard (self-contained\n"
      "              HTML with sparklines)  (0 = kernel-assigned port)\n"
      "  --watch     live terminal dashboard during --serve: per-shard\n"
      "              admission rate, queue depth, p99 latency and fleet\n"
      "              health as sparkline rows (0.5s windows)\n"
      "  --trace-sample N  per-job causal tracing for --serve: 0 = off,\n"
      "              1 = every job, N = every Nth job (default 0)\n"
      "  --arbiter KIND  dequeue arbiter for --serve: fifo (default,\n"
      "              the pre-tenant order) | round_robin/rr | matrix |\n"
      "              weighted_credit/wc (per-tenant weights)\n"
      "  --tenants SPEC  tenant table for --serve: ';'-separated tenants,\n"
      "              each \"name[,key=value...]\" with keys class\n"
      "              (latency|throughput|best), weight, rate, shots,\n"
      "              deadline_us, max_in_flight, admit_rate,\n"
      "              admit_burst, flood, flood_from, flood_until — e.g.\n"
      "              \"int0,class=latency,weight=8;bulk,weight=1\"\n"
      "  --traffic SPEC  drive --serve with the open-loop generator\n"
      "              instead of the test set (requires --tenants):\n"
      "              \"<steady|diurnal|bursty|adversarial>[,key=value..]\"\n"
      "              with keys duration, seed, period, amplitude, cycle,\n"
      "              duty, mult, idle — arrivals pin the modeled\n"
      "              admission clock, so the run replays bit-identically\n"
      "  --tenant NAME  tenant label stamped on serving jobs (traces,\n"
      "              flight records, per-tenant counters)\n"
      "  --flight-out PATH  dump the flight recorder (postmortems of\n"
      "              rejected/expired/failed jobs) as JSONL\n"
      "  --linger-ms N  keep the scrape endpoint up N ms after drain\n"
      "              so a scraper can read the final state (default 0)\n"
      "  --csv PATH  dump the loss curve as CSV\n"
      "  --telemetry PATH  dump telemetry (epoch/assignment records,\n"
      "              metric counters, trace spans) as JSONL\n"
      "  --health PATH  ride a FleetHealthMonitor on the run: print the\n"
      "              per-QPU health table and write the report as JSONL\n"
      "  --trace-out PATH  export recorded spans as Chrome trace-event\n"
      "              JSON (load in Perfetto / chrome://tracing)\n"
      "  --prom-out PATH  export the metrics registry in Prometheus\n"
      "              text exposition format\n");
}

bool parse(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--mitigate") {
      opts->mitigate = true;
    } else if (flag == "--infer") {
      opts->infer = true;
    } else if (flag == "--serve") {
      opts->serve = true;
    } else if (flag == "--faults") {
      if (const char* v = next()) opts->faults = v;
    } else if (flag == "--jobs") {
      if (const char* v = next()) opts->jobs = std::atoi(v);
    } else if (flag == "--deadline-us") {
      if (const char* v = next()) opts->deadline_us = std::atof(v);
    } else if (flag == "--queue-cap") {
      if (const char* v = next()) opts->queue_cap = std::atoi(v);
    } else if (flag == "--shards") {
      if (const char* v = next()) opts->shards = std::atoi(v);
    } else if (flag == "--shard-workers") {
      if (const char* v = next()) opts->shard_workers = std::atoi(v);
    } else if (flag == "--listen") {
      if (const char* v = next()) opts->listen = std::atoi(v);
    } else if (flag == "--watch") {
      opts->watch = true;
    } else if (flag == "--trace-sample") {
      if (const char* v = next()) opts->trace_sample = std::atoi(v);
    } else if (flag == "--arbiter") {
      if (const char* v = next()) opts->arbiter = v;
    } else if (flag == "--tenants") {
      if (const char* v = next()) opts->tenants = v;
    } else if (flag == "--traffic") {
      if (const char* v = next()) opts->traffic = v;
    } else if (flag == "--tenant") {
      if (const char* v = next()) opts->tenant = v;
    } else if (flag == "--flight-out") {
      if (const char* v = next()) opts->flight_out = v;
    } else if (flag == "--linger-ms") {
      if (const char* v = next()) opts->linger_ms = std::atoi(v);
    } else if (flag == "--dataset") {
      if (const char* v = next()) opts->dataset = v;
    } else if (flag == "--backbone") {
      if (const char* v = next()) opts->backbone = v;
    } else if (flag == "--strategy") {
      if (const char* v = next()) opts->strategy = v;
    } else if (flag == "--fleet") {
      if (const char* v = next()) opts->fleet = std::atoi(v);
    } else if (flag == "--epochs") {
      if (const char* v = next()) opts->epochs = std::atoi(v);
    } else if (flag == "--lr") {
      if (const char* v = next()) opts->lr = std::atof(v);
    } else if (flag == "--batch") {
      if (const char* v = next()) opts->batch = std::atoi(v);
    } else if (flag == "--kappa") {
      if (const char* v = next()) opts->kappa = std::atof(v);
    } else if (flag == "--threshold") {
      if (const char* v = next()) opts->threshold = std::atof(v);
    } else if (flag == "--seed") {
      if (const char* v = next()) {
        opts->seed = static_cast<std::uint64_t>(std::atoll(v));
      }
    } else if (flag == "--threads") {
      if (const char* v = next()) opts->threads = std::atoi(v);
    } else if (flag == "--no-simd") {
      sim::kernels::set_simd_runtime_enabled(false);
    } else if (flag == "--csv") {
      if (const char* v = next()) opts->csv = v;
    } else if (flag == "--telemetry") {
      if (const char* v = next()) opts->telemetry = v;
    } else if (flag == "--health") {
      if (const char* v = next()) opts->health = v;
    } else if (flag == "--trace-out") {
      if (const char* v = next()) opts->trace_out = v;
    } else if (flag == "--prom-out") {
      if (const char* v = next()) opts->prom_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Last `n` plot points of the named series (exact-name match).
std::vector<double> series_plot_tail(const telemetry::TimeSeriesStore& store,
                                     const std::string& name,
                                     std::size_t n) {
  for (const telemetry::SeriesSnapshot& s : store.snapshot(name)) {
    if (s.name != name) continue;
    std::vector<double> vals = telemetry::plot_values(s);
    if (vals.size() > n) {
      vals.erase(vals.begin(),
                 vals.end() - static_cast<std::ptrdiff_t>(n));
    }
    return vals;
  }
  return {};
}

double last_finite(const std::vector<double>& vals) {
  for (auto it = vals.rbegin(); it != vals.rend(); ++it) {
    if (std::isfinite(*it)) return *it;
  }
  return 0.0;
}

/// One --watch frame: per-shard admission rate and queue depth, fleet
/// p99 latency, and the health summary, each as a sparkline row.
void render_watch_frame(const serve::ServingRuntime& runtime,
                        const telemetry::TimeSeriesStore& store,
                        monitor::FleetHealthMonitor* mon) {
  std::string frame = "\x1b[H\x1b[2J";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "arbiterq --watch | %zu shards | queue depth %zu\n",
                runtime.num_shards(), runtime.queue_depth());
  frame += buf;
  constexpr std::size_t kTail = 48;
  for (std::size_t s = 0; s < runtime.num_shards(); ++s) {
    const std::string shard = std::to_string(s);
    const std::vector<double> admit = series_plot_tail(
        store, "serve.shard" + shard + ".admitted_batches", kTail);
    const std::string depth_name =
        runtime.num_shards() > 1 ? "serve.queue.depth.shard" + shard
                                 : std::string("serve.queue.depth");
    const std::vector<double> depth =
        series_plot_tail(store, depth_name, kTail);
    std::snprintf(buf, sizeof buf, "shard %-3zu admit/s %9.1f ", s,
                  last_finite(admit));
    frame += buf;
    frame += telemetry::terminal_sparkline(admit);
    std::snprintf(buf, sizeof buf, "  depth %6.0f ",
                  last_finite(depth));
    frame += buf;
    frame += telemetry::terminal_sparkline(depth);
    frame += "\n";
  }
  const std::vector<double> p99 =
      series_plot_tail(store, "serve.job.latency_us", kTail);
  std::snprintf(buf, sizeof buf, "p99 wall latency %9.1f us ",
                last_finite(p99));
  frame += buf;
  frame += telemetry::terminal_sparkline(p99);
  frame += "\n";
  // One row per tenant slot: live resident depth plus the sampled
  // serve.queue.depth.tenant.<t> gauge trail.
  const std::vector<serve::TenantSpec>& tenants = runtime.tenants();
  const std::vector<std::size_t> depths = runtime.tenant_queue_depths();
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const std::vector<double> trail = series_plot_tail(
        store, "serve.queue.depth.tenant." + tenants[t].name, kTail);
    std::snprintf(buf, sizeof buf, "tenant %-12s depth %6zu ",
                  tenants[t].name.c_str(),
                  t < depths.size() ? depths[t] : 0);
    frame += buf;
    frame += telemetry::terminal_sparkline(trail);
    frame += "\n";
  }
  if (mon != nullptr) {
    const monitor::FleetHealthReport rep = mon->report();
    std::snprintf(buf, sizeof buf,
                  "health: %zu healthy, %zu drifting, %zu stalled, "
                  "%zu isolated | slo breaches %zu | anomalies %zu %s\n",
                  rep.healthy, rep.drifting, rep.stalled, rep.isolated,
                  rep.slo_breaches, rep.anomalies,
                  rep.worst_anomaly.c_str());
    frame += buf;
  }
  std::fwrite(frame.data(), 1, frame.size(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse(argc, argv, &opts)) {
    usage();
    return 1;
  }

  const std::map<std::string, data::BenchmarkCase> cases = {
      {"iris", {"iris", 2, 2}},
      {"wine", {"wine", 4, 2}},
      {"mnist", {"mnist", 6, 2}},
      {"hmdb51", {"hmdb51", 10, 10}},
  };
  const std::map<std::string, core::Strategy> strategies = {
      {"single", core::Strategy::kSingleNode},
      {"all", core::Strategy::kAllSharing},
      {"eqc", core::Strategy::kEqc},
      {"arbiterq", core::Strategy::kArbiterQ},
  };
  if (!cases.count(opts.dataset) || !strategies.count(opts.strategy) ||
      (opts.backbone != "crz" && opts.backbone != "crx")) {
    usage();
    return 1;
  }

  const data::BenchmarkCase& bc = cases.at(opts.dataset);
  const data::EncodedSplit split = data::prepare_case(bc, opts.seed);
  const qnn::QnnModel model(opts.backbone == "crz" ? qnn::Backbone::kCRz
                                                   : qnn::Backbone::kCRx,
                            bc.num_qubits, bc.num_layers);

  core::TrainConfig cfg;
  cfg.epochs = opts.epochs;
  cfg.learning_rate = opts.lr;
  cfg.batch_size = static_cast<std::size_t>(opts.batch);
  cfg.kappa = opts.kappa;
  cfg.distance_threshold = opts.threshold;
  cfg.seed = opts.seed;
  cfg.error_mitigation = opts.mitigate;
  cfg.exec.num_threads = opts.threads;

  std::unique_ptr<monitor::FleetHealthMonitor> mon;
  if (!opts.health.empty()) {
    mon = std::make_unique<monitor::FleetHealthMonitor>(
        static_cast<std::size_t>(opts.fleet));
    cfg.monitor = mon.get();
  }

  std::printf("dataset %s | %s | %d QPUs | strategy %s | %d epochs | "
              "%d threads | kernels %s\n",
              bc.dataset.c_str(), qnn::backbone_name(model.backbone()).c_str(),
              opts.fleet, opts.strategy.c_str(), opts.epochs,
              exec::resolve_threads(opts.threads),
              sim::kernels::arch_name(sim::kernels::active_arch()));

  const core::DistributedTrainer trainer(
      model, device::table3_fleet_subset(opts.fleet, bc.num_qubits), cfg);
  if (mon) {
    mon->set_baseline(trainer.behavioral_vectors());
    mon->observe_similarity(trainer.similarity(), opts.threshold);
  }
  std::printf("sharing groups:");
  for (const auto& g : trainer.sharing_groups()) {
    std::printf(" {");
    for (std::size_t k = 0; k < g.size(); ++k) {
      std::printf("%s%d", k ? "," : "", g[k] + 1);
    }
    std::printf("}");
  }
  std::printf("\n");

  std::unique_ptr<telemetry::JsonlExporter> tel;
  if (!opts.telemetry.empty()) {
    tel = std::make_unique<telemetry::JsonlExporter>(opts.telemetry);
  }

  const core::TrainResult r =
      trainer.train(strategies.at(opts.strategy), split, tel.get());
  std::printf("converged: epoch %d, loss %.4f (final %.4f), "
              "%zu gradient messages\n",
              r.convergence.epoch, r.convergence.loss,
              r.epoch_test_loss.back(), r.gradient_messages);

  if (!opts.csv.empty()) {
    report::loss_curves_table({{opts.strategy, r.epoch_test_loss}})
        .write(opts.csv);
    std::printf("wrote %s\n", opts.csv.c_str());
  }

  if (opts.infer) {
    const auto partition = core::build_torus_partition(
        trainer.behavioral_vectors(), r.weights);
    core::ScheduleConfig sc;
    const core::ShotOrientedScheduler scheduler(trainer.executors(),
                                                r.weights, partition, sc);
    const auto tasks =
        core::make_tasks(split.test_features, split.test_labels);
    const auto shot = scheduler.run(tasks, tel.get());
    const auto batch = core::batch_based_inference(trainer.executors(),
                                                   r.weights, tasks, sc);
    std::printf("inference: shot-oriented loss %.4f (throughput %.1f/s) | "
                "batch loss %.4f (throughput %.1f/s)\n",
                shot.mean_loss, shot.throughput_tasks_per_s,
                batch.mean_loss, batch.throughput_tasks_per_s);
  }

  if (opts.serve) {
    serve::ServeConfig sc;
    sc.queue_capacity = static_cast<std::size_t>(
        opts.queue_cap > 0 ? opts.queue_cap : 1024);
    sc.deadline_us = opts.deadline_us;
    sc.seed = opts.seed;
    sc.trace_sample_every = opts.trace_sample;
    sc.num_shards = opts.shards > 0 ? opts.shards : 1;
    sc.workers_per_shard = opts.shard_workers;
    // Multi-tenant QoS: the tenant table (quotas + weights), the dequeue
    // arbiter, and optionally the open-loop traffic generator replacing
    // the test-set submission loop.
    std::unique_ptr<serve::TrafficGenerator> traffic;
    try {
      sc.arbiter = serve::arbiter_kind_from_string(opts.arbiter);
      std::vector<serve::TenantProfile> profiles;
      if (!opts.tenants.empty()) {
        profiles = serve::parse_tenant_profiles(opts.tenants);
      }
      if (!opts.traffic.empty()) {
        if (profiles.empty()) {
          std::fprintf(stderr, "--traffic requires --tenants\n");
          return 1;
        }
        serve::TrafficConfig tc = serve::parse_traffic_spec(opts.traffic);
        tc.tenants = std::move(profiles);
        tc.feature_dim = split.test_features.empty()
                             ? 4
                             : split.test_features.front().size();
        traffic = std::make_unique<serve::TrafficGenerator>(tc);
        sc.tenants = traffic->tenant_specs();
        // Staged replay: stage the whole arrival stream before the
        // workers start so admission (quotas AND backpressure) and the
        // arbitrated dequeue order are pure functions of (config, seed)
        // — live submission would race the workers' drain and make
        // queue-full rejects wall-clock dependent.
        sc.autostart = false;
      } else {
        for (const serve::TenantProfile& p : profiles) {
          serve::TenantSpec t;
          t.name = p.name;
          t.weight = p.weight;
          t.max_in_flight = p.max_in_flight;
          t.admit_rate_per_s = p.admit_rate_per_s;
          t.admit_burst = p.admit_burst;
          sc.tenants.push_back(std::move(t));
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --arbiter/--tenants/--traffic: %s\n",
                   e.what());
      return 1;
    }
    std::unique_ptr<serve::FaultInjector> faults;
    if (!opts.faults.empty()) {
      faults = std::make_unique<serve::FaultInjector>(
          static_cast<std::size_t>(opts.fleet),
          serve::FaultInjector::parse(opts.faults));
    }
    // The scrape endpoint needs a health monitor behind /healthz even
    // when --health wasn't requested.
    std::unique_ptr<monitor::FleetHealthMonitor> serve_mon;
    monitor::FleetHealthMonitor* mon_ptr = mon.get();
    if (mon_ptr == nullptr && (opts.listen >= 0 || opts.watch)) {
      serve_mon = std::make_unique<monitor::FleetHealthMonitor>(
          static_cast<std::size_t>(opts.fleet));
      mon_ptr = serve_mon.get();
    }
    // Live telemetry store: the Collector folds 500ms wall-clock windows
    // of the global registry into it, and the runtime (sc.series) adds
    // its virtual-time serve.ts.* event series — per-shard/per-tenant
    // admission and latency keyed on the modeled admission clock. The
    // store is declared before the runtime so the handles the runtime
    // resolves in its constructor outlive it.
    std::unique_ptr<telemetry::TimeSeriesStore> store;
    std::unique_ptr<monitor::AnomalyWatchdog> watchdog;
    if (opts.listen >= 0 || opts.watch) {
      telemetry::TimeSeriesConfig tc;
      tc.window_us = 500'000.0;
      tc.max_windows = 240;
      store = std::make_unique<telemetry::TimeSeriesStore>(tc);
      watchdog = std::make_unique<monitor::AnomalyWatchdog>(
          monitor::WatchdogConfig{}, mon_ptr);
      sc.series = store.get();
    }
    serve::FlightRecorder flight;
    monitor::SloEngine slo(monitor::SloPolicy::defaults(), mon_ptr);
    serve::ServingRuntime runtime(trainer.executors(), r.weights,
                                  trainer.behavioral_vectors(), sc,
                                  faults.get(), mon_ptr, &flight, &slo);

    // The collector thread is declared after `runtime` so it stops and
    // destructs first (pre_sample reaches into the runtime).
    std::unique_ptr<telemetry::Collector> collector;
    if (store != nullptr) {
      telemetry::CollectorOptions co;
      co.cadence_us = 100'000.0;
      co.pre_sample = [&runtime] { runtime.publish_shard_metrics(); };
      co.post_sample = [&store, &watchdog] { watchdog->poll(*store); };
      collector = std::make_unique<telemetry::Collector>(
          *store, telemetry::MetricsRegistry::global(), co);
      collector->start();
    }

    telemetry::ScrapeServer scrape;
    if (opts.listen >= 0) {
      scrape.handle_text("/metrics", telemetry::prometheus_content_type(),
                         [] {
                           return telemetry::prometheus_text(
                               telemetry::MetricsRegistry::global()
                                   .snapshot());
                         });
      scrape.handle_text("/healthz", "application/json", [mon_ptr] {
        return mon_ptr->report().to_jsonl();
      });
      scrape.handle_text("/slo", "application/json",
                         [&slo] { return slo.report().to_jsonl(); });
      scrape.handle_query("/timeseries", [&store](const std::string& q) {
        telemetry::ScrapeResponse resp;
        resp.content_type = "application/json";
        resp.body = store->to_json(telemetry::query_param(q, "name"));
        return resp;
      });
      scrape.handle_text(
          "/dashboard", "text/html; charset=utf-8", [&store, mon_ptr] {
            std::string footer = "<pre>";
            footer += mon_ptr->report().to_table_string();
            footer += "</pre>";
            return telemetry::render_dashboard_html(*store, "arbiterq fleet",
                                                    "", footer);
          });
      if (scrape.start(static_cast<std::uint16_t>(opts.listen))) {
        std::printf("scrape endpoint: http://127.0.0.1:%u/metrics\n",
                    static_cast<unsigned>(scrape.port()));
      } else {
        std::fprintf(stderr, "cannot bind scrape port %d\n", opts.listen);
      }
    }

    std::atomic<bool> watch_stop{false};
    std::thread watch_thread;
    if (opts.watch) {
      watch_thread = std::thread([&] {
        while (!watch_stop.load(std::memory_order_acquire)) {
          render_watch_frame(runtime, *store, mon_ptr);
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
        }
        render_watch_frame(runtime, *store, mon_ptr);
      });
    }

    if (traffic) {
      std::size_t arrivals = 0;
      while (const auto g = traffic->next()) {
        runtime.submit(g->spec);
        ++arrivals;
      }
      std::printf("traffic: %zu open-loop arrivals (%s, %.2f modeled s, "
                  "seed %llu)\n",
                  arrivals,
                  serve::traffic_pattern_name(traffic->config().pattern)
                      .c_str(),
                  traffic->config().duration_s,
                  static_cast<unsigned long long>(
                      traffic->config().seed));
      runtime.start();
    } else {
      const std::size_t n_jobs =
          opts.jobs > 0 ? static_cast<std::size_t>(opts.jobs)
                        : split.test_features.size();
      for (std::size_t i = 0; i < n_jobs; ++i) {
        serve::JobSpec spec;
        spec.features = split.test_features[i % split.test_features.size()];
        spec.label = split.test_labels[i % split.test_labels.size()];
        spec.tenant = opts.tenant;
        runtime.submit(spec);
      }
    }
    runtime.drain();
    if (watch_thread.joinable()) {
      watch_stop.store(true, std::memory_order_release);
      watch_thread.join();
    }
    const serve::ServingReport sr = runtime.report();
    std::printf(
        "serving: %zu jobs (%zu ok, %zu rejected, %zu expired, %zu "
        "failed) | %llu retries | %zu dropouts, %zu repartitions, "
        "%zu epochs | %.1f jobs/s\n",
        sr.submitted, sr.completed, sr.rejected, sr.expired, sr.failed,
        static_cast<unsigned long long>(sr.retries), sr.dropouts_detected,
        sr.repartitions, runtime.epochs(), sr.throughput_jobs_per_s);
    for (const serve::TenantReport& t : sr.tenants) {
      std::printf(
          "  tenant %-16s w %4.1f | %5zu submitted, %5zu ok, "
          "%4zu rejected (%zu quota, %zu throttled) | "
          "p50 %8.0fus p99 %8.0fus\n",
          t.name.c_str(), t.weight, t.submitted, t.completed, t.rejected,
          t.quota_rejected, t.throttled, t.p50_virtual_latency_us,
          t.p99_virtual_latency_us);
    }
    if (runtime.num_shards() > 1) {
      for (const serve::ShardStats& s : sr.shards) {
        std::printf(
            "  shard %zu: qpus [%zu,%zu) cap %zu | %llu batches, "
            "%llu reserve-rejects | cross-shard %llu in / %llu out | "
            "lock %.2fms (%llu contended)\n",
            s.shard, s.first_qpu, s.first_qpu + s.num_qpus, s.capacity,
            static_cast<unsigned long long>(s.admitted_batches),
            static_cast<unsigned long long>(s.reserve_rejects),
            static_cast<unsigned long long>(s.cross_shard_in),
            static_cast<unsigned long long>(s.cross_shard_out),
            static_cast<double>(s.lock_wait_ns) / 1e6,
            static_cast<unsigned long long>(s.lock_contentions));
      }
    }
    const telemetry::MetricsSnapshot snap =
        telemetry::MetricsRegistry::global().snapshot();
    for (const telemetry::HistogramSnapshot& h : snap.histograms) {
      if (h.name == "serve.job.latency_us" && h.count > 0) {
        std::printf("serving latency: p50 %.1fus p99 %.1fus (wall, "
                    "%llu jobs)\n",
                    h.p50(), h.p99(),
                    static_cast<unsigned long long>(h.count));
      }
    }
    std::printf("%s", slo.report().to_table_string().c_str());
    if (!opts.flight_out.empty()) {
      flight.write_jsonl(opts.flight_out);
      std::printf("wrote %s (%zu flight records, %zu dropped)\n",
                  opts.flight_out.c_str(), flight.size(), flight.dropped());
    }
    if (scrape.running() && opts.linger_ms > 0) {
      std::printf("scrape endpoint lingering %d ms...\n", opts.linger_ms);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.linger_ms));
    }
    scrape.stop();
    if (collector) {
      collector->stop();
      if (watchdog->anomaly_count() > 0) {
        const monitor::FleetHealthReport rep = mon_ptr->report();
        std::printf("watchdog: %zu anomalies (worst %s, score %.2f)\n",
                    watchdog->anomaly_count(), rep.worst_anomaly.c_str(),
                    rep.worst_anomaly_score);
      }
    }
  }

  if (tel) {
    tel->write_global_state();
    tel->close();
    std::printf("wrote %s (%zu telemetry lines)\n", opts.telemetry.c_str(),
                tel->lines_written());
  }

  if (mon) {
    const monitor::FleetHealthReport rep = mon->report();
    std::printf("%s", rep.to_table_string().c_str());
    std::FILE* f = std::fopen(opts.health.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.health.c_str());
      return 1;
    }
    const std::string jsonl = rep.to_jsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", opts.health.c_str());
  }
  if (!opts.trace_out.empty()) {
    telemetry::write_chrome_trace(opts.trace_out,
                                  telemetry::TraceBuffer::global().snapshot());
    std::printf("wrote %s\n", opts.trace_out.c_str());
  }
  if (!opts.prom_out.empty()) {
    telemetry::write_prometheus(
        opts.prom_out, telemetry::MetricsRegistry::global().snapshot());
    std::printf("wrote %s\n", opts.prom_out.c_str());
  }
  return 0;
}
