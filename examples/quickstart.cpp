// Quickstart: train a small QNN classifier on one simulated noisy QPU.
//
//   1. make a dataset (synthetic Iris-like, Table II shape),
//   2. compress + angle-encode it for 2 qubits,
//   3. build Model-CRz and bind it to a device with QnnExecutor,
//   4. run plain gradient descent with adjoint gradients,
//   5. report train/test loss and accuracy.

#include <cstdio>
#include <vector>

#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/data/synthetic.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"

int main() {
  using namespace arbiterq;

  const data::EncodedSplit split = data::prepare(data::iris_like(), 2);
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);
  const device::Qpu qpu = device::table3_fleet(2).front();
  const qnn::QnnExecutor executor(model, qpu);

  std::printf("quickstart: %s on %s (%d qubits, %d weights)\n",
              split.name.c_str(), qpu.name().c_str(), model.num_qubits(),
              model.num_weights());
  std::printf("  compiled: %zu basis gates, depth %zu, %zu routing SWAPs\n",
              executor.compiled().executable.size(),
              executor.compiled().executable.depth(),
              executor.compiled().routed.routing_swap_count());

  math::Rng rng(1234);
  std::vector<double> weights(
      static_cast<std::size_t>(model.num_weights()));
  for (double& w : weights) w = rng.uniform(-0.5, 0.5);

  const auto kind = qnn::LossKind::kMse;
  const double lr = 0.3;
  for (int epoch = 1; epoch <= 30; ++epoch) {
    const auto grad = executor.loss_gradient(kind, split.train_features,
                                             split.train_labels, weights);
    for (std::size_t k = 0; k < weights.size(); ++k) {
      weights[k] -= lr * grad[k];
    }
    if (epoch % 5 == 0 || epoch == 1) {
      const double train = executor.dataset_loss(
          kind, split.train_features, split.train_labels, weights);
      const double test = executor.dataset_loss(
          kind, split.test_features, split.test_labels, weights);
      std::printf("  epoch %2d  train loss %.4f  test loss %.4f\n", epoch,
                  train, test);
    }
  }

  std::vector<double> probs;
  probs.reserve(split.test_features.size());
  for (const auto& f : split.test_features) {
    probs.push_back(executor.probability(f, weights));
  }
  std::printf("quickstart: final test accuracy %.1f%%\n",
              100.0 * qnn::batch_accuracy(probs, split.test_labels));
  return 0;
}
