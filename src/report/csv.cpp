#include "arbiterq/report/csv.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace arbiterq::report {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("CsvTable: no columns");
  }
}

CsvTable& CsvTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("CsvTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

CsvTable& CsvTable::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    text.emplace_back(buf);
  }
  return add_row(std::move(text));
}

std::string CsvTable::to_string() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ",";
    out += quoted(columns_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += quoted(row[c]);
    }
    out += "\n";
  }
  return out;
}

void CsvTable::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("CsvTable::write: cannot open " + path);
  }
  os << to_string();
  // flush() before the destructor so a full disk or yanked mount is
  // reported here instead of swallowed by ~ofstream.
  os.flush();
  if (!os) {
    throw std::runtime_error("CsvTable::write: write failed for " + path);
  }
}

std::optional<std::vector<std::vector<std::string>>> parse_csv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted_field = false;  // current field was opened with a quote
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    quoted_field = false;
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      // A quote is only legal as the very first character of a field or
      // doubled inside a quoted one (handled above).
      if (field_started) return std::nullopt;
      quoted_field = true;
      field_started = true;
      in_quotes = true;
      continue;
    }
    if (c == ',') {
      end_field();
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r') {
        if (i + 1 >= text.size() || text[i + 1] != '\n') {
          return std::nullopt;  // lone \r: to_string never emits it bare
        }
        ++i;
      }
      end_row();
      continue;
    }
    if (quoted_field) return std::nullopt;  // text after a closing quote
    field += c;
    field_started = true;
  }
  if (in_quotes) return std::nullopt;  // unterminated quoted field
  // Final record without a trailing newline.
  if (field_started || !row.empty()) end_row();
  return rows;
}

CsvTable loss_curves_table(
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  if (series.empty()) {
    throw std::invalid_argument("loss_curves_table: no series");
  }
  std::vector<std::string> columns = {"epoch"};
  std::size_t longest = 0;
  for (const auto& [label, values] : series) {
    columns.push_back(label);
    longest = std::max(longest, values.size());
  }
  CsvTable table(std::move(columns));
  for (std::size_t e = 0; e < longest; ++e) {
    std::vector<std::string> row;
    row.push_back(std::to_string(e + 1));
    for (const auto& [label, values] : series) {
      if (e < values.size()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", values[e]);
        row.emplace_back(buf);
      } else {
        row.emplace_back("");
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace arbiterq::report
