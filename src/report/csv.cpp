#include "arbiterq/report/csv.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace arbiterq::report {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quoted(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("CsvTable: no columns");
  }
}

CsvTable& CsvTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("CsvTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

CsvTable& CsvTable::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    text.emplace_back(buf);
  }
  return add_row(std::move(text));
}

std::string CsvTable::to_string() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ",";
    out += quoted(columns_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += quoted(row[c]);
    }
    out += "\n";
  }
  return out;
}

void CsvTable::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("CsvTable::write: cannot open " + path);
  }
  os << to_string();
  // flush() before the destructor so a full disk or yanked mount is
  // reported here instead of swallowed by ~ofstream.
  os.flush();
  if (!os) {
    throw std::runtime_error("CsvTable::write: write failed for " + path);
  }
}

CsvTable loss_curves_table(
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  if (series.empty()) {
    throw std::invalid_argument("loss_curves_table: no series");
  }
  std::vector<std::string> columns = {"epoch"};
  std::size_t longest = 0;
  for (const auto& [label, values] : series) {
    columns.push_back(label);
    longest = std::max(longest, values.size());
  }
  CsvTable table(std::move(columns));
  for (std::size_t e = 0; e < longest; ++e) {
    std::vector<std::string> row;
    row.push_back(std::to_string(e + 1));
    for (const auto& [label, values] : series) {
      if (e < values.size()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.10g", values[e]);
        row.emplace_back(buf);
      } else {
        row.emplace_back("");
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace arbiterq::report
