#include "arbiterq/report/jsonl.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace arbiterq::report {

namespace {

std::string format_number(double v) {
  // JSON has no NaN/Inf; emit null so consumers see an explicit hole.
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonLine& JsonLine::raw(std::string_view key, std::string value) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + json_escape(key) + "\":" + value;
  return *this;
}

JsonLine& JsonLine::field(std::string_view key, std::string_view value) {
  return raw(key, "\"" + json_escape(value) + "\"");
}

JsonLine& JsonLine::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonLine& JsonLine::field(std::string_view key, double value) {
  return raw(key, format_number(value));
}

JsonLine& JsonLine::field(std::string_view key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonLine& JsonLine::field(std::string_view key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonLine& JsonLine::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

JsonLine& JsonLine::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonLine& JsonLine::field(std::string_view key,
                          const std::vector<double>& values) {
  std::string arr = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) arr += ",";
    arr += format_number(values[i]);
  }
  arr += "]";
  return raw(key, std::move(arr));
}

JsonLine& JsonLine::field(std::string_view key,
                          const std::vector<std::uint64_t>& values) {
  std::string arr = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) arr += ",";
    arr += std::to_string(values[i]);
  }
  arr += "]";
  return raw(key, std::move(arr));
}

JsonLine& JsonLine::field(std::string_view key,
                          const std::vector<int>& values) {
  std::string arr = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) arr += ",";
    arr += std::to_string(values[i]);
  }
  arr += "]";
  return raw(key, std::move(arr));
}

JsonLine& JsonLine::field(std::string_view key,
                          const std::vector<std::string>& values) {
  std::string arr = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) arr += ",";
    arr += "\"" + json_escape(values[i]) + "\"";
  }
  arr += "]";
  return raw(key, std::move(arr));
}

std::string JsonLine::finish() const { return "{" + body_ + "}"; }

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;

  bool at_end() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at_end() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (at_end() || s[pos] != '"') return false;
    ++pos;
    out->clear();
    while (!at_end()) {
      char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (at_end()) return false;
      char esc = s[pos++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          char hex[5] = {s[pos], s[pos + 1], s[pos + 2], s[pos + 3], 0};
          char* end = nullptr;
          const long code = std::strtol(hex, &end, 16);
          if (end != hex + 4) return false;
          pos += 4;
          // ASCII escapes only (all this repo ever emits); wider code
          // points pass through as '?' rather than failing the line.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool parse_number(double* out) {
    skip_ws();
    const char* begin = s.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
  }

  bool parse_scalar(JsonValue* out) {
    skip_ws();
    if (at_end()) return false;
    if (s[pos] == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string);
    }
    if (literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    out->kind = JsonValue::Kind::kNumber;
    return parse_number(&out->number);
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (at_end()) return false;
    if (s[pos] != '[') return parse_scalar(out);
    ++pos;
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue elem;
      if (!parse_scalar(&elem)) return false;
      out->array.push_back(std::move(elem));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

std::optional<JsonObject> parse_json_line(std::string_view line) {
  Parser p{line};
  if (!p.consume('{')) return std::nullopt;
  JsonObject obj;
  p.skip_ws();
  if (p.consume('}')) {
    p.skip_ws();
    return p.at_end() ? std::optional<JsonObject>(std::move(obj))
                      : std::nullopt;
  }
  while (true) {
    std::string key;
    if (!p.parse_string(&key)) return std::nullopt;
    if (!p.consume(':')) return std::nullopt;
    JsonValue value;
    if (!p.parse_value(&value)) return std::nullopt;
    obj[std::move(key)] = std::move(value);
    if (p.consume('}')) break;
    if (!p.consume(',')) return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) return std::nullopt;
  return obj;
}

}  // namespace arbiterq::report
