#pragma once
// Minimal CSV emission (RFC 4180 quoting) so every experiment binary can
// dump plot-ready data next to its console table. No third-party I/O.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace arbiterq::report {

class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Throws if the cell count does not match the column count.
  CsvTable& add_row(std::vector<std::string> cells);
  /// Numeric convenience (formatted with %.10g).
  CsvTable& add_row(const std::vector<double>& cells);

  /// Full document, header first, fields quoted when needed.
  std::string to_string() const;

  /// Write to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Loss-curve convenience: one "epoch" column plus one column per series;
/// series may have different lengths (short ones pad with empty cells).
CsvTable loss_curves_table(
    const std::vector<std::pair<std::string, std::vector<double>>>& series);

/// Parse a full RFC 4180 document back into rows of fields — the inverse
/// of CsvTable::to_string, so telemetry exports whose span/metric names
/// carry commas, quotes or newlines round-trip exactly. Accepts \n and
/// \r\n record separators and an optional missing final newline; a bare
/// quote inside an unquoted field, or characters trailing a closing
/// quote, return nullopt (malformed). Empty input parses to zero rows.
std::optional<std::vector<std::vector<std::string>>> parse_csv(
    std::string_view text);

}  // namespace arbiterq::report
