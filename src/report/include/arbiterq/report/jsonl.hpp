#pragma once
// Minimal JSONL (one JSON object per line) emission and parsing, the
// sibling of csv.hpp: every exporter shares the same escaping and
// failure-reporting discipline. Deliberately small — flat objects whose
// values are strings, numbers, booleans, null, or arrays of those; no
// nested objects (nothing in the repo emits them).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace arbiterq::report {

/// RFC 8259 string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Builder for one flat JSON object, emitted as a single line.
/// Usage: JsonLine().field("type", "span").field("dur_ns", 12).finish()
class JsonLine {
 public:
  JsonLine& field(std::string_view key, std::string_view value);
  JsonLine& field(std::string_view key, const char* value);
  JsonLine& field(std::string_view key, double value);
  JsonLine& field(std::string_view key, std::uint64_t value);
  JsonLine& field(std::string_view key, std::int64_t value);
  JsonLine& field(std::string_view key, int value);
  JsonLine& field(std::string_view key, bool value);
  JsonLine& field(std::string_view key, const std::vector<double>& values);
  JsonLine& field(std::string_view key,
                  const std::vector<std::uint64_t>& values);
  JsonLine& field(std::string_view key, const std::vector<int>& values);
  JsonLine& field(std::string_view key,
                  const std::vector<std::string>& values);

  /// The finished object, `{...}` without a trailing newline.
  std::string finish() const;

 private:
  JsonLine& raw(std::string_view key, std::string value);
  std::string body_;
};

/// Parsed JSON scalar-or-array value.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;  ///< scalar elements only
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parse one flat JSON object line (the inverse of JsonLine). Returns
/// nullopt on malformed input or unsupported shapes (nested objects).
std::optional<JsonObject> parse_json_line(std::string_view line);

}  // namespace arbiterq::report
