#pragma once
// Bounded, priority-aware shot-batch queue behind the fleet serving
// runtime. The queue is laned: every QPU worker pops only the lane that
// targets its device, so a batch routed (or re-routed) to QPU q is
// executed by q's worker and nobody else.
//
// Admission control: try_push enforces a global capacity across all
// lanes and fails (backpressure) when the runtime is saturated — the
// caller turns that into a rejected job. Retries and re-routes of
// *already admitted* work go through push_retry, which bypasses the
// bound: admitted work is never dropped because the fleet is busy.
//
// Graceful drain: close() stops admissions; workers keep popping until
// every lane is empty AND no popped batch is still in flight (a worker
// holding a batch may yet re-route it into another lane), then every
// blocked pop returns false and the workers exit. The in-flight count
// is maintained by the pop/task_done pairing.

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace arbiterq::serve {

enum class JobPriority { kLow = 0, kNormal = 1, kHigh = 2 };

/// One unit of queued work: a slice of a job's shot budget bound for a
/// specific QPU. `slot` is the batch's fixed aggregation index within
/// its job (results fold in slot order, independent of completion
/// order); `excluded` accumulates the QPUs that already failed this
/// batch so the retry policy never routes back to them.
struct ShotBatch {
  std::uint64_t job = 0;
  std::size_t slot = 0;
  int qpu = 0;
  int shots = 0;
  int attempt = 0;
  JobPriority priority = JobPriority::kNormal;
  std::vector<int> excluded;
  /// Trace clock at (re-)enqueue, for queue-wait spans of traced jobs;
  /// 0 when the owning job is untraced (the common case — the clock
  /// read is skipped entirely).
  std::uint64_t enqueue_ns = 0;
};

class JobQueue {
 public:
  /// `num_lanes` = fleet size; `capacity` bounds the *admitted* batches
  /// resident across all lanes (retries ride above the bound).
  JobQueue(std::size_t num_lanes, std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admission path. False when the queue is full or closed.
  bool try_push(ShotBatch batch);
  /// Atomic job admission: either every batch is enqueued or none is
  /// (false when the batches don't all fit, or the queue is closed).
  bool try_push_all(std::vector<ShotBatch> batches);
  /// Retry/re-route path for already-admitted work: always accepted,
  /// even above capacity or after close().
  void push_retry(ShotBatch batch);

  /// Block until a batch is available in `lane`, the queue has fully
  /// drained after close() (returns false), or abort() was called.
  /// A successful pop marks the batch in flight; the worker must call
  /// task_done() exactly once after the batch reaches a terminal state
  /// (executed, expired, failed) or was re-routed via push_retry.
  bool pop(std::size_t lane, ShotBatch* out);
  /// Balance a successful pop once the popped batch is finished with.
  void task_done();

  /// Stop admitting; pending work still drains.
  void close();
  /// Emergency stop: wake every popper immediately (pending batches are
  /// abandoned). Used by the runtime destructor.
  void abort();

  bool closed() const;
  /// Batches resident across all lanes right now.
  std::size_t depth() const;
  std::size_t lane_depth(std::size_t lane) const;
  std::size_t rejected() const;

 private:
  // One FIFO per (lane, priority); pop scans high -> low priority.
  static constexpr int kPriorities = 3;

  /// Queue entry: only admission-path batches count against capacity
  /// while resident; retries ride above the bound.
  struct Entry {
    bool admitted = false;
    ShotBatch batch;
  };

  bool drained_locked() const {
    return closed_ && total_depth_ == 0 && in_flight_ == 0;
  }
  void note_depth_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Entry>> lanes_;  ///< num_lanes * kPriorities
  std::size_t capacity_;
  std::size_t admitted_depth_ = 0;  ///< try_push batches still resident
  std::size_t total_depth_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t rejected_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace arbiterq::serve
