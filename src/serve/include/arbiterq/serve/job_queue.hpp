#pragma once
// Bounded, priority-aware shot-batch queue behind the fleet serving
// runtime. The queue is laned: every QPU worker pops only the lane that
// targets its device, so a batch routed (or re-routed) to QPU q is
// executed by q's worker and nobody else.
//
// Admission control: try_push enforces a global capacity across all
// lanes and fails (backpressure) when the runtime is saturated — the
// caller turns that into a rejected job. Retries and re-routes of
// *already admitted* work go through push_retry, which bypasses the
// bound: admitted work is never dropped because the fleet is busy.
//
// Graceful drain: close() stops admissions; workers keep popping until
// every lane is empty AND no popped batch is still in flight (a worker
// holding a batch may yet re-route it into another lane), then every
// blocked pop returns false and the workers exit. The in-flight count
// is maintained by the pop/task_done pairing.

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace arbiterq::telemetry {
class Gauge;
}  // namespace arbiterq::telemetry

namespace arbiterq::serve {

enum class JobPriority { kLow = 0, kNormal = 1, kHigh = 2 };

/// One unit of queued work: a slice of a job's shot budget bound for a
/// specific QPU. `slot` is the batch's fixed aggregation index within
/// its job (results fold in slot order, independent of completion
/// order); `excluded` accumulates the QPUs that already failed this
/// batch so the retry policy never routes back to them.
struct ShotBatch {
  std::uint64_t job = 0;
  std::size_t slot = 0;
  int qpu = 0;
  int shots = 0;
  int attempt = 0;
  JobPriority priority = JobPriority::kNormal;
  std::vector<int> excluded;
  /// Trace clock at (re-)enqueue, for queue-wait spans of traced jobs;
  /// 0 when the owning job is untraced (the common case — the clock
  /// read is skipped entirely).
  std::uint64_t enqueue_ns = 0;
};

class JobQueue {
 public:
  /// `num_lanes` = fleet (or shard) size; `capacity` bounds the
  /// *admitted* batches resident across all lanes (retries ride above
  /// the bound). `depth_metric` names the gauge the resident depth is
  /// published under — per-shard queues pass a shard-suffixed name so
  /// their depths stay distinguishable. `lane_base` rebases the lane a
  /// push derives from ShotBatch::qpu (lane = qpu - lane_base): a shard
  /// owning the QPU block [first, first+n) passes first and keeps its
  /// lanes local 0..n-1. pop/pop_any/lane_depth always take local lanes.
  JobQueue(std::size_t num_lanes, std::size_t capacity,
           std::string depth_metric = "serve.queue.depth",
           std::size_t lane_base = 0);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admission path. False when the queue is full or closed.
  bool try_push(ShotBatch batch);
  /// Atomic job admission: either every batch is enqueued or none is
  /// (false when the batches don't all fit, or the queue is closed).
  bool try_push_all(std::vector<ShotBatch> batches);
  /// Admission path for capacity units reserved *outside* the queue
  /// (the sharded runtime's front-end reserves per-shard capacity with
  /// an atomic before the batch ever reaches the shard, so the queue
  /// itself no longer gates; the reservation is released when the batch
  /// is popped — see pop()'s `was_admitted`). Accepted even after
  /// close(): the front-end stopped admitting first, so anything still
  /// in a mailbox was admitted while the runtime was open.
  void push_reserved(ShotBatch batch);
  /// Retry/re-route path for already-admitted work: always accepted,
  /// even above capacity or after close().
  void push_retry(ShotBatch batch);

  /// Block until a batch is available in `lane`, the queue has fully
  /// drained after close() (returns false), or abort() was called.
  /// A successful pop marks the batch in flight; the worker must call
  /// task_done() exactly once after the batch reaches a terminal state
  /// (executed, expired, failed) or was re-routed via push_retry.
  /// `was_admitted`, when non-null, reports whether the popped batch
  /// occupied an admission-capacity unit (try_push/try_push_all/
  /// push_reserved) as opposed to riding above the bound (push_retry) —
  /// the sharded runtime uses it to release its reservation counter.
  bool pop(std::size_t lane, ShotBatch* out,
           bool* was_admitted = nullptr);
  /// Like pop() but over a fixed set of lanes (a worker that owns
  /// several QPU lanes): scans priorities high -> low across the lanes
  /// in the given order, blocking until any of them yields.
  bool pop_any(const std::vector<std::size_t>& lanes, ShotBatch* out,
               bool* was_admitted = nullptr);
  /// Balance a successful pop once the popped batch is finished with.
  void task_done();

  /// Stop admitting; pending work still drains.
  void close();
  /// Emergency stop: wake every popper immediately (pending batches are
  /// abandoned). Used by the runtime destructor.
  void abort();

  bool closed() const;
  /// Batches resident across all lanes right now.
  std::size_t depth() const;
  std::size_t lane_depth(std::size_t lane) const;
  std::size_t rejected() const;

  /// Lock-contention accounting: cumulative nanoseconds callers spent
  /// blocked acquiring the queue mutex (only contended acquisitions are
  /// timed — the uncontended fast path is a try_lock), and how many
  /// acquisitions were contended. This is what makes the sharded bench's
  /// flat-contention claim a measurement instead of an assertion.
  std::uint64_t lock_wait_ns() const {
    return lock_wait_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_contentions() const {
    return lock_contentions_.load(std::memory_order_relaxed);
  }

 private:
  // One FIFO per (lane, priority); pop scans high -> low priority.
  static constexpr int kPriorities = 3;

  /// Queue entry: only admission-path batches count against capacity
  /// while resident; retries ride above the bound.
  struct Entry {
    bool admitted = false;
    ShotBatch batch;
  };

  bool drained_locked() const {
    return closed_ && total_depth_ == 0 && in_flight_ == 0;
  }
  void note_depth_locked();
  /// Local lane of a batch: its target QPU rebased by lane_base_.
  std::size_t lane_of(const ShotBatch& batch) const {
    return static_cast<std::size_t>(batch.qpu) - lane_base_;
  }
  /// Acquire mu_, timing the wait when the try_lock fast path misses.
  std::unique_lock<std::mutex> lock_timed() const;
  bool pop_locked(std::unique_lock<std::mutex>& lock,
                  const std::size_t* lanes, std::size_t n_lanes,
                  ShotBatch* out, bool* was_admitted);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Entry>> lanes_;  ///< num_lanes * kPriorities
  std::size_t capacity_;
  std::size_t lane_base_;
  std::string depth_metric_;
  telemetry::Gauge* depth_gauge_ = nullptr;  ///< resolved on first use
  std::size_t admitted_depth_ = 0;  ///< admission batches still resident
  std::size_t total_depth_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t rejected_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
  mutable std::atomic<std::uint64_t> lock_wait_ns_{0};
  mutable std::atomic<std::uint64_t> lock_contentions_{0};
};

}  // namespace arbiterq::serve
