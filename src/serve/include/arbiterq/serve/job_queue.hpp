#pragma once
// Bounded, priority-aware shot-batch queue behind the fleet serving
// runtime. The queue is laned: every QPU worker pops only the lane that
// targets its device, so a batch routed (or re-routed) to QPU q is
// executed by q's worker and nobody else.
//
// Multi-tenant arbitration: each (lane, priority) cell holds one FIFO
// per tenant, and a per-lane Arbiter (see arbiter.hpp) decides which
// tenant's head-of-line batch a pop takes. With a single tenant (the
// default) the cell degenerates to the old single FIFO and the arbiter
// is never consulted. Arbiter state is per *lane*, shared across the
// priority levels of that lane, so a tenant's credit/rotation position
// carries across priorities; priorities themselves still scan strictly
// high -> low.
//
// Admission control: try_push enforces a global capacity across all
// lanes and fails (backpressure) when the runtime is saturated — the
// caller turns that into a rejected job. Retries and re-routes of
// *already admitted* work go through push_retry, which bypasses the
// bound: admitted work is never dropped because the fleet is busy.
//
// Graceful drain: close() stops admissions; workers keep popping until
// every lane is empty AND no popped batch is still in flight (a worker
// holding a batch may yet re-route it into another lane), then every
// blocked pop returns false and the workers exit. The in-flight count
// is maintained by the pop/task_done pairing.

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arbiterq/serve/arbiter.hpp"

namespace arbiterq::telemetry {
class Gauge;
}  // namespace arbiterq::telemetry

namespace arbiterq::serve {

enum class JobPriority { kLow = 0, kNormal = 1, kHigh = 2 };

/// One unit of queued work: a slice of a job's shot budget bound for a
/// specific QPU. `slot` is the batch's fixed aggregation index within
/// its job (results fold in slot order, independent of completion
/// order); `excluded` accumulates the QPUs that already failed this
/// batch so the retry policy never routes back to them.
struct ShotBatch {
  std::uint64_t job = 0;
  std::size_t slot = 0;
  int qpu = 0;
  int shots = 0;
  int attempt = 0;
  JobPriority priority = JobPriority::kNormal;
  /// Tenant slot the owning job resolved to (0 when the runtime has no
  /// tenant table); selects the per-tenant FIFO and arbiter port.
  std::uint32_t tenant = 0;
  std::vector<int> excluded;
  /// Trace clock at (re-)enqueue, for queue-wait spans of traced jobs;
  /// 0 when the owning job is untraced (the common case — the clock
  /// read is skipped entirely).
  std::uint64_t enqueue_ns = 0;
};

class JobQueue {
 public:
  /// `num_lanes` = fleet (or shard) size; `capacity` bounds the
  /// *admitted* batches resident across all lanes (retries ride above
  /// the bound). `depth_metric` names the gauge the resident depth is
  /// published under — per-shard queues pass a shard-suffixed name so
  /// their depths stay distinguishable. `lane_base` rebases the lane a
  /// push derives from ShotBatch::qpu (lane = qpu - lane_base): a shard
  /// owning the QPU block [first, first+n) passes first and keeps its
  /// lanes local 0..n-1. pop/pop_any/lane_depth always take local lanes.
  /// `num_tenants` sizes the per-tenant FIFOs (batches with tenant >=
  /// num_tenants are clamped into the last slot); `arbiter` configures
  /// the per-lane dequeue arbiters, consulted only when num_tenants > 1.
  JobQueue(std::size_t num_lanes, std::size_t capacity,
           std::string depth_metric = "serve.queue.depth",
           std::size_t lane_base = 0, std::size_t num_tenants = 1,
           const ArbiterConfig& arbiter = {});

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admission path. False when the queue is full or closed.
  bool try_push(ShotBatch batch);
  /// Atomic job admission: either every batch is enqueued or none is
  /// (false when the batches don't all fit, or the queue is closed).
  bool try_push_all(std::vector<ShotBatch> batches);
  /// Admission path for capacity units reserved *outside* the queue
  /// (the sharded runtime's front-end reserves per-shard capacity with
  /// an atomic before the batch ever reaches the shard, so the queue
  /// itself no longer gates; the reservation is released when the batch
  /// is popped — see pop()'s `was_admitted`). Accepted even after
  /// close(): the front-end stopped admitting first, so anything still
  /// in a mailbox was admitted while the runtime was open.
  void push_reserved(ShotBatch batch);
  /// Retry/re-route path for already-admitted work: always accepted,
  /// even above capacity or after close().
  void push_retry(ShotBatch batch);

  /// Block until a batch is available in `lane`, the queue has fully
  /// drained after close() (returns false), or abort() was called.
  /// A successful pop marks the batch in flight; the worker must call
  /// task_done() exactly once after the batch reaches a terminal state
  /// (executed, expired, failed) or was re-routed via push_retry.
  /// `was_admitted`, when non-null, reports whether the popped batch
  /// occupied an admission-capacity unit (try_push/try_push_all/
  /// push_reserved) as opposed to riding above the bound (push_retry) —
  /// the sharded runtime uses it to release its reservation counter.
  bool pop(std::size_t lane, ShotBatch* out,
           bool* was_admitted = nullptr);
  /// Like pop() but over a fixed set of lanes (a worker that owns
  /// several QPU lanes): scans priorities high -> low across the lanes
  /// in the given order, blocking until any of them yields.
  bool pop_any(const std::vector<std::size_t>& lanes, ShotBatch* out,
               bool* was_admitted = nullptr);
  /// Balance a successful pop once the popped batch is finished with.
  void task_done();

  /// Stop admitting; pending work still drains.
  void close();
  /// Emergency stop: wake every popper immediately (pending batches are
  /// abandoned). Used by the runtime destructor.
  void abort();

  bool closed() const;
  /// Batches resident across all lanes right now.
  std::size_t depth() const;
  std::size_t lane_depth(std::size_t lane) const;
  /// Batches resident for tenant slot `tenant` across all lanes.
  std::size_t tenant_depth(std::size_t tenant) const;
  std::size_t num_tenants() const noexcept { return num_tenants_; }
  std::size_t rejected() const;
  /// Arbiter grants issued so far (pops that consulted an arbiter).
  std::uint64_t arbiter_grants() const;

  /// Lock-contention accounting: cumulative nanoseconds callers spent
  /// blocked acquiring the queue mutex (only contended acquisitions are
  /// timed — the uncontended fast path is a try_lock), and how many
  /// acquisitions were contended. This is what makes the sharded bench's
  /// flat-contention claim a measurement instead of an assertion.
  std::uint64_t lock_wait_ns() const {
    return lock_wait_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_contentions() const {
    return lock_contentions_.load(std::memory_order_relaxed);
  }

 private:
  // One FIFO per (lane, priority, tenant); pop scans high -> low
  // priority, the lane arbiter picks the tenant within a cell.
  static constexpr int kPriorities = 3;

  /// Queue entry: only admission-path batches count against capacity
  /// while resident; retries ride above the bound. `seq` is the queue-
  /// wide push sequence — the arbiters' oldest-first tie-break.
  struct Entry {
    bool admitted = false;
    std::uint64_t seq = 0;
    ShotBatch batch;
  };

  bool drained_locked() const {
    return closed_ && total_depth_ == 0 && in_flight_ == 0;
  }
  void note_depth_locked();
  /// Local lane of a batch: its target QPU rebased by lane_base_.
  std::size_t lane_of(const ShotBatch& batch) const {
    return static_cast<std::size_t>(batch.qpu) - lane_base_;
  }
  /// Tenant slot of a batch, clamped into range.
  std::size_t tenant_of(const ShotBatch& batch) const {
    const auto t = static_cast<std::size_t>(batch.tenant);
    return t < num_tenants_ ? t : num_tenants_ - 1;
  }
  /// FIFO cell for (local lane, priority, tenant).
  std::deque<Entry>& cell(std::size_t lane, int pri, std::size_t tenant) {
    return lanes_[(lane * kPriorities + static_cast<std::size_t>(pri)) *
                      num_tenants_ +
                  tenant];
  }
  const std::deque<Entry>& cell(std::size_t lane, int pri,
                                std::size_t tenant) const {
    return lanes_[(lane * kPriorities + static_cast<std::size_t>(pri)) *
                      num_tenants_ +
                  tenant];
  }
  void enqueue_locked(ShotBatch batch, bool admitted);
  /// Acquire mu_, timing the wait when the try_lock fast path misses.
  std::unique_lock<std::mutex> lock_timed() const;
  bool pop_locked(std::unique_lock<std::mutex>& lock,
                  const std::size_t* lanes, std::size_t n_lanes,
                  ShotBatch* out, bool* was_admitted);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Entry>> lanes_;  ///< num_lanes*kPriorities*tenants
  std::size_t capacity_;
  std::size_t lane_base_;
  std::size_t num_tenants_;
  std::string depth_metric_;
  telemetry::Gauge* depth_gauge_ = nullptr;  ///< resolved on first use
  /// Per-lane tenant arbiters (empty when num_tenants_ == 1: the pop
  /// path never consults an arbiter for a single tenant).
  std::vector<std::unique_ptr<Arbiter>> arbiters_;
  std::vector<std::uint64_t> head_seq_;  ///< grant() scratch, mu_-guarded
  std::vector<std::size_t> tenant_depth_;  ///< resident per tenant
  std::uint64_t push_seq_ = 0;
  std::uint64_t arbiter_grants_ = 0;
  std::size_t admitted_depth_ = 0;  ///< admission batches still resident
  std::size_t total_depth_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t rejected_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
  mutable std::atomic<std::uint64_t> lock_wait_ns_{0};
  mutable std::atomic<std::uint64_t> lock_contentions_{0};
};

}  // namespace arbiterq::serve
