#pragma once
// Dequeue arbiters for the multi-tenant serving queue. Each (lane,
// priority) cell of a shard's JobQueue holds one FIFO per tenant; when a
// worker pops, the lane's arbiter decides which tenant's head-of-line
// batch runs next. The interface is the Orion router-arbiter shape (an
// Arbiter base with RR/matrix implementations behind a factory), lifted
// from wire grants to tenant grants.
//
// Contract: grant() receives one slot per tenant carrying the queue push
// sequence of that tenant's head-of-line request (kNoRequest when the
// tenant has nothing pending at this lane/priority), picks a requesting
// tenant, updates internal state, and returns the winner. The caller
// serializes calls (the queue mutex) and guarantees at least one
// requester.
//
// Determinism: an arbiter's decision is a pure function of its config
// and the sequence of requester sets it has seen. The runtime keeps one
// arbiter per *lane* (QPU), and a lane's content sequence is a pure
// function of the admitted arrival sequence, so in saturated-backlog
// replays (submit everything, then drain) the full dequeue order — not
// just the admitted set — is bit-identical across runs, thread counts
// and shard counts.
//
//   fifo            — grant the globally oldest request (minimum push
//                     sequence). Exactly the pre-tenant single-FIFO
//                     behavior; the default.
//   round_robin     — rotate from the last granted tenant; oldest-first
//                     is ignored, every requester is visited within one
//                     full turn.
//   matrix          — least-recently-served pairwise: a priority matrix
//                     m[i][j] ("i beats j") grants the requester that
//                     beats every other requester, then demotes the
//                     winner below everyone. LRS among *requesters*,
//                     not a fixed rotation order.
//   weighted_credit — each grant distributes one credit across the
//                     requesters proportional to their weights; the
//                     richest requester wins (ties break oldest-first)
//                     and pays 1.0. A tenant with weight w out of a
//                     requesting total W is granted at least once every
//                     ceil(W/w) grants — the starvation bound an
//                     adversarial heavy tenant cannot break.
//                     Weight <= 0 marks a *background* tenant: it never
//                     accrues credit and only wins when no positive-
//                     weight tenant is requesting.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace arbiterq::serve {

enum class ArbiterKind {
  kFifo = 0,
  kRoundRobin = 1,
  kMatrix = 2,
  kWeightedCredit = 3,
};

/// Stable name ("fifo", "round_robin", "matrix", "weighted_credit").
std::string arbiter_kind_name(ArbiterKind kind);
/// Inverse of arbiter_kind_name, also accepting the short forms "rr"
/// and "wc"; throws std::invalid_argument on anything else.
ArbiterKind arbiter_kind_from_string(const std::string& name);

/// grant() slot value for a tenant with nothing pending.
inline constexpr std::uint64_t kNoRequest = ~std::uint64_t{0};

struct ArbiterConfig {
  ArbiterKind kind = ArbiterKind::kFifo;
  /// Per-tenant weights (weighted_credit only). Tenants beyond the
  /// vector default to 1.0; a weight <= 0 marks a background tenant.
  std::vector<double> weights;
};

class Arbiter {
 public:
  virtual ~Arbiter() = default;

  virtual ArbiterKind kind() const noexcept = 0;
  virtual std::size_t num_tenants() const noexcept = 0;

  /// Pick the next tenant. `head_seq[t]` is tenant t's head-of-line
  /// push sequence, or kNoRequest; `n` must equal num_tenants() and at
  /// least one slot must be a request. Not thread-safe (caller holds
  /// the queue lock).
  virtual std::size_t grant(const std::uint64_t* head_seq,
                            std::size_t n) = 0;

  /// Factory (the Orion create_arbiter shape). Throws on
  /// num_tenants == 0.
  static std::unique_ptr<Arbiter> create(const ArbiterConfig& config,
                                         std::size_t num_tenants);
};

}  // namespace arbiterq::serve
