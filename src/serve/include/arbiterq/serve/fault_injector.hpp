#pragma once
// Deterministic fault injection for the fleet serving runtime. Faults
// are *pure functions* of (seed, job id, qpu, attempt) — never of
// wall-clock or thread interleaving — so a faulted serving run is
// reproducible bit-for-bit: two runs with the same seed see the same
// QPU dropouts, the same transient failures and the same latency
// spikes, whatever the workers' real-time schedule was.
//
// Three fault classes:
//  * QPU dropout — permanent. A dropout event (qpu, at_job) means the
//    device stops answering for every execution belonging to a job id
//    >= at_job. Events come from an explicit script and/or are drawn
//    once per QPU at construction (probability mode).
//  * Transient execution failure — per (job, qpu, attempt) Bernoulli;
//    the batch survives and the retry policy re-routes it.
//  * Latency spike — per (job, qpu, attempt) Bernoulli; the execution
//    succeeds but its modeled hardware time is multiplied, which is
//    what pushes deadline-bounded jobs over their budget.
//
// Membership timeline: the runtime routes new jobs around a dead QPU
// only once the failure has been *detected*. Detection is modeled in
// job-id time — `detection_lag_jobs` admissions after the dropout — so
// the routing epoch of job j, routing_epoch(j), is also a pure
// function of j. Jobs admitted inside the detection window still get
// routed to the dying device and are rescued by the retry path; that
// window is exactly what the acceptance test's retry counters measure.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::serve {

/// Permanent QPU loss: executions for jobs >= at_job fail on `qpu`.
struct DropoutEvent {
  int qpu = 0;
  std::uint64_t at_job = 0;
};

struct FaultConfig {
  /// Per-(job, qpu, attempt) probability of a transient execution
  /// failure (the batch is re-routed and retried).
  double transient_probability = 0.0;
  /// Per-(job, qpu, attempt) probability of a latency spike.
  double latency_spike_probability = 0.0;
  /// Modeled-time multiplier applied when a spike fires.
  double latency_spike_multiplier = 8.0;
  /// Probability that a QPU drops out somewhere inside the first
  /// `dropout_horizon_jobs` admissions (drawn once per QPU at
  /// construction); scripted `dropouts` ride on top.
  double dropout_probability = 0.0;
  std::uint64_t dropout_horizon_jobs = 256;
  /// Scripted permanent dropouts.
  std::vector<DropoutEvent> dropouts;
  /// Admissions between a dropout and the router learning about it.
  std::uint64_t detection_lag_jobs = 4;
  std::uint64_t seed = 2026;
};

class FaultInjector {
 public:
  /// `fleet_size` bounds the qpu indices; probability-mode dropouts are
  /// drawn here, once, from config.seed.
  FaultInjector(std::size_t fleet_size, FaultConfig config);

  const FaultConfig& config() const noexcept { return config_; }
  /// All dropout events (scripted + drawn), sorted by at_job.
  const std::vector<DropoutEvent>& dropouts() const noexcept {
    return dropouts_;
  }

  /// Permanent death: true when `job` >= the QPU's dropout threshold.
  bool dropped(int qpu, std::uint64_t job) const;
  /// Transient execution failure for this (job, qpu, attempt).
  bool transient_failure(std::uint64_t job, int qpu, int attempt) const;
  /// Modeled-time multiplier (1.0, or the spike multiplier).
  double latency_multiplier(std::uint64_t job, int qpu, int attempt) const;

  /// Routing epoch of job j: how many dropouts the router has detected
  /// by admission j (at_job + detection_lag_jobs <= j). Monotone in j.
  std::size_t routing_epoch(std::uint64_t job) const;
  /// QPUs the router considers alive at `epoch` (fleet minus the first
  /// `epoch` dropouts), ascending.
  std::vector<int> alive_at_epoch(std::size_t epoch) const;
  std::size_t max_epoch() const noexcept { return dropouts_.size(); }

  /// Parse a CLI fault spec: comma-separated directives
  ///   kill:<qpu>@<job>   scripted dropout
  ///   drop:<p>[@<horizon>]  probability-mode dropouts
  ///   transient:<p>      transient failure probability
  ///   spike:<p>x<mult>   latency spikes
  ///   lag:<jobs>         detection lag
  ///   seed:<n>
  /// e.g. "kill:3@40,transient:0.05,spike:0.1x8". Throws
  /// std::invalid_argument on malformed specs.
  static FaultConfig parse(std::string_view spec);

 private:
  math::Rng decision_rng(std::string_view stream, std::uint64_t job,
                         int qpu, int attempt) const;

  std::size_t fleet_size_;
  FaultConfig config_;
  std::vector<DropoutEvent> dropouts_;  ///< sorted by at_job
  math::Rng root_;
};

}  // namespace arbiterq::serve
