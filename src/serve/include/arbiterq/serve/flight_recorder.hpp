#pragma once
// Flight recorder for the serving runtime: a bounded ring of full
// per-job event sequences, captured only for jobs that ended badly —
// dropped at admission, deadline-missed, or retry-exhausted. A healthy
// job costs nothing beyond the per-slot event vectors it would have
// discarded; a failed one leaves a complete postmortem: every route
// choice, fault decision, backoff amount, retry target, and the final
// disposition, reconstructible without re-running the workload.
//
// Determinism: the record stores only *modeled* quantities — virtual
// timestamps, seeded fault/backoff outcomes, slot indices — so the
// JSONL dump of a seeded run is byte-identical across runs and thread
// schedules for the admitted set (admission rejects additionally record
// the queue depth that caused them, which is real-time state; their
// event sequence is still just the route decision).
//
// The ring is mutex-guarded and drops the *oldest* record when full;
// total_recorded/dropped expose the loss so a postmortem knows whether
// it is looking at the whole story.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace arbiterq::serve {

enum class FlightEventKind {
  kRoute,             ///< torus chosen at submit (value = torus)
  kReject,            ///< admission refused (value = queue depth seen)
  kExecute,           ///< slot executed ok (value = exec virtual us)
  kDropoutFault,      ///< slot hit a dead QPU
  kTransientFault,    ///< slot hit an injected transient failure
  kLatencySpike,      ///< slot executed under a spike (value = multiplier)
  kBackoff,           ///< retry backoff charged (value = backoff us)
  kReroute,           ///< slot re-routed (value = new target QPU)
  kExpire,            ///< slot crossed the modeled deadline
  kRetriesExhausted,  ///< slot failed with no retries left
  kQuotaReject,       ///< tenant max_in_flight quota hit (value = in flight)
  kThrottle,          ///< tenant admission credits exhausted (value = tokens)
};

std::string flight_event_kind_name(FlightEventKind kind);

/// One step of a job's life. `virtual_us` is the slot's modeled chain
/// time when the event fired (0 for submit-time events); `value` is the
/// kind-specific payload documented on FlightEventKind.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kRoute;
  int slot = -1;  ///< -1 = whole-job event (route/reject)
  int attempt = 0;
  int qpu = -1;
  double virtual_us = 0.0;
  double value = 0.0;
};

/// Full postmortem for one failed job.
struct FlightRecord {
  std::uint64_t job = 0;
  std::string tenant;
  std::string slo_class;
  std::string status;  ///< job_status_name of the final disposition
  std::size_t epoch = 0;
  std::size_t torus = 0;
  int shots = 0;
  int retries = 0;
  double virtual_latency_us = 0.0;
  std::vector<FlightEvent> events;  ///< slot-major, per-slot in order
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one record, evicting the oldest when the ring is full.
  /// Thread-safe.
  void record(FlightRecord rec);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  /// Records accepted over the recorder's lifetime (>= size()).
  std::size_t total_recorded() const;
  /// Records evicted to make room (total_recorded - size).
  std::size_t dropped() const;

  /// Resident records, oldest first.
  std::vector<FlightRecord> snapshot() const;

  /// One {"type":"flight",...} line per resident record, sorted by job
  /// id (completion order is schedule-dependent; the sort makes the
  /// dump of a seeded run byte-identical whenever the ring held every
  /// record — size the capacity for the workload when reproducibility
  /// matters, exactly like the admission queue). Events are emitted as
  /// parallel arrays (ev_kind/ev_slot/ev_attempt/ev_qpu/ev_vus/
  /// ev_value) so each record stays one flat JSONL line.
  std::string to_jsonl() const;
  /// to_jsonl() to a file; throws on I/O failure.
  void write_jsonl(const std::string& path) const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;  ///< oldest first
  std::size_t total_ = 0;
};

}  // namespace arbiterq::serve
