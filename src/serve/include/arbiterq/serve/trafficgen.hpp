#pragma once
// Open-loop traffic generator for the multi-tenant serving runtime.
//
// The generator produces a merged, time-ordered stream of JobSpecs for
// a mix of tenants, each with its own arrival rate, SLO class, shot
// budget, deadline, and quota profile. Arrivals are nonhomogeneous
// Poisson, realized by thinning: each tenant draws exponential
// inter-arrival candidates at its peak rate from a seeded split stream
// and accepts a candidate with probability lambda(t)/lambda_max, where
// lambda(t) follows the configured pattern:
//
//   steady      — constant rate;
//   diurnal     — sinusoidal ramp (period/amplitude), modeling the
//                 day/night load swing of a shared fleet;
//   bursty      — square-wave duty cycle: short windows at
//                 burst_multiplier x rate over a near-idle floor;
//   adversarial — steady per-tenant, except tenants with a flood
//                 profile multiply their rate by flood_multiplier
//                 inside [flood_from_s, flood_until_s) — the "noisy
//                 neighbor" a fairness-aware arbiter must contain.
//
// Determinism: every candidate, accept decision, feature vector, and
// label comes from Rng(seed).split("traffic").split(tenant index), so
// the full generated sequence — arrival stamps included — is a pure
// function of (config, seed). Jobs carry the arrival stamp in
// JobSpec::arrival_us; submitted in order to a ServingRuntime they pin
// the modeled admission clock, which makes the runtime's quota and
// arbitration decisions replay bit-identically (see ServeConfig).
//
// Streams never interleave across tenants: the merge picks the tenant
// with the earliest pending arrival (ties break toward the lower
// tenant index), so inserting or removing one tenant leaves every
// other tenant's sequence untouched.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arbiterq/math/rng.hpp"
#include "arbiterq/monitor/slo.hpp"
#include "arbiterq/serve/runtime.hpp"

namespace arbiterq::serve {

/// One tenant's workload shape. Quota fields mirror TenantSpec so a
/// profile can be projected straight into ServeConfig::tenants via
/// TrafficGenerator::tenant_specs().
struct TenantProfile {
  std::string name;
  double weight = 1.0;  ///< arbiter share (see TenantSpec::weight)
  monitor::SloClass slo_class = monitor::SloClass::kBestEffort;
  /// Mean arrival rate (jobs per modeled second) outside any
  /// flood/burst modulation. Must be > 0.
  double rate_per_s = 1.0;
  int shots = 0;             ///< per-job shots; <= 0 uses runtime default
  double deadline_us = -1.0; ///< per-job deadline; < 0 uses runtime default
  std::size_t max_in_flight = 0;  ///< quota; 0 = unlimited
  double admit_rate_per_s = 0.0;  ///< credit refill; <= 0 = unthrottled
  double admit_burst = 1.0;       ///< credit bucket depth
  /// Adversarial pattern only: rate multiplier inside the flood window.
  double flood_multiplier = 1.0;
  double flood_from_s = 0.0;
  double flood_until_s = 0.0;
};

enum class TrafficPattern { kSteady = 0, kDiurnal = 1, kBursty = 2,
                            kAdversarial = 3 };

std::string traffic_pattern_name(TrafficPattern pattern);
/// Accepts the canonical names; throws std::invalid_argument otherwise.
TrafficPattern traffic_pattern_from_string(const std::string& name);

struct TrafficConfig {
  std::vector<TenantProfile> tenants;
  TrafficPattern pattern = TrafficPattern::kSteady;
  double duration_s = 1.0;  ///< modeled horizon; arrivals beyond it stop
  std::uint64_t seed = 1;
  std::size_t feature_dim = 4;  ///< angles drawn uniform in [0, pi)
  /// Diurnal shape: lambda(t) = rate * (1 + A sin(2 pi t / period)).
  double diurnal_period_s = 0.5;
  double diurnal_amplitude = 0.8;  ///< A in [0, 1)
  /// Bursty shape: the first `duty` fraction of each cycle runs at
  /// burst_multiplier x rate, the rest at burst_idle_multiplier x rate.
  double burst_cycle_s = 0.2;
  double burst_duty = 0.25;
  double burst_multiplier = 4.0;
  double burst_idle_multiplier = 0.1;
};

/// One generated arrival: the tenant index into TrafficConfig::tenants
/// and a fully-populated JobSpec (arrival_us stamped).
struct GeneratedJob {
  double arrival_us = 0.0;
  std::size_t tenant = 0;
  JobSpec spec;
};

class TrafficGenerator {
 public:
  /// Throws std::invalid_argument on an empty mix, non-positive rates
  /// or duration, or out-of-range shape parameters.
  explicit TrafficGenerator(TrafficConfig config);

  const TrafficConfig& config() const noexcept { return config_; }

  /// Next arrival in global time order, or nullopt once every tenant's
  /// stream has passed the horizon.
  std::optional<GeneratedJob> next();

  /// Drain the remaining stream (the full stream when freshly
  /// constructed or reset).
  std::vector<GeneratedJob> generate_all();

  /// Rewind to the start of the (identical) stream.
  void reset();

  /// Project the mix into ServeConfig::tenants rows (name, weight,
  /// quota fields), in tenant order.
  std::vector<TenantSpec> tenant_specs() const;

 private:
  struct TenantState {
    math::Rng rng;
    double next_s = 0.0;   ///< accepted arrival pending emission
    bool exhausted = false;

    explicit TenantState(math::Rng r) : rng(r) {}
  };

  /// lambda(t) for tenant `i` under the configured pattern.
  double rate_at(std::size_t i, double t_s) const;
  /// Peak lambda for tenant `i` (the thinning envelope).
  double peak_rate(std::size_t i) const;
  /// Advance tenant `i` to its next accepted arrival or exhaust it.
  void advance(std::size_t i);

  TrafficConfig config_;
  std::vector<TenantState> streams_;
};

/// Parse a tenant-mix string: tenants separated by ';', each a name
/// followed by comma-separated key=value fields —
//
///   "int0,class=latency_bound,rate=20,weight=8,shots=128,
///    deadline_us=5000,max_in_flight=4,admit_rate=25,admit_burst=8,
///    flood=5,flood_from=0.2,flood_until=0.8"
///
/// `class` accepts latency_bound|throughput_bound|best_effort (or the
/// shorts latency|throughput|best). Throws std::invalid_argument on an
/// unknown key, malformed field, or duplicate tenant name.
std::vector<TenantProfile> parse_tenant_profiles(const std::string& spec);

/// Parse a traffic-shape string: "<pattern>[,key=value...]" with keys
/// duration, seed, dim, period, amplitude, cycle, duty, mult, idle —
/// e.g. "diurnal,duration=2,seed=7,period=0.5,amplitude=0.8". The
/// returned config has an empty tenant mix; fill it from
/// parse_tenant_profiles or adversarial_mix.
TrafficConfig parse_traffic_spec(const std::string& spec);

/// Canned adversarial scenario scaled to a fleet that completes
/// `fleet_jobs_per_s` jobs per modeled second: one best-effort "flood"
/// tenant at 0.6x capacity that multiplies 5x mid-run, two
/// throughput-bound bulk tenants at 0.5x capacity each, and four light
/// latency-bound interactive tenants at 0.02x capacity each. Under
/// FIFO the flood+bulk backlog starves the interactive tenants; a
/// fairness-aware arbiter must not.
TrafficConfig adversarial_mix(std::uint64_t seed, double duration_s,
                              double fleet_jobs_per_s);

}  // namespace arbiterq::serve
