#pragma once
// Bounded single-producer/single-consumer mailbox ring, the message lane
// between the serving front-end and its shards (and between shards). The
// shape follows the message_buffer/virtual_channel discipline of large
// manycore simulators: a fixed-capacity ring indexed by two cache-line-
// separated monotone counters, so in steady state the producer and the
// consumer touch disjoint lines and never block each other.
//
// Contract: exactly one thread calls try_push and exactly one thread
// calls try_pop at any moment. The serving runtime upholds this either
// structurally (the admission front-end is serialized by the routing
// lock; every shard has one dispatcher) or with a producer-side ticket
// mutex local to the sending shard (inter-shard reroute lanes, where any
// of the source shard's workers may send — see shard.hpp). Cross-thread
// visibility of the payload rides the release store of the counter: the
// consumer's acquire load of tail_ observes the fully-written slot, the
// producer's acquire load of head_ observes that the slot was vacated.
//
// try_push/try_pop never wait: a full lane is backpressure the caller
// must handle (reject the job, or spin-yield for guaranteed-delivery
// retry traffic that the consumer is always draining).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace arbiterq::serve {

template <typename T>
class Mailbox {
 public:
  /// `capacity` payloads may be resident at once (one ring slot is kept
  /// vacant to distinguish full from empty).
  explicit Mailbox(std::size_t capacity)
      : ring_(capacity + 1), slots_(capacity + 1) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Producer side. False when the lane is full (the value is untouched
  /// and stays with the caller).
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;
    ring_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }
  bool try_push(T&& value) { return try_push(value); }

  /// Consumer side. False when the lane is empty.
  bool try_pop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(ring_[head]);
    head_.store(advance(head), std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Resident payloads; exact only from the producer or consumer thread,
  /// a point-in-time estimate elsewhere.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : tail + slots_ - head;
  }

  std::size_t capacity() const { return slots_ - 1; }

 private:
  std::size_t advance(std::size_t i) const {
    const std::size_t next = i + 1;
    return next == slots_ ? 0 : next;
  }

  std::vector<T> ring_;
  std::size_t slots_;  ///< ring slot count (capacity + 1)
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

/// Wakeup latch for a mailbox consumer: the dispatcher parks on the
/// condition variable only after advertising that it sleeps, and every
/// producer that observes the advertisement rings the bell. The timed
/// wait is a backstop against the unavoidable advertise/park window, not
/// the signalling mechanism, so lanes stay latency-bounded without
/// producers taking a lock on the fast path (one relaxed load when the
/// consumer is awake).
class Doorbell {
 public:
  /// Producer side: wake the consumer if it advertised sleep.
  void ring() {
    if (!sleeping_.load(std::memory_order_relaxed)) return;
    if (sleeping_.exchange(false, std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_one();
    }
  }

  /// Consumer side: park for up to `max_wait`; returns after a ring, the
  /// timeout, or spuriously (callers re-scan their lanes regardless).
  /// True when a producer rang (it cleared the sleep advertisement);
  /// false for a timeout/spurious return — the backstop path, counted by
  /// the shard dispatcher as serve.shard.doorbell_backstops.
  template <typename Rep, typename Period>
  bool wait(const std::chrono::duration<Rep, Period>& max_wait) {
    std::unique_lock<std::mutex> lock(mu_);
    sleeping_.store(true, std::memory_order_release);
    cv_.wait_for(lock, max_wait);
    // ring() claims the advertisement with an exchange; finding it
    // already cleared means a producer signalled us.
    return !sleeping_.exchange(false, std::memory_order_acq_rel);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> sleeping_{false};
};

}  // namespace arbiterq::serve
