#pragma once
// ServingRuntime: the long-running fleet serving loop layered on the
// torus scheduler. Where core::ShotOrientedScheduler answers one
// synchronous batch of tasks, the runtime admits jobs continuously,
// executes them on per-QPU worker threads, retries around failures and
// degrades gracefully when QPUs drop out of the fleet.
//
// Lifecycle: construct (workers start unless config.autostart is
// false) -> submit() jobs -> drain() (stops admissions, finishes every
// admitted job, joins the workers) -> results()/report().
//
// Data path per job:
//  1. submit() routes the job to a torus — weighted round-robin over
//     the tori of the job's *routing-epoch* partition, proportional to
//     torus throughput — and splits its shot budget across the torus
//     members by shot rate (exactly the §IV split), one ShotBatch per
//     member.
//  2. The batches are admitted atomically into the bounded JobQueue
//     (all-or-nothing backpressure: a saturated queue rejects the whole
//     job) and each QPU worker pops its own lane.
//  3. A worker executes a batch through the QnnExecutor / ExecPlan path
//     (sampled_probability), or hits an injected fault: a transient
//     failure or a dead QPU re-routes the batch to another torus member
//     with exponential backoff + deterministic jitter, excluding every
//     QPU that already failed it. Dead-QPU detection feeds the
//     FleetHealthMonitor and triggers a torus repartition of the
//     surviving fleet (core::repartition_alive) for later jobs.
//  4. The last finishing batch folds the job's slot results *in slot
//     order* (shot-weighted average — the §IV noise-compensation step),
//     computes the loss, and records latency histograms.
//
// Determinism: every execution RNG, fault decision, re-route target and
// backoff amount is a pure function of (seed, job id, slot, attempt),
// and per-job aggregation folds fixed slots in index order — so per-job
// results are bit-identical across runs and thread schedules. Two
// clocks exist: *modeled* hardware time (shots x shot latency x spike
// multiplier + backoff), which is deterministic and is what deadlines
// meter, and wall-clock time, which only feeds the latency histograms.
// Admission rejects are the one real-time effect: they depend on live
// queue occupancy, so determinism is guaranteed for the admitted
// sequence (size the queue for the workload when reproducibility
// matters).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arbiterq/core/torus.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/monitor/health.hpp"
#include "arbiterq/monitor/slo.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/serve/arbiter.hpp"
#include "arbiterq/serve/fault_injector.hpp"
#include "arbiterq/serve/flight_recorder.hpp"
#include "arbiterq/serve/job_queue.hpp"
#include "arbiterq/serve/shard.hpp"
#include "arbiterq/telemetry/timeseries.hpp"

namespace arbiterq::serve {

/// One tenant's QoS contract. Tenants are identified by name
/// (JobSpec::tenant); jobs naming a tenant not in the table — or naming
/// none — fall into an implicit catch-all slot appended after the
/// configured rows. Both quota mechanisms meter on the *modeled*
/// admission clock, so every accept/reject decision is a pure function
/// of the arrival sequence (bit-identical across runs and shard counts).
struct TenantSpec {
  std::string name;
  /// Weighted-credit arbiter share; <= 0 marks a background tenant
  /// (served only when no positive-weight tenant is waiting on a lane).
  double weight = 1.0;
  /// Max jobs concurrently in flight on the modeled clock (a job is in
  /// flight from its admission stamp until stamp + modeled serial
  /// execution cost); a submit over the cap is rejected. 0 = unlimited.
  std::size_t max_in_flight = 0;
  /// Admission-credit token bucket: tokens refill at this rate per
  /// *modeled* second up to admit_burst; each admitted job costs one
  /// token and a submit without a whole token is rejected (throttled).
  /// 0 = unlimited.
  double admit_rate_per_s = 0.0;
  double admit_burst = 1.0;
};

struct ServeConfig {
  int shots_per_job = 256;
  int trajectories = 16;
  qnn::LossKind loss = qnn::LossKind::kMse;
  /// Admission bound on resident shot-batches across the fleet.
  std::size_t queue_capacity = 1024;
  /// Re-routes allowed per shot-batch before it counts as failed.
  int max_retries = 4;
  /// Default per-job deadline on *modeled* hardware time (us); 0 = no
  /// deadline. JobSpec::deadline_us >= 0 overrides.
  double deadline_us = 0.0;
  /// Exponential backoff for retried batches: attempt k sleeps
  /// base * 2^k * jitter (jitter uniform in [0.5, 1.5), seeded), capped.
  /// The amount is charged to the batch's modeled time and slept for
  /// real (capped by backoff_max_us) on the worker.
  double backoff_base_us = 50.0;
  double backoff_max_us = 5000.0;
  /// Tori per partition; 0 = core::default_torus_count of the
  /// surviving fleet.
  int num_tori = 0;
  std::uint64_t seed = 99;
  /// Spawn the workers in the constructor. Disable to stage a
  /// backpressure scenario (submit before start()).
  bool autostart = true;
  /// Per-job causal tracing: 0 = off, 1 = trace every job, N = trace
  /// every Nth job (id % N == 0). A traced job emits a stitched span
  /// tree (route decision, queue waits, per-slot executions, backoffs,
  /// fault events) into TraceBuffer::global(), flow-keyed by job id so
  /// chrome_trace_json renders one lane per job. Sampling keeps the
  /// non-traced path to a handful of branches.
  int trace_sample_every = 0;
  /// Cadence, in *modeled* (virtual) microseconds of fleet execution
  /// time, at which serve.queue.depth.sampled and the per-QPU
  /// serve.qpu.inflight.q<i> gauges are refreshed. 0 disables sampling.
  double gauge_cadence_us = 1000.0;
  /// Shards the fleet is partitioned into (clamped to the fleet size).
  /// Shard s owns the contiguous QPU block [s*n/S, (s+1)*n/S) with its
  /// own bounded JobQueue, worker set and mailbox lanes; queue_capacity
  /// is divided evenly across the shards. Routing stays global (the
  /// submit-side torus pick and shot split are shard-agnostic), so the
  /// admitted jobs' results are bit-identical across shard counts.
  int num_shards = 1;
  /// Worker threads per shard; each worker owns the shard-local lanes
  /// congruent to its index (lane l -> worker l % W), preserving the
  /// one-writer-per-QPU accounting invariant. 0 = one worker per QPU,
  /// the pre-sharding behavior; set a small value for simulated fleets
  /// far wider than the host's core count.
  int workers_per_shard = 0;
  /// Skip the state-vector execution: the slot probability becomes a
  /// seeded pure function of (seed, job, slot, attempt) instead of a
  /// QnnExecutor sample, while routing, modeled time, faults, retries
  /// and deadlines all stay real. For admission-scale benches where the
  /// fleet is far wider than any interesting circuit workload.
  bool synthetic_execution = false;
  /// Optional time-series sink (non-owning; must outlive the runtime).
  /// When set, the runtime records event series on a *modeled admission
  /// clock* — a virtual timeline advanced under the routing lock by each
  /// admitted job's modeled execution cost divided by the routing
  /// epoch's alive fleet (an idealized perfectly-parallel fleet clock):
  /// serve.ts.admitted(.shard<k>, .tenant.<t>) at admission time,
  /// serve.ts.completed(.shard<k>) and the
  /// serve.ts.virtual_latency_us histogram at admission + modeled
  /// latency. Every timestamp is a pure function of the admitted job
  /// sequence, so the windowed series is bit-identical across runs and
  /// thread schedules (store timestamps use the store's own clock
  /// domain — size window_us in modeled microseconds).
  telemetry::TimeSeriesStore* series = nullptr;
  // ---- Multi-tenant QoS -----------------------------------------------
  /// Dequeue arbiter deciding, per lane, which tenant's batch a worker
  /// runs next (see arbiter.hpp). kFifo reproduces the pre-tenant
  /// single-FIFO order exactly and is the default.
  ArbiterKind arbiter = ArbiterKind::kFifo;
  /// Tenant table. Empty = single anonymous tenant, all QoS machinery
  /// off (the pre-tenant behavior). Non-empty: jobs resolve by
  /// JobSpec::tenant name, unknown/empty names land in an implicit
  /// catch-all slot named "other"; quotas, weighted-credit shares and
  /// per-tenant telemetry key off the resolved slot.
  std::vector<TenantSpec> tenants;
  /// Derive each job's queue priority from its SLO class instead of
  /// JobSpec::priority: latency_bound -> kHigh, throughput_bound ->
  /// kNormal, best_effort -> kLow.
  bool class_lanes = false;
  /// Model queue wait: per-QPU modeled lane clocks make a batch start
  /// at max(lane clock, job ready time), so virtual_latency_us becomes
  /// wait-inclusive (what the fairness bench measures) instead of
  /// execution-chain-only. Lane clocks advance in dequeue order, which
  /// is deterministic in saturated-backlog replays (submit everything
  /// with autostart=false, then start()+drain()) but schedule-dependent
  /// when workers race live admission — leave this off when the
  /// execution-chain latency contract matters.
  bool model_queue_wait = false;
};

enum class JobStatus { kPending, kOk, kRejected, kExpired, kFailed };

std::string job_status_name(JobStatus status);

struct JobSpec {
  std::vector<double> features;  ///< encoded, radians
  int label = 0;
  JobPriority priority = JobPriority::kNormal;
  /// Modeled-time deadline override; < 0 uses ServeConfig::deadline_us.
  double deadline_us = -1.0;
  /// Free-form tenant label for traces, flight records, and per-tenant
  /// counters. Sanitized (safe_label) before reaching any exporter.
  /// With a ServeConfig::tenants table, also the quota/arbiter slot
  /// this job resolves to.
  std::string tenant;
  /// Service class the attached SloEngine judges this job under.
  monitor::SloClass slo_class = monitor::SloClass::kBestEffort;
  /// Per-job shot-budget override; <= 0 uses ServeConfig::shots_per_job.
  int shots = 0;
  /// Open-loop arrival stamp on the modeled admission clock (us). >= 0
  /// advances the clock to max(clock, arrival_us) instead of the
  /// cost-based advance — the TrafficGenerator drives the runtime with
  /// these, making quota decisions and the recorded series pure
  /// functions of the generated arrival sequence. < 0 = closed-loop
  /// submit (the pre-tenant behavior).
  double arrival_us = -1.0;
};

struct JobResult {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kPending;
  /// Shot-weighted torus-averaged P(readout = 1) over succeeded slots.
  double probability = 0.5;
  double loss = 0.0;
  int retries = 0;       ///< re-routes across all of the job's batches
  int batches = 0;       ///< shot-batch slots the job was split into
  /// Modeled hardware latency: max over the job's batch chains (the
  /// batches run on different QPUs in parallel).
  double virtual_latency_us = 0.0;
  /// Measured submit-to-finalize wall time (not deterministic).
  double wall_latency_us = 0.0;
  std::size_t torus = 0;  ///< torus within the routing epoch's partition
  std::size_t epoch = 0;  ///< membership epoch the job was routed under
  std::string tenant;     ///< JobSpec::tenant, verbatim
  monitor::SloClass slo_class = monitor::SloClass::kBestEffort;
  double admit_virtual_us = 0.0;  ///< modeled admission-clock stamp
};

/// Per-tenant accounting (ServingReport::tenants; populated only when
/// ServeConfig::tenants is non-empty). Latency percentiles are over the
/// job-level virtual latency of this tenant's non-rejected jobs.
struct TenantReport {
  std::string name;
  double weight = 1.0;
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;       ///< status == kOk
  std::size_t rejected = 0;        ///< all rejects (capacity + quota)
  std::size_t quota_rejected = 0;  ///< max_in_flight quota rejects
  std::size_t throttled = 0;       ///< admission-credit rejects
  double p50_virtual_latency_us = 0.0;
  double p99_virtual_latency_us = 0.0;
};

/// Aggregate accounting after drain().
struct ServingReport {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;  ///< status == kOk
  std::size_t expired = 0;
  std::size_t failed = 0;
  std::uint64_t retries = 0;
  std::size_t dropouts_detected = 0;
  std::size_t repartitions = 0;
  std::vector<double> qpu_shots;    ///< executed shots per QPU
  std::vector<double> qpu_busy_us;  ///< modeled busy time per QPU
  double wall_seconds = 0.0;        ///< first submit -> drain complete
  double throughput_jobs_per_s = 0.0;
  /// Per-shard queue/mailbox accounting (one row per shard).
  std::vector<ShardStats> shards;
  /// Per-tenant accounting (configured tenants then the catch-all slot;
  /// empty when no tenant table is configured).
  std::vector<TenantReport> tenants;
};

class ServingRuntime {
 public:
  /// `executors` must outlive the runtime. `weights[i]` is the model
  /// QPU i deploys; `behavioral` are the calibration-time behavioral
  /// vectors (both are what degradation-time repartitions rebuild
  /// from). `faults`/`monitor` are optional, non-owning, and must
  /// outlive the runtime.
  ServingRuntime(const std::vector<qnn::QnnExecutor>& executors,
                 std::vector<std::vector<double>> weights,
                 std::vector<core::BehavioralVector> behavioral,
                 ServeConfig config,
                 const FaultInjector* faults = nullptr,
                 monitor::FleetHealthMonitor* monitor = nullptr,
                 FlightRecorder* flight = nullptr,
                 monitor::SloEngine* slo = nullptr);
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Spawn the per-QPU workers (idempotent; no-op after drain()).
  void start();
  /// Route + admit one job. Returns the job id, or std::nullopt when
  /// admission control rejected it (the rejection still occupies a
  /// results() row). Thread-safe.
  std::optional<std::uint64_t> submit(const JobSpec& spec);
  /// Stop admissions, finish every admitted job, join the workers.
  /// Idempotent.
  void drain();

  const ServeConfig& config() const noexcept { return config_; }
  std::size_t fleet_size() const noexcept { return executors_.size(); }
  /// Jobs in submission order (rejected ones included); call after
  /// drain().
  std::vector<JobResult> results() const;
  ServingReport report() const;
  /// Membership epochs materialized so far (>= 1; epoch 0 is the full
  /// fleet).
  std::size_t epochs() const;
  /// Torus partition of `epoch`; throws when that epoch was never
  /// materialized.
  core::TorusPartition partition(std::size_t epoch) const;
  /// Queue introspection (live): resident batches across every shard.
  std::size_t queue_depth() const;
  std::size_t num_shards() const noexcept { return shards_.size(); }
  /// Shard owning QPU q — a lookup over the blocks the constructor
  /// actually built, so it is exact for every fleet/shard combination
  /// (a closed-form floor expression disagrees with the constructed
  /// block boundaries whenever S does not divide n).
  std::size_t shard_of(int qpu) const noexcept {
    return shard_by_qpu_[static_cast<std::size_t>(qpu)];
  }
  /// Per-shard accounting snapshot (live).
  std::vector<ShardStats> shard_stats() const;
  /// Resolved tenant table: the configured rows plus the implicit
  /// catch-all slot; empty when no tenants were configured.
  const std::vector<TenantSpec>& tenants() const noexcept {
    return tenants_;
  }
  /// Live resident queue depth per tenant slot, summed across shards
  /// (empty when no tenants were configured).
  std::vector<std::size_t> tenant_queue_depths() const;
  /// Publish the per-shard accounting into the global MetricsRegistry as
  /// serve.shard<k>.* counters (delta-fed, so a sampling Collector folds
  /// them into per-window rates) plus a queue-depth gauge per shard.
  /// Intended as a Collector pre_sample hook; safe to call any time.
  void publish_shard_metrics();

 private:
  /// Per-batch slot: written by at most one worker at a time (batch
  /// ownership hands over through the queue), read by the finalizer
  /// after the pending count hits zero.
  struct BatchSlot {
    enum class Outcome { kPending, kOk, kFailed, kExpired };
    Outcome outcome = Outcome::kPending;
    int qpu = -1;          ///< QPU that finished (or last failed) it
    double probability = 0.0;
    int shots = 0;
    double chain_us = 0.0;  ///< modeled time of the whole retry chain
    /// Modeled finish stamp on the lane clock (model_queue_wait only;
    /// 0 for slots that never executed — finalize falls back to the
    /// chain for those).
    double finish_us = 0.0;
    /// Flight-recorder event sequence for this slot (collected only
    /// when a recorder is attached; single-writer like the rest of the
    /// slot, published by the release decrement of `pending`).
    std::vector<FlightEvent> flight;
  };

  struct JobState {
    std::uint64_t id = 0;
    std::vector<double> features;
    int label = 0;
    JobPriority priority = JobPriority::kNormal;
    double deadline_us = 0.0;  ///< resolved; 0 = none
    std::size_t epoch = 0;
    std::size_t torus = 0;
    /// Modeled admission-clock stamp (see ServeConfig::series).
    double admit_virtual_us = 0.0;
    std::size_t home_shard = 0;  ///< shard of the split's first member
    JobStatus status = JobStatus::kPending;
    std::vector<BatchSlot> slots;
    std::atomic<int> pending{0};
    std::atomic<int> retries{0};
    double submit_wall_us = 0.0;
    std::string tenant;
    std::uint32_t tenant_id = 0;  ///< resolved slot (0 when no table)
    int shots = 0;                ///< resolved per-job shot budget
    monitor::SloClass slo_class = monitor::SloClass::kBestEffort;
    /// Tracing state, fixed at submit() before any batch is enqueued.
    bool traced = false;
    std::uint64_t root_span = 0;   ///< pre-allocated root span id
    std::uint64_t submit_ns = 0;   ///< trace clock at submit
    std::string flow_label;        ///< sanitized flow-lane label
    /// Submit-time flight events (route decision / rejection); written
    /// before admission, read at finalize.
    std::vector<FlightEvent> route_events;
    // Finalize-time outputs (published by the release decrement of
    // `pending`, read after drain()).
    double probability = 0.5;
    double loss = 0.0;
    double virtual_latency_us = 0.0;
    double wall_latency_us = 0.0;
  };

  /// Worker `worker` of shard `shard_index`, striding the shard's local
  /// lanes with step `stride` (the shard's worker count).
  void worker_main(std::size_t shard_index, std::size_t worker,
                   std::size_t stride);
  void process_batch(int qpu, ShotBatch batch);
  /// Re-route or fail a batch after `qpu` failed it. `backoff` charges
  /// and sleeps the exponential-backoff amount (dropouts re-route
  /// immediately).
  void reroute(JobState& job, ShotBatch batch, int failed_qpu,
               bool backoff);
  void complete_slot(JobState& job);
  void finalize(JobState& job);
  /// Record a detected dropout once (counter + monitor event).
  void note_dropout(int qpu);
  /// Materialize partitions/credits up to `epoch` (routing lock held).
  void ensure_epoch_locked(std::size_t epoch);
  /// Copy of a torus's member list (takes the routing lock).
  std::vector<int> partition_members_locked_copy(std::size_t epoch,
                                                 std::size_t torus) const;
  JobState* job_ptr(std::uint64_t id);
  bool dead(int qpu, std::uint64_t job) const {
    return faults_ != nullptr && faults_->dropped(qpu, job);
  }
  /// Record one child span of a traced job's tree (caller checks
  /// job.traced). `end_ns` >= `start_ns`; both from trace_now_ns().
  void trace_child(const JobState& job, const char* name,
                   std::uint64_t start_ns, std::uint64_t end_ns) const;
  /// Close a traced job: emit the root "serve.job" span.
  void trace_root(const JobState& job) const;
  /// Append a flight event to a slot's sequence (no-op when no
  /// recorder is attached).
  void flight_note(BatchSlot& slot, FlightEventKind kind, int slot_index,
                   int attempt, int qpu, double virtual_us, double value);
  /// Assemble and store the job's flight record (only called for
  /// non-ok dispositions, and only when a recorder is attached).
  void flight_dump(const JobState& job);
  /// Advance the modeled-time gauge clock by `us` of execution time and
  /// refresh the sampled gauges when a cadence boundary is crossed.
  void advance_virtual_time(double us);

  const std::vector<qnn::QnnExecutor>& executors_;
  std::vector<std::vector<double>> weights_;
  std::vector<core::BehavioralVector> behavioral_;
  ServeConfig config_;
  const FaultInjector* faults_;
  monitor::FleetHealthMonitor* monitor_;
  FlightRecorder* flight_;
  monitor::SloEngine* slo_;
  math::Rng root_;
  /// The sharded data plane: each shard owns a private bounded queue
  /// plus the mailbox lanes feeding it (see shard.hpp). unique_ptr for
  /// stable addresses (Shard is immovable: mutexes, threads, atomics).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// QPU -> owning shard, derived from the constructed blocks (the
  /// inverse shard_of() serves from).
  std::vector<std::size_t> shard_by_qpu_;
  /// Admitted shot-batch slots not yet at a terminal outcome; drain()
  /// waits for this to hit zero before closing the shard queues.
  std::atomic<std::uint64_t> outstanding_{0};
  /// Cleared by drain(): submissions arriving after are rejected
  /// without touching any shard.
  std::atomic<bool> accepting_{true};

  // Routing state (submission order defines all of it).
  mutable std::mutex route_mu_;
  std::uint64_t next_job_ = 0;
  std::vector<core::TorusPartition> partitions_;  ///< by epoch
  std::vector<std::vector<double>> torus_rate_;   ///< by epoch
  std::vector<std::vector<double>> credit_;       ///< by epoch
  std::vector<std::size_t> epoch_alive_;          ///< members, by epoch
  double first_submit_wall_us_ = 0.0;
  /// Modeled admission clock; routing lock held. Advanced by every
  /// admitted job's modeled cost (or pinned to JobSpec::arrival_us in
  /// open-loop mode) — quota decisions and the ts series meter on it.
  double admit_clock_us_ = 0.0;
  /// Per-QPU shot latency, cached so the admission-clock advance is a
  /// plain vector walk instead of per-slot executor calls.
  std::vector<double> shot_lat_us_;

  // ---- Multi-tenant QoS state (routing lock) --------------------------
  /// Resolved tenant table: configured rows + the implicit catch-all
  /// slot. Empty = QoS off (single anonymous tenant).
  std::vector<TenantSpec> tenants_;
  std::map<std::string, std::uint32_t> tenant_ids_;  ///< name -> slot
  /// Sanitized per-tenant metric labels, index-aligned with tenants_.
  std::vector<std::string> tenant_labels_;
  /// Per-tenant quota state, metered on the modeled admission clock.
  struct TenantQos {
    double tokens = 0.0;          ///< admission credits available
    double token_stamp_us = 0.0;  ///< clock at last refill
    /// Min-heap of modeled completion stamps of in-flight jobs
    /// (max_in_flight quota only).
    std::vector<double> inflight_done_us;
    std::uint64_t quota_rejected = 0;
    std::uint64_t throttled = 0;
  };
  std::vector<TenantQos> tenant_qos_;
  /// Tenant slot for a job's tenant name (catch-all when unknown);
  /// routing lock held.
  std::uint32_t resolve_tenant_locked(const std::string& name) const;

  // Time-series handles, resolved once in the constructor (per-series
  // locking happens inside the store). Tenant series are resolved
  // lazily under the routing lock.
  telemetry::TimeSeriesStore::Series* ts_admitted_ = nullptr;
  telemetry::TimeSeriesStore::Series* ts_completed_ = nullptr;
  telemetry::TimeSeriesStore::Series* ts_latency_ = nullptr;
  std::vector<telemetry::TimeSeriesStore::Series*> ts_admitted_shard_;
  std::vector<telemetry::TimeSeriesStore::Series*> ts_completed_shard_;
  std::map<std::string, telemetry::TimeSeriesStore::Series*> ts_tenant_;
  /// Slot-indexed per-tenant series (tenant table configured): resolved
  /// once in the constructor so finalize() touches them lock-free.
  std::vector<telemetry::TimeSeriesStore::Series*> ts_tenant_admitted_;
  std::vector<telemetry::TimeSeriesStore::Series*> ts_tenant_completed_;
  std::vector<telemetry::TimeSeriesStore::Series*> ts_tenant_latency_;

  /// Last-published per-shard counter values (publish_shard_metrics
  /// feeds registry counters by delta); guarded by publish_mu_.
  std::mutex publish_mu_;
  std::vector<ShardStats> published_;

  // Job store: deque gives stable element addresses; guarded only for
  // push/index, the elements synchronize through their atomics.
  mutable std::mutex jobs_mu_;
  std::deque<JobState> jobs_;

  // Dropout bookkeeping.
  mutable std::mutex state_mu_;
  std::vector<bool> dropout_noted_;
  std::size_t dropouts_detected_ = 0;
  std::size_t repartitions_ = 0;

  // Per-QPU accounting: written only by that QPU's worker, read after
  // the workers are joined.
  std::vector<double> qpu_shots_;
  std::vector<double> qpu_busy_us_;
  /// Per-QPU modeled lane clock (model_queue_wait): the finish stamp of
  /// the last batch the lane executed. Same single-writer discipline as
  /// qpu_busy_us_.
  std::vector<double> qpu_clock_us_;

  // Virtual-time gauge sampling: workers accumulate modeled execution
  // microseconds; whichever worker crosses the next cadence boundary
  // wins the CAS and publishes the gauges.
  std::unique_ptr<std::atomic<int>[]> inflight_;  ///< per QPU
  std::atomic<std::uint64_t> virtual_us_acc_{0};
  std::atomic<std::uint64_t> gauge_next_us_{0};

  std::vector<std::thread> workers_;
  bool started_ = false;
  bool drained_ = false;
  double drain_wall_us_ = 0.0;
};

}  // namespace arbiterq::serve
