#pragma once
// Serving shard: one slice of the fleet with a private bounded JobQueue
// and worker set, fed exclusively through bounded SPSC mailbox lanes so
// shards never contend on a shared queue lock.
//
//   admission   front-end --route lock--> Mailbox<AdmitMsg> --dispatcher
//               (one producer: whoever holds the runtime's routing lock)
//   reroutes    sibling shard workers --ticket mutex--> Mailbox<ShotBatch>
//               per source shard --dispatcher (guaranteed delivery:
//               producers spin-yield on a full lane, the dispatcher is
//               always draining)
//
// Capacity is enforced *outside* the queue: the front-end reserves
// admission units against the shard's atomic counter before anything is
// mailed (all-or-nothing across the shards a job's split touches, with
// rollback), so a saturated shard rejects synchronously at submit()
// while the mailbox/dispatcher hop stays off the admission decision
// path. The reservation is released when a worker pops the batch — the
// same lifetime the unsharded queue gave its admitted_depth_ bound.
//
// The dispatcher is the queue's only mailbox-side producer: it drains
// the admission lane and every inbound reroute lane into the JobQueue,
// then parks on a Doorbell (timed backstop, see mailbox.hpp). It is
// deliberately dumb — ordering and determinism are owned by the routing
// front-end; the dispatcher just moves batches, so a dropout or
// repartition on one shard never stalls its siblings' dispatchers.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arbiterq/serve/job_queue.hpp"
#include "arbiterq/serve/mailbox.hpp"

namespace arbiterq::serve {

/// One admitted job's batches bound for a single shard (slot order
/// preserved). Capacity for every batch was reserved before the message
/// was mailed.
struct AdmitMsg {
  std::vector<ShotBatch> batches;
};

/// Point-in-time per-shard accounting, surfaced through
/// ServingReport::shards.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t first_qpu = 0;
  std::size_t num_qpus = 0;
  std::size_t capacity = 0;
  std::uint64_t admitted_batches = 0;   ///< batches dispatched into the queue
  std::uint64_t reserve_rejects = 0;    ///< failed admission reservations
  std::uint64_t cross_shard_in = 0;     ///< reroute batches received
  std::uint64_t cross_shard_out = 0;    ///< reroute batches sent to siblings
  std::uint64_t mailbox_full_spins = 0; ///< producer yields on a full lane
  std::uint64_t doorbell_wakeups = 0;   ///< dispatcher parks ended by a ring
  std::uint64_t doorbell_backstops = 0; ///< parks ended by the 200us timeout
  std::uint64_t lock_wait_ns = 0;       ///< queue-mutex contention (JobQueue)
  std::uint64_t lock_contentions = 0;
};

class Shard {
 public:
  /// Shard `index` of `num_shards`, owning the contiguous QPU block
  /// [first_qpu, first_qpu + num_qpus). `capacity` bounds the admission
  /// units resident in this shard (mailed or queued); it also sizes the
  /// admission mailbox, so a successful reservation can never meet a
  /// full admission lane. `num_tenants`/`arbiter` configure the queue's
  /// per-tenant FIFOs and per-lane dequeue arbiters (see job_queue.hpp).
  Shard(std::size_t index, std::size_t first_qpu, std::size_t num_qpus,
        std::size_t capacity, std::size_t num_shards,
        std::size_t num_tenants = 1, const ArbiterConfig& arbiter = {});
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  std::size_t index() const noexcept { return index_; }
  std::size_t first_qpu() const noexcept { return first_qpu_; }
  std::size_t num_qpus() const noexcept { return num_qpus_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool owns(int qpu) const noexcept {
    const auto q = static_cast<std::size_t>(qpu);
    return q >= first_qpu_ && q < first_qpu_ + num_qpus_;
  }

  JobQueue& queue() noexcept { return queue_; }
  const JobQueue& queue() const noexcept { return queue_; }

  /// Reserve `n` admission units; false (and nothing reserved) when the
  /// shard is saturated. Lock-free CAS on the reservation counter.
  bool try_reserve(std::size_t n);
  /// Release units previously reserved (rollback, or batch popped).
  void release(std::size_t n);

  /// Mail an admitted job's batches. Producer must be serialized by the
  /// runtime's routing lock (the lane is SPSC); capacity was reserved,
  /// so a full lane is transient (dispatcher mid-drain) and the push
  /// spin-yields instead of failing.
  void admit(AdmitMsg msg);

  /// Mail a reroute/retry batch from shard `from` to shard `to`
  /// (from != to). Serialized per source shard by `from`'s ticket
  /// mutex so the SPSC lane contract holds with many workers sending;
  /// spin-yields on a full lane (guaranteed delivery — retries of
  /// admitted work are never dropped while the runtime is live). Once
  /// `to` is abandoned the batch is dropped instead: nothing drains the
  /// lane anymore, and teardown is discarding pending work anyway.
  static void send_retry(Shard& from, Shard& to, ShotBatch batch);

  /// Teardown-without-drain mode (runtime destructor): senders
  /// targeting this shard stop spinning on full lanes and drop their
  /// batches so worker threads can be joined. Irreversible.
  void abandon() noexcept {
    abandoned_.store(true, std::memory_order_release);
  }

  /// Spawn / stop the dispatcher thread. stop_dispatch() flushes both
  /// lanes into the queue before returning so no mailed batch is ever
  /// stranded; both are idempotent.
  void start_dispatch();
  void stop_dispatch();

  /// Synchronously drain everything already mailed into the queue. The
  /// caller must ensure the dispatcher is not running — it is the only
  /// other mailbox consumer. Used by the runtime to pre-saturate the
  /// queue before the workers start, so a staged (autostart=false)
  /// replay's dequeue arbiters see the full backlog from the first pop
  /// instead of racing the dispatcher's drain.
  void flush_pending() { drain_lanes(); }

  ShardStats stats() const;

 private:
  void dispatch_main();
  /// Drain both lane kinds into the queue; true when anything moved.
  bool drain_lanes();

  const std::size_t index_;
  const std::size_t first_qpu_;
  const std::size_t num_qpus_;
  const std::size_t capacity_;

  JobQueue queue_;
  Mailbox<AdmitMsg> admission_;
  /// Inbound reroute lanes, one per source shard (self slot unused).
  std::vector<std::unique_ptr<Mailbox<ShotBatch>>> inbound_;
  Doorbell doorbell_;
  /// Ticket mutex serializing this shard's *outgoing* reroute sends.
  std::mutex out_mu_;

  std::atomic<std::size_t> reserved_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> abandoned_{false};
  std::thread dispatcher_;
  bool dispatching_ = false;

  std::atomic<std::uint64_t> admitted_batches_{0};
  std::atomic<std::uint64_t> reserve_rejects_{0};
  std::atomic<std::uint64_t> cross_in_{0};
  std::atomic<std::uint64_t> cross_out_{0};
  std::atomic<std::uint64_t> full_spins_{0};
  std::atomic<std::uint64_t> doorbell_wakeups_{0};
  std::atomic<std::uint64_t> doorbell_backstops_{0};
};

}  // namespace arbiterq::serve
