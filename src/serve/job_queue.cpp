#include "arbiterq/serve/job_queue.hpp"

#include <chrono>
#include <stdexcept>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {

JobQueue::JobQueue(std::size_t num_lanes, std::size_t capacity,
                   std::string depth_metric, std::size_t lane_base)
    : lanes_(num_lanes * kPriorities),
      capacity_(capacity),
      lane_base_(lane_base),
      depth_metric_(std::move(depth_metric)) {
  if (num_lanes == 0) {
    throw std::invalid_argument("JobQueue: no lanes");
  }
  if (capacity_ == 0) {
    throw std::invalid_argument("JobQueue: zero capacity");
  }
}

void JobQueue::note_depth_locked() {
  // Direct registry write (not AQ_GAUGE_SET): the gauge name is
  // per-instance, so the macro's function-local static cache would pin
  // every queue to whichever instance registered first.
  if (!telemetry::telemetry_runtime_enabled()) return;
  if (depth_gauge_ == nullptr) {
    depth_gauge_ = &telemetry::MetricsRegistry::global().gauge(depth_metric_);
  }
  depth_gauge_->set(static_cast<double>(total_depth_));
}

std::unique_lock<std::mutex> JobQueue::lock_timed() const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  lock_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  lock_contentions_.fetch_add(1, std::memory_order_relaxed);
  AQ_COUNTER_ADD("serve.queue.lock_wait_ns", ns);
  AQ_COUNTER_ADD("serve.queue.lock_contentions", 1);
  return lock;
}

bool JobQueue::try_push(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::try_push: bad lane");
  }
  if (closed_ || admitted_depth_ >= capacity_) {
    ++rejected_;
    AQ_COUNTER_ADD("serve.queue.rejected", 1);
    return false;
  }
  const int pri = static_cast<int>(batch.priority);
  lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
      Entry{true, std::move(batch)});
  ++admitted_depth_;
  ++total_depth_;
  note_depth_locked();
  cv_.notify_all();
  return true;
}

bool JobQueue::try_push_all(std::vector<ShotBatch> batches) {
  std::unique_lock<std::mutex> lock = lock_timed();
  if (closed_ || admitted_depth_ + batches.size() > capacity_) {
    rejected_ += batches.size();
    AQ_COUNTER_ADD("serve.queue.rejected", batches.size());
    return false;
  }
  for (ShotBatch& batch : batches) {
    const std::size_t lane = lane_of(batch);
    if (lane * kPriorities >= lanes_.size()) {
      throw std::out_of_range("JobQueue::try_push_all: bad lane");
    }
    const int pri = static_cast<int>(batch.priority);
    lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
        Entry{true, std::move(batch)});
    ++admitted_depth_;
    ++total_depth_;
  }
  note_depth_locked();
  cv_.notify_all();
  return true;
}

void JobQueue::push_reserved(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::push_reserved: bad lane");
  }
  const int pri = static_cast<int>(batch.priority);
  lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
      Entry{true, std::move(batch)});
  ++admitted_depth_;
  ++total_depth_;
  note_depth_locked();
  cv_.notify_all();
}

void JobQueue::push_retry(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::push_retry: bad lane");
  }
  const int pri = static_cast<int>(batch.priority);
  lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
      Entry{false, std::move(batch)});
  ++total_depth_;
  note_depth_locked();
  cv_.notify_all();
}

bool JobQueue::pop_locked(std::unique_lock<std::mutex>& lock,
                          const std::size_t* lanes, std::size_t n_lanes,
                          ShotBatch* out, bool* was_admitted) {
  for (std::size_t i = 0; i < n_lanes; ++i) {
    if (lanes[i] * kPriorities >= lanes_.size()) {
      throw std::out_of_range("JobQueue::pop: bad lane");
    }
  }
  for (;;) {
    if (aborted_) return false;
    for (int pri = kPriorities - 1; pri >= 0; --pri) {
      for (std::size_t i = 0; i < n_lanes; ++i) {
        auto& q =
            lanes_[lanes[i] * kPriorities + static_cast<std::size_t>(pri)];
        if (q.empty()) continue;
        Entry e = std::move(q.front());
        q.pop_front();
        *out = std::move(e.batch);
        if (was_admitted != nullptr) *was_admitted = e.admitted;
        --total_depth_;
        if (e.admitted) --admitted_depth_;
        ++in_flight_;
        note_depth_locked();
        return true;
      }
    }
    if (drained_locked()) return false;
    cv_.wait(lock);
  }
}

bool JobQueue::pop(std::size_t lane, ShotBatch* out, bool* was_admitted) {
  std::unique_lock<std::mutex> lock = lock_timed();
  return pop_locked(lock, &lane, 1, out, was_admitted);
}

bool JobQueue::pop_any(const std::vector<std::size_t>& lanes, ShotBatch* out,
                       bool* was_admitted) {
  if (lanes.empty()) {
    throw std::invalid_argument("JobQueue::pop_any: no lanes");
  }
  std::unique_lock<std::mutex> lock = lock_timed();
  return pop_locked(lock, lanes.data(), lanes.size(), out, was_admitted);
}

void JobQueue::task_done() {
  std::unique_lock<std::mutex> lock = lock_timed();
  if (in_flight_ == 0) {
    throw std::logic_error("JobQueue::task_done: nothing in flight");
  }
  --in_flight_;
  if (drained_locked()) cv_.notify_all();
}

void JobQueue::close() {
  std::unique_lock<std::mutex> lock = lock_timed();
  closed_ = true;
  cv_.notify_all();
}

void JobQueue::abort() {
  std::unique_lock<std::mutex> lock = lock_timed();
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return total_depth_;
}

std::size_t JobQueue::lane_depth(std::size_t lane) const {
  std::unique_lock<std::mutex> lock = lock_timed();
  std::size_t d = 0;
  for (int pri = 0; pri < kPriorities; ++pri) {
    d += lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].size();
  }
  return d;
}

std::size_t JobQueue::rejected() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return rejected_;
}

}  // namespace arbiterq::serve
