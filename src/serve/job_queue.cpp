#include "arbiterq/serve/job_queue.hpp"

#include <stdexcept>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {

JobQueue::JobQueue(std::size_t num_lanes, std::size_t capacity)
    : lanes_(num_lanes * kPriorities), capacity_(capacity) {
  if (num_lanes == 0) {
    throw std::invalid_argument("JobQueue: no lanes");
  }
  if (capacity_ == 0) {
    throw std::invalid_argument("JobQueue: zero capacity");
  }
}

void JobQueue::note_depth_locked() {
  AQ_GAUGE_SET("serve.queue.depth", static_cast<double>(total_depth_));
}

bool JobQueue::try_push(ShotBatch batch) {
  const std::size_t lane = static_cast<std::size_t>(batch.qpu);
  std::lock_guard<std::mutex> lock(mu_);
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::try_push: bad lane");
  }
  if (closed_ || admitted_depth_ >= capacity_) {
    ++rejected_;
    AQ_COUNTER_ADD("serve.queue.rejected", 1);
    return false;
  }
  const int pri = static_cast<int>(batch.priority);
  lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
      Entry{true, std::move(batch)});
  ++admitted_depth_;
  ++total_depth_;
  note_depth_locked();
  cv_.notify_all();
  return true;
}

bool JobQueue::try_push_all(std::vector<ShotBatch> batches) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || admitted_depth_ + batches.size() > capacity_) {
    rejected_ += batches.size();
    AQ_COUNTER_ADD("serve.queue.rejected", batches.size());
    return false;
  }
  for (ShotBatch& batch : batches) {
    const std::size_t lane = static_cast<std::size_t>(batch.qpu);
    if (lane * kPriorities >= lanes_.size()) {
      throw std::out_of_range("JobQueue::try_push_all: bad lane");
    }
    const int pri = static_cast<int>(batch.priority);
    lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
        Entry{true, std::move(batch)});
    ++admitted_depth_;
    ++total_depth_;
  }
  note_depth_locked();
  cv_.notify_all();
  return true;
}

void JobQueue::push_retry(ShotBatch batch) {
  const std::size_t lane = static_cast<std::size_t>(batch.qpu);
  std::lock_guard<std::mutex> lock(mu_);
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::push_retry: bad lane");
  }
  const int pri = static_cast<int>(batch.priority);
  lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].push_back(
      Entry{false, std::move(batch)});
  ++total_depth_;
  note_depth_locked();
  cv_.notify_all();
}

bool JobQueue::pop(std::size_t lane, ShotBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (lane * kPriorities >= lanes_.size()) {
    throw std::out_of_range("JobQueue::pop: bad lane");
  }
  for (;;) {
    if (aborted_) return false;
    for (int pri = kPriorities - 1; pri >= 0; --pri) {
      auto& q = lanes_[lane * kPriorities + static_cast<std::size_t>(pri)];
      if (!q.empty()) {
        Entry e = std::move(q.front());
        q.pop_front();
        *out = std::move(e.batch);
        --total_depth_;
        if (e.admitted) --admitted_depth_;
        ++in_flight_;
        note_depth_locked();
        return true;
      }
    }
    if (drained_locked()) return false;
    cv_.wait(lock);
  }
}

void JobQueue::task_done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ == 0) {
    throw std::logic_error("JobQueue::task_done: nothing in flight");
  }
  --in_flight_;
  if (drained_locked()) cv_.notify_all();
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void JobQueue::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_depth_;
}

std::size_t JobQueue::lane_depth(std::size_t lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t d = 0;
  for (int pri = 0; pri < kPriorities; ++pri) {
    d += lanes_[lane * kPriorities + static_cast<std::size_t>(pri)].size();
  }
  return d;
}

std::size_t JobQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace arbiterq::serve
