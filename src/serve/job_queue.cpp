#include "arbiterq/serve/job_queue.hpp"

#include <chrono>
#include <stdexcept>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {

JobQueue::JobQueue(std::size_t num_lanes, std::size_t capacity,
                   std::string depth_metric, std::size_t lane_base,
                   std::size_t num_tenants, const ArbiterConfig& arbiter)
    : lanes_(num_lanes * kPriorities *
             (num_tenants == 0 ? 1 : num_tenants)),
      capacity_(capacity),
      lane_base_(lane_base),
      num_tenants_(num_tenants == 0 ? 1 : num_tenants),
      depth_metric_(std::move(depth_metric)),
      tenant_depth_(num_tenants == 0 ? 1 : num_tenants, 0) {
  if (num_lanes == 0) {
    throw std::invalid_argument("JobQueue: no lanes");
  }
  if (capacity_ == 0) {
    throw std::invalid_argument("JobQueue: zero capacity");
  }
  if (num_tenants_ > 1) {
    // One arbiter per lane: a lane's grant history is a pure function
    // of that lane's content sequence, independent of which shard or
    // worker owns it — the property that keeps saturated-backlog
    // dequeue order identical across shard counts.
    arbiters_.reserve(num_lanes);
    for (std::size_t l = 0; l < num_lanes; ++l) {
      arbiters_.push_back(Arbiter::create(arbiter, num_tenants_));
    }
    head_seq_.resize(num_tenants_, kNoRequest);
  }
}

void JobQueue::note_depth_locked() {
  // Direct registry write (not AQ_GAUGE_SET): the gauge name is
  // per-instance, so the macro's function-local static cache would pin
  // every queue to whichever instance registered first.
  if (!telemetry::telemetry_runtime_enabled()) return;
  if (depth_gauge_ == nullptr) {
    depth_gauge_ = &telemetry::MetricsRegistry::global().gauge(depth_metric_);
  }
  depth_gauge_->set(static_cast<double>(total_depth_));
}

std::unique_lock<std::mutex> JobQueue::lock_timed() const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  lock_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  lock_contentions_.fetch_add(1, std::memory_order_relaxed);
  AQ_COUNTER_ADD("serve.queue.lock_wait_ns", ns);
  AQ_COUNTER_ADD("serve.queue.lock_contentions", 1);
  return lock;
}

void JobQueue::enqueue_locked(ShotBatch batch, bool admitted) {
  const std::size_t lane = lane_of(batch);
  const std::size_t tenant = tenant_of(batch);
  const int pri = static_cast<int>(batch.priority);
  Entry e;
  e.admitted = admitted;
  e.seq = push_seq_++;
  e.batch = std::move(batch);
  cell(lane, pri, tenant).push_back(std::move(e));
  ++tenant_depth_[tenant];
  if (admitted) ++admitted_depth_;
  ++total_depth_;
}

bool JobQueue::try_push(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities * num_tenants_ >= lanes_.size()) {
    throw std::out_of_range("JobQueue::try_push: bad lane");
  }
  if (closed_ || admitted_depth_ >= capacity_) {
    ++rejected_;
    AQ_COUNTER_ADD("serve.queue.rejected", 1);
    return false;
  }
  enqueue_locked(std::move(batch), /*admitted=*/true);
  note_depth_locked();
  cv_.notify_all();
  return true;
}

bool JobQueue::try_push_all(std::vector<ShotBatch> batches) {
  std::unique_lock<std::mutex> lock = lock_timed();
  if (closed_ || admitted_depth_ + batches.size() > capacity_) {
    rejected_ += batches.size();
    AQ_COUNTER_ADD("serve.queue.rejected", batches.size());
    return false;
  }
  for (ShotBatch& batch : batches) {
    const std::size_t lane = lane_of(batch);
    if (lane * kPriorities * num_tenants_ >= lanes_.size()) {
      throw std::out_of_range("JobQueue::try_push_all: bad lane");
    }
    enqueue_locked(std::move(batch), /*admitted=*/true);
  }
  note_depth_locked();
  cv_.notify_all();
  return true;
}

void JobQueue::push_reserved(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities * num_tenants_ >= lanes_.size()) {
    throw std::out_of_range("JobQueue::push_reserved: bad lane");
  }
  enqueue_locked(std::move(batch), /*admitted=*/true);
  note_depth_locked();
  cv_.notify_all();
}

void JobQueue::push_retry(ShotBatch batch) {
  const std::size_t lane = lane_of(batch);
  std::unique_lock<std::mutex> lock = lock_timed();
  if (lane * kPriorities * num_tenants_ >= lanes_.size()) {
    throw std::out_of_range("JobQueue::push_retry: bad lane");
  }
  enqueue_locked(std::move(batch), /*admitted=*/false);
  note_depth_locked();
  cv_.notify_all();
}

bool JobQueue::pop_locked(std::unique_lock<std::mutex>& lock,
                          const std::size_t* lanes, std::size_t n_lanes,
                          ShotBatch* out, bool* was_admitted) {
  for (std::size_t i = 0; i < n_lanes; ++i) {
    if (lanes[i] * kPriorities * num_tenants_ >= lanes_.size()) {
      throw std::out_of_range("JobQueue::pop: bad lane");
    }
  }
  for (;;) {
    if (aborted_) return false;
    for (int pri = kPriorities - 1; pri >= 0; --pri) {
      for (std::size_t i = 0; i < n_lanes; ++i) {
        const std::size_t lane = lanes[i];
        std::deque<Entry>* q = nullptr;
        std::size_t tenant = 0;
        if (num_tenants_ == 1) {
          q = &cell(lane, pri, 0);
          if (q->empty()) q = nullptr;
        } else {
          // Fill the grant ports with each tenant's head-of-line push
          // sequence at this (lane, priority) and let the lane arbiter
          // pick; the FIFO arbiter reproduces the single-deque order
          // exactly (global minimum sequence).
          bool any = false;
          for (std::size_t t = 0; t < num_tenants_; ++t) {
            const std::deque<Entry>& c = cell(lane, pri, t);
            head_seq_[t] = c.empty() ? kNoRequest : c.front().seq;
            any = any || !c.empty();
          }
          if (any) {
            tenant = arbiters_[lane]->grant(head_seq_.data(), num_tenants_);
            ++arbiter_grants_;
            q = &cell(lane, pri, tenant);
          }
        }
        if (q == nullptr) continue;
        Entry e = std::move(q->front());
        q->pop_front();
        *out = std::move(e.batch);
        if (was_admitted != nullptr) *was_admitted = e.admitted;
        --tenant_depth_[num_tenants_ == 1 ? 0 : tenant];
        --total_depth_;
        if (e.admitted) --admitted_depth_;
        ++in_flight_;
        note_depth_locked();
        return true;
      }
    }
    if (drained_locked()) return false;
    cv_.wait(lock);
  }
}

bool JobQueue::pop(std::size_t lane, ShotBatch* out, bool* was_admitted) {
  std::unique_lock<std::mutex> lock = lock_timed();
  return pop_locked(lock, &lane, 1, out, was_admitted);
}

bool JobQueue::pop_any(const std::vector<std::size_t>& lanes, ShotBatch* out,
                       bool* was_admitted) {
  if (lanes.empty()) {
    throw std::invalid_argument("JobQueue::pop_any: no lanes");
  }
  std::unique_lock<std::mutex> lock = lock_timed();
  return pop_locked(lock, lanes.data(), lanes.size(), out, was_admitted);
}

void JobQueue::task_done() {
  std::unique_lock<std::mutex> lock = lock_timed();
  if (in_flight_ == 0) {
    throw std::logic_error("JobQueue::task_done: nothing in flight");
  }
  --in_flight_;
  if (drained_locked()) cv_.notify_all();
}

void JobQueue::close() {
  std::unique_lock<std::mutex> lock = lock_timed();
  closed_ = true;
  cv_.notify_all();
}

void JobQueue::abort() {
  std::unique_lock<std::mutex> lock = lock_timed();
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return total_depth_;
}

std::size_t JobQueue::lane_depth(std::size_t lane) const {
  std::unique_lock<std::mutex> lock = lock_timed();
  std::size_t d = 0;
  for (int pri = 0; pri < kPriorities; ++pri) {
    for (std::size_t t = 0; t < num_tenants_; ++t) {
      d += cell(lane, pri, t).size();
    }
  }
  return d;
}

std::size_t JobQueue::tenant_depth(std::size_t tenant) const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return tenant < tenant_depth_.size() ? tenant_depth_[tenant] : 0;
}

std::size_t JobQueue::rejected() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return rejected_;
}

std::uint64_t JobQueue::arbiter_grants() const {
  std::unique_lock<std::mutex> lock = lock_timed();
  return arbiter_grants_;
}

}  // namespace arbiterq::serve
