#include "arbiterq/serve/arbiter.hpp"

#include <stdexcept>

namespace arbiterq::serve {
namespace {

/// Shared precondition check: n matches, at least one requester.
std::size_t check_requesters(const std::uint64_t* head_seq, std::size_t n,
                             std::size_t expected) {
  if (n != expected) {
    throw std::invalid_argument("Arbiter::grant: tenant count mismatch");
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (head_seq[t] != kNoRequest) return t;
  }
  throw std::invalid_argument("Arbiter::grant: no requester");
}

class FifoArbiter final : public Arbiter {
 public:
  explicit FifoArbiter(std::size_t num_tenants) : n_(num_tenants) {}
  ArbiterKind kind() const noexcept override { return ArbiterKind::kFifo; }
  std::size_t num_tenants() const noexcept override { return n_; }

  std::size_t grant(const std::uint64_t* head_seq, std::size_t n) override {
    std::size_t winner = check_requesters(head_seq, n, n_);
    for (std::size_t t = winner + 1; t < n; ++t) {
      if (head_seq[t] < head_seq[winner]) winner = t;
    }
    return winner;
  }

 private:
  std::size_t n_;
};

class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(std::size_t num_tenants)
      : n_(num_tenants), last_(num_tenants - 1) {}
  ArbiterKind kind() const noexcept override {
    return ArbiterKind::kRoundRobin;
  }
  std::size_t num_tenants() const noexcept override { return n_; }

  std::size_t grant(const std::uint64_t* head_seq, std::size_t n) override {
    check_requesters(head_seq, n, n_);
    for (std::size_t i = 1; i <= n; ++i) {
      const std::size_t t = (last_ + i) % n;
      if (head_seq[t] != kNoRequest) {
        last_ = t;
        return t;
      }
    }
    throw std::logic_error("RoundRobinArbiter: unreachable");
  }

 private:
  std::size_t n_;
  std::size_t last_;  ///< most recently granted tenant
};

class MatrixArbiter final : public Arbiter {
 public:
  explicit MatrixArbiter(std::size_t num_tenants)
      : n_(num_tenants), beats_(num_tenants * num_tenants, false) {
    // Initial strict total order: lower index beats higher.
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) beats_[i * n_ + j] = true;
    }
  }
  ArbiterKind kind() const noexcept override { return ArbiterKind::kMatrix; }
  std::size_t num_tenants() const noexcept override { return n_; }

  std::size_t grant(const std::uint64_t* head_seq, std::size_t n) override {
    check_requesters(head_seq, n, n_);
    // The matrix encodes a strict total order (demoting the winner
    // preserves it), so among any requester set exactly one tenant
    // beats every other requester.
    for (std::size_t i = 0; i < n_; ++i) {
      if (head_seq[i] == kNoRequest) continue;
      bool wins = true;
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == i || head_seq[j] == kNoRequest) continue;
        if (!beats_[i * n_ + j]) {
          wins = false;
          break;
        }
      }
      if (!wins) continue;
      // Winner becomes least-recently-served: loses to everyone.
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == i) continue;
        beats_[i * n_ + j] = false;
        beats_[j * n_ + i] = true;
      }
      return i;
    }
    throw std::logic_error("MatrixArbiter: no total-order winner");
  }

 private:
  std::size_t n_;
  std::vector<bool> beats_;  ///< beats_[i*n+j]: i outranks j
};

class WeightedCreditArbiter final : public Arbiter {
 public:
  WeightedCreditArbiter(std::size_t num_tenants, std::vector<double> weights)
      : n_(num_tenants), weights_(num_tenants, 1.0), credit_(num_tenants, 0.0) {
    for (std::size_t t = 0; t < n_ && t < weights.size(); ++t) {
      weights_[t] = weights[t];
    }
  }
  ArbiterKind kind() const noexcept override {
    return ArbiterKind::kWeightedCredit;
  }
  std::size_t num_tenants() const noexcept override { return n_; }

  std::size_t grant(const std::uint64_t* head_seq, std::size_t n) override {
    check_requesters(head_seq, n, n_);
    double total_weight = 0.0;
    for (std::size_t t = 0; t < n_; ++t) {
      if (head_seq[t] != kNoRequest && weights_[t] > 0.0) {
        total_weight += weights_[t];
      }
    }
    if (total_weight <= 0.0) {
      // Only background (weight <= 0) tenants are asking: no credit
      // flows; serve them oldest-first.
      std::size_t winner = kNoWinner;
      for (std::size_t t = 0; t < n_; ++t) {
        if (head_seq[t] == kNoRequest) continue;
        if (winner == kNoWinner || head_seq[t] < head_seq[winner]) winner = t;
      }
      return winner;
    }
    // Distribute one grant's worth of credit across the positive-weight
    // requesters, richest requester wins (oldest-first on ties) and
    // pays 1.0 — so credits always sum to their pre-call total, and a
    // weight-w requester out of total W is granted at least every
    // ceil(W/w) calls.
    std::size_t winner = kNoWinner;
    for (std::size_t t = 0; t < n_; ++t) {
      if (head_seq[t] == kNoRequest || weights_[t] <= 0.0) continue;
      credit_[t] += weights_[t] / total_weight;
      if (winner == kNoWinner || credit_[t] > credit_[winner] ||
          (credit_[t] == credit_[winner] &&
           head_seq[t] < head_seq[winner])) {
        winner = t;
      }
    }
    credit_[winner] -= 1.0;
    return winner;
  }

 private:
  static constexpr std::size_t kNoWinner = ~std::size_t{0};
  std::size_t n_;
  std::vector<double> weights_;
  std::vector<double> credit_;
};

}  // namespace

std::string arbiter_kind_name(ArbiterKind kind) {
  switch (kind) {
    case ArbiterKind::kFifo:
      return "fifo";
    case ArbiterKind::kRoundRobin:
      return "round_robin";
    case ArbiterKind::kMatrix:
      return "matrix";
    case ArbiterKind::kWeightedCredit:
      return "weighted_credit";
  }
  throw std::logic_error("arbiter_kind_name: unknown kind");
}

ArbiterKind arbiter_kind_from_string(const std::string& name) {
  if (name == "fifo") return ArbiterKind::kFifo;
  if (name == "round_robin" || name == "rr") return ArbiterKind::kRoundRobin;
  if (name == "matrix") return ArbiterKind::kMatrix;
  if (name == "weighted_credit" || name == "wc") {
    return ArbiterKind::kWeightedCredit;
  }
  throw std::invalid_argument("unknown arbiter kind: " + name);
}

std::unique_ptr<Arbiter> Arbiter::create(const ArbiterConfig& config,
                                         std::size_t num_tenants) {
  if (num_tenants == 0) {
    throw std::invalid_argument("Arbiter::create: no tenants");
  }
  switch (config.kind) {
    case ArbiterKind::kFifo:
      return std::make_unique<FifoArbiter>(num_tenants);
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(num_tenants);
    case ArbiterKind::kMatrix:
      return std::make_unique<MatrixArbiter>(num_tenants);
    case ArbiterKind::kWeightedCredit:
      return std::make_unique<WeightedCreditArbiter>(num_tenants,
                                                     config.weights);
  }
  throw std::logic_error("Arbiter::create: unknown kind");
}

}  // namespace arbiterq::serve
