#include "arbiterq/serve/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "arbiterq/report/jsonl.hpp"

namespace arbiterq::serve {

std::string flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRoute:
      return "route";
    case FlightEventKind::kReject:
      return "reject";
    case FlightEventKind::kExecute:
      return "execute";
    case FlightEventKind::kDropoutFault:
      return "dropout_fault";
    case FlightEventKind::kTransientFault:
      return "transient_fault";
    case FlightEventKind::kLatencySpike:
      return "latency_spike";
    case FlightEventKind::kBackoff:
      return "backoff";
    case FlightEventKind::kReroute:
      return "reroute";
    case FlightEventKind::kExpire:
      return "expire";
    case FlightEventKind::kRetriesExhausted:
      return "retries_exhausted";
    case FlightEventKind::kQuotaReject:
      return "quota_reject";
    case FlightEventKind::kThrottle:
      return "throttle";
  }
  throw std::logic_error("flight_event_kind_name: unknown kind");
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be > 0");
  }
}

void FlightRecorder::record(FlightRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(std::move(rec));
  ++total_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::size_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

std::string FlightRecorder::to_jsonl() const {
  std::vector<FlightRecord> records = snapshot();
  // Records arrive in job *completion* order, which is schedule-
  // dependent; the dump sorts by job id so a seeded run reproduces
  // byte-for-byte (as long as the ring never evicted).
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& x, const FlightRecord& y) {
              return x.job < y.job;
            });
  std::string out;
  for (const FlightRecord& r : records) {
    std::vector<std::string> kinds;
    std::vector<int> slots, attempts, qpus;
    std::vector<double> vus, values;
    kinds.reserve(r.events.size());
    slots.reserve(r.events.size());
    attempts.reserve(r.events.size());
    qpus.reserve(r.events.size());
    vus.reserve(r.events.size());
    values.reserve(r.events.size());
    for (const FlightEvent& e : r.events) {
      kinds.push_back(flight_event_kind_name(e.kind));
      slots.push_back(e.slot);
      attempts.push_back(e.attempt);
      qpus.push_back(e.qpu);
      vus.push_back(e.virtual_us);
      values.push_back(e.value);
    }
    out += report::JsonLine()
               .field("type", "flight")
               .field("job", r.job)
               .field("tenant", r.tenant)
               .field("slo_class", r.slo_class)
               .field("status", r.status)
               .field("epoch", static_cast<std::uint64_t>(r.epoch))
               .field("torus", static_cast<std::uint64_t>(r.torus))
               .field("shots", r.shots)
               .field("retries", r.retries)
               .field("virtual_latency_us", r.virtual_latency_us)
               .field("ev_kind", kinds)
               .field("ev_slot", slots)
               .field("ev_attempt", attempts)
               .field("ev_qpu", qpus)
               .field("ev_vus", vus)
               .field("ev_value", values)
               .finish() +
           "\n";
  }
  return out;
}

void FlightRecorder::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("FlightRecorder: cannot open " + path);
  }
  os << to_jsonl();
  os.flush();
  if (!os) {
    throw std::runtime_error("FlightRecorder: write failed for " + path);
  }
}

}  // namespace arbiterq::serve
