#include "arbiterq/serve/trafficgen.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

namespace arbiterq::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

monitor::SloClass slo_class_from_string(const std::string& name) {
  if (name == "latency_bound" || name == "latency") {
    return monitor::SloClass::kLatencyBound;
  }
  if (name == "throughput_bound" || name == "throughput") {
    return monitor::SloClass::kThroughputBound;
  }
  if (name == "best_effort" || name == "best") {
    return monitor::SloClass::kBestEffort;
  }
  throw std::invalid_argument("trafficgen: unknown SLO class '" + name + "'");
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("trafficgen: bad numeric value '" + value +
                                "' for key '" + key + "'");
  }
}

/// Split "key=value"; throws when '=' is missing.
std::pair<std::string, std::string> parse_kv(const std::string& field) {
  const std::size_t eq = field.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("trafficgen: expected key=value, got '" +
                                field + "'");
  }
  return {trimmed(field.substr(0, eq)), trimmed(field.substr(eq + 1))};
}

}  // namespace

std::string traffic_pattern_name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kSteady:
      return "steady";
    case TrafficPattern::kDiurnal:
      return "diurnal";
    case TrafficPattern::kBursty:
      return "bursty";
    case TrafficPattern::kAdversarial:
      return "adversarial";
  }
  throw std::logic_error("traffic_pattern_name: unknown pattern");
}

TrafficPattern traffic_pattern_from_string(const std::string& name) {
  if (name == "steady") return TrafficPattern::kSteady;
  if (name == "diurnal") return TrafficPattern::kDiurnal;
  if (name == "bursty") return TrafficPattern::kBursty;
  if (name == "adversarial") return TrafficPattern::kAdversarial;
  throw std::invalid_argument("trafficgen: unknown pattern '" + name + "'");
}

TrafficGenerator::TrafficGenerator(TrafficConfig config)
    : config_(std::move(config)) {
  if (config_.tenants.empty()) {
    throw std::invalid_argument("TrafficGenerator: empty tenant mix");
  }
  if (config_.duration_s <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: duration_s must be > 0");
  }
  if (config_.feature_dim == 0) {
    throw std::invalid_argument("TrafficGenerator: feature_dim must be > 0");
  }
  if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "TrafficGenerator: diurnal_amplitude outside [0, 1)");
  }
  if (config_.diurnal_period_s <= 0.0 || config_.burst_cycle_s <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: period/cycle must be > 0");
  }
  if (config_.burst_duty <= 0.0 || config_.burst_duty > 1.0) {
    throw std::invalid_argument("TrafficGenerator: burst_duty outside (0, 1]");
  }
  if (config_.burst_multiplier <= 0.0 || config_.burst_idle_multiplier < 0.0) {
    throw std::invalid_argument("TrafficGenerator: bad burst multipliers");
  }
  for (const TenantProfile& t : config_.tenants) {
    if (t.name.empty()) {
      throw std::invalid_argument("TrafficGenerator: tenant with empty name");
    }
    if (t.rate_per_s <= 0.0) {
      throw std::invalid_argument("TrafficGenerator: tenant '" + t.name +
                                  "' rate_per_s must be > 0");
    }
    if (t.flood_multiplier <= 0.0) {
      throw std::invalid_argument("TrafficGenerator: tenant '" + t.name +
                                  "' flood_multiplier must be > 0");
    }
  }
  reset();
}

void TrafficGenerator::reset() {
  streams_.clear();
  streams_.reserve(config_.tenants.size());
  const math::Rng root = math::Rng(config_.seed).split("traffic");
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    streams_.emplace_back(root.split(static_cast<std::uint64_t>(i)));
    advance(i);
  }
}

double TrafficGenerator::rate_at(std::size_t i, double t_s) const {
  const TenantProfile& t = config_.tenants[i];
  switch (config_.pattern) {
    case TrafficPattern::kSteady:
      return t.rate_per_s;
    case TrafficPattern::kDiurnal:
      return t.rate_per_s *
             (1.0 + config_.diurnal_amplitude *
                        std::sin(2.0 * kPi * t_s / config_.diurnal_period_s));
    case TrafficPattern::kBursty: {
      const double phase = std::fmod(t_s, config_.burst_cycle_s);
      const bool hot = phase < config_.burst_duty * config_.burst_cycle_s;
      return t.rate_per_s * (hot ? config_.burst_multiplier
                                 : config_.burst_idle_multiplier);
    }
    case TrafficPattern::kAdversarial: {
      const bool flooding = t.flood_multiplier > 1.0 &&
                            t_s >= t.flood_from_s && t_s < t.flood_until_s;
      return t.rate_per_s * (flooding ? t.flood_multiplier : 1.0);
    }
  }
  throw std::logic_error("TrafficGenerator: unknown pattern");
}

double TrafficGenerator::peak_rate(std::size_t i) const {
  const TenantProfile& t = config_.tenants[i];
  switch (config_.pattern) {
    case TrafficPattern::kSteady:
      return t.rate_per_s;
    case TrafficPattern::kDiurnal:
      return t.rate_per_s * (1.0 + config_.diurnal_amplitude);
    case TrafficPattern::kBursty:
      return t.rate_per_s * std::max(config_.burst_multiplier,
                                     config_.burst_idle_multiplier);
    case TrafficPattern::kAdversarial:
      return t.rate_per_s * std::max(t.flood_multiplier, 1.0);
  }
  throw std::logic_error("TrafficGenerator: unknown pattern");
}

void TrafficGenerator::advance(std::size_t i) {
  TenantState& st = streams_[i];
  const double peak = peak_rate(i);
  // Thinning: homogeneous candidates at the envelope rate, each kept
  // with probability lambda(t)/peak — the standard nonhomogeneous-
  // Poisson construction, and every draw comes from this tenant's own
  // split stream so the merge order cannot perturb it.
  double t = st.next_s;
  while (true) {
    const double u = st.rng.uniform();
    t += -std::log1p(-u) / peak;
    if (t > config_.duration_s) {
      st.exhausted = true;
      return;
    }
    if (st.rng.uniform() * peak < rate_at(i, t)) {
      st.next_s = t;
      return;
    }
  }
}

std::optional<GeneratedJob> TrafficGenerator::next() {
  std::size_t winner = streams_.size();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].exhausted) continue;
    if (winner == streams_.size() ||
        streams_[i].next_s < streams_[winner].next_s) {
      winner = i;  // strict < breaks exact ties toward the lower index
    }
  }
  if (winner == streams_.size()) return std::nullopt;

  TenantState& st = streams_[winner];
  const TenantProfile& profile = config_.tenants[winner];
  GeneratedJob job;
  job.arrival_us = st.next_s * 1e6;
  job.tenant = winner;
  job.spec.features.reserve(config_.feature_dim);
  for (std::size_t d = 0; d < config_.feature_dim; ++d) {
    job.spec.features.push_back(st.rng.uniform(0.0, kPi));
  }
  job.spec.label = st.rng.bernoulli(0.5) ? 1 : 0;
  job.spec.tenant = profile.name;
  job.spec.slo_class = profile.slo_class;
  job.spec.shots = profile.shots;
  job.spec.deadline_us = profile.deadline_us;
  job.spec.arrival_us = job.arrival_us;
  advance(winner);
  return job;
}

std::vector<GeneratedJob> TrafficGenerator::generate_all() {
  std::vector<GeneratedJob> out;
  while (auto job = next()) out.push_back(std::move(*job));
  return out;
}

std::vector<TenantSpec> TrafficGenerator::tenant_specs() const {
  std::vector<TenantSpec> out;
  out.reserve(config_.tenants.size());
  for (const TenantProfile& t : config_.tenants) {
    TenantSpec s;
    s.name = t.name;
    s.weight = t.weight;
    s.max_in_flight = t.max_in_flight;
    s.admit_rate_per_s = t.admit_rate_per_s;
    s.admit_burst = t.admit_burst;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TenantProfile> parse_tenant_profiles(const std::string& spec) {
  std::vector<TenantProfile> out;
  std::set<std::string> names;
  for (const std::string& raw : split_on(spec, ';')) {
    const std::string entry = trimmed(raw);
    if (entry.empty()) continue;
    const std::vector<std::string> fields = split_on(entry, ',');
    TenantProfile t;
    t.name = trimmed(fields[0]);
    if (t.name.empty() || t.name.find('=') != std::string::npos) {
      throw std::invalid_argument(
          "trafficgen: tenant entry must start with a name: '" + entry + "'");
    }
    if (!names.insert(t.name).second) {
      throw std::invalid_argument("trafficgen: duplicate tenant '" + t.name +
                                  "'");
    }
    for (std::size_t f = 1; f < fields.size(); ++f) {
      const auto [key, value] = parse_kv(trimmed(fields[f]));
      if (key == "class") {
        t.slo_class = slo_class_from_string(value);
      } else if (key == "rate") {
        t.rate_per_s = parse_double(key, value);
      } else if (key == "weight") {
        t.weight = parse_double(key, value);
      } else if (key == "shots") {
        t.shots = static_cast<int>(parse_double(key, value));
      } else if (key == "deadline_us") {
        t.deadline_us = parse_double(key, value);
      } else if (key == "max_in_flight") {
        t.max_in_flight =
            static_cast<std::size_t>(parse_double(key, value));
      } else if (key == "admit_rate") {
        t.admit_rate_per_s = parse_double(key, value);
      } else if (key == "admit_burst") {
        t.admit_burst = parse_double(key, value);
      } else if (key == "flood") {
        t.flood_multiplier = parse_double(key, value);
      } else if (key == "flood_from") {
        t.flood_from_s = parse_double(key, value);
      } else if (key == "flood_until") {
        t.flood_until_s = parse_double(key, value);
      } else {
        throw std::invalid_argument("trafficgen: unknown tenant key '" + key +
                                    "'");
      }
    }
    out.push_back(std::move(t));
  }
  if (out.empty()) {
    throw std::invalid_argument("trafficgen: empty tenant spec");
  }
  return out;
}

TrafficConfig parse_traffic_spec(const std::string& spec) {
  const std::vector<std::string> fields = split_on(spec, ',');
  if (fields.empty() || trimmed(fields[0]).empty()) {
    throw std::invalid_argument("trafficgen: empty traffic spec");
  }
  TrafficConfig cfg;
  cfg.pattern = traffic_pattern_from_string(trimmed(fields[0]));
  for (std::size_t f = 1; f < fields.size(); ++f) {
    const auto [key, value] = parse_kv(trimmed(fields[f]));
    if (key == "duration") {
      cfg.duration_s = parse_double(key, value);
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_double(key, value));
    } else if (key == "dim") {
      cfg.feature_dim = static_cast<std::size_t>(parse_double(key, value));
    } else if (key == "period") {
      cfg.diurnal_period_s = parse_double(key, value);
    } else if (key == "amplitude") {
      cfg.diurnal_amplitude = parse_double(key, value);
    } else if (key == "cycle") {
      cfg.burst_cycle_s = parse_double(key, value);
    } else if (key == "duty") {
      cfg.burst_duty = parse_double(key, value);
    } else if (key == "mult") {
      cfg.burst_multiplier = parse_double(key, value);
    } else if (key == "idle") {
      cfg.burst_idle_multiplier = parse_double(key, value);
    } else {
      throw std::invalid_argument("trafficgen: unknown traffic key '" + key +
                                  "'");
    }
  }
  return cfg;
}

TrafficConfig adversarial_mix(std::uint64_t seed, double duration_s,
                              double fleet_jobs_per_s) {
  if (duration_s <= 0.0 || fleet_jobs_per_s <= 0.0) {
    throw std::invalid_argument("adversarial_mix: non-positive scale");
  }
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kAdversarial;
  cfg.duration_s = duration_s;
  cfg.seed = seed;

  // One noisy neighbor pushing well past its entitlement, two heavy
  // bulk tenants, four light interactive tenants. Aggregate baseline
  // demand is ~1.7x fleet capacity (5x that mid-flood), so every
  // arbiter runs against a standing backlog and the interactive
  // tenants' fate depends entirely on the dequeue policy.
  TenantProfile flood;
  flood.name = "flood";
  flood.weight = 1.0;
  flood.slo_class = monitor::SloClass::kBestEffort;
  flood.rate_per_s = 0.6 * fleet_jobs_per_s;
  flood.flood_multiplier = 5.0;
  flood.flood_from_s = 0.2 * duration_s;
  flood.flood_until_s = 0.8 * duration_s;
  cfg.tenants.push_back(flood);

  for (int b = 0; b < 2; ++b) {
    TenantProfile bulk;
    bulk.name = "bulk" + std::to_string(b);
    bulk.weight = 4.0;
    bulk.slo_class = monitor::SloClass::kThroughputBound;
    bulk.rate_per_s = 0.5 * fleet_jobs_per_s;
    cfg.tenants.push_back(bulk);
  }
  for (int i = 0; i < 4; ++i) {
    TenantProfile interactive;
    interactive.name = "int" + std::to_string(i);
    interactive.weight = 8.0;
    interactive.slo_class = monitor::SloClass::kLatencyBound;
    interactive.rate_per_s = 0.02 * fleet_jobs_per_s;
    cfg.tenants.push_back(interactive);
  }
  return cfg;
}

}  // namespace arbiterq::serve
