#include "arbiterq/serve/fault_injector.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace arbiterq::serve {

namespace {

/// True when `qpu` has a dropout event and returns its threshold.
bool dropout_threshold(const std::vector<DropoutEvent>& events, int qpu,
                       std::uint64_t* at_job) {
  for (const DropoutEvent& e : events) {
    if (e.qpu == qpu) {
      *at_job = e.at_job;
      return true;
    }
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(std::size_t fleet_size, FaultConfig config)
    : fleet_size_(fleet_size),
      config_(std::move(config)),
      root_(config_.seed) {
  if (fleet_size_ == 0) {
    throw std::invalid_argument("FaultInjector: empty fleet");
  }
  for (const DropoutEvent& e : config_.dropouts) {
    if (e.qpu < 0 || static_cast<std::size_t>(e.qpu) >= fleet_size_) {
      throw std::invalid_argument("FaultInjector: dropout qpu out of range");
    }
    dropouts_.push_back(e);
  }
  // Probability mode: draw at most one dropout per QPU, its job index
  // uniform over the horizon. Deterministic: one named stream per QPU.
  if (config_.dropout_probability > 0.0) {
    for (std::size_t q = 0; q < fleet_size_; ++q) {
      std::uint64_t ignore;
      if (dropout_threshold(dropouts_, static_cast<int>(q), &ignore)) {
        continue;  // scripted event wins
      }
      math::Rng rng = root_.split("dropout").split(q);
      if (rng.bernoulli(config_.dropout_probability)) {
        dropouts_.push_back(
            {static_cast<int>(q),
             rng.uniform_int(std::max<std::uint64_t>(
                 config_.dropout_horizon_jobs, 1))});
      }
    }
  }
  std::sort(dropouts_.begin(), dropouts_.end(),
            [](const DropoutEvent& a, const DropoutEvent& b) {
              return a.at_job != b.at_job ? a.at_job < b.at_job
                                          : a.qpu < b.qpu;
            });
  if (dropouts_.size() >= fleet_size_) {
    throw std::invalid_argument(
        "FaultInjector: dropouts would kill the whole fleet");
  }
}

math::Rng FaultInjector::decision_rng(std::string_view stream,
                                      std::uint64_t job, int qpu,
                                      int attempt) const {
  return root_.split(stream).split(job).split(
      static_cast<std::uint64_t>(qpu) * 131ULL +
      static_cast<std::uint64_t>(attempt));
}

bool FaultInjector::dropped(int qpu, std::uint64_t job) const {
  std::uint64_t at_job;
  return dropout_threshold(dropouts_, qpu, &at_job) && job >= at_job;
}

bool FaultInjector::transient_failure(std::uint64_t job, int qpu,
                                      int attempt) const {
  if (config_.transient_probability <= 0.0) return false;
  math::Rng rng = decision_rng("transient", job, qpu, attempt);
  return rng.bernoulli(config_.transient_probability);
}

double FaultInjector::latency_multiplier(std::uint64_t job, int qpu,
                                         int attempt) const {
  if (config_.latency_spike_probability <= 0.0) return 1.0;
  math::Rng rng = decision_rng("latency", job, qpu, attempt);
  return rng.bernoulli(config_.latency_spike_probability)
             ? config_.latency_spike_multiplier
             : 1.0;
}

std::size_t FaultInjector::routing_epoch(std::uint64_t job) const {
  std::size_t epoch = 0;
  for (const DropoutEvent& e : dropouts_) {
    if (e.at_job + config_.detection_lag_jobs <= job) ++epoch;
  }
  return epoch;
}

std::vector<int> FaultInjector::alive_at_epoch(std::size_t epoch) const {
  epoch = std::min(epoch, dropouts_.size());
  std::vector<int> alive;
  alive.reserve(fleet_size_);
  for (std::size_t q = 0; q < fleet_size_; ++q) {
    bool dead = false;
    for (std::size_t e = 0; e < epoch; ++e) {
      if (dropouts_[e].qpu == static_cast<int>(q)) dead = true;
    }
    if (!dead) alive.push_back(static_cast<int>(q));
  }
  return alive;
}

FaultConfig FaultInjector::parse(std::string_view spec) {
  FaultConfig cfg;
  std::size_t pos = 0;
  const auto bad = [&](const std::string& what) {
    throw std::invalid_argument("FaultInjector::parse: " + what + " in '" +
                                std::string(spec) + "'");
  };
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) bad("missing ':'");
    const std::string_view key = item.substr(0, colon);
    const std::string value(item.substr(colon + 1));
    char* end = nullptr;
    if (key == "kill") {
      // kill:<qpu>@<job>
      const std::size_t at = value.find('@');
      if (at == std::string::npos) bad("kill needs <qpu>@<job>");
      DropoutEvent e;
      e.qpu = std::atoi(value.substr(0, at).c_str());
      e.at_job = std::strtoull(value.c_str() + at + 1, &end, 10);
      cfg.dropouts.push_back(e);
    } else if (key == "drop") {
      // drop:<p>[@<horizon>]
      const std::size_t at = value.find('@');
      cfg.dropout_probability = std::atof(value.substr(0, at).c_str());
      if (at != std::string::npos) {
        cfg.dropout_horizon_jobs =
            std::strtoull(value.c_str() + at + 1, &end, 10);
      }
    } else if (key == "transient") {
      cfg.transient_probability = std::atof(value.c_str());
    } else if (key == "spike") {
      // spike:<p>x<mult>
      const std::size_t x = value.find('x');
      cfg.latency_spike_probability = std::atof(value.substr(0, x).c_str());
      if (x != std::string::npos) {
        cfg.latency_spike_multiplier = std::atof(value.c_str() + x + 1);
      }
    } else if (key == "lag") {
      cfg.detection_lag_jobs = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "seed") {
      cfg.seed = std::strtoull(value.c_str(), &end, 10);
    } else {
      bad("unknown directive '" + std::string(key) + "'");
    }
  }
  return cfg;
}

}  // namespace arbiterq::serve
