#include "arbiterq/serve/shard.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::serve {

namespace {
/// Dispatcher park backstop: lanes are doorbell-signalled, so this only
/// bounds the advertise/park race window (see mailbox.hpp).
constexpr std::chrono::microseconds kDispatchParkBackstop{200};
}  // namespace

Shard::Shard(std::size_t index, std::size_t first_qpu, std::size_t num_qpus,
             std::size_t capacity, std::size_t num_shards,
             std::size_t num_tenants, const ArbiterConfig& arbiter)
    : index_(index),
      first_qpu_(first_qpu),
      num_qpus_(num_qpus),
      capacity_(capacity),
      queue_(num_qpus == 0 ? 1 : num_qpus, capacity == 0 ? 1 : capacity,
             num_shards <= 1
                 ? std::string("serve.queue.depth")
                 : "serve.queue.depth.shard" + std::to_string(index),
             first_qpu, num_tenants, arbiter),
      admission_(capacity == 0 ? 1 : capacity) {
  if (num_qpus_ == 0) {
    throw std::invalid_argument("Shard: no QPUs");
  }
  if (capacity_ == 0) {
    throw std::invalid_argument("Shard: zero capacity");
  }
  inbound_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Retry traffic rides above the admission bound, so the lanes are
    // sized generously; producers spin-yield in the (rare) full case.
    inbound_.push_back(
        std::make_unique<Mailbox<ShotBatch>>(std::max<std::size_t>(
            64, capacity_)));
  }
}

Shard::~Shard() { stop_dispatch(); }

bool Shard::try_reserve(std::size_t n) {
  std::size_t cur = reserved_.load(std::memory_order_relaxed);
  do {
    if (cur + n > capacity_) {
      reserve_rejects_.fetch_add(n, std::memory_order_relaxed);
      AQ_COUNTER_ADD("serve.shard.reserve_rejects", n);
      return false;
    }
  } while (!reserved_.compare_exchange_weak(cur, cur + n,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed));
  return true;
}

void Shard::release(std::size_t n) {
  reserved_.fetch_sub(n, std::memory_order_release);
}

void Shard::admit(AdmitMsg msg) {
  // Reservation succeeded, so the lane has room modulo a dispatcher
  // mid-drain; yield until the push lands rather than failing.
  while (!admission_.try_push(std::move(msg))) {
    full_spins_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  doorbell_.ring();
}

void Shard::send_retry(Shard& from, Shard& to, ShotBatch batch) {
  Mailbox<ShotBatch>& lane = *to.inbound_[from.index_];
  {
    std::lock_guard<std::mutex> ticket(from.out_mu_);
    while (!lane.try_push(std::move(batch))) {
      // Full lane with the target abandoned (teardown without drain):
      // its dispatcher will never empty it, so drop the batch rather
      // than spin this worker past the destructor's join.
      if (to.abandoned_.load(std::memory_order_acquire)) return;
      to.full_spins_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }
  from.cross_out_.fetch_add(1, std::memory_order_relaxed);
  to.cross_in_.fetch_add(1, std::memory_order_relaxed);
  to.doorbell_.ring();
}

void Shard::start_dispatch() {
  if (dispatching_) return;
  stop_.store(false, std::memory_order_release);
  dispatcher_ = std::thread(&Shard::dispatch_main, this);
  dispatching_ = true;
}

void Shard::stop_dispatch() {
  if (!dispatching_) return;
  stop_.store(true, std::memory_order_release);
  doorbell_.ring();
  if (dispatcher_.joinable()) dispatcher_.join();
  dispatching_ = false;
  // Anything mailed after the dispatcher saw stop_ still lands.
  drain_lanes();
}

bool Shard::drain_lanes() {
  bool moved = false;
  AdmitMsg msg;
  while (admission_.try_pop(&msg)) {
    for (ShotBatch& b : msg.batches) {
      queue_.push_reserved(std::move(b));
      admitted_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    moved = true;
  }
  ShotBatch batch;
  for (auto& lane : inbound_) {
    while (lane->try_pop(&batch)) {
      queue_.push_retry(std::move(batch));
      moved = true;
    }
  }
  return moved;
}

void Shard::dispatch_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!drain_lanes()) {
      if (doorbell_.wait(kDispatchParkBackstop)) {
        doorbell_wakeups_.fetch_add(1, std::memory_order_relaxed);
        AQ_COUNTER_ADD("serve.shard.doorbell_wakeups", 1);
      } else {
        doorbell_backstops_.fetch_add(1, std::memory_order_relaxed);
        AQ_COUNTER_ADD("serve.shard.doorbell_backstops", 1);
      }
    }
  }
  drain_lanes();
}

ShardStats Shard::stats() const {
  ShardStats s;
  s.shard = index_;
  s.first_qpu = first_qpu_;
  s.num_qpus = num_qpus_;
  s.capacity = capacity_;
  s.admitted_batches = admitted_batches_.load(std::memory_order_relaxed);
  s.reserve_rejects = reserve_rejects_.load(std::memory_order_relaxed);
  s.cross_shard_in = cross_in_.load(std::memory_order_relaxed);
  s.cross_shard_out = cross_out_.load(std::memory_order_relaxed);
  s.mailbox_full_spins = full_spins_.load(std::memory_order_relaxed);
  s.doorbell_wakeups = doorbell_wakeups_.load(std::memory_order_relaxed);
  s.doorbell_backstops = doorbell_backstops_.load(std::memory_order_relaxed);
  s.lock_wait_ns = queue_.lock_wait_ns();
  s.lock_contentions = queue_.lock_contentions();
  return s;
}

}  // namespace arbiterq::serve
