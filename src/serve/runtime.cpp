#include "arbiterq/serve/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::serve {
namespace {

double wall_now_us() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(t).count();
}

/// Nearest-rank percentile (q in [0, 1]); reorders `v`.
double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

/// ServeConfig::class_lanes mapping: tighter class, higher lane.
JobPriority class_lane(monitor::SloClass cls) {
  switch (cls) {
    case monitor::SloClass::kLatencyBound:
      return JobPriority::kHigh;
    case monitor::SloClass::kThroughputBound:
      return JobPriority::kNormal;
    case monitor::SloClass::kBestEffort:
      return JobPriority::kLow;
  }
  return JobPriority::kNormal;
}

std::uint64_t trace_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

std::string job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kPending:
      return "pending";
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kExpired:
      return "expired";
    case JobStatus::kFailed:
      return "failed";
  }
  throw std::logic_error("job_status_name: unknown status");
}

ServingRuntime::ServingRuntime(
    const std::vector<qnn::QnnExecutor>& executors,
    std::vector<std::vector<double>> weights,
    std::vector<core::BehavioralVector> behavioral, ServeConfig config,
    const FaultInjector* faults, monitor::FleetHealthMonitor* monitor,
    FlightRecorder* flight, monitor::SloEngine* slo)
    : executors_(executors),
      weights_(std::move(weights)),
      behavioral_(std::move(behavioral)),
      config_(config),
      faults_(faults),
      monitor_(monitor),
      flight_(flight),
      slo_(slo),
      root_(config.seed),
      dropout_noted_(executors.size(), false),
      qpu_shots_(executors.size(), 0.0),
      qpu_busy_us_(executors.size(), 0.0) {
  if (executors_.empty()) {
    throw std::invalid_argument("ServingRuntime: empty fleet");
  }
  if (weights_.size() != executors_.size() ||
      behavioral_.size() != executors_.size()) {
    throw std::invalid_argument(
        "ServingRuntime: weights/behavioral size mismatch");
  }
  if (config_.shots_per_job <= 0) {
    throw std::invalid_argument("ServingRuntime: shots_per_job must be > 0");
  }
  // Tenant table: configured rows plus the implicit catch-all slot that
  // absorbs unknown/unnamed tenants. Built before the shards so every
  // shard's queue is sized for the same tenant universe.
  if (!config_.tenants.empty()) {
    tenants_ = config_.tenants;
    TenantSpec other;
    other.name = "other";
    tenants_.push_back(std::move(other));
    tenant_qos_.resize(tenants_.size());
    tenant_labels_.reserve(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      tenant_labels_.push_back(telemetry::safe_label(tenants_[t].name, 64));
      // Admission-credit buckets start full: a tenant may spend its
      // whole burst at clock 0.
      tenant_qos_[t].tokens = tenants_[t].admit_burst;
      if (!tenants_[t].name.empty()) {
        tenant_ids_.emplace(tenants_[t].name,
                            static_cast<std::uint32_t>(t));
      }
    }
  }
  ArbiterConfig arb;
  arb.kind = config_.arbiter;
  for (const TenantSpec& t : tenants_) arb.weights.push_back(t.weight);
  const std::size_t num_tenants = tenants_.empty() ? 1 : tenants_.size();
  // Carve the fleet into contiguous QPU blocks, one shard each, and
  // split the admission budget evenly. Shard boundaries are a function
  // of (fleet size, shard count) alone — routing never consults them —
  // so per-job results are invariant across shard counts.
  const std::size_t n = executors_.size();
  const std::size_t num_shards = std::clamp<std::size_t>(
      config_.num_shards <= 0 ? 1
                              : static_cast<std::size_t>(config_.num_shards),
      1, n);
  const std::size_t total_cap =
      config_.queue_capacity == 0 ? 1 : config_.queue_capacity;
  shards_.reserve(num_shards);
  shard_by_qpu_.resize(n);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t first = s * n / num_shards;
    const std::size_t last = (s + 1) * n / num_shards;
    shards_.push_back(std::make_unique<Shard>(
        s, first, last - first,
        std::max<std::size_t>(1, total_cap / num_shards), num_shards,
        num_tenants, arb));
    // shard_of() must be the exact inverse of this block layout, so it
    // serves from a table filled here rather than a re-derivation.
    for (std::size_t q = first; q < last; ++q) shard_by_qpu_[q] = s;
  }
  if (monitor_ != nullptr) {
    std::vector<int> shard_by_qpu(n);
    for (std::size_t q = 0; q < n; ++q) {
      shard_by_qpu[q] = static_cast<int>(shard_of(static_cast<int>(q)));
    }
    monitor_->set_shard_map(std::move(shard_by_qpu));
  }
  AQ_GAUGE_SET("serve.shards", static_cast<double>(num_shards));
  // Epoch 0: the full fleet's partition, built eagerly so routing never
  // races with lazy construction elsewhere.
  std::vector<int> all(executors_.size());
  for (std::size_t q = 0; q < all.size(); ++q) all[q] = static_cast<int>(q);
  partitions_.push_back(core::repartition_alive(behavioral_, weights_, all,
                                                config_.num_tori));
  torus_rate_.emplace_back();
  credit_.emplace_back();
  std::size_t members0 = 0;
  for (const auto& torus : partitions_[0].tori) {
    double rate = 0.0;
    for (int q : torus) rate += executors_[static_cast<std::size_t>(q)]
                                    .shot_rate();
    torus_rate_[0].push_back(rate);
    credit_[0].push_back(0.0);
    members0 += torus.size();
  }
  epoch_alive_.push_back(std::max<std::size_t>(1, members0));
  // The shot-latency cache and modeled lane clocks feed the admission
  // clock, the tenant quotas, and the wait model — needed with or
  // without a time-series sink.
  shot_lat_us_.reserve(executors_.size());
  for (const auto& ex : executors_) {
    shot_lat_us_.push_back(ex.shot_latency_us());
  }
  qpu_clock_us_.assign(executors_.size(), 0.0);
  if (config_.series != nullptr) {
    telemetry::TimeSeriesStore& ts = *config_.series;
    ts_admitted_ = ts.series("serve.ts.admitted",
                             telemetry::SeriesKind::kEvent);
    ts_completed_ = ts.series("serve.ts.completed",
                              telemetry::SeriesKind::kEvent);
    ts_latency_ = ts.series("serve.ts.virtual_latency_us",
                            telemetry::SeriesKind::kHistogram,
                            telemetry::latency_buckets_us());
    ts_admitted_shard_.resize(shards_.size());
    ts_completed_shard_.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ts_admitted_shard_[s] =
          ts.series("serve.ts.admitted.shard" + std::to_string(s),
                    telemetry::SeriesKind::kEvent);
      ts_completed_shard_[s] =
          ts.series("serve.ts.completed.shard" + std::to_string(s),
                    telemetry::SeriesKind::kEvent);
    }
    // Slot-indexed tenant series, resolved up front so the finalize
    // path (worker threads) reads the vectors without a lock. The lazy
    // name-keyed map stays for runs without a tenant table.
    ts_tenant_admitted_.resize(tenants_.size());
    ts_tenant_completed_.resize(tenants_.size());
    ts_tenant_latency_.resize(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      ts_tenant_admitted_[t] =
          ts.series("serve.ts.admitted.tenant." + tenant_labels_[t],
                    telemetry::SeriesKind::kEvent);
      ts_tenant_completed_[t] =
          ts.series("serve.ts.completed.tenant." + tenant_labels_[t],
                    telemetry::SeriesKind::kEvent);
      ts_tenant_latency_[t] =
          ts.series("serve.ts.virtual_latency_us.tenant." + tenant_labels_[t],
                    telemetry::SeriesKind::kHistogram,
                    telemetry::latency_buckets_us());
    }
  }
  inflight_ = std::make_unique<std::atomic<int>[]>(executors_.size());
  for (std::size_t q = 0; q < executors_.size(); ++q) {
    inflight_[q].store(0, std::memory_order_relaxed);
  }
  if (config_.gauge_cadence_us > 0.0) {
    gauge_next_us_.store(
        static_cast<std::uint64_t>(config_.gauge_cadence_us),
        std::memory_order_relaxed);
  }
  AQ_GAUGE_SET("serve.fleet.alive", static_cast<double>(executors_.size()));
  if (config_.autostart) start();
}

ServingRuntime::~ServingRuntime() {
  if (started_ && !drained_) {
    {
      // Under the routing lock: an in-flight submit finishes mailing
      // before the flag flips, and later submits reject cleanly.
      std::lock_guard<std::mutex> lock(route_mu_);
      accepting_.store(false, std::memory_order_release);
    }
    // Abandon mode before the dispatchers stop: a worker spinning in
    // send_retry on a full inter-shard lane must drop its batch once
    // nothing drains that lane, or the worker joins below would hang.
    for (auto& shard : shards_) shard->abandon();
    // Dispatchers flush their mailboxes into the queues on stop; abort
    // then wakes every popper and abandons what remains.
    for (auto& shard : shards_) shard->stop_dispatch();
    for (auto& shard : shards_) shard->queue().abort();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    drained_ = true;
  }
}

void ServingRuntime::start() {
  if (started_ || drained_) return;
  started_ = true;
  for (auto& shard : shards_) {
    // Jobs staged before start() (autostart=false) are still sitting in
    // the admission mailbox; land them in the queue before any worker or
    // dispatcher runs so the per-lane arbiters grant over the complete
    // backlog — the saturated-replay determinism contract.
    shard->flush_pending();
    shard->start_dispatch();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t lanes = shards_[s]->num_qpus();
    const std::size_t per_shard =
        config_.workers_per_shard <= 0
            ? lanes
            : std::min<std::size_t>(
                  static_cast<std::size_t>(config_.workers_per_shard),
                  lanes);
    for (std::size_t w = 0; w < per_shard; ++w) {
      workers_.emplace_back(&ServingRuntime::worker_main, this, s, w,
                            per_shard);
    }
  }
}

std::optional<std::uint64_t> ServingRuntime::submit(const JobSpec& spec) {
  std::unique_lock<std::mutex> route(route_mu_);
  const std::uint64_t id = next_job_++;
  const bool traced =
      telemetry::telemetry_runtime_enabled() &&
      config_.trace_sample_every > 0 &&
      id % static_cast<std::uint64_t>(config_.trace_sample_every) == 0;
  const std::uint64_t route_start_ns =
      traced ? telemetry::trace_now_ns() : 0;
  if (first_submit_wall_us_ == 0.0) first_submit_wall_us_ = wall_now_us();

  // Open-loop arrivals pin the modeled admission clock to the generated
  // timeline (monotone: out-of-order stamps never rewind it); closed-
  // loop submits advance it by modeled cost below, after admission.
  if (spec.arrival_us >= 0.0 && spec.arrival_us > admit_clock_us_) {
    admit_clock_us_ = spec.arrival_us;
  }
  const bool qos = !tenants_.empty();
  const std::uint32_t tenant_id =
      qos ? resolve_tenant_locked(spec.tenant) : 0;
  const int job_shots =
      spec.shots > 0 ? spec.shots : config_.shots_per_job;
  const JobPriority priority =
      config_.class_lanes ? class_lane(spec.slo_class) : spec.priority;

  const std::size_t epoch =
      faults_ != nullptr ? faults_->routing_epoch(id) : 0;
  ensure_epoch_locked(epoch);
  const core::TorusPartition& part = partitions_[epoch];

  // Torus choice: credit-based largest-remainder weighted round-robin,
  // proportional to torus shot throughput (the scheduler's
  // batch_based_inference discipline, lifted to the serving plane).
  std::vector<double>& credit = credit_[epoch];
  const std::vector<double>& rate = torus_rate_[epoch];
  double total_rate = 0.0;
  for (double r : rate) total_rate += r;
  std::size_t pick = 0;
  if (total_rate > 0.0 && !rate.empty()) {
    for (std::size_t t = 0; t < rate.size(); ++t) {
      credit[t] += rate[t] / total_rate;
    }
    for (std::size_t t = 1; t < credit.size(); ++t) {
      if (credit[t] > credit[pick]) pick = t;
    }
    credit[pick] -= 1.0;
  }
  const std::vector<int>& members = part.tori[pick];

  // Shot split across the torus by shot-rate share (§IV): round, last
  // member absorbs the remainder, zero-shot members are skipped.
  double member_rate = 0.0;
  for (int q : members) {
    member_rate += executors_[static_cast<std::size_t>(q)].shot_rate();
  }
  std::vector<std::pair<int, int>> split;  // (qpu, shots)
  int remaining = job_shots;
  for (std::size_t i = 0; i < members.size() && remaining > 0; ++i) {
    const int q = members[i];
    int shots;
    if (i + 1 == members.size()) {
      shots = remaining;
    } else {
      const double share =
          member_rate > 0.0
              ? executors_[static_cast<std::size_t>(q)].shot_rate() /
                    member_rate
              : 1.0 / static_cast<double>(members.size());
      shots = static_cast<int>(std::lround(share * job_shots));
      shots = std::clamp(shots, 0, remaining);
    }
    if (shots <= 0) continue;
    remaining -= shots;
    split.emplace_back(q, shots);
  }
  if (split.empty()) {
    split.emplace_back(members.front(), job_shots);
  }
  // Modeled serial execution cost of the split: advances the admission
  // clock on admit and stamps the tenant's in-flight window.
  double modeled_us = 0.0;
  for (const auto& [q, shots] : split) {
    modeled_us += static_cast<double>(shots) *
                  shot_lat_us_[static_cast<std::size_t>(q)];
  }

  // Create the job row before admission so a rejection still records.
  JobState* job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.emplace_back();
    job = &jobs_.back();
  }
  job->id = id;
  job->features = spec.features;
  job->label = spec.label;
  job->priority = priority;
  job->deadline_us =
      spec.deadline_us >= 0.0 ? spec.deadline_us : config_.deadline_us;
  job->epoch = epoch;
  job->torus = pick;
  job->tenant = spec.tenant;
  job->tenant_id = tenant_id;
  job->shots = job_shots;
  job->slo_class = spec.slo_class;
  job->traced = traced;
  if (traced) {
    job->root_span = telemetry::allocate_span_id();
    job->submit_ns = route_start_ns;
    job->flow_label = telemetry::safe_label(
        "job-" + std::to_string(id) +
        (spec.tenant.empty() ? std::string() : " tenant=" + spec.tenant));
  }
  if (flight_ != nullptr) {
    FlightEvent ev;
    ev.kind = FlightEventKind::kRoute;
    ev.value = static_cast<double>(pick);
    job->route_events.push_back(ev);
  }
  job->home_shard = shard_of(split.front().first);
  job->slots.resize(split.size());
  job->pending.store(static_cast<int>(split.size()),
                     std::memory_order_release);
  job->submit_wall_us = wall_now_us();

  // Tenant quotas, evaluated on the modeled admission clock *before*
  // capacity reservation: both decisions are pure functions of the
  // arrival sequence (unlike the live-occupancy capacity check), so the
  // quota-admitted set is bit-identical across runs and shard counts.
  if (qos) {
    const TenantSpec& tspec = tenants_[tenant_id];
    TenantQos& tq = tenant_qos_[tenant_id];
    const double now = admit_clock_us_;
    // Retire in-flight entries whose modeled completion has passed.
    while (!tq.inflight_done_us.empty() &&
           tq.inflight_done_us.front() <= now) {
      std::pop_heap(tq.inflight_done_us.begin(), tq.inflight_done_us.end(),
                    std::greater<>());
      tq.inflight_done_us.pop_back();
    }
    if (tspec.admit_rate_per_s > 0.0) {
      tq.tokens = std::min(
          tspec.admit_burst,
          tq.tokens +
              (now - tq.token_stamp_us) * tspec.admit_rate_per_s * 1e-6);
      tq.token_stamp_us = now;
    }
    FlightEventKind reject_kind = FlightEventKind::kQuotaReject;
    double reject_value = 0.0;
    bool quota_reject = false;
    if (tspec.max_in_flight > 0 &&
        tq.inflight_done_us.size() >= tspec.max_in_flight) {
      quota_reject = true;
      ++tq.quota_rejected;
      reject_value = static_cast<double>(tq.inflight_done_us.size());
      AQ_COUNTER_ADD("serve.jobs.rejected.quota", 1);
    } else if (tspec.admit_rate_per_s > 0.0 && tq.tokens < 1.0) {
      quota_reject = true;
      ++tq.throttled;
      reject_kind = FlightEventKind::kThrottle;
      reject_value = tq.tokens;
      AQ_COUNTER_ADD("serve.jobs.rejected.throttled", 1);
    }
    if (quota_reject) {
      route.unlock();
      job->status = JobStatus::kRejected;
      job->pending.store(0, std::memory_order_release);
      AQ_COUNTER_ADD("serve.jobs.rejected", 1);
      if (flight_ != nullptr) {
        FlightEvent ev;
        ev.kind = reject_kind;
        ev.value = reject_value;
        job->route_events.push_back(ev);
        flight_dump(*job);
      }
      if (slo_ != nullptr) {
        slo_->observe_job(job->slo_class, 0.0, false,
                          static_cast<int>(job->home_shard), job->tenant);
      }
      if (traced) trace_root(*job);
      return std::nullopt;
    }
  }

  std::vector<ShotBatch> batches;
  std::vector<std::size_t> batch_shard;
  batches.reserve(split.size());
  batch_shard.reserve(split.size());
  for (std::size_t s = 0; s < split.size(); ++s) {
    ShotBatch b;
    b.job = id;
    b.slot = s;
    b.qpu = split[s].first;
    b.shots = split[s].second;
    b.attempt = 0;
    b.priority = priority;
    b.tenant = tenant_id;
    batches.push_back(std::move(b));
    batch_shard.push_back(shard_of(split[s].first));
  }

  // All-or-nothing admission: reserve capacity on every shard the split
  // touches; any refusal rolls the rest back and rejects the job
  // synchronously — backpressure never leaves submit().
  std::vector<std::pair<std::size_t, std::size_t>> need;  // (shard, count)
  for (std::size_t s : batch_shard) {
    bool found = false;
    for (auto& p : need) {
      if (p.first == s) {
        ++p.second;
        found = true;
        break;
      }
    }
    if (!found) need.emplace_back(s, 1);
  }
  bool reserved = accepting_.load(std::memory_order_acquire);
  std::size_t reserved_upto = 0;
  if (reserved) {
    for (; reserved_upto < need.size(); ++reserved_upto) {
      if (!shards_[need[reserved_upto].first]->try_reserve(
              need[reserved_upto].second)) {
        reserved = false;
        break;
      }
    }
  }
  if (!reserved) {
    for (std::size_t i = 0; i < reserved_upto; ++i) {
      shards_[need[i].first]->release(need[i].second);
    }
    route.unlock();
    job->status = JobStatus::kRejected;
    job->pending.store(0, std::memory_order_release);
    AQ_COUNTER_ADD("serve.jobs.rejected", 1);
    if (flight_ != nullptr) {
      FlightEvent ev;
      ev.kind = FlightEventKind::kReject;
      ev.value = static_cast<double>(queue_depth());
      job->route_events.push_back(ev);
      flight_dump(*job);
    }
    if (slo_ != nullptr) {
      slo_->observe_job(job->slo_class, 0.0, false,
                        static_cast<int>(job->home_shard), job->tenant);
    }
    if (traced) trace_root(*job);
    return std::nullopt;
  }

  outstanding_.fetch_add(batches.size(), std::memory_order_release);
  // Stamp the job on the modeled admission clock. Closed-loop submits
  // advance it by the job's modeled serial cost spread over the epoch's
  // alive fleet (an idealized perfectly-parallel fleet clock); open-loop
  // submits already pinned it to the arrival stamp above. Pure function
  // of the admitted sequence (routing lock held), so the recorded
  // series reproduces bit-identically.
  if (spec.arrival_us < 0.0) {
    admit_clock_us_ += modeled_us / static_cast<double>(epoch_alive_[epoch]);
  }
  job->admit_virtual_us = admit_clock_us_;
  if (qos) {
    // Consume quota only for actually-admitted jobs: a capacity reject
    // below this point cannot happen (reservation succeeded), so the
    // consumed state stays a pure function of the arrival sequence.
    const TenantSpec& tspec = tenants_[tenant_id];
    TenantQos& tq = tenant_qos_[tenant_id];
    if (tspec.admit_rate_per_s > 0.0) tq.tokens -= 1.0;
    if (tspec.max_in_flight > 0) {
      tq.inflight_done_us.push_back(admit_clock_us_ + modeled_us);
      std::push_heap(tq.inflight_done_us.begin(), tq.inflight_done_us.end(),
                     std::greater<>());
    }
  }
  if (config_.series != nullptr) {
    config_.series->observe(ts_admitted_, admit_clock_us_, 1.0);
    config_.series->observe(ts_admitted_shard_[job->home_shard],
                            admit_clock_us_, 1.0);
    if (qos) {
      config_.series->observe(ts_tenant_admitted_[tenant_id],
                              admit_clock_us_, 1.0);
    } else if (!job->tenant.empty()) {
      auto it = ts_tenant_.find(job->tenant);
      if (it == ts_tenant_.end()) {
        it = ts_tenant_
                 .emplace(job->tenant,
                          config_.series->series(
                              "serve.ts.admitted.tenant." +
                                  telemetry::safe_label(job->tenant, 64),
                              telemetry::SeriesKind::kEvent))
                 .first;
      }
      config_.series->observe(it->second, admit_clock_us_, 1.0);
    }
  }
  if (traced) {
    const std::uint64_t now = telemetry::trace_now_ns();
    trace_child(*job, "serve.job.route", route_start_ns, now);
    for (ShotBatch& b : batches) b.enqueue_ns = now;
  }

  // Mail each shard its slice, slot order preserved, while still
  // holding the routing lock — that lock is what makes this thread the
  // admission lanes' single producer (SPSC, see mailbox.hpp).
  for (const auto& [shard, count] : need) {
    AdmitMsg msg;
    msg.batches.reserve(count);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      if (batch_shard[i] == shard) msg.batches.push_back(std::move(batches[i]));
    }
    shards_[shard]->admit(std::move(msg));
  }
  route.unlock();
  AQ_COUNTER_ADD("serve.jobs.admitted", 1);
  return id;
}

void ServingRuntime::ensure_epoch_locked(std::size_t epoch) {
  while (partitions_.size() <= epoch) {
    const std::size_t next = partitions_.size();
    // The dropouts that define this epoch are now router-visible:
    // record them (monitor + counters) exactly once.
    for (std::size_t i = 0; i < next && i < faults_->dropouts().size();
         ++i) {
      note_dropout(faults_->dropouts()[i].qpu);
    }
    // Scoped rebuild: epoch k removes the k-th dropout from the one
    // torus that contains it (core::repartition_torus), leaving every
    // other torus — and therefore every other shard's routing — byte-
    // identical to the previous epoch. A dropout is contained to its
    // torus instead of reshuffling the fleet.
    const core::TorusPartition& prev = partitions_[next - 1];
    const int dead_qpu = faults_->dropouts()[next - 1].qpu;
    bool member = false;
    for (const auto& torus : prev.tori) {
      for (int q : torus) {
        if (q == dead_qpu) {
          member = true;
          break;
        }
      }
    }
    partitions_.push_back(member ? core::repartition_torus(prev, dead_qpu)
                                 : prev);
    torus_rate_.emplace_back();
    credit_.emplace_back();
    std::size_t members = 0;
    for (const auto& torus : partitions_[next].tori) {
      double rate = 0.0;
      for (int q : torus) {
        rate += executors_[static_cast<std::size_t>(q)].shot_rate();
      }
      torus_rate_[next].push_back(rate);
      credit_[next].push_back(0.0);
      members += torus.size();
    }
    epoch_alive_.push_back(std::max<std::size_t>(1, members));
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++repartitions_;
    }
    AQ_COUNTER_ADD("serve.repartitions", 1);
    AQ_GAUGE_SET("serve.fleet.alive",
                 static_cast<double>(faults_->alive_at_epoch(next).size()));
  }
}

void ServingRuntime::note_dropout(int qpu) {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto i = static_cast<std::size_t>(qpu);
    if (i < dropout_noted_.size() && !dropout_noted_[i]) {
      dropout_noted_[i] = true;
      ++dropouts_detected_;
      fresh = true;
    }
  }
  if (!fresh) return;
  AQ_COUNTER_ADD("serve.qpu.dropouts", 1);
  if (monitor_ != nullptr) monitor_->observe_membership(qpu, false);
}

std::uint32_t ServingRuntime::resolve_tenant_locked(
    const std::string& name) const {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  // Unknown or empty tenant: the catch-all slot the constructor
  // appended after the configured rows.
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

ServingRuntime::JobState* ServingRuntime::job_ptr(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return &jobs_[static_cast<std::size_t>(id)];
}

void ServingRuntime::worker_main(std::size_t shard_index, std::size_t worker,
                                 std::size_t stride) {
  Shard& shard = *shards_[shard_index];
  // Striped lane ownership: local lane l belongs to worker l % stride,
  // so every QPU still has exactly one worker touching its accounting.
  std::vector<std::size_t> lanes;
  for (std::size_t l = worker; l < shard.num_qpus(); l += stride) {
    lanes.push_back(l);
  }
  ShotBatch batch;
  bool was_admitted = false;
  while (shard.queue().pop_any(lanes, &batch, &was_admitted)) {
    // An admitted batch frees its shard reservation the moment it is
    // popped — the same lifetime the queue's own admission bound had.
    if (was_admitted) shard.release(1);
    const int qpu = batch.qpu;
    std::atomic<int>& inflight = inflight_[static_cast<std::size_t>(qpu)];
    inflight.fetch_add(1, std::memory_order_relaxed);
    process_batch(qpu, std::move(batch));
    inflight.fetch_sub(1, std::memory_order_relaxed);
    shard.queue().task_done();
  }
}

void ServingRuntime::process_batch(int qpu, ShotBatch batch) {
  AQ_TRACE_SPAN("serve.worker.execute");
  JobState& job = *job_ptr(batch.job);
  BatchSlot& slot = job.slots[batch.slot];
  const auto uq = static_cast<std::size_t>(qpu);
  const int si = static_cast<int>(batch.slot);

  // Queue-wait span for traced jobs: enqueue -> this pop.
  std::uint64_t now_ns = 0;
  if (job.traced) {
    now_ns = telemetry::trace_now_ns();
    if (batch.enqueue_ns != 0) {
      trace_child(job, "serve.batch.wait", batch.enqueue_ns, now_ns);
    }
  }

  // Dead device: the batch landed inside the detection window (or was
  // already queued when the QPU died). Detect, then re-route with no
  // backoff — a dropout is recognized immediately, unlike a transient.
  if (dead(qpu, job.id)) {
    note_dropout(qpu);
    AQ_COUNTER_ADD("serve.batches.failed", 1);
    flight_note(slot, FlightEventKind::kDropoutFault, si, batch.attempt,
                qpu, slot.chain_us, 0.0);
    if (job.traced) {
      trace_child(job, "serve.batch.fault.dropout", now_ns,
                  telemetry::trace_now_ns());
    }
    reroute(job, std::move(batch), qpu, /*backoff=*/false);
    return;
  }

  if (faults_ != nullptr &&
      faults_->transient_failure(job.id, qpu, batch.attempt)) {
    AQ_COUNTER_ADD("serve.batches.failed", 1);
    flight_note(slot, FlightEventKind::kTransientFault, si, batch.attempt,
                qpu, slot.chain_us, 0.0);
    if (job.traced) {
      trace_child(job, "serve.batch.fault.transient", now_ns,
                  telemetry::trace_now_ns());
    }
    reroute(job, std::move(batch), qpu, /*backoff=*/true);
    return;
  }

  // Modeled hardware time for this execution.
  const qnn::QnnExecutor& exec = executors_[uq];
  double mult = 1.0;
  if (faults_ != nullptr) {
    mult = faults_->latency_multiplier(job.id, qpu, batch.attempt);
  }
  const double exec_us =
      static_cast<double>(batch.shots) * exec.shot_latency_us() * mult;
  const double chain_before_us = slot.chain_us;
  slot.chain_us += exec_us;
  qpu_busy_us_[uq] += exec_us;
  // Wait model: the batch starts when both the lane is free and the
  // batch is ready (admission stamp + any prior failed attempts or
  // backoffs on its chain). The lane clock is single-writer — only this
  // QPU's worker touches it — and advances whether the batch executes
  // or expires (either way it occupied the device).
  double elapsed_us = slot.chain_us;
  if (config_.model_queue_wait) {
    const double ready_us = job.admit_virtual_us + chain_before_us;
    const double start_us = std::max(qpu_clock_us_[uq], ready_us);
    slot.finish_us = start_us + exec_us;
    qpu_clock_us_[uq] = slot.finish_us;
    elapsed_us = slot.finish_us - job.admit_virtual_us;
  }
  if (mult > 1.0) {
    flight_note(slot, FlightEventKind::kLatencySpike, si, batch.attempt,
                qpu, slot.chain_us, mult);
  }
  advance_virtual_time(exec_us);

  // Deadline check on the modeled elapsed time (wait-inclusive under
  // the wait model, chain-only otherwise) *before* burning the
  // execution: an expired batch is dropped, not retried.
  if (job.deadline_us > 0.0 && elapsed_us > job.deadline_us) {
    slot.outcome = BatchSlot::Outcome::kExpired;
    slot.qpu = qpu;
    slot.shots = batch.shots;
    AQ_COUNTER_ADD("serve.batches.expired", 1);
    flight_note(slot, FlightEventKind::kExpire, si, batch.attempt, qpu,
                slot.chain_us, job.deadline_us);
    if (job.traced) {
      trace_child(job, "serve.batch.expire", now_ns,
                  telemetry::trace_now_ns());
    }
    complete_slot(job);
    return;
  }

  math::Rng rng = root_.split("serve").split(job.id).split(
      static_cast<std::uint64_t>(batch.slot) * 97ULL +
      static_cast<std::uint64_t>(batch.attempt));
  // Synthetic mode replaces the state-vector sample with a seeded draw
  // from the same per-(job, slot, attempt) stream — still a pure
  // function of the routing decision, so scale benches keep the
  // bit-identity guarantee without paying for circuit simulation.
  const double p =
      config_.synthetic_execution
          ? rng.uniform(0.0, 1.0)
          : exec.sampled_probability(job.features, weights_[uq],
                                     batch.shots, rng,
                                     config_.trajectories);
  qpu_shots_[uq] += static_cast<double>(batch.shots);

  slot.outcome = BatchSlot::Outcome::kOk;
  slot.qpu = qpu;
  slot.probability = p;
  slot.shots = batch.shots;
  AQ_COUNTER_ADD("serve.batches.executed", 1);
  flight_note(slot, FlightEventKind::kExecute, si, batch.attempt, qpu,
              slot.chain_us, exec_us);
  if (job.traced) {
    trace_child(job, "serve.batch.exec", now_ns, telemetry::trace_now_ns());
  }
  complete_slot(job);
}

void ServingRuntime::reroute(JobState& job, ShotBatch batch, int failed_qpu,
                             bool backoff) {
  BatchSlot& slot = job.slots[batch.slot];
  const int si = static_cast<int>(batch.slot);
  batch.excluded.push_back(failed_qpu);

  if (batch.attempt >= config_.max_retries) {
    slot.outcome = BatchSlot::Outcome::kFailed;
    slot.qpu = failed_qpu;
    slot.shots = batch.shots;
    flight_note(slot, FlightEventKind::kRetriesExhausted, si, batch.attempt,
                failed_qpu, slot.chain_us, 0.0);
    complete_slot(job);
    return;
  }

  // Candidates: the job's torus members, minus every QPU that already
  // failed this batch, minus devices dead for this job; fall back to
  // the whole fleet under the same filters when the torus is exhausted.
  const std::vector<int>& members =
      partition_members_locked_copy(job.epoch, job.torus);
  auto viable = [&](int q) {
    if (dead(q, job.id)) return false;
    for (int e : batch.excluded) {
      if (e == q) return false;
    }
    return true;
  };
  std::vector<int> candidates;
  for (int q : members) {
    if (viable(q)) candidates.push_back(q);
  }
  if (candidates.empty()) {
    for (int q = 0; q < static_cast<int>(executors_.size()); ++q) {
      if (viable(q)) candidates.push_back(q);
    }
  }
  if (candidates.empty()) {
    slot.outcome = BatchSlot::Outcome::kFailed;
    slot.qpu = failed_qpu;
    slot.shots = batch.shots;
    flight_note(slot, FlightEventKind::kRetriesExhausted, si, batch.attempt,
                failed_qpu, slot.chain_us, 0.0);
    complete_slot(job);
    return;
  }

  // Deterministic target: the first candidate cyclically after the
  // failed QPU (candidates are ascending).
  int target = candidates.front();
  for (int q : candidates) {
    if (q > failed_qpu) {
      target = q;
      break;
    }
  }

  if (backoff) {
    // Exponential backoff with deterministic jitter, charged to the
    // batch's modeled chain and slept for real on this worker.
    math::Rng rng = root_.split("backoff").split(job.id).split(
        static_cast<std::uint64_t>(batch.slot) * 97ULL +
        static_cast<std::uint64_t>(batch.attempt));
    const double jitter = rng.uniform(0.5, 1.5);
    const double wait = std::min(
        config_.backoff_base_us * std::ldexp(jitter, batch.attempt),
        config_.backoff_max_us);
    slot.chain_us += wait;
    flight_note(slot, FlightEventKind::kBackoff, si, batch.attempt,
                failed_qpu, slot.chain_us, wait);
    const std::uint64_t backoff_start_ns =
        job.traced ? telemetry::trace_now_ns() : 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(wait));
    if (job.traced) {
      trace_child(job, "serve.batch.backoff", backoff_start_ns,
                  telemetry::trace_now_ns());
    }
  }

  ++batch.attempt;
  batch.qpu = target;
  flight_note(slot, FlightEventKind::kReroute, si, batch.attempt,
              failed_qpu, slot.chain_us, static_cast<double>(target));
  job.retries.fetch_add(1, std::memory_order_relaxed);
  AQ_COUNTER_ADD("serve.retries", 1);
  if (job.traced) batch.enqueue_ns = telemetry::trace_now_ns();
  // Same shard: straight into the queue (this worker is already on the
  // shard's lock). Sibling shard: over the bounded inter-shard lane —
  // the failed shard's congestion never touches the target's queue lock
  // from under the routing path.
  const std::size_t from = shard_of(failed_qpu);
  const std::size_t to = shard_of(target);
  if (to == from) {
    shards_[to]->queue().push_retry(std::move(batch));
  } else {
    AQ_COUNTER_ADD("serve.shard.cross_sends", 1);
    Shard::send_retry(*shards_[from], *shards_[to], std::move(batch));
  }
}

std::vector<int> ServingRuntime::partition_members_locked_copy(
    std::size_t epoch, std::size_t torus) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return partitions_[epoch].tori[torus];
}

void ServingRuntime::complete_slot(JobState& job) {
  if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finalize(job);
  }
  // One decrement per admitted slot reaching a terminal outcome; the
  // drain() barrier spins on this hitting zero.
  outstanding_.fetch_sub(1, std::memory_order_release);
}

void ServingRuntime::finalize(JobState& job) {
  // Fold slots in index order: completion order never touches the FP
  // reduction, so the probability is schedule-independent.
  double weighted = 0.0;
  double total_shots = 0.0;
  bool any_failed = false;
  bool any_expired = false;
  double vlat = 0.0;
  for (const BatchSlot& slot : job.slots) {
    switch (slot.outcome) {
      case BatchSlot::Outcome::kOk:
        weighted += slot.probability * static_cast<double>(slot.shots);
        total_shots += static_cast<double>(slot.shots);
        break;
      case BatchSlot::Outcome::kFailed:
        any_failed = true;
        break;
      case BatchSlot::Outcome::kExpired:
        any_expired = true;
        break;
      case BatchSlot::Outcome::kPending:
        any_failed = true;  // unreachable; defensive
        break;
    }
    // Wait model: a slot's latency is its lane-clock finish relative to
    // the admission stamp; slots that never reached a device (faulted
    // out) fall back to their chain time.
    vlat = std::max(vlat, config_.model_queue_wait && slot.finish_us > 0.0
                              ? slot.finish_us - job.admit_virtual_us
                              : slot.chain_us);
  }
  job.probability = total_shots > 0.0 ? weighted / total_shots : 0.5;
  job.loss = qnn::loss_value(config_.loss, job.probability, job.label);
  job.virtual_latency_us = vlat;
  job.wall_latency_us = wall_now_us() - job.submit_wall_us;

  if (any_failed) {
    job.status = JobStatus::kFailed;
    AQ_COUNTER_ADD("serve.jobs.failed", 1);
  } else if (any_expired ||
             (job.deadline_us > 0.0 && vlat > job.deadline_us)) {
    job.status = JobStatus::kExpired;
    AQ_COUNTER_ADD("serve.jobs.expired", 1);
  } else {
    job.status = JobStatus::kOk;
    AQ_COUNTER_ADD("serve.jobs.completed", 1);
  }
  AQ_HISTOGRAM_OBSERVE("serve.job.latency_us",
                       telemetry::latency_buckets_us(),
                       job.wall_latency_us);
  AQ_HISTOGRAM_OBSERVE("serve.job.virtual_latency_us",
                       telemetry::latency_buckets_us(),
                       job.virtual_latency_us);
  if (telemetry::telemetry_runtime_enabled()) {
    // Names vary at runtime (per class / per tenant), so these bypass
    // the static-caching AQ_* macros and hit the registry directly.
    auto& reg = telemetry::MetricsRegistry::global();
    reg.histogram("serve.job.virtual_latency_us." +
                      monitor::slo_class_name(job.slo_class),
                  telemetry::latency_buckets_us())
        .observe(job.virtual_latency_us);
    if (!job.tenant.empty()) {
      reg.counter("serve.tenant.jobs." +
                  telemetry::safe_label(job.tenant, 64))
          .add(1);
    }
  }
  if (config_.series != nullptr) {
    // Completion stamped at modeled admission + modeled latency: still a
    // pure function of the job, so the series stays schedule-invariant.
    const double t = job.admit_virtual_us + job.virtual_latency_us;
    config_.series->observe(ts_completed_, t, 1.0);
    config_.series->observe(ts_completed_shard_[job.home_shard], t, 1.0);
    config_.series->observe(ts_latency_, t, job.virtual_latency_us);
    if (!tenants_.empty()) {
      config_.series->observe(ts_tenant_completed_[job.tenant_id], t, 1.0);
      config_.series->observe(ts_tenant_latency_[job.tenant_id], t,
                              job.virtual_latency_us);
    }
  }
  if (slo_ != nullptr) {
    slo_->observe_job(job.slo_class, job.virtual_latency_us,
                      job.status == JobStatus::kOk,
                      static_cast<int>(job.home_shard), job.tenant);
  }
  if (flight_ != nullptr && job.status != JobStatus::kOk) {
    flight_dump(job);
  }
  if (job.traced) trace_root(job);
}

void ServingRuntime::trace_child(const JobState& job, const char* name,
                                 std::uint64_t start_ns,
                                 std::uint64_t end_ns) const {
  telemetry::TraceEvent e;
  e.name = name;
  e.id = telemetry::allocate_span_id();
  e.parent_id = job.root_span;
  e.depth = 1;
  e.start_ns = start_ns;
  e.duration_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  e.thread_id = trace_thread_hash();
  e.flow_id = job.id + 1;
  e.flow_label = job.flow_label;
  telemetry::TraceBuffer::global().record(std::move(e));
}

void ServingRuntime::trace_root(const JobState& job) const {
  // Children were recorded as they completed, so emitting the root
  // last preserves the buffer's completion-order invariant.
  telemetry::TraceEvent e;
  e.name = "serve.job";
  e.id = job.root_span;
  e.parent_id = 0;
  e.depth = 0;
  e.start_ns = job.submit_ns;
  const std::uint64_t now = telemetry::trace_now_ns();
  e.duration_ns = now > job.submit_ns ? now - job.submit_ns : 0;
  e.thread_id = trace_thread_hash();
  e.flow_id = job.id + 1;
  e.flow_label = job.flow_label;
  telemetry::TraceBuffer::global().record(std::move(e));
}

void ServingRuntime::flight_note(BatchSlot& slot, FlightEventKind kind,
                                 int slot_index, int attempt, int qpu,
                                 double virtual_us, double value) {
  if (flight_ == nullptr) return;
  FlightEvent ev;
  ev.kind = kind;
  ev.slot = slot_index;
  ev.attempt = attempt;
  ev.qpu = qpu;
  ev.virtual_us = virtual_us;
  ev.value = value;
  slot.flight.push_back(ev);
}

void ServingRuntime::flight_dump(const JobState& job) {
  FlightRecord rec;
  rec.job = job.id;
  rec.tenant = telemetry::safe_label(job.tenant, 64);
  rec.slo_class = monitor::slo_class_name(job.slo_class);
  rec.status = job_status_name(job.status);
  rec.epoch = job.epoch;
  rec.torus = job.torus;
  rec.shots = job.shots > 0 ? job.shots : config_.shots_per_job;
  rec.retries = job.retries.load(std::memory_order_relaxed);
  rec.virtual_latency_us = job.virtual_latency_us;
  rec.events = job.route_events;
  for (const BatchSlot& slot : job.slots) {
    rec.events.insert(rec.events.end(), slot.flight.begin(),
                      slot.flight.end());
  }
  flight_->record(std::move(rec));
}

void ServingRuntime::advance_virtual_time(double us) {
  if (config_.gauge_cadence_us <= 0.0 || us <= 0.0) return;
  if (!telemetry::telemetry_runtime_enabled()) return;
  const auto inc = static_cast<std::uint64_t>(us);
  const std::uint64_t total =
      virtual_us_acc_.fetch_add(inc, std::memory_order_relaxed) + inc;
  std::uint64_t next = gauge_next_us_.load(std::memory_order_relaxed);
  if (total < next) return;
  // One worker wins the crossing and publishes; losers carry on.
  if (!gauge_next_us_.compare_exchange_strong(
          next,
          total + static_cast<std::uint64_t>(config_.gauge_cadence_us),
          std::memory_order_relaxed)) {
    return;
  }
  auto& reg = telemetry::MetricsRegistry::global();
  reg.gauge("serve.virtual_time_us").set(static_cast<double>(total));
  reg.gauge("serve.queue.depth.sampled")
      .set(static_cast<double>(queue_depth()));
  for (std::size_t q = 0; q < executors_.size(); ++q) {
    // Per-QPU names vary at runtime: registry lookup, not AQ_GAUGE_SET.
    reg.gauge("serve.qpu.inflight.q" + std::to_string(q))
        .set(static_cast<double>(
            inflight_[q].load(std::memory_order_relaxed)));
  }
  AQ_COUNTER_ADD("serve.gauge.samples", 1);
}

void ServingRuntime::drain() {
  if (drained_) return;
  if (!started_) start();
  {
    // Serialize with in-flight submits: submit() checks accepting_ and
    // mails its batches (bumping outstanding_) all under the routing
    // lock, so flipping the flag under the same lock means every
    // admitted job is visible to the outstanding_ wait below — no
    // batch can be mailed after the dispatchers' final flush.
    std::lock_guard<std::mutex> lock(route_mu_);
    accepting_.store(false, std::memory_order_release);
  }
  // Wait for every admitted slot to reach a terminal outcome — that
  // covers batches still sitting in mailboxes, queues, retry chains and
  // backoff sleeps. Progress is entirely worker-driven, so this is a
  // pure wait, not a handshake.
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Mailboxes are empty now; retire the dispatchers, then close the
  // queues so the workers' blocked pops observe the drain and exit.
  for (auto& shard : shards_) shard->stop_dispatch();
  for (auto& shard : shards_) shard->queue().close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  drained_ = true;
  drain_wall_us_ = wall_now_us();
}

std::size_t ServingRuntime::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) depth += shard->queue().depth();
  return depth;
}

std::vector<ShardStats> ServingRuntime::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

void ServingRuntime::publish_shard_metrics() {
  if (!telemetry::telemetry_runtime_enabled()) return;
  auto& reg = telemetry::MetricsRegistry::global();
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (published_.size() != shards_.size()) {
    published_.assign(shards_.size(), ShardStats{});
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats cur = shards_[s]->stats();
    const ShardStats& prev = published_[s];
    // Monotone ShardStats tallies feed registry *counters* by delta so
    // a sampling Collector rolls them up into per-window rates.
    const std::string p = "serve.shard" + std::to_string(s) + ".";
    reg.counter(p + "admitted_batches")
        .add(cur.admitted_batches - prev.admitted_batches);
    reg.counter(p + "reserve_rejects")
        .add(cur.reserve_rejects - prev.reserve_rejects);
    reg.counter(p + "cross_shard_in")
        .add(cur.cross_shard_in - prev.cross_shard_in);
    reg.counter(p + "cross_shard_out")
        .add(cur.cross_shard_out - prev.cross_shard_out);
    reg.counter(p + "doorbell_wakeups")
        .add(cur.doorbell_wakeups - prev.doorbell_wakeups);
    reg.counter(p + "doorbell_backstops")
        .add(cur.doorbell_backstops - prev.doorbell_backstops);
    reg.gauge(p + "queue_depth")
        .set(static_cast<double>(shards_[s]->queue().depth()));
    published_[s] = cur;
  }
  // Per-tenant resident depth, summed across the shards — the gauge a
  // sampling Collector folds into serve.queue.depth.tenant.<t> rollups.
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    std::size_t depth = 0;
    for (const auto& shard : shards_) {
      depth += shard->queue().tenant_depth(t);
    }
    reg.gauge("serve.queue.depth.tenant." + tenant_labels_[t])
        .set(static_cast<double>(depth));
  }
}

std::vector<std::size_t> ServingRuntime::tenant_queue_depths() const {
  std::vector<std::size_t> out(tenants_.size(), 0);
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    for (const auto& shard : shards_) {
      out[t] += shard->queue().tenant_depth(t);
    }
  }
  return out;
}

std::vector<JobResult> ServingRuntime::results() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  std::vector<JobResult> out;
  out.reserve(jobs_.size());
  for (const JobState& job : jobs_) {
    JobResult r;
    r.id = job.id;
    r.status = job.status;
    r.probability = job.probability;
    r.loss = job.loss;
    r.retries = job.retries.load(std::memory_order_relaxed);
    r.batches = static_cast<int>(job.slots.size());
    r.virtual_latency_us = job.virtual_latency_us;
    r.wall_latency_us = job.wall_latency_us;
    r.torus = job.torus;
    r.epoch = job.epoch;
    r.tenant = job.tenant;
    r.slo_class = job.slo_class;
    r.admit_virtual_us = job.admit_virtual_us;
    out.push_back(r);
  }
  return out;
}

ServingReport ServingRuntime::report() const {
  ServingReport rep;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    rep.submitted = jobs_.size();
    for (const JobState& job : jobs_) {
      switch (job.status) {
        case JobStatus::kOk: ++rep.completed; break;
        case JobStatus::kRejected: ++rep.rejected; break;
        case JobStatus::kExpired: ++rep.expired; break;
        case JobStatus::kFailed: ++rep.failed; break;
        case JobStatus::kPending: break;
      }
      rep.retries += static_cast<std::uint64_t>(
          job.retries.load(std::memory_order_relaxed));
    }
  }
  rep.admitted = rep.submitted - rep.rejected;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    rep.dropouts_detected = dropouts_detected_;
    rep.repartitions = repartitions_;
  }
  rep.qpu_shots = qpu_shots_;
  rep.qpu_busy_us = qpu_busy_us_;
  rep.shards = shard_stats();
  if (!tenants_.empty()) {
    rep.tenants.resize(tenants_.size());
    std::vector<std::vector<double>> vlats(tenants_.size());
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      for (const JobState& job : jobs_) {
        TenantReport& t = rep.tenants[job.tenant_id];
        ++t.submitted;
        switch (job.status) {
          case JobStatus::kOk:
            ++t.completed;
            vlats[job.tenant_id].push_back(job.virtual_latency_us);
            break;
          case JobStatus::kRejected:
            ++t.rejected;
            break;
          default:
            break;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        rep.tenants[i].quota_rejected = tenant_qos_[i].quota_rejected;
        rep.tenants[i].throttled = tenant_qos_[i].throttled;
      }
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      TenantReport& t = rep.tenants[i];
      t.name = tenants_[i].name;
      t.weight = tenants_[i].weight;
      t.admitted = t.submitted - t.rejected;
      if (!vlats[i].empty()) {
        t.p50_virtual_latency_us = percentile(vlats[i], 0.50);
        t.p99_virtual_latency_us = percentile(vlats[i], 0.99);
      }
    }
  }
  if (drained_ && first_submit_wall_us_ > 0.0) {
    rep.wall_seconds = (drain_wall_us_ - first_submit_wall_us_) * 1e-6;
    if (rep.wall_seconds > 0.0) {
      rep.throughput_jobs_per_s =
          static_cast<double>(rep.admitted) / rep.wall_seconds;
    }
  }
  return rep;
}

std::size_t ServingRuntime::epochs() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return partitions_.size();
}

core::TorusPartition ServingRuntime::partition(std::size_t epoch) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  if (epoch >= partitions_.size()) {
    throw std::out_of_range("ServingRuntime::partition: epoch not built");
  }
  return partitions_[epoch];
}

}  // namespace arbiterq::serve
