#include "arbiterq/transpile/state_prep.hpp"

#include <cmath>
#include <stdexcept>

namespace arbiterq::transpile {

namespace {

using circuit::Circuit;
using circuit::ParamExpr;

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Uniformly controlled RY: apply RY(angles[j]) to `target` where j is
/// the integer formed by the control qubits' values (controls[0] = most
/// significant bit of j). Recursive CX/RY decomposition.
void ucry(Circuit& c, const std::vector<double>& angles, int target,
          const std::vector<int>& controls) {
  if (controls.empty()) {
    c.ry(target, ParamExpr::constant(angles[0]));
    return;
  }
  const std::size_t half = angles.size() / 2;
  std::vector<double> plus(half);
  std::vector<double> minus(half);
  for (std::size_t j = 0; j < half; ++j) {
    plus[j] = 0.5 * (angles[j] + angles[j + half]);
    minus[j] = 0.5 * (angles[j] - angles[j + half]);
  }
  const std::vector<int> rest(controls.begin() + 1, controls.end());
  // Circuit order ucry(plus), CX, ucry(minus), CX realizes
  // RY(plus+minus)=angles[j] on control=0 and RY(plus-minus)=
  // angles[j+half] on control=1 (X RY(t) X = RY(-t)).
  ucry(c, plus, target, rest);
  c.cx(controls[0], target);
  ucry(c, minus, target, rest);
  c.cx(controls[0], target);
}

}  // namespace

circuit::Circuit prepare_real_state(const std::vector<double>& amplitudes) {
  if (amplitudes.size() < 2 || !is_power_of_two(amplitudes.size())) {
    throw std::invalid_argument(
        "prepare_real_state: length must be a power of two >= 2");
  }
  double norm_sq = 0.0;
  for (double a : amplitudes) norm_sq += a * a;
  if (norm_sq <= 0.0) {
    throw std::invalid_argument("prepare_real_state: zero state");
  }
  const double inv_norm = 1.0 / std::sqrt(norm_sq);

  int n = 0;
  while ((std::size_t{1} << n) < amplitudes.size()) ++n;

  // Amplitude tree: tree[k][j] = signed value at level k (k = n means
  // leaves); internal nodes carry the non-negative norm of their block.
  std::vector<std::vector<double>> tree(static_cast<std::size_t>(n) + 1);
  tree[static_cast<std::size_t>(n)].resize(amplitudes.size());
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    tree[static_cast<std::size_t>(n)][i] = amplitudes[i] * inv_norm;
  }
  for (int k = n - 1; k >= 0; --k) {
    const auto& child = tree[static_cast<std::size_t>(k) + 1];
    auto& level = tree[static_cast<std::size_t>(k)];
    level.resize(child.size() / 2);
    for (std::size_t j = 0; j < level.size(); ++j) {
      level[j] = std::sqrt(child[2 * j] * child[2 * j] +
                           child[2 * j + 1] * child[2 * j + 1]);
    }
  }

  Circuit c(n, 0);
  for (int k = 0; k < n; ++k) {
    const int target = n - 1 - k;
    std::vector<int> controls;
    for (int q = n - 1; q > target; --q) controls.push_back(q);
    const auto& parents = tree[static_cast<std::size_t>(k)];
    const auto& children = tree[static_cast<std::size_t>(k) + 1];
    std::vector<double> angles(parents.size(), 0.0);
    for (std::size_t j = 0; j < parents.size(); ++j) {
      // Blocks with zero norm never receive amplitude; angle 0 is fine.
      if (parents[j] > 1e-300) {
        angles[j] = 2.0 * std::atan2(children[2 * j + 1], children[2 * j]);
      }
    }
    ucry(c, angles, target, controls);
  }
  return c;
}

std::vector<double> amplitude_encode(const std::vector<double>& features) {
  if (features.empty()) {
    throw std::invalid_argument("amplitude_encode: empty features");
  }
  std::size_t padded = 2;
  while (padded < features.size()) padded <<= 1;
  std::vector<double> out(padded, 0.0);
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    out[i] = features[i];
    norm_sq += features[i] * features[i];
  }
  if (norm_sq <= 0.0) {
    throw std::invalid_argument("amplitude_encode: all-zero features");
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (double& v : out) v *= inv;
  return out;
}

}  // namespace arbiterq::transpile
