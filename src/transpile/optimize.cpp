#include "arbiterq/transpile/optimize.hpp"

#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

namespace arbiterq::transpile {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;

bool is_axis_rotation(GateKind k) noexcept {
  return k == GateKind::kRX || k == GateKind::kRY || k == GateKind::kRZ;
}

/// Sum of two affine parameter expressions, when still affine in at most
/// one parameter.
std::optional<ParamExpr> add_exprs(const ParamExpr& a, const ParamExpr& b) {
  if (a.is_constant() && b.is_constant()) {
    return ParamExpr::constant(a.offset + b.offset);
  }
  if (a.is_constant()) {
    return ParamExpr::ref(b.index, b.coeff, a.offset + b.offset);
  }
  if (b.is_constant()) {
    return ParamExpr::ref(a.index, a.coeff, a.offset + b.offset);
  }
  if (a.index == b.index) {
    const double coeff = a.coeff + b.coeff;
    if (coeff == 0.0) return ParamExpr::constant(a.offset + b.offset);
    return ParamExpr::ref(a.index, coeff, a.offset + b.offset);
  }
  return std::nullopt;  // two distinct parameters: not representable
}

bool is_zero_rotation(const Gate& g) {
  if (!is_axis_rotation(g.kind)) return false;
  const ParamExpr& p = g.params[0];
  if (!p.is_constant()) return false;
  // Angle multiple of 2*pi: identity up to global phase.
  const double two_pi = 2.0 * std::numbers::pi;
  const double m = std::abs(std::remainder(p.offset, two_pi));
  return m < 1e-12;
}

bool self_inverse_pair(const Gate& a, const Gate& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case GateKind::kX:
    case GateKind::kH:
      return a.qubits[0] == b.qubits[0];
    case GateKind::kCX:
      return a.qubits == b.qubits;
    case GateKind::kCZ:
    case GateKind::kSwap:
      return (a.qubits == b.qubits) ||
             (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]);
    default:
      return false;
  }
}

/// One fused/cancel pass; returns true if anything changed.
bool pass(std::vector<Gate>& gates, int num_qubits, OptimizeStats* stats) {
  bool changed = false;
  std::vector<bool> removed(gates.size(), false);
  std::vector<std::ptrdiff_t> last_on(static_cast<std::size_t>(num_qubits),
                                      -1);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    Gate& g = gates[i];
    if (g.arity() == 1) {
      const auto q = static_cast<std::size_t>(g.qubits[0]);
      const std::ptrdiff_t p = last_on[q];
      if (p >= 0 && !removed[static_cast<std::size_t>(p)]) {
        Gate& prev = gates[static_cast<std::size_t>(p)];
        if (is_axis_rotation(g.kind) && prev.kind == g.kind &&
            prev.qubits[0] == g.qubits[0]) {
          if (auto merged = add_exprs(prev.params[0], g.params[0])) {
            prev.params[0] = *merged;
            removed[i] = true;
            changed = true;
            if (stats != nullptr) ++stats->rotations_merged;
            continue;  // prev stays the last gate on q
          }
        }
        if (self_inverse_pair(prev, g)) {
          removed[static_cast<std::size_t>(p)] = true;
          removed[i] = true;
          changed = true;
          if (stats != nullptr) ++stats->pairs_cancelled;
          last_on[q] = -1;
          continue;
        }
      }
      last_on[q] = static_cast<std::ptrdiff_t>(i);
    } else {
      const auto qa = static_cast<std::size_t>(g.qubits[0]);
      const auto qb = static_cast<std::size_t>(g.qubits[1]);
      const std::ptrdiff_t pa = last_on[qa];
      if (pa >= 0 && pa == last_on[qb] &&
          !removed[static_cast<std::size_t>(pa)] &&
          self_inverse_pair(gates[static_cast<std::size_t>(pa)], g)) {
        removed[static_cast<std::size_t>(pa)] = true;
        removed[i] = true;
        changed = true;
        if (stats != nullptr) ++stats->pairs_cancelled;
        last_on[qa] = last_on[qb] = -1;
        continue;
      }
      last_on[qa] = last_on[qb] = static_cast<std::ptrdiff_t>(i);
    }
  }

  if (changed) {
    std::vector<Gate> kept;
    kept.reserve(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (!removed[i]) kept.push_back(gates[i]);
    }
    gates = std::move(kept);
  }

  // Identity elimination (merging above can create zero rotations).
  std::vector<Gate> kept;
  kept.reserve(gates.size());
  for (const Gate& g : gates) {
    if (is_zero_rotation(g)) {
      changed = true;
      if (stats != nullptr) ++stats->identities_dropped;
      continue;
    }
    kept.push_back(g);
  }
  gates = std::move(kept);
  return changed;
}

}  // namespace

circuit::Circuit optimize(const circuit::Circuit& c, OptimizeStats* stats) {
  std::vector<Gate> gates = c.gates();
  // Fixed point; the bound is generous (each pass strictly shrinks).
  for (int iter = 0; iter < 64; ++iter) {
    if (!pass(gates, c.num_qubits(), stats)) break;
  }
  Circuit out(c.num_qubits(), c.num_params());
  for (const Gate& g : gates) out.add(g);
  return out;
}

}  // namespace arbiterq::transpile
