#pragma once
// Noise-aware initial layout selection: when the device has more qubits
// than the circuit (every Table III device runs 2-6 qubit models), the
// choice of physical sub-region changes the compiled circuit's error
// mass. The selector grows candidate connected regions greedily around
// every seed qubit, scoring them by calibrated gate errors weighted by
// how often the circuit uses each resource, and returns the best
// logical -> physical assignment.

#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/device/qpu.hpp"

namespace arbiterq::transpile {

struct LayoutResult {
  /// assignment[logical] = physical qubit.
  std::vector<int> assignment;
  /// The score the selector minimized (expected error mass; lower is
  /// better). Comparable across candidates on the same device only.
  double score = 0.0;
};

/// Pick a connected physical region of c.num_qubits() qubits minimizing
/// the usage-weighted error score:
///   sum_q use1[q] * e1(phys(q)) +
///   sum_(a,b) use2[a][b] * e2(best edge or distance-penalized pair)
/// where use1/use2 count the circuit's 1q/2q gates per logical resource.
/// Throws if the device is smaller than the circuit or disconnected.
LayoutResult select_layout(const circuit::Circuit& c,
                           const device::Qpu& qpu);

/// Relabel `c` so logical qubit q becomes assignment[q] (the circuit is
/// widened to the device size); gate order is unchanged. Routing then
/// starts from this placement instead of the identity.
circuit::Circuit apply_layout(const circuit::Circuit& c,
                              const std::vector<int>& assignment,
                              int device_qubits);

}  // namespace arbiterq::transpile
