#pragma once
// Peephole circuit optimization over native-basis circuits. Transpiled
// QNN circuits are full of patterns like RZ(pi/2)·RZ(theta)·RZ(pi/2)
// (from the RY decomposition) and back-to-back CX pairs (from CRZ chains
// meeting routing SWAPs); folding them shrinks the executable stream —
// and with it every simulation, gradient and behavioral-vector pass.
//
// Passes (all exact, all parameter-preserving):
//  * merge_rotations — adjacent same-axis rotations on one qubit fuse
//    when their angles stay affine in at most one parameter
//    (coeff*p + offset), e.g. RZ(0.5p+a)·RZ(b) -> RZ(0.5p+a+b);
//  * cancel_adjacent_inverses — CX·CX, CZ·CZ and SWAP·SWAP on the same
//    qubits annihilate;
//  * drop_identity_rotations — constant rotations with angle ~ 0 (mod
//    4pi for rotations) vanish.
// Gate attribution: a fused gate keeps the logical_id of its *first*
// constituent; cancelation removes both gates outright.

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::transpile {

struct OptimizeStats {
  std::size_t rotations_merged = 0;
  std::size_t pairs_cancelled = 0;
  std::size_t identities_dropped = 0;

  std::size_t total() const noexcept {
    return rotations_merged + pairs_cancelled + identities_dropped;
  }
};

/// Run all passes to a fixed point (bounded). Returns the optimized
/// circuit; `stats`, if non-null, accumulates what happened.
circuit::Circuit optimize(const circuit::Circuit& c,
                          OptimizeStats* stats = nullptr);

}  // namespace arbiterq::transpile
