#pragma once
// State-preparation synthesis (Mottonen-style): build a circuit of RY and
// CX gates that maps |0...0> to an arbitrary *real* target state. This is
// the amplitude-encoding substrate (Weigold et al.'s second encoding
// pattern): 2^n classical features load into n qubits, at the cost of a
// multiplexed-rotation cascade instead of one RY per qubit.
//
// The construction walks the amplitude tree top-down: at level k the
// branch angles are theta_j = 2*atan2(r_right, r_left) over each block's
// halves, applied as a uniformly controlled RY on qubit n-1-k with the
// higher qubits as controls; each multiplexor is decomposed recursively
// into single RYs and CXs (2^k RYs + 2^k CXs at level k).

#include <vector>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::transpile {

/// Circuit over ceil(log2(amplitudes.size())) qubits preparing the given
/// real state from |0...0>. `amplitudes` must have power-of-two length
/// >= 2 and nonzero norm; it is normalized internally. Signs are
/// preserved (any real state is reachable with RY/CX alone).
circuit::Circuit prepare_real_state(const std::vector<double>& amplitudes);

/// Pad (with zeros) and normalize a feature vector to the next
/// power-of-two length, ready for prepare_real_state. Throws if all
/// features are zero.
std::vector<double> amplitude_encode(const std::vector<double>& features);

}  // namespace arbiterq::transpile
