#pragma once
// Qubit routing: make every two-qubit gate act on topology-adjacent
// physical qubits by inserting SWAP chains (greedy shortest-path, the
// "SABRE-lite" strategy in DESIGN.md). Inserted SWAPs are tagged
// is_routing_swap and carry the logical_id of the two-qubit gate that
// forced them — exactly the attribution the topological part of the
// behavioral vector needs (paper §III-A).

#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/device/topology.hpp"

namespace arbiterq::transpile {

struct RoutedCircuit {
  /// Gates over *physical* qubits; contains tagged routing SWAPs.
  circuit::Circuit circuit;
  /// initial_layout[logical] = physical qubit before the first gate.
  std::vector<int> initial_layout;
  /// final_layout[logical] = physical qubit after the last gate; readout
  /// of logical qubit q must measure physical qubit final_layout[q].
  std::vector<int> final_layout;
};

struct RoutingOptions {
  enum class Strategy {
    /// Walk one endpoint along a shortest path until adjacent (fast,
    /// deterministic; the default everywhere).
    kGreedyPath,
    /// Score candidate SWAPs against a decayed window of upcoming
    /// two-qubit gates (SABRE-style lookahead); usually fewer SWAPs on
    /// congested circuits at higher compile cost.
    kLookahead,
  };
  Strategy strategy = Strategy::kGreedyPath;
  /// Upcoming two-qubit gates the lookahead scorer considers.
  int lookahead_window = 8;
  /// Geometric decay of lookahead terms.
  double lookahead_decay = 0.7;
};

/// Route `c` onto `topo` (topo.num_qubits() >= c.num_qubits()); the
/// initial layout is the identity. Gates keep their order; each gate's
/// logical_id is set to its index in `c` if not already set.
RoutedCircuit route(const circuit::Circuit& c, const device::Topology& topo,
                    const RoutingOptions& options = {});

/// True when every two-qubit gate of `c` acts on adjacent qubits.
bool respects_topology(const circuit::Circuit& c,
                       const device::Topology& topo);

}  // namespace arbiterq::transpile
