#pragma once
// Full compile pipeline for one (circuit, QPU) pair:
//   1. tag logical ids on the source gates,
//   2. route onto the device topology (SWAP insertion),
//   3. translate to the native basis.
// The result keeps three views: the routed circuit (logical gates +
// explicit SWAPs — what the behavioral vectorizer reads), the executable
// circuit (native gates — what the simulator runs) and the layouts
// (which physical qubit to measure for each logical qubit).

#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/device/qpu.hpp"
#include "arbiterq/transpile/routing.hpp"

namespace arbiterq::transpile {

struct CompileOptions {
  /// Pick a noise-aware initial placement (layout.hpp) instead of the
  /// identity layout.
  bool select_layout = false;
  /// Run the peephole optimizer (optimize.hpp) on the executable.
  bool optimize = false;
  RoutingOptions routing;
};

struct CompiledCircuit {
  /// Routed, still in the source gate alphabet, with tagged SWAPs.
  circuit::Circuit routed;
  /// Routed and translated to the device's native basis.
  circuit::Circuit executable;
  std::vector<int> initial_layout;  ///< logical -> physical, before gate 0
  std::vector<int> final_layout;    ///< logical -> physical, after last gate

  /// Physical qubit to measure for logical qubit `q`.
  int measure_qubit(int q) const {
    return final_layout.at(static_cast<std::size_t>(q));
  }
};

/// Compile `c` for `qpu`. Throws if the device is too small or its
/// topology is disconnected.
CompiledCircuit compile(const circuit::Circuit& c, const device::Qpu& qpu);

/// Compile with explicit pipeline options (placement, routing strategy,
/// peephole optimization). The default-constructed options reproduce
/// compile(c, qpu) exactly.
CompiledCircuit compile(const circuit::Circuit& c, const device::Qpu& qpu,
                        const CompileOptions& options);

}  // namespace arbiterq::transpile
