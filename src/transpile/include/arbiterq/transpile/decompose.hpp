#pragma once
// Basis translation: rewrite every gate of a circuit into a device's
// native set while preserving symbolic parameter references (a CRZ(p_k)
// becomes RZ(0.5*p_k), CX, RZ(-0.5*p_k), CX — still re-bindable).
// Each emitted gate inherits the logical_id of its source gate so the
// behavioral vectorizer can attribute basis-gate errors back to logical
// QNN gates (paper §III-A).
//
// All identities are exact up to global phase, which is unobservable and
// tolerated by the equivalence tests.

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/device/qpu.hpp"

namespace arbiterq::transpile {

/// Rewrite `c` into the given basis. Gate order and qubit placement are
/// preserved; no routing is performed here.
circuit::Circuit decompose_to_basis(const circuit::Circuit& c,
                                    device::BasisSet basis);

/// True if the gate kind is native to the basis.
bool is_native(circuit::GateKind kind, device::BasisSet basis) noexcept;

/// Number of native gates a single gate of this kind expands into (used
/// by the behavioral vectorizer's per-logical-gate error accumulation).
int native_gate_count(circuit::GateKind kind, device::BasisSet basis);

}  // namespace arbiterq::transpile
