#include "arbiterq/transpile/decompose.hpp"

#include <numbers>
#include <stdexcept>

namespace arbiterq::transpile {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;

constexpr double kPi = std::numbers::pi;
constexpr double kHalfPi = std::numbers::pi / 2.0;

/// Scale a ParamExpr by a constant: value' = s * value.
ParamExpr scaled(const ParamExpr& p, double s) {
  return {p.index, p.coeff * s, p.offset * s};
}

class Emitter {
 public:
  Emitter(Circuit& out, int logical_id, bool routing_swap)
      : out_(out), logical_id_(logical_id), routing_swap_(routing_swap) {}

  void gate1(GateKind kind, int q, ParamExpr p0 = ParamExpr::constant(0.0),
             ParamExpr p1 = ParamExpr::constant(0.0),
             ParamExpr p2 = ParamExpr::constant(0.0)) {
    Gate g;
    g.kind = kind;
    g.qubits = {q, 0};
    g.params = {p0, p1, p2};
    g.logical_id = logical_id_;
    g.is_routing_swap = routing_swap_;
    out_.add(g);
  }

  void gate2(GateKind kind, int a, int b,
             ParamExpr p0 = ParamExpr::constant(0.0)) {
    Gate g;
    g.kind = kind;
    g.qubits = {a, b};
    g.params[0] = p0;
    g.logical_id = logical_id_;
    g.is_routing_swap = routing_swap_;
    out_.add(g);
  }

  // ---- IBM basis {RZ, SX, X, CX} -------------------------------------

  void ibm_rz(int q, ParamExpr theta) { gate1(GateKind::kRZ, q, theta); }

  void ibm_h(int q) {
    // H = RZ(pi/2) SX RZ(pi/2), up to global phase.
    ibm_rz(q, ParamExpr::constant(kHalfPi));
    gate1(GateKind::kSX, q);
    ibm_rz(q, ParamExpr::constant(kHalfPi));
  }

  void ibm_rx(int q, ParamExpr theta) {
    // RX(t) = H RZ(t) H (exactly, since H Z H = X).
    ibm_h(q);
    ibm_rz(q, theta);
    ibm_h(q);
  }

  void ibm_ry(int q, ParamExpr theta) {
    // RY(t) = S RX(t) Sdg with S = RZ(pi/2) up to phase; circuit order
    // applies Sdg first.
    ibm_rz(q, ParamExpr::constant(-kHalfPi));
    ibm_rx(q, theta);
    ibm_rz(q, ParamExpr::constant(kHalfPi));
  }

  void ibm_cz(int a, int b) {
    ibm_h(b);
    gate2(GateKind::kCX, a, b);
    ibm_h(b);
  }

  // ---- Origin basis {U3, CZ} -----------------------------------------

  void origin_u3(int q, ParamExpr theta, ParamExpr phi, ParamExpr lambda) {
    gate1(GateKind::kU3, q, theta, phi, lambda);
  }

  void origin_h(int q) {
    origin_u3(q, ParamExpr::constant(kHalfPi), ParamExpr::constant(0.0),
              ParamExpr::constant(kPi));
  }

  void origin_rz(int q, ParamExpr theta) {
    // RZ(t) = U3(0, t, 0) up to global phase (a pure phase gate P(t)).
    origin_u3(q, ParamExpr::constant(0.0), theta, ParamExpr::constant(0.0));
  }

  void origin_cx(int a, int b) {
    origin_h(b);
    gate2(GateKind::kCZ, a, b);
    origin_h(b);
  }

 private:
  Circuit& out_;
  int logical_id_;
  bool routing_swap_;
};

void decompose_gate_ibm(const Gate& g, Emitter& e) {
  const int q = g.qubits[0];
  const int t = g.qubits[1];
  switch (g.kind) {
    case GateKind::kI:
      break;
    case GateKind::kX:
    case GateKind::kSX:
      e.gate1(g.kind, q);
      break;
    case GateKind::kRZ:
      e.ibm_rz(q, g.params[0]);
      break;
    case GateKind::kZ:
      e.ibm_rz(q, ParamExpr::constant(kPi));
      break;
    case GateKind::kS:
      e.ibm_rz(q, ParamExpr::constant(kHalfPi));
      break;
    case GateKind::kSdg:
      e.ibm_rz(q, ParamExpr::constant(-kHalfPi));
      break;
    case GateKind::kY:
      // Y = i X Z: apply Z then X, global phase dropped.
      e.ibm_rz(q, ParamExpr::constant(kPi));
      e.gate1(GateKind::kX, q);
      break;
    case GateKind::kH:
      e.ibm_h(q);
      break;
    case GateKind::kRX:
      e.ibm_rx(q, g.params[0]);
      break;
    case GateKind::kRY:
      e.ibm_ry(q, g.params[0]);
      break;
    case GateKind::kU3:
      // U3(t, phi, lam) = RZ(phi) RY(t) RZ(lam) up to phase; circuit
      // order applies RZ(lam) first.
      e.ibm_rz(q, g.params[2]);
      e.ibm_ry(q, g.params[0]);
      e.ibm_rz(q, g.params[1]);
      break;
    case GateKind::kCX:
      e.gate2(GateKind::kCX, q, t);
      break;
    case GateKind::kCZ:
      e.ibm_cz(q, t);
      break;
    case GateKind::kCRZ:
      // CRZ(t) = RZ(t/2)_t CX RZ(-t/2)_t CX.
      e.ibm_rz(t, scaled(g.params[0], 0.5));
      e.gate2(GateKind::kCX, q, t);
      e.ibm_rz(t, scaled(g.params[0], -0.5));
      e.gate2(GateKind::kCX, q, t);
      break;
    case GateKind::kCRY:
      e.ibm_ry(t, scaled(g.params[0], 0.5));
      e.gate2(GateKind::kCX, q, t);
      e.ibm_ry(t, scaled(g.params[0], -0.5));
      e.gate2(GateKind::kCX, q, t);
      break;
    case GateKind::kCRX:
      // Conjugate CRZ by H on the target.
      e.ibm_h(t);
      e.ibm_rz(t, scaled(g.params[0], 0.5));
      e.gate2(GateKind::kCX, q, t);
      e.ibm_rz(t, scaled(g.params[0], -0.5));
      e.gate2(GateKind::kCX, q, t);
      e.ibm_h(t);
      break;
    case GateKind::kSwap:
      e.gate2(GateKind::kCX, q, t);
      e.gate2(GateKind::kCX, t, q);
      e.gate2(GateKind::kCX, q, t);
      break;
  }
}

void decompose_gate_origin(const Gate& g, Emitter& e) {
  const int q = g.qubits[0];
  const int t = g.qubits[1];
  const auto c0 = ParamExpr::constant(0.0);
  switch (g.kind) {
    case GateKind::kI:
      break;
    case GateKind::kU3:
      e.origin_u3(q, g.params[0], g.params[1], g.params[2]);
      break;
    case GateKind::kX:
      e.origin_u3(q, ParamExpr::constant(kPi), c0, ParamExpr::constant(kPi));
      break;
    case GateKind::kY:
      e.origin_u3(q, ParamExpr::constant(kPi), ParamExpr::constant(kHalfPi),
                  ParamExpr::constant(kHalfPi));
      break;
    case GateKind::kZ:
      e.origin_rz(q, ParamExpr::constant(kPi));
      break;
    case GateKind::kS:
      e.origin_rz(q, ParamExpr::constant(kHalfPi));
      break;
    case GateKind::kSdg:
      e.origin_rz(q, ParamExpr::constant(-kHalfPi));
      break;
    case GateKind::kH:
      e.origin_h(q);
      break;
    case GateKind::kSX:
      e.origin_u3(q, ParamExpr::constant(kHalfPi),
                  ParamExpr::constant(-kHalfPi),
                  ParamExpr::constant(kHalfPi));
      break;
    case GateKind::kRX:
      e.origin_u3(q, g.params[0], ParamExpr::constant(-kHalfPi),
                  ParamExpr::constant(kHalfPi));
      break;
    case GateKind::kRY:
      e.origin_u3(q, g.params[0], c0, c0);
      break;
    case GateKind::kRZ:
      e.origin_rz(q, g.params[0]);
      break;
    case GateKind::kCZ:
      e.gate2(GateKind::kCZ, q, t);
      break;
    case GateKind::kCX:
      e.origin_cx(q, t);
      break;
    case GateKind::kCRZ:
      e.origin_rz(t, scaled(g.params[0], 0.5));
      e.origin_cx(q, t);
      e.origin_rz(t, scaled(g.params[0], -0.5));
      e.origin_cx(q, t);
      break;
    case GateKind::kCRY:
      e.origin_u3(t, scaled(g.params[0], 0.5), c0, c0);
      e.origin_cx(q, t);
      e.origin_u3(t, scaled(g.params[0], -0.5), c0, c0);
      e.origin_cx(q, t);
      break;
    case GateKind::kCRX:
      e.origin_h(t);
      e.origin_rz(t, scaled(g.params[0], 0.5));
      e.origin_cx(q, t);
      e.origin_rz(t, scaled(g.params[0], -0.5));
      e.origin_cx(q, t);
      e.origin_h(t);
      break;
    case GateKind::kSwap:
      e.origin_cx(q, t);
      e.origin_cx(t, q);
      e.origin_cx(q, t);
      break;
  }
}

}  // namespace

bool is_native(circuit::GateKind kind, device::BasisSet basis) noexcept {
  switch (basis) {
    case device::BasisSet::kIbm:
      return kind == GateKind::kRZ || kind == GateKind::kSX ||
             kind == GateKind::kX || kind == GateKind::kCX;
    case device::BasisSet::kOrigin:
      return kind == GateKind::kU3 || kind == GateKind::kCZ;
  }
  return false;
}

circuit::Circuit decompose_to_basis(const circuit::Circuit& c,
                                    device::BasisSet basis) {
  Circuit out(c.num_qubits(), c.num_params());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c.gate(i);
    const int logical =
        g.logical_id >= 0 ? g.logical_id : static_cast<int>(i);
    Emitter e(out, logical, g.is_routing_swap);
    switch (basis) {
      case device::BasisSet::kIbm:
        decompose_gate_ibm(g, e);
        break;
      case device::BasisSet::kOrigin:
        decompose_gate_origin(g, e);
        break;
    }
  }
  return out;
}

int native_gate_count(circuit::GateKind kind, device::BasisSet basis) {
  Circuit probe(2);
  Gate g;
  g.kind = kind;
  g.qubits = {0, circuit::gate_arity(kind) == 2 ? 1 : 0};
  probe.add(g);
  return static_cast<int>(decompose_to_basis(probe, basis).size());
}

}  // namespace arbiterq::transpile
