#include "arbiterq/transpile/transpiler.hpp"

#include <numeric>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"
#include "arbiterq/transpile/decompose.hpp"
#include "arbiterq/transpile/layout.hpp"
#include "arbiterq/transpile/optimize.hpp"

namespace arbiterq::transpile {

CompiledCircuit compile(const circuit::Circuit& c, const device::Qpu& qpu) {
  return compile(c, qpu, CompileOptions{});
}

CompiledCircuit compile(const circuit::Circuit& c, const device::Qpu& qpu,
                        const CompileOptions& options) {
  AQ_TRACE_SPAN("transpile.compile");
  AQ_COUNTER_ADD("transpile.compile.calls", 1);
  CompiledCircuit out;

  // Placement. The routed circuit lives on physical qubits, so the
  // initial/final layouts must compose placement with routing.
  std::vector<int> placement(static_cast<std::size_t>(c.num_qubits()));
  RoutedCircuit routed = [&] {
    if (!options.select_layout) {
      std::iota(placement.begin(), placement.end(), 0);
      AQ_TRACE_SPAN("transpile.route");
      return route(c, qpu.topology(), options.routing);
    }
    const LayoutResult layout = [&] {
      AQ_TRACE_SPAN("transpile.select.layout");
      return select_layout(c, qpu);
    }();
    placement = layout.assignment;
    const circuit::Circuit placed =
        apply_layout(c, layout.assignment, qpu.num_qubits());
    AQ_TRACE_SPAN("transpile.route");
    return route(placed, qpu.topology(), options.routing);
  }();

  {
    AQ_TRACE_SPAN("transpile.decompose");
    out.executable = decompose_to_basis(routed.circuit, qpu.basis());
  }
  if (options.optimize) {
    AQ_TRACE_SPAN("transpile.optimize");
    out.executable = optimize(out.executable);
  }
  AQ_GAUGE_SET("transpile.compiled.depth",
               static_cast<double>(out.executable.depth()));
  out.routed = std::move(routed.circuit);
  // route()'s layouts are identity-based over the placed circuit; map
  // them back to the original logical qubits.
  out.initial_layout.resize(placement.size());
  out.final_layout.resize(placement.size());
  for (std::size_t q = 0; q < placement.size(); ++q) {
    out.initial_layout[q] = routed.initial_layout[static_cast<std::size_t>(
        placement[q])];
    out.final_layout[q] =
        routed.final_layout[static_cast<std::size_t>(placement[q])];
  }
  return out;
}

}  // namespace arbiterq::transpile
