#include "arbiterq/transpile/routing.hpp"

#include <limits>
#include <numeric>
#include <stdexcept>

namespace arbiterq::transpile {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

/// Mutable routing state shared by both strategies.
struct Router {
  Router(const Circuit& c, const device::Topology& topo)
      : topo_(topo), out_(topo.num_qubits(), c.num_params()) {
    layout_.resize(static_cast<std::size_t>(c.num_qubits()));
    std::iota(layout_.begin(), layout_.end(), 0);
    position_.assign(static_cast<std::size_t>(topo.num_qubits()), -1);
    for (std::size_t l = 0; l < layout_.size(); ++l) {
      position_[static_cast<std::size_t>(layout_[l])] =
          static_cast<int>(l);
    }
  }

  int physical(int logical) const {
    return layout_[static_cast<std::size_t>(logical)];
  }

  void emit_swap(int pa, int pb, int logical_id) {
    Gate sg;
    sg.kind = GateKind::kSwap;
    sg.qubits = {pa, pb};
    sg.logical_id = logical_id;
    sg.is_routing_swap = true;
    out_.add(sg);
    const int la = position_[static_cast<std::size_t>(pa)];
    const int lb = position_[static_cast<std::size_t>(pb)];
    position_[static_cast<std::size_t>(pa)] = lb;
    position_[static_cast<std::size_t>(pb)] = la;
    if (la >= 0) layout_[static_cast<std::size_t>(la)] = pb;
    if (lb >= 0) layout_[static_cast<std::size_t>(lb)] = pa;
  }

  void emit_gate(Gate g) {
    g.qubits[0] = physical(g.qubits[0]);
    if (g.arity() == 2) g.qubits[1] = physical(g.qubits[1]);
    out_.add(g);
  }

  const device::Topology& topo_;
  Circuit out_;
  std::vector<int> layout_;    // logical -> physical
  std::vector<int> position_;  // physical -> logical (-1 = free)
};

void route_greedy_front(Router& r, int la, int lb, int logical_id) {
  int pa = r.physical(la);
  while (r.topo_.distance(pa, r.physical(lb)) > 1) {
    const auto path = r.topo_.shortest_path(pa, r.physical(lb));
    r.emit_swap(path[0], path[1], logical_id);
    pa = path[1];
  }
}

/// Upcoming two-qubit logical pairs starting at gate index `from`.
std::vector<std::pair<int, int>> upcoming_pairs(const Circuit& c,
                                                std::size_t from,
                                                int window) {
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = from;
       i < c.size() && pairs.size() < static_cast<std::size_t>(window);
       ++i) {
    const Gate& g = c.gate(i);
    if (g.arity() == 2) pairs.emplace_back(g.qubits[0], g.qubits[1]);
  }
  return pairs;
}

void route_lookahead_front(Router& r, const Circuit& c, std::size_t index,
                           const RoutingOptions& opts, int logical_id) {
  const Gate& front = c.gate(index);
  const auto pairs = upcoming_pairs(c, index + 1, opts.lookahead_window);
  int stall_guard = 0;
  while (r.topo_.distance(r.physical(front.qubits[0]),
                          r.physical(front.qubits[1])) > 1) {
    const int pa = r.physical(front.qubits[0]);
    const int pb = r.physical(front.qubits[1]);
    const int front_dist = r.topo_.distance(pa, pb);

    // Candidate SWAPs: edges incident to either endpoint's position.
    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    int best_front = front_dist;
    for (int endpoint : {pa, pb}) {
      for (int nb : r.topo_.neighbors(endpoint)) {
        // Evaluate the layout as if (endpoint, nb) were swapped.
        auto dist_after = [&](int logical) {
          int p = r.physical(logical);
          if (p == endpoint) p = nb;
          else if (p == nb) p = endpoint;
          return p;
        };
        const int fd = r.topo_.distance(dist_after(front.qubits[0]),
                                        dist_after(front.qubits[1]));
        double score = static_cast<double>(fd);
        double decay = opts.lookahead_decay;
        for (const auto& [qa, qb] : pairs) {
          score += decay * r.topo_.distance(dist_after(qa), dist_after(qb));
          decay *= opts.lookahead_decay;
        }
        if (score < best_score) {
          best_score = score;
          best_a = endpoint;
          best_b = nb;
          best_front = fd;
        }
      }
    }

    // Progress guard: if lookahead dithers (front distance not shrinking
    // for too long), fall back to a shortest-path step.
    if (best_front >= front_dist) {
      if (++stall_guard > r.topo_.num_qubits()) {
        const auto path = r.topo_.shortest_path(pa, pb);
        r.emit_swap(path[0], path[1], logical_id);
        stall_guard = 0;
        continue;
      }
    } else {
      stall_guard = 0;
    }
    r.emit_swap(best_a, best_b, logical_id);
  }
}

}  // namespace

RoutedCircuit route(const circuit::Circuit& c, const device::Topology& topo,
                    const RoutingOptions& options) {
  if (topo.num_qubits() < c.num_qubits()) {
    throw std::invalid_argument("route: device smaller than circuit");
  }
  if (!topo.is_connected_graph()) {
    throw std::invalid_argument("route: disconnected topology");
  }

  Router router(c, topo);
  RoutedCircuit out;
  out.initial_layout = router.layout_;

  for (std::size_t i = 0; i < c.size(); ++i) {
    Gate g = c.gate(i);
    const int logical_id =
        g.logical_id >= 0 ? g.logical_id : static_cast<int>(i);
    g.logical_id = logical_id;
    if (g.arity() == 2) {
      switch (options.strategy) {
        case RoutingOptions::Strategy::kGreedyPath:
          route_greedy_front(router, g.qubits[0], g.qubits[1], logical_id);
          break;
        case RoutingOptions::Strategy::kLookahead:
          route_lookahead_front(router, c, i, options, logical_id);
          break;
      }
    }
    router.emit_gate(g);
  }

  out.circuit = std::move(router.out_);
  out.final_layout = router.layout_;
  return out;
}

bool respects_topology(const circuit::Circuit& c,
                       const device::Topology& topo) {
  for (const Gate& g : c.gates()) {
    if (g.arity() == 2 && !topo.connected(g.qubits[0], g.qubits[1])) {
      return false;
    }
  }
  return true;
}

}  // namespace arbiterq::transpile
