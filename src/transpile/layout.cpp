#include "arbiterq/transpile/layout.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace arbiterq::transpile {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

double one_qubit_error(const device::Qpu& qpu, int p) {
  Gate g;
  g.kind = GateKind::kRY;
  g.qubits = {p, 0};
  return qpu.gate_error(g);
}

double two_qubit_error(const device::Qpu& qpu, int a, int b) {
  Gate g;
  g.kind = GateKind::kCX;
  g.qubits = {a, b};
  return qpu.gate_error(g);
}

/// Quality of one physical qubit: its 1q error plus the mean error of
/// its incident edges (lower is better).
double qubit_quality(const device::Qpu& qpu, int p) {
  double q = one_qubit_error(qpu, p);
  const auto& nbrs = qpu.topology().neighbors(p);
  if (!nbrs.empty()) {
    double e = 0.0;
    for (int nb : nbrs) e += two_qubit_error(qpu, p, nb);
    q += e / static_cast<double>(nbrs.size());
  }
  return q;
}

}  // namespace

LayoutResult select_layout(const circuit::Circuit& c,
                           const device::Qpu& qpu) {
  const int n = c.num_qubits();
  const int dev = qpu.num_qubits();
  if (dev < n) {
    throw std::invalid_argument("select_layout: device smaller than circuit");
  }
  if (!qpu.topology().is_connected_graph()) {
    throw std::invalid_argument("select_layout: disconnected topology");
  }

  // Usage profile of the logical circuit.
  std::vector<double> use1(static_cast<std::size_t>(n), 0.0);
  std::vector<std::vector<double>> use2(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (const Gate& g : c.gates()) {
    if (g.arity() == 1) {
      use1[static_cast<std::size_t>(g.qubits[0])] += 1.0;
    } else {
      use2[static_cast<std::size_t>(g.qubits[0])]
          [static_cast<std::size_t>(g.qubits[1])] += 1.0;
    }
  }
  std::vector<double> total_use(static_cast<std::size_t>(n), 0.0);
  for (int q = 0; q < n; ++q) {
    total_use[static_cast<std::size_t>(q)] =
        use1[static_cast<std::size_t>(q)];
    for (int r = 0; r < n; ++r) {
      total_use[static_cast<std::size_t>(q)] +=
          use2[static_cast<std::size_t>(q)][static_cast<std::size_t>(r)] +
          use2[static_cast<std::size_t>(r)][static_cast<std::size_t>(q)];
    }
  }

  auto score_assignment = [&](const std::vector<int>& phys) {
    double s = 0.0;
    for (int q = 0; q < n; ++q) {
      s += use1[static_cast<std::size_t>(q)] *
           one_qubit_error(qpu, phys[static_cast<std::size_t>(q)]);
    }
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const double uses =
            use2[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        if (uses == 0.0) continue;
        const int pa = phys[static_cast<std::size_t>(a)];
        const int pb = phys[static_cast<std::size_t>(b)];
        const int dist = qpu.topology().distance(pa, pb);
        double e = two_qubit_error(qpu, pa, pb);
        if (dist > 1) {
          // Each missing hop costs roughly one SWAP (3 native 2q gates).
          e += static_cast<double>(dist - 1) * 3.0 * e;
        }
        s += uses * e;
      }
    }
    return s;
  };

  LayoutResult best;
  best.score = std::numeric_limits<double>::infinity();

  for (int seed = 0; seed < dev; ++seed) {
    // Grow a connected region of n qubits around the seed, cheapest
    // frontier qubit first.
    std::vector<int> region = {seed};
    std::vector<bool> in_region(static_cast<std::size_t>(dev), false);
    in_region[static_cast<std::size_t>(seed)] = true;
    while (static_cast<int>(region.size()) < n) {
      int pick = -1;
      double pick_quality = std::numeric_limits<double>::infinity();
      for (int member : region) {
        for (int nb : qpu.topology().neighbors(member)) {
          if (in_region[static_cast<std::size_t>(nb)]) continue;
          const double quality = qubit_quality(qpu, nb);
          if (quality < pick_quality) {
            pick_quality = quality;
            pick = nb;
          }
        }
      }
      if (pick < 0) break;  // cannot grow (shouldn't happen: connected)
      region.push_back(pick);
      in_region[static_cast<std::size_t>(pick)] = true;
    }
    if (static_cast<int>(region.size()) < n) continue;

    // Interaction-aware matching: walk a path through the logical
    // interaction graph (busiest qubit first, then strongest unplaced
    // partner of the last placed) and a path through the region's
    // induced subgraph, and zip them — logical neighbors land on
    // physically adjacent qubits whenever the region allows it.
    std::vector<int> logical_path;
    {
      std::vector<bool> placed(static_cast<std::size_t>(n), false);
      int cur = 0;
      for (int q = 1; q < n; ++q) {
        if (total_use[static_cast<std::size_t>(q)] >
            total_use[static_cast<std::size_t>(cur)]) {
          cur = q;
        }
      }
      logical_path.push_back(cur);
      placed[static_cast<std::size_t>(cur)] = true;
      while (static_cast<int>(logical_path.size()) < n) {
        int next = -1;
        double weight = -1.0;
        for (int q = 0; q < n; ++q) {
          if (placed[static_cast<std::size_t>(q)]) continue;
          const double w =
              use2[static_cast<std::size_t>(cur)]
                  [static_cast<std::size_t>(q)] +
              use2[static_cast<std::size_t>(q)]
                  [static_cast<std::size_t>(cur)];
          if (w > weight) {
            weight = w;
            next = q;
          }
        }
        logical_path.push_back(next);
        placed[static_cast<std::size_t>(next)] = true;
        cur = next;
      }
    }
    std::vector<int> region_path;
    {
      std::vector<bool> visited(static_cast<std::size_t>(dev), false);
      int cur = *std::min_element(region.begin(), region.end(),
                                  [&](int a, int b) {
                                    return qubit_quality(qpu, a) <
                                           qubit_quality(qpu, b);
                                  });
      region_path.push_back(cur);
      visited[static_cast<std::size_t>(cur)] = true;
      while (static_cast<int>(region_path.size()) < n) {
        int next = -1;
        double best_quality = std::numeric_limits<double>::infinity();
        // Prefer an unvisited region neighbor of the path's tail; fall
        // back to the best unvisited region qubit.
        for (int nb : qpu.topology().neighbors(cur)) {
          if (!in_region[static_cast<std::size_t>(nb)] ||
              visited[static_cast<std::size_t>(nb)]) {
            continue;
          }
          const double quality = qubit_quality(qpu, nb);
          if (quality < best_quality) {
            best_quality = quality;
            next = nb;
          }
        }
        if (next < 0) {
          for (int member : region) {
            if (visited[static_cast<std::size_t>(member)]) continue;
            const double quality = qubit_quality(qpu, member);
            if (quality < best_quality) {
              best_quality = quality;
              next = member;
            }
          }
        }
        region_path.push_back(next);
        visited[static_cast<std::size_t>(next)] = true;
        cur = next;
      }
    }

    std::vector<int> assignment(static_cast<std::size_t>(n), -1);
    for (int k = 0; k < n; ++k) {
      assignment[static_cast<std::size_t>(
          logical_path[static_cast<std::size_t>(k)])] =
          region_path[static_cast<std::size_t>(k)];
    }
    const double score = score_assignment(assignment);
    if (score < best.score) {
      best.score = score;
      best.assignment = std::move(assignment);
    }
  }

  // The identity placement is always a candidate: the selector can only
  // improve on the default the router would otherwise use.
  {
    std::vector<int> identity(static_cast<std::size_t>(n));
    std::iota(identity.begin(), identity.end(), 0);
    const double score = score_assignment(identity);
    if (score < best.score) {
      best.score = score;
      best.assignment = std::move(identity);
    }
  }

  if (best.assignment.empty()) {
    throw std::logic_error("select_layout: no candidate region found");
  }
  return best;
}

circuit::Circuit apply_layout(const circuit::Circuit& c,
                              const std::vector<int>& assignment,
                              int device_qubits) {
  if (static_cast<int>(assignment.size()) != c.num_qubits()) {
    throw std::invalid_argument("apply_layout: assignment size mismatch");
  }
  std::vector<bool> used(static_cast<std::size_t>(device_qubits), false);
  for (int p : assignment) {
    if (p < 0 || p >= device_qubits) {
      throw std::out_of_range("apply_layout: physical qubit out of range");
    }
    if (used[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("apply_layout: duplicate physical qubit");
    }
    used[static_cast<std::size_t>(p)] = true;
  }
  Circuit out(device_qubits, c.num_params());
  for (Gate g : c.gates()) {
    g.qubits[0] = assignment[static_cast<std::size_t>(g.qubits[0])];
    if (g.arity() == 2) {
      g.qubits[1] = assignment[static_cast<std::size_t>(g.qubits[1])];
    }
    out.add(g);
  }
  return out;
}

}  // namespace arbiterq::transpile
