#include "arbiterq/sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace arbiterq::sim {

namespace {

using circuit::Mat2;
using circuit::Mat4;

const Mat2 kPauliX{Complex{0, 0}, Complex{1, 0}, Complex{1, 0}, Complex{0, 0}};
const Mat2 kPauliY{Complex{0, 0}, Complex{0, -1}, Complex{0, 1},
                   Complex{0, 0}};
const Mat2 kPauliZ{Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
                   Complex{-1, 0}};

Mat4 kron2(const Mat2& b, const Mat2& a) {
  // |b a> ordering: index = 2*bit_b + bit_a.
  Mat4 m{};
  for (int rb = 0; rb < 2; ++rb) {
    for (int ra = 0; ra < 2; ++ra) {
      for (int cb = 0; cb < 2; ++cb) {
        for (int ca = 0; ca < 2; ++ca) {
          m[static_cast<std::size_t>((rb * 2 + ra) * 4 + (cb * 2 + ca))] =
              b[static_cast<std::size_t>(rb * 2 + cb)] *
              a[static_cast<std::size_t>(ra * 2 + ca)];
        }
      }
    }
  }
  return m;
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  if (num_qubits <= 0 || num_qubits > 13) {
    throw std::invalid_argument("DensityMatrix: unsupported qubit count");
  }
  rho_.assign(dim_ * dim_, Complex{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::reset() {
  std::fill(rho_.begin(), rho_.end(), Complex{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::apply_left_right_1q(const Mat2& m, int q) {
  const std::size_t bit = std::size_t{1} << q;
  // rho -> M rho M^dagger. Left multiply on rows, then right multiply
  // (by M^dagger) on columns.
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t row = 0; row < dim_; ++row) {
      if (row & bit) continue;
      const Complex a0 = rho_[row * dim_ + col];
      const Complex a1 = rho_[(row | bit) * dim_ + col];
      rho_[row * dim_ + col] = m[0] * a0 + m[1] * a1;
      rho_[(row | bit) * dim_ + col] = m[2] * a0 + m[3] * a1;
    }
  }
  const Mat2 md = circuit::mat2_adjoint(m);
  for (std::size_t row = 0; row < dim_; ++row) {
    for (std::size_t col = 0; col < dim_; ++col) {
      if (col & bit) continue;
      const Complex a0 = rho_[row * dim_ + col];
      const Complex a1 = rho_[row * dim_ + (col | bit)];
      // Right multiplication: rho' = rho * M^dagger, columns mix with
      // M^dagger's *columns* transposed -> use md rows as (rho * md).
      rho_[row * dim_ + col] = a0 * md[0] + a1 * md[2];
      rho_[row * dim_ + (col | bit)] = a0 * md[1] + a1 * md[3];
    }
  }
}

void DensityMatrix::apply_left_right_2q(const Mat4& m, int qb, int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t row = 0; row < dim_; ++row) {
      if ((row & bit_b) || (row & bit_a)) continue;
      std::size_t idx[4] = {row, row | bit_a, row | bit_b,
                            row | bit_b | bit_a};
      Complex amp[4];
      for (int k = 0; k < 4; ++k) amp[k] = rho_[idx[k] * dim_ + col];
      for (int r = 0; r < 4; ++r) {
        Complex acc{0.0, 0.0};
        for (int k = 0; k < 4; ++k) {
          acc += m[static_cast<std::size_t>(r * 4 + k)] * amp[k];
        }
        rho_[idx[r] * dim_ + col] = acc;
      }
    }
  }
  // Right multiply by M^dagger: (rho * M^dagger)_{r,c} =
  // sum_k rho_{r,k} conj(M_{c,k}).
  for (std::size_t row = 0; row < dim_; ++row) {
    for (std::size_t col = 0; col < dim_; ++col) {
      if ((col & bit_b) || (col & bit_a)) continue;
      std::size_t idx[4] = {col, col | bit_a, col | bit_b,
                            col | bit_b | bit_a};
      Complex amp[4];
      for (int k = 0; k < 4; ++k) amp[k] = rho_[row * dim_ + idx[k]];
      for (int c = 0; c < 4; ++c) {
        Complex acc{0.0, 0.0};
        for (int k = 0; k < 4; ++k) {
          acc += amp[k] * std::conj(m[static_cast<std::size_t>(c * 4 + k)]);
        }
        rho_[row * dim_ + idx[c]] = acc;
      }
    }
  }
}

void DensityMatrix::apply_mat2(const Mat2& m, int q) {
  apply_left_right_1q(m, q);
}

void DensityMatrix::apply_mat4(const Mat4& m, int qb, int qa) {
  apply_left_right_2q(m, qb, qa);
}

void DensityMatrix::apply_gate(const circuit::Gate& g,
                               std::span<const double> params) {
  const auto bound = g.bound_params(params);
  if (g.arity() == 1) {
    apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
  } else {
    apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
               g.qubits[1]);
  }
}

void DensityMatrix::depolarize_1q(int q, double p) {
  if (p <= 0.0) return;
  DensityMatrix x = *this;
  x.apply_left_right_1q(kPauliX, q);
  DensityMatrix y = *this;
  y.apply_left_right_1q(kPauliY, q);
  DensityMatrix z = *this;
  z.apply_left_right_1q(kPauliZ, q);
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    rho_[i] = (1.0 - p) * rho_[i] +
              (p / 3.0) * (x.rho_[i] + y.rho_[i] + z.rho_[i]);
  }
}

void DensityMatrix::depolarize_2q(int a, int b, double p) {
  if (p <= 0.0) return;
  const Mat2 kId{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{1, 0}};
  const Mat2 paulis[4] = {kId, kPauliX, kPauliY, kPauliZ};
  std::vector<Complex> acc(rho_.size(), Complex{0.0, 0.0});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == 0 && j == 0) continue;
      DensityMatrix t = *this;
      t.apply_left_right_2q(
          kron2(paulis[static_cast<std::size_t>(i)],
                paulis[static_cast<std::size_t>(j)]),
          b, a);
      for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += t.rho_[k];
    }
  }
  for (std::size_t k = 0; k < rho_.size(); ++k) {
    rho_[k] = (1.0 - p) * rho_[k] + (p / 15.0) * acc[k];
  }
}

void DensityMatrix::amplitude_damp(int q, double gamma) {
  if (gamma <= 0.0) return;
  const double sg = std::sqrt(gamma);
  const double s1 = std::sqrt(1.0 - gamma);
  const Mat2 k0{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{s1, 0}};
  const Mat2 k1{Complex{0, 0}, Complex{sg, 0}, Complex{0, 0}, Complex{0, 0}};
  DensityMatrix a = *this;
  a.apply_left_right_1q(k0, q);
  DensityMatrix b = *this;
  b.apply_left_right_1q(k1, q);
  for (std::size_t i = 0; i < rho_.size(); ++i) rho_[i] = a.rho_[i] + b.rho_[i];
}

void DensityMatrix::phase_damp(int q, double lambda) {
  if (lambda <= 0.0) return;
  const double s1 = std::sqrt(1.0 - lambda);
  const double sl = std::sqrt(lambda);
  const Mat2 k0{Complex{1, 0}, Complex{0, 0}, Complex{0, 0}, Complex{s1, 0}};
  const Mat2 k1{Complex{0, 0}, Complex{0, 0}, Complex{0, 0}, Complex{sl, 0}};
  DensityMatrix a = *this;
  a.apply_left_right_1q(k0, q);
  DensityMatrix b = *this;
  b.apply_left_right_1q(k1, q);
  for (std::size_t i = 0; i < rho_.size(); ++i) rho_[i] = a.rho_[i] + b.rho_[i];
}

double DensityMatrix::expectation_z(int q) const {
  return 1.0 - 2.0 * probability_of_one(q);
}

double DensityMatrix::probability_of_one(int q) const {
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (i & bit) p += rho_[i * dim_ + i].real();
  }
  return p;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p[i] = rho_[i * dim_ + i].real();
  return p;
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) t += rho_[i * dim_ + i].real();
  return t;
}

bool DensityMatrix::is_hermitian(double tol) const {
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = r; c < dim_; ++c) {
      if (std::abs(rho_[r * dim_ + c] - std::conj(rho_[c * dim_ + r])) > tol) {
        return false;
      }
    }
  }
  return true;
}

double DensityMatrix::purity() const {
  double p = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      p += std::norm(rho_[r * dim_ + c]);
    }
  }
  return p;
}

double reference_expectation_z(const circuit::Circuit& c,
                               std::span<const double> params,
                               const NoiseModel& noise, int qubit) {
  DensityMatrix rho(c.num_qubits());
  for (const circuit::Gate& g : c.gates()) {
    const auto bound = noise.enabled() ? noise.biased_params(g, params)
                                       : g.bound_params(params);
    if (g.arity() == 1) {
      rho.apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
    } else {
      rho.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                     g.qubits[1]);
    }
    if (!noise.enabled()) continue;
    const double p = noise.gate_error(g);
    if (p <= 0.0) continue;
    // Match the trajectory engine: an independent single-qubit
    // depolarizing event on each involved qubit.
    for (int k = 0; k < g.arity(); ++k) {
      rho.depolarize_1q(g.qubits[static_cast<std::size_t>(k)], p);
    }
  }
  double ez = rho.expectation_z(qubit);
  if (noise.enabled()) {
    // Classical readout flips contract <Z>:
    // <Z>' = (1 - p01 - p10) <Z> + (p10 - p01).
    const double p01 = noise.readout_p01(qubit);
    const double p10 = noise.readout_p10(qubit);
    ez = (1.0 - p01 - p10) * ez + (p10 - p01);
  }
  return ez;
}

}  // namespace arbiterq::sim
