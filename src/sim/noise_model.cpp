#include "arbiterq/sim/noise_model.hpp"

#include <stdexcept>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::sim {

NoiseModel::NoiseModel(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("NoiseModel: qubit count must be positive");
  }
  const auto n = static_cast<std::size_t>(num_qubits);
  p1_.assign(n, 0.0);
  p2_.assign(n * n, 0.0);
  bias_.assign(n, 0.0);
  read01_.assign(n, 0.0);
  read10_.assign(n, 0.0);
}

void NoiseModel::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("NoiseModel: qubit index out of range");
  }
}

namespace {
void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) + ": not a probability");
  }
}
}  // namespace

void NoiseModel::set_depolarizing_1q(int q, double p) {
  check_qubit(q);
  check_probability(p, "set_depolarizing_1q");
  p1_[static_cast<std::size_t>(q)] = p;
  if (p > 0.0) enabled_ = true;
}

void NoiseModel::set_depolarizing_2q(int a, int b, double p) {
  check_qubit(a);
  check_qubit(b);
  check_probability(p, "set_depolarizing_2q");
  const auto n = static_cast<std::size_t>(num_qubits_);
  p2_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] = p;
  p2_[static_cast<std::size_t>(b) * n + static_cast<std::size_t>(a)] = p;
  if (p > 0.0) enabled_ = true;
}

void NoiseModel::set_coherent_bias(int q, double radians) {
  check_qubit(q);
  bias_[static_cast<std::size_t>(q)] = radians;
  if (radians != 0.0) enabled_ = true;
}

void NoiseModel::set_readout_error(int q, double p0_to_1, double p1_to_0) {
  check_qubit(q);
  check_probability(p0_to_1, "set_readout_error");
  check_probability(p1_to_0, "set_readout_error");
  read01_[static_cast<std::size_t>(q)] = p0_to_1;
  read10_[static_cast<std::size_t>(q)] = p1_to_0;
  if (p0_to_1 > 0.0 || p1_to_0 > 0.0) enabled_ = true;
}

double NoiseModel::depolarizing_1q(int q) const {
  check_qubit(q);
  return p1_[static_cast<std::size_t>(q)];
}

double NoiseModel::depolarizing_2q(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  const auto n = static_cast<std::size_t>(num_qubits_);
  return p2_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
}

double NoiseModel::coherent_bias(int q) const {
  check_qubit(q);
  return bias_[static_cast<std::size_t>(q)];
}

double NoiseModel::readout_p01(int q) const {
  check_qubit(q);
  return read01_[static_cast<std::size_t>(q)];
}

double NoiseModel::readout_p10(int q) const {
  check_qubit(q);
  return read10_[static_cast<std::size_t>(q)];
}

double NoiseModel::gate_error(const circuit::Gate& g) const {
  if (num_qubits_ == 0) return 0.0;
  if (g.arity() == 1) {
    if (g.kind == circuit::GateKind::kI) return 0.0;
    return depolarizing_1q(g.qubits[0]);
  }
  return depolarizing_2q(g.qubits[0], g.qubits[1]);
}

std::array<double, 3> NoiseModel::biased_params(
    const circuit::Gate& g, std::span<const double> params) const {
  std::array<double, 3> bound = g.bound_params(params);
  if (num_qubits_ == 0 || g.param_count() == 0) return bound;
  // The rotation axis lives on the target qubit: qubits[0] for 1q gates,
  // qubits[1] for controlled rotations. Only the polar angle (first
  // parameter) picks up the calibration offset.
  const int target = g.arity() == 1 ? g.qubits[0] : g.qubits[1];
  bound[0] += coherent_bias(target);
  return bound;
}

double NoiseModel::survival_probability(const circuit::Circuit& c) const {
  double f = 1.0;
  if (num_qubits_ == 0) return f;
  for (const circuit::Gate& g : c.gates()) f *= 1.0 - gate_error(g);
  return f;
}

}  // namespace arbiterq::sim
