// AVX2(+FMA) arms of the gate kernels. This file is compiled with
// -mavx2 -mfma -ffp-contract=off (see src/sim/CMakeLists.txt) only when
// the toolchain targets x86; ARBITERQ_SIMD_AVX2 is defined for the
// whole aq_sim target in that case, and kernels.cpp gates every call on
// a runtime __builtin_cpu_supports check.
//
// -ffp-contract=off keeps the compiler from contracting the scalar
// tail loops' mul/add chains into FMA; the vector mul/addsub pairs of
// the Fma=false arm additionally carry a register barrier inside cmul,
// because GCC's combine pass fuses a mul feeding an addsub intrinsic
// into vfmaddsub regardless of the contract mode. The Fma=true arm
// uses explicit _mm256_fmaddsub_pd, so fusion there is opt-in.
//
// Layout notes. Amplitudes are interleaved [re, im] pairs, two complex
// values per 256-bit vector. A complex multiply by a scalar m lowers to
//     swapped = permute(v, 0b0101)            // [im, re]
//     addsub(mr * v, mi * swapped)            // [mr*re - mi*im,
//                                             //  mr*im + mi*re]
// which performs exactly the four products and two add/subs of
// std::complex multiplication, in the same order — the non-FMA arm is
// therefore bit-identical to the scalar loops, lane for lane.
//
// Butterfly vectorization pairs two groups per vector. For stride
// >= 2 consecutive groups touch consecutive amplitude indices and load
// directly; for stride 1 (qubit 0) the pair/partner amplitudes are
// interleaved in memory and one permute2f128 deinterleaves them.

#include "kernels_impl.hpp"

#if defined(ARBITERQ_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace arbiterq::sim::kernels::detail {

namespace {

inline bool is_zero(const Complex& c) noexcept {
  return c.real() == 0.0 && c.imag() == 0.0;
}

inline __m256d bc(double v) noexcept { return _mm256_set1_pd(v); }

/// Two-rounding scalar complex multiply for the tail/fallback loops.
/// This TU is compiled with -mfma, and GCC contracts even the
/// _Complex-lowering of std::complex operator* into vfmaddsub there
/// (ignoring -ffp-contract=off), so the four products are pinned in
/// registers to keep tails bit-identical to the scalar-TU kernels.
inline Complex csmul(Complex x, Complex y) noexcept {
  double rr = x.real() * y.real();
  double ii = x.imag() * y.imag();
  double ri = x.real() * y.imag();
  double ir = x.imag() * y.real();
  asm("" : "+x"(rr), "+x"(ii), "+x"(ri), "+x"(ir));
  return Complex{rr - ii, ri + ir};
}

/// m[0]*a0 + m[1]*a1 with csmul products (left-to-right sum).
inline Complex csrow2(const Complex* m, Complex a0, Complex a1) noexcept {
  return csmul(m[0], a0) + csmul(m[1], a1);
}

/// m[0]*a00 + m[1]*a01 + m[2]*a10 + m[3]*a11, left-to-right.
inline Complex csrow4(const Complex* m, Complex a00, Complex a01, Complex a10,
                      Complex a11) noexcept {
  return csmul(m[0], a00) + csmul(m[1], a01) + csmul(m[2], a10) +
         csmul(m[3], a11);
}

/// Complex multiply of two complex lanes by a broadcast scalar whose
/// real/imag parts are pre-splatted in mr/mi.
template <bool Fma>
inline __m256d cmul(__m256d mr, __m256d mi, __m256d v) noexcept {
  const __m256d sw = _mm256_permute_pd(v, 0x5);
  if constexpr (Fma) {
    return _mm256_fmaddsub_pd(mr, v, _mm256_mul_pd(mi, sw));
  }
  // -ffp-contract=off does not stop GCC's combine pass from fusing the
  // mul feeding an addsub intrinsic into vfmaddsub (the flag only gates
  // plain mul+add contraction), so pin the product in a register to
  // keep the non-FMA arm's two-rounding arithmetic — and with it the
  // bit-identity to the scalar kernels.
  __m256d pr = _mm256_mul_pd(mr, v);
  asm("" : "+x"(pr));
  return _mm256_addsub_pd(pr, _mm256_mul_pd(mi, sw));
}

template <bool Fma>
inline __m256d cmulc(const Complex& c, __m256d v) noexcept {
  return cmul<Fma>(bc(c.real()), bc(c.imag()), v);
}

/// [a[k] dup | b[k] dup]: per-lane scalars for two-sample kernels.
inline __m256d dup2(const double* a, const double* b) noexcept {
  return _mm256_set_m128d(_mm_loaddup_pd(b), _mm_loaddup_pd(a));
}

/// conj(l) * v per complex lane (fast-arm bracket reductions only).
inline __m256d cconjmul(__m256d l, __m256d v) noexcept {
  const __m256d lr = _mm256_movedup_pd(l);
  const __m256d li = _mm256_permute_pd(l, 0xF);
  const __m256d t = _mm256_mul_pd(li, _mm256_permute_pd(v, 0x5));
  return _mm256_fmsubadd_pd(lr, v, t);
}

/// Fold a vector accumulator's two complex lanes into one value.
inline Complex hsum(__m256d acc) noexcept {
  const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                               _mm256_extractf128_pd(acc, 1));
  alignas(16) double out[2];
  _mm_store_pd(out, s);
  return Complex{out[0], out[1]};
}

/// row[0..count) *= d, two amplitudes per vector.
template <bool Fma>
inline void scale_run(Complex* row, Complex d, std::size_t count) noexcept {
  const __m256d dr = bc(d.real());
  const __m256d di = bc(d.imag());
  double* p = reinterpret_cast<double*>(row);
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    _mm256_storeu_pd(p + 2 * b, cmul<Fma>(dr, di, _mm256_loadu_pd(p + 2 * b)));
  }
  for (; b < count; ++b) row[b] = csmul(row[b], d);
}

}  // namespace

// ---------------------------------------------------------------------------
// Unbatched statevector kernels

template <bool Fma>
void mat2_range_avx2(Complex* amps, const Mat2& m, int q, std::size_t lo,
                     std::size_t hi) {
  const std::size_t bit = std::size_t{1} << q;
  double* const base = reinterpret_cast<double*>(amps);
  const __m256d m0r = bc(m[0].real()), m0i = bc(m[0].imag());
  const __m256d m1r = bc(m[1].real()), m1i = bc(m[1].imag());
  const __m256d m2r = bc(m[2].real()), m2i = bc(m[2].imag());
  const __m256d m3r = bc(m[3].real()), m3i = bc(m[3].imag());
  auto scalar_group = [&](std::size_t p) {
    const std::size_t i0 = insert_zero_bit(p, q);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    amps[i0] = csrow2(&m[0], a0, a1);
    amps[i1] = csrow2(&m[2], a0, a1);
  };
  if (q == 0) {
    // Groups are adjacent [a0, a1] pairs: deinterleave two groups with
    // 128-bit permutes, butterfly, re-interleave.
    std::size_t p = lo;
    for (; p + 2 <= hi; p += 2) {
      double* ptr = base + 4 * p;
      const __m256d va = _mm256_loadu_pd(ptr);
      const __m256d vb = _mm256_loadu_pd(ptr + 4);
      const __m256d a0 = _mm256_permute2f128_pd(va, vb, 0x20);
      const __m256d a1 = _mm256_permute2f128_pd(va, vb, 0x31);
      const __m256d o0 =
          _mm256_add_pd(cmul<Fma>(m0r, m0i, a0), cmul<Fma>(m1r, m1i, a1));
      const __m256d o1 =
          _mm256_add_pd(cmul<Fma>(m2r, m2i, a0), cmul<Fma>(m3r, m3i, a1));
      _mm256_storeu_pd(ptr, _mm256_permute2f128_pd(o0, o1, 0x20));
      _mm256_storeu_pd(ptr + 4, _mm256_permute2f128_pd(o0, o1, 0x31));
    }
    for (; p < hi; ++p) scalar_group(p);
    return;
  }
  // Stride >= 2: consecutive groups inside one stride-run touch
  // consecutive indices, so both butterfly arms load contiguously.
  std::size_t p = lo;
  while (p < hi) {
    if (p + 1 < hi && (p & (bit - 1)) != bit - 1) {
      const std::size_t i0 = insert_zero_bit(p, q);
      double* p0 = base + 2 * i0;
      double* p1 = base + 2 * (i0 | bit);
      const __m256d a0 = _mm256_loadu_pd(p0);
      const __m256d a1 = _mm256_loadu_pd(p1);
      _mm256_storeu_pd(
          p0, _mm256_add_pd(cmul<Fma>(m0r, m0i, a0), cmul<Fma>(m1r, m1i, a1)));
      _mm256_storeu_pd(
          p1, _mm256_add_pd(cmul<Fma>(m2r, m2i, a0), cmul<Fma>(m3r, m3i, a1)));
      p += 2;
    } else {
      scalar_group(p);
      ++p;
    }
  }
}

template <bool Fma>
void diag2_range_avx2(Complex* amps, Complex d0, Complex d1, std::size_t bit,
                      std::size_t lo, std::size_t hi) {
  double* const base = reinterpret_cast<double*>(amps);
  if (bit == 1) {
    // The factor alternates [d0, d1] per amplitude pair.
    std::size_t i = lo;
    if ((i & 1) != 0 && i < hi) {
      amps[i] = csmul(amps[i], d1);
      ++i;
    }
    const __m256d dr =
        _mm256_setr_pd(d0.real(), d0.real(), d1.real(), d1.real());
    const __m256d di =
        _mm256_setr_pd(d0.imag(), d0.imag(), d1.imag(), d1.imag());
    for (; i + 2 <= hi; i += 2) {
      double* p = base + 2 * i;
      _mm256_storeu_pd(p, cmul<Fma>(dr, di, _mm256_loadu_pd(p)));
    }
    if (i < hi) amps[i] = csmul(amps[i], d0);
    return;
  }
  // Runs of `bit` consecutive indices share one factor.
  std::size_t i = lo;
  while (i < hi) {
    const Complex d = (i & bit) ? d1 : d0;
    const std::size_t run_end = std::min(hi, (i | (bit - 1)) + 1);
    scale_run<Fma>(amps + i, d, run_end - i);
    i = run_end;
  }
}

template <bool Fma>
void mat4_range_avx2(Complex* amps, const Mat4& m, int qb, int qa,
                     std::size_t lo, std::size_t hi) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  const int q_lo = qb < qa ? qb : qa;
  const int q_hi = qb < qa ? qa : qb;
  const std::size_t low_lo = (std::size_t{1} << q_lo) - 1;
  const std::size_t low_hi = (std::size_t{1} << q_hi) - 1;
  double* const base = reinterpret_cast<double*>(amps);
  // Left-to-right fold, matching the scalar row sums exactly.
  auto row4 = [&](const Complex* r, __m256d a00, __m256d a01, __m256d a10,
                  __m256d a11) {
    __m256d acc = cmulc<Fma>(r[0], a00);
    acc = _mm256_add_pd(acc, cmulc<Fma>(r[1], a01));
    acc = _mm256_add_pd(acc, cmulc<Fma>(r[2], a10));
    acc = _mm256_add_pd(acc, cmulc<Fma>(r[3], a11));
    return acc;
  };
  auto scalar_group = [&](std::size_t g) {
    const std::size_t i00 = insert_zero_bit(insert_zero_bit(g, q_lo), q_hi);
    const std::size_t i01 = i00 | bit_a;
    const std::size_t i10 = i00 | bit_b;
    const std::size_t i11 = i00 | bit_b | bit_a;
    const Complex a00 = amps[i00];
    const Complex a01 = amps[i01];
    const Complex a10 = amps[i10];
    const Complex a11 = amps[i11];
    amps[i00] = csrow4(&m[0], a00, a01, a10, a11);
    amps[i01] = csrow4(&m[4], a00, a01, a10, a11);
    amps[i10] = csrow4(&m[8], a00, a01, a10, a11);
    amps[i11] = csrow4(&m[12], a00, a01, a10, a11);
  };
  if (q_lo >= 1) {
    // Consecutive groups inside a q_lo-run touch consecutive indices in
    // all four butterfly arms.
    std::size_t g = lo;
    while (g < hi) {
      const std::size_t j = insert_zero_bit(g, q_lo);
      if (g + 1 < hi && (g & low_lo) != low_lo && (j & low_hi) != low_hi) {
        const std::size_t i00 = insert_zero_bit(j, q_hi);
        double* p00 = base + 2 * i00;
        double* p01 = base + 2 * (i00 | bit_a);
        double* p10 = base + 2 * (i00 | bit_b);
        double* p11 = base + 2 * (i00 | bit_b | bit_a);
        const __m256d a00 = _mm256_loadu_pd(p00);
        const __m256d a01 = _mm256_loadu_pd(p01);
        const __m256d a10 = _mm256_loadu_pd(p10);
        const __m256d a11 = _mm256_loadu_pd(p11);
        _mm256_storeu_pd(p00, row4(&m[0], a00, a01, a10, a11));
        _mm256_storeu_pd(p01, row4(&m[4], a00, a01, a10, a11));
        _mm256_storeu_pd(p10, row4(&m[8], a00, a01, a10, a11));
        _mm256_storeu_pd(p11, row4(&m[12], a00, a01, a10, a11));
        g += 2;
      } else {
        scalar_group(g);
        ++g;
      }
    }
    return;
  }
  // q_lo == 0: the qubit-0 partner of every index is adjacent in
  // memory, so each contiguous quad holds two groups' worth of one
  // butterfly arm pair — deinterleave with permute2f128 as in the 1q
  // stride-1 case. The other arm pair sits bit_hi complex values away.
  const std::size_t bit_hi = std::size_t{1} << q_hi;
  std::size_t g = lo;
  while (g < hi) {
    const std::size_t j = insert_zero_bit(g, 0);  // == 2 * g
    if (g + 1 < hi && (j & low_hi) != low_hi - 1) {
      const std::size_t i00 = insert_zero_bit(j, q_hi);
      double* p_lo = base + 2 * i00;
      double* p_hi = base + 2 * (i00 | bit_hi);
      const __m256d va = _mm256_loadu_pd(p_lo);
      const __m256d vb = _mm256_loadu_pd(p_lo + 4);
      const __m256d vc = _mm256_loadu_pd(p_hi);
      const __m256d vd = _mm256_loadu_pd(p_hi + 4);
      const __m256d w0 = _mm256_permute2f128_pd(va, vb, 0x20);
      const __m256d w1 = _mm256_permute2f128_pd(va, vb, 0x31);
      const __m256d y0 = _mm256_permute2f128_pd(vc, vd, 0x20);
      const __m256d y1 = _mm256_permute2f128_pd(vc, vd, 0x31);
      // qubit 0 is `qa` (bit_a == 1): quad partner is a01/a11;
      // otherwise qubit 0 is `qb` and the partner is a10/a11.
      const __m256d a00 = w0;
      const __m256d a01 = bit_a == 1 ? w1 : y0;
      const __m256d a10 = bit_a == 1 ? y0 : w1;
      const __m256d a11 = y1;
      const __m256d o00 = row4(&m[0], a00, a01, a10, a11);
      const __m256d o01 = row4(&m[4], a00, a01, a10, a11);
      const __m256d o10 = row4(&m[8], a00, a01, a10, a11);
      const __m256d o11 = row4(&m[12], a00, a01, a10, a11);
      const __m256d ow = bit_a == 1 ? o01 : o10;
      const __m256d oy = bit_a == 1 ? o10 : o01;
      _mm256_storeu_pd(p_lo, _mm256_permute2f128_pd(o00, ow, 0x20));
      _mm256_storeu_pd(p_lo + 4, _mm256_permute2f128_pd(o00, ow, 0x31));
      _mm256_storeu_pd(p_hi, _mm256_permute2f128_pd(oy, o11, 0x20));
      _mm256_storeu_pd(p_hi + 4, _mm256_permute2f128_pd(oy, o11, 0x31));
      g += 2;
    } else {
      scalar_group(g);
      ++g;
    }
  }
}

template <bool Fma>
void diag4_range_avx2(Complex* amps, const Complex* d, std::size_t bit_b,
                      std::size_t bit_a, std::size_t lo, std::size_t hi) {
  const std::size_t bit_min = bit_a < bit_b ? bit_a : bit_b;
  const std::size_t bit_max = bit_a < bit_b ? bit_b : bit_a;
  auto sel_of = [&](std::size_t i) {
    return ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
  };
  if (bit_min >= 2) {
    // Runs of bit_min consecutive indices share one selector (bit_max
    // runs are unions of bit_min runs).
    std::size_t i = lo;
    while (i < hi) {
      const std::size_t run_end = std::min(hi, (i | (bit_min - 1)) + 1);
      scale_run<Fma>(amps + i, d[sel_of(i)], run_end - i);
      i = run_end;
    }
    return;
  }
  // One of the qubits is 0: the selector alternates per amplitude, the
  // other bit holds over runs of bit_max.
  const unsigned low_contrib = bit_a == 1 ? 1U : 2U;
  double* const base = reinterpret_cast<double*>(amps);
  std::size_t i = lo;
  if ((i & 1) != 0 && i < hi) {
    amps[i] = csmul(amps[i], d[sel_of(i)]);
    ++i;
  }
  while (i < hi) {
    const unsigned s0 = sel_of(i);  // i even: qubit-0 bit clear
    const Complex e0 = d[s0];
    const Complex e1 = d[s0 | low_contrib];
    const __m256d dr =
        _mm256_setr_pd(e0.real(), e0.real(), e1.real(), e1.real());
    const __m256d di =
        _mm256_setr_pd(e0.imag(), e0.imag(), e1.imag(), e1.imag());
    const std::size_t run_end = std::min(hi, (i | (bit_max - 1)) + 1);
    std::size_t j = i;
    for (; j + 2 <= run_end; j += 2) {
      double* p = base + 2 * j;
      _mm256_storeu_pd(p, cmul<Fma>(dr, di, _mm256_loadu_pd(p)));
    }
    if (j < run_end) amps[j] = csmul(amps[j], e0);  // j even
    i = run_end;
  }
}

// ---------------------------------------------------------------------------
// Fast-arm bracket reductions. Lane accumulators hold two partial
// complex sums that are folded once at the end, so the summation
// association differs from the scalar bracket — these run only when
// strict reproducibility is off (ULP bounds tested in test_kernels).

Complex bracket_1q_avx2(const Complex* lam, const Complex* psi, std::size_t n,
                        const Mat2& m, int q) {
  const std::size_t bit = std::size_t{1} << q;
  const double* lp = reinterpret_cast<const double*>(lam);
  const double* pp = reinterpret_cast<const double*>(psi);
  __m256d acc = _mm256_setzero_pd();
  Complex tail{0.0, 0.0};
  if (is_zero(m[1]) && is_zero(m[2])) {
    const Complex d0 = m[0], d1 = m[3];
    if (bit == 1) {
      const __m256d dr =
          _mm256_setr_pd(d0.real(), d0.real(), d1.real(), d1.real());
      const __m256d di =
          _mm256_setr_pd(d0.imag(), d0.imag(), d1.imag(), d1.imag());
      std::size_t i = 0;
      for (; i + 2 <= n; i += 2) {
        const __m256d mu = cmul<true>(dr, di, _mm256_loadu_pd(pp + 2 * i));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i), mu));
      }
      for (; i < n; ++i) tail += std::conj(lam[i]) * (psi[i] * d0);
      return hsum(acc) + tail;
    }
    std::size_t i = 0;
    while (i < n) {
      const Complex dv = (i & bit) ? d1 : d0;
      const __m256d dr = bc(dv.real());
      const __m256d di = bc(dv.imag());
      const std::size_t run_end = std::min(n, (i | (bit - 1)) + 1);
      for (; i + 2 <= run_end; i += 2) {
        const __m256d mu = cmul<true>(dr, di, _mm256_loadu_pd(pp + 2 * i));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i), mu));
      }
      for (; i < run_end; ++i) tail += std::conj(lam[i]) * (psi[i] * dv);
    }
    return hsum(acc) + tail;
  }
  const std::size_t n_groups = n >> 1;
  if (bit == 1) {
    // Lanes hold one group's (i0, i1); both arms need both inputs, so
    // pair each lane with its 128-bit-swapped sibling.
    const __m256d mar = _mm256_setr_pd(m[0].real(), m[0].real(), m[3].real(),
                                       m[3].real());
    const __m256d mai = _mm256_setr_pd(m[0].imag(), m[0].imag(), m[3].imag(),
                                       m[3].imag());
    const __m256d mbr = _mm256_setr_pd(m[1].real(), m[1].real(), m[2].real(),
                                       m[2].real());
    const __m256d mbi = _mm256_setr_pd(m[1].imag(), m[1].imag(), m[2].imag(),
                                       m[2].imag());
    for (std::size_t p = 0; p < n_groups; ++p) {
      const __m256d v = _mm256_loadu_pd(pp + 4 * p);
      const __m256d vs = _mm256_permute2f128_pd(v, v, 0x01);
      const __m256d mu = _mm256_add_pd(cmul<true>(mar, mai, v),
                                       cmul<true>(mbr, mbi, vs));
      acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 4 * p), mu));
    }
    return hsum(acc);
  }
  std::size_t p = 0;
  while (p < n_groups) {
    if (p + 1 < n_groups && (p & (bit - 1)) != bit - 1) {
      const std::size_t i0 = insert_zero_bit(p, q);
      const std::size_t i1 = i0 | bit;
      const __m256d v0 = _mm256_loadu_pd(pp + 2 * i0);
      const __m256d v1 = _mm256_loadu_pd(pp + 2 * i1);
      const __m256d mu0 =
          _mm256_add_pd(cmulc<true>(m[0], v0), cmulc<true>(m[1], v1));
      const __m256d mu1 =
          _mm256_add_pd(cmulc<true>(m[2], v0), cmulc<true>(m[3], v1));
      acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i0), mu0));
      acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i1), mu1));
      p += 2;
    } else {
      const std::size_t i0 = insert_zero_bit(p, q);
      const std::size_t i1 = i0 | bit;
      tail += std::conj(lam[i0]) * (m[0] * psi[i0] + m[1] * psi[i1]);
      tail += std::conj(lam[i1]) * (m[2] * psi[i0] + m[3] * psi[i1]);
      ++p;
    }
  }
  return hsum(acc) + tail;
}

Complex bracket_2q_avx2(const Complex* lam, const Complex* psi, std::size_t n,
                        const Mat4& m, int qb, int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  bool diagonal = true;
  for (int r = 0; r < 4 && diagonal; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m[static_cast<std::size_t>(4 * r + c)])) {
        diagonal = false;
        break;
      }
    }
  }
  const double* lp = reinterpret_cast<const double*>(lam);
  const double* pp = reinterpret_cast<const double*>(psi);
  __m256d acc = _mm256_setzero_pd();
  Complex tail{0.0, 0.0};
  if (diagonal) {
    const Complex d[4] = {m[0], m[5], m[10], m[15]};
    // Reuse the diag4 run decomposition, accumulating instead of
    // scaling.
    const std::size_t bit_min = bit_a < bit_b ? bit_a : bit_b;
    const std::size_t bit_max = bit_a < bit_b ? bit_b : bit_a;
    auto sel_of = [&](std::size_t i) {
      return ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
    };
    std::size_t i = 0;
    if (bit_min >= 2) {
      while (i < n) {
        const Complex dv = d[sel_of(i)];
        const __m256d dr = bc(dv.real());
        const __m256d di = bc(dv.imag());
        const std::size_t run_end = std::min(n, (i | (bit_min - 1)) + 1);
        for (; i + 2 <= run_end; i += 2) {
          const __m256d mu = cmul<true>(dr, di, _mm256_loadu_pd(pp + 2 * i));
          acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i), mu));
        }
        for (; i < run_end; ++i) tail += std::conj(lam[i]) * (psi[i] * dv);
      }
      return hsum(acc) + tail;
    }
    const unsigned low_contrib = bit_a == 1 ? 1U : 2U;
    while (i < n) {
      const unsigned s0 = sel_of(i);
      const Complex e0 = d[s0];
      const Complex e1 = d[s0 | low_contrib];
      const __m256d dr =
          _mm256_setr_pd(e0.real(), e0.real(), e1.real(), e1.real());
      const __m256d di =
          _mm256_setr_pd(e0.imag(), e0.imag(), e1.imag(), e1.imag());
      const std::size_t run_end = std::min(n, (i | (bit_max - 1)) + 1);
      for (; i + 2 <= run_end; i += 2) {
        const __m256d mu = cmul<true>(dr, di, _mm256_loadu_pd(pp + 2 * i));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i), mu));
      }
      for (; i < run_end; ++i) tail += std::conj(lam[i]) * (psi[i] * d[sel_of(i)]);
    }
    return hsum(acc) + tail;
  }
  // General: walk butterfly groups (two per vector when contiguous),
  // computing all four row brackets per group.
  const int q_lo = qb < qa ? qb : qa;
  const int q_hi = qb < qa ? qa : qb;
  const std::size_t low_lo = (std::size_t{1} << q_lo) - 1;
  const std::size_t low_hi = (std::size_t{1} << q_hi) - 1;
  const std::size_t n_groups = n >> 2;
  auto row4 = [&](const Complex* r, __m256d a00, __m256d a01, __m256d a10,
                  __m256d a11) {
    __m256d s = cmulc<true>(r[0], a00);
    s = _mm256_add_pd(s, cmulc<true>(r[1], a01));
    s = _mm256_add_pd(s, cmulc<true>(r[2], a10));
    s = _mm256_add_pd(s, cmulc<true>(r[3], a11));
    return s;
  };
  auto scalar_group = [&](std::size_t g) {
    const std::size_t i00 = insert_zero_bit(insert_zero_bit(g, q_lo), q_hi);
    const std::size_t idx[4] = {i00, i00 | bit_a, i00 | bit_b,
                                i00 | bit_b | bit_a};
    const Complex a00 = psi[idx[0]];
    const Complex a01 = psi[idx[1]];
    const Complex a10 = psi[idx[2]];
    const Complex a11 = psi[idx[3]];
    for (unsigned r = 0; r < 4; ++r) {
      const Complex* row = &m[static_cast<std::size_t>(4 * r)];
      tail += std::conj(lam[idx[r]]) *
              (row[0] * a00 + row[1] * a01 + row[2] * a10 + row[3] * a11);
    }
  };
  std::size_t g = 0;
  if (q_lo >= 1) {
    while (g < n_groups) {
      const std::size_t j = insert_zero_bit(g, q_lo);
      if (g + 1 < n_groups && (g & low_lo) != low_lo &&
          (j & low_hi) != low_hi) {
        const std::size_t i00 = insert_zero_bit(j, q_hi);
        const std::size_t i01 = i00 | bit_a;
        const std::size_t i10 = i00 | bit_b;
        const std::size_t i11 = i00 | bit_b | bit_a;
        const __m256d a00 = _mm256_loadu_pd(pp + 2 * i00);
        const __m256d a01 = _mm256_loadu_pd(pp + 2 * i01);
        const __m256d a10 = _mm256_loadu_pd(pp + 2 * i10);
        const __m256d a11 = _mm256_loadu_pd(pp + 2 * i11);
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i00),
                                          row4(&m[0], a00, a01, a10, a11)));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i01),
                                          row4(&m[4], a00, a01, a10, a11)));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i10),
                                          row4(&m[8], a00, a01, a10, a11)));
        acc = _mm256_add_pd(acc, cconjmul(_mm256_loadu_pd(lp + 2 * i11),
                                          row4(&m[12], a00, a01, a10, a11)));
        g += 2;
      } else {
        scalar_group(g);
        ++g;
      }
    }
    return hsum(acc) + tail;
  }
  const std::size_t bit_hi = std::size_t{1} << q_hi;
  while (g < n_groups) {
    const std::size_t j = insert_zero_bit(g, 0);
    if (g + 1 < n_groups && (j & low_hi) != low_hi - 1) {
      const std::size_t i00 = insert_zero_bit(j, q_hi);
      const double* p_lo = pp + 2 * i00;
      const double* p_hi = pp + 2 * (i00 | bit_hi);
      const double* l_lo = lp + 2 * i00;
      const double* l_hi = lp + 2 * (i00 | bit_hi);
      const __m256d va = _mm256_loadu_pd(p_lo);
      const __m256d vb = _mm256_loadu_pd(p_lo + 4);
      const __m256d vc = _mm256_loadu_pd(p_hi);
      const __m256d vd = _mm256_loadu_pd(p_hi + 4);
      const __m256d w0 = _mm256_permute2f128_pd(va, vb, 0x20);
      const __m256d w1 = _mm256_permute2f128_pd(va, vb, 0x31);
      const __m256d y0 = _mm256_permute2f128_pd(vc, vd, 0x20);
      const __m256d y1 = _mm256_permute2f128_pd(vc, vd, 0x31);
      const __m256d a00 = w0;
      const __m256d a01 = bit_a == 1 ? w1 : y0;
      const __m256d a10 = bit_a == 1 ? y0 : w1;
      const __m256d a11 = y1;
      const __m256d la = _mm256_loadu_pd(l_lo);
      const __m256d lb = _mm256_loadu_pd(l_lo + 4);
      const __m256d lc = _mm256_loadu_pd(l_hi);
      const __m256d ld = _mm256_loadu_pd(l_hi + 4);
      const __m256d lw0 = _mm256_permute2f128_pd(la, lb, 0x20);
      const __m256d lw1 = _mm256_permute2f128_pd(la, lb, 0x31);
      const __m256d ly0 = _mm256_permute2f128_pd(lc, ld, 0x20);
      const __m256d ly1 = _mm256_permute2f128_pd(lc, ld, 0x31);
      const __m256d l00 = lw0;
      const __m256d l01 = bit_a == 1 ? lw1 : ly0;
      const __m256d l10 = bit_a == 1 ? ly0 : lw1;
      const __m256d l11 = ly1;
      acc = _mm256_add_pd(acc, cconjmul(l00, row4(&m[0], a00, a01, a10, a11)));
      acc = _mm256_add_pd(acc, cconjmul(l01, row4(&m[4], a00, a01, a10, a11)));
      acc =
          _mm256_add_pd(acc, cconjmul(l10, row4(&m[8], a00, a01, a10, a11)));
      acc =
          _mm256_add_pd(acc, cconjmul(l11, row4(&m[12], a00, a01, a10, a11)));
      g += 2;
    } else {
      scalar_group(g);
      ++g;
    }
  }
  return hsum(acc) + tail;
}

// ---------------------------------------------------------------------------
// Sample-batched row kernels: rows are contiguous, so every arm is a
// straight strided loop — the mini-GEMM inner dimension.

template <bool Fma>
void batched_mat2_avx2(Complex* r0, Complex* r1, const Mat2& m,
                       std::size_t count) {
  double* p0 = reinterpret_cast<double*>(r0);
  double* p1 = reinterpret_cast<double*>(r1);
  const __m256d m0r = bc(m[0].real()), m0i = bc(m[0].imag());
  const __m256d m1r = bc(m[1].real()), m1i = bc(m[1].imag());
  const __m256d m2r = bc(m[2].real()), m2i = bc(m[2].imag());
  const __m256d m3r = bc(m[3].real()), m3i = bc(m[3].imag());
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    const __m256d a0 = _mm256_loadu_pd(p0 + 2 * b);
    const __m256d a1 = _mm256_loadu_pd(p1 + 2 * b);
    _mm256_storeu_pd(p0 + 2 * b, _mm256_add_pd(cmul<Fma>(m0r, m0i, a0),
                                               cmul<Fma>(m1r, m1i, a1)));
    _mm256_storeu_pd(p1 + 2 * b, _mm256_add_pd(cmul<Fma>(m2r, m2i, a0),
                                               cmul<Fma>(m3r, m3i, a1)));
  }
  for (; b < count; ++b) {
    const Complex a0 = r0[b];
    const Complex a1 = r1[b];
    r0[b] = csrow2(&m[0], a0, a1);
    r1[b] = csrow2(&m[2], a0, a1);
  }
}

template <bool Fma>
void batched_mat2_each_avx2(Complex* r0, Complex* r1, const Mat2* mats,
                            std::size_t count) {
  double* p0 = reinterpret_cast<double*>(r0);
  double* p1 = reinterpret_cast<double*>(r1);
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    const double* ma = reinterpret_cast<const double*>(mats + b);
    const double* mb = reinterpret_cast<const double*>(mats + b + 1);
    const __m256d a0 = _mm256_loadu_pd(p0 + 2 * b);
    const __m256d a1 = _mm256_loadu_pd(p1 + 2 * b);
    const __m256d o0 =
        _mm256_add_pd(cmul<Fma>(dup2(ma + 0, mb + 0), dup2(ma + 1, mb + 1), a0),
                      cmul<Fma>(dup2(ma + 2, mb + 2), dup2(ma + 3, mb + 3), a1));
    const __m256d o1 =
        _mm256_add_pd(cmul<Fma>(dup2(ma + 4, mb + 4), dup2(ma + 5, mb + 5), a0),
                      cmul<Fma>(dup2(ma + 6, mb + 6), dup2(ma + 7, mb + 7), a1));
    _mm256_storeu_pd(p0 + 2 * b, o0);
    _mm256_storeu_pd(p1 + 2 * b, o1);
  }
  for (; b < count; ++b) {
    const Mat2& m = mats[b];
    const Complex a0 = r0[b];
    const Complex a1 = r1[b];
    r0[b] = csrow2(&m[0], a0, a1);
    r1[b] = csrow2(&m[2], a0, a1);
  }
}

template <bool Fma>
void batched_scale_avx2(Complex* row, Complex d, std::size_t count) {
  scale_run<Fma>(row, d, count);
}

template <bool Fma>
void batched_scale_each_avx2(Complex* row, const Complex* ds,
                             std::size_t count) {
  double* p = reinterpret_cast<double*>(row);
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    const double* da = reinterpret_cast<const double*>(ds + b);
    const double* db = reinterpret_cast<const double*>(ds + b + 1);
    _mm256_storeu_pd(p + 2 * b,
                     cmul<Fma>(dup2(da + 0, db + 0), dup2(da + 1, db + 1),
                               _mm256_loadu_pd(p + 2 * b)));
  }
  for (; b < count; ++b) row[b] = csmul(row[b], ds[b]);
}

template <bool Fma>
void batched_mat4_avx2(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                       const Mat4& m, std::size_t count) {
  double* p00 = reinterpret_cast<double*>(r00);
  double* p01 = reinterpret_cast<double*>(r01);
  double* p10 = reinterpret_cast<double*>(r10);
  double* p11 = reinterpret_cast<double*>(r11);
  auto row4 = [&](const Complex* r, __m256d a00, __m256d a01, __m256d a10,
                  __m256d a11) {
    __m256d s = cmulc<Fma>(r[0], a00);
    s = _mm256_add_pd(s, cmulc<Fma>(r[1], a01));
    s = _mm256_add_pd(s, cmulc<Fma>(r[2], a10));
    s = _mm256_add_pd(s, cmulc<Fma>(r[3], a11));
    return s;
  };
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    const __m256d a00 = _mm256_loadu_pd(p00 + 2 * b);
    const __m256d a01 = _mm256_loadu_pd(p01 + 2 * b);
    const __m256d a10 = _mm256_loadu_pd(p10 + 2 * b);
    const __m256d a11 = _mm256_loadu_pd(p11 + 2 * b);
    _mm256_storeu_pd(p00 + 2 * b, row4(&m[0], a00, a01, a10, a11));
    _mm256_storeu_pd(p01 + 2 * b, row4(&m[4], a00, a01, a10, a11));
    _mm256_storeu_pd(p10 + 2 * b, row4(&m[8], a00, a01, a10, a11));
    _mm256_storeu_pd(p11 + 2 * b, row4(&m[12], a00, a01, a10, a11));
  }
  for (; b < count; ++b) {
    const Complex a00 = r00[b];
    const Complex a01 = r01[b];
    const Complex a10 = r10[b];
    const Complex a11 = r11[b];
    r00[b] = csrow4(&m[0], a00, a01, a10, a11);
    r01[b] = csrow4(&m[4], a00, a01, a10, a11);
    r10[b] = csrow4(&m[8], a00, a01, a10, a11);
    r11[b] = csrow4(&m[12], a00, a01, a10, a11);
  }
}

template <bool Fma>
void batched_mat4_each_avx2(Complex* r00, Complex* r01, Complex* r10,
                            Complex* r11, const Mat4* mats,
                            std::size_t count) {
  double* p00 = reinterpret_cast<double*>(r00);
  double* p01 = reinterpret_cast<double*>(r01);
  double* p10 = reinterpret_cast<double*>(r10);
  double* p11 = reinterpret_cast<double*>(r11);
  std::size_t b = 0;
  for (; b + 2 <= count; b += 2) {
    const double* ma = reinterpret_cast<const double*>(mats + b);
    const double* mb = reinterpret_cast<const double*>(mats + b + 1);
    const __m256d a00 = _mm256_loadu_pd(p00 + 2 * b);
    const __m256d a01 = _mm256_loadu_pd(p01 + 2 * b);
    const __m256d a10 = _mm256_loadu_pd(p10 + 2 * b);
    const __m256d a11 = _mm256_loadu_pd(p11 + 2 * b);
    auto row4 = [&](unsigned r, __m256d* out) {
      const std::size_t o = 8 * r;  // 4 complex = 8 doubles per row
      __m256d s = cmul<Fma>(dup2(ma + o, mb + o), dup2(ma + o + 1, mb + o + 1),
                            a00);
      s = _mm256_add_pd(s, cmul<Fma>(dup2(ma + o + 2, mb + o + 2),
                                     dup2(ma + o + 3, mb + o + 3), a01));
      s = _mm256_add_pd(s, cmul<Fma>(dup2(ma + o + 4, mb + o + 4),
                                     dup2(ma + o + 5, mb + o + 5), a10));
      s = _mm256_add_pd(s, cmul<Fma>(dup2(ma + o + 6, mb + o + 6),
                                     dup2(ma + o + 7, mb + o + 7), a11));
      *out = s;
    };
    __m256d o00, o01, o10, o11;
    row4(0, &o00);
    row4(1, &o01);
    row4(2, &o10);
    row4(3, &o11);
    _mm256_storeu_pd(p00 + 2 * b, o00);
    _mm256_storeu_pd(p01 + 2 * b, o01);
    _mm256_storeu_pd(p10 + 2 * b, o10);
    _mm256_storeu_pd(p11 + 2 * b, o11);
  }
  for (; b < count; ++b) {
    const Mat4& m = mats[b];
    const Complex a00 = r00[b];
    const Complex a01 = r01[b];
    const Complex a10 = r10[b];
    const Complex a11 = r11[b];
    r00[b] = csrow4(&m[0], a00, a01, a10, a11);
    r01[b] = csrow4(&m[4], a00, a01, a10, a11);
    r10[b] = csrow4(&m[8], a00, a01, a10, a11);
    r11[b] = csrow4(&m[12], a00, a01, a10, a11);
  }
}

// ---------------------------------------------------------------------------
// Explicit instantiations: Fma = false is the strict (bit-identical)
// arm, Fma = true the fast arm.

template void mat2_range_avx2<false>(Complex*, const Mat2&, int, std::size_t,
                                     std::size_t);
template void mat2_range_avx2<true>(Complex*, const Mat2&, int, std::size_t,
                                    std::size_t);
template void diag2_range_avx2<false>(Complex*, Complex, Complex, std::size_t,
                                      std::size_t, std::size_t);
template void diag2_range_avx2<true>(Complex*, Complex, Complex, std::size_t,
                                     std::size_t, std::size_t);
template void mat4_range_avx2<false>(Complex*, const Mat4&, int, int,
                                     std::size_t, std::size_t);
template void mat4_range_avx2<true>(Complex*, const Mat4&, int, int,
                                    std::size_t, std::size_t);
template void diag4_range_avx2<false>(Complex*, const Complex*, std::size_t,
                                      std::size_t, std::size_t, std::size_t);
template void diag4_range_avx2<true>(Complex*, const Complex*, std::size_t,
                                     std::size_t, std::size_t, std::size_t);
template void batched_mat2_avx2<false>(Complex*, Complex*, const Mat2&,
                                       std::size_t);
template void batched_mat2_avx2<true>(Complex*, Complex*, const Mat2&,
                                      std::size_t);
template void batched_mat2_each_avx2<false>(Complex*, Complex*, const Mat2*,
                                            std::size_t);
template void batched_mat2_each_avx2<true>(Complex*, Complex*, const Mat2*,
                                           std::size_t);
template void batched_scale_avx2<false>(Complex*, Complex, std::size_t);
template void batched_scale_avx2<true>(Complex*, Complex, std::size_t);
template void batched_scale_each_avx2<false>(Complex*, const Complex*,
                                             std::size_t);
template void batched_scale_each_avx2<true>(Complex*, const Complex*,
                                            std::size_t);
template void batched_mat4_avx2<false>(Complex*, Complex*, Complex*, Complex*,
                                       const Mat4&, std::size_t);
template void batched_mat4_avx2<true>(Complex*, Complex*, Complex*, Complex*,
                                      const Mat4&, std::size_t);
template void batched_mat4_each_avx2<false>(Complex*, Complex*, Complex*,
                                            Complex*, const Mat4*,
                                            std::size_t);
template void batched_mat4_each_avx2<true>(Complex*, Complex*, Complex*,
                                           Complex*, const Mat4*, std::size_t);

}  // namespace arbiterq::sim::kernels::detail

#endif  // ARBITERQ_SIMD_AVX2
