#include "arbiterq/sim/exec_plan.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::sim {

namespace {

using circuit::Complex;
using circuit::Gate;
using circuit::Mat2;
using circuit::Mat4;

constexpr Mat2 kIdentity2{Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
                          Complex{1, 0}};

bool gate_is_static(const Gate& g) {
  for (int i = 0; i < g.param_count(); ++i) {
    if (!g.params[static_cast<std::size_t>(i)].is_constant()) return false;
  }
  return true;
}

/// Ids start at 1 so a zero-initialized Workspace stamp is always cold.
std::uint64_t next_plan_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Workspace

Statevector& Workspace::reuse(std::optional<Statevector>& slot, int num_qubits,
                              const exec::ExecPolicy& policy) {
  if (!slot.has_value() || slot->num_qubits() != num_qubits) {
    slot.emplace(num_qubits);
  }
  slot->set_exec_policy(policy);
  return *slot;
}

Statevector& Workspace::state(int num_qubits, const exec::ExecPolicy& policy) {
  Statevector& sv = reuse(state_, num_qubits, policy);
  sv.reset();
  return sv;
}

Statevector& Workspace::lambda(int num_qubits, const exec::ExecPolicy& policy) {
  return reuse(lambda_, num_qubits, policy);
}

Statevector& Workspace::mu(int num_qubits, const exec::ExecPolicy& policy) {
  return reuse(mu_, num_qubits, policy);
}

// ---------------------------------------------------------------------------
// WorkspacePool

WorkspacePool::Lease WorkspacePool::acquire() {
  std::unique_ptr<Workspace> ws;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      ws = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (ws == nullptr) ws = std::make_unique<Workspace>();
  return Lease(this, std::move(ws));
}

void WorkspacePool::release(std::unique_ptr<Workspace> ws) {
  const std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ws));
}

// ---------------------------------------------------------------------------
// ExecPlan

ExecPlan::ExecPlan(const circuit::Circuit& c, const NoiseModel& noise,
                   const exec::ExecPolicy& policy)
    : num_qubits_(c.num_qubits()),
      num_params_(c.num_params()),
      noisy_(noise.enabled()),
      depth_(c.depth()),
      plan_id_(next_plan_id()),
      policy_(policy) {
  AQ_TRACE_SPAN("sim.plan.compile");
  survival_ = noisy_ ? noise.survival_probability(c) : 1.0;

  // Angle spec of one gate, with the target qubit's coherent bias
  // captured so bind replays NoiseModel::biased_params exactly.
  auto make_spec = [&](const Gate& g) {
    FoldOp op;
    op.dynamic = !gate_is_static(g);
    op.kind = g.kind;
    op.param_count = g.param_count();
    op.params = g.params;
    if (noisy_ && noise.num_qubits() > 0 && g.param_count() > 0) {
      const int target = g.arity() == 1 ? g.qubits[0] : g.qubits[1];
      op.bias = noise.coherent_bias(target);
    }
    return op;
  };
  // Static gates have their matrix built once, here, by the same calls
  // the naive path makes per evaluation.
  auto static_bound = [&](const Gate& g) {
    std::array<double, 3> bound{{0.0, 0.0, 0.0}};
    for (int i = 0; i < g.param_count(); ++i) {
      bound[static_cast<std::size_t>(i)] =
          g.params[static_cast<std::size_t>(i)].offset;
    }
    if (noisy_ && noise.num_qubits() > 0 && g.param_count() > 0) {
      const int target = g.arity() == 1 ? g.qubits[0] : g.qubits[1];
      bound[0] += noise.coherent_bias(target);
    }
    return bound;
  };

  // Symbolic replay of run_biased's per-qubit 1q-run fusion. The prefix
  // fold below performs the identical mat2_multiply(m, acc) sequence
  // run_biased performs at evaluation time, so the pre-folded constants
  // are bitwise the matrices it would have applied.
  struct PendingRun {
    Mat2 prefix = kIdentity2;
    std::vector<FoldOp> tail;
    bool any = false;
    std::size_t static_count = 0;
  };
  std::vector<PendingRun> pending(static_cast<std::size_t>(num_qubits_));

  auto flush = [&](int q) {
    auto& run = pending[static_cast<std::size_t>(q)];
    if (!run.any) return;
    if (run.tail.empty()) {
      stream_.push_back({StreamOp::Kind::kConst1q, q, 0,
                         static_cast<int>(const1q_.size())});
      const1q_.push_back(run.prefix);
    } else {
      stream_.push_back({StreamOp::Kind::kBound1q, q, 0,
                         static_cast<int>(bound1q_.size())});
      Bound1qSlot slot{run.prefix, std::move(run.tail), q, n_slot_dyn1q_};
      for (const FoldOp& op : slot.tail) {
        if (op.dynamic) ++n_slot_dyn1q_;
      }
      bound1q_.push_back(std::move(slot));
    }
    fused_gates_ += run.static_count;
    run = PendingRun{};
  };

  int n_dyn = 0;
  for (const Gate& g : c.gates()) {
    // Gate-table entry (per-gate view for adjoint/trajectory walks).
    GateEntry entry;
    entry.kind = g.kind;
    entry.q0 = g.qubits[0];
    entry.q1 = g.qubits[1];
    entry.arity = g.arity();
    entry.dynamic = !gate_is_static(g);
    entry.error = noisy_ ? noise.gate_error(g) : 0.0;
    if (entry.dynamic) {
      entry.spec = make_spec(g);
      entry.bound_index = n_dyn++;
      for (int slot = 0; slot < g.param_count(); ++slot) {
        const circuit::ParamExpr& pe = g.params[static_cast<std::size_t>(slot)];
        if (pe.is_constant()) continue;
        entry.grads.push_back({slot, pe.index, pe.coeff,
                               g.arity() == 1 ? n_grad1q_++ : n_grad2q_++});
      }
    }

    if (g.arity() == 1) {
      auto& run = pending[static_cast<std::size_t>(g.qubits[0])];
      run.any = true;
      if (entry.dynamic) {
        entry.index = n_dyn1q_++;
        run.tail.push_back(make_spec(g));
      } else {
        const Mat2 m = circuit::gate_matrix_1q(g.kind, static_bound(g));
        entry.index = static_cast<int>(table1q_.size());
        table1q_.push_back(m);
        table1q_adj_.push_back(circuit::mat2_adjoint(m));
        ++run.static_count;
        if (run.tail.empty()) {
          run.prefix = circuit::mat2_multiply(m, run.prefix);
        } else {
          FoldOp op;
          op.constant = m;
          run.tail.push_back(op);
        }
      }
    } else {
      flush(g.qubits[0]);
      flush(g.qubits[1]);
      if (entry.dynamic) {
        entry.index = n_dyn2q_++;
        stream_.push_back({StreamOp::Kind::kBound2q, g.qubits[0], g.qubits[1],
                           static_cast<int>(bound2q_.size())});
        bound2q_.push_back({make_spec(g)});
      } else {
        const Mat4 m = circuit::gate_matrix_2q(g.kind, static_bound(g));
        entry.index = static_cast<int>(table2q_.size());
        table2q_.push_back(m);
        table2q_adj_.push_back(circuit::mat4_adjoint(m));
        stream_.push_back({StreamOp::Kind::kConst2q, g.qubits[0], g.qubits[1],
                           static_cast<int>(const2q_.size())});
        const2q_.push_back(m);
        ++fused_gates_;
      }
    }
    table_.push_back(std::move(entry));
  }
  for (int q = 0; q < num_qubits_; ++q) flush(q);
  n_dyn_ = n_dyn;

  AQ_COUNTER_ADD("sim.plan.builds", 1);
  AQ_COUNTER_ADD("sim.plan.gates", static_cast<std::uint64_t>(table_.size()));
  AQ_COUNTER_ADD("sim.plan.fused_gates",
                 static_cast<std::uint64_t>(fused_gates_));
  AQ_COUNTER_ADD("sim.plan.stream_ops",
                 static_cast<std::uint64_t>(stream_.size()));
}

void ExecPlan::check_params(std::span<const double> params) const {
  if (static_cast<int>(params.size()) < num_params_) {
    throw std::invalid_argument("ExecPlan: params too short");
  }
}

void ExecPlan::bind(std::span<const double> params, Workspace& ws) const {
  check_params(params);
  AQ_COUNTER_ADD("sim.plan.binds", 1);
  // Memoized rebinding: a slot whose dynamic angles all match the
  // previous bind on this workspace keeps its folded matrix — it was
  // computed from identical inputs, so reuse is bit-exact. The stamp
  // ties the memo to this plan instance (ids are process-unique, so a
  // recalibration-rebuilt plan can never inherit stale matrices).
  const bool warm = ws.bound_plan_id == plan_id_;
  if (!warm) {
    ws.bound1q.resize(bound1q_.size());
    ws.bound2q.resize(bound2q_.size());
    ws.memo1q.resize(n_slot_dyn1q_);
    ws.memo2q.resize(bound2q_.size());
    ws.bound_plan_id = plan_id_;
  }
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < bound1q_.size(); ++i) {
    const Bound1qSlot& slot = bound1q_[i];
    bool dirty = !warm;
    std::size_t mo = slot.memo_offset;
    for (const FoldOp& op : slot.tail) {
      if (!op.dynamic) continue;
      const std::array<double, 3> b = op.bound(params, noisy_);
      if (dirty || b != ws.memo1q[mo]) {
        ws.memo1q[mo] = b;
        dirty = true;
      }
      ++mo;
    }
    if (!dirty) {
      ++hits;
      continue;
    }
    Mat2 acc = slot.prefix;
    mo = slot.memo_offset;
    for (const FoldOp& op : slot.tail) {
      const Mat2 m = op.dynamic
                         ? circuit::gate_matrix_1q(op.kind, ws.memo1q[mo++])
                         : op.constant;
      acc = circuit::mat2_multiply(m, acc);
    }
    ws.bound1q[i] = acc;
  }
  for (std::size_t i = 0; i < bound2q_.size(); ++i) {
    const FoldOp& spec = bound2q_[i].spec;
    const std::array<double, 3> b = spec.bound(params, noisy_);
    if (warm && b == ws.memo2q[i]) {
      ++hits;
      continue;
    }
    ws.memo2q[i] = b;
    ws.bound2q[i] = circuit::gate_matrix_2q(spec.kind, b);
  }
  AQ_COUNTER_ADD("sim.plan.bind.memo_hits", hits);
}

Statevector& ExecPlan::run(std::span<const double> params,
                           Workspace& ws) const {
  AQ_COUNTER_ADD("sim.plan.runs", 1);
  bind(params, ws);
  Statevector& sv = ws.state(num_qubits_, policy_);
  for (const StreamOp& op : stream_) {
    switch (op.kind) {
      case StreamOp::Kind::kConst1q:
        sv.apply_mat2(const1q_[static_cast<std::size_t>(op.index)], op.q0);
        break;
      case StreamOp::Kind::kBound1q:
        sv.apply_mat2(ws.bound1q[static_cast<std::size_t>(op.index)], op.q0);
        break;
      case StreamOp::Kind::kConst2q:
        sv.apply_mat4(const2q_[static_cast<std::size_t>(op.index)], op.q0,
                      op.q1);
        break;
      case StreamOp::Kind::kBound2q:
        sv.apply_mat4(ws.bound2q[static_cast<std::size_t>(op.index)], op.q0,
                      op.q1);
        break;
    }
  }
  return sv;
}

double ExecPlan::expectation_z(std::span<const double> params, int qubit,
                               Workspace& ws) const {
  const Statevector& sv = run(params, ws);
  return survival_ * sv.expectation_z(qubit);
}

void ExecPlan::bind_gates(std::span<const double> params,
                          Workspace& ws) const {
  check_params(params);
  // dyn_bound doubles as the memo: an entry whose angles are unchanged
  // since the previous bind_gates on this workspace keeps its matrix
  // (same inputs, so the retained matrix is bit-exact).
  const bool warm = ws.gates_plan_id == plan_id_;
  if (!warm) {
    ws.dyn1q.resize(static_cast<std::size_t>(n_dyn1q_));
    ws.dyn2q.resize(static_cast<std::size_t>(n_dyn2q_));
    ws.dyn_bound.resize(static_cast<std::size_t>(n_dyn_));
    ws.dyn1q_adj.resize(static_cast<std::size_t>(n_dyn1q_));
    ws.dyn2q_adj.resize(static_cast<std::size_t>(n_dyn2q_));
    ws.dgrad1q.resize(static_cast<std::size_t>(n_grad1q_));
    ws.dgrad2q.resize(static_cast<std::size_t>(n_grad2q_));
    ws.gates_plan_id = plan_id_;
  }
  std::uint64_t hits = 0;
  for (const GateEntry& e : table_) {
    if (!e.dynamic) continue;
    const auto bound = e.spec.bound(params, noisy_);
    auto& memo = ws.dyn_bound[static_cast<std::size_t>(e.bound_index)];
    if (warm && bound == memo) {
      ++hits;
      continue;
    }
    memo = bound;
    if (e.arity == 1) {
      const Mat2 m = circuit::gate_matrix_1q(e.kind, bound);
      ws.dyn1q[static_cast<std::size_t>(e.index)] = m;
      ws.dyn1q_adj[static_cast<std::size_t>(e.index)] =
          circuit::mat2_adjoint(m);
      for (const GateEntry::GradTerm& t : e.grads) {
        ws.dgrad1q[static_cast<std::size_t>(t.dindex)] =
            circuit::d_gate_matrix_1q(e.kind, bound, t.slot);
      }
    } else {
      const Mat4 m = circuit::gate_matrix_2q(e.kind, bound);
      ws.dyn2q[static_cast<std::size_t>(e.index)] = m;
      ws.dyn2q_adj[static_cast<std::size_t>(e.index)] =
          circuit::mat4_adjoint(m);
      for (const GateEntry::GradTerm& t : e.grads) {
        ws.dgrad2q[static_cast<std::size_t>(t.dindex)] =
            circuit::d_gate_matrix_2q(e.kind, bound);
      }
    }
  }
  AQ_COUNTER_ADD("sim.plan.bind.memo_hits", hits);
}

}  // namespace arbiterq::sim
