#include "arbiterq/sim/observables.hpp"

#include <stdexcept>

namespace arbiterq::sim {

namespace {

using circuit::PauliOp;
using circuit::PauliString;

void apply_pauli_string(Statevector& sv, const PauliString& p) {
  for (int q = 0; q < p.num_qubits(); ++q) {
    switch (p.op(q)) {
      case PauliOp::kI:
        break;
      case PauliOp::kX:
        sv.apply_pauli(1, q);
        break;
      case PauliOp::kY:
        sv.apply_pauli(2, q);
        break;
      case PauliOp::kZ:
        sv.apply_pauli(3, q);
        break;
    }
  }
}

}  // namespace

double expectation(const Statevector& sv, const PauliString& p) {
  if (p.num_qubits() != sv.num_qubits()) {
    throw std::invalid_argument("expectation: qubit count mismatch");
  }
  Statevector transformed = sv;
  apply_pauli_string(transformed, p);
  Complex acc{0.0, 0.0};
  const auto& a = sv.amplitudes();
  const auto& b = transformed.amplitudes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::conj(a[i]) * b[i];
  }
  return acc.real();
}

double expectation(const DensityMatrix& rho, const PauliString& p) {
  if (p.num_qubits() != rho.num_qubits()) {
    throw std::invalid_argument("expectation: qubit count mismatch");
  }
  // Tr(rho P) = sum_i (rho P)_{ii} = sum_{i,j} rho_{ij} P_{ji}. Every
  // Pauli string has exactly one nonzero entry per column: P|i> =
  // phase(i) |m(i)>, so P_{ji} = phase(i) [j == m(i)] and
  // Tr(rho P) = sum_i phase(i) rho_{i, m(i)}... computed via the
  // statevector trick on columns is overkill; do it directly.
  const std::size_t dim = rho.dim();
  Complex total{0.0, 0.0};
  for (std::size_t i = 0; i < dim; ++i) {
    std::size_t j = i;
    Complex phase{1.0, 0.0};
    for (int q = 0; q < p.num_qubits(); ++q) {
      const std::size_t bit = std::size_t{1} << q;
      const bool one = (i & bit) != 0;
      switch (p.op(q)) {
        case PauliOp::kI:
          break;
        case PauliOp::kX:
          j ^= bit;
          break;
        case PauliOp::kY:
          j ^= bit;
          phase *= one ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
          break;
        case PauliOp::kZ:
          if (one) phase *= -1.0;
          break;
      }
    }
    // (rho P)_{ii} = sum_j rho_{ij} P_{ji}; P maps |i> -> phase |j>,
    // i.e. P_{ji} = phase, so the contribution is rho_{i j} * phase.
    total += rho.element(i, j) * phase;
  }
  return total.real();
}

double expectation(const Statevector& sv,
                   const std::vector<PauliTerm>& observable) {
  double total = 0.0;
  for (const PauliTerm& term : observable) {
    total += term.coefficient * expectation(sv, term.pauli);
  }
  return total;
}

}  // namespace arbiterq::sim
