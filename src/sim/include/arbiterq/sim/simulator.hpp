#pragma once
// Circuit execution engines.
//
// StatevectorSimulator offers two noise treatments:
//  * exact mode — coherent biases applied deterministically; stochastic
//    gate errors collapse to an expectation-value attenuation factor
//    (survival probability toward the maximally mixed state). Fast and
//    deterministic: used for training, where thousands of parameter-shift
//    evaluations per epoch are needed.
//  * trajectory mode — after every gate a random Pauli fires on each
//    involved qubit with the gate's depolarizing probability; measurement
//    applies classical readout flips. Shots are distributed over a
//    configurable number of independent trajectories: used for inference,
//    where ArbiterQ's shot-splitting across a torus is the object of
//    study.

#include <cstdint>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/noise_model.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {

struct ShotOptions {
  int shots = 1000;
  /// Independent noisy trajectories the shots are spread across. More
  /// trajectories = better noise averaging but more state evolutions.
  int trajectories = 32;
};

class StatevectorSimulator {
 public:
  /// Ideal simulator (no noise model).
  StatevectorSimulator() = default;
  explicit StatevectorSimulator(NoiseModel noise);

  const NoiseModel& noise() const noexcept { return noise_; }

  /// Kernel-splitting policy stamped onto every Statevector this engine
  /// evolves (default: serial). Large registers split their butterfly
  /// passes across the shared pool; results stay bit-identical.
  void set_exec_policy(const exec::ExecPolicy& policy) noexcept {
    exec_ = policy;
  }
  const exec::ExecPolicy& exec_policy() const noexcept { return exec_; }

  /// Evolve |0..0> through the circuit with no noise at all.
  Statevector run_ideal(const circuit::Circuit& c,
                        std::span<const double> params) const;

  /// Evolve with coherent biases only (deterministic part of the noise).
  Statevector run_biased(const circuit::Circuit& c,
                         std::span<const double> params) const;

  /// Exact-mode noisy expectation of Z on `qubit`:
  /// survival * <Z>_biased (depolarized remainder contributes 0).
  double expectation_z(const circuit::Circuit& c,
                       std::span<const double> params, int qubit) const;

  /// Exact-mode probability of measuring `qubit` = 1.
  double probability_of_one(const circuit::Circuit& c,
                            std::span<const double> params, int qubit) const;

  /// Trajectory-mode sampling: returns counts per basis state
  /// (size 2^num_qubits). Deterministic given `rng`'s state.
  std::vector<std::uint32_t> sample_counts(const circuit::Circuit& c,
                                           std::span<const double> params,
                                           const ShotOptions& opts,
                                           math::Rng& rng) const;

  /// Fraction of sampled shots with `qubit` = 1.
  double sampled_probability_of_one(const circuit::Circuit& c,
                                    std::span<const double> params, int qubit,
                                    const ShotOptions& opts,
                                    math::Rng& rng) const;

 private:
  void run_trajectory(const circuit::Circuit& c,
                      std::span<const double> params, Statevector& sv,
                      math::Rng& rng) const;

  NoiseModel noise_;
  exec::ExecPolicy exec_{};
};

}  // namespace arbiterq::sim
