#pragma once
// Circuit execution engines.
//
// StatevectorSimulator offers two noise treatments:
//  * exact mode — coherent biases applied deterministically; stochastic
//    gate errors collapse to an expectation-value attenuation factor
//    (survival probability toward the maximally mixed state). Fast and
//    deterministic: used for training, where thousands of parameter-shift
//    evaluations per epoch are needed.
//  * trajectory mode — after every gate a random Pauli fires on each
//    involved qubit with the gate's depolarizing probability; measurement
//    applies classical readout flips. Shots are distributed over a
//    configurable number of independent trajectories: used for inference,
//    where ArbiterQ's shot-splitting across a torus is the object of
//    study.

#include <cstdint>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/exec_plan.hpp"
#include "arbiterq/sim/noise_model.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {

struct ShotOptions {
  int shots = 1000;
  /// Independent noisy trajectories the shots are spread across. More
  /// trajectories = better noise averaging but more state evolutions.
  int trajectories = 32;
};

class StatevectorSimulator {
 public:
  /// Ideal simulator (no noise model).
  StatevectorSimulator() = default;
  explicit StatevectorSimulator(NoiseModel noise);

  const NoiseModel& noise() const noexcept { return noise_; }

  /// Kernel-splitting policy stamped onto every Statevector this engine
  /// evolves (default: serial). Large registers split their butterfly
  /// passes across the shared pool; results stay bit-identical.
  void set_exec_policy(const exec::ExecPolicy& policy) noexcept {
    exec_ = policy;
  }
  const exec::ExecPolicy& exec_policy() const noexcept { return exec_; }

  /// Evolve |0..0> through the circuit with no noise at all.
  Statevector run_ideal(const circuit::Circuit& c,
                        std::span<const double> params) const;

  /// Evolve with coherent biases only (deterministic part of the noise).
  Statevector run_biased(const circuit::Circuit& c,
                         std::span<const double> params) const;

  /// Exact-mode noisy expectation of Z on `qubit`:
  /// survival * <Z>_biased (depolarized remainder contributes 0).
  double expectation_z(const circuit::Circuit& c,
                       std::span<const double> params, int qubit) const;

  /// Same, with the circuit's survival probability precomputed by the
  /// caller (it is constant per circuit — recomputing it per call walks
  /// the whole gate list for nothing).
  double expectation_z(const circuit::Circuit& c,
                       std::span<const double> params, int qubit,
                       double survival) const;

  /// Compile `c` against this engine's noise model and kernel policy.
  /// The plan is bit-identical to run_biased/expectation_z and must be
  /// rebuilt if the noise model changes (e.g. on recalibration).
  ExecPlan make_plan(const circuit::Circuit& c) const {
    return ExecPlan(c, noise_, exec_);
  }

  /// Plan-based exact-mode expectation (zero allocations once `ws` is
  /// warm). Bit-identical to the circuit-walking overload above.
  double expectation_z(const ExecPlan& plan, std::span<const double> params,
                       int qubit, Workspace& ws) const {
    return plan.expectation_z(params, qubit, ws);
  }

  /// Exact-mode probability of measuring `qubit` = 1.
  double probability_of_one(const circuit::Circuit& c,
                            std::span<const double> params, int qubit) const;

  /// Trajectory-mode sampling: returns counts per basis state
  /// (size 2^num_qubits). Deterministic given `rng`'s state.
  std::vector<std::uint32_t> sample_counts(const circuit::Circuit& c,
                                           std::span<const double> params,
                                           const ShotOptions& opts,
                                           math::Rng& rng) const;

  /// Trajectory-mode count of shots that read `qubit` as 1, sampled from
  /// the single-qubit marginal: O(1) memory per shot instead of
  /// sample_counts' 2^n histogram (1 GiB of counters at the 26-qubit
  /// cap). Readout error is applied to the target qubit only.
  std::uint64_t sample_marginal_ones(const circuit::Circuit& c,
                                     std::span<const double> params, int qubit,
                                     const ShotOptions& opts,
                                     math::Rng& rng) const;

  /// Fraction of sampled shots with `qubit` = 1 (marginal path).
  double sampled_probability_of_one(const circuit::Circuit& c,
                                    std::span<const double> params, int qubit,
                                    const ShotOptions& opts,
                                    math::Rng& rng) const;

  /// Plan-based, trajectory-batched marginal sampler (batched.cpp):
  /// trajectories evolve kBatchBlock at a time through a
  /// BatchedStatevector, with every random decision pre-drawn in
  /// trajectory order so results are bit-identical for every block
  /// size. The draw schedule is value-independent (one flip uniform per
  /// shot whenever readout noise is configured), so it differs from the
  /// circuit-walking sampler's stream — same distribution, different
  /// bits for a given seed.
  std::uint64_t sample_marginal_ones(const ExecPlan& plan,
                                     std::span<const double> params, int qubit,
                                     const ShotOptions& opts, math::Rng& rng,
                                     BatchedWorkspace& ws) const;
  double sampled_probability_of_one(const ExecPlan& plan,
                                    std::span<const double> params, int qubit,
                                    const ShotOptions& opts, math::Rng& rng,
                                    BatchedWorkspace& ws) const;

 private:
  void run_trajectory(const circuit::Circuit& c,
                      std::span<const double> params, Statevector& sv,
                      math::Rng& rng) const;

  NoiseModel noise_;
  exec::ExecPolicy exec_{};
};

}  // namespace arbiterq::sim
