#pragma once
// Adjoint differentiation (reverse-mode through the state vector): the
// full gradient of <Z_qubit> with respect to every circuit parameter in
// O(#gates) state evolutions, instead of parameter shift's O(#params)
// circuit executions. Exact for pure-state evolution, so it matches the
// parameter-shift rules bit-for-bit on noiseless circuits (tested), and
// under the exact-mode noise treatment (coherent biases + attenuation)
// it differentiates the same objective StatevectorSimulator::
// expectation_z computes: biases are additive constants and the
// attenuation factor is parameter-independent.
//
// Algorithm (PennyLane/qiskit "adjoint Jacobian"):
//   psi = U |0>,  lambda = Z_q psi
//   for gate k = T..1:
//     psi    <- G_k^dagger psi            (state before gate k)
//     grad_p += 2 Re <lambda| dG_k/dp |psi>   for each bound parameter
//     lambda <- G_k^dagger lambda
//
// Two entry points: the naive path re-walks the circuit per call; the
// ExecPlan path reuses precompiled matrices and workspace registers and
// is bit-identical to it (tests/test_exec_plan.cpp).

#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/sim/exec_plan.hpp"
#include "arbiterq/sim/noise_model.hpp"

namespace arbiterq::sim {

/// Gradient of <Z_qubit> with respect to params[0..num_params). When
/// `noise` is non-null, rotation angles are biased and the result is
/// scaled by the circuit's survival probability — the derivative of the
/// exact-mode noisy expectation.
std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit,
                                       const NoiseModel* noise = nullptr);

/// Same, with the circuit's survival probability precomputed by the
/// caller (it is constant per circuit; see ExecPlan::survival). Only
/// used when `noise` is non-null and enabled.
std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit, const NoiseModel* noise,
                                       double survival);

/// Plan-based gradient into a caller-provided span (>= num_params).
/// Zero heap allocations after the workspace is warm. Bit-identical to
/// the naive path above.
void adjoint_gradient_z(const ExecPlan& plan, std::span<const double> params,
                        int qubit, Workspace& ws, std::span<double> grad);

/// Allocating convenience wrapper around the span variant.
std::vector<double> adjoint_gradient_z(const ExecPlan& plan,
                                       std::span<const double> params,
                                       int qubit, Workspace& ws);

/// Sample-batched plan gradient: sample b's parameter binding starts at
/// params + b * stride (stride >= num_params) and its gradient is
/// written to grads + b * num_params. The forward walk over the
/// unfused gate table runs as one batched mini-GEMM sweep; the reverse
/// sweep then runs per column against that column's bound matrices, so
/// every sample's gradient is bit-identical to the unbatched plan
/// overload above (under strict reproducibility; the opt-in fast arm
/// is ULP-equivalent, matching the batched forward contract).
void adjoint_gradient_z_batched(const ExecPlan& plan, const double* params,
                                std::size_t stride, std::size_t batch,
                                int qubit, BatchedWorkspace& ws,
                                double* grads);

}  // namespace arbiterq::sim
