#pragma once
// Sample-batched forward execution: evaluate one compiled ExecPlan
// against B parameter bindings in a single pass over the register.
//
// A BatchedStatevector stores amplitudes structure-of-arrays: basis
// index i holds a contiguous row of B complex values, one per sample.
// Applying a fused gate then becomes a cache-blocked mini-GEMM — the
// butterfly walks rows once and the kernels stream B-wide down each
// row — instead of B separate sweeps of the full register. This
// amortizes everything that is per-sweep in the unbatched path
// (dispatch, counters, workspace traffic, matrix reloads) across the
// batch, which dominates at QNN register sizes (dim 16..64).
//
// Reproducibility contract: per-column arithmetic is identical to the
// unbatched kernels (kernels.hpp), the batched bind replays bind()'s
// fold per column, and the Z-expectation accumulates in the same basis
// order per sample — so batched results are bit-identical across batch
// sizes, and under strict reproducibility also bit-identical to the
// unbatched path. (In the opt-in fast arm an odd trailing column runs
// the scalar tail loop and may differ from the FMA lanes by ULPs.)
//
// Callers block samples into groups of kBatchBlock columns: at the
// 6-qubit QNN register (64 rows) a 32-wide block is 32 KiB of
// amplitudes — resident in L1 while the whole gate stream replays.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/exec_plan.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {

/// Preferred number of sample columns per batched evolution.
inline constexpr std::size_t kBatchBlock = 32;

/// Structure-of-arrays register: dim rows x batch columns, row i
/// starting at amplitudes()[i * batch]. Column b evolves exactly as an
/// unbatched Statevector would.
class BatchedStatevector {
 public:
  BatchedStatevector() = default;

  /// Shape the register to `num_qubits` x `batch` and reset every
  /// column to |0...0>. Reuses the existing allocation when possible.
  void configure(int num_qubits, std::size_t batch);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t batch() const noexcept { return batch_; }

  Complex* row(std::size_t i) noexcept { return amps_.data() + i * batch_; }
  const Complex* row(std::size_t i) const noexcept {
    return amps_.data() + i * batch_;
  }

  /// Apply one matrix to every column (broadcast mini-GEMM), with the
  /// same diagonal fast path as Statevector::apply_mat2/apply_mat4.
  void apply_mat2_all(const circuit::Mat2& m, int q);
  void apply_mat4_all(const circuit::Mat4& m, int qb, int qa);

  /// Apply mats[b] to column b. The diagonal dispatch is per-matrix, so
  /// columns are partitioned into maximal runs of equal dispatch and
  /// each run takes the kernel its matrices would take unbatched.
  void apply_mat2_each(const circuit::Mat2* mats, int q);
  void apply_mat4_each(const circuit::Mat4* mats, int qb, int qa);

  /// Apply one matrix to a single column (scalar walk; used for sparse
  /// per-trajectory Pauli insertions).
  void apply_mat2_col(const circuit::Mat2& m, int q, std::size_t col);
  void apply_pauli_col(int pauli, int q, std::size_t col);

  /// out[b] = P(qubit q reads 1) for column b, accumulated in basis
  /// order — the exact association of Statevector::probability_of_one.
  void probability_of_one_all(int q, double* out) const;

 private:
  int num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::size_t batch_ = 0;
  AmpVector amps_;
  /// Scratch for per-sample diagonal factors in the _each paths.
  std::vector<Complex> diag_scratch_;
};

/// Per-evaluation scratch for batched plan execution, the batched
/// sibling of Workspace. Fields follow the same convention: grown on
/// first bind against a plan, reused thereafter (zero steady-state
/// allocations for a fixed plan and block size).
class BatchedWorkspace {
 public:
  BatchedWorkspace() = default;

  BatchedStatevector& state() noexcept { return state_; }

  /// Caller scratch: packed per-sample parameters (sample b's binding
  /// at [b * stride, b * stride + num_params)) and per-sample outputs.
  std::vector<double> params;
  std::vector<double> values;

  /// Filled by ExecPlan::bind_batched — slot-major bound matrices
  /// (slot s, column b at [s * batch + b]) plus a per-slot flag telling
  /// run_batched the whole batch shares one matrix (broadcast kernel).
  std::vector<circuit::Mat2> bound1q_cols;
  std::vector<circuit::Mat4> bound2q_cols;
  std::vector<std::uint8_t> uniform1q;
  std::vector<std::uint8_t> uniform2q;
  /// Bind-time angle scratch (previous/current column per dynamic op).
  std::vector<std::array<double, 3>> angles_prev;
  std::vector<std::array<double, 3>> angles_cur;
  /// Shape stamp: plan identity and batch width the buffers were last
  /// sized for.
  std::uint64_t plan_id = 0;
  std::size_t batch = 0;

  /// Unbatched workspace for walks that bind the per-gate table
  /// (batched trajectory sampling reuses bind_gates' matrices).
  Workspace gates;

  /// Batched-adjoint scratch: one gate-table workspace per sample
  /// column (each keeps its own bind_gates memo, so the weight-gate
  /// rebind skip works exactly as in the unbatched path and the
  /// reverse sweep runs against that column's bound matrices), plus
  /// column-gathered dynamic matrices for the batched forward walk.
  std::vector<std::unique_ptr<Workspace>> col_gates;
  std::vector<circuit::Mat2> mat2_scratch;
  std::vector<circuit::Mat4> mat4_scratch;

 private:
  BatchedStatevector state_;
};

/// Mutex-guarded free list of BatchedWorkspaces, mirroring
/// WorkspacePool (copying yields a fresh pool).
class BatchedWorkspacePool {
 public:
  BatchedWorkspacePool() = default;
  BatchedWorkspacePool(const BatchedWorkspacePool&) noexcept {}
  BatchedWorkspacePool& operator=(const BatchedWorkspacePool&) noexcept {
    return *this;
  }

  class Lease {
   public:
    Lease(BatchedWorkspacePool* pool,
          std::unique_ptr<BatchedWorkspace> ws) noexcept
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() {
      if (ws_ != nullptr) pool_->release(std::move(ws_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    BatchedWorkspace& operator*() noexcept { return *ws_; }
    BatchedWorkspace* operator->() noexcept { return ws_.get(); }

   private:
    BatchedWorkspacePool* pool_;
    std::unique_ptr<BatchedWorkspace> ws_;
  };

  Lease acquire();

 private:
  void release(std::unique_ptr<BatchedWorkspace> ws);

  std::mutex mu_;
  std::vector<std::unique_ptr<BatchedWorkspace>> free_;
};

}  // namespace arbiterq::sim
