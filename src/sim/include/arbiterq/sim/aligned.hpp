#pragma once
// Cache-line-aligned storage for amplitude arrays. The SIMD kernels in
// kernels.hpp issue 32-byte vector loads against amplitude memory; a
// 64-byte base alignment guarantees those loads never split a cache
// line, and keeps the batched structure-of-arrays rows from sharing
// lines across thread-chunk boundaries.

#include <cstddef>
#include <new>

namespace arbiterq::sim {

/// Alignment of every amplitude allocation (one x86 cache line; also a
/// multiple of the 32-byte AVX2 vector width).
inline constexpr std::size_t kAmpAlignment = 64;

/// Minimal aligned allocator: std::vector storage with a guaranteed
/// base alignment. Stateless, so all instances compare equal and
/// vectors with different value types can exchange memory semantics
/// freely (rebind is the defaulted template form).
template <typename T, std::size_t Align = kAmpAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below type requirement");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace arbiterq::sim
