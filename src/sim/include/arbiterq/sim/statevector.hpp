#pragma once
// Pure state-vector register: the workhorse behind both the exact QNN
// executor (training) and the stochastic-trajectory shot sampler
// (inference). Qubit 0 is the least significant bit of a basis index.
//
// Gate kernels enumerate exactly the dim/2 (1q) or dim/4 (2q) butterfly
// groups by stride arithmetic — no skipped indices — with diagonal fast
// paths for phase-type gates. Above a size threshold the index space is
// split across the shared thread pool (see set_exec_policy); every task
// writes a disjoint slice, so results are bit-identical to the serial
// schedule for any thread count.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/sim/aligned.hpp"

namespace arbiterq::sim {

using circuit::Complex;

/// Amplitude storage: 64-byte-aligned so the SIMD kernels' 32-byte
/// vector loads never split a cache line (see aligned.hpp).
using AmpVector = std::vector<Complex, AlignedAllocator<Complex>>;

class Statevector {
 public:
  /// Hard cap on register width: 2^26 amplitudes = 1 GiB of
  /// complex<double>, the largest state a commodity host comfortably
  /// holds. The constructor rejects anything outside [1, kMaxQubits].
  static constexpr int kMaxQubits = 26;

  /// Initialized to |0...0>.
  explicit Statevector(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return amps_.size(); }
  const AmpVector& amplitudes() const noexcept { return amps_; }

  /// Kernel-splitting policy for apply_mat2/apply_mat4 (default: serial).
  /// A grain of 0 selects a cache-friendly minimum chunk so small states
  /// never pay dispatch overhead.
  void set_exec_policy(const exec::ExecPolicy& policy) noexcept {
    exec_ = policy;
  }
  const exec::ExecPolicy& exec_policy() const noexcept { return exec_; }

  /// Back to |0...0>.
  void reset();

  /// Overwrite the register from a strided source: amps[i] =
  /// src[i * stride]. The batched adjoint uses this to peel one sample
  /// column out of a BatchedStatevector (src = row(0) + column,
  /// stride = batch). The source must hold dim() strided elements.
  void load_strided(const Complex* src, std::size_t stride);

  void apply_mat2(const circuit::Mat2& m, int q);
  /// qb is the bit matching the matrix's high index (gate.qubits[0]),
  /// qa the low one (gate.qubits[1]); see unitary.hpp for the convention.
  void apply_mat4(const circuit::Mat4& m, int qb, int qa);

  /// Apply one gate with parameters bound from `params` (no noise).
  void apply_gate(const circuit::Gate& g, std::span<const double> params);

  /// Apply a Pauli operator: 1 = X, 2 = Y, 3 = Z.
  void apply_pauli(int pauli, int q);

  double probability_of_one(int q) const;
  /// <Z_q> = P(q=0) - P(q=1).
  double expectation_z(int q) const;
  /// |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Sample one basis-state index from the Born distribution.
  std::size_t sample(math::Rng& rng) const;

  /// Draw `count` samples: builds the cumulative-probability vector once
  /// (O(2^n)) and then answers every draw with a binary search (O(n)),
  /// instead of sample()'s O(2^n) linear scan per shot.
  std::vector<std::size_t> sample_many(std::size_t count,
                                       math::Rng& rng) const;

  double norm() const;

 private:
  template <typename Body>
  void dispatch(std::size_t items, const Body& body);

  int num_qubits_;
  AmpVector amps_;
  exec::ExecPolicy exec_{};
};

}  // namespace arbiterq::sim
