#pragma once
// Pure state-vector register: the workhorse behind both the exact QNN
// executor (training) and the stochastic-trajectory shot sampler
// (inference). Qubit 0 is the least significant bit of a basis index.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/math/rng.hpp"

namespace arbiterq::sim {

using circuit::Complex;

class Statevector {
 public:
  /// Initialized to |0...0>.
  explicit Statevector(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return amps_.size(); }
  const std::vector<Complex>& amplitudes() const noexcept { return amps_; }

  /// Back to |0...0>.
  void reset();

  void apply_mat2(const circuit::Mat2& m, int q);
  /// qb is the bit matching the matrix's high index (gate.qubits[0]),
  /// qa the low one (gate.qubits[1]); see unitary.hpp for the convention.
  void apply_mat4(const circuit::Mat4& m, int qb, int qa);

  /// Apply one gate with parameters bound from `params` (no noise).
  void apply_gate(const circuit::Gate& g, std::span<const double> params);

  /// Apply a Pauli operator: 1 = X, 2 = Y, 3 = Z.
  void apply_pauli(int pauli, int q);

  double probability_of_one(int q) const;
  /// <Z_q> = P(q=0) - P(q=1).
  double expectation_z(int q) const;
  /// |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Sample one basis-state index from the Born distribution.
  std::size_t sample(math::Rng& rng) const;

  double norm() const;

 private:
  int num_qubits_;
  std::vector<Complex> amps_;
};

}  // namespace arbiterq::sim
