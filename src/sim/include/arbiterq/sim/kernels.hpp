#pragma once
// Gate-application kernels behind a runtime CPU-dispatch layer.
//
// Every statevector butterfly (1q/2q, diagonal fast paths, the adjoint
// bracket reductions, and the sample-batched row kernels) funnels
// through the free functions below. Each call selects one of three
// arms, cached after first use:
//
//  * scalar    — portable reference loops, the exact arithmetic the
//                simulator has always used. Always compiled.
//  * AVX2      — non-FMA intrinsics. Complex multiply is lowered as
//                mul/addsub with the same operand order and the same
//                two roundings as std::complex, so the butterfly arms
//                are *bit-identical* to scalar, just 2 amplitudes per
//                instruction. This is the default on AVX2 hardware.
//  * AVX2+FMA  — fused multiply-add intrinsics. One rounding fewer per
//                complex multiply, so results differ from scalar by
//                ≤ 2 ULP per arithmetic step (tested in
//                test_kernels.cpp). Enabled only when strict
//                reproducibility is turned off.
//
// Dispatch controls, mirroring the telemetry kill-switch:
//  * ARBITERQ_SIMD=OFF (env) or set_simd_runtime_enabled(false) forces
//    the scalar arm — field regressions stay bisectable.
//  * ARBITERQ_STRICT_REPRO=0 (env) or set_strict_reproducibility(false)
//    opts into the FMA arm and vectorized bracket reductions. The
//    default is strict: every public result is bit-identical to the
//    scalar build.
//
// Reduction caveat: the bracket kernels accumulate over amplitude
// indices, so a vector accumulator changes the summation association.
// Under strict reproducibility brackets therefore run scalar; the FMA
// arm carries lane accumulators and a documented ULP bound instead.

#include <complex>
#include <cstddef>

#include "arbiterq/circuit/unitary.hpp"

namespace arbiterq::sim::kernels {

using circuit::Complex;
using circuit::Mat2;
using circuit::Mat4;

// ---------------------------------------------------------------------------
// Dispatch control

/// True when the AVX2 arms were compiled into this binary.
bool simd_compiled() noexcept;
/// True when the running CPU reports AVX2 + FMA.
bool simd_supported() noexcept;

/// Runtime kill-switch. First call reads ARBITERQ_SIMD from the
/// environment ("0"/"off"/"false" disable); set_simd_runtime_enabled
/// overrides it for the process.
bool simd_runtime_enabled() noexcept;
void set_simd_runtime_enabled(bool enabled) noexcept;

/// Strict-reproducibility flag (default on). First call reads
/// ARBITERQ_STRICT_REPRO ("0"/"off"/"false" relax it). While strict,
/// every kernel result is bit-identical to the scalar arm.
bool strict_reproducibility() noexcept;
void set_strict_reproducibility(bool strict) noexcept;

enum class KernelArch { kScalar, kAvx2, kAvx2Fma };

/// The arm the next kernel call will take.
KernelArch active_arch() noexcept;
const char* arch_name(KernelArch arch) noexcept;

// ---------------------------------------------------------------------------
// Unbatched statevector kernels
//
// The range kernels cover butterfly groups (or raw amplitude indices
// for the diagonal forms) [lo, hi), matching the chunking of
// exec::parallel_for: every chunk writes a disjoint index slice and
// per-amplitude arithmetic is chunk-independent, so the thread-count
// determinism contract is untouched.

/// General 1q butterfly over groups [lo, hi); group p targets
/// amplitude pair (insert_zero_bit(p, q), | 1<<q).
void apply_mat2_range(Complex* amps, const Mat2& m, int q, std::size_t lo,
                      std::size_t hi);
/// Diagonal 1q fast path over amplitude indices [lo, hi).
void apply_diag2_range(Complex* amps, Complex d0, Complex d1, std::size_t bit,
                       std::size_t lo, std::size_t hi);
/// General 2q butterfly over groups [lo, hi).
void apply_mat4_range(Complex* amps, const Mat4& m, int qb, int qa,
                      std::size_t lo, std::size_t hi);
/// Diagonal 2q fast path over amplitude indices [lo, hi); d holds the
/// four diagonal entries selected by (bit_b, bit_a).
void apply_diag4_range(Complex* amps, const Complex* d, std::size_t bit_b,
                       std::size_t bit_a, std::size_t lo, std::size_t hi);

/// <lambda| M |psi> accumulated in amplitude-index order, including the
/// diagonal dispatch of apply_mat2 (see adjoint.cpp for the contract).
Complex bracket_1q(const Complex* lam, const Complex* psi, std::size_t n,
                   const Mat2& m, int q);
Complex bracket_2q(const Complex* lam, const Complex* psi, std::size_t n,
                   const Mat4& m, int qb, int qa);

// ---------------------------------------------------------------------------
// Sample-batched row kernels
//
// A batched register stores one contiguous row of `count` amplitudes
// per basis index (structure of arrays); each kernel applies one
// butterfly to every sample column at once. Per-column arithmetic is
// identical to the unbatched kernels, so under strict reproducibility
// the batched forward is bit-identical to evaluating samples one at a
// time.

/// Broadcast 1q butterfly: rows r0/r1 hold the two amplitudes of one
/// butterfly group for `count` samples, all sharing matrix m.
void batched_mat2(Complex* r0, Complex* r1, const Mat2& m, std::size_t count);
/// Per-sample matrices: mats[b] applies to column b.
void batched_mat2_each(Complex* r0, Complex* r1, const Mat2* mats,
                       std::size_t count);
/// Diagonal scale of one row by a shared factor / per-sample factors.
void batched_scale(Complex* row, Complex d, std::size_t count);
void batched_scale_each(Complex* row, const Complex* ds, std::size_t count);
/// Broadcast / per-sample 2q butterflies over four rows.
void batched_mat4(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                  const Mat4& m, std::size_t count);
void batched_mat4_each(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                       const Mat4* mats, std::size_t count);

}  // namespace arbiterq::sim::kernels
