#pragma once
// Device-level noise description consumed by the simulators.
//
// Three effects, mirroring what makes heterogeneous QPUs *behave*
// differently in the paper:
//  * stochastic gate errors  — a depolarizing probability after every 1q
//    gate (per qubit) and 2q gate (per edge), derived from the device's
//    reported infidelities and T1/T2 via e = 1 - exp(-t/tau)*f (§III-A);
//  * coherent calibration errors — a deterministic per-qubit angle offset
//    added to every rotation. This is what shifts each device's *optimal*
//    weights, the phenomenon personalized models exploit (Fig. 2a);
//  * readout errors — classical bit-flip probabilities at measurement.

#include <vector>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::sim {

class NoiseModel {
 public:
  /// Noiseless model (enabled() == false until something is set).
  NoiseModel() = default;
  explicit NoiseModel(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  bool enabled() const noexcept { return enabled_; }

  void set_depolarizing_1q(int q, double p);
  void set_depolarizing_2q(int a, int b, double p);
  void set_coherent_bias(int q, double radians);
  void set_readout_error(int q, double p0_to_1, double p1_to_0);

  double depolarizing_1q(int q) const;
  double depolarizing_2q(int a, int b) const;
  double coherent_bias(int q) const;
  double readout_p01(int q) const;  ///< P(read 1 | true 0)
  double readout_p10(int q) const;  ///< P(read 0 | true 1)

  /// Depolarizing probability triggered by this gate (0 for 1q identity).
  double gate_error(const circuit::Gate& g) const;

  /// Copy of `g` with the coherent per-qubit bias folded into its bound
  /// rotation angles (returns the bound parameter array to use).
  std::array<double, 3> biased_params(const circuit::Gate& g,
                                      std::span<const double> params) const;

  /// Product over all gates of (1 - gate_error): the survival probability
  /// that no stochastic error fired — used by the fast exact executor as
  /// the expectation-value attenuation factor.
  double survival_probability(const circuit::Circuit& c) const;

 private:
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  bool enabled_ = false;
  std::vector<double> p1_;
  std::vector<double> p2_;  // dense num_qubits x num_qubits, symmetric
  std::vector<double> bias_;
  std::vector<double> read01_;
  std::vector<double> read10_;
};

}  // namespace arbiterq::sim
