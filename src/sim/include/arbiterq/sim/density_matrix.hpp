#pragma once
// Exact density-matrix simulator with Kraus channels. It is the ground
// truth the cheaper engines are validated against: trajectory sampling
// must converge to the depolarizing-channel expectation, and the exact
// executor's attenuation factor must stay within a documented bound of
// it. Dense 2^n x 2^n storage — intended for n <= ~7 (tests and small
// experiments).

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/noise_model.hpp"

namespace arbiterq::sim {

using circuit::Complex;

class DensityMatrix {
 public:
  /// Initialized to |0...0><0...0|.
  explicit DensityMatrix(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return dim_; }

  Complex element(std::size_t r, std::size_t c) const {
    return rho_[r * dim_ + c];
  }

  void reset();

  /// Apply a unitary gate (parameters bound from `params`).
  void apply_gate(const circuit::Gate& g, std::span<const double> params);
  void apply_mat2(const circuit::Mat2& m, int q);
  void apply_mat4(const circuit::Mat4& m, int qb, int qa);

  /// rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
  void depolarize_1q(int q, double p);
  /// Two-qubit depolarizing: with probability p, a uniformly random
  /// non-identity two-qubit Pauli is applied.
  void depolarize_2q(int a, int b, double p);
  /// Amplitude damping (T1 decay) with decay probability gamma.
  void amplitude_damp(int q, double gamma);
  /// Phase damping (pure dephasing) with probability lambda.
  void phase_damp(int q, double lambda);

  double expectation_z(int q) const;
  double probability_of_one(int q) const;
  std::vector<double> probabilities() const;

  double trace_real() const;
  bool is_hermitian(double tol = 1e-9) const;
  /// Purity Tr(rho^2) in [1/2^n, 1].
  double purity() const;

 private:
  void apply_left_right_1q(const circuit::Mat2& m, int q);
  void apply_left_right_2q(const circuit::Mat4& m, int qb, int qa);

  int num_qubits_;
  std::size_t dim_;
  std::vector<Complex> rho_;
};

/// Exact noisy expectation of Z on `qubit`: every gate is followed by the
/// noise model's depolarizing channel on the involved qubits and the
/// coherent biases are folded into the rotation angles — the reference
/// semantics for StatevectorSimulator's two noise treatments. Readout
/// error is applied as a classical bit-flip contraction of <Z>.
double reference_expectation_z(const circuit::Circuit& c,
                               std::span<const double> params,
                               const NoiseModel& noise, int qubit);

}  // namespace arbiterq::sim
