#pragma once
// Expectation values of Pauli-string observables on both simulator
// backends, plus weighted sums (Hamiltonians / multi-term readouts).

#include <vector>

#include "arbiterq/circuit/pauli.hpp"
#include "arbiterq/sim/density_matrix.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {

/// <psi| P |psi>; P must match the register's qubit count. The result is
/// real for any Hermitian Pauli string.
double expectation(const Statevector& sv, const circuit::PauliString& p);

/// Tr(rho P).
double expectation(const DensityMatrix& rho, const circuit::PauliString& p);

/// One term of a Pauli-sum observable.
struct PauliTerm {
  double coefficient = 1.0;
  circuit::PauliString pauli;
};

/// sum_k c_k <P_k>.
double expectation(const Statevector& sv,
                   const std::vector<PauliTerm>& observable);

}  // namespace arbiterq::sim
