#pragma once
// Compiled execution plans: the per-(circuit, noise model) work that
// `StatevectorSimulator::run_biased` and the adjoint engine redo on every
// call — walking the gate list, folding coherent biases into angles,
// rebuilding static gate matrices, fusing 1q runs, recomputing the
// survival probability — hoisted into a one-time compile step.
//
// An ExecPlan is immutable after construction and safe to share across
// threads. All per-evaluation mutable state (the statevector register,
// bound matrices for parameterized slots, adjoint scratch registers)
// lives in a Workspace, so steady-state evaluation performs zero heap
// allocations and a pool of workspaces serves concurrent callers.
//
// Determinism contract: a plan's output is bit-identical to the naive
// path. The fused-run fold replicates run_biased's exact left-multiply
// order (`pending = M_k * pending`, starting from identity), static
// matrices are precomputed by the same gate_matrix_* calls the naive
// path makes per evaluation, and only the *leading* static segment of a
// run is pre-folded — a static matrix that follows a parameterized gate
// is applied as its own fold step, because re-associating the product
// would change the floating-point result.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"
#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/sim/noise_model.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::sim {

class ExecPlan;
class BatchedStatevector;
class BatchedWorkspace;

/// Reusable per-evaluation scratch: statevector registers and the bound
/// matrices a plan's parameterized slots are rebuilt into. One Workspace
/// serves one evaluation at a time; use a WorkspacePool to serve
/// concurrent callers. Buffers grow on first use and are reused
/// thereafter (zero steady-state allocations for a fixed plan).
class Workspace {
 public:
  Workspace() = default;

  /// The main register, reset to |0...0> with the given policy stamped.
  Statevector& state(int num_qubits, const exec::ExecPolicy& policy);
  /// Adjoint scratch registers. Not reset — callers overwrite them by
  /// assignment (which reuses the existing allocation).
  Statevector& lambda(int num_qubits, const exec::ExecPolicy& policy);
  Statevector& mu(int num_qubits, const exec::ExecPolicy& policy);

  /// Bound matrices for the plan's parameterized stream slots.
  std::vector<circuit::Mat2> bound1q;
  std::vector<circuit::Mat4> bound2q;
  /// Bound matrices + angle values for the plan's gate table (adjoint /
  /// trajectory walks, which need per-gate rather than fused matrices).
  std::vector<circuit::Mat2> dyn1q;
  std::vector<circuit::Mat4> dyn2q;
  std::vector<std::array<double, 3>> dyn_bound;
  /// Adjoint-walk companions built by bind_gates alongside dyn1q/dyn2q:
  /// each dynamic matrix's adjoint and each gradient term's derivative
  /// matrix, memoized under the same angle-change detection (the trig in
  /// the derivative builders dominates small-register adjoint calls).
  std::vector<circuit::Mat2> dyn1q_adj;
  std::vector<circuit::Mat4> dyn2q_adj;
  std::vector<circuit::Mat2> dgrad1q;
  std::vector<circuit::Mat4> dgrad2q;
  /// General caller scratch (e.g. packed circuit parameters).
  std::vector<double> params;
  std::vector<double> grad;
  /// Memoized bind state: the id of the plan the bound matrices above
  /// were last built against (0 = cold), plus each dynamic op's last
  /// bound angles. bind()/bind_gates() skip the trig + matrix rebuild
  /// for ops whose angles are unchanged since the previous bind — the
  /// retained matrices were computed from identical inputs, so results
  /// stay bit-identical. In training this is most of the circuit: the
  /// weight gates rebind once per epoch while only the encoding gates
  /// change per sample.
  std::uint64_t bound_plan_id = 0;
  std::uint64_t gates_plan_id = 0;
  std::vector<std::array<double, 3>> memo1q;
  std::vector<std::array<double, 3>> memo2q;

 private:
  static Statevector& reuse(std::optional<Statevector>& slot, int num_qubits,
                            const exec::ExecPolicy& policy);

  std::optional<Statevector> state_;
  std::optional<Statevector> lambda_;
  std::optional<Statevector> mu_;
};

/// Mutex-guarded free list of Workspaces. acquire() hands out a lease
/// that returns the workspace on destruction; after warm-up the pool
/// holds one workspace per peak-concurrent caller and recycles them
/// without allocating. Copying a pool yields a fresh, empty pool (leases
/// are tied to the pool they came from).
class WorkspacePool {
 public:
  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) noexcept {}
  WorkspacePool& operator=(const WorkspacePool&) noexcept { return *this; }

  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<Workspace> ws) noexcept
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() {
      if (ws_ != nullptr) pool_->release(std::move(ws_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Workspace& operator*() noexcept { return *ws_; }
    Workspace* operator->() noexcept { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<Workspace> ws_;
  };

  Lease acquire();

 private:
  friend class Lease;
  void release(std::unique_ptr<Workspace> ws);

  std::mutex mu_;
  std::vector<std::unique_ptr<Workspace>> free_;
};

/// One step of a fused 1q run's left-multiply fold: either a constant
/// matrix (a static gate that sits after a parameterized one) or a
/// parameterized gate whose matrix is rebuilt at bind time.
struct FoldOp {
  bool dynamic = false;
  circuit::Mat2 constant{};
  circuit::GateKind kind = circuit::GateKind::kI;
  int param_count = 0;
  std::array<circuit::ParamExpr, 3> params{};
  /// Coherent calibration offset of the target qubit, added to the polar
  /// angle at bind time when the plan is noisy (exactly mirroring
  /// NoiseModel::biased_params).
  double bias = 0.0;

  std::array<double, 3> bound(std::span<const double> p, bool noisy) const {
    std::array<double, 3> out{{0.0, 0.0, 0.0}};
    for (int i = 0; i < param_count; ++i) {
      out[static_cast<std::size_t>(i)] =
          params[static_cast<std::size_t>(i)].value(p);
    }
    if (noisy) out[0] += bias;
    return out;
  }
};

/// A fused 1q run containing at least one parameterized gate: the static
/// prefix is pre-folded into one constant; the tail replays the
/// remaining fold steps at bind time in the original order.
struct Bound1qSlot {
  circuit::Mat2 prefix{};  ///< identity if the run starts parameterized
  std::vector<FoldOp> tail;
  int qubit = 0;
  /// First index of this slot's dynamic tail ops in Workspace::memo1q.
  std::size_t memo_offset = 0;
};

/// A parameterized 2q gate slot (CRX/CRY/CRZ with a live parameter).
struct Bound2qSlot {
  FoldOp spec;  ///< dynamic == true; constant unused
};

/// The compiled op-stream: each op applies one matrix to the register.
struct StreamOp {
  enum class Kind : std::uint8_t { kConst1q, kBound1q, kConst2q, kBound2q };
  Kind kind = Kind::kConst1q;
  int q0 = 0;
  int q1 = 0;
  int index = 0;  ///< into the const pools or the workspace bound slots
};

/// Gate-table entry: the unfused per-gate view used by walks that need
/// every gate individually (adjoint differentiation, trajectories).
struct GateEntry {
  circuit::GateKind kind = circuit::GateKind::kI;
  int q0 = 0;
  int q1 = 0;
  int arity = 1;
  bool dynamic = false;
  /// Static: index into the plan's const pools (matrix + its adjoint).
  /// Dynamic: index into the workspace dyn1q/dyn2q arrays.
  int index = 0;
  /// Dynamic only: index into Workspace::dyn_bound (the bound angles,
  /// needed for derivative matrices).
  int bound_index = 0;
  FoldOp spec;  ///< dynamic only
  /// Non-constant parameter slots, for gradient accumulation.
  struct GradTerm {
    int slot = 0;
    int param_index = 0;
    double coeff = 1.0;
    /// Index into Workspace::dgrad1q (arity 1) or dgrad2q (arity 2).
    int dindex = 0;
  };
  std::vector<GradTerm> grads;
  /// Cached NoiseModel::gate_error(g) for trajectory walks.
  double error = 0.0;
};

/// A circuit compiled against one noise model (and one kernel policy):
/// static gates pre-fused and pre-folded, parameterized gates reduced to
/// bind slots, survival probability and depth cached.
class ExecPlan {
 public:
  ExecPlan(const circuit::Circuit& c, const NoiseModel& noise,
           const exec::ExecPolicy& policy = {});

  int num_qubits() const noexcept { return num_qubits_; }
  int num_params() const noexcept { return num_params_; }
  bool noisy() const noexcept { return noisy_; }
  /// Cached circuit-wide constants.
  double survival() const noexcept { return survival_; }
  std::size_t depth() const noexcept { return depth_; }
  const exec::ExecPolicy& policy() const noexcept { return policy_; }
  /// Process-unique id stamped into workspaces by bind()/bind_gates() so
  /// memoized matrices are never carried across plans (pointer identity
  /// would be ABA-unsafe after recalibration rebuilds a plan).
  std::uint64_t plan_id() const noexcept { return plan_id_; }

  /// Compile statistics (for telemetry and tests).
  std::size_t gate_count() const noexcept { return table_.size(); }
  std::size_t stream_op_count() const noexcept { return stream_.size(); }
  /// Gates whose matrix work was fully hoisted to compile time.
  std::size_t fused_gate_count() const noexcept { return fused_gates_; }
  std::size_t bound_slot_count() const noexcept {
    return bound1q_.size() + bound2q_.size();
  }

  /// Rebuild only the parameter-dependent stream matrices into `ws`.
  void bind(std::span<const double> params, Workspace& ws) const;
  /// bind() + evolve |0...0> through the stream; returns ws's register.
  /// Bit-identical to StatevectorSimulator::run_biased.
  Statevector& run(std::span<const double> params, Workspace& ws) const;
  /// survival() * <Z_qubit> of run(); bit-identical to
  /// StatevectorSimulator::expectation_z.
  double expectation_z(std::span<const double> params, int qubit,
                       Workspace& ws) const;

  /// Rebuild the gate table's dynamic matrices + bound angles into `ws`
  /// (for the adjoint walk in adjoint.hpp).
  void bind_gates(std::span<const double> params, Workspace& ws) const;

  /// Sample-batched forward (batched.hpp / batched.cpp). `params` holds
  /// `batch` parameter bindings, sample b's at [b * stride, + num
  /// params). Per column, bind_batched replays bind()'s fold exactly, so
  /// results are bit-identical across batch sizes; a slot whose bound
  /// matrices coincide across the batch is flagged uniform and
  /// run_batched streams it through the broadcast mini-GEMM kernel.
  void bind_batched(const double* params, std::size_t stride,
                    std::size_t batch, BatchedWorkspace& ws) const;
  BatchedStatevector& run_batched(const double* params, std::size_t stride,
                                  std::size_t batch,
                                  BatchedWorkspace& ws) const;
  /// out[b] = survival() * <Z_qubit> of column b.
  void expectation_z_batched(const double* params, std::size_t stride,
                             std::size_t batch, int qubit,
                             BatchedWorkspace& ws, double* out) const;

  const std::vector<GateEntry>& gate_table() const noexcept { return table_; }
  const circuit::Mat2& table_mat2(int i) const {
    return table1q_[static_cast<std::size_t>(i)];
  }
  const circuit::Mat2& table_mat2_adjoint(int i) const {
    return table1q_adj_[static_cast<std::size_t>(i)];
  }
  const circuit::Mat4& table_mat4(int i) const {
    return table2q_[static_cast<std::size_t>(i)];
  }
  const circuit::Mat4& table_mat4_adjoint(int i) const {
    return table2q_adj_[static_cast<std::size_t>(i)];
  }

 private:
  void check_params(std::span<const double> params) const;

  int num_qubits_ = 0;
  int num_params_ = 0;
  bool noisy_ = false;
  double survival_ = 1.0;
  std::size_t depth_ = 0;
  std::size_t fused_gates_ = 0;
  std::uint64_t plan_id_ = 0;
  std::size_t n_slot_dyn1q_ = 0;  ///< dynamic ops across bound1q tails
  int n_grad1q_ = 0;              ///< gradient terms on 1q gates
  int n_grad2q_ = 0;              ///< gradient terms on 2q gates
  int n_dyn1q_ = 0;
  int n_dyn2q_ = 0;
  int n_dyn_ = 0;
  exec::ExecPolicy policy_{};

  std::vector<StreamOp> stream_;
  std::vector<circuit::Mat2> const1q_;  ///< fully static fused runs
  std::vector<circuit::Mat4> const2q_;  ///< static 2q gates
  std::vector<Bound1qSlot> bound1q_;
  std::vector<Bound2qSlot> bound2q_;

  std::vector<GateEntry> table_;
  std::vector<circuit::Mat2> table1q_;
  std::vector<circuit::Mat2> table1q_adj_;
  std::vector<circuit::Mat4> table2q_;
  std::vector<circuit::Mat4> table2q_adj_;
};

}  // namespace arbiterq::sim
