#include "arbiterq/sim/simulator.hpp"

#include <stdexcept>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::sim {

StatevectorSimulator::StatevectorSimulator(NoiseModel noise)
    : noise_(std::move(noise)) {}

Statevector StatevectorSimulator::run_ideal(
    const circuit::Circuit& c, std::span<const double> params) const {
  Statevector sv(c.num_qubits());
  sv.set_exec_policy(exec_);
  for (const circuit::Gate& g : c.gates()) sv.apply_gate(g, params);
  return sv;
}

Statevector StatevectorSimulator::run_biased(
    const circuit::Circuit& c, std::span<const double> params) const {
  // Fuse runs of single-qubit gates into one 2x2 per qubit between
  // two-qubit gates: 1q gates on distinct qubits commute, so deferring a
  // per-qubit product until a 2q gate (or the end) touches that qubit is
  // exact and cuts most of the basis-gate stream's butterfly passes.
  Statevector sv(c.num_qubits());
  sv.set_exec_policy(exec_);
  const bool noisy = noise_.enabled();
  std::vector<circuit::Mat2> pending(
      static_cast<std::size_t>(c.num_qubits()),
      circuit::Mat2{Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
                    Complex{1, 0}});
  std::vector<bool> has_pending(static_cast<std::size_t>(c.num_qubits()),
                                false);
  auto flush = [&](int q) {
    const auto uq = static_cast<std::size_t>(q);
    if (!has_pending[uq]) return;
    sv.apply_mat2(pending[uq], q);
    pending[uq] = {Complex{1, 0}, Complex{0, 0}, Complex{0, 0},
                   Complex{1, 0}};
    has_pending[uq] = false;
  };
  for (const circuit::Gate& g : c.gates()) {
    const auto bound =
        noisy ? noise_.biased_params(g, params) : g.bound_params(params);
    if (g.arity() == 1) {
      const auto uq = static_cast<std::size_t>(g.qubits[0]);
      pending[uq] = circuit::mat2_multiply(
          circuit::gate_matrix_1q(g.kind, bound), pending[uq]);
      has_pending[uq] = true;
    } else {
      flush(g.qubits[0]);
      flush(g.qubits[1]);
      sv.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                    g.qubits[1]);
    }
  }
  for (int q = 0; q < c.num_qubits(); ++q) flush(q);
  return sv;
}

double StatevectorSimulator::expectation_z(const circuit::Circuit& c,
                                           std::span<const double> params,
                                           int qubit) const {
  const double survival =
      noise_.enabled() ? noise_.survival_probability(c) : 1.0;
  return expectation_z(c, params, qubit, survival);
}

double StatevectorSimulator::expectation_z(const circuit::Circuit& c,
                                           std::span<const double> params,
                                           int qubit, double survival) const {
  AQ_TRACE_SPAN("sim.expect.z");
  AQ_COUNTER_ADD("sim.expect.calls", 1);
  const Statevector sv = run_biased(c, params);
  return survival * sv.expectation_z(qubit);
}

double StatevectorSimulator::probability_of_one(const circuit::Circuit& c,
                                                std::span<const double> params,
                                                int qubit) const {
  return 0.5 * (1.0 - expectation_z(c, params, qubit));
}

void StatevectorSimulator::run_trajectory(const circuit::Circuit& c,
                                          std::span<const double> params,
                                          Statevector& sv,
                                          math::Rng& rng) const {
  sv.reset();
  for (const circuit::Gate& g : c.gates()) {
    const auto bound = noise_.enabled() ? noise_.biased_params(g, params)
                                        : g.bound_params(params);
    if (g.arity() == 1) {
      sv.apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
    } else {
      sv.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                    g.qubits[1]);
    }
    if (!noise_.enabled()) continue;
    const double p = noise_.gate_error(g);
    if (p <= 0.0) continue;
    for (int k = 0; k < g.arity(); ++k) {
      if (rng.bernoulli(p)) {
        const int pauli = 1 + static_cast<int>(rng.uniform_int(3));
        sv.apply_pauli(pauli, g.qubits[static_cast<std::size_t>(k)]);
      }
    }
  }
}

std::vector<std::uint32_t> StatevectorSimulator::sample_counts(
    const circuit::Circuit& c, std::span<const double> params,
    const ShotOptions& opts, math::Rng& rng) const {
  if (opts.shots <= 0 || opts.trajectories <= 0) {
    throw std::invalid_argument("sample_counts: shots/trajectories invalid");
  }
  AQ_TRACE_SPAN("sim.sample.counts");
  AQ_COUNTER_ADD("sim.sample.shots",
                 static_cast<std::uint64_t>(opts.shots));
  std::vector<std::uint32_t> counts(std::size_t{1} << c.num_qubits(), 0);
  Statevector sv(c.num_qubits());
  sv.set_exec_policy(exec_);
  const int n_traj = std::min(opts.trajectories, opts.shots);
  int remaining = opts.shots;
  for (int t = 0; t < n_traj; ++t) {
    const int this_shots = remaining / (n_traj - t);
    remaining -= this_shots;
    run_trajectory(c, params, sv, rng);
    // One cumulative-distribution build per trajectory; every shot is
    // then a binary search instead of an O(2^n) scan.
    const auto outcomes =
        sv.sample_many(static_cast<std::size_t>(this_shots), rng);
    for (std::size_t outcome : outcomes) {
      if (noise_.enabled()) {
        for (int q = 0; q < c.num_qubits(); ++q) {
          const bool one = (outcome >> q) & 1U;
          const double flip =
              one ? noise_.readout_p10(q) : noise_.readout_p01(q);
          if (flip > 0.0 && rng.bernoulli(flip)) {
            outcome ^= std::size_t{1} << q;
          }
        }
      }
      ++counts[outcome];
    }
  }
  return counts;
}

std::uint64_t StatevectorSimulator::sample_marginal_ones(
    const circuit::Circuit& c, std::span<const double> params, int qubit,
    const ShotOptions& opts, math::Rng& rng) const {
  if (opts.shots <= 0 || opts.trajectories <= 0) {
    throw std::invalid_argument(
        "sample_marginal_ones: shots/trajectories invalid");
  }
  AQ_TRACE_SPAN("sim.sample.marginal");
  AQ_COUNTER_ADD("sim.sample.shots",
                 static_cast<std::uint64_t>(opts.shots));
  Statevector sv(c.num_qubits());
  sv.set_exec_policy(exec_);
  std::uint64_t ones = 0;
  const int n_traj = std::min(opts.trajectories, opts.shots);
  int remaining = opts.shots;
  for (int t = 0; t < n_traj; ++t) {
    const int this_shots = remaining / (n_traj - t);
    remaining -= this_shots;
    run_trajectory(c, params, sv, rng);
    // The Born marginal of the readout qubit: each shot is one uniform
    // draw against it, plus (under noise) one readout flip on that
    // qubit alone — the full 2^n histogram never materializes.
    const double p1 = sv.probability_of_one(qubit);
    for (int s = 0; s < this_shots; ++s) {
      bool one = rng.uniform() < p1;
      if (noise_.enabled()) {
        const double flip =
            one ? noise_.readout_p10(qubit) : noise_.readout_p01(qubit);
        if (flip > 0.0 && rng.bernoulli(flip)) one = !one;
      }
      if (one) ++ones;
    }
  }
  return ones;
}

double StatevectorSimulator::sampled_probability_of_one(
    const circuit::Circuit& c, std::span<const double> params, int qubit,
    const ShotOptions& opts, math::Rng& rng) const {
  const std::uint64_t ones = sample_marginal_ones(c, params, qubit, opts, rng);
  return static_cast<double>(ones) / static_cast<double>(opts.shots);
}

}  // namespace arbiterq::sim
