// Sample-batched forward execution (batched.hpp) plus the plan-based,
// trajectory-batched marginal sampler. The ExecPlan batched entry
// points live here as member functions so the stream/slot internals
// stay private to the plan.

#include "arbiterq/sim/batched.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/kernels.hpp"
#include "arbiterq/sim/simulator.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"
#include "kernels_impl.hpp"

namespace arbiterq::sim {

namespace {

using circuit::Mat2;
using circuit::Mat4;
using kernels::detail::insert_zero_bit;

inline bool is_zero(const Complex& c) noexcept {
  return c.real() == 0.0 && c.imag() == 0.0;
}

inline bool is_diag2(const Mat2& m) noexcept {
  return is_zero(m[1]) && is_zero(m[2]);
}

inline bool is_diag4(const Mat4& m) noexcept {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m[static_cast<std::size_t>(4 * r + c)])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchedStatevector

void BatchedStatevector::configure(int num_qubits, std::size_t batch) {
  if (num_qubits <= 0 || num_qubits > Statevector::kMaxQubits) {
    throw std::invalid_argument("BatchedStatevector: unsupported qubit count");
  }
  if (batch == 0) {
    throw std::invalid_argument("BatchedStatevector: batch must be > 0");
  }
  num_qubits_ = num_qubits;
  dim_ = std::size_t{1} << num_qubits;
  batch_ = batch;
  amps_.assign(dim_ * batch_, Complex{0.0, 0.0});
  for (std::size_t b = 0; b < batch_; ++b) amps_[b] = 1.0;
  assert(reinterpret_cast<std::uintptr_t>(amps_.data()) % kAmpAlignment == 0 &&
         "amplitude storage must honor kAmpAlignment");
}

void BatchedStatevector::apply_mat2_all(const Mat2& m, int q) {
  const std::size_t bit = std::size_t{1} << q;
  if (is_diag2(m)) {
    const Complex d0 = m[0];
    const Complex d1 = m[3];
    for (std::size_t i = 0; i < dim_; ++i) {
      kernels::batched_scale(row(i), (i & bit) ? d1 : d0, batch_);
    }
    return;
  }
  for (std::size_t p = 0; p < dim_ >> 1; ++p) {
    const std::size_t i0 = insert_zero_bit(p, q);
    kernels::batched_mat2(row(i0), row(i0 | bit), m, batch_);
  }
}

void BatchedStatevector::apply_mat4_all(const Mat4& m, int qb, int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  if (is_diag4(m)) {
    const Complex d[4] = {m[0], m[5], m[10], m[15]};
    for (std::size_t i = 0; i < dim_; ++i) {
      const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
      kernels::batched_scale(row(i), d[sel], batch_);
    }
    return;
  }
  const int q_lo = qb < qa ? qb : qa;
  const int q_hi = qb < qa ? qa : qb;
  for (std::size_t g = 0; g < dim_ >> 2; ++g) {
    const std::size_t i00 = insert_zero_bit(insert_zero_bit(g, q_lo), q_hi);
    kernels::batched_mat4(row(i00), row(i00 | bit_a), row(i00 | bit_b),
                          row(i00 | bit_b | bit_a), m, batch_);
  }
}

void BatchedStatevector::apply_mat2_each(const Mat2* mats, int q) {
  const std::size_t bit = std::size_t{1} << q;
  diag_scratch_.resize(2 * batch_);
  // Diagonal dispatch is per-matrix (an RZ column sits next to an RX
  // column): partition the batch into maximal runs of equal dispatch so
  // every column takes exactly the kernel it would take unbatched.
  std::size_t b = 0;
  while (b < batch_) {
    const bool diag = is_diag2(mats[b]);
    std::size_t e = b + 1;
    while (e < batch_ && is_diag2(mats[e]) == diag) ++e;
    const std::size_t count = e - b;
    if (diag) {
      Complex* const d0s = diag_scratch_.data();
      Complex* const d1s = diag_scratch_.data() + batch_;
      for (std::size_t k = 0; k < count; ++k) {
        d0s[k] = mats[b + k][0];
        d1s[k] = mats[b + k][3];
      }
      for (std::size_t i = 0; i < dim_; ++i) {
        kernels::batched_scale_each(row(i) + b, (i & bit) ? d1s : d0s, count);
      }
    } else {
      for (std::size_t p = 0; p < dim_ >> 1; ++p) {
        const std::size_t i0 = insert_zero_bit(p, q);
        kernels::batched_mat2_each(row(i0) + b, row(i0 | bit) + b, mats + b,
                                   count);
      }
    }
    b = e;
  }
}

void BatchedStatevector::apply_mat4_each(const Mat4* mats, int qb, int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  const int q_lo = qb < qa ? qb : qa;
  const int q_hi = qb < qa ? qa : qb;
  diag_scratch_.resize(4 * batch_);
  std::size_t b = 0;
  while (b < batch_) {
    const bool diag = is_diag4(mats[b]);
    std::size_t e = b + 1;
    while (e < batch_ && is_diag4(mats[e]) == diag) ++e;
    const std::size_t count = e - b;
    if (diag) {
      Complex* ds[4];
      for (unsigned s = 0; s < 4; ++s) {
        ds[s] = diag_scratch_.data() + s * batch_;
      }
      for (std::size_t k = 0; k < count; ++k) {
        const Mat4& m = mats[b + k];
        ds[0][k] = m[0];
        ds[1][k] = m[5];
        ds[2][k] = m[10];
        ds[3][k] = m[15];
      }
      for (std::size_t i = 0; i < dim_; ++i) {
        const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
        kernels::batched_scale_each(row(i) + b, ds[sel], count);
      }
    } else {
      for (std::size_t g = 0; g < dim_ >> 2; ++g) {
        const std::size_t i00 =
            insert_zero_bit(insert_zero_bit(g, q_lo), q_hi);
        kernels::batched_mat4_each(row(i00) + b, row(i00 | bit_a) + b,
                                   row(i00 | bit_b) + b,
                                   row(i00 | bit_b | bit_a) + b, mats + b,
                                   count);
      }
    }
    b = e;
  }
}

void BatchedStatevector::apply_mat2_col(const Mat2& m, int q,
                                        std::size_t col) {
  const std::size_t bit = std::size_t{1} << q;
  if (is_diag2(m)) {
    const Complex d0 = m[0];
    const Complex d1 = m[3];
    for (std::size_t i = 0; i < dim_; ++i) {
      row(i)[col] *= (i & bit) ? d1 : d0;
    }
    return;
  }
  for (std::size_t p = 0; p < dim_ >> 1; ++p) {
    const std::size_t i0 = insert_zero_bit(p, q);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = row(i0)[col];
    const Complex a1 = row(i1)[col];
    row(i0)[col] = m[0] * a0 + m[1] * a1;
    row(i1)[col] = m[2] * a0 + m[3] * a1;
  }
}

void BatchedStatevector::apply_pauli_col(int pauli, int q, std::size_t col) {
  switch (pauli) {
    case 1:
      apply_mat2_col(circuit::gate_matrix_1q(circuit::GateKind::kX, {}), q,
                     col);
      break;
    case 2:
      apply_mat2_col(circuit::gate_matrix_1q(circuit::GateKind::kY, {}), q,
                     col);
      break;
    case 3:
      apply_mat2_col(circuit::gate_matrix_1q(circuit::GateKind::kZ, {}), q,
                     col);
      break;
    default:
      throw std::invalid_argument("apply_pauli_col: pauli must be 1, 2 or 3");
  }
}

void BatchedStatevector::probability_of_one_all(int q, double* out) const {
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t b = 0; b < batch_; ++b) out[b] = 0.0;
  // Basis index outer, sample inner: every column accumulates in the
  // exact index order of Statevector::probability_of_one.
  for (std::size_t i = 0; i < dim_; ++i) {
    if (!(i & bit)) continue;
    const Complex* const r = row(i);
    for (std::size_t b = 0; b < batch_; ++b) out[b] += std::norm(r[b]);
  }
}

// ---------------------------------------------------------------------------
// BatchedWorkspacePool

BatchedWorkspacePool::Lease BatchedWorkspacePool::acquire() {
  std::unique_ptr<BatchedWorkspace> ws;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      ws = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (ws == nullptr) ws = std::make_unique<BatchedWorkspace>();
  return Lease(this, std::move(ws));
}

void BatchedWorkspacePool::release(std::unique_ptr<BatchedWorkspace> ws) {
  const std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ws));
}

// ---------------------------------------------------------------------------
// ExecPlan batched execution

void ExecPlan::bind_batched(const double* params, std::size_t stride,
                            std::size_t batch, BatchedWorkspace& ws) const {
  if (batch == 0) {
    throw std::invalid_argument("bind_batched: batch must be > 0");
  }
  if (stride < static_cast<std::size_t>(num_params_)) {
    throw std::invalid_argument("bind_batched: stride < num_params");
  }
  AQ_COUNTER_ADD("sim.plan.batched_binds", 1);
  if (ws.plan_id != plan_id_ || ws.batch != batch) {
    ws.bound1q_cols.resize(bound1q_.size() * batch);
    ws.bound2q_cols.resize(bound2q_.size() * batch);
    ws.uniform1q.resize(bound1q_.size());
    ws.uniform2q.resize(bound2q_.size());
    ws.plan_id = plan_id_;
    ws.batch = batch;
  }
  const auto np = static_cast<std::size_t>(num_params_);
  auto col_params = [&](std::size_t b) {
    return std::span<const double>(params + b * stride, np);
  };
  // Per column this replays bind()'s fold with that column's params —
  // the same gate_matrix / mat2_multiply sequence, so each column's
  // matrix is bitwise the one the unbatched bind would produce. A column
  // whose dynamic angles match its predecessor reuses the predecessor's
  // matrix (weight-only slots therefore fold once per batch), and a slot
  // where every column matched is flagged uniform so run_batched can
  // stream the broadcast kernel.
  for (std::size_t i = 0; i < bound1q_.size(); ++i) {
    const Bound1qSlot& slot = bound1q_[i];
    std::size_t n_dyn = 0;
    for (const FoldOp& op : slot.tail) {
      if (op.dynamic) ++n_dyn;
    }
    ws.angles_prev.resize(n_dyn);
    ws.angles_cur.resize(n_dyn);
    Mat2* const cols = ws.bound1q_cols.data() + i * batch;
    bool uniform = true;
    for (std::size_t b = 0; b < batch; ++b) {
      const auto p = col_params(b);
      bool same = b > 0;
      std::size_t j = 0;
      for (const FoldOp& op : slot.tail) {
        if (!op.dynamic) continue;
        ws.angles_cur[j] = op.bound(p, noisy_);
        if (b == 0 || ws.angles_cur[j] != ws.angles_prev[j]) same = false;
        ++j;
      }
      if (same) {
        cols[b] = cols[b - 1];
      } else {
        if (b > 0) uniform = false;
        Mat2 acc = slot.prefix;
        j = 0;
        for (const FoldOp& op : slot.tail) {
          const Mat2 m =
              op.dynamic ? circuit::gate_matrix_1q(op.kind, ws.angles_cur[j++])
                         : op.constant;
          acc = circuit::mat2_multiply(m, acc);
        }
        cols[b] = acc;
      }
      std::swap(ws.angles_prev, ws.angles_cur);
    }
    ws.uniform1q[i] = uniform ? 1 : 0;
  }
  for (std::size_t i = 0; i < bound2q_.size(); ++i) {
    const FoldOp& spec = bound2q_[i].spec;
    Mat4* const cols = ws.bound2q_cols.data() + i * batch;
    std::array<double, 3> prev{};
    bool uniform = true;
    for (std::size_t b = 0; b < batch; ++b) {
      const std::array<double, 3> bound = spec.bound(col_params(b), noisy_);
      if (b > 0 && bound == prev) {
        cols[b] = cols[b - 1];
      } else {
        if (b > 0) uniform = false;
        cols[b] = circuit::gate_matrix_2q(spec.kind, bound);
      }
      prev = bound;
    }
    ws.uniform2q[i] = uniform ? 1 : 0;
  }
}

BatchedStatevector& ExecPlan::run_batched(const double* params,
                                          std::size_t stride,
                                          std::size_t batch,
                                          BatchedWorkspace& ws) const {
  AQ_COUNTER_ADD("sim.plan.batched_runs", 1);
  AQ_COUNTER_ADD("sim.plan.batched_columns",
                 static_cast<std::uint64_t>(batch));
  bind_batched(params, stride, batch, ws);
  BatchedStatevector& st = ws.state();
  st.configure(num_qubits_, batch);
  for (const StreamOp& op : stream_) {
    const auto idx = static_cast<std::size_t>(op.index);
    switch (op.kind) {
      case StreamOp::Kind::kConst1q:
        st.apply_mat2_all(const1q_[idx], op.q0);
        break;
      case StreamOp::Kind::kBound1q:
        if (ws.uniform1q[idx] != 0) {
          st.apply_mat2_all(ws.bound1q_cols[idx * batch], op.q0);
        } else {
          st.apply_mat2_each(ws.bound1q_cols.data() + idx * batch, op.q0);
        }
        break;
      case StreamOp::Kind::kConst2q:
        st.apply_mat4_all(const2q_[idx], op.q0, op.q1);
        break;
      case StreamOp::Kind::kBound2q:
        if (ws.uniform2q[idx] != 0) {
          st.apply_mat4_all(ws.bound2q_cols[idx * batch], op.q0, op.q1);
        } else {
          st.apply_mat4_each(ws.bound2q_cols.data() + idx * batch, op.q0,
                             op.q1);
        }
        break;
    }
  }
  return st;
}

void ExecPlan::expectation_z_batched(const double* params, std::size_t stride,
                                     std::size_t batch, int qubit,
                                     BatchedWorkspace& ws,
                                     double* out) const {
  const BatchedStatevector& st = run_batched(params, stride, batch, ws);
  st.probability_of_one_all(qubit, out);
  for (std::size_t b = 0; b < batch; ++b) {
    out[b] = survival_ * (1.0 - 2.0 * out[b]);
  }
}

// ---------------------------------------------------------------------------
// Plan-based, trajectory-batched marginal sampler

std::uint64_t StatevectorSimulator::sample_marginal_ones(
    const ExecPlan& plan, std::span<const double> params, int qubit,
    const ShotOptions& opts, math::Rng& rng, BatchedWorkspace& ws) const {
  if (opts.shots <= 0 || opts.trajectories <= 0) {
    throw std::invalid_argument(
        "sample_marginal_ones: shots/trajectories invalid");
  }
  AQ_TRACE_SPAN("sim.sample.marginal");
  AQ_COUNTER_ADD("sim.sample.shots", static_cast<std::uint64_t>(opts.shots));
  const auto n_traj =
      static_cast<std::size_t>(std::min(opts.trajectories, opts.shots));
  const auto& table = plan.gate_table();
  const bool noisy = noise_.enabled();

  // Shot allotment per trajectory: the circuit-walking sampler's
  // deterministic remaining / (n - t) spread.
  std::vector<int> shots_of(n_traj);
  int remaining = opts.shots;
  for (std::size_t t = 0; t < n_traj; ++t) {
    shots_of[t] = remaining / static_cast<int>(n_traj - t);
    remaining -= shots_of[t];
  }

  // Noise sites: one per (gate with depolarizing error, involved qubit),
  // in gate order — the exact draw order of run_trajectory.
  struct Site {
    std::size_t gate;
    int qubit;
    double error;
  };
  std::vector<Site> sites;
  if (noisy) {
    for (std::size_t k = 0; k < table.size(); ++k) {
      const GateEntry& e = table[k];
      if (e.error <= 0.0) continue;
      sites.push_back({k, e.q0, e.error});
      if (e.arity == 2) sites.push_back({k, e.q1, e.error});
    }
  }
  const double p01 = noisy ? noise_.readout_p01(qubit) : 0.0;
  const double p10 = noisy ? noise_.readout_p10(qubit) : 0.0;
  const bool flips = noisy && (p01 > 0.0 || p10 > 0.0);

  // Every random decision is pre-drawn here, trajectory by trajectory,
  // so the RNG stream — and therefore every outcome — is independent of
  // how trajectories are later grouped into evolution blocks. Pauli
  // decisions use run_trajectory's per-site bernoulli-then-choice
  // consumption; shot draws consume one readout-flip uniform per shot
  // whenever readout noise is configured, a value-independent schedule
  // (the circuit-walking sampler draws the flip conditionally on the
  // outcome, which would tie the stream to amplitude values).
  std::vector<std::uint8_t> decision(n_traj * sites.size(), 0);
  std::vector<double> u_out(static_cast<std::size_t>(opts.shots));
  std::vector<double> u_flip(flips ? u_out.size() : 0);
  {
    std::size_t si = 0;
    for (std::size_t t = 0; t < n_traj; ++t) {
      for (std::size_t s = 0; s < sites.size(); ++s) {
        if (rng.bernoulli(sites[s].error)) {
          decision[t * sites.size() + s] =
              static_cast<std::uint8_t>(1 + rng.uniform_int(3));
        }
      }
      for (int s = 0; s < shots_of[t]; ++s, ++si) {
        u_out[si] = rng.uniform();
        if (flips) u_flip[si] = rng.uniform();
      }
    }
  }

  // One bind serves every trajectory: gate matrices depend only on the
  // shared params; trajectories differ only in their Pauli insertions.
  plan.bind_gates(params, ws.gates);

  std::uint64_t ones = 0;
  std::vector<double> p1(kBatchBlock);
  std::size_t si = 0;
  for (std::size_t t0 = 0; t0 < n_traj; t0 += kBatchBlock) {
    const std::size_t cur = std::min(kBatchBlock, n_traj - t0);
    BatchedStatevector& st = ws.state();
    st.configure(plan.num_qubits(), cur);
    std::size_t site_idx = 0;
    for (std::size_t k = 0; k < table.size(); ++k) {
      const GateEntry& e = table[k];
      const auto idx = static_cast<std::size_t>(e.index);
      if (e.arity == 1) {
        st.apply_mat2_all(
            e.dynamic ? ws.gates.dyn1q[idx] : plan.table_mat2(e.index), e.q0);
      } else {
        st.apply_mat4_all(
            e.dynamic ? ws.gates.dyn2q[idx] : plan.table_mat4(e.index), e.q0,
            e.q1);
      }
      // Sparse per-trajectory Pauli insertions: a site fires on a few
      // percent of columns, so the fired columns take a scalar
      // single-column walk instead of dragging the whole block through
      // a per-sample kernel. (Per-column application also keeps -0.0
      // signs exact — a broadcast identity multiply on non-fired
      // columns would not.)
      for (; site_idx < sites.size() && sites[site_idx].gate == k;
           ++site_idx) {
        const Site& site = sites[site_idx];
        for (std::size_t c = 0; c < cur; ++c) {
          const std::uint8_t d = decision[(t0 + c) * sites.size() + site_idx];
          if (d != 0) st.apply_pauli_col(d, site.qubit, c);
        }
      }
    }
    st.probability_of_one_all(qubit, p1.data());
    for (std::size_t c = 0; c < cur; ++c) {
      for (int s = 0; s < shots_of[t0 + c]; ++s, ++si) {
        bool one = u_out[si] < p1[c];
        if (flips && u_flip[si] < (one ? p10 : p01)) one = !one;
        if (one) ++ones;
      }
    }
  }
  return ones;
}

double StatevectorSimulator::sampled_probability_of_one(
    const ExecPlan& plan, std::span<const double> params, int qubit,
    const ShotOptions& opts, math::Rng& rng, BatchedWorkspace& ws) const {
  const std::uint64_t ones =
      sample_marginal_ones(plan, params, qubit, opts, rng, ws);
  return static_cast<double>(ones) / static_cast<double>(opts.shots);
}

}  // namespace arbiterq::sim
