#pragma once
// Private bridge between the kernel dispatcher (kernels.cpp) and the
// AVX2 translation unit (kernels_avx2.cpp, compiled with -mavx2 -mfma
// -ffp-contract=off and only when the toolchain targets x86). The
// templates are explicitly instantiated there for Fma = false (the
// strict, bit-identical arm) and Fma = true (the fast arm).

#include <cstddef>

#include "arbiterq/sim/kernels.hpp"

namespace arbiterq::sim::kernels::detail {

/// Spread `p` over the basis indices whose bit `q` is clear (the same
/// butterfly-group enumeration statevector.cpp has always used).
inline std::size_t insert_zero_bit(std::size_t p, int q) noexcept {
  const std::size_t low = (std::size_t{1} << q) - 1;
  return ((p & ~low) << 1) | (p & low);
}

#if defined(ARBITERQ_SIMD_AVX2)

template <bool Fma>
void mat2_range_avx2(Complex* amps, const Mat2& m, int q, std::size_t lo,
                     std::size_t hi);
template <bool Fma>
void diag2_range_avx2(Complex* amps, Complex d0, Complex d1, std::size_t bit,
                      std::size_t lo, std::size_t hi);
template <bool Fma>
void mat4_range_avx2(Complex* amps, const Mat4& m, int qb, int qa,
                     std::size_t lo, std::size_t hi);
template <bool Fma>
void diag4_range_avx2(Complex* amps, const Complex* d, std::size_t bit_b,
                      std::size_t bit_a, std::size_t lo, std::size_t hi);

/// Fast-arm only: lane accumulators reassociate the reduction, so the
/// strict arm never calls these (it takes the scalar bracket instead).
Complex bracket_1q_avx2(const Complex* lam, const Complex* psi, std::size_t n,
                        const Mat2& m, int q);
Complex bracket_2q_avx2(const Complex* lam, const Complex* psi, std::size_t n,
                        const Mat4& m, int qb, int qa);

template <bool Fma>
void batched_mat2_avx2(Complex* r0, Complex* r1, const Mat2& m,
                       std::size_t count);
template <bool Fma>
void batched_mat2_each_avx2(Complex* r0, Complex* r1, const Mat2* mats,
                            std::size_t count);
template <bool Fma>
void batched_scale_avx2(Complex* row, Complex d, std::size_t count);
template <bool Fma>
void batched_scale_each_avx2(Complex* row, const Complex* ds,
                             std::size_t count);
template <bool Fma>
void batched_mat4_avx2(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                       const Mat4& m, std::size_t count);
template <bool Fma>
void batched_mat4_each_avx2(Complex* r00, Complex* r01, Complex* r10,
                            Complex* r11, const Mat4* mats, std::size_t count);

#endif  // ARBITERQ_SIMD_AVX2

}  // namespace arbiterq::sim::kernels::detail
