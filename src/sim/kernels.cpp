#include "arbiterq/sim/kernels.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "kernels_impl.hpp"

namespace arbiterq::sim::kernels {

namespace {

using detail::insert_zero_bit;

// ---------------------------------------------------------------------------
// Dispatch state. Both switches follow the telemetry kill-switch shape:
// a tri-state atomic (-1 = consult the environment on first use) that a
// setter can override at any time.

std::atomic<signed char> g_simd_state{-1};
std::atomic<signed char> g_strict_state{-1};

bool env_flag(const char* name, bool fallback) noexcept {
  bool value = fallback;
  if (const char* env = std::getenv(name)) {
    std::string v(env);
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "0" || v == "off" || v == "false") value = false;
    if (v == "1" || v == "on" || v == "true") value = true;
  }
  return value;
}

bool flag_slow(std::atomic<signed char>& state, const char* env,
               bool fallback) noexcept {
  const bool value = env_flag(env, fallback);
  // Racing first calls all derive the same answer from the environment,
  // so the double store is benign.
  state.store(value ? 1 : 0, std::memory_order_relaxed);
  return value;
}

inline bool is_zero(const Complex& c) noexcept {
  return c.real() == 0.0 && c.imag() == 0.0;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels: the exact loops statevector.cpp and
// adjoint.cpp ran before the dispatch layer existed. Every other arm is
// validated against these (test_kernels.cpp).

void mat2_range_scalar(Complex* amps, const Mat2& m, int q, std::size_t lo,
                       std::size_t hi) {
  const std::size_t bit = std::size_t{1} << q;
  const Complex m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for (std::size_t p = lo; p < hi; ++p) {
    const std::size_t i0 = insert_zero_bit(p, q);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    amps[i0] = m0 * a0 + m1 * a1;
    amps[i1] = m2 * a0 + m3 * a1;
  }
}

void diag2_range_scalar(Complex* amps, Complex d0, Complex d1,
                        std::size_t bit, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) amps[i] *= (i & bit) ? d1 : d0;
}

void mat4_range_scalar(Complex* amps, const Mat4& m, int qb, int qa,
                       std::size_t lo, std::size_t hi) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  const int q_lo = qb < qa ? qb : qa;
  const int q_hi = qb < qa ? qa : qb;
  for (std::size_t g = lo; g < hi; ++g) {
    const std::size_t i00 = insert_zero_bit(insert_zero_bit(g, q_lo), q_hi);
    const std::size_t i01 = i00 | bit_a;
    const std::size_t i10 = i00 | bit_b;
    const std::size_t i11 = i00 | bit_b | bit_a;
    const Complex a00 = amps[i00];
    const Complex a01 = amps[i01];
    const Complex a10 = amps[i10];
    const Complex a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void diag4_range_scalar(Complex* amps, const Complex* d, std::size_t bit_b,
                        std::size_t bit_a, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
    amps[i] *= d[sel];
  }
}

Complex bracket_1q_scalar(const Complex* lam, const Complex* psi,
                          std::size_t n, const Mat2& m, int q) {
  const std::size_t bit = std::size_t{1} << q;
  Complex acc{0.0, 0.0};
  if (is_zero(m[1]) && is_zero(m[2])) {
    const Complex d0 = m[0], d1 = m[3];
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::conj(lam[i]) * (psi[i] * ((i & bit) ? d1 : d0));
    }
    return acc;
  }
  const Complex m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for (std::size_t i = 0; i < n; ++i) {
    const Complex mu = (i & bit) ? m2 * psi[i & ~bit] + m3 * psi[i]
                                 : m0 * psi[i] + m1 * psi[i | bit];
    acc += std::conj(lam[i]) * mu;
  }
  return acc;
}

Complex bracket_2q_scalar(const Complex* lam, const Complex* psi,
                          std::size_t n, const Mat4& m, int qb, int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  bool diagonal = true;
  for (int r = 0; r < 4 && diagonal; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m[static_cast<std::size_t>(4 * r + c)])) {
        diagonal = false;
        break;
      }
    }
  }
  Complex acc{0.0, 0.0};
  if (diagonal) {
    const Complex d[4] = {m[0], m[5], m[10], m[15]};
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
      acc += std::conj(lam[i]) * (psi[i] * d[sel]);
    }
    return acc;
  }
  const std::size_t mask = bit_b | bit_a;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = i & ~mask;
    const Complex a00 = psi[base];
    const Complex a01 = psi[base | bit_a];
    const Complex a10 = psi[base | bit_b];
    const Complex a11 = psi[base | bit_b | bit_a];
    const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
    const Complex* row = &m[static_cast<std::size_t>(4 * sel)];
    acc += std::conj(lam[i]) * (row[0] * a00 + row[1] * a01 + row[2] * a10 +
                                row[3] * a11);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Scalar batched row kernels: per-column arithmetic identical to the
// unbatched loops above.

void batched_mat2_scalar(Complex* r0, Complex* r1, const Mat2& m,
                         std::size_t count) {
  const Complex m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for (std::size_t b = 0; b < count; ++b) {
    const Complex a0 = r0[b];
    const Complex a1 = r1[b];
    r0[b] = m0 * a0 + m1 * a1;
    r1[b] = m2 * a0 + m3 * a1;
  }
}

void batched_mat2_each_scalar(Complex* r0, Complex* r1, const Mat2* mats,
                              std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) {
    const Mat2& m = mats[b];
    const Complex a0 = r0[b];
    const Complex a1 = r1[b];
    r0[b] = m[0] * a0 + m[1] * a1;
    r1[b] = m[2] * a0 + m[3] * a1;
  }
}

void batched_scale_scalar(Complex* row, Complex d, std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) row[b] *= d;
}

void batched_scale_each_scalar(Complex* row, const Complex* ds,
                               std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) row[b] *= ds[b];
}

void batched_mat4_scalar(Complex* r00, Complex* r01, Complex* r10,
                         Complex* r11, const Mat4& m, std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) {
    const Complex a00 = r00[b];
    const Complex a01 = r01[b];
    const Complex a10 = r10[b];
    const Complex a11 = r11[b];
    r00[b] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    r01[b] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    r10[b] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    r11[b] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void batched_mat4_each_scalar(Complex* r00, Complex* r01, Complex* r10,
                              Complex* r11, const Mat4* mats,
                              std::size_t count) {
  for (std::size_t b = 0; b < count; ++b) {
    const Mat4& m = mats[b];
    const Complex a00 = r00[b];
    const Complex a01 = r01[b];
    const Complex a10 = r10[b];
    const Complex a11 = r11[b];
    r00[b] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    r01[b] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    r10[b] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    r11[b] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch control

bool simd_compiled() noexcept {
#if defined(ARBITERQ_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool simd_supported() noexcept {
#if defined(ARBITERQ_SIMD_AVX2) && \
    (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool simd_runtime_enabled() noexcept {
  const signed char s = g_simd_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return flag_slow(g_simd_state, "ARBITERQ_SIMD", true);
}

void set_simd_runtime_enabled(bool enabled) noexcept {
  g_simd_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool strict_reproducibility() noexcept {
  const signed char s = g_strict_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return flag_slow(g_strict_state, "ARBITERQ_STRICT_REPRO", true);
}

void set_strict_reproducibility(bool strict) noexcept {
  g_strict_state.store(strict ? 1 : 0, std::memory_order_relaxed);
}

KernelArch active_arch() noexcept {
  if (!simd_supported() || !simd_runtime_enabled()) return KernelArch::kScalar;
  return strict_reproducibility() ? KernelArch::kAvx2 : KernelArch::kAvx2Fma;
}

const char* arch_name(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar:
      return "scalar";
    case KernelArch::kAvx2:
      return "avx2";
    case KernelArch::kAvx2Fma:
      return "avx2_fma";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Dispatchers. The arch is re-read per call (two relaxed atomic loads);
// against thousands of amplitude operations per kernel call this is
// noise, and it keeps the kill-switch effective mid-process.

#if defined(ARBITERQ_SIMD_AVX2)
#define AQ_DISPATCH(fn_avx2, fn_scalar, ...)          \
  do {                                                \
    switch (active_arch()) {                          \
      case KernelArch::kAvx2:                         \
        detail::fn_avx2<false>(__VA_ARGS__);          \
        return;                                       \
      case KernelArch::kAvx2Fma:                      \
        detail::fn_avx2<true>(__VA_ARGS__);           \
        return;                                       \
      case KernelArch::kScalar:                       \
        break;                                        \
    }                                                 \
    fn_scalar(__VA_ARGS__);                           \
  } while (0)
#else
#define AQ_DISPATCH(fn_avx2, fn_scalar, ...) fn_scalar(__VA_ARGS__)
#endif

void apply_mat2_range(Complex* amps, const Mat2& m, int q, std::size_t lo,
                      std::size_t hi) {
  AQ_DISPATCH(mat2_range_avx2, mat2_range_scalar, amps, m, q, lo, hi);
}

void apply_diag2_range(Complex* amps, Complex d0, Complex d1, std::size_t bit,
                       std::size_t lo, std::size_t hi) {
  AQ_DISPATCH(diag2_range_avx2, diag2_range_scalar, amps, d0, d1, bit, lo,
              hi);
}

void apply_mat4_range(Complex* amps, const Mat4& m, int qb, int qa,
                      std::size_t lo, std::size_t hi) {
  AQ_DISPATCH(mat4_range_avx2, mat4_range_scalar, amps, m, qb, qa, lo, hi);
}

void apply_diag4_range(Complex* amps, const Complex* d, std::size_t bit_b,
                       std::size_t bit_a, std::size_t lo, std::size_t hi) {
  AQ_DISPATCH(diag4_range_avx2, diag4_range_scalar, amps, d, bit_b, bit_a, lo,
              hi);
}

// Brackets are reductions: the strict arm stays scalar (a vector
// accumulator would reassociate the sum), the fast arm vectorizes.
Complex bracket_1q(const Complex* lam, const Complex* psi, std::size_t n,
                   const Mat2& m, int q) {
#if defined(ARBITERQ_SIMD_AVX2)
  if (active_arch() == KernelArch::kAvx2Fma) {
    return detail::bracket_1q_avx2(lam, psi, n, m, q);
  }
#endif
  return bracket_1q_scalar(lam, psi, n, m, q);
}

Complex bracket_2q(const Complex* lam, const Complex* psi, std::size_t n,
                   const Mat4& m, int qb, int qa) {
#if defined(ARBITERQ_SIMD_AVX2)
  if (active_arch() == KernelArch::kAvx2Fma) {
    return detail::bracket_2q_avx2(lam, psi, n, m, qb, qa);
  }
#endif
  return bracket_2q_scalar(lam, psi, n, m, qb, qa);
}

void batched_mat2(Complex* r0, Complex* r1, const Mat2& m,
                  std::size_t count) {
  AQ_DISPATCH(batched_mat2_avx2, batched_mat2_scalar, r0, r1, m, count);
}

void batched_mat2_each(Complex* r0, Complex* r1, const Mat2* mats,
                       std::size_t count) {
  AQ_DISPATCH(batched_mat2_each_avx2, batched_mat2_each_scalar, r0, r1, mats,
              count);
}

void batched_scale(Complex* row, Complex d, std::size_t count) {
  AQ_DISPATCH(batched_scale_avx2, batched_scale_scalar, row, d, count);
}

void batched_scale_each(Complex* row, const Complex* ds, std::size_t count) {
  AQ_DISPATCH(batched_scale_each_avx2, batched_scale_each_scalar, row, ds,
              count);
}

void batched_mat4(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                  const Mat4& m, std::size_t count) {
  AQ_DISPATCH(batched_mat4_avx2, batched_mat4_scalar, r00, r01, r10, r11, m,
              count);
}

void batched_mat4_each(Complex* r00, Complex* r01, Complex* r10, Complex* r11,
                       const Mat4* mats, std::size_t count) {
  AQ_DISPATCH(batched_mat4_each_avx2, batched_mat4_each_scalar, r00, r01, r10,
              r11, mats, count);
}

#undef AQ_DISPATCH

}  // namespace arbiterq::sim::kernels
