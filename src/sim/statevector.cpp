#include "arbiterq/sim/statevector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "arbiterq/sim/kernels.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::sim {

namespace {

/// Minimum items per pool task for the kernels: below this, memory
/// bandwidth beats dispatch and the stride loop runs inline.
constexpr std::size_t kKernelGrain = std::size_t{1} << 12;

inline bool is_zero(const Complex& c) noexcept {
  return c.real() == 0.0 && c.imag() == 0.0;
}

}  // namespace

template <typename Body>
void Statevector::dispatch(std::size_t items, const Body& body) {
  exec::ExecPolicy p = exec_;
  if (p.grain == 0) p.grain = kKernelGrain;
  exec::parallel_for(p, 0, items, body);
}

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits <= 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument(
        "Statevector: unsupported qubit count " + std::to_string(num_qubits) +
        " (supported: 1.." + std::to_string(kMaxQubits) + ")");
  }
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = 1.0;
  assert(reinterpret_cast<std::uintptr_t>(amps_.data()) % kAmpAlignment == 0 &&
         "amplitude storage must honor kAmpAlignment");
}

void Statevector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::load_strided(const Complex* src, std::size_t stride) {
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) amps_[i] = src[i * stride];
}

void Statevector::apply_mat2(const circuit::Mat2& m, int q) {
  AQ_COUNTER_ADD("sim.apply.gate1q", 1);
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  Complex* const amps = amps_.data();
  // Diagonal fast path (RZ/S/Z...): pure per-amplitude phases, no
  // butterfly — these dominate basis-gate streams after transpilation.
  if (is_zero(m[1]) && is_zero(m[2])) {
    const Complex d0 = m[0];
    const Complex d1 = m[3];
    dispatch(n, [=](std::size_t lo, std::size_t hi) {
      kernels::apply_diag2_range(amps, d0, d1, bit, lo, hi);
    });
    return;
  }
  dispatch(n >> 1, [=, &m](std::size_t lo, std::size_t hi) {
    kernels::apply_mat2_range(amps, m, q, lo, hi);
  });
}

void Statevector::apply_mat4(const circuit::Mat4& m, int qb, int qa) {
  AQ_COUNTER_ADD("sim.apply.gate2q", 1);
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  const std::size_t n = amps_.size();
  Complex* const amps = amps_.data();
  bool diagonal = true;
  for (int r = 0; r < 4 && diagonal; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m[static_cast<std::size_t>(4 * r + c)])) {
        diagonal = false;
        break;
      }
    }
  }
  // Diagonal fast path (CZ/CRZ/CPhase): one multiply per amplitude,
  // selected by the two qubit bits — no butterfly gathering at all.
  if (diagonal) {
    const Complex d[4] = {m[0], m[5], m[10], m[15]};
    dispatch(n, [=](std::size_t lo, std::size_t hi) {
      kernels::apply_diag4_range(amps, d, bit_b, bit_a, lo, hi);
    });
    return;
  }
  dispatch(n >> 2, [=, &m](std::size_t lo, std::size_t hi) {
    kernels::apply_mat4_range(amps, m, qb, qa, lo, hi);
  });
}

void Statevector::apply_gate(const circuit::Gate& g,
                             std::span<const double> params) {
  const auto bound = g.bound_params(params);
  if (g.arity() == 1) {
    apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
  } else {
    apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
               g.qubits[1]);
  }
}

void Statevector::apply_pauli(int pauli, int q) {
  switch (pauli) {
    case 1:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kX, {}), q);
      break;
    case 2:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kY, {}), q);
      break;
    case 3:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kZ, {}), q);
      break;
    default:
      throw std::invalid_argument("apply_pauli: pauli must be 1, 2 or 3");
  }
}

// The reductions below stay serial on purpose: a chunked sum would change
// the floating-point association and break the bit-for-bit determinism
// contract across thread counts (see DESIGN.md, execution engine).

double Statevector::probability_of_one(int q) const {
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

double Statevector::expectation_z(int q) const {
  return 1.0 - 2.0 * probability_of_one(q);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

std::size_t Statevector::sample(math::Rng& rng) const {
  double r = rng.uniform();
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    r -= std::norm(amps_[i]);
    if (r <= 0.0) return i;
  }
  return amps_.size() - 1;  // numerical slack: land on the last state
}

std::vector<std::size_t> Statevector::sample_many(std::size_t count,
                                                  math::Rng& rng) const {
  std::vector<std::size_t> out;
  out.reserve(count);
  if (count == 0) return out;
  // Cumulative Born distribution, built once per call (gate application
  // would invalidate any longer-lived cache).
  std::vector<double> cum(amps_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    cum[i] = acc;
  }
  for (std::size_t s = 0; s < count; ++s) {
    const double r = rng.uniform();
    const auto it = std::lower_bound(cum.begin(), cum.end(), r);
    out.push_back(it == cum.end()
                      ? amps_.size() - 1  // numerical slack, as in sample()
                      : static_cast<std::size_t>(it - cum.begin()));
  }
  return out;
}

double Statevector::norm() const {
  double s = 0.0;
  for (const Complex& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

}  // namespace arbiterq::sim
