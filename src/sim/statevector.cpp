#include "arbiterq/sim/statevector.hpp"

#include <cmath>
#include <stdexcept>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::sim {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits <= 0 || num_qubits > 26) {
    throw std::invalid_argument("Statevector: unsupported qubit count");
  }
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::apply_mat2(const circuit::Mat2& m, int q) {
  AQ_COUNTER_ADD("sim.apply.gate1q", 1);
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  // Diagonal fast path (RZ/S/Z...): pure per-amplitude phases, no
  // butterfly — these dominate basis-gate streams after transpilation.
  if (m[1] == Complex{0.0, 0.0} && m[2] == Complex{0.0, 0.0}) {
    for (std::size_t i = 0; i < n; ++i) {
      amps_[i] *= (i & bit) ? m[3] : m[0];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i & bit) continue;
    const Complex a0 = amps_[i];
    const Complex a1 = amps_[i | bit];
    amps_[i] = m[0] * a0 + m[1] * a1;
    amps_[i | bit] = m[2] * a0 + m[3] * a1;
  }
}

void Statevector::apply_mat4(const circuit::Mat4& m, int qb, int qa) {
  AQ_COUNTER_ADD("sim.apply.gate2q", 1);
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  const std::size_t n = amps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & bit_b) || (i & bit_a)) continue;
    const std::size_t i00 = i;
    const std::size_t i01 = i | bit_a;
    const std::size_t i10 = i | bit_b;
    const std::size_t i11 = i | bit_b | bit_a;
    const Complex a00 = amps_[i00];
    const Complex a01 = amps_[i01];
    const Complex a10 = amps_[i10];
    const Complex a11 = amps_[i11];
    amps_[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps_[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps_[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps_[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void Statevector::apply_gate(const circuit::Gate& g,
                             std::span<const double> params) {
  const auto bound = g.bound_params(params);
  if (g.arity() == 1) {
    apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
  } else {
    apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
               g.qubits[1]);
  }
}

void Statevector::apply_pauli(int pauli, int q) {
  switch (pauli) {
    case 1:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kX, {}), q);
      break;
    case 2:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kY, {}), q);
      break;
    case 3:
      apply_mat2(circuit::gate_matrix_1q(circuit::GateKind::kZ, {}), q);
      break;
    default:
      throw std::invalid_argument("apply_pauli: pauli must be 1, 2 or 3");
  }
}

double Statevector::probability_of_one(int q) const {
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

double Statevector::expectation_z(int q) const {
  return 1.0 - 2.0 * probability_of_one(q);
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

std::size_t Statevector::sample(math::Rng& rng) const {
  double r = rng.uniform();
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    r -= std::norm(amps_[i]);
    if (r <= 0.0) return i;
  }
  return amps_.size() - 1;  // numerical slack: land on the last state
}

double Statevector::norm() const {
  double s = 0.0;
  for (const Complex& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

}  // namespace arbiterq::sim
