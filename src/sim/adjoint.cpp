#include "arbiterq/sim/adjoint.hpp"

#include <cmath>
#include <stdexcept>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::sim {

namespace {

using circuit::Complex;
using circuit::Gate;
using circuit::GateKind;
using circuit::Mat2;
using circuit::Mat4;

/// Shared derivative-matrix builders (circuit/unitary.hpp) under the
/// names this file historically used.
using circuit::d_gate_matrix_1q;
using circuit::d_gate_matrix_2q;

Mat2 d_matrix_1q(GateKind kind, const std::array<double, 3>& p, int slot) {
  return d_gate_matrix_1q(kind, p, slot);
}

Mat4 d_matrix_2q(GateKind kind, const std::array<double, 3>& p) {
  return d_gate_matrix_2q(kind, p);
}

Complex inner_product(const std::vector<Complex>& a,
                      const std::vector<Complex>& b) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

inline bool is_zero(const Complex& c) noexcept {
  return c.real() == 0.0 && c.imag() == 0.0;
}

/// <lambda| M |psi> for a 1q matrix, accumulated in amplitude index
/// order. This is the exact arithmetic of
///   mu = psi; mu.apply_mat2(M, q); inner_product(lambda, mu)
/// — including apply_mat2's diagonal dispatch — fused into one pass, so
/// the gradient term needs no scratch register and a third of the memory
/// traffic while staying bit-identical to the naive path.
Complex bracket_1q(const std::vector<Complex>& lam,
                   const std::vector<Complex>& psi, const Mat2& m, int q) {
  const std::size_t bit = std::size_t{1} << q;
  Complex acc{0.0, 0.0};
  if (is_zero(m[1]) && is_zero(m[2])) {
    const Complex d0 = m[0], d1 = m[3];
    for (std::size_t i = 0; i < psi.size(); ++i) {
      acc += std::conj(lam[i]) * (psi[i] * ((i & bit) ? d1 : d0));
    }
    return acc;
  }
  const Complex m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for (std::size_t i = 0; i < psi.size(); ++i) {
    const Complex mu = (i & bit) ? m2 * psi[i & ~bit] + m3 * psi[i]
                                 : m0 * psi[i] + m1 * psi[i | bit];
    acc += std::conj(lam[i]) * mu;
  }
  return acc;
}

/// 2q analogue of bracket_1q, mirroring apply_mat4's diagonal dispatch.
Complex bracket_2q(const std::vector<Complex>& lam,
                   const std::vector<Complex>& psi, const Mat4& m, int qb,
                   int qa) {
  const std::size_t bit_b = std::size_t{1} << qb;
  const std::size_t bit_a = std::size_t{1} << qa;
  bool diagonal = true;
  for (int r = 0; r < 4 && diagonal; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m[static_cast<std::size_t>(4 * r + c)])) {
        diagonal = false;
        break;
      }
    }
  }
  Complex acc{0.0, 0.0};
  if (diagonal) {
    const Complex d[4] = {m[0], m[5], m[10], m[15]};
    for (std::size_t i = 0; i < psi.size(); ++i) {
      const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
      acc += std::conj(lam[i]) * (psi[i] * d[sel]);
    }
    return acc;
  }
  const std::size_t mask = bit_b | bit_a;
  for (std::size_t i = 0; i < psi.size(); ++i) {
    const std::size_t base = i & ~mask;
    const Complex a00 = psi[base];
    const Complex a01 = psi[base | bit_a];
    const Complex a10 = psi[base | bit_b];
    const Complex a11 = psi[base | bit_b | bit_a];
    const unsigned sel = ((i & bit_b) ? 2U : 0U) | ((i & bit_a) ? 1U : 0U);
    const Complex* row = &m[static_cast<std::size_t>(4 * sel)];
    acc += std::conj(lam[i]) * (row[0] * a00 + row[1] * a01 + row[2] * a10 +
                                row[3] * a11);
  }
  return acc;
}

}  // namespace

std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit, const NoiseModel* noise) {
  const bool noisy = noise != nullptr && noise->enabled();
  return adjoint_gradient_z(c, params, qubit, noise,
                            noisy ? noise->survival_probability(c) : 1.0);
}

std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit, const NoiseModel* noise,
                                       double survival) {
  if (static_cast<int>(params.size()) < c.num_params()) {
    throw std::invalid_argument("adjoint_gradient_z: params too short");
  }
  AQ_TRACE_SPAN("sim.adjoint.gradient");
  AQ_COUNTER_ADD("sim.adjoint.calls", 1);
  const bool noisy = noise != nullptr && noise->enabled();

  auto bound_of = [&](const Gate& g) {
    return noisy ? noise->biased_params(g, params) : g.bound_params(params);
  };

  // Forward pass.
  Statevector psi(c.num_qubits());
  for (const Gate& g : c.gates()) {
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      psi.apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
    } else {
      psi.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                     g.qubits[1]);
    }
  }

  // lambda = Z_qubit psi.
  Statevector lambda = psi;
  lambda.apply_pauli(3, qubit);

  std::vector<double> grad(static_cast<std::size_t>(c.num_params()), 0.0);
  Statevector mu(c.num_qubits());  // scratch register

  const auto& gates = c.gates();
  for (std::size_t k = gates.size(); k-- > 0;) {
    const Gate& g = gates[k];
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      const Mat2 m = circuit::gate_matrix_1q(g.kind, bound);
      const Mat2 md = circuit::mat2_adjoint(m);
      psi.apply_mat2(md, g.qubits[0]);
      for (int slot = 0; slot < g.param_count(); ++slot) {
        const circuit::ParamExpr& pe =
            g.params[static_cast<std::size_t>(slot)];
        if (pe.is_constant()) continue;
        mu = psi;
        mu.apply_mat2(d_matrix_1q(g.kind, bound, slot), g.qubits[0]);
        const Complex ip = inner_product(lambda.amplitudes(),
                                         mu.amplitudes());
        grad[static_cast<std::size_t>(pe.index)] +=
            2.0 * pe.coeff * ip.real();
      }
      lambda.apply_mat2(md, g.qubits[0]);
    } else {
      const Mat4 m = circuit::gate_matrix_2q(g.kind, bound);
      const Mat4 md = circuit::mat4_adjoint(m);
      psi.apply_mat4(md, g.qubits[0], g.qubits[1]);
      if (g.param_count() > 0 && !g.params[0].is_constant()) {
        mu = psi;
        mu.apply_mat4(d_matrix_2q(g.kind, bound), g.qubits[0], g.qubits[1]);
        const Complex ip = inner_product(lambda.amplitudes(),
                                         mu.amplitudes());
        grad[static_cast<std::size_t>(g.params[0].index)] +=
            2.0 * g.params[0].coeff * ip.real();
      }
      lambda.apply_mat4(md, g.qubits[0], g.qubits[1]);
    }
  }

  if (noisy) {
    for (double& gv : grad) gv *= survival;
  }
  return grad;
}

void adjoint_gradient_z(const ExecPlan& plan, std::span<const double> params,
                        int qubit, Workspace& ws, std::span<double> grad) {
  const auto np = static_cast<std::size_t>(plan.num_params());
  if (params.size() < np) {
    throw std::invalid_argument("adjoint_gradient_z: params too short");
  }
  if (grad.size() < np) {
    throw std::invalid_argument("adjoint_gradient_z: grad span too short");
  }
  AQ_COUNTER_ADD("sim.adjoint.calls", 1);
  AQ_COUNTER_ADD("sim.plan.adjoint.calls", 1);
  plan.bind_gates(params, ws);

  // The naive path evolves default-policy (serial) registers — the
  // per-sample fan-out above this layer is the parallel axis — so the
  // plan path does the same.
  const exec::ExecPolicy serial{};
  Statevector& psi = ws.state(plan.num_qubits(), serial);
  const std::vector<GateEntry>& table = plan.gate_table();
  for (const GateEntry& e : table) {
    if (e.arity == 1) {
      psi.apply_mat2(e.dynamic ? ws.dyn1q[static_cast<std::size_t>(e.index)]
                               : plan.table_mat2(e.index),
                     e.q0);
    } else {
      psi.apply_mat4(e.dynamic ? ws.dyn2q[static_cast<std::size_t>(e.index)]
                               : plan.table_mat4(e.index),
                     e.q0, e.q1);
    }
  }

  Statevector& lambda = ws.lambda(plan.num_qubits(), serial);
  lambda = psi;
  lambda.apply_pauli(3, qubit);

  for (std::size_t i = 0; i < np; ++i) grad[i] = 0.0;

  for (std::size_t k = table.size(); k-- > 0;) {
    const GateEntry& e = table[k];
    if (e.arity == 1) {
      const Mat2& md = e.dynamic
                           ? ws.dyn1q_adj[static_cast<std::size_t>(e.index)]
                           : plan.table_mat2_adjoint(e.index);
      psi.apply_mat2(md, e.q0);
      for (const GateEntry::GradTerm& t : e.grads) {
        const Complex ip =
            bracket_1q(lambda.amplitudes(), psi.amplitudes(),
                       ws.dgrad1q[static_cast<std::size_t>(t.dindex)], e.q0);
        grad[static_cast<std::size_t>(t.param_index)] +=
            2.0 * t.coeff * ip.real();
      }
      lambda.apply_mat2(md, e.q0);
    } else {
      const Mat4& md = e.dynamic
                           ? ws.dyn2q_adj[static_cast<std::size_t>(e.index)]
                           : plan.table_mat4_adjoint(e.index);
      psi.apply_mat4(md, e.q0, e.q1);
      for (const GateEntry::GradTerm& t : e.grads) {
        const Complex ip =
            bracket_2q(lambda.amplitudes(), psi.amplitudes(),
                       ws.dgrad2q[static_cast<std::size_t>(t.dindex)], e.q0,
                       e.q1);
        grad[static_cast<std::size_t>(t.param_index)] +=
            2.0 * t.coeff * ip.real();
      }
      lambda.apply_mat4(md, e.q0, e.q1);
    }
  }

  if (plan.noisy()) {
    for (std::size_t i = 0; i < np; ++i) grad[i] *= plan.survival();
  }
}

std::vector<double> adjoint_gradient_z(const ExecPlan& plan,
                                       std::span<const double> params,
                                       int qubit, Workspace& ws) {
  std::vector<double> grad(static_cast<std::size_t>(plan.num_params()), 0.0);
  adjoint_gradient_z(plan, params, qubit, ws, grad);
  return grad;
}

}  // namespace arbiterq::sim
