#include "arbiterq/sim/adjoint.hpp"

#include <cmath>
#include <stdexcept>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::sim {

namespace {

using circuit::Complex;
using circuit::Gate;
using circuit::GateKind;
using circuit::Mat2;
using circuit::Mat4;

constexpr Complex kI{0.0, 1.0};

/// Derivative of a 1q gate matrix with respect to parameter slot `slot`.
Mat2 d_matrix_1q(GateKind kind, const std::array<double, 3>& p, int slot) {
  const double c = std::cos(p[0] / 2.0);
  const double s = std::sin(p[0] / 2.0);
  switch (kind) {
    case GateKind::kRX:
      return {Complex{-s / 2, 0}, -kI * (c / 2), -kI * (c / 2),
              Complex{-s / 2, 0}};
    case GateKind::kRY:
      return {Complex{-s / 2, 0}, Complex{-c / 2, 0}, Complex{c / 2, 0},
              Complex{-s / 2, 0}};
    case GateKind::kRZ:
      return {-kI * 0.5 * std::exp(-kI * (p[0] / 2.0)), Complex{0, 0},
              Complex{0, 0}, kI * 0.5 * std::exp(kI * (p[0] / 2.0))};
    case GateKind::kU3: {
      const Complex el = std::exp(kI * p[2]);
      const Complex ep = std::exp(kI * p[1]);
      const Complex epl = std::exp(kI * (p[1] + p[2]));
      switch (slot) {
        case 0:
          return {Complex{-s / 2, 0}, -el * (c / 2), ep * (c / 2),
                  -epl * (s / 2)};
        case 1:
          return {Complex{0, 0}, Complex{0, 0}, kI * ep * s, kI * epl * c};
        case 2:
          return {Complex{0, 0}, -kI * el * s, Complex{0, 0}, kI * epl * c};
        default:
          break;
      }
      throw std::logic_error("d_matrix_1q: bad U3 slot");
    }
    default:
      throw std::logic_error("d_matrix_1q: gate is not parameterized");
  }
}

/// Derivative of a controlled-rotation 4x4 matrix (zero on the
/// control=0 block, 1q derivative on the control=1 block).
Mat4 d_matrix_2q(GateKind kind, const std::array<double, 3>& p) {
  GateKind inner;
  switch (kind) {
    case GateKind::kCRX:
      inner = GateKind::kRX;
      break;
    case GateKind::kCRY:
      inner = GateKind::kRY;
      break;
    case GateKind::kCRZ:
      inner = GateKind::kRZ;
      break;
    default:
      throw std::logic_error("d_matrix_2q: gate is not parameterized");
  }
  const Mat2 d = d_matrix_1q(inner, p, 0);
  Mat4 m{};
  m[2 * 4 + 2] = d[0];
  m[2 * 4 + 3] = d[1];
  m[3 * 4 + 2] = d[2];
  m[3 * 4 + 3] = d[3];
  return m;
}

Complex inner_product(const std::vector<Complex>& a,
                      const std::vector<Complex>& b) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

}  // namespace

std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit,
                                       const NoiseModel* noise) {
  if (static_cast<int>(params.size()) < c.num_params()) {
    throw std::invalid_argument("adjoint_gradient_z: params too short");
  }
  AQ_TRACE_SPAN("sim.adjoint.gradient");
  AQ_COUNTER_ADD("sim.adjoint.calls", 1);
  const bool noisy = noise != nullptr && noise->enabled();

  auto bound_of = [&](const Gate& g) {
    return noisy ? noise->biased_params(g, params) : g.bound_params(params);
  };

  // Forward pass.
  Statevector psi(c.num_qubits());
  for (const Gate& g : c.gates()) {
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      psi.apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
    } else {
      psi.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                     g.qubits[1]);
    }
  }

  // lambda = Z_qubit psi.
  Statevector lambda = psi;
  lambda.apply_pauli(3, qubit);

  std::vector<double> grad(static_cast<std::size_t>(c.num_params()), 0.0);
  Statevector mu(c.num_qubits());  // scratch register

  const auto& gates = c.gates();
  for (std::size_t k = gates.size(); k-- > 0;) {
    const Gate& g = gates[k];
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      const Mat2 m = circuit::gate_matrix_1q(g.kind, bound);
      const Mat2 md = circuit::mat2_adjoint(m);
      psi.apply_mat2(md, g.qubits[0]);
      for (int slot = 0; slot < g.param_count(); ++slot) {
        const circuit::ParamExpr& pe =
            g.params[static_cast<std::size_t>(slot)];
        if (pe.is_constant()) continue;
        mu = psi;
        mu.apply_mat2(d_matrix_1q(g.kind, bound, slot), g.qubits[0]);
        const Complex ip = inner_product(lambda.amplitudes(),
                                         mu.amplitudes());
        grad[static_cast<std::size_t>(pe.index)] +=
            2.0 * pe.coeff * ip.real();
      }
      lambda.apply_mat2(md, g.qubits[0]);
    } else {
      const Mat4 m = circuit::gate_matrix_2q(g.kind, bound);
      // Adjoint of a 4x4: conjugate transpose.
      Mat4 md{};
      for (int r = 0; r < 4; ++r) {
        for (int col = 0; col < 4; ++col) {
          md[static_cast<std::size_t>(r * 4 + col)] =
              std::conj(m[static_cast<std::size_t>(col * 4 + r)]);
        }
      }
      psi.apply_mat4(md, g.qubits[0], g.qubits[1]);
      if (g.param_count() > 0 && !g.params[0].is_constant()) {
        mu = psi;
        mu.apply_mat4(d_matrix_2q(g.kind, bound), g.qubits[0], g.qubits[1]);
        const Complex ip = inner_product(lambda.amplitudes(),
                                         mu.amplitudes());
        grad[static_cast<std::size_t>(g.params[0].index)] +=
            2.0 * g.params[0].coeff * ip.real();
      }
      lambda.apply_mat4(md, g.qubits[0], g.qubits[1]);
    }
  }

  if (noisy) {
    const double survival = noise->survival_probability(c);
    for (double& gv : grad) gv *= survival;
  }
  return grad;
}

}  // namespace arbiterq::sim
